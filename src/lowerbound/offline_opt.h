// Per-instance offline optimum for single-site tracking: given the whole
// sequence f(1..n) up front, the minimum number of coordinator syncs such
// that at every t the last synced value g satisfies |f(t) - g| <= eps*|f(t)|.
//
// Computed by greedy interval stabbing: each time t constrains the synced
// value to the interval [f(t) - eps|f(t)|, f(t) + eps|f(t)|]; a sync can
// serve a maximal run of times whose intervals have a common point, and
// taking runs greedily from the left is optimal (classic exchange
// argument). This is the yardstick the online algorithm of Appendix I is
// measured against: its message count is at most (1+eps)/eps * v(n), and
// OPT itself is Omega(v(n) * eps / ...) on worst-case instances — the
// experiments report the measured online/OPT competitive ratio.

#ifndef VARSTREAM_LOWERBOUND_OFFLINE_OPT_H_
#define VARSTREAM_LOWERBOUND_OFFLINE_OPT_H_

#include <cstdint>
#include <vector>

namespace varstream {

/// Result of the offline schedule computation.
struct OfflineSchedule {
  /// Minimal number of syncs (messages) any offline tracker needs.
  uint64_t min_syncs = 0;
  /// The 1-based times at which the greedy schedule syncs (first time of
  /// each maximal stabbable run).
  std::vector<uint64_t> sync_times;
};

/// Computes the offline optimum for the sequence f(1..n) (f[t-1] = f(t))
/// under relative error eps. The initial synced value is `initial`
/// (= f(0)); a time whose interval contains the current synced value
/// consumes no sync. Requires eps >= 0.
OfflineSchedule OfflineOptimalSyncs(const std::vector<int64_t>& f,
                                    double eps, int64_t initial = 0);

}  // namespace varstream

#endif  // VARSTREAM_LOWERBOUND_OFFLINE_OPT_H_
