// Theorem 4.1 / Appendix E: the deterministic hard family for the tracing
// problem. Fix epsilon = 1/m; each member of the family is determined by a
// set S of r timesteps in [1, n]: the sequence starts at f(0) = m and
// toggles between m and m+3 exactly at the times in S. All C(n, r) members
// are distinct, each has variability exactly (6m+9)/(2m+6) * epsilon * r,
// and any summary accurate to +-epsilon*f(t) at every t distinguishes all
// of them (the intervals around m and m+3 are disjoint for m >= 4), so it
// needs Omega(r log n) bits.

#ifndef VARSTREAM_LOWERBOUND_DET_FAMILY_H_
#define VARSTREAM_LOWERBOUND_DET_FAMILY_H_

#include <cstdint>
#include <vector>

namespace varstream {

/// C(n, r) saturating at UINT64_MAX.
uint64_t BinomialSaturating(uint64_t n, uint64_t r);

/// log2(C(n, r)) computed stably via lgamma.
double Log2Binomial(uint64_t n, uint64_t r);

class DetFamily {
 public:
  /// epsilon = 1/m. Requires m >= 2, r even, 2 <= r <= n.
  DetFamily(uint64_t m, uint64_t n, uint64_t r);

  uint64_t m() const { return m_; }
  uint64_t n() const { return n_; }
  uint64_t r() const { return r_; }
  double epsilon() const { return 1.0 / static_cast<double>(m_); }

  /// Number of members, C(n, r), saturating; and its log2.
  uint64_t Size() const { return BinomialSaturating(n_, r_); }
  double Log2Size() const { return Log2Binomial(n_, r_); }

  /// f(1..n) for the member with toggle set S (1-based, strictly
  /// increasing times). f(0) = m.
  std::vector<int64_t> SequenceFor(const std::vector<uint64_t>& toggles) const;

  /// The rank-th r-subset of {1..n} in lexicographic order (combinatorial
  /// number system). Requires rank < Size().
  std::vector<uint64_t> SubsetForRank(uint64_t rank) const;

  /// Inverse of SubsetForRank.
  uint64_t RankOfSubset(const std::vector<uint64_t>& toggles) const;

  /// The exact variability (6m+9)/(2m+6) * epsilon * r every member has.
  double ExactVariability() const;

  /// Recovers the toggle set from a sequence of values in {m, m+3}.
  std::vector<uint64_t> TogglesOf(const std::vector<int64_t>& seq) const;

  /// The information-theoretic space bound: log2(C(n, r)) >= r*log2(n/r).
  double SpaceLowerBoundBits() const { return Log2Size(); }

  /// True iff a single value x can be a valid epsilon-approximation of
  /// both m and m+3 — false for all m >= 4, which is what makes the family
  /// distinguishable.
  bool LevelsConfusable() const;

 private:
  uint64_t m_;
  uint64_t n_;
  uint64_t r_;
};

}  // namespace varstream

#endif  // VARSTREAM_LOWERBOUND_DET_FAMILY_H_
