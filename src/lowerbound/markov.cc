#include "lowerbound/markov.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace varstream {

MarkovChain::MarkovChain(std::vector<std::vector<double>> transition)
    : transition_(std::move(transition)) {
  for (const auto& row : transition_) {
    assert(row.size() == transition_.size());
    double sum = 0;
    for (double x : row) {
      assert(x >= -1e-12);
      sum += x;
    }
    assert(std::abs(sum - 1.0) < 1e-9);
    (void)sum;
  }
}

std::vector<double> MarkovChain::Step(const std::vector<double>& dist) const {
  assert(dist.size() == num_states());
  std::vector<double> next(num_states(), 0.0);
  for (size_t i = 0; i < num_states(); ++i) {
    for (size_t j = 0; j < num_states(); ++j) {
      next[j] += dist[i] * transition_[i][j];
    }
  }
  return next;
}

std::vector<double> MarkovChain::Stationary(uint64_t iterations) const {
  std::vector<double> dist(num_states(),
                           1.0 / static_cast<double>(num_states()));
  for (uint64_t it = 0; it < iterations; ++it) {
    std::vector<double> next = Step(dist);
    if (TotalVariation(next, dist) < 1e-14) return next;
    dist = std::move(next);
  }
  return dist;
}

double MarkovChain::TotalVariation(const std::vector<double>& a,
                                   const std::vector<double>& b) {
  assert(a.size() == b.size());
  double sum = 0;
  for (size_t i = 0; i < a.size(); ++i) sum += std::abs(a[i] - b[i]);
  return sum / 2.0;
}

uint64_t MarkovChain::MixingTime(double tv_target,
                                 uint64_t max_steps) const {
  std::vector<double> pi = Stationary();
  // Evolve all deterministic starting distributions in lockstep.
  std::vector<std::vector<double>> dists;
  for (size_t s = 0; s < num_states(); ++s) {
    std::vector<double> d(num_states(), 0.0);
    d[s] = 1.0;
    dists.push_back(std::move(d));
  }
  for (uint64_t t = 0; t <= max_steps; ++t) {
    double worst = 0;
    for (const auto& d : dists) {
      worst = std::max(worst, TotalVariation(d, pi));
    }
    if (worst <= tv_target) return t;
    for (auto& d : dists) d = Step(d);
  }
  return max_steps;
}

uint32_t MarkovChain::SampleState(const std::vector<double>& dist,
                                  Rng* rng) const {
  double u = rng->NextDouble();
  double acc = 0;
  for (size_t i = 0; i < dist.size(); ++i) {
    acc += dist[i];
    if (u < acc) return static_cast<uint32_t>(i);
  }
  return static_cast<uint32_t>(dist.size() - 1);
}

std::vector<uint32_t> MarkovChain::SamplePath(
    const std::vector<double>& initial, uint64_t n, Rng* rng) const {
  std::vector<uint32_t> path;
  path.reserve(n);
  uint32_t state = SampleState(initial, rng);
  for (uint64_t t = 0; t < n; ++t) {
    path.push_back(state);
    state = SampleState(transition_[state], rng);
  }
  return path;
}

OverlapChain::OverlapChain(double switch_prob) : p_(switch_prob) {
  assert(switch_prob > 0 && switch_prob < 1);
  alpha_ = 1.0 - 2.0 * p_ * (1.0 - p_);
}

uint64_t OverlapChain::ExactMixingTime(double tv_target) const {
  // TV after t steps from a deterministic start is |2*alpha - 1|^t * 1/2.
  double rho = std::abs(2.0 * alpha_ - 1.0);
  if (rho == 0.0) return 0;
  double t = std::log(2.0 * tv_target) / std::log(rho);
  return static_cast<uint64_t>(std::max(0.0, std::ceil(t)));
}

double OverlapChain::PaperMixingBound() const {
  return 3.0 / (2.0 * p_ * (1.0 - p_));
}

MarkovChain OverlapChain::AsMarkovChain() const {
  double stay = alpha_;
  return MarkovChain({{stay, 1.0 - stay}, {1.0 - stay, stay}});
}

double CllmTailBound(double delta, double mu, uint64_t n, double T,
                     double C) {
  assert(delta > 0 && delta < 1);
  assert(mu > 0 && mu <= 1);
  assert(T > 0);
  double exponent = -delta * delta * mu * static_cast<double>(n) / (72.0 * T);
  return std::min(1.0, C * std::exp(exponent));
}

}  // namespace varstream
