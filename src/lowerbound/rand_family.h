// Lemma 4.4 / Appendix G: the randomized hard family. Sequences start at
// m = 1/epsilon or m+3 (fair coin) and independently toggle between the two
// levels with probability p = v/(6*epsilon*n) at every step. Two sequences
// "match" when they overlap (values within epsilon of each other, in the
// paper's relative sense) in at least 6n/10 positions. The lemma shows a
// family of e^{Omega(v/eps)} pairwise non-matching, variability-<=-v
// sequences exists; we expose the sampling process, overlap/match
// statistics, switch counts, and measured variability so experiments can
// verify each ingredient (match probability vs the CLLM bound, switch
// concentration, variability budget).

#ifndef VARSTREAM_LOWERBOUND_RAND_FAMILY_H_
#define VARSTREAM_LOWERBOUND_RAND_FAMILY_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "lowerbound/markov.h"

namespace varstream {

class RandFamily {
 public:
  /// Requires epsilon in (0, 1/2], v > 0, n > 3v/epsilon (the lemma's
  /// premise n > 3v/eps keeps p < 1/2).
  RandFamily(double epsilon, double v, uint64_t n);

  double epsilon() const { return epsilon_; }
  double v_target() const { return v_; }
  uint64_t n() const { return n_; }
  int64_t low_level() const { return m_; }
  int64_t high_level() const { return m_ + 3; }

  /// The per-step toggle probability p = v / (6 * epsilon * n).
  double SwitchProbability() const { return p_; }

  /// Draws one sequence f(1..n) from the construction.
  std::vector<int64_t> Sample(Rng* rng) const;

  /// Number of positions t with |f(t) - g(t)| <= epsilon*max(f(t), g(t)).
  uint64_t Overlaps(const std::vector<int64_t>& f,
                    const std::vector<int64_t>& g) const;

  /// True iff the sequences overlap in >= 6n/10 positions.
  bool Matches(const std::vector<int64_t>& f,
               const std::vector<int64_t>& g) const;

  /// Number of level toggles in a sampled sequence.
  uint64_t SwitchCount(const std::vector<int64_t>& seq) const;

  /// Exact variability of a sampled sequence.
  double MeasuredVariability(const std::vector<int64_t>& seq) const;

  /// The overlap process between two independent samples, as the 2-state
  /// chain of Appendix G.
  OverlapChain Chain() const { return OverlapChain(p_); }

  /// The CLLM upper bound (Fact G.2) on P(two sequences match), using the
  /// paper's mixing-time bound T <= 9*eps*n/v, delta = 1/5, mu = 1/2.
  double MatchProbabilityBound(double C = 1.0) const;

  /// Expected switches p*n = v/(6*epsilon); the Chernoff argument of the
  /// lemma says exceeding twice this has probability <= exp(-v/18eps).
  double ExpectedSwitches() const { return p_ * static_cast<double>(n_); }

  /// The lemma's family size target: (1/10) * exp(v / (2*32400*epsilon)).
  double Log2FamilySizeTarget() const;

  /// Greedily builds an actual pairwise-non-matching family with
  /// variability <= v_cap by rejection, drawing at most `max_draws`
  /// candidates. Small-scale constructive check of the lemma.
  std::vector<std::vector<int64_t>> BuildGreedyFamily(uint64_t target_size,
                                                      uint64_t max_draws,
                                                      Rng* rng) const;

 private:
  double epsilon_;
  double v_;
  uint64_t n_;
  int64_t m_;
  double p_;
};

}  // namespace varstream

#endif  // VARSTREAM_LOWERBOUND_RAND_FAMILY_H_
