#include "lowerbound/offline_opt.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace varstream {

namespace {

struct Interval {
  double lo;
  double hi;
};

Interval FeasibleAt(int64_t f, double eps) {
  double band = eps * std::abs(static_cast<double>(f));
  return {static_cast<double>(f) - band, static_cast<double>(f) + band};
}

}  // namespace

OfflineSchedule OfflineOptimalSyncs(const std::vector<int64_t>& f,
                                    double eps, int64_t initial) {
  assert(eps >= 0);
  OfflineSchedule schedule;
  // Current feasible window for the synced value. Before the first sync
  // the "synced value" is the known f(0) = initial, a point.
  double lo = static_cast<double>(initial);
  double hi = static_cast<double>(initial);
  for (uint64_t t = 1; t <= f.size(); ++t) {
    Interval need = FeasibleAt(f[t - 1], eps);
    double new_lo = std::max(lo, need.lo);
    double new_hi = std::min(hi, need.hi);
    if (new_lo <= new_hi) {
      lo = new_lo;
      hi = new_hi;
      continue;
    }
    // Must sync at (or before) time t; start a fresh run whose only
    // constraint so far is time t's interval.
    ++schedule.min_syncs;
    schedule.sync_times.push_back(t);
    lo = need.lo;
    hi = need.hi;
  }
  return schedule;
}

}  // namespace varstream
