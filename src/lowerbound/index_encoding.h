// Appendix F, made executable: the reduction from the one-way INDEX
// problem to tracing. Alice holds an input of N = log2|F| bits, interpreted
// as the rank of a member of a hard family F; she streams that member
// through a tracker and ships the recorded communication (a HistoryTracer)
// to Bob, who queries every timestep, decodes which member it was, and so
// recovers every bit of Alice's input. Since INDEX needs Omega(N) one-way
// bits, any faithful summary must be at least as large as the family's
// entropy — which the experiment verifies against the actual trace size.
//
// We instantiate F with the deterministic family of Theorem 4.1 (exactly
// decodable, C(n,r) members) so the round trip is checkable bit-for-bit.

#ifndef VARSTREAM_LOWERBOUND_INDEX_ENCODING_H_
#define VARSTREAM_LOWERBOUND_INDEX_ENCODING_H_

#include <cstdint>

#include "lowerbound/det_family.h"

namespace varstream {

/// Outcome of one Alice->Bob round trip.
struct IndexReductionResult {
  bool decoded_ok = false;       ///< Bob recovered Alice's rank exactly.
  uint64_t alice_rank = 0;       ///< input (the INDEX string as an integer)
  uint64_t bob_rank = 0;         ///< decoded output
  uint64_t summary_bits = 0;     ///< size of the shipped trace
  double entropy_bits = 0.0;     ///< log2 |F|: the INDEX lower bound
  uint64_t messages = 0;         ///< tracker messages behind the trace
  double family_variability = 0; ///< v(n) of the streamed member
};

/// Runs the reduction for family member `rank` of DetFamily(m, n, r),
/// using the single-site tracker with epsilon = 1/m as the summarized
/// algorithm (Appendix D turns any tracker's communication into a trace).
/// Requires m >= 4 so the two levels are never confusable.
IndexReductionResult RunIndexReduction(uint64_t m, uint64_t n, uint64_t r,
                                       uint64_t rank);

}  // namespace varstream

#endif  // VARSTREAM_LOWERBOUND_INDEX_ENCODING_H_
