#include "lowerbound/det_family.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace varstream {

uint64_t BinomialSaturating(uint64_t n, uint64_t r) {
  if (r > n) return 0;
  r = std::min(r, n - r);
  __uint128_t result = 1;
  constexpr __uint128_t kMax = std::numeric_limits<uint64_t>::max();
  for (uint64_t i = 1; i <= r; ++i) {
    result = result * (n - r + i) / i;  // exact: product of i consecutive
                                        // integers is divisible by i!
    if (result > kMax) return std::numeric_limits<uint64_t>::max();
  }
  return static_cast<uint64_t>(result);
}

double Log2Binomial(uint64_t n, uint64_t r) {
  if (r > n) return -std::numeric_limits<double>::infinity();
  auto lg = [](uint64_t x) {
    return std::lgamma(static_cast<double>(x) + 1.0);
  };
  return (lg(n) - lg(r) - lg(n - r)) / std::log(2.0);
}

DetFamily::DetFamily(uint64_t m, uint64_t n, uint64_t r)
    : m_(m), n_(n), r_(r) {
  assert(m >= 2);
  assert(r % 2 == 0);
  assert(r >= 2 && r <= n);
}

std::vector<int64_t> DetFamily::SequenceFor(
    const std::vector<uint64_t>& toggles) const {
  assert(toggles.size() == r_);
  std::vector<int64_t> f(n_);
  int64_t low = static_cast<int64_t>(m_);
  int64_t high = low + 3;
  int64_t value = low;
  size_t next = 0;
  for (uint64_t t = 1; t <= n_; ++t) {
    if (next < toggles.size() && toggles[next] == t) {
      value = (value == low) ? high : low;
      ++next;
    }
    f[t - 1] = value;
  }
  assert(next == toggles.size());
  return f;
}

std::vector<uint64_t> DetFamily::SubsetForRank(uint64_t rank) const {
  assert(rank < Size());
  // Lexicographic unranking over increasing r-subsets of {1..n}: pick the
  // smallest feasible first element, then recurse.
  std::vector<uint64_t> subset;
  subset.reserve(r_);
  uint64_t value = 1;
  uint64_t remaining = r_;
  while (remaining > 0) {
    uint64_t block = BinomialSaturating(n_ - value, remaining - 1);
    if (rank < block) {
      subset.push_back(value);
      --remaining;
    } else {
      rank -= block;
    }
    ++value;
  }
  return subset;
}

uint64_t DetFamily::RankOfSubset(const std::vector<uint64_t>& toggles) const {
  assert(toggles.size() == r_);
  uint64_t rank = 0;
  uint64_t prev = 0;
  for (uint64_t i = 0; i < r_; ++i) {
    for (uint64_t skipped = prev + 1; skipped < toggles[i]; ++skipped) {
      rank += BinomialSaturating(n_ - skipped, r_ - i - 1);
    }
    prev = toggles[i];
  }
  return rank;
}

double DetFamily::ExactVariability() const {
  // r/2 switches m -> m+3 contribute 3/(m+3) each, r/2 switches back
  // contribute 3/m each: total = r * (6m+9) / (2m(m+3))
  //                             = (6m+9)/(2m+6) * (r/m).
  double md = static_cast<double>(m_);
  double rd = static_cast<double>(r_);
  return rd * (6.0 * md + 9.0) / (2.0 * md * (md + 3.0));
}

std::vector<uint64_t> DetFamily::TogglesOf(
    const std::vector<int64_t>& seq) const {
  assert(seq.size() == n_);
  std::vector<uint64_t> toggles;
  int64_t prev = static_cast<int64_t>(m_);
  for (uint64_t t = 1; t <= n_; ++t) {
    if (seq[t - 1] != prev) toggles.push_back(t);
    prev = seq[t - 1];
  }
  return toggles;
}

bool DetFamily::LevelsConfusable() const {
  // x approximates m iff |x - m| <= eps*m = 1; x approximates m+3 iff
  // |x - (m+3)| <= eps*(m+3) = 1 + 3/m. Intervals [m-1, m+1] and
  // [m+2-3/m, m+4+3/m] intersect iff m+2-3/m <= m+1, i.e. m <= 3.
  return m_ <= 3;
}

}  // namespace varstream
