#include "lowerbound/index_encoding.h"

#include <cassert>
#include <cmath>
#include <vector>

#include "common/math_util.h"
#include "core/single_site_tracker.h"
#include "core/tracing.h"

namespace varstream {

IndexReductionResult RunIndexReduction(uint64_t m, uint64_t n, uint64_t r,
                                       uint64_t rank) {
  assert(m >= 4 && "levels must not be confusable");
  DetFamily family(m, n, r);
  assert(rank < family.Size());

  // --- Alice: pick her sequence and run the tracker over it. ---
  std::vector<uint64_t> toggles = family.SubsetForRank(rank);
  std::vector<int64_t> seq = family.SequenceFor(toggles);

  TrackerOptions options;
  options.epsilon = family.epsilon();
  options.initial_value = static_cast<int64_t>(m);
  SingleSiteTracker tracker(options);
  HistoryTracer trace(static_cast<double>(m));
  for (uint64_t t = 1; t <= n; ++t) {
    tracker.Update(seq[t - 1]);
    trace.Observe(t, tracker.Estimate());
  }

  // --- Bob: decode each f(t) by rounding the traced estimate. ---
  int64_t low = static_cast<int64_t>(m);
  int64_t high = low + 3;
  std::vector<int64_t> decoded(n);
  for (uint64_t t = 1; t <= n; ++t) {
    double est = trace.Query(t);
    double mid = static_cast<double>(low + high) / 2.0;
    decoded[t - 1] = est < mid ? low : high;
  }
  std::vector<uint64_t> decoded_toggles = family.TogglesOf(decoded);

  IndexReductionResult result;
  result.alice_rank = rank;
  result.decoded_ok = decoded_toggles.size() == r &&
                      decoded_toggles == toggles;
  result.bob_rank = result.decoded_ok
                        ? family.RankOfSubset(decoded_toggles)
                        : static_cast<uint64_t>(-1);
  uint64_t time_bits = static_cast<uint64_t>(CeilLog2(n + 1));
  uint64_t value_bits = static_cast<uint64_t>(CeilLog2(m + 4));
  result.summary_bits = trace.SummaryBits(time_bits, value_bits);
  result.entropy_bits = family.Log2Size();
  result.messages = tracker.cost().total_messages();
  result.family_variability = family.ExactVariability();
  return result;
}

}  // namespace varstream
