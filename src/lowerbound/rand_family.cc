#include "lowerbound/rand_family.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "stream/variability.h"

namespace varstream {

RandFamily::RandFamily(double epsilon, double v, uint64_t n)
    : epsilon_(epsilon), v_(v), n_(n) {
  assert(epsilon > 0 && epsilon <= 0.5);
  assert(v > 0);
  assert(static_cast<double>(n) > 3.0 * v / epsilon);
  m_ = static_cast<int64_t>(std::llround(1.0 / epsilon));
  assert(m_ >= 2);
  p_ = v / (6.0 * epsilon * static_cast<double>(n));
  assert(p_ > 0 && p_ < 1);
}

std::vector<int64_t> RandFamily::Sample(Rng* rng) const {
  std::vector<int64_t> f(n_);
  int64_t low = m_;
  int64_t high = m_ + 3;
  int64_t value = rng->Bernoulli(0.5) ? low : high;
  for (uint64_t t = 0; t < n_; ++t) {
    if (rng->Bernoulli(p_)) value = (value == low) ? high : low;
    f[t] = value;
  }
  return f;
}

uint64_t RandFamily::Overlaps(const std::vector<int64_t>& f,
                              const std::vector<int64_t>& g) const {
  assert(f.size() == g.size());
  uint64_t overlaps = 0;
  for (size_t t = 0; t < f.size(); ++t) {
    double bound = epsilon_ * static_cast<double>(std::max(f[t], g[t]));
    if (std::abs(static_cast<double>(f[t] - g[t])) <= bound) ++overlaps;
  }
  return overlaps;
}

bool RandFamily::Matches(const std::vector<int64_t>& f,
                         const std::vector<int64_t>& g) const {
  return Overlaps(f, g) * 10 >= 6 * n_;
}

uint64_t RandFamily::SwitchCount(const std::vector<int64_t>& seq) const {
  uint64_t switches = 0;
  for (size_t t = 1; t < seq.size(); ++t) {
    if (seq[t] != seq[t - 1]) ++switches;
  }
  return switches;
}

double RandFamily::MeasuredVariability(
    const std::vector<int64_t>& seq) const {
  // f(0) is the first level; the paper's family varies only by toggles.
  return ComputeVariability(seq, seq.empty() ? m_ : seq.front());
}

double RandFamily::MatchProbabilityBound(double C) const {
  // Overlap Y ~ sum of y(s_t) with stationary mean mu = 1/2; matching means
  // Y >= (6/10) n = (1 + 1/5) * mu * n, so delta = 1/5. T <= 9*eps*n/v.
  double T = 9.0 * epsilon_ * static_cast<double>(n_) / v_;
  return CllmTailBound(0.2, 0.5, n_, T, C);
}

double RandFamily::Log2FamilySizeTarget() const {
  // |F| = (1/10) exp(v / (2*32400*eps)) from the proof of Lemma 4.4.
  double ln_size = v_ / (2.0 * 32400.0 * epsilon_) - std::log(10.0);
  return ln_size / std::log(2.0);
}

std::vector<std::vector<int64_t>> RandFamily::BuildGreedyFamily(
    uint64_t target_size, uint64_t max_draws, Rng* rng) const {
  std::vector<std::vector<int64_t>> family;
  for (uint64_t draw = 0; draw < max_draws && family.size() < target_size;
       ++draw) {
    std::vector<int64_t> candidate = Sample(rng);
    if (MeasuredVariability(candidate) > v_) continue;
    bool clashes = false;
    for (const auto& member : family) {
      if (Matches(candidate, member)) {
        clashes = true;
        break;
      }
    }
    if (!clashes) family.push_back(std::move(candidate));
  }
  return family;
}

}  // namespace varstream
