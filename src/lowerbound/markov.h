// Markov-chain tooling for Lemma 4.4 / Appendix G. The overlap process
// between two independently-switching sequences is a 2-state chain
// ("same" / "different"); the proof bounds its mixing time and applies the
// Chernoff-Hoeffding bound for Markov chains of Chung, Lam, Liu &
// Mitzenmacher (Fact G.2). We provide a generic finite chain plus the
// closed-form 2-state specialization and the CLLM tail bound evaluator.

#ifndef VARSTREAM_LOWERBOUND_MARKOV_H_
#define VARSTREAM_LOWERBOUND_MARKOV_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"

namespace varstream {

/// A finite, row-stochastic Markov chain.
class MarkovChain {
 public:
  /// `transition[i][j]` = P(next = j | current = i). Rows must sum to 1.
  explicit MarkovChain(std::vector<std::vector<double>> transition);

  size_t num_states() const { return transition_.size(); }

  /// One step of the distribution map: d -> d * P.
  std::vector<double> Step(const std::vector<double>& dist) const;

  /// Stationary distribution by power iteration (requires ergodicity).
  std::vector<double> Stationary(uint64_t iterations = 10000) const;

  /// Total variation distance between distributions.
  static double TotalVariation(const std::vector<double>& a,
                               const std::vector<double>& b);

  /// Smallest t such that max over deterministic starts of
  /// TV(P^t(start), pi) <= tv_target. Capped at `max_steps`.
  uint64_t MixingTime(double tv_target = 0.125,
                      uint64_t max_steps = 1 << 20) const;

  /// Samples an n-step path; initial state drawn from `initial`.
  std::vector<uint32_t> SamplePath(const std::vector<double>& initial,
                                   uint64_t n, Rng* rng) const;

 private:
  uint32_t SampleState(const std::vector<double>& dist, Rng* rng) const;

  std::vector<std::vector<double>> transition_;
};

/// The 2-state overlap chain of Appendix G: from either state, switch with
/// probability 1 - alpha where alpha = 1 - 2p(1-p) and p is the sequence
/// switch probability. State 0 = "same", state 1 = "different"; stationary
/// distribution is (1/2, 1/2).
class OverlapChain {
 public:
  /// `switch_prob` is p, the per-step sequence toggle probability.
  explicit OverlapChain(double switch_prob);

  /// alpha = 1 - 2p(1-p): probability the overlap state persists.
  double alpha() const { return alpha_; }

  /// Exact (1/8)-mixing time: smallest t with (2*alpha-1)^t * 1/2 <= 1/8.
  uint64_t ExactMixingTime(double tv_target = 0.125) const;

  /// The paper's analytic bound T <= 3/(2p(1-p)) <= 9*eps*n/v when
  /// p = v/(6*eps*n).
  double PaperMixingBound() const;

  /// As a generic chain (for cross-checking the generic machinery).
  MarkovChain AsMarkovChain() const;

 private:
  double p_;
  double alpha_;
};

/// Fact G.2 (Chung-Lam-Liu-Mitzenmacher, Theorem 3.1 specialization):
/// for an n-step stationary walk with (1/8)-mixing time T and weight
/// function with stationary mean mu,
///   P(Y >= (1 + delta) * mu * n) <= C * exp(-delta^2 * mu * n / (72 T)),
/// 0 < delta < 1. Returns the bound's value (clamped to 1).
double CllmTailBound(double delta, double mu, uint64_t n, double T,
                     double C = 1.0);

}  // namespace varstream

#endif  // VARSTREAM_LOWERBOUND_MARKOV_H_
