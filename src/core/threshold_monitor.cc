#include "core/threshold_monitor.h"

#include <cassert>

namespace varstream {

ThresholdMonitor::ThresholdMonitor(const TrackerOptions& options,
                                   int64_t tau)
    : tau_(tau), epsilon_(options.epsilon) {
  assert(tau >= 1);
  assert(options.epsilon > 0 && options.epsilon < 1);
  TrackerOptions tracker_options = options;
  tracker_options.epsilon = options.epsilon / 3.0;
  tracker_ = std::make_unique<DeterministicTracker>(tracker_options);
}

void ThresholdMonitor::Push(uint32_t site, int64_t delta) {
  tracker_->Push(site, delta);
  double cut = (1.0 - epsilon_ / 2.0) * static_cast<double>(tau_);
  ThresholdState next = tracker_->Estimate() >= cut ? ThresholdState::kAbove
                                                    : ThresholdState::kBelow;
  if (next != state_) {
    state_ = next;
    ++flips_;
    if (on_change_) on_change_(tracker_->time(), state_);
  }
}

}  // namespace varstream
