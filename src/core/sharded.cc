#include "core/sharded.h"

#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/hash.h"
#include "common/math_util.h"
#include "core/compat.h"
#include "core/registry.h"
#include "core/state_codec.h"
#include "stream/source.h"

namespace varstream {

namespace {

/// Escalating wait for the spin sites (full ring on the producer side,
/// empty ring on the consumer side, drain). Busy-spins briefly, then
/// yields, then sleeps — the sleep tier is what keeps a W-thread engine
/// live on machines with fewer than W cores.
class Backoff {
 public:
  void Wait() {
    ++spins_;
    if (spins_ < 64) return;  // stay hot: the peer is usually mid-batch
    if (spins_ < 1024) {
      std::this_thread::yield();
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }

 private:
  uint32_t spins_ = 0;
};

}  // namespace

uint64_t ShardedTracker::DeriveSiteSeed(uint64_t seed, uint32_t site) {
  // Decorrelate per-site streams from each other and from the user seed;
  // golden-ratio offset keeps site 0 from mapping seed -> Mix64(seed),
  // which callers may already use for other derivations.
  return Mix64(seed ^ (0x9E3779B97F4A7C15ull + site));
}

std::unique_ptr<ShardedTracker> ShardedTracker::Create(
    const std::string& base_name, const TrackerOptions& options,
    uint32_t num_shards, std::string* error) {
  const TrackerRegistry& registry = TrackerRegistry::Instance();
  if (!registry.Contains(base_name)) {
    if (error != nullptr) {
      *error = "unknown tracker '" + base_name +
               "'; valid trackers: " + JoinNames(registry.Names());
    }
    return nullptr;
  }
  // Admission through the shared predicates (core/compat.h). At this
  // level a shard count of 0 is an error, not "serial", so the explicit
  // range check runs even when CheckShardPairing would wave 0 through.
  PairingVerdict verdict =
      num_shards == 0
          ? CheckExplicitShardCount(num_shards, options.num_sites)
          : CheckShardPairing(base_name, num_shards, options.num_sites);
  if (!verdict.ok) {
    if (error != nullptr) *error = verdict.reason;
    return nullptr;
  }
  return std::unique_ptr<ShardedTracker>(
      new ShardedTracker(base_name, options, num_shards));
}

ShardedTracker::ShardedTracker(const std::string& base_name,
                               const TrackerOptions& options,
                               uint32_t num_shards)
    : DistributedTracker(options.num_sites, UpdateSupport::kArbitrary),
      base_name_(base_name),
      options_(options),
      num_shards_(num_shards) {
  const TrackerRegistry& registry = TrackerRegistry::Instance();
  site_trackers_.reserve(options.num_sites);
  for (uint32_t site = 0; site < options.num_sites; ++site) {
    TrackerOptions per_site = options;
    per_site.num_sites = 1;
    // Seed by GLOBAL site id: a leaf engine over [site_base, site_base+k)
    // gives its sites the exact seeds the full-range engine would, which
    // is what makes hierarchy splits bit-identical to one big run.
    per_site.seed = DeriveSiteSeed(options.seed, options.site_base + site);
    per_site.site_base = 0;
    // f(0) is a global quantity; the per-site substreams each start at 0
    // and Estimate() adds options_.initial_value back once.
    per_site.initial_value = 0;
    site_trackers_.push_back(registry.Create(base_name, per_site));
    if (site_trackers_.back() == nullptr ||
        site_trackers_.back()->num_sites() != 1) {
      std::fprintf(stderr,
                   "ShardedTracker: base '%s' cannot be instantiated as a "
                   "single-site partition\n",
                   base_name.c_str());
      std::abort();
    }
  }
  shards_.reserve(num_shards);
  for (uint32_t w = 0; w < num_shards; ++w) {
    shards_.push_back(std::make_unique<Shard>());
  }
  for (uint32_t w = 0; w < num_shards; ++w) {
    shards_[w]->thread =
        std::thread([this, w] { WorkerLoop(shards_[w].get()); });
  }
}

ShardedTracker::~ShardedTracker() {
  stop_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
}

void ShardedTracker::WorkerLoop(Shard* shard) {
  std::vector<CountUpdate> batch;
  auto process = [&] {
    for (const CountUpdate& u : batch) {
      // Each site's instance is single-site: every update lands on its
      // local site 0. Only this worker ever touches these instances.
      site_trackers_[u.site]->Push(0, u.delta);
    }
    batch.clear();
    shard->completed.fetch_add(1, std::memory_order_release);
  };
  Backoff backoff;
  for (;;) {
    if (shard->queue.TryPop(batch)) {
      process();
      backoff = Backoff();
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) {
      // The producer stopped before setting stop_, but batches published
      // between our failed pop and the flag read must still be consumed.
      while (shard->queue.TryPop(batch)) process();
      return;
    }
    backoff.Wait();
  }
}

void ShardedTracker::Publish(Shard* shard) {
  if (!shard->queue.TryPush(shard->staging)) {
    // Contended path only: the clock read costs nothing when the ring
    // has room, and an unattached engine skips it entirely.
    const bool timed = demux_stall_us_ != nullptr;
    std::chrono::steady_clock::time_point stall_start;
    if (timed) stall_start = std::chrono::steady_clock::now();
    Backoff backoff;
    do {
      backoff.Wait();
    } while (!shard->queue.TryPush(shard->staging));
    if (timed) {
      demux_stall_us_->Record(
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - stall_start)
              .count());
    }
  }
  // TryPush swapped in the consumer's last recycled buffer; it is clear
  // but keeps its capacity, so steady-state demuxing never reallocates.
  ++shard->published;
  if (shard->depth_gauge != nullptr) {
    shard->depth_gauge->Set(static_cast<int64_t>(
        shard->published - shard->completed.load(std::memory_order_relaxed)));
  }
}

void ShardedTracker::DoPush(uint32_t site, int64_t delta) {
  CountUpdate u{site, delta};
  DoPushBatch(std::span<const CountUpdate>(&u, 1));
}

void ShardedTracker::DoPushBatch(std::span<const CountUpdate> batch) {
  // Demux stage: split the batch by owning shard, preserving stream order
  // within each site (all of a site's updates flow through one shard).
  for (const CountUpdate& u : batch) {
    if (u.delta == 0) continue;
    shards_[u.site % num_shards_]->staging.push_back(u);
  }
  for (auto& shard : shards_) {
    if (!shard->staging.empty()) Publish(shard.get());
  }
}

void ShardedTracker::AttachMetrics(MetricsRegistry* registry,
                                   const std::string& session) {
  if (registry == nullptr) return;
  demux_stall_us_ =
      registry->Histogram("demux_stall_us", {{"session", session}});
  for (uint32_t w = 0; w < num_shards_; ++w) {
    shards_[w]->depth_gauge = registry->Gauge(
        "shard_queue_depth",
        {{"session", session}, {"shard", std::to_string(w)}});
  }
}

void ShardedTracker::Drain() const {
  for (const auto& shard : shards_) {
    Backoff backoff;
    while (shard->completed.load(std::memory_order_acquire) <
           shard->published) {
      backoff.Wait();
    }
  }
}

void ShardedTracker::DebugCheckConsistency() const {
#ifndef NDEBUG
  // The engine clock (advanced by the producer-side PushBatch) is an
  // independent record of what entered the queues; the per-site clocks
  // record what the workers consumed. Any drop, duplication, or misroute
  // in the demux/queue layer breaks the equality. (CostMeter::Merge has
  // its own debug overflow checks, so the merged meter needs no second
  // recomputation here — it is the same sums by construction.)
  uint64_t site_time = merged_time_;
  for (const auto& t : site_trackers_) site_time += t->time();
  assert(site_time == time() &&
         "sharded engine lost or duplicated updates in the queues");
#endif
}

double ShardedTracker::Estimate() const {
  Drain();
  // Fixed summation order (site 0..k-1) keeps the floating-point result
  // independent of the worker count and of queue timing.
  double sum = static_cast<double>(options_.initial_value) + merged_estimate_;
  for (const auto& t : site_trackers_) sum += t->Estimate();
  return sum;
}

const CostMeter& ShardedTracker::cost() const {
  Drain();
  merged_cost_.Reset();
  merged_cost_.Merge(extra_cost_);
  for (const auto& t : site_trackers_) merged_cost_.Merge(t->cost());
  DebugCheckConsistency();
  return merged_cost_;
}

std::string ShardedTracker::name() const {
  return base_name_ + "[x" + std::to_string(num_shards_) + "]";
}

const DistributedTracker& ShardedTracker::site_tracker(uint32_t site) const {
  assert(site < site_trackers_.size());
  Drain();
  return *site_trackers_[site];
}

void ShardedTracker::MergeFrom(const DistributedTracker& other) {
  const ShardedTracker& peer = CheckedMergePeer(*this, other);
  if (peer.base_name_ != base_name_) {
    std::fprintf(stderr,
                 "ShardedTracker::MergeFrom: '%s' cannot absorb '%s' "
                 "(different base algorithms)\n",
                 name().c_str(), other.name().c_str());
    std::abort();
  }
  Drain();
  peer.Drain();
  // peer.Estimate() includes its f(0); the union carries one f(0) —
  // ours — so subtract the peer's before folding.
  merged_estimate_ +=
      peer.Estimate() - static_cast<double>(peer.options_.initial_value);
  merged_time_ += peer.time();
  extra_cost_.Merge(peer.cost());
  AdvanceTime(peer.time());
}

std::string ShardedTracker::SerializeState() const {
  Drain();
  char est[64];
  std::snprintf(est, sizeof(est), "%.17g", Estimate());
  std::string out = FormatMergeableState("sharded(" + base_name_ + ")",
                                         num_sites(), est, time(), cost());
  AppendField(&out, "v", std::to_string(kTrackerStateVersion));
  AppendField(&out, "init", std::to_string(options_.initial_value));
  AppendField(&out, "merged", EncodeDoubleBits(merged_estimate_));
  AppendField(&out, "mtime", std::to_string(merged_time_));
  AppendField(&out, "extracost", extra_cost_.SerializeCounts());
  // Emitted only when nonzero so single-node dumps (and every dump that
  // predates the hierarchy) keep their exact bytes.
  if (options_.site_base != 0) {
    AppendField(&out, "sbase", std::to_string(options_.site_base));
  }
  for (const auto& t : site_trackers_) {
    const auto* m = dynamic_cast<const Mergeable*>(t.get());
    assert(m != nullptr);  // admission requires a Mergeable base
    out += "\n  " + m->SerializeState();
  }
  return out;
}

bool ShardedTracker::RestoreState(const std::string& state,
                                  std::string* error) {
  Drain();
  // Split the dump into the engine header and one line per site.
  std::vector<std::string> lines;
  size_t start = 0;
  while (start <= state.size()) {
    size_t nl = state.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(state.substr(start));
      break;
    }
    lines.push_back(state.substr(start, nl - start));
    start = nl + 1;
  }
  if (lines.size() != site_trackers_.size() + 1) {
    if (error != nullptr) {
      *error = "sharded state has " + std::to_string(lines.size() - 1) +
               " per-site lines, this engine has " +
               std::to_string(site_trackers_.size()) + " sites";
    }
    return false;
  }
  StateFields fields;
  if (!ParseTrackerState(lines[0], "sharded(" + base_name_ + ")",
                         num_sites(), time(), &fields, error)) {
    return false;
  }
  int64_t init = 0;
  uint64_t t = 0, mtime = 0;
  double merged = 0;
  std::string extra_text;
  if (!fields.GetI64("init", &init) || !fields.GetU64("time", &t) ||
      !fields.GetU64("mtime", &mtime) ||
      !fields.GetDoubleBits("merged", &merged) ||
      !fields.GetString("extracost", &extra_text)) {
    if (error != nullptr) *error = "corrupt sharded engine state";
    return false;
  }
  if (init != options_.initial_value) {
    if (error != nullptr) {
      *error = "state was taken with initial_value=" + std::to_string(init) +
               ", this engine was constructed with " +
               std::to_string(options_.initial_value);
    }
    return false;
  }
  uint32_t sbase = 0;  // absent in pre-hierarchy dumps == 0
  if (fields.Has("sbase") && !fields.GetU32("sbase", &sbase)) {
    if (error != nullptr) *error = "corrupt sharded engine state";
    return false;
  }
  if (sbase != options_.site_base) {
    if (error != nullptr) {
      *error = "state was taken with site_base=" + std::to_string(sbase) +
               ", this engine was constructed with " +
               std::to_string(options_.site_base);
    }
    return false;
  }
  if (!extra_cost_.RestoreCounts(extra_text)) {
    if (error != nullptr) *error = "corrupt sharded engine state";
    return false;
  }
  for (size_t site = 0; site < site_trackers_.size(); ++site) {
    const std::string& line = lines[site + 1];
    if (line.rfind("  ", 0) != 0) {
      if (error != nullptr) {
        *error = "corrupt sharded engine state (per-site line " +
                 std::to_string(site) + " lacks its indent)";
      }
      return false;
    }
    auto* m = dynamic_cast<Mergeable*>(site_trackers_[site].get());
    assert(m != nullptr);
    if (!m->RestoreState(line.substr(2), error)) {
      if (error != nullptr) {
        *error = "site " + std::to_string(site) + ": " + *error;
      }
      return false;
    }
  }
  merged_estimate_ = merged;
  merged_time_ = mtime;
  AdvanceTime(t);
  DebugCheckConsistency();
  return true;
}

}  // namespace varstream
