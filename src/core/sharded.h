// ShardedTracker: the parallel ingest engine. Partitions the site space
// across W worker shards so a single run scales with cores instead of
// being pinned to one thread.
//
// Architecture (one Push/PushBatch call, producer thread on the left):
//
//   PushBatch(batch)                          worker shard w (thread)
//     demux by site ──► SPSC ring (per shard) ──► pop batch
//                        lock-free, swap-based      route each update to
//                                                   its per-site tracker
//
// The unit of partitioning is the SITE, not the worker: every one of the
// k sites owns a private single-site instance of the base algorithm
// (constructed through the TrackerRegistry with a per-site derived seed),
// and worker shard w processes the sites with site % W == w. Because the
// per-site decomposition is fixed by k alone, the worker count only
// changes *scheduling*, never results: Snapshot() under --shards 4 is
// byte-identical to --shards 1 — for the deterministic tracker exactly,
// and for the randomized tracker too, because each site's randomness
// comes from DeriveSiteSeed(seed, site), independent of W. (Had each
// worker owned one base instance over its whole site subset, the merged
// estimate would depend on W through the per-instance block partitions.)
//
// Relation to the serial algorithms: the composition is the natural
// two-level monitoring tree. For protocols whose behavior is a per-site
// function (naive, periodic) the sharded Snapshot equals the serial
// tracker's byte for byte — verified by tests. For the paper's
// block-partitioned algorithms (deterministic, randomized) each site runs
// its own section-3.1 partition over its substream f_i, so the summed
// estimate carries the per-partition guarantee
//     |f(n) - f̂(n)| <= epsilon * sum_i |f_i(n)|,
// which equals the serial epsilon*|f(n)| bound on monotone streams and
// degrades only when substreams cancel across sites. Cost totals are the
// exact sums of the per-site meters (net/cost_meter.h Merge).
//
// Only trackers registered as Mergeable (core/mergeable.h) are admitted;
// everything else is refused with an error listing the mergeable set.
//
// Threading contract: like every DistributedTracker, the public interface
// is single-threaded — one caller thread pushes and snapshots. Internally
// Push/PushBatch publish work to the shard queues and return; Estimate(),
// cost(), Snapshot() and SerializeState() drain (wait until every shard
// has consumed its queue) before reading, so reads are always consistent
// with everything pushed so far. Per-update runs therefore serialize on
// the drain after every estimate check — drive sharded runs through
// PushBatch / RunOptions::batch_size >> 1 to let the pipeline breathe.

#ifndef VARSTREAM_CORE_SHARDED_H_
#define VARSTREAM_CORE_SHARDED_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/mergeable.h"
#include "core/options.h"
#include "core/spsc_queue.h"
#include "core/tracker.h"
#include "net/cost_meter.h"
#include "obs/metrics.h"
#include "stream/update.h"

namespace varstream {

class ShardedTracker : public DistributedTracker, public Mergeable {
 public:
  /// Builds a sharded `base_name` over options.num_sites sites with
  /// `num_shards` worker threads. Fails (nullptr, *error set) when the
  /// base is unknown or not mergeable, or when num_shards is outside
  /// [1, num_sites] — the error names the valid range / the mergeable
  /// trackers, so CLI layers can surface it verbatim.
  static std::unique_ptr<ShardedTracker> Create(const std::string& base_name,
                                                const TrackerOptions& options,
                                                uint32_t num_shards,
                                                std::string* error);

  ~ShardedTracker() override;

  /// f(0) plus the per-site estimates, summed in site order (so the
  /// floating-point result is identical for every worker count). Drains.
  double Estimate() const override;

  /// The per-site meters merged into one (drains first). In debug builds
  /// the merge is cross-checked against independently summed totals and
  /// the engine's own clock — see DebugCheckConsistency.
  const CostMeter& cost() const override;

  std::string name() const override;

  uint32_t num_shards() const { return num_shards_; }
  const std::string& base_name() const { return base_name_; }

  /// The seed fed to site `site`'s base instance. A pure function of
  /// (seed, site) — never of the worker count — which is what makes
  /// randomized runs reproducible across shard sweeps.
  static uint64_t DeriveSiteSeed(uint64_t seed, uint32_t site);

  /// Read-only access to one per-site instance (drains). Tests use this
  /// to compare against hand-merged state.
  const DistributedTracker& site_tracker(uint32_t site) const;

  // Mergeable: fold another ShardedTracker (same base algorithm) over a
  // disjoint site partition into this one's totals. SerializeState dumps
  // the engine header plus every per-site instance (one indented line
  // each); RestoreState reloads the same multi-line dump into a fresh
  // engine with the same base/options — the worker count may differ,
  // since W only schedules and never shapes results.
  void MergeFrom(const DistributedTracker& other) override;
  std::string SerializeState() const override;
  bool RestoreState(const std::string& state, std::string* error) override;

  /// Wires the engine's queue instrumentation into `registry`: a
  /// `demux_stall_us` histogram (time Publish spends waiting on a full
  /// ring) plus one producer-side `shard_queue_depth` gauge per shard,
  /// all labeled {session=<session>, [shard=w]}. The slots are plain
  /// pointers written here and read only by the producer thread, so call
  /// this from the thread that owns the producer side, before pushing —
  /// never mid-stream from another thread. An unattached engine pays one
  /// null check per publish and nothing else.
  void AttachMetrics(MetricsRegistry* registry, const std::string& session);

 protected:
  void DoPush(uint32_t site, int64_t delta) override;
  void DoPushBatch(std::span<const CountUpdate> batch) override;

 private:
  // A worker shard: its queue, its thread, and the producer-side staging
  // buffer the demux fills before publishing. `published` is written by
  // the producer only; `completed` is the consumer's progress, and
  // published == completed (acquire) is the drain condition.
  struct Shard {
    SpscQueue<std::vector<CountUpdate>, 8> queue;
    std::vector<CountUpdate> staging;
    uint64_t published = 0;
    alignas(64) std::atomic<uint64_t> completed{0};
    std::thread thread;
    // Producer-side ring occupancy (published - completed), refreshed on
    // every publish. Null until AttachMetrics.
    MetricsGauge* depth_gauge = nullptr;
  };

  ShardedTracker(const std::string& base_name, const TrackerOptions& options,
                 uint32_t num_shards);

  void WorkerLoop(Shard* shard);

  /// Publishes one staged batch to its shard's ring, spinning (with
  /// backoff) while the ring is full.
  void Publish(Shard* shard);

  /// Blocks until every shard has consumed everything published. The
  /// release/acquire pair on Shard::completed orders the workers' tracker
  /// writes before the caller's subsequent reads.
  void Drain() const;

  /// Debug-only invariants after a drain: no update was lost in the
  /// queues (engine clock == summed per-site clocks) and the merged meter
  /// equals the per-kind sums of the per-site meters.
  void DebugCheckConsistency() const;

  std::string base_name_;
  TrackerOptions options_;
  uint32_t num_shards_;
  std::vector<std::unique_ptr<DistributedTracker>> site_trackers_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> stop_{false};
  MetricsHistogram* demux_stall_us_ = nullptr;  // set by AttachMetrics

  // Contributions folded in via MergeFrom (disjoint partitions run
  // elsewhere); rebuilt cost() view lives in merged_cost_.
  double merged_estimate_ = 0.0;
  uint64_t merged_time_ = 0;
  CostMeter extra_cost_;
  mutable CostMeter merged_cost_;
};

}  // namespace varstream

#endif  // VARSTREAM_CORE_SHARDED_H_
