// TrackerRegistry: name -> factory mapping over TrackerOptions for every
// DistributedTracker in the library. Trackers self-register from their own
// translation unit via VARSTREAM_REGISTER_TRACKER, so adding a tracker is
// one macro line in its .cc — no more hand-rolled string ladders in every
// tool and benchmark. (The library is built as a CMake OBJECT library so
// registration TUs are always linked; see CMakeLists.txt.)
//
//   auto tracker = TrackerRegistry::Instance().Create("deterministic", opts);
//   for (const std::string& name : TrackerRegistry::Instance().Names()) ...

#ifndef VARSTREAM_CORE_REGISTRY_H_
#define VARSTREAM_CORE_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "core/mergeable.h"
#include "core/options.h"
#include "core/tracker.h"

namespace varstream {

class TrackerRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<DistributedTracker>(const TrackerOptions&)>;

  /// Per-tracker registration record.
  struct Entry {
    Factory factory;
    /// Insertion-only baseline: feed it monotone (+1) streams only.
    bool monotone_only = false;
    /// Implements Mergeable (core/mergeable.h): coordinator state is
    /// additive across disjoint site partitions, so the sharded ingest
    /// engine (core/sharded.h) accepts it. Derived automatically by the
    /// registration macros from the class hierarchy.
    bool mergeable = false;
    /// The service's history sampler (src/history/) works through
    /// Snapshot(), which is part of the DistributedTracker NVI base —
    /// every tracker supports it by construction. The flag exists so the
    /// capability listing and SupportsHistory() have one source of truth,
    /// and a registry pin test asserts it is true for every tracker: a
    /// future opt-out must flip the test, not silently drop sampling.
    bool history_sampling = true;
  };

  /// The process-wide registry (populated during static initialization by
  /// the VARSTREAM_REGISTER_TRACKER macros).
  static TrackerRegistry& Instance();

  /// Registers a canonical tracker name. Aborts on duplicates (two
  /// trackers claiming one name is a build error, not a runtime
  /// condition). Returns true so it can seed a static initializer.
  bool Register(const std::string& name, Factory factory,
                bool monotone_only = false, bool mergeable = false);

  /// Registers an alternate CLI spelling resolving to `canonical`.
  bool RegisterAlias(const std::string& alias, const std::string& canonical);

  /// Constructs the named tracker (canonical name or alias), or nullptr if
  /// the name is unknown.
  std::unique_ptr<DistributedTracker> Create(
      const std::string& name, const TrackerOptions& options) const;

  bool Contains(const std::string& name) const;

  /// True if the named tracker only accepts insertion-only streams.
  bool IsMonotoneOnly(const std::string& name) const;

  /// True if the named tracker implements Mergeable and can therefore be
  /// driven by the sharded ingest engine (core/sharded.h).
  bool IsMergeable(const std::string& name) const;

  /// True if the named tracker's sessions can be history-sampled by the
  /// service (src/history/). Currently true for every registered tracker
  /// (Snapshot() is on the NVI base); pinned by a registry test.
  bool SupportsHistory(const std::string& name) const;

  /// Sorted canonical names (aliases omitted).
  std::vector<std::string> Names() const;

  /// Sorted canonical names of mergeable trackers only — the valid values
  /// for --shards, quoted by the engine's admission errors.
  std::vector<std::string> MergeableNames() const;

  /// The multi-line listing printed by the tools' --list-trackers: one
  /// row per canonical name with a capability column (mergeable /
  /// monotone-only).
  std::string ListingText() const;

 private:
  TrackerRegistry() = default;

  const Entry* Find(const std::string& name) const;

  std::map<std::string, Entry> entries_;
  std::map<std::string, std::string> aliases_;
};

/// Registers `Type` (constructible from const TrackerOptions&) under
/// `name`. Place in the tracker's .cc at namespace scope.
#define VARSTREAM_REGISTER_TRACKER(name, Type)                          \
  VARSTREAM_REGISTER_TRACKER_IMPL(name, Type, false, __COUNTER__)

/// Same, for insertion-only baselines (the registry tags them so generic
/// callers know to feed monotone streams).
#define VARSTREAM_REGISTER_MONOTONE_TRACKER(name, Type)                 \
  VARSTREAM_REGISTER_TRACKER_IMPL(name, Type, true, __COUNTER__)

/// Registers an extra CLI spelling for an already-registered tracker.
#define VARSTREAM_REGISTER_TRACKER_ALIAS(alias, canonical)              \
  VARSTREAM_REGISTER_ALIAS_IMPL(alias, canonical, __COUNTER__)

#define VARSTREAM_REGISTER_TRACKER_IMPL(name, Type, monotone, counter)  \
  VARSTREAM_REGISTER_TRACKER_IMPL2(name, Type, monotone, counter)
#define VARSTREAM_REGISTER_TRACKER_IMPL2(name, Type, monotone, counter) \
  namespace {                                                           \
  const bool varstream_tracker_registrar_##counter =                    \
      ::varstream::TrackerRegistry::Instance().Register(                \
          name,                                                         \
          [](const ::varstream::TrackerOptions& options) {              \
            return std::unique_ptr<::varstream::DistributedTracker>(    \
                std::make_unique<Type>(options));                       \
          },                                                            \
          monotone,                                                     \
          std::is_base_of_v<::varstream::Mergeable, Type>);             \
  }

#define VARSTREAM_REGISTER_ALIAS_IMPL(alias, canonical, counter)        \
  VARSTREAM_REGISTER_ALIAS_IMPL2(alias, canonical, counter)
#define VARSTREAM_REGISTER_ALIAS_IMPL2(alias, canonical, counter)       \
  namespace {                                                           \
  const bool varstream_tracker_alias_registrar_##counter =              \
      ::varstream::TrackerRegistry::Instance().RegisterAlias(alias,     \
                                                             canonical); \
  }

}  // namespace varstream

#endif  // VARSTREAM_CORE_REGISTRY_H_
