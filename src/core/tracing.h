// Section 4 / Appendix D: the tracing problem. A summary of the sequence f
// must answer queries "what was f(t)?" for any past t with relative error
// epsilon. Lemma D.1 shows a tracing lower bound implies a
// space+communication lower bound for distributed tracking: simulate the
// tracker, record all communication, and replay it up to time t.
//
// HistoryTracer is that reduction made concrete: it records the
// coordinator's estimate changepoints (one per message received, which is
// exactly "recording all communication") and answers historical queries by
// binary search. Its summary size in bits is what experiments E11/E13
// compare against the Omega(r log n) and Omega(v/epsilon) lower bounds.

#ifndef VARSTREAM_CORE_TRACING_H_
#define VARSTREAM_CORE_TRACING_H_

#include <cstdint>
#include <vector>

namespace varstream {

class HistoryTracer {
 public:
  /// `initial_estimate` is the coordinator's estimate at time 0.
  explicit HistoryTracer(double initial_estimate = 0.0);

  /// Records that at time t (monotone nondecreasing across calls) the
  /// coordinator's estimate is `estimate`. Consecutive duplicates are
  /// coalesced — only changepoints consume space.
  void Observe(uint64_t t, double estimate);

  /// The estimate in force at time t (the last changepoint <= t).
  double Query(uint64_t t) const;

  /// Number of stored changepoints (excluding the initial value).
  uint64_t changepoints() const { return times_.size(); }

  /// Summary size: changepoints * (time + value) bits, the storage cost of
  /// replaying all communication as in Lemma D.1. `time_bits` defaults to
  /// 64; pass ceil(log2(n)) to get the paper's O(log n)-bit messages.
  uint64_t SummaryBits(uint64_t time_bits = 64,
                       uint64_t value_bits = 64) const;

 private:
  double initial_estimate_;
  std::vector<uint64_t> times_;
  std::vector<double> estimates_;
};

}  // namespace varstream

#endif  // VARSTREAM_CORE_TRACING_H_
