#include "core/block_partition.h"

#include <cassert>
#include <cstdlib>

#include "common/math_util.h"

namespace varstream {

BlockPartitioner::BlockPartitioner(SimNetwork* net, int64_t f0)
    : net_(net), sites_(net->num_sites()) {
  StartBlock(f0);
}

int BlockPartitioner::ScaleFor(uint64_t abs_f, uint32_t k) {
  if (abs_f < 4ULL * k) return 0;
  // The unique r >= 1 with 2^r*2k <= abs_f < 2^r*4k is floor(log2(f/2k)).
  int r = FloorLog2(abs_f / (2ULL * k));
  assert(r >= 1);
  assert(Pow2(r) * 2 * k <= abs_f && abs_f < Pow2(r) * 4 * k);
  return r;
}

void BlockPartitioner::StartBlock(int64_t f_exact) {
  uint32_t k = net_->num_sites();
  int r = ScaleFor(AbsU64(f_exact), k);
  uint64_t h = CeilPow2Half(r);
  block_ = BlockInfo{
      .index = block_.index + (time_ > 0 ? 1 : 0),
      .start_time = time_,
      .f_start = f_exact,
      .r = r,
      .site_threshold = h,
      .end_threshold = h * k,
  };
  t_hat_ = 0;
}

bool BlockPartitioner::OnArrival(uint32_t site, int64_t delta) {
  assert(delta == 1 || delta == -1);
  assert(site < sites_.size());
  ++time_;
  SiteState& s = sites_[site];
  ++s.ci;
  s.fi += delta;
  if (s.ci >= block_.site_threshold) {
    net_->SendToCoordinator(site, MessageKind::kCiReport);
    t_hat_ += s.ci;
    s.ci = 0;
    if (t_hat_ >= block_.end_threshold) {
      CloseBlock();
      return true;
    }
  }
  return false;
}

void BlockPartitioner::CloseBlock() {
  // Poll every site: request + reply carrying (ci, fi).
  int64_t drift = 0;
  uint64_t residual = 0;
  for (uint32_t i = 0; i < sites_.size(); ++i) {
    net_->SendToSite(i, MessageKind::kPollRequest, /*words=*/0);
    net_->SendToCoordinator(i, MessageKind::kPollReply, /*words=*/2);
    residual += sites_[i].ci;
    drift += sites_[i].fi;
    sites_[i].ci = 0;
    sites_[i].fi = 0;
  }
  // t_hat_ + residual is the exact number of updates in the closed block,
  // and time_ already counted them one by one, so they agree by
  // construction; the poll is what makes this knowledge *coordinator-side*.
  (void)residual;
  int64_t f_exact = block_.f_start + drift;
  BlockInfo closed = block_;
  ++blocks_completed_;
  StartBlock(f_exact);
  net_->Broadcast(MessageKind::kBroadcast);
  if (block_end_callback_) block_end_callback_(closed, block_);
}

}  // namespace varstream
