#include "core/block_partition.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/math_util.h"
#include "core/state_codec.h"

namespace varstream {

BlockPartitioner::BlockPartitioner(SimNetwork* net, int64_t f0)
    : net_(net), sites_(net->num_sites()) {
  StartBlock(f0);
}

int BlockPartitioner::ScaleFor(uint64_t abs_f, uint32_t k) {
  if (abs_f < 4ULL * k) return 0;
  // The unique r >= 1 with 2^r*2k <= abs_f < 2^r*4k is floor(log2(f/2k)).
  int r = FloorLog2(abs_f / (2ULL * k));
  assert(r >= 1);
  assert(Pow2(r) * 2 * k <= abs_f && abs_f < Pow2(r) * 4 * k);
  return r;
}

void BlockPartitioner::StartBlock(int64_t f_exact) {
  uint32_t k = net_->num_sites();
  int r = ScaleFor(AbsU64(f_exact), k);
  uint64_t h = CeilPow2Half(r);
  block_ = BlockInfo{
      .index = block_.index + (time_ > 0 ? 1 : 0),
      .start_time = time_,
      .f_start = f_exact,
      .r = r,
      .site_threshold = h,
      .end_threshold = h * k,
  };
  t_hat_ = 0;
}

bool BlockPartitioner::OnArrival(uint32_t site, int64_t delta) {
  assert(delta == 1 || delta == -1);
  assert(site < sites_.size());
  ++time_;
  SiteState& s = sites_[site];
  ++s.ci;
  s.fi += delta;
  if (s.ci >= block_.site_threshold) {
    net_->SendToCoordinator(site, MessageKind::kCiReport);
    t_hat_ += s.ci;
    s.ci = 0;
    if (t_hat_ >= block_.end_threshold) {
      CloseBlock();
      return true;
    }
  }
  return false;
}

void BlockPartitioner::CloseBlock() {
  // Poll every site: request + reply carrying (ci, fi).
  int64_t drift = 0;
  uint64_t residual = 0;
  for (uint32_t i = 0; i < sites_.size(); ++i) {
    net_->SendToSite(i, MessageKind::kPollRequest, /*words=*/0);
    net_->SendToCoordinator(i, MessageKind::kPollReply, /*words=*/2);
    residual += sites_[i].ci;
    drift += sites_[i].fi;
    sites_[i].ci = 0;
    sites_[i].fi = 0;
  }
  // t_hat_ + residual is the exact number of updates in the closed block,
  // and time_ already counted them one by one, so they agree by
  // construction; the poll is what makes this knowledge *coordinator-side*.
  (void)residual;
  int64_t f_exact = block_.f_start + drift;
  BlockInfo closed = block_;
  ++blocks_completed_;
  StartBlock(f_exact);
  net_->Broadcast(MessageKind::kBroadcast);
  if (block_end_callback_) block_end_callback_(closed, block_);
}

std::string BlockPartitioner::SerializeState() const {
  std::string out = std::to_string(block_.index) + ',' +
                    std::to_string(block_.start_time) + ',' +
                    std::to_string(block_.f_start) + ',' +
                    std::to_string(block_.r) + ',' +
                    std::to_string(block_.site_threshold) + ',' +
                    std::to_string(block_.end_threshold) + ',' +
                    std::to_string(t_hat_) + ',' + std::to_string(time_) +
                    ',' + std::to_string(blocks_completed_);
  out += ';';
  std::vector<std::pair<int64_t, int64_t>> pairs;
  pairs.reserve(sites_.size());
  for (const SiteState& s : sites_) {
    pairs.emplace_back(static_cast<int64_t>(s.ci), s.fi);
  }
  out += JoinI64Pairs(pairs);
  return out;
}

bool BlockPartitioner::RestoreState(const std::string& text) {
  size_t semi = text.find(';');
  if (semi == std::string::npos) return false;
  // Head: nine comma-separated integers, parsed strictly (the state_codec
  // parsers reject partial tokens, signs on unsigned fields, and
  // whitespace — a CRC-valid but hand-damaged dump must not half-load).
  std::string head = text.substr(0, semi);
  std::vector<std::string> tokens;
  size_t start = 0;
  for (;;) {
    size_t comma = head.find(',', start);
    if (comma == std::string::npos) {
      tokens.push_back(head.substr(start));
      break;
    }
    tokens.push_back(head.substr(start, comma - start));
    start = comma + 1;
  }
  if (tokens.size() != 9) return false;
  uint64_t index = 0, start_time = 0, site_threshold = 0, end_threshold = 0,
           t_hat = 0, time = 0, blocks = 0;
  int64_t f_start = 0, r = 0;
  if (!ParseU64Text(tokens[0], &index) ||
      !ParseU64Text(tokens[1], &start_time) ||
      !ParseI64Text(tokens[2], &f_start) ||
      !ParseI64Text(tokens[3], &r) || r < 0 || r > 62 ||
      !ParseU64Text(tokens[4], &site_threshold) ||
      !ParseU64Text(tokens[5], &end_threshold) ||
      !ParseU64Text(tokens[6], &t_hat) || !ParseU64Text(tokens[7], &time) ||
      !ParseU64Text(tokens[8], &blocks)) {
    return false;
  }
  BlockInfo block;
  block.index = index;
  block.start_time = start_time;
  block.f_start = f_start;
  block.r = static_cast<int>(r);
  block.site_threshold = site_threshold;
  block.end_threshold = end_threshold;

  std::vector<std::pair<int64_t, int64_t>> pairs;
  if (!ParseI64Pairs(text.substr(semi + 1), sites_.size(), &pairs)) {
    return false;
  }
  std::vector<SiteState> sites;
  sites.reserve(pairs.size());
  for (const auto& [ci, fi] : pairs) {
    if (ci < 0) return false;
    sites.push_back(SiteState{static_cast<uint64_t>(ci), fi});
  }

  block_ = block;
  sites_ = std::move(sites);
  t_hat_ = t_hat;
  time_ = time;
  blocks_completed_ = blocks;
  return true;
}

}  // namespace varstream
