// ExperimentSuite: declarative cross-product expansion and parallel
// execution of Scenarios. A SuiteSpec lists trackers, streams, epsilons,
// and seeds; ExpandSuite crosses them into concrete Scenarios; RunSuite
// executes them on a thread pool. Because every Scenario derives its
// randomness deterministically from its own fields (core/scenario.h),
// the result vector is identical whatever the thread count — verified by
// tests/suite_test.cc.
//
//   SuiteSpec spec;
//   spec.trackers = {"deterministic", "randomized"};
//   spec.streams = {"random-walk", "sawtooth"};
//   spec.epsilons = {0.05, 0.1};
//   spec.seeds = {1, 2, 3};
//   auto scenarios = ExpandSuite(spec);           // 2 x 2 x 2 x 3 = 24
//   auto results = RunSuite(scenarios, 8);        // 8 worker threads
//   WriteFileOrDie("results.json", SuiteResultsToJson(results));

#ifndef VARSTREAM_CORE_SUITE_H_
#define VARSTREAM_CORE_SUITE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/scenario.h"

namespace varstream {

/// The axes of a suite. Empty tracker/stream lists mean "every registered
/// name"; the scalar fields are shared by all expanded scenarios.
struct SuiteSpec {
  std::vector<std::string> trackers;   ///< empty = all registered trackers
  std::vector<std::string> streams;    ///< empty = all registered streams
  std::vector<std::string> assigners = {"uniform"};
  std::vector<double> epsilons = {0.1};
  std::vector<uint64_t> seeds = {1};
  uint32_t num_sites = 8;
  uint64_t n = 100000;
  uint64_t batch_size = 1;
  uint64_t period = 64;
  /// Worker shards per scenario: 0 = serial engine, >= 1 = sharded ingest
  /// engine (mergeable trackers only; see core/sharded.h).
  uint32_t num_shards = 0;
  std::map<std::string, double> params;  ///< stream knobs, shared

  /// Drop (insertion-only tracker) x (non-monotone stream) pairs — and,
  /// when num_shards > 0, non-mergeable trackers — instead of expanding
  /// scenarios that can only fail.
  bool skip_incompatible = true;
};

/// Crosses the spec's axes into concrete scenarios, in a deterministic
/// order (trackers, then streams, then assigners, epsilons, seeds).
std::vector<Scenario> ExpandSuite(const SuiteSpec& spec);

/// Runs every scenario on `num_threads` workers (clamped to >= 1).
/// results[i] always corresponds to scenarios[i]; the output is
/// byte-identical for any thread count.
std::vector<ScenarioResult> RunSuite(const std::vector<Scenario>& scenarios,
                                     unsigned num_threads = 1);

/// The whole result set as one JSON document / CSV table (schema in
/// README.md).
std::string SuiteResultsToJson(const std::vector<ScenarioResult>& results);
std::string SuiteResultsToCsv(const std::vector<ScenarioResult>& results);

}  // namespace varstream

#endif  // VARSTREAM_CORE_SUITE_H_
