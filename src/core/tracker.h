// The public interface implemented by every distributed count tracker in
// the library — the paper's algorithms (sections 3.3, 3.4) and the
// baselines they are compared against.
//
// The interface is a non-virtual-interface (NVI) layer: callers use the
// concrete entry points Push / PushBatch / Snapshot, and the base class
// handles validation, unit expansion (Appendix C) for trackers that only
// understand ±1 arrivals, and time accounting. Concrete trackers override
// the protected DoPush / DoPushBatch hooks; hot trackers override
// DoPushBatch to amortize per-update dispatch overhead across a batch.

#ifndef VARSTREAM_CORE_TRACKER_H_
#define VARSTREAM_CORE_TRACKER_H_

#include <cstdint>
#include <span>
#include <string>

#include "net/cost_meter.h"
#include "stream/update.h"

namespace varstream {

/// One consistent view of a tracker: the coordinator's estimate together
/// with the clock and communication spent producing it. Replaces the
/// Estimate()/time()/cost() stitching that every caller used to hand-roll.
struct TrackerSnapshot {
  double estimate = 0.0;   ///< coordinator's current estimate of f(n)
  uint64_t time = 0;       ///< unit updates consumed (the current time n)
  uint64_t messages = 0;   ///< total messages sent so far
  uint64_t bits = 0;       ///< total bits sent so far

  bool operator==(const TrackerSnapshot&) const = default;
};

/// A coordinator + k sites tracking an integer f(n) defined by integer
/// updates arriving at the sites. After each Push/PushBatch the
/// coordinator's estimate is available via Estimate() or Snapshot();
/// communication is accounted in cost().
class DistributedTracker {
 public:
  /// How a concrete tracker consumes update deltas. Declared by the
  /// subclass at construction; the base class adapts arbitrary-magnitude
  /// input to it.
  enum class UpdateSupport {
    /// DoPush accepts any nonzero int64 delta directly.
    kArbitrary,
    /// DoPush requires delta = ±1; the base class expands a magnitude-m
    /// update into m unit arrivals (Appendix C simulation).
    kUnit,
    /// DoPush requires delta = +1 (insertion-only baselines); positive
    /// updates are unit-expanded, negative deltas are rejected.
    kMonotoneUnit,
  };

  virtual ~DistributedTracker() = default;

  DistributedTracker(const DistributedTracker&) = delete;
  DistributedTracker& operator=(const DistributedTracker&) = delete;

  /// Delivers update f'(n) = delta to `site`. Any nonzero int64 delta is
  /// accepted (monotone trackers require delta > 0); delta = 0 is a no-op.
  /// Advances time by |delta| unit steps — the length of the equivalent
  /// ±1 stream, so time() is comparable across trackers regardless of how
  /// each consumes the update.
  void Push(uint32_t site, int64_t delta);

  /// Delivers a batch of updates in order, equivalent to calling Push on
  /// each element but with per-call overhead amortized across the batch
  /// (and further by trackers that override DoPushBatch). Estimates, cost
  /// and time after the call are identical to the per-update loop.
  void PushBatch(std::span<const CountUpdate> batch);

  /// The estimate together with the clock and cost that produced it.
  TrackerSnapshot Snapshot() const;

  /// The coordinator's current estimate of f(n). Double because randomized
  /// estimators carry the fractional 1/p correction of Huang et al.
  virtual double Estimate() const = 0;

  /// Communication spent so far.
  virtual const CostMeter& cost() const = 0;

  /// Number of unit updates consumed so far (the current time n).
  uint64_t time() const { return time_; }

  uint32_t num_sites() const { return num_sites_; }

  /// How this tracker consumes deltas (kUnit trackers pay the Appendix C
  /// expansion on large updates; kArbitrary trackers ingest them in one
  /// step).
  UpdateSupport update_support() const { return support_; }

  virtual std::string name() const = 0;

 protected:
  DistributedTracker(uint32_t num_sites, UpdateSupport support);

  /// Consumes one update. delta is ±1 for kUnit, +1 for kMonotoneUnit,
  /// any nonzero value for kArbitrary — the base class has already
  /// validated and expanded as needed.
  virtual void DoPush(uint32_t site, int64_t delta) = 0;

  /// Consumes a validated batch (entries may have delta = 0; skip them).
  /// The default implementation expands and loops over DoPush; override
  /// to amortize per-update work. Overrides must be observably equivalent
  /// to the default (same estimates, cost, and time).
  virtual void DoPushBatch(std::span<const CountUpdate> batch);

  /// Expands `delta` per the declared UpdateSupport and feeds DoPush.
  /// Does not touch the clock (Push/PushBatch advance it).
  void Dispatch(uint32_t site, int64_t delta);

  /// For auxiliary entry points (e.g. SingleSiteTracker::Update) that
  /// consume time outside Push/PushBatch.
  void AdvanceTime(uint64_t steps) { time_ += steps; }

 private:
  void Validate(uint32_t site, int64_t delta) const;

  uint32_t num_sites_;
  UpdateSupport support_;
  uint64_t time_ = 0;
};

}  // namespace varstream

#endif  // VARSTREAM_CORE_TRACKER_H_
