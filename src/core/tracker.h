// The public interface implemented by every distributed count tracker in
// the library — the paper's algorithms (sections 3.3, 3.4) and the
// baselines they are compared against.

#ifndef VARSTREAM_CORE_TRACKER_H_
#define VARSTREAM_CORE_TRACKER_H_

#include <cstdint>
#include <string>

#include "net/cost_meter.h"

namespace varstream {

/// A coordinator + k sites tracking an integer f(n) defined by +-1 updates
/// arriving at the sites. After each Push the coordinator's estimate is
/// available via Estimate(); communication is accounted in cost().
class DistributedTracker {
 public:
  virtual ~DistributedTracker() = default;

  /// Delivers update f'(n) = delta (must be +1 or -1; expand larger updates
  /// with UnitExpansionGenerator) to `site`. Advances time by one step.
  virtual void Push(uint32_t site, int64_t delta) = 0;

  /// The coordinator's current estimate of f(n). Double because randomized
  /// estimators carry the fractional 1/p correction of Huang et al.
  virtual double Estimate() const = 0;

  /// Communication spent so far.
  virtual const CostMeter& cost() const = 0;

  /// Number of updates pushed so far (the current time n).
  virtual uint64_t time() const = 0;

  virtual uint32_t num_sites() const = 0;
  virtual std::string name() const = 0;
};

}  // namespace varstream

#endif  // VARSTREAM_CORE_TRACKER_H_
