#include "core/single_site_tracker.h"

#include <cassert>
#include <cmath>
#include <cstdlib>

#include "common/math_util.h"

namespace varstream {

SingleSiteTracker::SingleSiteTracker(const TrackerOptions& options)
    : options_(options),
      net_(std::make_unique<SimNetwork>(1)),
      value_(options.initial_value),
      estimate_(options.initial_value) {
  assert(options.epsilon > 0 && options.epsilon < 1);
}

void SingleSiteTracker::Push(uint32_t site, int64_t delta) {
  assert(site == 0);
  (void)site;
  Update(value_ + delta);
}

void SingleSiteTracker::Update(int64_t value) {
  ++time_;
  net_->Tick();
  value_ = value;
  // Send f whenever |f - f̂| > epsilon*|f|. Note that at f = 0 any nonzero
  // estimate violates the condition, so the coordinator is resynced there.
  double error = std::abs(static_cast<double>(value_ - estimate_));
  double budget =
      options_.epsilon * static_cast<double>(AbsU64(value_));
  if (error > budget) {
    net_->SendToCoordinator(0, MessageKind::kSync);
    estimate_ = value_;
  }
}

}  // namespace varstream
