#include "core/single_site_tracker.h"

#include <cassert>
#include <cmath>
#include <cstdlib>

#include "common/math_util.h"
#include "core/registry.h"

namespace varstream {

SingleSiteTracker::SingleSiteTracker(const TrackerOptions& options)
    : DistributedTracker(1, UpdateSupport::kArbitrary),
      options_(options),
      net_(std::make_unique<SimNetwork>(1)),
      value_(options.initial_value),
      estimate_(options.initial_value) {
  assert(options.epsilon > 0 && options.epsilon < 1);
}

void SingleSiteTracker::DoPush(uint32_t site, int64_t delta) {
  (void)site;  // base class validated site == 0 (k = 1)
  net_->Tick(AbsU64(delta));
  value_ += delta;
  MaybeSync();
}

void SingleSiteTracker::Update(int64_t value) {
  AdvanceTime(1);
  net_->Tick();
  value_ = value;
  MaybeSync();
}

void SingleSiteTracker::MaybeSync() {
  // Send f whenever |f - f̂| > epsilon*|f|. Note that at f = 0 any nonzero
  // estimate violates the condition, so the coordinator is resynced there.
  double error = std::abs(static_cast<double>(value_ - estimate_));
  double budget =
      options_.epsilon * static_cast<double>(AbsU64(value_));
  if (error > budget) {
    net_->SendToCoordinator(0, MessageKind::kSync);
    estimate_ = value_;
  }
}

VARSTREAM_REGISTER_TRACKER("single-site", SingleSiteTracker)

}  // namespace varstream
