#include "core/suite.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>

#include "core/compat.h"
#include "core/registry.h"
#include "stream/source.h"

namespace varstream {

std::vector<Scenario> ExpandSuite(const SuiteSpec& spec) {
  const TrackerRegistry& trackers = TrackerRegistry::Instance();
  const StreamRegistry& streams = StreamRegistry::Instance();
  std::vector<std::string> tracker_names =
      spec.trackers.empty() ? trackers.Names() : spec.trackers;
  std::vector<std::string> stream_names =
      spec.streams.empty() ? streams.StreamNames() : spec.streams;

  std::vector<Scenario> scenarios;
  for (const std::string& tracker : tracker_names) {
    if (spec.skip_incompatible &&
        !CheckShardPairing(tracker, spec.num_shards, spec.num_sites).ok) {
      continue;  // the sharded engine refuses non-mergeable trackers
    }
    for (const std::string& stream : stream_names) {
      if (spec.skip_incompatible &&
          !CheckTrackerStreamPairing(tracker, stream).ok) {
        continue;
      }
      for (const std::string& assigner : spec.assigners) {
        for (double epsilon : spec.epsilons) {
          for (uint64_t seed : spec.seeds) {
            Scenario s;
            s.tracker = tracker;
            s.stream = stream;
            s.assigner = assigner;
            s.num_sites = spec.num_sites;
            s.epsilon = epsilon;
            s.n = spec.n;
            s.seed = seed;
            s.batch_size = spec.batch_size;
            s.period = spec.period;
            s.num_shards = spec.num_shards;
            s.params = spec.params;
            scenarios.push_back(std::move(s));
          }
        }
      }
    }
  }
  return scenarios;
}

std::vector<ScenarioResult> RunSuite(const std::vector<Scenario>& scenarios,
                                     unsigned num_threads) {
  std::vector<ScenarioResult> results(scenarios.size());
  if (scenarios.empty()) return results;
  if (num_threads < 1) num_threads = 1;
  num_threads = static_cast<unsigned>(
      std::min<size_t>(num_threads, scenarios.size()));

  if (num_threads == 1) {
    for (size_t i = 0; i < scenarios.size(); ++i) {
      results[i] = RunScenario(scenarios[i]);
    }
    return results;
  }

  // Work-stealing by atomic index: each worker claims the next unclaimed
  // scenario and writes into its own slot, so the result order (and every
  // result value — scenarios are self-seeded) is independent of thread
  // scheduling.
  std::atomic<size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (unsigned w = 0; w < num_threads; ++w) {
    workers.emplace_back([&scenarios, &results, &next] {
      for (;;) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= scenarios.size()) return;
        results[i] = RunScenario(scenarios[i]);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  return results;
}

std::string SuiteResultsToJson(const std::vector<ScenarioResult>& results) {
  size_t failed = 0;
  for (const ScenarioResult& r : results) {
    if (!r.ok) ++failed;
  }
  std::string json = "{\"schema\":\"varstream-suite-v1\",\"count\":" +
                     std::to_string(results.size()) +
                     ",\"failed\":" + std::to_string(failed) +
                     ",\"results\":[";
  for (size_t i = 0; i < results.size(); ++i) {
    if (i > 0) json += ",";
    json += "\n" + ScenarioResultToJson(results[i]);
  }
  json += "\n]}\n";
  return json;
}

std::string SuiteResultsToCsv(const std::vector<ScenarioResult>& results) {
  std::string csv = ScenarioResultCsvHeader() + "\n";
  for (const ScenarioResult& r : results) {
    csv += ScenarioResultToCsvRow(r) + "\n";
  }
  return csv;
}

}  // namespace varstream
