#include "core/quantile_tracker.h"

#include <cassert>
#include <cmath>

#include "common/math_util.h"

namespace varstream {

namespace {

std::vector<uint64_t> DyadicWidths(uint32_t log_universe) {
  std::vector<uint64_t> widths;
  widths.reserve(log_universe + 1);
  for (uint32_t j = 0; j <= log_universe; ++j) {
    widths.push_back(1ULL << (log_universe - j));
  }
  return widths;
}

}  // namespace

QuantileTracker::QuantileTracker(const TrackerOptions& options,
                                 uint32_t log_universe)
    : options_(options),
      log_universe_(log_universe),
      net_(std::make_unique<SimNetwork>(options.num_sites)),
      aggregate_(DyadicWidths(log_universe)) {
  assert(options.epsilon > 0 && options.epsilon < 1);
  assert(log_universe >= 1 && log_universe <= 30);
  per_level_epsilon_ =
      options.epsilon / static_cast<double>(log_universe_ + 1);
  site_f_.assign(options.num_sites, CounterBank(DyadicWidths(log_universe)));
  site_unsent_.assign(options.num_sites,
                      CounterBank(DyadicWidths(log_universe)));
  partitioner_ = std::make_unique<BlockPartitioner>(net_.get(), 0);
  partitioner_->set_block_end_callback(
      [this](const BlockInfo& closed, const BlockInfo& next) {
        OnBlockEnd(closed, next);
      });
}

double QuantileTracker::Threshold(int r) const {
  return per_level_epsilon_ * static_cast<double>(Pow2(r)) / 3.0;
}

uint64_t QuantileTracker::CounterIndex(uint32_t level, uint64_t item) const {
  return aggregate_.FlatIndex(level, item >> level);
}

void QuantileTracker::Push(uint32_t site, uint64_t item, int32_t delta) {
  assert(delta == 1 || delta == -1);
  assert(site < options_.num_sites);
  assert(item < universe());
  net_->Tick();

  CounterBank& f_bank = site_f_[site];
  CounterBank& u_bank = site_unsent_[site];
  for (uint32_t level = 0; level <= log_universe_; ++level) {
    uint64_t idx = CounterIndex(level, item);
    f_bank.flat(idx) += delta;
    u_bank.flat(idx) += delta;
  }

  bool closed = partitioner_->OnArrival(site, delta);
  if (closed) return;

  double theta = Threshold(partitioner_->block().r);
  for (uint32_t level = 0; level <= log_universe_; ++level) {
    uint64_t idx = CounterIndex(level, item);
    int64_t unsent = u_bank.flat(idx);
    if (static_cast<double>(AbsU64(unsent)) >= theta) {
      net_->SendToCoordinator(site, MessageKind::kDrift, /*words=*/2);
      aggregate_.flat(idx) += unsent;
      u_bank.flat(idx) = 0;
    }
  }
}

void QuantileTracker::OnBlockEnd(const BlockInfo& /*closed*/,
                                 const BlockInfo& next) {
  aggregate_.Clear();
  double theta = Threshold(next.r);
  for (uint32_t s = 0; s < site_f_.size(); ++s) {
    CounterBank& f_bank = site_f_[s];
    site_unsent_[s].Clear();
    for (uint64_t idx = 0; idx < f_bank.total_counters(); ++idx) {
      int64_t value = f_bank.flat(idx);
      if (value == 0) continue;
      if (static_cast<double>(AbsU64(value)) >= theta) {
        net_->SendToCoordinator(s, MessageKind::kEndOfBlockReport,
                                /*words=*/2);
        aggregate_.flat(idx) += value;
      }
    }
  }
}

double QuantileTracker::Rank(uint64_t x) const {
  assert(x <= universe());
  // Decompose [0, x) into at most one dyadic interval per level: for each
  // set bit j of x, the interval of length 2^j starting at the prefix of
  // the higher bits.
  double rank = 0;
  uint64_t prefix = 0;
  for (int j = static_cast<int>(log_universe_); j >= 0; --j) {
    if (x & (1ULL << j)) {
      rank += static_cast<double>(
          aggregate_.at(static_cast<uint64_t>(j), prefix >> j));
      prefix += 1ULL << j;
    }
  }
  return rank;
}

double QuantileTracker::EstimatedF1() const {
  return static_cast<double>(aggregate_.at(log_universe_, 0));
}

uint64_t QuantileTracker::Quantile(double phi) const {
  assert(phi >= 0 && phi <= 1);
  double target = phi * EstimatedF1();
  // Binary search the smallest x with Rank(x) >= target. With exact
  // counters Rank is monotone in x; tracked counters can invert it
  // locally by at most the eps*F1 error, which the quantile guarantee
  // absorbs (the returned cut's true rank is within ~2*eps*F1 of target).
  uint64_t lo = 0, hi = universe();
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (Rank(mid + 1) >= target) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace varstream
