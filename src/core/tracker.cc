#include "core/tracker.h"

#include <cassert>

#include "common/math_util.h"

namespace varstream {

DistributedTracker::DistributedTracker(uint32_t num_sites,
                                       UpdateSupport support)
    : num_sites_(num_sites), support_(support) {
  assert(num_sites >= 1);
}

void DistributedTracker::Validate(uint32_t site, int64_t delta) const {
  assert(site < num_sites_);
  assert((support_ != UpdateSupport::kMonotoneUnit || delta >= 0) &&
         "monotone tracker requires insertion-only (delta > 0) updates");
  (void)site;
  (void)delta;
}

void DistributedTracker::Dispatch(uint32_t site, int64_t delta) {
  if (support_ == UpdateSupport::kArbitrary) {
    DoPush(site, delta);
    return;
  }
  // Appendix C: simulate a magnitude-m update as m unit arrivals.
  const int64_t step = delta > 0 ? 1 : -1;
  for (uint64_t i = AbsU64(delta); i > 0; --i) DoPush(site, step);
}

void DistributedTracker::Push(uint32_t site, int64_t delta) {
  Validate(site, delta);
  if (delta == 0) return;
  time_ += AbsU64(delta);
  Dispatch(site, delta);
}

void DistributedTracker::PushBatch(std::span<const CountUpdate> batch) {
  uint64_t steps = 0;
  for (const CountUpdate& u : batch) {
    Validate(u.site, u.delta);
    steps += AbsU64(u.delta);
  }
  time_ += steps;
  DoPushBatch(batch);
}

void DistributedTracker::DoPushBatch(std::span<const CountUpdate> batch) {
  for (const CountUpdate& u : batch) {
    if (u.delta != 0) Dispatch(u.site, u.delta);
  }
}

TrackerSnapshot DistributedTracker::Snapshot() const {
  const CostMeter& c = cost();
  return TrackerSnapshot{Estimate(), time_, c.total_messages(),
                         c.total_bits()};
}

}  // namespace varstream
