// SpscQueue: a bounded lock-free single-producer / single-consumer ring.
//
// The transport under the sharded ingest engine (core/sharded.h): the
// demux stage owns the producer side of one queue per worker shard and the
// worker owns the consumer side, so neither side ever takes a lock or
// contends with any thread but its one peer. Slots transfer by swap, which
// makes the queue allocation-free in steady state when T is a container:
// the consumer swaps a processed-and-cleared vector back into the slot it
// pops, and the producer gets that capacity back on its next push into the
// same slot.
//
// Memory ordering is the classic Lamport ring: the producer publishes a
// slot with a release store of tail_ and the consumer acquires it; the
// consumer releases a slot with a release store of head_ and the producer
// acquires that. Indices are monotonically increasing (masked on access)
// so full/empty never ambiguate. Verified race-free under ThreadSanitizer
// by tests/spsc_queue_test.cc, which the CI TSan job gates on.

#ifndef VARSTREAM_CORE_SPSC_QUEUE_H_
#define VARSTREAM_CORE_SPSC_QUEUE_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <utility>

namespace varstream {

/// One producer thread may call TryPush / PushCount; one consumer thread
/// may call TryPop. Empty() is safe from either side (it is a snapshot —
/// the other side may change it immediately).
template <typename T, size_t kCapacity = 8>
class SpscQueue {
  static_assert(kCapacity >= 2 && (kCapacity & (kCapacity - 1)) == 0,
                "capacity must be a power of two >= 2");

 public:
  SpscQueue() = default;
  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side. Swaps `item` into the ring and returns true, or
  /// returns false (item untouched) when the ring is full. On success
  /// `item` holds whatever the slot previously contained — for container
  /// payloads that is the cleared-but-allocated buffer the consumer
  /// returned, ready to be refilled without reallocating.
  bool TryPush(T& item) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) == kCapacity) {
      return false;
    }
    using std::swap;
    swap(slots_[tail & kMask], item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Swaps the oldest slot out into `item` and returns
  /// true, or returns false (item untouched) when the ring is empty. The
  /// slot is left holding item's previous contents (see TryPush).
  bool TryPop(T& item) {
    const size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) {
      return false;
    }
    using std::swap;
    swap(slots_[head & kMask], item);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Snapshot emptiness test (exact only when the opposite side is idle).
  bool Empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  static constexpr size_t capacity() { return kCapacity; }

 private:
  static constexpr size_t kMask = kCapacity - 1;

  // Head, tail, and the slot array each start on their own cache line so
  // the producer's stores to tail_ never false-share with the consumer's
  // stores to head_, and neither index shares a line with slot payloads.
  alignas(64) std::atomic<size_t> head_{0};
  alignas(64) std::atomic<size_t> tail_{0};
  alignas(64) std::array<T, kCapacity> slots_{};
};

}  // namespace varstream

#endif  // VARSTREAM_CORE_SPSC_QUEUE_H_
