// Field codec for the checkpointable-tracker state dumps
// (core/mergeable.h SerializeState / RestoreState).
//
// A state line is '|'-separated: the first segment is the tracker label,
// every later segment is key=value. Values never contain '|' or newlines;
// list-valued fields are comma-separated, pair lists use ':' inside each
// element. Doubles that must survive a round trip bit-exactly are encoded
// as the hex of their IEEE-754 bit pattern (EncodeDoubleBits).
//
//   deterministic|k=8|est=42|time=9000|msgs=51|bits=4488|v=1|clk=9000|...
//
// StateFields::Parse splits a line into (label, field map); the typed
// getters return false on a missing or malformed field so RestoreState
// implementations can reject corrupt checkpoints loudly instead of
// resuming from garbage.

#ifndef VARSTREAM_CORE_STATE_CODEC_H_
#define VARSTREAM_CORE_STATE_CODEC_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace varstream {

class StateFields {
 public:
  /// Splits "label|k1=v1|k2=v2|..." — duplicate keys and empty segments
  /// are malformed.
  static bool Parse(const std::string& line, std::string* label,
                    StateFields* out);

  bool Has(const std::string& key) const;

  bool GetU64(const std::string& key, uint64_t* value) const;
  bool GetI64(const std::string& key, int64_t* value) const;
  bool GetU32(const std::string& key, uint32_t* value) const;
  /// Reads a hex bit-pattern field written by EncodeDoubleBits.
  bool GetDoubleBits(const std::string& key, double* value) const;
  bool GetString(const std::string& key, std::string* value) const;

  bool GetI64List(const std::string& key, size_t expected_size,
                  std::vector<int64_t>* values) const;
  bool GetDoubleBitsList(const std::string& key, size_t expected_size,
                         std::vector<double>* values) const;
  /// "a:b,a:b,..." with both halves int64.
  bool GetI64PairList(const std::string& key, size_t expected_size,
                      std::vector<std::pair<int64_t, int64_t>>* values) const;

 private:
  std::map<std::string, std::string> fields_;
};

/// Shared RestoreState preamble for the checkpointable trackers: parses
/// `state` into *fields and verifies the label, the site count (field
/// "k"), the state-format version (field "v" == kTrackerStateVersion),
/// and that the restoring tracker is still fresh (tracker_time == 0).
/// On failure returns false and sets *error (when non-null) to a
/// diagnostic naming the mismatch.
inline constexpr uint64_t kTrackerStateVersion = 1;
bool ParseTrackerState(const std::string& state,
                       const std::string& expected_label,
                       uint32_t expected_sites, uint64_t tracker_time,
                       StateFields* fields, std::string* error);

/// Appends "|key=value".
void AppendField(std::string* out, const std::string& key,
                 const std::string& value);

std::string EncodeDoubleBits(double value);

/// Strict whole-string numeric parsers shared by the state and
/// checkpoint codecs: the entire string must parse; empty is malformed.
bool ParseU64Text(const std::string& text, uint64_t* value);
bool ParseI64Text(const std::string& text, int64_t* value);
/// EncodeDoubleBits's inverse (hex IEEE-754 bit pattern).
bool ParseDoubleBits(const std::string& text, double* value);

/// JoinI64Pairs's inverse: parses "a:b,a:b,..." into exactly
/// expected_size pairs (empty text means zero pairs).
bool ParseI64Pairs(const std::string& text, size_t expected_size,
                   std::vector<std::pair<int64_t, int64_t>>* values);
std::string JoinI64(const std::vector<int64_t>& values);
std::string JoinDoubleBits(const std::vector<double>& values);
std::string JoinI64Pairs(
    const std::vector<std::pair<int64_t, int64_t>>& values);

}  // namespace varstream

#endif  // VARSTREAM_CORE_STATE_CODEC_H_
