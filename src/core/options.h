// Configuration shared by the distributed trackers.

#ifndef VARSTREAM_CORE_OPTIONS_H_
#define VARSTREAM_CORE_OPTIONS_H_

#include <cstdint>

namespace varstream {

/// Options for the continuous monitoring problem (k, f, epsilon).
struct TrackerOptions {
  /// Number of sites k (>= 1).
  uint32_t num_sites = 8;

  /// Relative error parameter epsilon in (0, 1).
  double epsilon = 0.1;

  /// Seed for any randomness in the tracker (randomized algorithms only).
  uint64_t seed = 0xF05CA7;

  /// f(0); the problem definition uses 0 unless stated otherwise, but the
  /// lower-bound families start at m = 1/epsilon.
  int64_t initial_value = 0;

  /// Ablation knob (deterministic tracker): the in-block send condition is
  /// |delta_i| >= drift_threshold_factor * epsilon * 2^r. The paper uses
  /// 1.0; values <= 1 keep the relative-error guarantee (error scales by
  /// the factor), values > 1 trade guarantee violations for messages.
  /// See bench_ablation (experiment E18).
  double drift_threshold_factor = 1.0;

  /// Ablation knob (randomized tracker): the per-arrival send probability
  /// is min{1, sample_constant / (epsilon * 2^r * sqrt(k))}. The paper
  /// uses 3.0, which makes the Chebyshev failure bound 2/(sample_constant
  /// ^2/ ... ) = 2/9 < 1/3; smaller constants are cheaper but fail more.
  double sample_constant = 3.0;

  /// Sync period of the periodic baseline (arrivals per site between
  /// coordinator syncs); ignored by every other tracker. Lives here so the
  /// TrackerRegistry can construct any tracker from one options struct.
  uint64_t period = 64;

  /// First global site id owned by this tracker. A leaf node in a
  /// two-level hierarchy (src/hierarchy/) tracks the contiguous global
  /// range [site_base, site_base + num_sites); local site i then derives
  /// its randomness from the GLOBAL id site_base + i, so a partitioned
  /// deployment reproduces a single full-range run bit for bit. 0 (the
  /// default) is the ordinary single-node case. Only the sharded engine
  /// consumes it; serial trackers ignore it.
  uint32_t site_base = 0;
};

}  // namespace varstream

#endif  // VARSTREAM_CORE_OPTIONS_H_
