#include "core/compat.h"

#include "core/registry.h"
#include "stream/source.h"

namespace varstream {

PairingVerdict CheckTrackerStreamPairing(const std::string& tracker,
                                         const std::string& stream) {
  const StreamRegistry& streams = StreamRegistry::Instance();
  if (!streams.ContainsStream(stream)) return {};  // name errors elsewhere
  return CheckTrackerMonotonePairing(tracker, streams.IsMonotone(stream),
                                     "stream '" + stream + "'");
}

PairingVerdict CheckTrackerMonotonePairing(const std::string& tracker,
                                           bool stream_monotone,
                                           const std::string& stream_desc) {
  if (stream_monotone) return {};
  if (!TrackerRegistry::Instance().IsMonotoneOnly(tracker)) return {};
  return {false, "tracker '" + tracker + "' is insertion-only but " +
                     stream_desc + " can emit deletions"};
}

PairingVerdict CheckExplicitShardCount(uint32_t num_shards,
                                       uint32_t num_sites) {
  if (num_shards >= 1 && num_shards <= num_sites) return {};
  return {false,
          "invalid shard count " + std::to_string(num_shards) +
              ": the site space is the unit of partitioning, so valid "
              "values are 1.." +
              std::to_string(num_sites) + " (k=" + std::to_string(num_sites) +
              " sites; omit --shards for the serial engine)"};
}

PairingVerdict CheckShardPairing(const std::string& tracker,
                                 uint32_t num_shards, uint32_t num_sites) {
  if (num_shards == 0) return {};  // serial engine
  const TrackerRegistry& trackers = TrackerRegistry::Instance();
  if (trackers.Contains(tracker) && !trackers.IsMergeable(tracker)) {
    return {false, "tracker '" + tracker +
                       "' is not mergeable and cannot be sharded; mergeable "
                       "trackers: " +
                       JoinNames(trackers.MergeableNames())};
  }
  return CheckExplicitShardCount(num_shards, num_sites);
}

PairingVerdict CheckScenarioPairing(const std::string& tracker,
                                    const std::string& stream,
                                    uint32_t num_shards,
                                    uint32_t num_sites) {
  PairingVerdict verdict = CheckTrackerStreamPairing(tracker, stream);
  if (!verdict.ok) return verdict;
  return CheckShardPairing(tracker, num_shards, num_sites);
}

}  // namespace varstream
