#include "core/sketch_frequency_tracker.h"

#include <cassert>
#include <cmath>

#include "common/math_util.h"

namespace varstream {

namespace {

std::shared_ptr<SketchMapper> BuildMapper(const TrackerOptions& options,
                                          SketchKind kind,
                                          uint64_t universe) {
  if (kind == SketchKind::kCountMinPartition) {
    Rng rng(options.seed);
    auto width =
        static_cast<uint64_t>(std::ceil(27.0 / options.epsilon));
    return std::make_shared<CountMinMapper>(1, width, &rng);
  }
  auto t = static_cast<uint64_t>(std::ceil(3.0 / options.epsilon));
  double log_u = std::log2(static_cast<double>(std::max<uint64_t>(universe, 2)));
  double log_inv_eps = std::max(std::log2(1.0 / options.epsilon), 1.0);
  auto min_width = static_cast<uint64_t>(
      std::ceil(6.0 * log_u / (options.epsilon * log_inv_eps)));
  return std::make_shared<CRPrecisMapper>(t,
                                          std::max<uint64_t>(min_width, 2));
}

}  // namespace

SketchFrequencyTracker::SketchFrequencyTracker(const TrackerOptions& options,
                                               SketchKind kind,
                                               uint64_t universe)
    : SketchFrequencyTracker(options, BuildMapper(options, kind, universe)) {}

SketchFrequencyTracker::SketchFrequencyTracker(
    const TrackerOptions& options, std::shared_ptr<SketchMapper> mapper)
    : options_(options),
      mapper_(std::move(mapper)),
      net_(std::make_unique<SimNetwork>(options.num_sites)),
      aggregate_(mapper_->RowWidths()) {
  assert(options.epsilon > 0 && options.epsilon < 1);
  site_f_.assign(options.num_sites, CounterBank(mapper_->RowWidths()));
  site_unsent_.assign(options.num_sites, CounterBank(mapper_->RowWidths()));
  partitioner_ = std::make_unique<BlockPartitioner>(net_.get(), 0);
  partitioner_->set_block_end_callback(
      [this](const BlockInfo& closed, const BlockInfo& next) {
        OnBlockEnd(closed, next);
      });
}

double SketchFrequencyTracker::Threshold(int r) const {
  return options_.epsilon * static_cast<double>(Pow2(r)) / 3.0;
}

void SketchFrequencyTracker::Push(uint32_t site, uint64_t item,
                                  int32_t delta) {
  assert(delta == 1 || delta == -1);
  assert(site < options_.num_sites);
  net_->Tick();

  // Apply the update to this site's counters in every row.
  CounterBank& f_bank = site_f_[site];
  CounterBank& u_bank = site_unsent_[site];
  for (uint64_t row = 0; row < mapper_->rows(); ++row) {
    uint64_t idx = f_bank.FlatIndex(row, mapper_->Bucket(row, item));
    f_bank.flat(idx) += delta;
    u_bank.flat(idx) += delta;
  }

  bool closed = partitioner_->OnArrival(site, delta);
  if (closed) return;

  double theta = Threshold(partitioner_->block().r);
  for (uint64_t row = 0; row < mapper_->rows(); ++row) {
    uint64_t idx = f_bank.FlatIndex(row, mapper_->Bucket(row, item));
    int64_t unsent = u_bank.flat(idx);
    if (static_cast<double>(AbsU64(unsent)) >= theta) {
      net_->SendToCoordinator(site, MessageKind::kDrift, /*words=*/2);
      aggregate_.flat(idx) += unsent;
      u_bank.flat(idx) = 0;
    }
  }
}

void SketchFrequencyTracker::OnBlockEnd(const BlockInfo& /*closed*/,
                                        const BlockInfo& next) {
  aggregate_.Clear();
  double theta = Threshold(next.r);
  for (uint32_t s = 0; s < site_f_.size(); ++s) {
    CounterBank& f_bank = site_f_[s];
    site_unsent_[s].Clear();
    for (uint64_t idx = 0; idx < f_bank.total_counters(); ++idx) {
      int64_t value = f_bank.flat(idx);
      if (value == 0) continue;
      if (static_cast<double>(AbsU64(value)) >= theta) {
        net_->SendToCoordinator(s, MessageKind::kEndOfBlockReport,
                                /*words=*/2);
        aggregate_.flat(idx) += value;
      }
    }
  }
}

double SketchFrequencyTracker::EstimateItem(uint64_t item) const {
  std::vector<double> row_estimates;
  row_estimates.reserve(mapper_->rows());
  for (uint64_t row = 0; row < mapper_->rows(); ++row) {
    row_estimates.push_back(static_cast<double>(
        aggregate_.at(row, mapper_->Bucket(row, item))));
  }
  return mapper_->Combine(row_estimates);
}

}  // namespace varstream
