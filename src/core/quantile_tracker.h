// Distributed tracking of ranks and quantiles over an insert/delete item
// stream — the order-statistics extension the paper points to in section
// 5.1 (following Yi & Zhang [16][17], who extend Cormode et al. the same
// way the paper extends its counting algorithm to frequencies).
//
// Construction. Items live in a universe [0, 2^log_universe). Every
// dyadic interval [i*2^j, (i+1)*2^j) is a "virtual counter" counting the
// live items it contains; an insert/delete of item x updates the L+1
// counters containing x (one per level j = 0..L). Each counter is tracked
// at the coordinator with the Appendix-H block/threshold protocol at
// precision eps' = eps / (L+1), so that
//
//   rank(x) = #{ live items < x } = sum of <= L disjoint dyadic counters
//
// carries total error <= (L+1) * eps' * F1 <= eps * F1. Quantile queries
// binary-search the rank function. Communication is a factor ~(L+1)^2
// over frequency tracking (L+1 counters per update, each at precision
// eps/(L+1)) — i.e. O(k * log^2(U) / eps * v(n)) messages, matching the
// polylog(U) overhead of the monotone-case quantile trackers.

#ifndef VARSTREAM_CORE_QUANTILE_TRACKER_H_
#define VARSTREAM_CORE_QUANTILE_TRACKER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/block_partition.h"
#include "core/options.h"
#include "net/network.h"
#include "sketch/counter_bank.h"

namespace varstream {

class QuantileTracker {
 public:
  /// Universe is [0, 2^log_universe); requires 1 <= log_universe <= 30.
  QuantileTracker(const TrackerOptions& options, uint32_t log_universe);

  /// Delivers one item update (delta must be +-1) observed at `site`.
  /// Requires item < 2^log_universe.
  void Push(uint32_t site, uint64_t item, int32_t delta);

  /// Estimate of rank(x) = #{ live items with value < x }, within
  /// +-eps*F1(n). x may equal 2^log_universe (then this estimates F1).
  double Rank(uint64_t x) const;

  /// Smallest x whose estimated rank reaches phi * (estimated F1).
  /// The returned cut position's true rank is within +-2*eps*F1 of the
  /// target (one eps from the rank estimate, one from the F1 estimate).
  uint64_t Quantile(double phi) const;

  /// Estimated median, = Quantile(0.5).
  uint64_t Median() const { return Quantile(0.5); }

  /// Estimated live-item total (the level-L root counter).
  double EstimatedF1() const;

  int64_t F1AtBlockStart() const { return partitioner_->f_at_block_start(); }
  const CostMeter& cost() const { return net_->cost(); }
  uint64_t time() const { return partitioner_->time(); }
  uint64_t blocks_completed() const {
    return partitioner_->blocks_completed();
  }
  uint32_t num_sites() const { return options_.num_sites; }
  uint32_t levels() const { return log_universe_ + 1; }
  uint64_t universe() const { return 1ULL << log_universe_; }
  std::string name() const { return "quantile-dyadic"; }

  /// Per-counter report threshold theta for scale r (uses eps/(L+1)).
  double Threshold(int r) const;

 private:
  void OnBlockEnd(const BlockInfo& closed, const BlockInfo& next);
  uint64_t CounterIndex(uint32_t level, uint64_t item) const;

  TrackerOptions options_;
  uint32_t log_universe_;
  double per_level_epsilon_;
  std::unique_ptr<SimNetwork> net_;
  std::unique_ptr<BlockPartitioner> partitioner_;

  // Per-site dyadic counter banks (level = row) and unsent drifts.
  std::vector<CounterBank> site_f_;
  std::vector<CounterBank> site_unsent_;
  // Coordinator aggregate per dyadic counter.
  CounterBank aggregate_;
};

}  // namespace varstream

#endif  // VARSTREAM_CORE_QUANTILE_TRACKER_H_
