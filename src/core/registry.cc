#include "core/registry.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace varstream {

TrackerRegistry& TrackerRegistry::Instance() {
  // Leaky singleton: constructed on first registration, never destroyed,
  // so registration order across translation units is irrelevant and
  // lookups from other static destructors stay valid.
  static TrackerRegistry* instance = new TrackerRegistry();
  return *instance;
}

bool TrackerRegistry::Register(const std::string& name, Factory factory,
                               bool monotone_only, bool mergeable) {
  auto [it, inserted] = entries_.emplace(
      name, Entry{std::move(factory), monotone_only, mergeable});
  if (!inserted) {
    std::fprintf(stderr, "TrackerRegistry: duplicate tracker name '%s'\n",
                 name.c_str());
    std::abort();
  }
  return true;
}

bool TrackerRegistry::RegisterAlias(const std::string& alias,
                                    const std::string& canonical) {
  auto [it, inserted] = aliases_.emplace(alias, canonical);
  if (!inserted || entries_.count(alias) != 0) {
    std::fprintf(stderr, "TrackerRegistry: duplicate tracker alias '%s'\n",
                 alias.c_str());
    std::abort();
  }
  return true;
}

const TrackerRegistry::Entry* TrackerRegistry::Find(
    const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    auto alias = aliases_.find(name);
    if (alias == aliases_.end()) return nullptr;
    it = entries_.find(alias->second);
    if (it == entries_.end()) return nullptr;
  }
  return &it->second;
}

std::unique_ptr<DistributedTracker> TrackerRegistry::Create(
    const std::string& name, const TrackerOptions& options) const {
  const Entry* entry = Find(name);
  if (entry == nullptr) return nullptr;
  return entry->factory(options);
}

bool TrackerRegistry::Contains(const std::string& name) const {
  return Find(name) != nullptr;
}

bool TrackerRegistry::IsMonotoneOnly(const std::string& name) const {
  const Entry* entry = Find(name);
  return entry != nullptr && entry->monotone_only;
}

bool TrackerRegistry::IsMergeable(const std::string& name) const {
  const Entry* entry = Find(name);
  return entry != nullptr && entry->mergeable;
}

bool TrackerRegistry::SupportsHistory(const std::string& name) const {
  const Entry* entry = Find(name);
  return entry != nullptr && entry->history_sampling;
}

std::vector<std::string> TrackerRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

std::vector<std::string> TrackerRegistry::MergeableNames() const {
  std::vector<std::string> names;
  for (const auto& [name, entry] : entries_) {
    if (entry.mergeable) names.push_back(name);
  }
  return names;  // std::map iteration is already sorted
}

std::string TrackerRegistry::ListingText() const {
  // Column-aligned so the capability tags read as a table:
  //   deterministic        mergeable, checkpointable
  //   cmy-monotone         monotone-only
  // Mergeable implies checkpointable: RestoreState is declared on the
  // Mergeable capability (core/mergeable.h), so exactly the trackers the
  // sharded engine accepts can also be served with checkpoint/restore by
  // varstream_serve (src/service/).
  size_t width = 0;
  for (const auto& [name, entry] : entries_) {
    width = std::max(width, name.size());
  }
  std::string out;
  for (const auto& [name, entry] : entries_) {
    std::string tags;
    if (entry.mergeable) tags = "mergeable, checkpointable";
    if (entry.monotone_only) {
      if (!tags.empty()) tags += ", ";
      tags += "monotone-only";
    }
    if (entry.history_sampling) {
      if (!tags.empty()) tags += ", ";
      tags += "history";
    }
    if (tags.empty()) tags = "-";
    out += name + std::string(width + 2 - name.size(), ' ') + tags + "\n";
  }
  return out;
}

}  // namespace varstream
