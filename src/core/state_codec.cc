#include "core/state_codec.h"

#include <bit>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace varstream {

namespace {

/// Splits `text` on `sep`, keeping empty tokens (so they can be rejected).
std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> tokens;
  size_t start = 0;
  for (;;) {
    size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      tokens.push_back(text.substr(start));
      return tokens;
    }
    tokens.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

bool ParseHexU64(const std::string& text, uint64_t* value) {
  if (text.empty()) return false;
  char* end = nullptr;
  *value = std::strtoull(text.c_str(), &end, 16);
  return end == text.c_str() + text.size();
}

}  // namespace

bool ParseU64Text(const std::string& text, uint64_t* value) {
  // strtoull alone would skip leading whitespace and wrap "-1" to
  // UINT64_MAX; an unsigned field must start with a digit.
  if (text.empty() || text[0] < '0' || text[0] > '9') return false;
  char* end = nullptr;
  errno = 0;
  *value = std::strtoull(text.c_str(), &end, 10);
  return errno == 0 && end == text.c_str() + text.size();
}

bool ParseI64Text(const std::string& text, int64_t* value) {
  if (text.empty()) return false;
  char* end = nullptr;
  *value = std::strtoll(text.c_str(), &end, 10);
  return end == text.c_str() + text.size();
}

bool ParseDoubleBits(const std::string& text, double* value) {
  uint64_t bits = 0;
  if (!ParseHexU64(text, &bits)) return false;
  *value = std::bit_cast<double>(bits);
  return true;
}

bool StateFields::Parse(const std::string& line, std::string* label,
                        StateFields* out) {
  std::vector<std::string> segments = Split(line, '|');
  if (segments.empty() || segments[0].empty() ||
      segments[0].find('=') != std::string::npos) {
    return false;
  }
  *label = segments[0];
  out->fields_.clear();
  for (size_t i = 1; i < segments.size(); ++i) {
    size_t eq = segments[i].find('=');
    if (eq == std::string::npos || eq == 0) return false;
    auto [it, inserted] = out->fields_.emplace(segments[i].substr(0, eq),
                                               segments[i].substr(eq + 1));
    if (!inserted) return false;
  }
  return true;
}

bool StateFields::Has(const std::string& key) const {
  return fields_.count(key) != 0;
}

bool StateFields::GetString(const std::string& key,
                            std::string* value) const {
  auto it = fields_.find(key);
  if (it == fields_.end()) return false;
  *value = it->second;
  return true;
}

bool StateFields::GetU64(const std::string& key, uint64_t* value) const {
  auto it = fields_.find(key);
  return it != fields_.end() && ParseU64Text(it->second, value);
}

bool StateFields::GetI64(const std::string& key, int64_t* value) const {
  auto it = fields_.find(key);
  return it != fields_.end() && ParseI64Text(it->second, value);
}

bool StateFields::GetU32(const std::string& key, uint32_t* value) const {
  uint64_t wide = 0;
  if (!GetU64(key, &wide) || wide > UINT32_MAX) return false;
  *value = static_cast<uint32_t>(wide);
  return true;
}

bool StateFields::GetDoubleBits(const std::string& key,
                                double* value) const {
  auto it = fields_.find(key);
  uint64_t bits = 0;
  if (it == fields_.end() || !ParseHexU64(it->second, &bits)) return false;
  *value = std::bit_cast<double>(bits);
  return true;
}

bool StateFields::GetI64List(const std::string& key, size_t expected_size,
                             std::vector<int64_t>* values) const {
  auto it = fields_.find(key);
  if (it == fields_.end()) return false;
  std::vector<std::string> tokens =
      it->second.empty() ? std::vector<std::string>{} : Split(it->second, ',');
  if (tokens.size() != expected_size) return false;
  values->clear();
  values->reserve(tokens.size());
  for (const std::string& token : tokens) {
    int64_t value = 0;
    if (!ParseI64Text(token, &value)) return false;
    values->push_back(value);
  }
  return true;
}

bool StateFields::GetDoubleBitsList(const std::string& key,
                                    size_t expected_size,
                                    std::vector<double>* values) const {
  auto it = fields_.find(key);
  if (it == fields_.end()) return false;
  std::vector<std::string> tokens =
      it->second.empty() ? std::vector<std::string>{} : Split(it->second, ',');
  if (tokens.size() != expected_size) return false;
  values->clear();
  values->reserve(tokens.size());
  for (const std::string& token : tokens) {
    uint64_t bits = 0;
    if (!ParseHexU64(token, &bits)) return false;
    values->push_back(std::bit_cast<double>(bits));
  }
  return true;
}

bool ParseI64Pairs(const std::string& text, size_t expected_size,
                   std::vector<std::pair<int64_t, int64_t>>* values) {
  std::vector<std::string> tokens =
      text.empty() ? std::vector<std::string>{} : Split(text, ',');
  if (tokens.size() != expected_size) return false;
  values->clear();
  values->reserve(tokens.size());
  for (const std::string& token : tokens) {
    size_t colon = token.find(':');
    if (colon == std::string::npos) return false;
    int64_t first = 0, second = 0;
    if (!ParseI64Text(token.substr(0, colon), &first) ||
        !ParseI64Text(token.substr(colon + 1), &second)) {
      return false;
    }
    values->emplace_back(first, second);
  }
  return true;
}

bool StateFields::GetI64PairList(
    const std::string& key, size_t expected_size,
    std::vector<std::pair<int64_t, int64_t>>* values) const {
  auto it = fields_.find(key);
  return it != fields_.end() &&
         ParseI64Pairs(it->second, expected_size, values);
}

namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

bool ParseTrackerState(const std::string& state,
                       const std::string& expected_label,
                       uint32_t expected_sites, uint64_t tracker_time,
                       StateFields* fields, std::string* error) {
  std::string label;
  if (!StateFields::Parse(state, &label, fields)) {
    SetError(error, "malformed state line");
    return false;
  }
  if (label != expected_label) {
    SetError(error, "state is for tracker '" + label + "', expected '" +
                        expected_label + "'");
    return false;
  }
  uint32_t sites = 0;
  if (!fields->GetU32("k", &sites) || sites != expected_sites) {
    SetError(error, "state site count does not match this tracker (k=" +
                        std::to_string(expected_sites) + ")");
    return false;
  }
  uint64_t version = 0;
  if (!fields->GetU64("v", &version) || version != kTrackerStateVersion) {
    SetError(error,
             "unsupported state version (want v=" +
                 std::to_string(kTrackerStateVersion) +
                 "; a summary-only dump from an older build cannot be "
                 "restored)");
    return false;
  }
  if (tracker_time != 0) {
    SetError(error, "RestoreState requires a freshly constructed tracker");
    return false;
  }
  return true;
}

void AppendField(std::string* out, const std::string& key,
                 const std::string& value) {
  *out += '|';
  *out += key;
  *out += '=';
  *out += value;
}

std::string EncodeDoubleBits(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64,
                std::bit_cast<uint64_t>(value));
  return buf;
}

std::string JoinI64(const std::vector<int64_t>& values) {
  std::string out;
  for (int64_t value : values) {
    if (!out.empty()) out += ',';
    out += std::to_string(value);
  }
  return out;
}

std::string JoinDoubleBits(const std::vector<double>& values) {
  std::string out;
  for (double value : values) {
    if (!out.empty()) out += ',';
    out += EncodeDoubleBits(value);
  }
  return out;
}

std::string JoinI64Pairs(
    const std::vector<std::pair<int64_t, int64_t>>& values) {
  std::string out;
  for (const auto& [first, second] : values) {
    if (!out.empty()) out += ',';
    out += std::to_string(first);
    out += ':';
    out += std::to_string(second);
  }
  return out;
}

}  // namespace varstream
