// Pairing admissibility: the single source of truth for which
// (tracker, stream, shards) combinations are runnable. The same two
// predicates used to be repeated — with drifting wording — in the suite
// expansion, the scenario runner, and each of the tools:
//
//   * insertion-only trackers (registry monotone_only) can only consume
//     monotone streams (registry monotone / trace-level monotone flag);
//   * the sharded ingest engine only admits mergeable trackers, with a
//     worker count in [1, k].
//
// Every layer that skips, refuses, or warns about a pairing now asks
// these helpers, so a skip decision in ExpandSuite, a RunScenario error,
// a tool diagnostic, and a testkit generator resample are guaranteed to
// agree (pinned by tests/compat_test.cc).

#ifndef VARSTREAM_CORE_COMPAT_H_
#define VARSTREAM_CORE_COMPAT_H_

#include <cstdint>
#include <string>

namespace varstream {

/// Outcome of an admissibility check: ok, or a refusal with the
/// human-readable reason every consumer prints verbatim.
struct PairingVerdict {
  bool ok = true;
  std::string reason;  ///< set when !ok

  explicit operator bool() const { return ok; }
};

/// tracker x stream by registry name: insertion-only trackers require a
/// stream registered monotone. Unknown names are *admitted* — name
/// resolution stays the caller's concern (it has richer errors listing
/// the valid names).
PairingVerdict CheckTrackerStreamPairing(const std::string& tracker,
                                         const std::string& stream);

/// Same check when the stream is not a registry name — a recorded trace
/// or a custom source — and only its monotone flag is known.
/// `stream_desc` names the stream in the refusal message.
PairingVerdict CheckTrackerMonotonePairing(const std::string& tracker,
                                           bool stream_monotone,
                                           const std::string& stream_desc);

/// An explicitly requested worker-shard count: must lie in [1, num_sites]
/// (the site space is the unit of partitioning). This is the range check
/// of ShardedTracker::Create and of the tools' --shards flag — at this
/// level 0 is an error, not "serial".
PairingVerdict CheckExplicitShardCount(uint32_t num_shards,
                                       uint32_t num_sites);

/// tracker x shards at the scenario level, where num_shards == 0 means
/// the serial engine (always ok). Nonzero counts additionally require a
/// mergeable tracker — the admission test of the sharded ingest engine
/// (core/sharded.h).
PairingVerdict CheckShardPairing(const std::string& tracker,
                                 uint32_t num_shards, uint32_t num_sites);

/// The combined scenario-level admission: tracker x stream x shards.
/// Exactly the skip decision of ExpandSuite and the refusal of
/// RunScenario.
PairingVerdict CheckScenarioPairing(const std::string& tracker,
                                    const std::string& stream,
                                    uint32_t num_shards, uint32_t num_sites);

}  // namespace varstream

#endif  // VARSTREAM_CORE_COMPAT_H_
