#include "core/driver.h"

#include <cassert>
#include <cmath>

#include "common/math_util.h"
#include "stream/variability.h"

namespace varstream {

namespace {

/// Shared measurement loop over any update source.
class Runner {
 public:
  Runner(DistributedTracker* tracker, double epsilon, HistoryTracer* tracer,
         int64_t initial_value)
      : tracker_(tracker),
        epsilon_(epsilon),
        tracer_(tracer),
        meter_(initial_value) {}

  void Step(uint32_t site, int64_t delta) {
    meter_.Push(delta);
    tracker_->Push(site, delta);
    double est = tracker_->Estimate();
    if (tracer_ != nullptr) tracer_->Observe(meter_.n(), est);
    int64_t truth = meter_.f();
    double rel = RelativeError(truth, est);
    // At truth == 0 RelativeError is 0 or infinity; treat "exact at zero"
    // as no error and anything else as a violation (matching the paper's
    // relative guarantee at f(n) = 0).
    if (std::isinf(rel)) {
      ++violations_;
      max_rel_ = std::max(
          max_rel_, std::abs(est - static_cast<double>(truth)));
    } else {
      if (rel > epsilon_ * (1 + 1e-12)) ++violations_;
      max_rel_ = std::max(max_rel_, rel);
      sum_rel_ += rel;
      ++finite_count_;
    }
  }

  RunResult Finish() const {
    RunResult result;
    result.n = meter_.n();
    result.variability = meter_.value();
    const CostMeter& cost = tracker_->cost();
    result.messages = cost.total_messages();
    result.bits = cost.total_bits();
    result.partition_messages = cost.partition_messages();
    result.tracking_messages = cost.tracking_messages();
    result.max_rel_error = max_rel_;
    result.mean_rel_error =
        finite_count_ ? sum_rel_ / static_cast<double>(finite_count_) : 0.0;
    result.violation_rate =
        result.n ? static_cast<double>(violations_) /
                       static_cast<double>(result.n)
                 : 0.0;
    result.final_f = meter_.f();
    result.final_estimate = tracker_->Estimate();
    return result;
  }

 private:
  DistributedTracker* tracker_;
  double epsilon_;
  HistoryTracer* tracer_;
  VariabilityMeter meter_;
  double max_rel_ = 0.0;
  double sum_rel_ = 0.0;
  uint64_t finite_count_ = 0;
  uint64_t violations_ = 0;
};

}  // namespace

RunResult RunCount(CountGenerator* gen, SiteAssigner* assigner,
                   DistributedTracker* tracker, uint64_t n, double epsilon,
                   HistoryTracer* tracer) {
  assert(tracker->time() == 0);
  Runner runner(tracker, epsilon, tracer, gen->initial_value());
  for (uint64_t t = 0; t < n; ++t) {
    runner.Step(assigner->NextSite(), gen->NextDelta());
  }
  return runner.Finish();
}

RunResult RunCountOnTrace(const StreamTrace& trace,
                          DistributedTracker* tracker, double epsilon,
                          HistoryTracer* tracer) {
  assert(tracker->time() == 0);
  Runner runner(tracker, epsilon, tracer, trace.initial_value());
  for (const CountUpdate& u : trace.updates()) {
    runner.Step(u.site, u.delta);
  }
  return runner.Finish();
}

}  // namespace varstream
