#include "core/driver.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/math_util.h"
#include "core/sharded.h"
#include "stream/variability.h"

namespace varstream {

namespace {

/// Shared measurement loop over any update source.
class Runner {
 public:
  Runner(DistributedTracker* tracker, double epsilon, HistoryTracer* tracer,
         int64_t initial_value)
      : tracker_(tracker),
        epsilon_(epsilon),
        tracer_(tracer),
        meter_(initial_value) {}

  void Step(uint32_t site, int64_t delta) {
    meter_.Push(delta);
    tracker_->Push(site, delta);
    Observe();
  }

  /// Delivers the whole batch through PushBatch and validates once at the
  /// batch boundary.
  void StepBatch(std::span<const CountUpdate> batch) {
    for (const CountUpdate& u : batch) meter_.Push(u.delta);
    tracker_->PushBatch(batch);
    Observe();
  }

  RunResult Finish() const {
    RunResult result;
    result.n = meter_.n();
    result.variability = meter_.value();
    const CostMeter& cost = tracker_->cost();
    result.messages = cost.total_messages();
    result.bits = cost.total_bits();
    result.partition_messages = cost.partition_messages();
    result.tracking_messages = cost.tracking_messages();
    result.max_rel_error = max_rel_;
    result.mean_rel_error =
        finite_count_ ? sum_rel_ / static_cast<double>(finite_count_) : 0.0;
    // One observation per Step / StepBatch; for batch_size == 1 this is
    // exactly n, preserving the per-update violation rate.
    result.violation_rate =
        observations_ ? static_cast<double>(violations_) /
                            static_cast<double>(observations_)
                      : 0.0;
    result.final_f = meter_.f();
    result.final_estimate = tracker_->Estimate();
    return result;
  }

 private:
  void Observe() {
    double est = tracker_->Estimate();
    if (tracer_ != nullptr) tracer_->Observe(meter_.n(), est);
    int64_t truth = meter_.f();
    double rel = RelativeError(truth, est);
    ++observations_;
    // At truth == 0 RelativeError is 0 or infinity; treat "exact at zero"
    // as no error and anything else as a violation (matching the paper's
    // relative guarantee at f(n) = 0).
    if (std::isinf(rel)) {
      ++violations_;
      max_rel_ = std::max(
          max_rel_, std::abs(est - static_cast<double>(truth)));
    } else {
      if (rel > epsilon_ * (1 + 1e-12)) ++violations_;
      max_rel_ = std::max(max_rel_, rel);
      sum_rel_ += rel;
      ++finite_count_;
    }
  }

  DistributedTracker* tracker_;
  double epsilon_;
  HistoryTracer* tracer_;
  VariabilityMeter meter_;
  double max_rel_ = 0.0;
  double sum_rel_ = 0.0;
  uint64_t finite_count_ = 0;
  uint64_t violations_ = 0;
  uint64_t observations_ = 0;
};

/// Pull granularity for per-update runs: large enough to amortize the
/// virtual NextBatch call, small enough to stay cache-resident.
constexpr uint64_t kPullChunk = 4096;

}  // namespace

RunResult Run(StreamSource& source, DistributedTracker& tracker,
              const RunOptions& options) {
  assert(tracker.time() == 0);
  assert(options.batch_size >= 1);
#ifndef NDEBUG
  // num_shards is descriptive (the tracker is constructed upstream), so
  // catch a mismatched pairing — results would be attributed to the wrong
  // configuration in every downstream row.
  if (options.num_shards >= 1) {
    auto* sharded = dynamic_cast<ShardedTracker*>(&tracker);
    assert(sharded != nullptr && sharded->num_shards() == options.num_shards &&
           "RunOptions::num_shards does not match the tracker");
  }
#endif
  uint64_t budget = options.max_updates != 0 ? options.max_updates
                                             : source.remaining();
  // Draining is only meaningful for finite sources; an unbounded source
  // needs an explicit max_updates. A hard check, not an assert: in an
  // NDEBUG build this misuse would otherwise loop for 2^64 updates.
  if (budget == StreamSource::kUnbounded) {
    std::fprintf(stderr,
                 "Run(): source '%s' is unbounded; set "
                 "RunOptions::max_updates\n",
                 source.name().c_str());
    std::abort();
  }

  Runner runner(&tracker, options.epsilon, options.tracer,
                source.initial_value());
  const uint64_t chunk =
      options.batch_size > 1 ? options.batch_size
                             : std::min<uint64_t>(budget, kPullChunk);
  std::vector<CountUpdate> buffer(chunk);
  uint64_t left = budget;
  while (left > 0) {
    size_t want = static_cast<size_t>(std::min<uint64_t>(chunk, left));
    size_t got = source.NextBatch(std::span(buffer.data(), want));
    if (got == 0) break;  // finite source exhausted before the budget
    if (options.batch_size > 1) {
      runner.StepBatch(std::span(buffer.data(), got));
    } else {
      for (size_t i = 0; i < got; ++i) {
        runner.Step(buffer[i].site, buffer[i].delta);
      }
    }
    left -= got;
  }
  return runner.Finish();
}

}  // namespace varstream
