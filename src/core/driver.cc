#include "core/driver.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "common/math_util.h"
#include "stream/variability.h"

namespace varstream {

namespace {

/// Shared measurement loop over any update source.
class Runner {
 public:
  Runner(DistributedTracker* tracker, double epsilon, HistoryTracer* tracer,
         int64_t initial_value)
      : tracker_(tracker),
        epsilon_(epsilon),
        tracer_(tracer),
        meter_(initial_value) {}

  void Step(uint32_t site, int64_t delta) {
    meter_.Push(delta);
    tracker_->Push(site, delta);
    Observe();
  }

  /// Delivers the whole batch through PushBatch and validates once at the
  /// batch boundary.
  void StepBatch(std::span<const CountUpdate> batch) {
    for (const CountUpdate& u : batch) meter_.Push(u.delta);
    tracker_->PushBatch(batch);
    Observe();
  }

  RunResult Finish() const {
    RunResult result;
    result.n = meter_.n();
    result.variability = meter_.value();
    const CostMeter& cost = tracker_->cost();
    result.messages = cost.total_messages();
    result.bits = cost.total_bits();
    result.partition_messages = cost.partition_messages();
    result.tracking_messages = cost.tracking_messages();
    result.max_rel_error = max_rel_;
    result.mean_rel_error =
        finite_count_ ? sum_rel_ / static_cast<double>(finite_count_) : 0.0;
    // One observation per Step / StepBatch; for the unbatched runners this
    // is exactly n, preserving the per-update violation rate.
    result.violation_rate =
        observations_ ? static_cast<double>(violations_) /
                            static_cast<double>(observations_)
                      : 0.0;
    result.final_f = meter_.f();
    result.final_estimate = tracker_->Estimate();
    return result;
  }

 private:
  void Observe() {
    double est = tracker_->Estimate();
    if (tracer_ != nullptr) tracer_->Observe(meter_.n(), est);
    int64_t truth = meter_.f();
    double rel = RelativeError(truth, est);
    ++observations_;
    // At truth == 0 RelativeError is 0 or infinity; treat "exact at zero"
    // as no error and anything else as a violation (matching the paper's
    // relative guarantee at f(n) = 0).
    if (std::isinf(rel)) {
      ++violations_;
      max_rel_ = std::max(
          max_rel_, std::abs(est - static_cast<double>(truth)));
    } else {
      if (rel > epsilon_ * (1 + 1e-12)) ++violations_;
      max_rel_ = std::max(max_rel_, rel);
      sum_rel_ += rel;
      ++finite_count_;
    }
  }

  DistributedTracker* tracker_;
  double epsilon_;
  HistoryTracer* tracer_;
  VariabilityMeter meter_;
  double max_rel_ = 0.0;
  double sum_rel_ = 0.0;
  uint64_t finite_count_ = 0;
  uint64_t violations_ = 0;
  uint64_t observations_ = 0;
};

}  // namespace

RunResult RunCount(CountGenerator* gen, SiteAssigner* assigner,
                   DistributedTracker* tracker, uint64_t n, double epsilon,
                   HistoryTracer* tracer) {
  assert(tracker->time() == 0);
  Runner runner(tracker, epsilon, tracer, gen->initial_value());
  for (uint64_t t = 0; t < n; ++t) {
    runner.Step(assigner->NextSite(), gen->NextDelta());
  }
  return runner.Finish();
}

RunResult RunCountOnTrace(const StreamTrace& trace,
                          DistributedTracker* tracker, double epsilon,
                          HistoryTracer* tracer) {
  assert(tracker->time() == 0);
  Runner runner(tracker, epsilon, tracer, trace.initial_value());
  for (const CountUpdate& u : trace.updates()) {
    runner.Step(u.site, u.delta);
  }
  return runner.Finish();
}

RunResult RunCountBatched(CountGenerator* gen, SiteAssigner* assigner,
                          DistributedTracker* tracker, uint64_t n,
                          double epsilon, uint64_t batch_size,
                          HistoryTracer* tracer) {
  assert(tracker->time() == 0);
  assert(batch_size >= 1);
  Runner runner(tracker, epsilon, tracer, gen->initial_value());
  std::vector<CountUpdate> batch;
  batch.reserve(batch_size);
  for (uint64_t t = 0; t < n; t += batch.size()) {
    batch.clear();
    uint64_t take = std::min(batch_size, n - t);
    for (uint64_t i = 0; i < take; ++i) {
      batch.push_back({assigner->NextSite(), gen->NextDelta()});
    }
    runner.StepBatch(batch);
  }
  return runner.Finish();
}

RunResult RunCountOnTraceBatched(const StreamTrace& trace,
                                 DistributedTracker* tracker, double epsilon,
                                 uint64_t batch_size, HistoryTracer* tracer) {
  assert(tracker->time() == 0);
  assert(batch_size >= 1);
  Runner runner(tracker, epsilon, tracer, trace.initial_value());
  std::span<const CountUpdate> updates(trace.updates());
  for (size_t off = 0; off < updates.size(); off += batch_size) {
    runner.StepBatch(
        updates.subspan(off, std::min<size_t>(batch_size,
                                              updates.size() - off)));
  }
  return runner.Finish();
}

}  // namespace varstream
