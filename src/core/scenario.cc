#include "core/scenario.h"

#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "common/format.h"
#include "common/hash.h"
#include "core/compat.h"
#include "core/registry.h"
#include "core/sharded.h"
#include "stream/source.h"

namespace varstream {

namespace {

/// FNV-1a over a string: a fixed, platform-independent hash (std::hash is
/// implementation-defined, which would break cross-machine reproducibility
/// of the derived seeds).
uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

uint64_t ScenarioFingerprint(const Scenario& s) {
  uint64_t h = s.seed;
  h = Mix64(h ^ Fnv1a(s.stream));
  h = Mix64(h ^ Fnv1a(s.tracker));
  h = Mix64(h ^ Fnv1a(s.assigner));
  h = Mix64(h ^ s.num_sites);
  return h;
}

/// RFC-4180 escaping: fields containing a comma, quote, or newline are
/// quoted with embedded quotes doubled; everything else passes through.
std::string CsvField(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  return out + "\"";
}

}  // namespace

std::string Scenario::Id() const {
  std::string id = tracker + "/" + stream + "/" + assigner + "/k" +
                   std::to_string(num_sites) + "/eps" +
                   FormatDouble("%g", epsilon) + "/n" + std::to_string(n) +
                   "/seed" + std::to_string(seed);
  if (batch_size > 1) id += "/b" + std::to_string(batch_size);
  if (num_shards > 0) id += "/s" + std::to_string(num_shards);
  return id;
}

uint64_t ScenarioStreamSeed(const Scenario& scenario) {
  return Mix64(ScenarioFingerprint(scenario) ^ 0x57E4EA11ull);
}

uint64_t ScenarioTrackerSeed(const Scenario& scenario) {
  return Mix64(ScenarioFingerprint(scenario) ^ 0x7AC4E4D0ull);
}

ScenarioResult RunScenario(const Scenario& scenario) {
  ScenarioResult out;
  out.scenario = scenario;

  const StreamRegistry& streams = StreamRegistry::Instance();
  const TrackerRegistry& trackers = TrackerRegistry::Instance();
  if (!streams.ContainsStream(scenario.stream)) {
    out.error = "unknown stream '" + scenario.stream +
                "'; valid streams: " + JoinNames(streams.StreamNames());
    return out;
  }
  if (!trackers.Contains(scenario.tracker)) {
    out.error = "unknown tracker '" + scenario.tracker +
                "'; valid trackers: " + JoinNames(trackers.Names());
    return out;
  }
  if (!streams.ContainsAssigner(scenario.assigner)) {
    out.error = "unknown assigner '" + scenario.assigner +
                "'; valid assigners: " + JoinNames(streams.AssignerNames());
    return out;
  }
  // Pairing admissibility (insertion-only x deletions, mergeable x
  // shards) comes from the shared predicates so this refusal, the suite
  // expansion skip, and the tools' diagnostics can never disagree.
  PairingVerdict pairing = CheckScenarioPairing(
      scenario.tracker, scenario.stream, scenario.num_shards,
      scenario.num_sites);
  if (!pairing.ok) {
    out.error = pairing.reason;
    return out;
  }

  StreamSpec spec;
  spec.num_sites = scenario.num_sites;
  spec.seed = ScenarioStreamSeed(scenario);
  spec.assigner = scenario.assigner;
  spec.params = scenario.params;

  // The generator is built twice: once for its initial value (the tracker
  // needs it at construction), then again inside the composed source.
  std::unique_ptr<CountGenerator> gen =
      streams.CreateGenerator(scenario.stream, spec);
  TrackerOptions topts;
  topts.num_sites = scenario.num_sites;
  topts.epsilon = scenario.epsilon;
  topts.seed = ScenarioTrackerSeed(scenario);
  topts.initial_value = gen->initial_value();
  topts.period = scenario.period;
  std::unique_ptr<DistributedTracker> tracker;
  if (scenario.num_shards > 0) {
    std::string shard_error;
    tracker = ShardedTracker::Create(scenario.tracker, topts,
                                     scenario.num_shards, &shard_error);
    if (tracker == nullptr) {
      out.error = shard_error;
      return out;
    }
  } else {
    tracker = trackers.Create(scenario.tracker, topts);
  }

  // The tracker decides its own k (single-site pins it to 1); deal the
  // stream across exactly that many sites.
  spec.num_sites = tracker->num_sites();
  std::unique_ptr<StreamSource> source =
      streams.Create(scenario.stream, spec);

  RunOptions ropts;
  ropts.epsilon = scenario.epsilon;
  ropts.max_updates = scenario.n;
  ropts.batch_size = scenario.batch_size;
  ropts.num_shards = scenario.num_shards;
  out.result = Run(*source, *tracker, ropts);
  out.ok = true;
  return out;
}

std::string ScenarioResultToJson(const ScenarioResult& r) {
  const Scenario& s = r.scenario;
  std::string json = "{";
  json += "\"id\":\"" + JsonEscape(s.Id()) + "\"";
  json += ",\"tracker\":\"" + JsonEscape(s.tracker) + "\"";
  json += ",\"stream\":\"" + JsonEscape(s.stream) + "\"";
  json += ",\"assigner\":\"" + JsonEscape(s.assigner) + "\"";
  json += ",\"sites\":" + std::to_string(s.num_sites);
  json += ",\"epsilon\":" + FormatDouble("%g", s.epsilon);
  json += ",\"n\":" + std::to_string(s.n);
  json += ",\"seed\":" + std::to_string(s.seed);
  json += ",\"batch\":" + std::to_string(s.batch_size);
  json += ",\"shards\":" + std::to_string(s.num_shards);
  json += ",\"ok\":" + std::string(r.ok ? "true" : "false");
  if (!r.ok) {
    json += ",\"error\":\"" + JsonEscape(r.error) + "\"";
    return json + "}";
  }
  const RunResult& m = r.result;
  json += ",\"n_processed\":" + std::to_string(m.n);
  json += ",\"variability\":" + FormatDouble("%.17g", m.variability);
  json += ",\"messages\":" + std::to_string(m.messages);
  json += ",\"bits\":" + std::to_string(m.bits);
  json += ",\"partition_messages\":" + std::to_string(m.partition_messages);
  json += ",\"tracking_messages\":" + std::to_string(m.tracking_messages);
  json += ",\"max_rel_error\":" + FormatDouble("%.17g", m.max_rel_error);
  json += ",\"mean_rel_error\":" + FormatDouble("%.17g", m.mean_rel_error);
  json += ",\"violation_rate\":" + FormatDouble("%.17g", m.violation_rate);
  json += ",\"final_f\":" + std::to_string(m.final_f);
  json += ",\"final_estimate\":" + FormatDouble("%.17g", m.final_estimate);
  return json + "}";
}

std::string ScenarioResultCsvHeader() {
  return "id,tracker,stream,assigner,sites,epsilon,n,seed,batch,shards,ok,"
         "error,n_processed,variability,messages,bits,partition_messages,"
         "tracking_messages,max_rel_error,mean_rel_error,violation_rate,"
         "final_f,final_estimate";
}

std::string ScenarioResultToCsvRow(const ScenarioResult& r) {
  const Scenario& s = r.scenario;
  std::string row = CsvField(s.Id()) + "," + CsvField(s.tracker) + "," +
                    CsvField(s.stream) + "," + CsvField(s.assigner) + "," +
                    std::to_string(s.num_sites) + "," +
                    FormatDouble("%g", s.epsilon) + "," + std::to_string(s.n) +
                    "," + std::to_string(s.seed) + "," +
                    std::to_string(s.batch_size) + "," +
                    std::to_string(s.num_shards) + "," +
                    (r.ok ? "true" : "false") + ",";
  // Error messages contain commas (name listings); CsvField quotes them.
  if (!r.ok) row += CsvField(r.error);
  row += ",";
  if (!r.ok) return row + ",,,,,,,,,,";
  const RunResult& m = r.result;
  row += std::to_string(m.n) + "," + FormatDouble("%.17g", m.variability) +
         "," + std::to_string(m.messages) + "," + std::to_string(m.bits) +
         "," + std::to_string(m.partition_messages) + "," +
         std::to_string(m.tracking_messages) + "," +
         FormatDouble("%.17g", m.max_rel_error) + "," +
         FormatDouble("%.17g", m.mean_rel_error) + "," +
         FormatDouble("%.17g", m.violation_rate) + "," +
         std::to_string(m.final_f) + "," +
         FormatDouble("%.17g", m.final_estimate);
  return row;
}

}  // namespace varstream
