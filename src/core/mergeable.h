// Mergeable: the capability that makes a tracker shardable.
//
// A tracker is mergeable when its coordinator state over a union of
// disjoint site partitions is the sum of the coordinator states over the
// partitions: running one instance per partition and adding their
// estimates, clocks, and cost meters yields exactly the global Snapshot()
// a single instance over the union would report for protocols whose
// per-site decisions depend only on per-site state (naive, periodic), and
// an estimate carrying the same per-partition relative-error guarantee for
// the paper's block-partitioned algorithms (deterministic, randomized) —
// see the merge-semantics table in README.md.
//
// core/sharded.h uses the capability as the admission test for the
// sharded ingest engine; the registry exposes it as metadata
// (TrackerRegistry::IsMergeable) so tools can list which trackers scale
// across worker shards. The registration macros detect the capability
// automatically: any registered tracker deriving from Mergeable is
// tagged mergeable.
//
// Trackers that are NOT mergeable have coordinator state that is a
// non-additive function of the cross-site configuration (e.g. the
// single-site specialization pins k = 1; the CMY/HYZ monotone baselines
// maintain global round state) — sharding them would silently change the
// protocol, so the engine refuses them loudly instead.

#ifndef VARSTREAM_CORE_MERGEABLE_H_
#define VARSTREAM_CORE_MERGEABLE_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/tracker.h"
#include "net/cost_meter.h"

namespace varstream {

class Mergeable {
 public:
  virtual ~Mergeable() = default;

  /// Folds the coordinator-side summary of `other` — a tracker of the
  /// same concrete type that observed a *disjoint* site partition of the
  /// stream — into this tracker: Estimate() gains other's estimate,
  /// time() gains other's clock, cost() absorbs other's meter. This
  /// tracker may continue ingesting its own sites afterwards; the merged
  /// contribution stays a constant additive term. Call with a tracker of
  /// a different concrete type (or with itself) and the program aborts
  /// with a diagnostic — a merge across algorithms is a logic error, not
  /// a recoverable condition.
  ///
  /// Merging trackers that both carry a nonzero f(0) would double-count
  /// it; give every partition instance initial_value = 0 and account f(0)
  /// once at the top (core/sharded.cc does exactly this).
  virtual void MergeFrom(const DistributedTracker& other) = 0;

  /// Complete textual dump of the tracker state: the summary prefix
  /// ("name|k=..|est=..|time=..|msgs=..|bits=..") followed by the full
  /// internal state as |key=value fields (core/state_codec.h) — site
  /// drifts, block-partition position, RNG state, per-kind cost counters.
  /// Stable across runs for deterministic protocols; used by the
  /// shard-equivalence tests to assert byte-identical results across
  /// worker counts, and by the checkpoint layer (src/service/) as the
  /// on-disk session payload of the varstream-ckpt-v1 format.
  virtual std::string SerializeState() const = 0;

  /// Symmetric inverse of SerializeState: reloads a dumped state into
  /// this freshly constructed tracker (same registry name and
  /// construction options as the serialized instance; time() must still
  /// be 0). After a successful restore the tracker resumes the stream
  /// exactly where the serialized instance stopped — feeding both the
  /// same suffix yields byte-identical Snapshot()s. Returns false and
  /// sets *error (when non-null) on a label/site-count/options mismatch
  /// or a corrupt dump, leaving the tracker unusable for resumption (the
  /// caller should construct a fresh one).
  virtual bool RestoreState(const std::string& state,
                            std::string* error) = 0;
};

/// Shared MergeFrom preamble: casts `other` to the merging tracker's own
/// concrete type, aborting with a diagnostic on a cross-algorithm merge
/// or a self-merge (per the MergeFrom contract). Instantiate from the
/// tracker's .cc, where both types are complete:
///
///   const auto& peer = CheckedMergePeer(*this, other);
template <typename Tracker>
const Tracker& CheckedMergePeer(const Tracker& self,
                                const DistributedTracker& other) {
  const auto* peer = dynamic_cast<const Tracker*>(&other);
  if (peer == nullptr || peer == &self) {
    std::fprintf(stderr, "%s::MergeFrom: cannot absorb '%s'\n",
                 self.name().c_str(), other.name().c_str());
    std::abort();
  }
  return *peer;
}

/// The shared SerializeState line format:
/// "label|k=K|est=E|time=T|msgs=M|bits=B". Trackers with extra state
/// fold it into `label` (e.g. "periodic|T=64"); `estimate` is
/// pre-formatted so integral coordinators serialize exactly.
inline std::string FormatMergeableState(const std::string& label,
                                        uint32_t num_sites,
                                        const std::string& estimate,
                                        uint64_t time, const CostMeter& cost) {
  return label + "|k=" + std::to_string(num_sites) + "|est=" + estimate +
         "|time=" + std::to_string(time) + "|msgs=" +
         std::to_string(cost.total_messages()) + "|bits=" +
         std::to_string(cost.total_bits());
}

}  // namespace varstream

#endif  // VARSTREAM_CORE_MERGEABLE_H_
