// Section 3.3: the deterministic distributed counting algorithm.
//
// Guarantee: |f(n) - f̂(n)| <= epsilon * |f(n)| at every timestep n.
// Communication: O(k * v(n) / epsilon) messages of O(log n) bits, where
// v(n) is the stream's variability — reducing to the Cormode et al. bound
// O(k/eps * log n) when the stream is monotone (since then v = O(log f)).
//
// Inside each section-3.1 block with scale r, every site tracks its drift
// di (sum of updates this block) and the change delta_i since its last
// message; it reports di whenever
//     (r = 0 and |delta_i| = 1)   or   |delta_i| >= epsilon * 2^r,
// so the coordinator's total error |sum_i delta_i| stays below
// epsilon*2^r*k <= epsilon*|f(n)| (using |f(n)| >= 2^r*k for r >= 1; for
// r = 0 every update is forwarded and the estimate is exact — this is how
// the algorithm meets the relative guarantee even at f(n) = 0).

#ifndef VARSTREAM_CORE_DETERMINISTIC_TRACKER_H_
#define VARSTREAM_CORE_DETERMINISTIC_TRACKER_H_

#include <memory>
#include <vector>

#include "core/block_partition.h"
#include "core/mergeable.h"
#include "core/options.h"
#include "core/tracker.h"
#include "net/network.h"

namespace varstream {

class DeterministicTracker : public DistributedTracker, public Mergeable {
 public:
  explicit DeterministicTracker(const TrackerOptions& options);

  double Estimate() const override;
  const CostMeter& cost() const override { return net_->cost(); }
  std::string name() const override { return "deterministic"; }

  /// Coordinator state is integral, so merging disjoint site partitions
  /// is exact integer addition (core/mergeable.h semantics).
  void MergeFrom(const DistributedTracker& other) override;
  std::string SerializeState() const override;
  bool RestoreState(const std::string& state, std::string* error) override;

  /// Exact integer estimate (the deterministic coordinator state is
  /// integral).
  int64_t EstimateInt() const;

  /// Number of completed blocks (for the cost analysis per block).
  uint64_t blocks_completed() const {
    return partitioner_->blocks_completed();
  }

  /// The current block's scale exponent r.
  int current_scale() const { return partitioner_->block().r; }

 protected:
  /// One ±1 arrival (the hot path; PushBatch amortizes dispatch overhead
  /// by looping UnitPush directly).
  void DoPush(uint32_t site, int64_t delta) override;
  void DoPushBatch(std::span<const CountUpdate> batch) override;

 private:
  void OnBlockEnd(const BlockInfo& closed, const BlockInfo& next);

  /// The non-virtual per-unit step shared by DoPush and DoPushBatch.
  void UnitPush(uint32_t site, int64_t delta);

  /// Re-derives the cached send condition for block scale `r` — the
  /// paper's "report when |delta_i| >= eps*2^r" test, with r = 0 blocks
  /// reporting every unit — called on construction and at every block
  /// boundary.
  void RefreshSendThreshold(int r);

  TrackerOptions options_;
  std::unique_ptr<SimNetwork> net_;
  std::unique_ptr<BlockPartitioner> partitioner_;

  // Cached send condition for the current block: at scale r = 0 every
  // unit of unsent drift reports; at r >= 1 the threshold is
  // drift_threshold_factor * epsilon * 2^r (recomputing this per arrival
  // costs two multiplies on the hot path, so it is cached per block).
  double send_threshold_ = 1.0;

  // Site state: di = in-block drift, delta_i = drift since last message.
  std::vector<int64_t> site_drift_;
  std::vector<int64_t> site_unsent_;

  // Coordinator state: last reported drift per site and their sum.
  std::vector<int64_t> coord_drift_;
  int64_t coord_drift_sum_ = 0;

  // Folded-in estimate of merged disjoint partitions (MergeFrom); their
  // clock and cost land in time_ / net_ directly.
  int64_t merged_estimate_ = 0;
};

}  // namespace varstream

#endif  // VARSTREAM_CORE_DETERMINISTIC_TRACKER_H_
