// Section 3.3: the deterministic distributed counting algorithm.
//
// Guarantee: |f(n) - f̂(n)| <= epsilon * |f(n)| at every timestep n.
// Communication: O(k * v(n) / epsilon) messages of O(log n) bits, where
// v(n) is the stream's variability — reducing to the Cormode et al. bound
// O(k/eps * log n) when the stream is monotone (since then v = O(log f)).
//
// Inside each section-3.1 block with scale r, every site tracks its drift
// di (sum of updates this block) and the change delta_i since its last
// message; it reports di whenever
//     (r = 0 and |delta_i| = 1)   or   |delta_i| >= epsilon * 2^r,
// so the coordinator's total error |sum_i delta_i| stays below
// epsilon*2^r*k <= epsilon*|f(n)| (using |f(n)| >= 2^r*k for r >= 1; for
// r = 0 every update is forwarded and the estimate is exact — this is how
// the algorithm meets the relative guarantee even at f(n) = 0).

#ifndef VARSTREAM_CORE_DETERMINISTIC_TRACKER_H_
#define VARSTREAM_CORE_DETERMINISTIC_TRACKER_H_

#include <memory>
#include <vector>

#include "core/block_partition.h"
#include "core/options.h"
#include "core/tracker.h"
#include "net/network.h"

namespace varstream {

class DeterministicTracker : public DistributedTracker {
 public:
  explicit DeterministicTracker(const TrackerOptions& options);

  void Push(uint32_t site, int64_t delta) override;
  double Estimate() const override;
  const CostMeter& cost() const override { return net_->cost(); }
  uint64_t time() const override { return partitioner_->time(); }
  uint32_t num_sites() const override { return options_.num_sites; }
  std::string name() const override { return "deterministic"; }

  /// Exact integer estimate (the deterministic coordinator state is
  /// integral).
  int64_t EstimateInt() const;

  /// Number of completed blocks (for the cost analysis per block).
  uint64_t blocks_completed() const {
    return partitioner_->blocks_completed();
  }

  /// The current block's scale exponent r.
  int current_scale() const { return partitioner_->block().r; }

 private:
  void OnBlockEnd(const BlockInfo& closed, const BlockInfo& next);

  /// True when site drift change `abs_delta_i` must be reported under the
  /// current block scale r (the paper's "condition").
  bool SendCondition(uint64_t abs_delta_i, int r) const;

  TrackerOptions options_;
  std::unique_ptr<SimNetwork> net_;
  std::unique_ptr<BlockPartitioner> partitioner_;

  // Site state: di = in-block drift, delta_i = drift since last message.
  std::vector<int64_t> site_drift_;
  std::vector<int64_t> site_unsent_;

  // Coordinator state: last reported drift per site and their sum.
  std::vector<int64_t> coord_drift_;
  int64_t coord_drift_sum_ = 0;
};

}  // namespace varstream

#endif  // VARSTREAM_CORE_DETERMINISTIC_TRACKER_H_
