// Umbrella header: the full public API of varstream.
//
// varstream reproduces "Variability in Data Streams" (Felber & Ostrovsky,
// PODS 2016): distributed tracking of a non-monotone integer function f(n)
// to relative error epsilon with communication proportional to the stream's
// variability v(n) = sum_t min{1, |f'(t)|/|f(t)|} instead of its length.
//
// Typical use — declare a Scenario (names resolved through the tracker
// and stream registries) and run it; cross-products go through the suite:
//
//   varstream::Scenario s;
//   s.tracker = "deterministic";       // any TrackerRegistry name
//   s.stream = "random-walk";          // any StreamRegistry name
//   s.epsilon = 0.05;
//   s.n = 200000;
//   varstream::ScenarioResult r = varstream::RunScenario(s);
//   // r.result.messages, r.result.max_rel_error, ...
//
//   varstream::SuiteSpec suite;        // trackers x streams x eps x seeds
//   suite.epsilons = {0.05, 0.1};
//   suite.seeds = {1, 2, 3};
//   auto results = varstream::RunSuite(varstream::ExpandSuite(suite), 8);
//   std::string json = varstream::SuiteResultsToJson(results);
//
// One layer down, streams are pull-based StreamSources and trackers ingest
// update batches; both sides are constructible by name:
//
//   varstream::StreamSpec spec;        // sites, seed, assigner, params
//   spec.num_sites = 16;
//   auto source = varstream::StreamRegistry::Instance().Create(
//       "sawtooth", spec);
//
//   varstream::TrackerOptions options;
//   options.num_sites = 16;
//   options.epsilon = 0.05;
//   auto tracker = varstream::TrackerRegistry::Instance().Create(
//       "deterministic", options);
//
//   varstream::RunOptions ropts;
//   ropts.epsilon = 0.05;
//   ropts.max_updates = 200000;
//   varstream::RunResult result = varstream::Run(*source, *tracker, ropts);
//
// Or drive the tracker yourself: source->NextBatch(span) fills update
// batches, tracker->PushBatch(batch) ingests them, tracker->Snapshot()
// reads one consistent {estimate, time, messages, bits} view. Concrete
// generator/tracker classes remain directly constructible when static
// typing or class-specific accessors are needed.

#ifndef VARSTREAM_CORE_API_H_
#define VARSTREAM_CORE_API_H_

// Substrates.
#include "common/cli.h"            // IWYU pragma: export
#include "common/hash.h"           // IWYU pragma: export
#include "common/histogram.h"      // IWYU pragma: export
#include "common/math_util.h"      // IWYU pragma: export
#include "common/random.h"         // IWYU pragma: export
#include "common/stats.h"          // IWYU pragma: export
#include "common/table_printer.h"  // IWYU pragma: export

// Stream model.
#include "stream/expansion.h"        // IWYU pragma: export
#include "stream/generator.h"        // IWYU pragma: export
#include "stream/item_generators.h"  // IWYU pragma: export
#include "stream/site_assigner.h"    // IWYU pragma: export
#include "stream/source.h"           // IWYU pragma: export
#include "stream/trace.h"            // IWYU pragma: export
#include "stream/update.h"           // IWYU pragma: export
#include "stream/variability.h"      // IWYU pragma: export

// Simulated network.
#include "net/cost_meter.h"  // IWYU pragma: export
#include "net/message.h"     // IWYU pragma: export
#include "net/network.h"     // IWYU pragma: export

// Sketches.
#include "sketch/count_min.h"     // IWYU pragma: export
#include "sketch/counter_bank.h"  // IWYU pragma: export
#include "sketch/cr_precis.h"     // IWYU pragma: export

// The paper's algorithms.
#include "core/block_partition.h"           // IWYU pragma: export
#include "core/compat.h"                    // IWYU pragma: export
#include "core/deterministic_tracker.h"     // IWYU pragma: export
#include "core/driver.h"                    // IWYU pragma: export
#include "core/frequency_tracker.h"         // IWYU pragma: export
#include "core/mergeable.h"                 // IWYU pragma: export
#include "core/options.h"                   // IWYU pragma: export
#include "core/quantile_tracker.h"          // IWYU pragma: export
#include "core/randomized_tracker.h"        // IWYU pragma: export
#include "core/registry.h"                  // IWYU pragma: export
#include "core/scenario.h"                  // IWYU pragma: export
#include "core/sharded.h"                   // IWYU pragma: export
#include "core/single_site_tracker.h"       // IWYU pragma: export
#include "core/spsc_queue.h"                // IWYU pragma: export
#include "core/suite.h"                     // IWYU pragma: export
#include "core/sketch_frequency_tracker.h"  // IWYU pragma: export
#include "core/state_codec.h"               // IWYU pragma: export
#include "core/threshold_monitor.h"         // IWYU pragma: export
#include "core/tracing.h"                   // IWYU pragma: export
#include "core/tracker.h"                   // IWYU pragma: export

// The ingest service: wire protocol, server, client, checkpoints
// (real loopback TCP — everything above simulates its network).
#include "service/checkpoint.h"  // IWYU pragma: export
#include "service/client.h"      // IWYU pragma: export
#include "service/protocol.h"    // IWYU pragma: export
#include "service/server.h"      // IWYU pragma: export

// Baselines.
#include "baseline/cmy_monotone_tracker.h"    // IWYU pragma: export
#include "baseline/cmy_threshold_detector.h"  // IWYU pragma: export
#include "baseline/hyz_frequency_tracker.h"   // IWYU pragma: export
#include "baseline/hyz_monotone_tracker.h"   // IWYU pragma: export
#include "baseline/naive_tracker.h"          // IWYU pragma: export
#include "baseline/periodic_tracker.h"       // IWYU pragma: export

// Lower-bound constructions.
#include "lowerbound/det_family.h"      // IWYU pragma: export
#include "lowerbound/index_encoding.h"  // IWYU pragma: export
#include "lowerbound/markov.h"          // IWYU pragma: export
#include "lowerbound/offline_opt.h"     // IWYU pragma: export
#include "lowerbound/rand_family.h"     // IWYU pragma: export

#endif  // VARSTREAM_CORE_API_H_
