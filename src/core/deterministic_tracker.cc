#include "core/deterministic_tracker.h"

#include <cassert>
#include <cstdlib>

#include "common/math_util.h"

namespace varstream {

DeterministicTracker::DeterministicTracker(const TrackerOptions& options)
    : options_(options),
      net_(std::make_unique<SimNetwork>(options.num_sites)),
      site_drift_(options.num_sites, 0),
      site_unsent_(options.num_sites, 0),
      coord_drift_(options.num_sites, 0) {
  assert(options.epsilon > 0 && options.epsilon < 1);
  partitioner_ =
      std::make_unique<BlockPartitioner>(net_.get(), options.initial_value);
  partitioner_->set_block_end_callback(
      [this](const BlockInfo& closed, const BlockInfo& next) {
        OnBlockEnd(closed, next);
      });
}

bool DeterministicTracker::SendCondition(uint64_t abs_delta_i, int r) const {
  if (r == 0) return abs_delta_i >= 1;
  return static_cast<double>(abs_delta_i) >=
         options_.drift_threshold_factor * options_.epsilon *
             static_cast<double>(Pow2(r));
}

void DeterministicTracker::Push(uint32_t site, int64_t delta) {
  assert(delta == 1 || delta == -1);
  assert(site < options_.num_sites);
  net_->Tick();

  // Site updates its in-block drift state first; if this arrival closes the
  // block the poll already conveys the exact total, so the in-block message
  // is skipped (OnBlockEnd resets the drift state).
  site_drift_[site] += delta;
  site_unsent_[site] += delta;

  bool closed = partitioner_->OnArrival(site, delta);
  if (closed) return;

  int r = partitioner_->block().r;
  if (SendCondition(AbsU64(site_unsent_[site]), r)) {
    // Message: the new value of di. Coordinator: d̂i = di.
    net_->SendToCoordinator(site, MessageKind::kDrift);
    coord_drift_sum_ += site_drift_[site] - coord_drift_[site];
    coord_drift_[site] = site_drift_[site];
    site_unsent_[site] = 0;
  }
}

void DeterministicTracker::OnBlockEnd(const BlockInfo& /*closed*/,
                                      const BlockInfo& /*next*/) {
  // The poll gave the coordinator the exact f(nj); all drift state resets.
  std::fill(site_drift_.begin(), site_drift_.end(), 0);
  std::fill(site_unsent_.begin(), site_unsent_.end(), 0);
  std::fill(coord_drift_.begin(), coord_drift_.end(), 0);
  coord_drift_sum_ = 0;
}

int64_t DeterministicTracker::EstimateInt() const {
  return partitioner_->f_at_block_start() + coord_drift_sum_;
}

double DeterministicTracker::Estimate() const {
  return static_cast<double>(EstimateInt());
}

}  // namespace varstream
