#include "core/deterministic_tracker.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "common/math_util.h"
#include "core/registry.h"

namespace varstream {

DeterministicTracker::DeterministicTracker(const TrackerOptions& options)
    : DistributedTracker(options.num_sites, UpdateSupport::kUnit),
      options_(options),
      net_(std::make_unique<SimNetwork>(options.num_sites)),
      site_drift_(options.num_sites, 0),
      site_unsent_(options.num_sites, 0),
      coord_drift_(options.num_sites, 0) {
  assert(options.epsilon > 0 && options.epsilon < 1);
  partitioner_ =
      std::make_unique<BlockPartitioner>(net_.get(), options.initial_value);
  partitioner_->set_block_end_callback(
      [this](const BlockInfo& closed, const BlockInfo& next) {
        OnBlockEnd(closed, next);
      });
  RefreshSendThreshold(partitioner_->block().r);
}

void DeterministicTracker::RefreshSendThreshold(int r) {
  send_threshold_ =
      r == 0 ? 1.0
             : options_.drift_threshold_factor * options_.epsilon *
                   static_cast<double>(Pow2(r));
}

void DeterministicTracker::UnitPush(uint32_t site, int64_t delta) {
  net_->Tick();

  // Site updates its in-block drift state first; if this arrival closes the
  // block the poll already conveys the exact total, so the in-block message
  // is skipped (OnBlockEnd resets the drift state).
  site_drift_[site] += delta;
  site_unsent_[site] += delta;

  bool closed = partitioner_->OnArrival(site, delta);
  if (closed) return;

  if (static_cast<double>(AbsU64(site_unsent_[site])) >= send_threshold_) {
    // Message: the new value of di. Coordinator: d̂i = di.
    net_->SendToCoordinator(site, MessageKind::kDrift);
    coord_drift_sum_ += site_drift_[site] - coord_drift_[site];
    coord_drift_[site] = site_drift_[site];
    site_unsent_[site] = 0;
  }
}

void DeterministicTracker::DoPush(uint32_t site, int64_t delta) {
  UnitPush(site, delta);
}

void DeterministicTracker::DoPushBatch(std::span<const CountUpdate> batch) {
  // Per-unit work inlined into one loop: one virtual dispatch per batch
  // instead of one per unit arrival.
  for (const CountUpdate& u : batch) {
    if (u.delta == 0) continue;
    const int64_t step = u.delta > 0 ? 1 : -1;
    for (uint64_t i = AbsU64(u.delta); i > 0; --i) UnitPush(u.site, step);
  }
}

void DeterministicTracker::OnBlockEnd(const BlockInfo& /*closed*/,
                                      const BlockInfo& next) {
  // The poll gave the coordinator the exact f(nj); all drift state resets.
  std::fill(site_drift_.begin(), site_drift_.end(), 0);
  std::fill(site_unsent_.begin(), site_unsent_.end(), 0);
  std::fill(coord_drift_.begin(), coord_drift_.end(), 0);
  coord_drift_sum_ = 0;
  RefreshSendThreshold(next.r);
}

int64_t DeterministicTracker::EstimateInt() const {
  return partitioner_->f_at_block_start() + coord_drift_sum_ +
         merged_estimate_;
}

double DeterministicTracker::Estimate() const {
  return static_cast<double>(EstimateInt());
}

void DeterministicTracker::MergeFrom(const DistributedTracker& other) {
  const DeterministicTracker& peer = CheckedMergePeer(*this, other);
  merged_estimate_ += peer.EstimateInt() - peer.options_.initial_value;
  net_->mutable_cost()->Merge(peer.cost());
  AdvanceTime(peer.time());
}

std::string DeterministicTracker::SerializeState() const {
  return FormatMergeableState("deterministic", num_sites(),
                              std::to_string(EstimateInt()), time(), cost());
}

VARSTREAM_REGISTER_TRACKER("deterministic", DeterministicTracker)

}  // namespace varstream
