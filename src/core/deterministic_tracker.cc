#include "core/deterministic_tracker.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/math_util.h"
#include "core/registry.h"
#include "core/state_codec.h"

namespace varstream {

DeterministicTracker::DeterministicTracker(const TrackerOptions& options)
    : DistributedTracker(options.num_sites, UpdateSupport::kUnit),
      options_(options),
      net_(std::make_unique<SimNetwork>(options.num_sites)),
      site_drift_(options.num_sites, 0),
      site_unsent_(options.num_sites, 0),
      coord_drift_(options.num_sites, 0) {
  assert(options.epsilon > 0 && options.epsilon < 1);
  partitioner_ =
      std::make_unique<BlockPartitioner>(net_.get(), options.initial_value);
  partitioner_->set_block_end_callback(
      [this](const BlockInfo& closed, const BlockInfo& next) {
        OnBlockEnd(closed, next);
      });
  RefreshSendThreshold(partitioner_->block().r);
}

void DeterministicTracker::RefreshSendThreshold(int r) {
  send_threshold_ =
      r == 0 ? 1.0
             : options_.drift_threshold_factor * options_.epsilon *
                   static_cast<double>(Pow2(r));
}

void DeterministicTracker::UnitPush(uint32_t site, int64_t delta) {
  net_->Tick();

  // Site updates its in-block drift state first; if this arrival closes the
  // block the poll already conveys the exact total, so the in-block message
  // is skipped (OnBlockEnd resets the drift state).
  site_drift_[site] += delta;
  site_unsent_[site] += delta;

  bool closed = partitioner_->OnArrival(site, delta);
  if (closed) return;

  if (static_cast<double>(AbsU64(site_unsent_[site])) >= send_threshold_) {
    // Message: the new value of di. Coordinator: d̂i = di.
    net_->SendToCoordinator(site, MessageKind::kDrift);
    coord_drift_sum_ += site_drift_[site] - coord_drift_[site];
    coord_drift_[site] = site_drift_[site];
    site_unsent_[site] = 0;
  }
}

void DeterministicTracker::DoPush(uint32_t site, int64_t delta) {
  UnitPush(site, delta);
}

void DeterministicTracker::DoPushBatch(std::span<const CountUpdate> batch) {
  // Per-unit work inlined into one loop: one virtual dispatch per batch
  // instead of one per unit arrival.
  for (const CountUpdate& u : batch) {
    if (u.delta == 0) continue;
    const int64_t step = u.delta > 0 ? 1 : -1;
    for (uint64_t i = AbsU64(u.delta); i > 0; --i) UnitPush(u.site, step);
  }
}

void DeterministicTracker::OnBlockEnd(const BlockInfo& /*closed*/,
                                      const BlockInfo& next) {
  // The poll gave the coordinator the exact f(nj); all drift state resets.
  std::fill(site_drift_.begin(), site_drift_.end(), 0);
  std::fill(site_unsent_.begin(), site_unsent_.end(), 0);
  std::fill(coord_drift_.begin(), coord_drift_.end(), 0);
  coord_drift_sum_ = 0;
  RefreshSendThreshold(next.r);
}

int64_t DeterministicTracker::EstimateInt() const {
  return partitioner_->f_at_block_start() + coord_drift_sum_ +
         merged_estimate_;
}

double DeterministicTracker::Estimate() const {
  return static_cast<double>(EstimateInt());
}

void DeterministicTracker::MergeFrom(const DistributedTracker& other) {
  const DeterministicTracker& peer = CheckedMergePeer(*this, other);
  merged_estimate_ += peer.EstimateInt() - peer.options_.initial_value;
  net_->mutable_cost()->Merge(peer.cost());
  AdvanceTime(peer.time());
}

std::string DeterministicTracker::SerializeState() const {
  std::string out = FormatMergeableState("deterministic", num_sites(),
                                         std::to_string(EstimateInt()),
                                         time(), cost());
  AppendField(&out, "v", std::to_string(kTrackerStateVersion));
  AppendField(&out, "init", std::to_string(options_.initial_value));
  AppendField(&out, "clk", std::to_string(net_->now()));
  AppendField(&out, "merged", std::to_string(merged_estimate_));
  AppendField(&out, "csum", std::to_string(coord_drift_sum_));
  AppendField(&out, "sdrift", JoinI64(site_drift_));
  AppendField(&out, "sunsent", JoinI64(site_unsent_));
  AppendField(&out, "cdrift", JoinI64(coord_drift_));
  AppendField(&out, "part", partitioner_->SerializeState());
  AppendField(&out, "cost", cost().SerializeCounts());
  return out;
}

bool DeterministicTracker::RestoreState(const std::string& state,
                                        std::string* error) {
  StateFields fields;
  if (!ParseTrackerState(state, "deterministic", num_sites(), time(),
                         &fields, error)) {
    return false;
  }
  int64_t est = 0, init = 0, merged = 0, csum = 0;
  uint64_t t = 0, clk = 0;
  std::string part_text, cost_text;
  std::vector<int64_t> sdrift, sunsent, cdrift;
  if (!fields.GetI64("est", &est) || !fields.GetI64("init", &init) ||
      !fields.GetU64("time", &t) || !fields.GetU64("clk", &clk) ||
      !fields.GetI64("merged", &merged) || !fields.GetI64("csum", &csum) ||
      !fields.GetI64List("sdrift", num_sites(), &sdrift) ||
      !fields.GetI64List("sunsent", num_sites(), &sunsent) ||
      !fields.GetI64List("cdrift", num_sites(), &cdrift) ||
      !fields.GetString("part", &part_text) ||
      !fields.GetString("cost", &cost_text)) {
    if (error != nullptr) *error = "corrupt deterministic tracker state";
    return false;
  }
  if (init != options_.initial_value) {
    if (error != nullptr) {
      *error = "state was taken with initial_value=" + std::to_string(init) +
               ", this tracker was constructed with " +
               std::to_string(options_.initial_value);
    }
    return false;
  }
  if (!partitioner_->RestoreState(part_text) ||
      !net_->mutable_cost()->RestoreCounts(cost_text)) {
    if (error != nullptr) *error = "corrupt deterministic tracker state";
    return false;
  }
  site_drift_ = std::move(sdrift);
  site_unsent_ = std::move(sunsent);
  coord_drift_ = std::move(cdrift);
  coord_drift_sum_ = csum;
  merged_estimate_ = merged;
  net_->RestoreClock(clk);
  AdvanceTime(t);
  RefreshSendThreshold(partitioner_->block().r);
  if (EstimateInt() != est) {
    if (error != nullptr) {
      *error = "restored deterministic state is inconsistent (estimate " +
               std::to_string(EstimateInt()) + " != serialized " +
               std::to_string(est) + ")";
    }
    return false;
  }
  return true;
}

VARSTREAM_REGISTER_TRACKER("deterministic", DeterministicTracker)

}  // namespace varstream
