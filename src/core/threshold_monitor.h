// The thresholded monitoring problem (k, f, tau, epsilon) from section 2:
// Cormode et al.'s original formulation. The coordinator must at all times
// be able to answer whether f(D) >= tau or f(D) <= (1 - epsilon)*tau;
// values in between may resolve either way.
//
// The paper's continuous tracker solves this directly: track f to relative
// error epsilon/3 and compare the estimate against (1 - epsilon/2)*tau.
// If f >= tau the estimate is >= tau*(1 - eps/3) > (1-eps/2)*tau -> ABOVE;
// if f <= (1-eps)*tau the estimate is <= (1-eps)(1+eps/3)*tau <
// (1-eps/2)*tau -> BELOW. ThresholdMonitor packages that reduction over
// any DistributedTracker, with hysteresis-free state-change callbacks.

#ifndef VARSTREAM_CORE_THRESHOLD_MONITOR_H_
#define VARSTREAM_CORE_THRESHOLD_MONITOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/deterministic_tracker.h"
#include "core/options.h"
#include "core/tracker.h"

namespace varstream {

/// The coordinator's answer to "is f at the threshold?".
enum class ThresholdState {
  kBelow,  ///< certified f < tau (in fact f <= (1-eps)*tau may hold)
  kAbove,  ///< certified f >= (1-eps)*tau (in fact f >= tau may hold)
};

class ThresholdMonitor {
 public:
  using StateChangeCallback =
      std::function<void(uint64_t time, ThresholdState new_state)>;

  /// Monitors f against `tau` with slack `options.epsilon`, building a
  /// deterministic tracker at precision epsilon/3 internally.
  /// Requires tau >= 1.
  ThresholdMonitor(const TrackerOptions& options, int64_t tau);

  /// Delivers update f'(n) = delta (+-1) at `site`.
  void Push(uint32_t site, int64_t delta);

  /// Current answer. Correct in the (k, f, tau, eps) sense: never kBelow
  /// while f >= tau, never kAbove while f <= (1-eps)*tau.
  ThresholdState state() const { return state_; }

  /// Fired on every state flip (after the Push that caused it).
  void set_state_change_callback(StateChangeCallback cb) {
    on_change_ = std::move(cb);
  }

  /// Number of state flips so far.
  uint64_t flips() const { return flips_; }

  const CostMeter& cost() const { return tracker_->cost(); }
  uint64_t time() const { return tracker_->time(); }
  int64_t tau() const { return tau_; }
  double Estimate() const { return tracker_->Estimate(); }
  std::string name() const { return "threshold-monitor"; }

 private:
  int64_t tau_;
  double epsilon_;
  std::unique_ptr<DeterministicTracker> tracker_;
  ThresholdState state_ = ThresholdState::kBelow;
  uint64_t flips_ = 0;
  StateChangeCallback on_change_;
};

}  // namespace varstream

#endif  // VARSTREAM_CORE_THRESHOLD_MONITOR_H_
