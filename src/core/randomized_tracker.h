// Section 3.4: the randomized distributed counting algorithm.
//
// Guarantee: P(|f(n) - f̂(n)| <= epsilon*|f(n)|) >= 2/3 at every n, in the
// regime k = O(1/epsilon^2) the paper's bound statement assumes (then r = 0
// blocks are tracked exactly, see below).
// Communication: O((k + sqrt(k)/epsilon) * v(n)) messages in expectation.
//
// Inside each block the +1 and -1 update substreams are tracked by two
// independent copies A+ / A- of the Huang-Yi-Zhang monotone counter: on
// each arrival the receiving site sends its exact one-sided drift d±i with
// probability p = min{1, 3 / (epsilon * 2^r * sqrt(k))}; on receipt the
// coordinator sets its estimate to d±i - 1 + 1/p. By HYZ's Lemma 2.1 this
// estimator is unbiased with Var <= 1/p^2, so Chebyshev over the 2k
// independent one-sided estimators gives error > epsilon*2^r*k with
// probability < 2/9 < 1/3, and |f(n)| >= 2^r*k inside r >= 1 blocks turns
// that into the relative guarantee. When k <= 9/epsilon^2 the r = 0
// probability p = min{1, 3/(eps*sqrt(k))} = 1, so small-|f| blocks are
// exact — exactly how the paper handles f(n) = 0.

#ifndef VARSTREAM_CORE_RANDOMIZED_TRACKER_H_
#define VARSTREAM_CORE_RANDOMIZED_TRACKER_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "core/block_partition.h"
#include "core/mergeable.h"
#include "core/options.h"
#include "core/tracker.h"
#include "net/network.h"

namespace varstream {

class RandomizedTracker : public DistributedTracker, public Mergeable {
 public:
  explicit RandomizedTracker(const TrackerOptions& options);

  double Estimate() const override;
  const CostMeter& cost() const override { return net_->cost(); }
  std::string name() const override { return "randomized"; }

  /// HYZ one-sided estimators are unbiased and independent across sites,
  /// so summing disjoint partitions preserves unbiasedness; per-partition
  /// seeds must be decorrelated (ShardedTracker::DeriveSiteSeed).
  void MergeFrom(const DistributedTracker& other) override;
  std::string SerializeState() const override;
  bool RestoreState(const std::string& state, std::string* error) override;

  uint64_t blocks_completed() const {
    return partitioner_->blocks_completed();
  }
  int current_scale() const { return partitioner_->block().r; }

  /// The sampling probability used in a block of scale r.
  double SampleProbability(int r) const;

 protected:
  void DoPush(uint32_t site, int64_t delta) override;
  void DoPushBatch(std::span<const CountUpdate> batch) override;

 private:
  void OnBlockEnd(const BlockInfo& closed, const BlockInfo& next);

  /// The non-virtual per-unit step shared by DoPush and DoPushBatch.
  void UnitPush(uint32_t site, int64_t delta);

  TrackerOptions options_;
  std::unique_ptr<SimNetwork> net_;
  std::unique_ptr<BlockPartitioner> partitioner_;
  Rng rng_;

  // Site state: one-sided in-block drifts (counts of +1 / -1 arrivals).
  std::vector<int64_t> site_plus_;
  std::vector<int64_t> site_minus_;

  // Coordinator state: HYZ estimates of the one-sided drifts and sums.
  std::vector<double> coord_plus_;
  std::vector<double> coord_minus_;
  double coord_plus_sum_ = 0.0;
  double coord_minus_sum_ = 0.0;
  double p_ = 1.0;  // sampling probability of the current block

  // Folded-in estimate of merged disjoint partitions (MergeFrom).
  double merged_estimate_ = 0.0;
};

}  // namespace varstream

#endif  // VARSTREAM_CORE_RANDOMIZED_TRACKER_H_
