// Scenario: one declarative experiment. A scenario names a stream, a
// tracker, and the run parameters (sites, epsilon, n, seed, batch); running
// it resolves both names through their registries, derives deterministic
// per-scenario seeds, and measures the run through the shared driver.
//
//   Scenario s;
//   s.tracker = "deterministic";
//   s.stream = "random-walk";
//   s.epsilon = 0.05;
//   ScenarioResult r = RunScenario(s);
//   // r.ok, r.result.messages, ScenarioResultToJson(r), ...
//
// Scenarios are value types: the same Scenario always produces the same
// ScenarioResult, regardless of what ran before it or on which thread —
// the property the parallel suite runner (core/suite.h) is built on.

#ifndef VARSTREAM_CORE_SCENARIO_H_
#define VARSTREAM_CORE_SCENARIO_H_

#include <cstdint>
#include <map>
#include <string>

#include "core/driver.h"

namespace varstream {

/// A named (stream x tracker x parameters) experiment configuration.
struct Scenario {
  std::string tracker = "deterministic";  ///< TrackerRegistry name
  std::string stream = "random-walk";     ///< StreamRegistry name
  std::string assigner = "uniform";       ///< site-assignment policy
  uint32_t num_sites = 8;
  double epsilon = 0.1;
  uint64_t n = 100000;   ///< updates to run
  uint64_t seed = 1;     ///< user-level seed (mixed per scenario, see below)
  uint64_t batch_size = 1;
  uint64_t period = 64;  ///< periodic-baseline sync period
  /// Worker shards: 0 = serial engine, 1..num_sites = sharded ingest
  /// engine (core/sharded.h; requires a mergeable tracker). Results are
  /// identical for every value >= 1; the knob trades threads for
  /// wall-clock only.
  uint32_t num_shards = 0;
  std::map<std::string, double> params;  ///< stream knobs (StreamSpec)

  /// "tracker/stream/assigner/k../eps../n../seed.." — unique within a
  /// suite expansion, used as the row key in result files.
  std::string Id() const;
};

/// Outcome of one scenario: either a RunResult or a resolution error
/// (unknown tracker/stream/assigner, incompatible pairing).
struct ScenarioResult {
  Scenario scenario;
  bool ok = false;
  std::string error;  ///< set when !ok
  RunResult result;   ///< valid when ok
};

/// Deterministic sub-seeds: pure functions of the scenario fields, so a
/// scenario produces identical randomness no matter where or when it runs.
/// The stream and tracker draw from decorrelated seeds, and different
/// (stream, tracker) pairs at the same user seed are decorrelated too.
uint64_t ScenarioStreamSeed(const Scenario& scenario);
uint64_t ScenarioTrackerSeed(const Scenario& scenario);

/// Resolves and runs one scenario. Never throws; resolution failures come
/// back as ok == false with a message listing the valid names.
ScenarioResult RunScenario(const Scenario& scenario);

/// One JSON object per result (schema documented in README.md).
std::string ScenarioResultToJson(const ScenarioResult& result);

/// CSV row (and the matching header) with the same fields.
std::string ScenarioResultCsvHeader();
std::string ScenarioResultToCsvRow(const ScenarioResult& result);

}  // namespace varstream

#endif  // VARSTREAM_CORE_SCENARIO_H_
