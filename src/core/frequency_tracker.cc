#include "core/frequency_tracker.h"

#include <cassert>
#include <cstdlib>

#include "common/math_util.h"

namespace varstream {

FrequencyTracker::FrequencyTracker(const TrackerOptions& options)
    : options_(options),
      net_(std::make_unique<SimNetwork>(options.num_sites)),
      site_items_(options.num_sites) {
  assert(options.epsilon > 0 && options.epsilon < 1);
  // F1 starts at 0: the dataset is initially empty.
  partitioner_ = std::make_unique<BlockPartitioner>(net_.get(), 0);
  partitioner_->set_block_end_callback(
      [this](const BlockInfo& closed, const BlockInfo& next) {
        OnBlockEnd(closed, next);
      });
}

double FrequencyTracker::Threshold(int r) const {
  return options_.epsilon * static_cast<double>(Pow2(r)) / 3.0;
}

void FrequencyTracker::Push(uint32_t site, uint64_t item, int32_t delta) {
  assert(delta == 1 || delta == -1);
  assert(site < options_.num_sites);
  net_->Tick();

  SiteItem& entry = site_items_[site][item];
  entry.f += delta;
  entry.unsent += delta;

  bool closed = partitioner_->OnArrival(site, delta);
  if (closed) return;  // OnBlockEnd already rebuilt coordinator state.

  double theta = Threshold(partitioner_->block().r);
  if (static_cast<double>(AbsU64(entry.unsent)) >= theta) {
    // Message: delta_il. Coordinator: f̂_il += delta_il.
    net_->SendToCoordinator(site, MessageKind::kDrift, /*words=*/2);
    coord_estimate_[item] += entry.unsent;
    entry.unsent = 0;
  }
}

void FrequencyTracker::OnBlockEnd(const BlockInfo& /*closed*/,
                                  const BlockInfo& next) {
  // The coordinator rebuilds from end-of-block reports; everything it held
  // is superseded (unreported counters round to zero, each below theta).
  coord_estimate_.clear();
  double theta = Threshold(next.r);
  for (uint32_t s = 0; s < site_items_.size(); ++s) {
    auto& items = site_items_[s];
    for (auto it = items.begin(); it != items.end();) {
      SiteItem& entry = it->second;
      entry.unsent = 0;
      if (entry.f == 0) {
        it = items.erase(it);
        continue;
      }
      if (static_cast<double>(AbsU64(entry.f)) >= theta) {
        // Report (item, f_il): the coordinator now knows it exactly.
        net_->SendToCoordinator(s, MessageKind::kEndOfBlockReport,
                                /*words=*/2);
        coord_estimate_[it->first] += entry.f;
      }
      ++it;
    }
  }
}

int64_t FrequencyTracker::EstimateItem(uint64_t item) const {
  auto it = coord_estimate_.find(item);
  return it == coord_estimate_.end() ? 0 : it->second;
}

std::vector<std::pair<uint64_t, int64_t>> FrequencyTracker::HeavyHitters(
    double phi) const {
  double threshold = phi * static_cast<double>(F1AtBlockStart());
  std::vector<std::pair<uint64_t, int64_t>> result;
  for (const auto& [item, est] : coord_estimate_) {
    if (static_cast<double>(est) >= threshold && est > 0) {
      result.emplace_back(item, est);
    }
  }
  return result;
}

}  // namespace varstream
