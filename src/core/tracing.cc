#include "core/tracing.h"

#include <algorithm>
#include <cassert>

namespace varstream {

HistoryTracer::HistoryTracer(double initial_estimate)
    : initial_estimate_(initial_estimate) {}

void HistoryTracer::Observe(uint64_t t, double estimate) {
  assert(times_.empty() || t >= times_.back());
  double last = times_.empty() ? initial_estimate_ : estimates_.back();
  if (estimate == last) return;
  if (!times_.empty() && times_.back() == t) {
    // Same timestep changed twice (message + block poll): keep the final.
    estimates_.back() = estimate;
    return;
  }
  times_.push_back(t);
  estimates_.push_back(estimate);
}

double HistoryTracer::Query(uint64_t t) const {
  // Find the last changepoint with time <= t.
  auto it = std::upper_bound(times_.begin(), times_.end(), t);
  if (it == times_.begin()) return initial_estimate_;
  return estimates_[static_cast<size_t>(it - times_.begin()) - 1];
}

uint64_t HistoryTracer::SummaryBits(uint64_t time_bits,
                                    uint64_t value_bits) const {
  return changepoints() * (time_bits + value_bits);
}

}  // namespace varstream
