// Experiment driver: wires a stream (generator + site assigner, or a
// recorded trace) into a tracker, checks the estimate against ground truth
// after every update, and reports error/cost/variability measurements.
// Every test and benchmark in the repository funnels through RunCount so
// measurements are comparable.

#ifndef VARSTREAM_CORE_DRIVER_H_
#define VARSTREAM_CORE_DRIVER_H_

#include <cstdint>

#include "core/tracing.h"
#include "core/tracker.h"
#include "stream/generator.h"
#include "stream/site_assigner.h"
#include "stream/trace.h"

namespace varstream {

/// Measurements from one tracker run.
struct RunResult {
  uint64_t n = 0;              ///< updates processed
  double variability = 0.0;    ///< v(n) of the stream actually consumed
  uint64_t messages = 0;       ///< total messages
  uint64_t bits = 0;           ///< total bits
  uint64_t partition_messages = 0;  ///< section 3.1 traffic
  uint64_t tracking_messages = 0;   ///< in-block + report traffic
  double max_rel_error = 0.0;  ///< max over n of |f - f̂| / |f|
  double mean_rel_error = 0.0;
  /// Fraction of timesteps with |f - f̂| > epsilon*|f| (the randomized
  /// guarantee allows up to 1/3 per timestep).
  double violation_rate = 0.0;
  int64_t final_f = 0;
  double final_estimate = 0.0;
};

/// Runs `n` updates from (gen, assigner) through `tracker`, validating the
/// estimate after each one against `epsilon`. If `tracer` is non-null, the
/// estimate history is recorded for historical queries. The tracker must be
/// fresh (time() == 0) and have the same initial value as the generator.
RunResult RunCount(CountGenerator* gen, SiteAssigner* assigner,
                   DistributedTracker* tracker, uint64_t n, double epsilon,
                   HistoryTracer* tracer = nullptr);

/// Same, replaying a recorded trace (byte-identical comparisons between
/// trackers).
RunResult RunCountOnTrace(const StreamTrace& trace,
                          DistributedTracker* tracker, double epsilon,
                          HistoryTracer* tracer = nullptr);

/// Batched-ingest variants: identical stream and tracker behavior (the
/// PushBatch contract guarantees estimates, cost, and time match the
/// per-update loop), but updates are delivered in batches of `batch_size`
/// and the estimate is validated only at batch boundaries. Error and
/// violation statistics are therefore measured over ceil(n/batch_size)
/// observations instead of n — the throughput-measurement mode for large
/// replays. batch_size must be >= 1.
RunResult RunCountBatched(CountGenerator* gen, SiteAssigner* assigner,
                          DistributedTracker* tracker, uint64_t n,
                          double epsilon, uint64_t batch_size,
                          HistoryTracer* tracer = nullptr);

RunResult RunCountOnTraceBatched(const StreamTrace& trace,
                                 DistributedTracker* tracker, double epsilon,
                                 uint64_t batch_size,
                                 HistoryTracer* tracer = nullptr);

}  // namespace varstream

#endif  // VARSTREAM_CORE_DRIVER_H_
