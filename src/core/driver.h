// Experiment driver: wires any StreamSource into a tracker, checks the
// estimate against ground truth after every delivery, and reports
// error/cost/variability measurements. Every test, tool, and benchmark in
// the repository funnels through Run so measurements are comparable.

#ifndef VARSTREAM_CORE_DRIVER_H_
#define VARSTREAM_CORE_DRIVER_H_

#include <cstdint>

#include "core/tracing.h"
#include "core/tracker.h"
#include "stream/generator.h"
#include "stream/site_assigner.h"
#include "stream/source.h"
#include "stream/trace.h"

namespace varstream {

/// Measurements from one tracker run.
struct RunResult {
  uint64_t n = 0;              ///< updates processed
  double variability = 0.0;    ///< v(n) of the stream actually consumed
  uint64_t messages = 0;       ///< total messages
  uint64_t bits = 0;           ///< total bits
  uint64_t partition_messages = 0;  ///< section 3.1 traffic
  uint64_t tracking_messages = 0;   ///< in-block + report traffic
  double max_rel_error = 0.0;  ///< max over n of |f - f̂| / |f|
  double mean_rel_error = 0.0;
  /// Fraction of timesteps with |f - f̂| > epsilon*|f| (the randomized
  /// guarantee allows up to 1/3 per timestep).
  double violation_rate = 0.0;
  int64_t final_f = 0;
  double final_estimate = 0.0;
};

/// Knobs for one Run.
struct RunOptions {
  /// Relative-error budget the estimate is validated against.
  double epsilon = 0.1;

  /// Updates to consume. 0 means "drain the source", which is only legal
  /// for finite sources (a TraceSource); unbounded generator-backed
  /// sources require an explicit budget. A finite source may run dry
  /// before the budget — the run then ends at exhaustion.
  uint64_t max_updates = 0;

  /// Delivery granularity. 1 delivers per-update through Push and
  /// validates the estimate after every update. B > 1 delivers through
  /// PushBatch (identical stream and tracker behavior per the PushBatch
  /// contract) and validates only at batch boundaries, so error and
  /// violation statistics are measured over ceil(n/B) observations — the
  /// throughput-measurement mode for large replays.
  uint64_t batch_size = 1;

  /// Worker shards driving the run. 0 = the serial engine (a plain
  /// registry tracker); >= 1 = the tracker must be a ShardedTracker
  /// (core/sharded.h) with exactly this worker count — construct it via
  /// ShardedTracker::Create and Run cross-checks the pairing in debug
  /// builds. Carried in RunOptions so one options struct travels from the
  /// CLI / Scenario layer into result rows. Sharded runs want
  /// batch_size >> 1: every estimate validation drains the shard
  /// pipeline.
  uint32_t num_shards = 0;

  /// If non-null, the estimate history is recorded for historical queries.
  HistoryTracer* tracer = nullptr;
};

/// Runs updates pulled from `source` through `tracker` under `options`.
/// The tracker must be fresh (time() == 0) and share the source's initial
/// value.
RunResult Run(StreamSource& source, DistributedTracker& tracker,
              const RunOptions& options = {});

}  // namespace varstream

#endif  // VARSTREAM_CORE_DRIVER_H_
