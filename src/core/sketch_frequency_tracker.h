// Appendix H.0.2: item frequencies in small space AND small communication.
//
// The exact tracker of H.0.1 keeps |U| counters per site. Following the
// paper, we instead hash items into a small bank of counters — either a
// Count-Min partition (randomized: rows = 1, width 27/epsilon gives
// +-epsilon*F1/3 per query w.p. 8/9) or a CR-precis table (deterministic:
// ~3/epsilon rows of primes sized ~6 log|U| / (epsilon log 1/epsilon)) —
// and run the *same* block/threshold tracking protocol over the counters
// ("virtual items"). The coordinator combines its tracked counter
// estimates linearly (min for Count-Min, average for CR-precis) to answer
// point queries, paying one extra epsilon*F1/3 of sketch collision error
// on top of the 2*epsilon*F1/3 tracking error.
//
// Costs (bits of space + communication), as reported in the paper:
//   * CR-precis variant:  O(k log|U| / (eps^2 log 1/eps) * v(n) * log n),
//     with probability-1 guarantees;
//   * Count-Min variant:  O(k log|U| + k/eps * v(n) * log n),
//     with per-query success probability 8/9.

#ifndef VARSTREAM_CORE_SKETCH_FREQUENCY_TRACKER_H_
#define VARSTREAM_CORE_SKETCH_FREQUENCY_TRACKER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/block_partition.h"
#include "core/options.h"
#include "net/network.h"
#include "sketch/counter_bank.h"

namespace varstream {

/// Which sketch substrate reduces items to counters.
enum class SketchKind {
  kCountMinPartition,  // 1 x ceil(27/eps), randomized (Appendix H default)
  kCRPrecis,           // deterministic prime table
};

class SketchFrequencyTracker {
 public:
  /// Builds the mapper per `kind` using options.epsilon and `universe`
  /// (needed to size CR-precis).
  SketchFrequencyTracker(const TrackerOptions& options, SketchKind kind,
                         uint64_t universe);

  /// Uses a caller-provided mapper (must outlive the tracker).
  SketchFrequencyTracker(const TrackerOptions& options,
                         std::shared_ptr<SketchMapper> mapper);

  /// Delivers one item update (delta must be +-1) to `site`.
  void Push(uint32_t site, uint64_t item, int32_t delta);

  /// Point estimate of f_l(n): tracked counter estimates combined by the
  /// sketch (min / average).
  double EstimateItem(uint64_t item) const;

  int64_t F1AtBlockStart() const { return partitioner_->f_at_block_start(); }

  const CostMeter& cost() const { return net_->cost(); }
  uint64_t time() const { return partitioner_->time(); }
  uint64_t blocks_completed() const {
    return partitioner_->blocks_completed();
  }
  int current_scale() const { return partitioner_->block().r; }
  uint32_t num_sites() const { return options_.num_sites; }
  std::string name() const { return "frequency-" + mapper_->name(); }

  /// Space held at the coordinator for counter estimates, in bits.
  uint64_t CoordinatorSpaceBits() const {
    return aggregate_.SpaceBits();
  }

  const SketchMapper& mapper() const { return *mapper_; }

  /// Per-counter report threshold theta for scale r.
  double Threshold(int r) const;

 private:
  void OnBlockEnd(const BlockInfo& closed, const BlockInfo& next);

  TrackerOptions options_;
  std::shared_ptr<SketchMapper> mapper_;
  std::unique_ptr<SimNetwork> net_;
  std::unique_ptr<BlockPartitioner> partitioner_;

  // Per-site counter banks: all-time net counts and in-block unsent drift.
  std::vector<CounterBank> site_f_;
  std::vector<CounterBank> site_unsent_;

  // Coordinator: aggregate estimate per counter (sum over sites).
  CounterBank aggregate_;
};

}  // namespace varstream

#endif  // VARSTREAM_CORE_SKETCH_FREQUENCY_TRACKER_H_
