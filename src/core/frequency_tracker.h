// Appendix H: distributed tracking of item frequencies over a general
// insert/delete stream, with exact per-item counters (H.0.1).
//
// Every item frequency f_l(n) is tracked at the coordinator to within
// +-epsilon*F1(n), where F1 = |D| is the dataset size, using F1-variability
// v'(t) = min{1, 1/F1(t)} as the budget. Total communication is
// O(k/epsilon * v(n)) messages.
//
// Protocol. Time is partitioned into blocks by the section 3.1 machinery
// running on f = F1 (each insert/delete is a +-1 update of F1). Let
// theta = epsilon*2^r/3 for the current block scale r. Then:
//   * per block, site i keeps, for every item l it has seen, its total net
//     count f_il and the in-block unsent drift delta_il; whenever
//     |delta_il| >= theta it forwards delta_il to the coordinator;
//   * at each block boundary, every site reports all counters with
//     |f_il| >= theta (with the *new* r); the coordinator rebuilds its
//     estimates from exactly these reports, so unreported counters
//     contribute error < theta each.
// Error: per site-item < 2*theta, summed over k sites <= (2/3)*epsilon*2^r*k
// <= (2/3)*epsilon*F1(n) inside r >= 1 blocks; r = 0 blocks are exact
// because theta < 1. Reports per block: at most 12k/epsilon counters
// (mass argument), matching the paper.
//
// Note on site routing: if inserts and deletes of an item can arrive at
// different sites, per-site counts f_il may go negative; the protocol stays
// correct (all bounds use |f_il|), but the 12k/epsilon report bound assumes
// the total |f_il|-mass is F1, which holds when each item's traffic is
// pinned to one site (e.g. routed by hash) — the assignment the
// communication experiments use.

#ifndef VARSTREAM_CORE_FREQUENCY_TRACKER_H_
#define VARSTREAM_CORE_FREQUENCY_TRACKER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/block_partition.h"
#include "core/options.h"
#include "net/network.h"

namespace varstream {

class FrequencyTracker {
 public:
  explicit FrequencyTracker(const TrackerOptions& options);

  /// Delivers one item update (delta must be +-1) to `site`.
  void Push(uint32_t site, uint64_t item, int32_t delta);

  /// Coordinator's estimate of f_l(n) (sum over sites of its per-site
  /// estimates). Items never reported estimate to 0.
  int64_t EstimateItem(uint64_t item) const;

  /// Exact F1 at the current block start (coordinator knowledge); within
  /// the block the true F1 differs by at most a factor related to 2^r*k.
  int64_t F1AtBlockStart() const { return partitioner_->f_at_block_start(); }

  /// Items whose estimated frequency is at least phi * F1AtBlockStart().
  std::vector<std::pair<uint64_t, int64_t>> HeavyHitters(double phi) const;

  const CostMeter& cost() const { return net_->cost(); }
  uint64_t time() const { return partitioner_->time(); }
  uint64_t blocks_completed() const {
    return partitioner_->blocks_completed();
  }
  int current_scale() const { return partitioner_->block().r; }
  uint32_t num_sites() const { return options_.num_sites; }
  std::string name() const { return "frequency-exact"; }

  /// Per-counter report threshold theta for scale r.
  double Threshold(int r) const;

 private:
  struct SiteItem {
    int64_t f = 0;       // net count of the item at this site, all time
    int64_t unsent = 0;  // in-block drift not yet forwarded
  };

  void OnBlockEnd(const BlockInfo& closed, const BlockInfo& next);

  TrackerOptions options_;
  std::unique_ptr<SimNetwork> net_;
  std::unique_ptr<BlockPartitioner> partitioner_;
  std::vector<std::unordered_map<uint64_t, SiteItem>> site_items_;
  // Coordinator: aggregate estimate per item (sum of per-site estimates).
  std::unordered_map<uint64_t, int64_t> coord_estimate_;
};

}  // namespace varstream

#endif  // VARSTREAM_CORE_FREQUENCY_TRACKER_H_
