// Section 3.1: partitioning time into blocks of constant variability.
//
// The coordinator divides time into blocks B0, B1, ... such that at each
// block boundary nj it learns n and f(nj) *exactly*, and within a block the
// scale of |f| is pinned to a dyadic range indexed by r:
//
//   * r = 0   iff |f(nj)| < 4k; then |f(n)| <= 5k throughout the block.
//   * r >= 1  iff 2^r*2k <= |f(nj)| < 2^r*4k; then 2^r*k <= |f(n)| <= 2^r*5k
//     throughout the block.
//
// The protocol (quoting the paper, with site threshold h = ceil(2^{r-1})):
//   * every site counts arrivals ci since its last report and net drift fi
//     since the last broadcast; when ci reaches h it reports ci and resets;
//   * the coordinator accumulates reported counts in t̂; when t̂ >= h*k it
//     polls every site for its residual (ci, fi), reconstructs n and f(n)
//     exactly, recomputes r from |f(n)|, and broadcasts the new r.
//
// Consequences proved in the paper and asserted by our tests:
//   * ceil(2^{r-1})*k <= |Bj| <= 2^r*k  (block length bounds),
//   * at most 5k messages per block are spent on partitioning,
//   * the variability increase over each block is at least 1/10.
//
// The in-block estimation algorithms (sections 3.3/3.4, Appendix H) plug in
// via the block-end callback, which fires after the poll so the new block's
// exact (n, f, r) are available.

#ifndef VARSTREAM_CORE_BLOCK_PARTITION_H_
#define VARSTREAM_CORE_BLOCK_PARTITION_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "net/network.h"

namespace varstream {

/// Coordinator-side description of one block.
struct BlockInfo {
  uint64_t index = 0;       ///< j: 0-based block number.
  uint64_t start_time = 0;  ///< nj: timestep at which the block began.
  int64_t f_start = 0;      ///< f(nj), known exactly at the coordinator.
  int r = 0;                ///< dyadic scale exponent for this block.
  uint64_t site_threshold = 1;  ///< h = ceil(2^{r-1}): per-site report size.
  uint64_t end_threshold = 1;   ///< t_{j+1} = h*k: reported-count target.
};

class BlockPartitioner {
 public:
  /// Fired when an arrival closes block `closed` (the poll has completed;
  /// `next` has exact start_time / f_start / r). In-block algorithms reset
  /// their per-block state here.
  using BlockEndCallback =
      std::function<void(const BlockInfo& closed, const BlockInfo& next)>;

  /// `net` must outlive the partitioner. f0 = f(0).
  BlockPartitioner(SimNetwork* net, int64_t f0);

  void set_block_end_callback(BlockEndCallback cb) {
    block_end_callback_ = std::move(cb);
  }

  /// Processes the arrival of f'(n) = delta (must be +-1) at `site`.
  /// Returns true iff this arrival closed the current block, in which case
  /// the callback has already run and block() describes the new block.
  bool OnArrival(uint32_t site, int64_t delta);

  /// The current (open) block.
  const BlockInfo& block() const { return block_; }

  /// Exact f at the start of the current block (= block().f_start).
  int64_t f_at_block_start() const { return block_.f_start; }

  /// Number of completed blocks.
  uint64_t blocks_completed() const { return blocks_completed_; }

  /// Number of updates processed so far.
  uint64_t time() const { return time_; }

  /// Computes the scale exponent for a block starting with |f| = abs_f:
  /// 0 if abs_f < 4k, else the unique r >= 1 with 2^r*2k <= abs_f < 2^r*4k.
  static int ScaleFor(uint64_t abs_f, uint32_t k);

  /// Complete partitioner state as one token (no '|' or newlines, so it
  /// embeds as a field of a tracker state line — core/state_codec.h):
  /// "j,start,fstart,r,h,end,that,time,blocks;ci:fi,ci:fi,...". The
  /// restored partitioner resumes mid-block exactly where the serialized
  /// one stopped. RestoreState returns false on a malformed token or a
  /// site-count mismatch; it does not touch the network or the callback.
  std::string SerializeState() const;
  bool RestoreState(const std::string& text);

 private:
  void StartBlock(int64_t f_exact);
  void CloseBlock();

  struct SiteState {
    uint64_t ci = 0;  // arrivals since last ci report
    int64_t fi = 0;   // net drift since last broadcast
  };

  SimNetwork* net_;
  std::vector<SiteState> sites_;
  BlockInfo block_;
  uint64_t t_hat_ = 0;  // coordinator's accumulated reported count
  uint64_t time_ = 0;
  uint64_t blocks_completed_ = 0;
  BlockEndCallback block_end_callback_;
};

}  // namespace varstream

#endif  // VARSTREAM_CORE_BLOCK_PARTITION_H_
