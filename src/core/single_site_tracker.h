// Section 5.2 / Appendix I: tracking a general integer-valued aggregate f
// with a single site (k = 1).
//
// The site always knows f(n) exactly; whenever |f - f̂| > epsilon*|f| it
// sends f to the coordinator. The potential argument of Appendix I bounds
// the number of messages by the total increase of Phi(n) = |f - f̂|/|f|,
// which is at most (1 + epsilon) * v(n); hence O(v(n)/epsilon) messages.
//
// Because the condition compares against the *exact* f, this tracker works
// for any integer aggregate (a count, a maximum, a quantile value, ...);
// use Update(new_value) to track an arbitrary aggregate, or Push(delta) for
// the streaming-count special case.

#ifndef VARSTREAM_CORE_SINGLE_SITE_TRACKER_H_
#define VARSTREAM_CORE_SINGLE_SITE_TRACKER_H_

#include <memory>

#include "core/options.h"
#include "core/tracker.h"
#include "net/network.h"

namespace varstream {

class SingleSiteTracker : public DistributedTracker {
 public:
  /// Only options.epsilon and options.initial_value are used; k is 1.
  explicit SingleSiteTracker(const TrackerOptions& options);

  /// General-aggregate interface: the site's aggregate changed to `value`.
  /// Advances time by one step (one aggregate change = one arrival). The
  /// streaming-count special case goes through Push/PushBatch as usual
  /// (site argument must be 0).
  void Update(int64_t value);

  double Estimate() const override {
    return static_cast<double>(estimate_);
  }
  int64_t EstimateInt() const { return estimate_; }
  const CostMeter& cost() const override { return net_->cost(); }
  std::string name() const override { return "single-site"; }

  /// Exact current value held at the site.
  int64_t exact_value() const { return value_; }

 protected:
  /// Arbitrary deltas are native here: the site knows f exactly, so a
  /// magnitude-m update is one aggregate change, not m virtual arrivals.
  void DoPush(uint32_t site, int64_t delta) override;

 private:
  /// Resyncs the coordinator whenever |f - f̂| > epsilon*|f|.
  void MaybeSync();

  TrackerOptions options_;
  std::unique_ptr<SimNetwork> net_;
  int64_t value_;
  int64_t estimate_;
};

}  // namespace varstream

#endif  // VARSTREAM_CORE_SINGLE_SITE_TRACKER_H_
