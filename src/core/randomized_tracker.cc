#include "core/randomized_tracker.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/math_util.h"
#include "core/registry.h"
#include "core/state_codec.h"

namespace varstream {

RandomizedTracker::RandomizedTracker(const TrackerOptions& options)
    : DistributedTracker(options.num_sites, UpdateSupport::kUnit),
      options_(options),
      net_(std::make_unique<SimNetwork>(options.num_sites)),
      rng_(options.seed),
      site_plus_(options.num_sites, 0),
      site_minus_(options.num_sites, 0),
      coord_plus_(options.num_sites, 0.0),
      coord_minus_(options.num_sites, 0.0) {
  assert(options.epsilon > 0 && options.epsilon < 1);
  partitioner_ =
      std::make_unique<BlockPartitioner>(net_.get(), options.initial_value);
  partitioner_->set_block_end_callback(
      [this](const BlockInfo& closed, const BlockInfo& next) {
        OnBlockEnd(closed, next);
      });
  p_ = SampleProbability(partitioner_->block().r);
}

double RandomizedTracker::SampleProbability(int r) const {
  double denom = options_.epsilon * static_cast<double>(Pow2(r)) *
                 std::sqrt(static_cast<double>(options_.num_sites));
  return std::min(1.0, options_.sample_constant / denom);
}

void RandomizedTracker::UnitPush(uint32_t site, int64_t delta) {
  net_->Tick();

  // Feed the arrival into the one-sided copy (A+ or A-) at this site.
  bool plus = delta > 0;
  int64_t& d = plus ? site_plus_[site] : site_minus_[site];
  ++d;

  // Decide whether this arrival triggers a message *before* the partition
  // step so the sampling is independent of block closure; if the block
  // closes, the exact poll supersedes the message and we skip it.
  bool send = rng_.Bernoulli(p_);

  bool closed = partitioner_->OnArrival(site, delta);
  if (closed) return;

  if (send) {
    net_->SendToCoordinator(site, MessageKind::kDrift);
    // HYZ update: d̂±i = d±i - 1 + 1/p.
    double estimate = static_cast<double>(d) - 1.0 + 1.0 / p_;
    double& slot = plus ? coord_plus_[site] : coord_minus_[site];
    double& sum = plus ? coord_plus_sum_ : coord_minus_sum_;
    sum += estimate - slot;
    slot = estimate;
  }
}

void RandomizedTracker::DoPush(uint32_t site, int64_t delta) {
  UnitPush(site, delta);
}

void RandomizedTracker::DoPushBatch(std::span<const CountUpdate> batch) {
  // One virtual dispatch per batch instead of one per unit arrival.
  for (const CountUpdate& u : batch) {
    if (u.delta == 0) continue;
    const int64_t step = u.delta > 0 ? 1 : -1;
    for (uint64_t i = AbsU64(u.delta); i > 0; --i) UnitPush(u.site, step);
  }
}

void RandomizedTracker::OnBlockEnd(const BlockInfo& /*closed*/,
                                   const BlockInfo& next) {
  std::fill(site_plus_.begin(), site_plus_.end(), 0);
  std::fill(site_minus_.begin(), site_minus_.end(), 0);
  std::fill(coord_plus_.begin(), coord_plus_.end(), 0.0);
  std::fill(coord_minus_.begin(), coord_minus_.end(), 0.0);
  coord_plus_sum_ = 0.0;
  coord_minus_sum_ = 0.0;
  p_ = SampleProbability(next.r);
}

double RandomizedTracker::Estimate() const {
  return static_cast<double>(partitioner_->f_at_block_start()) +
         (coord_plus_sum_ - coord_minus_sum_) + merged_estimate_;
}

void RandomizedTracker::MergeFrom(const DistributedTracker& other) {
  const RandomizedTracker& peer = CheckedMergePeer(*this, other);
  merged_estimate_ +=
      peer.Estimate() - static_cast<double>(peer.options_.initial_value);
  net_->mutable_cost()->Merge(peer.cost());
  AdvanceTime(peer.time());
}

std::string RandomizedTracker::SerializeState() const {
  char est[64];
  std::snprintf(est, sizeof(est), "%.17g", Estimate());
  std::string out =
      FormatMergeableState("randomized", num_sites(), est, time(), cost());
  AppendField(&out, "v", std::to_string(kTrackerStateVersion));
  AppendField(&out, "init", std::to_string(options_.initial_value));
  AppendField(&out, "clk", std::to_string(net_->now()));
  AppendField(&out, "merged", EncodeDoubleBits(merged_estimate_));
  AppendField(&out, "psum", EncodeDoubleBits(coord_plus_sum_));
  AppendField(&out, "msum", EncodeDoubleBits(coord_minus_sum_));
  AppendField(&out, "splus", JoinI64(site_plus_));
  AppendField(&out, "sminus", JoinI64(site_minus_));
  AppendField(&out, "cplus", JoinDoubleBits(coord_plus_));
  AppendField(&out, "cminus", JoinDoubleBits(coord_minus_));
  AppendField(&out, "rng", rng_.SerializeState());
  AppendField(&out, "part", partitioner_->SerializeState());
  AppendField(&out, "cost", cost().SerializeCounts());
  return out;
}

bool RandomizedTracker::RestoreState(const std::string& state,
                                     std::string* error) {
  StateFields fields;
  if (!ParseTrackerState(state, "randomized", num_sites(), time(), &fields,
                         error)) {
    return false;
  }
  int64_t init = 0;
  uint64_t t = 0, clk = 0;
  double merged = 0, psum = 0, msum = 0;
  std::string rng_text, part_text, cost_text, est_text;
  std::vector<int64_t> splus, sminus;
  std::vector<double> cplus, cminus;
  if (!fields.GetString("est", &est_text) || !fields.GetI64("init", &init) ||
      !fields.GetU64("time", &t) || !fields.GetU64("clk", &clk) ||
      !fields.GetDoubleBits("merged", &merged) ||
      !fields.GetDoubleBits("psum", &psum) ||
      !fields.GetDoubleBits("msum", &msum) ||
      !fields.GetI64List("splus", num_sites(), &splus) ||
      !fields.GetI64List("sminus", num_sites(), &sminus) ||
      !fields.GetDoubleBitsList("cplus", num_sites(), &cplus) ||
      !fields.GetDoubleBitsList("cminus", num_sites(), &cminus) ||
      !fields.GetString("rng", &rng_text) ||
      !fields.GetString("part", &part_text) ||
      !fields.GetString("cost", &cost_text)) {
    if (error != nullptr) *error = "corrupt randomized tracker state";
    return false;
  }
  if (init != options_.initial_value) {
    if (error != nullptr) {
      *error = "state was taken with initial_value=" + std::to_string(init) +
               ", this tracker was constructed with " +
               std::to_string(options_.initial_value);
    }
    return false;
  }
  if (!rng_.RestoreState(rng_text) ||
      !partitioner_->RestoreState(part_text) ||
      !net_->mutable_cost()->RestoreCounts(cost_text)) {
    if (error != nullptr) *error = "corrupt randomized tracker state";
    return false;
  }
  site_plus_ = std::move(splus);
  site_minus_ = std::move(sminus);
  coord_plus_ = std::move(cplus);
  coord_minus_ = std::move(cminus);
  coord_plus_sum_ = psum;
  coord_minus_sum_ = msum;
  merged_estimate_ = merged;
  net_->RestoreClock(clk);
  AdvanceTime(t);
  p_ = SampleProbability(partitioner_->block().r);
  // The serialized estimate is %.17g, which round-trips doubles exactly —
  // so an estimate mismatch here means real corruption, not rounding.
  char round_trip[64];
  std::snprintf(round_trip, sizeof(round_trip), "%.17g", Estimate());
  if (est_text != round_trip) {
    if (error != nullptr) {
      *error = std::string("restored randomized state is inconsistent "
                           "(estimate ") +
               round_trip + " != serialized " + est_text + ")";
    }
    return false;
  }
  return true;
}

VARSTREAM_REGISTER_TRACKER("randomized", RandomizedTracker)

}  // namespace varstream
