#include "core/randomized_tracker.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/math_util.h"
#include "core/registry.h"

namespace varstream {

RandomizedTracker::RandomizedTracker(const TrackerOptions& options)
    : DistributedTracker(options.num_sites, UpdateSupport::kUnit),
      options_(options),
      net_(std::make_unique<SimNetwork>(options.num_sites)),
      rng_(options.seed),
      site_plus_(options.num_sites, 0),
      site_minus_(options.num_sites, 0),
      coord_plus_(options.num_sites, 0.0),
      coord_minus_(options.num_sites, 0.0) {
  assert(options.epsilon > 0 && options.epsilon < 1);
  partitioner_ =
      std::make_unique<BlockPartitioner>(net_.get(), options.initial_value);
  partitioner_->set_block_end_callback(
      [this](const BlockInfo& closed, const BlockInfo& next) {
        OnBlockEnd(closed, next);
      });
  p_ = SampleProbability(partitioner_->block().r);
}

double RandomizedTracker::SampleProbability(int r) const {
  double denom = options_.epsilon * static_cast<double>(Pow2(r)) *
                 std::sqrt(static_cast<double>(options_.num_sites));
  return std::min(1.0, options_.sample_constant / denom);
}

void RandomizedTracker::UnitPush(uint32_t site, int64_t delta) {
  net_->Tick();

  // Feed the arrival into the one-sided copy (A+ or A-) at this site.
  bool plus = delta > 0;
  int64_t& d = plus ? site_plus_[site] : site_minus_[site];
  ++d;

  // Decide whether this arrival triggers a message *before* the partition
  // step so the sampling is independent of block closure; if the block
  // closes, the exact poll supersedes the message and we skip it.
  bool send = rng_.Bernoulli(p_);

  bool closed = partitioner_->OnArrival(site, delta);
  if (closed) return;

  if (send) {
    net_->SendToCoordinator(site, MessageKind::kDrift);
    // HYZ update: d̂±i = d±i - 1 + 1/p.
    double estimate = static_cast<double>(d) - 1.0 + 1.0 / p_;
    double& slot = plus ? coord_plus_[site] : coord_minus_[site];
    double& sum = plus ? coord_plus_sum_ : coord_minus_sum_;
    sum += estimate - slot;
    slot = estimate;
  }
}

void RandomizedTracker::DoPush(uint32_t site, int64_t delta) {
  UnitPush(site, delta);
}

void RandomizedTracker::DoPushBatch(std::span<const CountUpdate> batch) {
  // One virtual dispatch per batch instead of one per unit arrival.
  for (const CountUpdate& u : batch) {
    if (u.delta == 0) continue;
    const int64_t step = u.delta > 0 ? 1 : -1;
    for (uint64_t i = AbsU64(u.delta); i > 0; --i) UnitPush(u.site, step);
  }
}

void RandomizedTracker::OnBlockEnd(const BlockInfo& /*closed*/,
                                   const BlockInfo& next) {
  std::fill(site_plus_.begin(), site_plus_.end(), 0);
  std::fill(site_minus_.begin(), site_minus_.end(), 0);
  std::fill(coord_plus_.begin(), coord_plus_.end(), 0.0);
  std::fill(coord_minus_.begin(), coord_minus_.end(), 0.0);
  coord_plus_sum_ = 0.0;
  coord_minus_sum_ = 0.0;
  p_ = SampleProbability(next.r);
}

double RandomizedTracker::Estimate() const {
  return static_cast<double>(partitioner_->f_at_block_start()) +
         (coord_plus_sum_ - coord_minus_sum_) + merged_estimate_;
}

void RandomizedTracker::MergeFrom(const DistributedTracker& other) {
  const RandomizedTracker& peer = CheckedMergePeer(*this, other);
  merged_estimate_ +=
      peer.Estimate() - static_cast<double>(peer.options_.initial_value);
  net_->mutable_cost()->Merge(peer.cost());
  AdvanceTime(peer.time());
}

std::string RandomizedTracker::SerializeState() const {
  char est[64];
  std::snprintf(est, sizeof(est), "%.17g", Estimate());
  return FormatMergeableState("randomized", num_sites(), est, time(),
                              cost());
}

VARSTREAM_REGISTER_TRACKER("randomized", RandomizedTracker)

}  // namespace varstream
