#include "history/history.h"

#include <cstdio>

#include "core/state_codec.h"

namespace varstream {

std::string EncodeHistoryRow(const HistoryRow& row) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "%llu %s %llu %llu %llu",
                static_cast<unsigned long long>(row.time),
                EncodeDoubleBits(row.estimate).c_str(),
                static_cast<unsigned long long>(row.messages),
                static_cast<unsigned long long>(row.bits),
                static_cast<unsigned long long>(row.wire_bytes));
  return buf;
}

bool ParseHistoryRow(const std::string& line, HistoryRow* row) {
  // Split into exactly five space-separated tokens; empty tokens (from
  // leading/trailing/double spaces) are malformed.
  std::string tokens[5];
  size_t count = 0;
  size_t start = 0;
  while (start <= line.size()) {
    size_t end = line.find(' ', start);
    if (end == std::string::npos) end = line.size();
    if (end == start || count == 5) return false;
    tokens[count++] = line.substr(start, end - start);
    start = end + 1;
  }
  if (count != 5) return false;
  return ParseU64Text(tokens[0], &row->time) &&
         ParseDoubleBits(tokens[1], &row->estimate) &&
         ParseU64Text(tokens[2], &row->messages) &&
         ParseU64Text(tokens[3], &row->bits) &&
         ParseU64Text(tokens[4], &row->wire_bytes);
}

}  // namespace varstream
