// Query evaluation over retained history rows: time-window selection,
// aggregation (min/max/last/mean/count), and downsampling into N time
// buckets. One evaluator shared by the server (QueryRange frames,
// src/service/server.cc) and the tools (tools/varstream_query.cpp), so
// "what the wire returns" and "what a local replay computes" are the
// same function — the history-parity oracle compares the two bit for
// bit.
//
// Output rows are also the wire/tool schema (`varstream-query-v1`):
// WriteQueryResultJson / WriteQueryResultCsv render the same structs the
// QueryRange result frame carries.

#ifndef VARSTREAM_HISTORY_QUERY_H_
#define VARSTREAM_HISTORY_QUERY_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "history/history.h"

namespace varstream {

enum class Aggregation : uint8_t {
  kNone = 0,  // raw samples, one output row per retained row
  kMin,       // minimum estimate in the group
  kMax,       // maximum estimate in the group
  kLast,      // last (newest) estimate in the group
  kMean,      // arithmetic mean of estimates in the group
  kCount,     // number of samples in the group (as a double)
  kMaxAggregation = kCount,
};

const char* AggregationName(Aggregation agg);
/// Inverse of AggregationName ("none", "min", ...); false on unknown.
bool ParseAggregation(const std::string& text, Aggregation* agg);

/// A query over one session's rows. Times are inclusive on both ends;
/// the defaults select everything.
struct QuerySpec {
  uint64_t time_min = 0;
  uint64_t time_max = UINT64_MAX;
  Aggregation agg = Aggregation::kNone;
  /// 0 = no downsampling. N > 0 partitions the selected rows' time span
  /// into N equal integer buckets; each non-empty bucket yields one
  /// output row (empty buckets are omitted). kNone with buckets is
  /// evaluated as kLast — a bucket must reduce to one value somehow.
  uint32_t buckets = 0;
};

/// One output row: a group of 1+ samples reduced by the aggregation.
/// For Aggregation::kNone each retained row passes through unchanged
/// (time_first == time_last, samples == 1, value == estimate). The
/// cumulative counters (messages/bits/wire_bytes) always report the
/// group's newest sample — they are running totals, so "last" is the
/// only reduction that keeps their meaning.
struct QueryRow {
  uint64_t time_first = 0;
  uint64_t time_last = 0;
  double value = 0.0;
  uint64_t messages = 0;
  uint64_t bits = 0;
  uint64_t wire_bytes = 0;
  uint64_t samples = 0;

  friend bool operator==(const QueryRow& a, const QueryRow& b) = default;
};

/// Evaluates `spec` over `rows` (which must be in non-decreasing time
/// order, as the sampler produces them). Pure function of its inputs.
std::vector<QueryRow> EvaluateQuery(std::span<const HistoryRow> rows,
                                    const QuerySpec& spec);

/// One session's evaluated result plus retention metadata — the unit the
/// QueryRange wire op returns and the tools render.
struct SessionQueryResult {
  std::string session;
  std::string tracker;
  uint64_t capacity = 0;   ///< session's configured retention capacity
  uint64_t cadence = 0;    ///< session's sampling cadence (updates)
  uint64_t dropped = 0;    ///< rows evicted before this query ran
  std::vector<QueryRow> rows;
};

// --- varstream-query-v1 renderers (shared tool/CI output format). ---

/// JSON: {"schema":"varstream-query-v1","query":{...},"sessions":[...]}.
/// Doubles print as %.17g so values round-trip bit-exactly.
std::string WriteQueryResultJson(const QuerySpec& spec,
                                 const std::vector<SessionQueryResult>& sessions);

/// CSV: header `session,tracker,time_first,time_last,value,messages,
/// bits,wire_bytes,samples`, one line per row, sessions concatenated.
std::string WriteQueryResultCsv(const std::vector<SessionQueryResult>& sessions);

}  // namespace varstream

#endif  // VARSTREAM_HISTORY_QUERY_H_
