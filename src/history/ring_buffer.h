// Bounded FIFO ring buffer behind the history subsystem's time-series
// retention (src/history/history.h): a fixed block of `capacity` slots
// allocated once at construction, appended to forever, evicting the
// oldest entry when full. Memory is fixed for the life of the buffer —
// the retention analogue of the paper's bounded-communication ethos: a
// session's history costs capacity * sizeof(T) bytes no matter how long
// the stream runs.
//
// The structure is lock-free-friendly — single writer, monotone
// `appended` counter, no internal allocation after construction — but is
// not itself synchronized: the service appends under the existing
// per-session mutex at batch boundaries (off the per-update hot path)
// and copies rows out under the same lock.

#ifndef VARSTREAM_HISTORY_RING_BUFFER_H_
#define VARSTREAM_HISTORY_RING_BUFFER_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace varstream {

template <typename T>
class RingBuffer {
 public:
  /// Allocates all `capacity` slots up front. Capacity 0 is legal and
  /// retains nothing: every Append is immediately an eviction.
  explicit RingBuffer(size_t capacity) : slots_(capacity) {}

  size_t capacity() const { return slots_.size(); }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Entries ever appended (monotone; survives eviction).
  uint64_t appended() const { return appended_; }

  /// Entries evicted by FIFO overwrite: appended() - size().
  uint64_t dropped() const { return appended_ - size_; }

  /// Appends `value`, evicting the oldest entry when full.
  void Append(const T& value) {
    ++appended_;
    if (slots_.empty()) return;  // capacity 0: drop everything, count it
    slots_[(head_ + size_) % slots_.size()] = value;
    if (size_ < slots_.size()) {
      ++size_;
    } else {
      head_ = (head_ + 1) % slots_.size();  // overwrote the oldest
    }
  }

  /// The i-th retained entry, 0 = oldest, size()-1 = newest.
  const T& At(size_t i) const {
    assert(i < size_);
    return slots_[(head_ + i) % slots_.size()];
  }

  /// Retained entries, oldest first.
  std::vector<T> Rows() const {
    std::vector<T> out;
    out.reserve(size_);
    for (size_t i = 0; i < size_; ++i) out.push_back(At(i));
    return out;
  }

  /// Restores a checkpointed buffer: the retained rows (oldest first,
  /// must fit capacity) plus the count evicted before the checkpoint, so
  /// appended()/dropped() resume exactly. Returns false when rows exceed
  /// capacity (a corrupt checkpoint; caller reports loudly).
  bool Restore(const std::vector<T>& rows, uint64_t dropped) {
    if (rows.size() > slots_.size()) return false;
    head_ = 0;
    size_ = rows.size();
    for (size_t i = 0; i < rows.size(); ++i) slots_[i] = rows[i];
    appended_ = dropped + rows.size();
    return true;
  }

 private:
  std::vector<T> slots_;
  size_t head_ = 0;  ///< index of the oldest entry
  size_t size_ = 0;
  uint64_t appended_ = 0;
};

}  // namespace varstream

#endif  // VARSTREAM_HISTORY_RING_BUFFER_H_
