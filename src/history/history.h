// History store: bounded time-series retention for tracker sessions.
//
// Every varstream_serve session samples its tracker at batch boundaries
// and appends `(time, estimate, messages, bits, wire_bytes)` rows into a
// RingBuffer (src/history/ring_buffer.h). Retention follows the paper's
// cost-model ethos: where the trackers bound *communication* per site
// regardless of stream length, the history bounds *memory* per session
// regardless of stream length — `capacity` rows, FIFO eviction, and a
// `dropped` counter so a reader always knows how much prefix was evicted.
// Cadence (one sample per `cadence` ingested updates, checked only at
// batch boundaries under the existing session lock) keeps the sampler off
// the per-update hot path: Snapshot() drains the sharded pipeline, so it
// must run rarely relative to batch size.
//
// Rows are checkpointed inside varstream-ckpt-v1 (optional per-session
// history section) using the same strict text codec discipline as tracker
// state: hex bit patterns for the estimate, whole-string integer parses,
// loud rejection of anything malformed.

#ifndef VARSTREAM_HISTORY_HISTORY_H_
#define VARSTREAM_HISTORY_HISTORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "history/ring_buffer.h"

namespace varstream {

/// One retained sample of a session's tracker. `wire_bytes` is the
/// session's cumulative wire traffic (MessageKind::kWire, bytes) at
/// sample time; like SnapshotFrame it is reporting-only and excluded
/// from parity comparisons (an in-process shadow has no wire traffic).
struct HistoryRow {
  uint64_t time = 0;       ///< session clock (sum of |delta| ingested)
  double estimate = 0.0;   ///< tracker estimate at `time`
  uint64_t messages = 0;   ///< cumulative site->coordinator messages
  uint64_t bits = 0;       ///< cumulative communication bits
  uint64_t wire_bytes = 0; ///< cumulative service wire bytes

  friend bool operator==(const HistoryRow& a, const HistoryRow& b) = default;
};

struct HistoryOptions {
  /// Retained rows per session; 0 disables retention entirely.
  uint64_t capacity = 1024;
  /// Ingested updates between samples (checked at batch boundaries, so
  /// one batch never yields more than one sample); 0 disables sampling.
  uint64_t cadence = 8192;
};

/// Per-session sampler: cadence accounting plus the ring. Single-writer;
/// the service guards it with the session mutex.
class HistorySampler {
 public:
  explicit HistorySampler(const HistoryOptions& options)
      : options_(options), ring_(static_cast<size_t>(options.capacity)) {}

  bool enabled() const {
    return options_.capacity > 0 && options_.cadence > 0;
  }
  const HistoryOptions& options() const { return options_; }
  const RingBuffer<HistoryRow>& ring() const { return ring_; }

  /// Advances the cadence counter by `updates` just-ingested updates and
  /// reports whether a sample is due. At most one sample per call: the
  /// counter resets to zero when due, so a batch larger than the cadence
  /// still yields a single row (the batch boundary is the only place a
  /// consistent snapshot exists anyway).
  bool Due(uint64_t updates) {
    if (!enabled()) return false;
    pending_ += updates;
    if (pending_ < options_.cadence) return false;
    pending_ = 0;
    return true;
  }

  void Record(const HistoryRow& row) { ring_.Append(row); }

  /// Checkpoint plumbing: the cadence counter and eviction count must
  /// round-trip so a restored session samples at exactly the positions
  /// the uninterrupted run would have.
  uint64_t pending() const { return pending_; }
  bool Restore(const std::vector<HistoryRow>& rows, uint64_t dropped,
               uint64_t pending) {
    if (!ring_.Restore(rows, dropped)) return false;
    pending_ = pending;
    return true;
  }

 private:
  HistoryOptions options_;
  RingBuffer<HistoryRow> ring_;
  uint64_t pending_ = 0;  ///< updates ingested since the last sample
};

/// Text codec for checkpoint row lines: space-separated
/// `<time> <estimate-hexbits> <messages> <bits> <wire_bytes>`, strict
/// whole-token parses (state_codec.h discipline). The estimate travels
/// as its IEEE-754 bit pattern so restored history is bit-identical.
std::string EncodeHistoryRow(const HistoryRow& row);
bool ParseHistoryRow(const std::string& line, HistoryRow* row);

}  // namespace varstream

#endif  // VARSTREAM_HISTORY_HISTORY_H_
