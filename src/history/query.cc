#include "history/query.h"

#include <algorithm>
#include <cstdio>

namespace varstream {

namespace {

/// Reduces rows[first, last) — non-empty, time-ordered — to one row.
QueryRow Reduce(std::span<const HistoryRow> rows, size_t first, size_t last,
                Aggregation agg) {
  QueryRow out;
  out.time_first = rows[first].time;
  out.time_last = rows[last - 1].time;
  out.samples = last - first;
  out.messages = rows[last - 1].messages;
  out.bits = rows[last - 1].bits;
  out.wire_bytes = rows[last - 1].wire_bytes;
  switch (agg) {
    case Aggregation::kNone:  // caller maps kNone+buckets to kLast
    case Aggregation::kLast:
      out.value = rows[last - 1].estimate;
      break;
    case Aggregation::kMin: {
      double v = rows[first].estimate;
      for (size_t i = first + 1; i < last; ++i)
        v = std::min(v, rows[i].estimate);
      out.value = v;
      break;
    }
    case Aggregation::kMax: {
      double v = rows[first].estimate;
      for (size_t i = first + 1; i < last; ++i)
        v = std::max(v, rows[i].estimate);
      out.value = v;
      break;
    }
    case Aggregation::kMean: {
      double sum = 0.0;
      for (size_t i = first; i < last; ++i) sum += rows[i].estimate;
      out.value = sum / static_cast<double>(last - first);
      break;
    }
    case Aggregation::kCount:
      out.value = static_cast<double>(last - first);
      break;
  }
  return out;
}

void AppendF64(std::string* out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out->append(buf);
}

void AppendU64(std::string* out, uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(value));
  out->append(buf);
}

/// Strings on the wire are session/tracker names (registry identifiers,
/// no quotes or control characters in practice), but escape defensively
/// so hostile names cannot break the JSON.
void AppendJsonString(std::string* out, const std::string& value) {
  out->push_back('"');
  for (char c : value) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

const char* AggregationName(Aggregation agg) {
  switch (agg) {
    case Aggregation::kNone:  return "none";
    case Aggregation::kMin:   return "min";
    case Aggregation::kMax:   return "max";
    case Aggregation::kLast:  return "last";
    case Aggregation::kMean:  return "mean";
    case Aggregation::kCount: return "count";
  }
  return "unknown";
}

bool ParseAggregation(const std::string& text, Aggregation* agg) {
  for (uint8_t i = 0;
       i <= static_cast<uint8_t>(Aggregation::kMaxAggregation); ++i) {
    auto candidate = static_cast<Aggregation>(i);
    if (text == AggregationName(candidate)) {
      *agg = candidate;
      return true;
    }
  }
  return false;
}

std::vector<QueryRow> EvaluateQuery(std::span<const HistoryRow> rows,
                                    const QuerySpec& spec) {
  // Selection: rows are time-ordered, so the window is a contiguous run.
  size_t first = 0;
  while (first < rows.size() && rows[first].time < spec.time_min) ++first;
  size_t last = first;
  while (last < rows.size() && rows[last].time <= spec.time_max) ++last;

  std::vector<QueryRow> out;
  if (first == last) return out;

  if (spec.buckets == 0) {
    if (spec.agg == Aggregation::kNone) {
      out.reserve(last - first);
      for (size_t i = first; i < last; ++i)
        out.push_back(Reduce(rows, i, i + 1, Aggregation::kNone));
    } else {
      out.push_back(Reduce(rows, first, last, spec.agg));
    }
    return out;
  }

  // Downsampling: partition the selected span [t0, t1] into `buckets`
  // equal integer ranges. The span can approach 2^64, so the bucket
  // index (t - t0) * buckets / span is computed in 128 bits.
  Aggregation agg =
      spec.agg == Aggregation::kNone ? Aggregation::kLast : spec.agg;
  const uint64_t t0 = rows[first].time;
  const uint64_t span = rows[last - 1].time - t0 + 1;
  auto bucket_of = [&](uint64_t t) -> uint64_t {
    return static_cast<uint64_t>(
        static_cast<unsigned __int128>(t - t0) * spec.buckets / span);
  };
  size_t group_start = first;
  for (size_t i = first + 1; i <= last; ++i) {
    if (i == last ||
        bucket_of(rows[i].time) != bucket_of(rows[group_start].time)) {
      out.push_back(Reduce(rows, group_start, i, agg));
      group_start = i;
    }
  }
  return out;
}

namespace {

void AppendQueryRowJson(std::string* out, const QueryRow& row) {
  out->append("{\"time_first\":");
  AppendU64(out, row.time_first);
  out->append(",\"time_last\":");
  AppendU64(out, row.time_last);
  out->append(",\"value\":");
  AppendF64(out, row.value);
  out->append(",\"messages\":");
  AppendU64(out, row.messages);
  out->append(",\"bits\":");
  AppendU64(out, row.bits);
  out->append(",\"wire_bytes\":");
  AppendU64(out, row.wire_bytes);
  out->append(",\"samples\":");
  AppendU64(out, row.samples);
  out->push_back('}');
}

}  // namespace

std::string WriteQueryResultJson(
    const QuerySpec& spec, const std::vector<SessionQueryResult>& sessions) {
  std::string out;
  out.append("{\"schema\":\"varstream-query-v1\",\"query\":{\"time_min\":");
  AppendU64(&out, spec.time_min);
  out.append(",\"time_max\":");
  AppendU64(&out, spec.time_max);
  out.append(",\"agg\":\"");
  out.append(AggregationName(spec.agg));
  out.append("\",\"buckets\":");
  AppendU64(&out, spec.buckets);
  out.append("},\"sessions\":[");
  for (size_t s = 0; s < sessions.size(); ++s) {
    const SessionQueryResult& session = sessions[s];
    if (s > 0) out.push_back(',');
    out.append("{\"session\":");
    AppendJsonString(&out, session.session);
    out.append(",\"tracker\":");
    AppendJsonString(&out, session.tracker);
    out.append(",\"capacity\":");
    AppendU64(&out, session.capacity);
    out.append(",\"cadence\":");
    AppendU64(&out, session.cadence);
    out.append(",\"dropped\":");
    AppendU64(&out, session.dropped);
    out.append(",\"rows\":[");
    for (size_t i = 0; i < session.rows.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendQueryRowJson(&out, session.rows[i]);
    }
    out.append("]}");
  }
  out.append("]}\n");
  return out;
}

std::string WriteQueryResultCsv(
    const std::vector<SessionQueryResult>& sessions) {
  std::string out =
      "session,tracker,time_first,time_last,value,messages,bits,"
      "wire_bytes,samples\n";
  for (const SessionQueryResult& session : sessions) {
    for (const QueryRow& row : session.rows) {
      out.append(session.session);
      out.push_back(',');
      out.append(session.tracker);
      out.push_back(',');
      AppendU64(&out, row.time_first);
      out.push_back(',');
      AppendU64(&out, row.time_last);
      out.push_back(',');
      AppendF64(&out, row.value);
      out.push_back(',');
      AppendU64(&out, row.messages);
      out.push_back(',');
      AppendU64(&out, row.bits);
      out.push_back(',');
      AppendU64(&out, row.wire_bytes);
      out.push_back(',');
      AppendU64(&out, row.samples);
      out.push_back('\n');
    }
  }
  return out;
}

}  // namespace varstream
