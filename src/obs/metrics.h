// Metrics subsystem: named counters, gauges, and log-bucketed latency
// histograms, built so the ingest hot path never takes a lock or issues
// an atomic read-modify-write.
//
// Design: every metric handle is a *slot* with exactly one writer (a
// worker thread, the acceptor, a shard producer, ...). Writers update
// slots with relaxed load-then-store — a plain increment on every ISA,
// no `lock xadd`, no cache-line ping-pong with readers beyond the line
// transfer any read implies. Scrapes (MetricsDump, Prometheus, --stats)
// read the slots with relaxed loads from whatever thread asks and merge
// them into a coherent snapshot *at scrape time*; the registry mutex is
// touched only when a slot is created and when the slot list is walked,
// never on Record/Add. The numbers a scrape sees are each individually
// exact (a slot's writer publishes totals, not deltas) but mutually
// slightly skewed — the standard contract for monitoring counters.
//
// Histogram slots reuse LogHistogram's bucket geometry (gamma = 1.1)
// over a fixed array of atomic buckets; a scrape rebuilds a real
// LogHistogram by re-recording each bucket's geometric midpoint, which
// lands back in the same bucket, so merged percentiles are exact at
// bucket resolution. Snapshots serialize gamma + raw bucket counts (not
// percentiles), which is what makes cross-node merging at the root
// well-defined — and why LogHistogram::Merge's loud gamma check matters.

#ifndef VARSTREAM_OBS_METRICS_H_
#define VARSTREAM_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/histogram.h"

namespace varstream {

/// Bucket geometry shared by every histogram slot. 256 buckets at
/// gamma = 1.1 cover [0, 1.1^255) — over 3e10 in the recorded unit
/// (microseconds: ~9 hours), with overflow clamped into the last bucket.
inline constexpr size_t kMetricsHistogramBuckets = 256;
inline constexpr double kMetricsGamma = 1.1;

enum class MetricKind : uint8_t { kCounter, kGauge, kHistogram };

/// How same-named gauges combine when slots (or nodes) are merged:
/// instantaneous depths add; high-water marks take the max.
enum class GaugeAgg : uint8_t { kSum, kMax };

using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter. Single writer; any thread may read.
class MetricsCounter {
 public:
  void Add(uint64_t n = 1) {
    v_.store(v_.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
  }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Point-in-time value. Single writer; any thread may read.
class MetricsGauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void RaiseTo(int64_t v) {
    if (v > v_.load(std::memory_order_relaxed)) {
      v_.store(v, std::memory_order_relaxed);
    }
  }
  void Add(int64_t n) {
    v_.store(v_.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
  }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Log-bucketed histogram slot. Single writer; scrapes read the bucket
/// array with relaxed loads and rebuild a LogHistogram.
class MetricsHistogram {
 public:
  void Record(double value) {
    size_t b = BucketIndex(value);
    buckets_[b].store(buckets_[b].load(std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
  }

  /// Same bucket math as LogHistogram::BucketFor, clamped to the fixed
  /// array (verified against LogHistogram by obs_metrics_test).
  static size_t BucketIndex(double value) {
    if (!(value >= 1.0)) return 0;  // also catches NaN
    size_t b = 1 + static_cast<size_t>(std::log(value) / kLogGamma());
    return b < kMetricsHistogramBuckets ? b : kMetricsHistogramBuckets - 1;
  }

  /// Rebuilds a mergeable LogHistogram from the current bucket counts.
  LogHistogram Snapshot() const;

 private:
  static double kLogGamma() {
    static const double v = std::log(kMetricsGamma);
    return v;
  }
  std::array<std::atomic<uint64_t>, kMetricsHistogramBuckets> buckets_{};
};

/// One metric's value at scrape time.
struct MetricPoint {
  std::string name;
  MetricLabels labels;
  MetricKind kind = MetricKind::kCounter;
  GaugeAgg agg = GaugeAgg::kSum;
  uint64_t counter = 0;
  int64_t gauge = 0;
  LogHistogram hist{kMetricsGamma};
};

/// A coherent-at-scrape-time view of a registry (or of a whole tree,
/// after merging). Serializes to stable JSON and Prometheus text.
struct MetricsSnapshot {
  std::vector<MetricPoint> points;

  /// Stable JSON: `{"metrics":[...]}` with points sorted by (name,
  /// labels). Histograms carry gamma + sparse bucket counts so a reader
  /// can merge them exactly.
  std::string ToJson() const;

  /// Prometheus text exposition (version 0.0.4). Every metric name gets
  /// `prefix` prepended; counters gain the `_total` suffix; histograms
  /// emit cumulative `_bucket{le=...}` series over non-empty buckets
  /// plus `_count` and a bucket-midpoint-approximated `_sum`.
  std::string ToPrometheus(const std::string& prefix) const;

  /// Adds `extra` label to every point (e.g. leaf="0") — how the root
  /// keeps per-leaf series distinguishable after merging.
  void AddLabel(const std::string& key, const std::string& value);

  /// Point-wise merge by (name, labels): counters and sum-gauges add,
  /// max-gauges take the max, histograms LogHistogram::Merge. Points
  /// with mismatched kinds or histogram gammas fail the merge (returns
  /// false with `error` set) instead of aborting — leaf JSON is
  /// untrusted input by the time the root merges it.
  bool Merge(const MetricsSnapshot& other, std::string* error);

  /// Collapses labels away: one point per (name, kind), combined under
  /// the same rules as Merge(). The "whole tree in one number" view.
  MetricsSnapshot AggregateByName() const;

  /// Convenience: first point with this name (any labels), or nullptr.
  const MetricPoint* Find(const std::string& name) const;

  /// Sum of `counter` across every point with this name.
  uint64_t CounterTotal(const std::string& name) const;
};

/// Parses a snapshot previously produced by ToJson(). Unknown keys are
/// ignored (forward compatibility); structural violations fail loudly.
bool MetricsSnapshotFromJson(std::string_view json, MetricsSnapshot* out,
                             std::string* error);

struct JsonValue;  // obs/json.h

/// Same, from an already-parsed value — the root uses this to read the
/// "node" object out of a leaf's wrapper document without re-parsing.
bool MetricsSnapshotFromJsonValue(const JsonValue& root, MetricsSnapshot* out,
                                  std::string* error);

/// Owns the slots. Instantiable (each VarstreamServer / RootAggregator
/// carries its own, so tests stay hermetic); slot pointers are stable
/// for the registry's lifetime. Slot lookup is idempotent on
/// (name, labels) so re-resolving a session reuses its gauge.
class MetricsRegistry {
 public:
  MetricsCounter* Counter(const std::string& name, MetricLabels labels = {});
  MetricsGauge* Gauge(const std::string& name, MetricLabels labels = {},
                      GaugeAgg agg = GaugeAgg::kSum);
  MetricsHistogram* Histogram(const std::string& name,
                              MetricLabels labels = {});

  MetricsSnapshot Collect() const;

 private:
  struct Slot {
    std::string name;
    MetricLabels labels;
    MetricKind kind;
    GaugeAgg agg = GaugeAgg::kSum;
    std::unique_ptr<MetricsCounter> counter;
    std::unique_ptr<MetricsGauge> gauge;
    std::unique_ptr<MetricsHistogram> hist;
  };

  Slot* FindOrCreate(const std::string& name, MetricLabels labels,
                     MetricKind kind, GaugeAgg agg);

  mutable std::mutex mu_;  // guards slots_ layout only, never slot values
  std::vector<std::unique_ptr<Slot>> slots_;
};

}  // namespace varstream

#endif  // VARSTREAM_OBS_METRICS_H_
