// Minimal JSON reader/writer for the metrics snapshot wire format.
//
// The repo's other JSON producers (varstream_query --format=json, suite
// summaries) only ever *write* JSON; metrics is the first subsystem that
// must read it back (the root aggregator merges leaf MetricsDump replies,
// varstream_top renders them). This is a small recursive-descent parser
// for exactly the JSON we emit — objects, arrays, strings with the
// standard escapes, doubles, bools, null — with a depth cap so hostile
// input fails loudly instead of blowing the stack. No external deps.

#ifndef VARSTREAM_OBS_JSON_H_
#define VARSTREAM_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace varstream {

struct JsonValue {
  enum class Type : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;                              // kArray
  std::vector<std::pair<std::string, JsonValue>> members;    // kObject

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  /// First member with this key, or nullptr. Linear scan: metrics
  /// objects have a handful of keys.
  const JsonValue* Find(std::string_view key) const;
};

/// Parses `text` (the whole string must be one JSON value plus optional
/// trailing whitespace). On failure returns false and sets `error` to a
/// message with the byte offset.
bool ParseJson(std::string_view text, JsonValue* out, std::string* error);

/// Appends `s` as a JSON string literal (quotes included) to `out`.
void AppendJsonString(std::string* out, std::string_view s);

/// Appends a double in a round-trippable format ("%.17g"; integers print
/// without an exponent).
void AppendJsonNumber(std::string* out, double value);

}  // namespace varstream

#endif  // VARSTREAM_OBS_JSON_H_
