#include "obs/prom_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace varstream {

namespace {

void SendResponse(int fd, const char* status, const char* content_type,
                  const std::string& body) {
  std::string response = "HTTP/1.0 ";
  response += status;
  response += "\r\nContent-Type: ";
  response += content_type;
  response += "\r\nContent-Length: " + std::to_string(body.size());
  response += "\r\nConnection: close\r\n\r\n";
  response += body;
  size_t sent = 0;
  while (sent < response.size()) {
    ssize_t n = ::send(fd, response.data() + sent, response.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // scraper went away mid-reply; nothing to salvage
    }
    sent += static_cast<size_t>(n);
  }
}

}  // namespace

PromHttpServer::~PromHttpServer() { Stop(); }

bool PromHttpServer::Start(uint16_t port, Handlers handlers,
                           std::string* error) {
  Stop();
  handlers_ = std::move(handlers);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = "socket(): " + std::string(strerror(errno));
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (error != nullptr) {
      *error = "bind(127.0.0.1:" + std::to_string(port) +
               "): " + strerror(errno);
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 16) != 0) {
    if (error != nullptr) *error = "listen(): " + std::string(strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  return true;
}

void PromHttpServer::Stop() {
  if (listen_fd_ < 0 && !thread_.joinable()) return;
  running_.store(false, std::memory_order_release);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (thread_.joinable()) thread_.join();
}

void PromHttpServer::Serve() {
  while (running_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load(std::memory_order_acquire)) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listener fd torn down
    }
    // Bound the read so one hung scraper cannot pin the endpoint.
    timeval tv{};
    tv.tv_sec = 2;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    std::string request;
    char chunk[2048];
    while (request.size() < 16 * 1024 &&
           request.find("\r\n\r\n") == std::string::npos) {
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        break;
      }
      request.append(chunk, static_cast<size_t>(n));
    }
    const size_t line_end = request.find("\r\n");
    const std::string line =
        line_end == std::string::npos ? request : request.substr(0, line_end);
    if (line.rfind("GET /metrics.json", 0) == 0) {
      SendResponse(fd, "200 OK", "application/json",
                   handlers_.metrics_json ? handlers_.metrics_json() : "{}");
    } else if (line.rfind("GET /metrics", 0) == 0) {
      SendResponse(fd, "200 OK", "text/plain; version=0.0.4",
                   handlers_.metrics_text ? handlers_.metrics_text() : "");
    } else {
      SendResponse(fd, "404 Not Found", "text/plain",
                   "varstream metrics endpoint: GET /metrics or "
                   "/metrics.json\n");
    }
    ::close(fd);
  }
}

}  // namespace varstream
