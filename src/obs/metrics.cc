#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "obs/json.h"

namespace varstream {

namespace {

/// Geometric midpoint of bucket b in the shared geometry — the value a
/// scrape re-records so the count lands back in bucket b exactly
/// (midpoint b - 0.5 can never round across an integer boundary).
double BucketMidpoint(size_t bucket) {
  if (bucket == 0) return 0.5;
  return std::exp((static_cast<double>(bucket) - 0.5) *
                  std::log(kMetricsGamma));
}

/// Upper edge of bucket b, for Prometheus `le` labels.
double BucketUpperEdge(size_t bucket) {
  return std::pow(kMetricsGamma, static_cast<double>(bucket));
}

std::string LabelsKey(const MetricLabels& labels) {
  std::string key;
  for (const auto& [k, v] : labels) {
    key += k;
    key.push_back('\x01');
    key += v;
    key.push_back('\x01');
  }
  return key;
}

std::string PointKey(const MetricPoint& p) {
  return p.name + '\x02' + LabelsKey(p.labels);
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "counter";
}

void AppendPromLabels(std::string* out, const MetricLabels& labels,
                      const char* extra_key = nullptr,
                      const std::string& extra_value = {}) {
  if (labels.empty() && extra_key == nullptr) return;
  out->push_back('{');
  bool first = true;
  auto emit = [&](const std::string& k, const std::string& v) {
    if (!first) out->push_back(',');
    first = false;
    out->append(k);
    out->append("=\"");
    for (char c : v) {
      if (c == '\\' || c == '"') out->push_back('\\');
      if (c == '\n') {
        out->append("\\n");
        continue;
      }
      out->push_back(c);
    }
    out->push_back('"');
  };
  for (const auto& [k, v] : labels) emit(k, v);
  if (extra_key != nullptr) emit(extra_key, extra_value);
  out->push_back('}');
}

/// Combines `from` into `into` under the merge rules. Returns false on a
/// kind or gamma conflict (reported, not aborted: by the time the root
/// merges leaf snapshots the input came off the wire).
bool CombinePoint(MetricPoint* into, const MetricPoint& from,
                  std::string* error) {
  if (into->kind != from.kind) {
    if (error != nullptr) {
      *error = "metric '" + from.name + "' changes kind across nodes (" +
               KindName(into->kind) + " vs " + KindName(from.kind) + ")";
    }
    return false;
  }
  switch (into->kind) {
    case MetricKind::kCounter:
      into->counter += from.counter;
      break;
    case MetricKind::kGauge:
      if (into->agg == GaugeAgg::kMax || from.agg == GaugeAgg::kMax) {
        into->agg = GaugeAgg::kMax;
        into->gauge = std::max(into->gauge, from.gauge);
      } else {
        into->gauge += from.gauge;
      }
      break;
    case MetricKind::kHistogram:
      if (std::abs(into->hist.gamma() - from.hist.gamma()) >= 1e-12) {
        if (error != nullptr) {
          *error = "metric '" + from.name +
                   "' has mismatched histogram gamma across nodes";
        }
        return false;
      }
      into->hist.Merge(from.hist);
      break;
  }
  return true;
}

std::vector<const MetricPoint*> SortedPoints(
    const std::vector<MetricPoint>& points) {
  std::vector<const MetricPoint*> sorted;
  sorted.reserve(points.size());
  for (const MetricPoint& p : points) sorted.push_back(&p);
  std::sort(sorted.begin(), sorted.end(),
            [](const MetricPoint* a, const MetricPoint* b) {
              if (a->name != b->name) return a->name < b->name;
              return LabelsKey(a->labels) < LabelsKey(b->labels);
            });
  return sorted;
}

}  // namespace

LogHistogram MetricsHistogram::Snapshot() const {
  LogHistogram hist(kMetricsGamma);
  for (size_t b = 0; b < kMetricsHistogramBuckets; ++b) {
    uint64_t count = buckets_[b].load(std::memory_order_relaxed);
    if (count > 0) hist.Record(BucketMidpoint(b), count);
  }
  return hist;
}

MetricsRegistry::Slot* MetricsRegistry::FindOrCreate(const std::string& name,
                                                     MetricLabels labels,
                                                     MetricKind kind,
                                                     GaugeAgg agg) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& slot : slots_) {
    if (slot->kind == kind && slot->name == name && slot->labels == labels) {
      return slot.get();
    }
  }
  auto slot = std::make_unique<Slot>();
  slot->name = name;
  slot->labels = std::move(labels);
  slot->kind = kind;
  slot->agg = agg;
  switch (kind) {
    case MetricKind::kCounter:
      slot->counter = std::make_unique<MetricsCounter>();
      break;
    case MetricKind::kGauge:
      slot->gauge = std::make_unique<MetricsGauge>();
      break;
    case MetricKind::kHistogram:
      slot->hist = std::make_unique<MetricsHistogram>();
      break;
  }
  Slot* raw = slot.get();
  slots_.push_back(std::move(slot));
  return raw;
}

MetricsCounter* MetricsRegistry::Counter(const std::string& name,
                                         MetricLabels labels) {
  return FindOrCreate(name, std::move(labels), MetricKind::kCounter,
                      GaugeAgg::kSum)
      ->counter.get();
}

MetricsGauge* MetricsRegistry::Gauge(const std::string& name,
                                     MetricLabels labels, GaugeAgg agg) {
  return FindOrCreate(name, std::move(labels), MetricKind::kGauge, agg)
      ->gauge.get();
}

MetricsHistogram* MetricsRegistry::Histogram(const std::string& name,
                                             MetricLabels labels) {
  return FindOrCreate(name, std::move(labels), MetricKind::kHistogram,
                      GaugeAgg::kSum)
      ->hist.get();
}

MetricsSnapshot MetricsRegistry::Collect() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.points.reserve(slots_.size());
  for (const auto& slot : slots_) {
    MetricPoint p;
    p.name = slot->name;
    p.labels = slot->labels;
    p.kind = slot->kind;
    p.agg = slot->agg;
    switch (slot->kind) {
      case MetricKind::kCounter:
        p.counter = slot->counter->Value();
        break;
      case MetricKind::kGauge:
        p.gauge = slot->gauge->Value();
        break;
      case MetricKind::kHistogram:
        p.hist = slot->hist->Snapshot();
        break;
    }
    snapshot.points.push_back(std::move(p));
  }
  return snapshot;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const MetricPoint* p : SortedPoints(points)) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":");
    AppendJsonString(&out, p->name);
    out.append(",\"labels\":[");
    for (size_t i = 0; i < p->labels.size(); ++i) {
      if (i > 0) out.push_back(',');
      out.push_back('[');
      AppendJsonString(&out, p->labels[i].first);
      out.push_back(',');
      AppendJsonString(&out, p->labels[i].second);
      out.push_back(']');
    }
    out.append("],\"kind\":\"");
    out.append(KindName(p->kind));
    out.push_back('"');
    switch (p->kind) {
      case MetricKind::kCounter:
        out.append(",\"value\":");
        AppendJsonNumber(&out, static_cast<double>(p->counter));
        break;
      case MetricKind::kGauge:
        out.append(",\"agg\":\"");
        out.append(p->agg == GaugeAgg::kMax ? "max" : "sum");
        out.append("\",\"value\":");
        AppendJsonNumber(&out, static_cast<double>(p->gauge));
        break;
      case MetricKind::kHistogram: {
        out.append(",\"gamma\":");
        AppendJsonNumber(&out, p->hist.gamma());
        out.append(",\"count\":");
        AppendJsonNumber(&out, static_cast<double>(p->hist.count()));
        out.append(",\"p50\":");
        AppendJsonNumber(&out, p->hist.Percentile(0.50));
        out.append(",\"p99\":");
        AppendJsonNumber(&out, p->hist.Percentile(0.99));
        out.append(",\"buckets\":[");
        const std::vector<uint64_t>& buckets = p->hist.bucket_counts();
        bool first_bucket = true;
        for (size_t b = 0; b < buckets.size(); ++b) {
          if (buckets[b] == 0) continue;
          if (!first_bucket) out.push_back(',');
          first_bucket = false;
          out.push_back('[');
          AppendJsonNumber(&out, static_cast<double>(b));
          out.push_back(',');
          AppendJsonNumber(&out, static_cast<double>(buckets[b]));
          out.push_back(']');
        }
        out.push_back(']');
        break;
      }
    }
    out.push_back('}');
  }
  out.append("]}");
  return out;
}

std::string MetricsSnapshot::ToPrometheus(const std::string& prefix) const {
  std::string out;
  std::string last_typed;
  for (const MetricPoint* p : SortedPoints(points)) {
    const std::string base = prefix + p->name;
    const std::string series =
        p->kind == MetricKind::kCounter ? base + "_total" : base;
    if (p->name != last_typed) {
      last_typed = p->name;
      out.append("# TYPE ");
      out.append(series);
      out.push_back(' ');
      out.append(KindName(p->kind));
      out.push_back('\n');
    }
    switch (p->kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge: {
        out.append(series);
        AppendPromLabels(&out, p->labels);
        out.push_back(' ');
        AppendJsonNumber(&out, p->kind == MetricKind::kCounter
                                   ? static_cast<double>(p->counter)
                                   : static_cast<double>(p->gauge));
        out.push_back('\n');
        break;
      }
      case MetricKind::kHistogram: {
        const std::vector<uint64_t>& buckets = p->hist.bucket_counts();
        uint64_t cumulative = 0;
        double approx_sum = 0.0;
        for (size_t b = 0; b < buckets.size(); ++b) {
          if (buckets[b] == 0) continue;
          cumulative += buckets[b];
          approx_sum += static_cast<double>(buckets[b]) * BucketMidpoint(b);
          char le[40];
          std::snprintf(le, sizeof(le), "%.6g", BucketUpperEdge(b));
          out.append(series);
          out.append("_bucket");
          AppendPromLabels(&out, p->labels, "le", le);
          out.push_back(' ');
          AppendJsonNumber(&out, static_cast<double>(cumulative));
          out.push_back('\n');
        }
        out.append(series);
        out.append("_bucket");
        AppendPromLabels(&out, p->labels, "le", "+Inf");
        out.push_back(' ');
        AppendJsonNumber(&out, static_cast<double>(p->hist.count()));
        out.push_back('\n');
        out.append(series);
        out.append("_sum");
        AppendPromLabels(&out, p->labels);
        out.push_back(' ');
        AppendJsonNumber(&out, approx_sum);
        out.push_back('\n');
        out.append(series);
        out.append("_count");
        AppendPromLabels(&out, p->labels);
        out.push_back(' ');
        AppendJsonNumber(&out, static_cast<double>(p->hist.count()));
        out.push_back('\n');
        break;
      }
    }
  }
  return out;
}

void MetricsSnapshot::AddLabel(const std::string& key,
                               const std::string& value) {
  for (MetricPoint& p : points) {
    p.labels.emplace_back(key, value);
  }
}

bool MetricsSnapshot::Merge(const MetricsSnapshot& other, std::string* error) {
  std::map<std::string, size_t> index;
  for (size_t i = 0; i < points.size(); ++i) {
    index.emplace(PointKey(points[i]), i);
  }
  for (const MetricPoint& p : other.points) {
    auto it = index.find(PointKey(p));
    if (it == index.end()) {
      index.emplace(PointKey(p), points.size());
      points.push_back(p);
      continue;
    }
    if (!CombinePoint(&points[it->second], p, error)) return false;
  }
  return true;
}

MetricsSnapshot MetricsSnapshot::AggregateByName() const {
  MetricsSnapshot out;
  std::map<std::string, size_t> index;
  for (const MetricPoint& p : points) {
    auto it = index.find(p.name);
    if (it == index.end()) {
      index.emplace(p.name, out.points.size());
      MetricPoint collapsed = p;
      collapsed.labels.clear();
      out.points.push_back(std::move(collapsed));
      continue;
    }
    // Conflicting kinds under one name cannot happen within a registry;
    // across hostile nodes the first kind wins rather than aborting.
    std::string ignored;
    CombinePoint(&out.points[it->second], p, &ignored);
  }
  return out;
}

const MetricPoint* MetricsSnapshot::Find(const std::string& name) const {
  for (const MetricPoint& p : points) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

uint64_t MetricsSnapshot::CounterTotal(const std::string& name) const {
  uint64_t total = 0;
  for (const MetricPoint& p : points) {
    if (p.name == name && p.kind == MetricKind::kCounter) total += p.counter;
  }
  return total;
}

bool MetricsSnapshotFromJson(std::string_view json, MetricsSnapshot* out,
                             std::string* error) {
  JsonValue root;
  if (!ParseJson(json, &root, error)) return false;
  return MetricsSnapshotFromJsonValue(root, out, error);
}

bool MetricsSnapshotFromJsonValue(const JsonValue& root, MetricsSnapshot* out,
                                  std::string* error) {
  if (!root.is_object()) {
    if (error != nullptr) *error = "metrics snapshot is not a JSON object";
    return false;
  }
  const JsonValue* metrics = root.Find("metrics");
  if (metrics == nullptr || !metrics->is_array()) {
    if (error != nullptr) *error = "snapshot is missing the 'metrics' array";
    return false;
  }
  out->points.clear();
  out->points.reserve(metrics->items.size());
  for (const JsonValue& item : metrics->items) {
    if (!item.is_object()) {
      if (error != nullptr) *error = "metric entry is not an object";
      return false;
    }
    MetricPoint p;
    const JsonValue* name = item.Find("name");
    const JsonValue* kind = item.Find("kind");
    if (name == nullptr || !name->is_string() || kind == nullptr ||
        !kind->is_string()) {
      if (error != nullptr) *error = "metric entry lacks name/kind strings";
      return false;
    }
    p.name = name->str;
    const JsonValue* labels = item.Find("labels");
    if (labels != nullptr && labels->is_array()) {
      for (const JsonValue& pair : labels->items) {
        if (!pair.is_array() || pair.items.size() != 2 ||
            !pair.items[0].is_string() || !pair.items[1].is_string()) {
          if (error != nullptr) *error = "metric label is not a [k,v] pair";
          return false;
        }
        p.labels.emplace_back(pair.items[0].str, pair.items[1].str);
      }
    }
    if (kind->str == "counter") {
      p.kind = MetricKind::kCounter;
      const JsonValue* value = item.Find("value");
      if (value == nullptr || !value->is_number() || value->number < 0) {
        if (error != nullptr) {
          *error = "counter '" + p.name + "' lacks a nonnegative value";
        }
        return false;
      }
      p.counter = static_cast<uint64_t>(value->number);
    } else if (kind->str == "gauge") {
      p.kind = MetricKind::kGauge;
      const JsonValue* value = item.Find("value");
      if (value == nullptr || !value->is_number()) {
        if (error != nullptr) {
          *error = "gauge '" + p.name + "' lacks a numeric value";
        }
        return false;
      }
      p.gauge = static_cast<int64_t>(value->number);
      const JsonValue* agg = item.Find("agg");
      p.agg = (agg != nullptr && agg->is_string() && agg->str == "max")
                  ? GaugeAgg::kMax
                  : GaugeAgg::kSum;
    } else if (kind->str == "histogram") {
      p.kind = MetricKind::kHistogram;
      const JsonValue* gamma = item.Find("gamma");
      const JsonValue* buckets = item.Find("buckets");
      if (gamma == nullptr || !gamma->is_number() || gamma->number <= 1.0 ||
          buckets == nullptr || !buckets->is_array()) {
        if (error != nullptr) {
          *error = "histogram '" + p.name + "' lacks gamma/buckets";
        }
        return false;
      }
      LogHistogram hist(gamma->number);
      const double log_gamma = std::log(gamma->number);
      for (const JsonValue& pair : buckets->items) {
        if (!pair.is_array() || pair.items.size() != 2 ||
            !pair.items[0].is_number() || !pair.items[1].is_number() ||
            pair.items[0].number < 0 || pair.items[1].number < 0) {
          if (error != nullptr) {
            *error = "histogram '" + p.name + "' has a malformed bucket";
          }
          return false;
        }
        const double b = pair.items[0].number;
        if (b > 4096) {  // bucket index bound: nothing we emit goes near it
          if (error != nullptr) {
            *error = "histogram '" + p.name + "' bucket index out of range";
          }
          return false;
        }
        const size_t bucket = static_cast<size_t>(b);
        const uint64_t count = static_cast<uint64_t>(pair.items[1].number);
        const double mid =
            bucket == 0
                ? 0.5
                : std::exp((static_cast<double>(bucket) - 0.5) * log_gamma);
        hist.Record(mid, count);
      }
      p.hist = std::move(hist);
    } else {
      if (error != nullptr) {
        *error = "metric '" + p.name + "' has unknown kind '" + kind->str +
                 "'";
      }
      return false;
    }
    out->points.push_back(std::move(p));
  }
  return true;
}

}  // namespace varstream
