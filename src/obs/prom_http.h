// Minimal HTTP/1.0 exposition endpoint for Prometheus scrapes.
//
// One listener thread, one request per connection, two routes:
//   GET /metrics       -> text/plain Prometheus exposition (0.0.4)
//   GET /metrics.json  -> the same snapshot as MetricsDump JSON
// The handlers run on the listener thread, never on a worker: a slow or
// stuck scraper can only stall other scrapers, not ingest. No keep-alive,
// no TLS, no external dependencies — this is a monitoring side door, not
// a web server.

#ifndef VARSTREAM_OBS_PROM_HTTP_H_
#define VARSTREAM_OBS_PROM_HTTP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace varstream {

class PromHttpServer {
 public:
  struct Handlers {
    std::function<std::string()> metrics_text;  // GET /metrics
    std::function<std::string()> metrics_json;  // GET /metrics.json
  };

  PromHttpServer() = default;
  ~PromHttpServer();
  PromHttpServer(const PromHttpServer&) = delete;
  PromHttpServer& operator=(const PromHttpServer&) = delete;

  /// Binds 127.0.0.1:port (0 picks an ephemeral port, see port()) and
  /// starts the listener thread.
  bool Start(uint16_t port, Handlers handlers, std::string* error);

  uint16_t port() const { return port_; }

  void Stop();

 private:
  void Serve();

  Handlers handlers_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
};

}  // namespace varstream

#endif  // VARSTREAM_OBS_PROM_HTTP_H_
