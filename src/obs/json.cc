#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace varstream {

namespace {

constexpr int kMaxDepth = 64;

struct Parser {
  std::string_view text;
  size_t pos = 0;
  std::string* error;

  bool Fail(const std::string& message) {
    if (error != nullptr) {
      *error = message + " at byte " + std::to_string(pos);
    }
    return false;
  }

  void SkipSpace() {
    while (pos < text.size()) {
      char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  bool Literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) {
      return Fail("expected '" + std::string(word) + "'");
    }
    pos += word.size();
    return true;
  }

  bool ParseString(std::string* out) {
    if (pos >= text.size() || text[pos] != '"') {
      return Fail("expected '\"'");
    }
    ++pos;
    out->clear();
    while (pos < text.size()) {
      char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos;
        continue;
      }
      if (pos + 1 >= text.size()) return Fail("truncated escape");
      char esc = text[pos + 1];
      pos += 2;
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos + 4 > text.size()) return Fail("truncated \\u escape");
          uint32_t code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text[pos + i];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<uint32_t>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<uint32_t>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<uint32_t>(h - 'A' + 10);
            else return Fail("bad hex digit in \\u escape");
          }
          pos += 4;
          // Encode the BMP code point as UTF-8; surrogate pairs are not
          // stitched (metric names and session names are ASCII).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    if (pos == start) return Fail("expected number");
    std::string token(text.substr(start, pos - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(value)) {
      pos = start;
      return Fail("bad number '" + token + "'");
    }
    out->type = JsonValue::Type::kNumber;
    out->number = value;
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipSpace();
    if (pos >= text.size()) return Fail("unexpected end of input");
    char c = text[pos];
    switch (c) {
      case '{': {
        ++pos;
        out->type = JsonValue::Type::kObject;
        SkipSpace();
        if (pos < text.size() && text[pos] == '}') {
          ++pos;
          return true;
        }
        for (;;) {
          SkipSpace();
          std::string key;
          if (!ParseString(&key)) return false;
          SkipSpace();
          if (pos >= text.size() || text[pos] != ':') {
            return Fail("expected ':'");
          }
          ++pos;
          JsonValue value;
          if (!ParseValue(&value, depth + 1)) return false;
          out->members.emplace_back(std::move(key), std::move(value));
          SkipSpace();
          if (pos >= text.size()) return Fail("unterminated object");
          if (text[pos] == ',') {
            ++pos;
            continue;
          }
          if (text[pos] == '}') {
            ++pos;
            return true;
          }
          return Fail("expected ',' or '}'");
        }
      }
      case '[': {
        ++pos;
        out->type = JsonValue::Type::kArray;
        SkipSpace();
        if (pos < text.size() && text[pos] == ']') {
          ++pos;
          return true;
        }
        for (;;) {
          JsonValue value;
          if (!ParseValue(&value, depth + 1)) return false;
          out->items.push_back(std::move(value));
          SkipSpace();
          if (pos >= text.size()) return Fail("unterminated array");
          if (text[pos] == ',') {
            ++pos;
            continue;
          }
          if (text[pos] == ']') {
            ++pos;
            return true;
          }
          return Fail("expected ',' or ']'");
        }
      }
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->str);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->type = JsonValue::Type::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

bool ParseJson(std::string_view text, JsonValue* out, std::string* error) {
  Parser parser;
  parser.text = text;
  parser.error = error;
  *out = JsonValue{};
  if (!parser.ParseValue(out, 0)) return false;
  parser.SkipSpace();
  if (parser.pos != text.size()) {
    return parser.Fail("trailing garbage after JSON value");
  }
  return true;
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonNumber(std::string* out, double value) {
  if (!std::isfinite(value)) value = 0.0;
  char buf[40];
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  out->append(buf);
}

}  // namespace varstream
