// Small shared text-formatting helpers for the hand-rolled JSON/report
// emitters (core/scenario.cc, testkit/runner.cc, ...). One definition
// each, so the varstream-suite-v1 and varstream-check-v1 documents can
// never drift in escaping or number formatting.

#ifndef VARSTREAM_COMMON_FORMAT_H_
#define VARSTREAM_COMMON_FORMAT_H_

#include <string>

namespace varstream {

/// Escapes a string for embedding in a JSON string literal: quotes,
/// backslashes, and control characters (\n, \t, \u00XX).
std::string JsonEscape(const std::string& s);

/// snprintf through a printf double format (e.g. "%g", "%.17g").
std::string FormatDouble(const char* fmt, double value);

}  // namespace varstream

#endif  // VARSTREAM_COMMON_FORMAT_H_
