// Small integer/float math helpers shared across the library.

#ifndef VARSTREAM_COMMON_MATH_UTIL_H_
#define VARSTREAM_COMMON_MATH_UTIL_H_

#include <cstdint>
#include <cstdlib>

namespace varstream {

/// floor(log2(x)) for x >= 1.
int FloorLog2(uint64_t x);

/// ceil(log2(x)) for x >= 1 (CeilLog2(1) == 0).
int CeilLog2(uint64_t x);

/// ceil(a / b) for b > 0.
uint64_t CeilDiv(uint64_t a, uint64_t b);

/// Sign of x: -1, 0, or +1.
inline int Sgn(int64_t x) { return (x > 0) - (x < 0); }

/// |x| as unsigned, safe for INT64_MIN.
inline uint64_t AbsU64(int64_t x) {
  return x < 0 ? ~static_cast<uint64_t>(x) + 1 : static_cast<uint64_t>(x);
}

/// The harmonic number H(n) = 1 + 1/2 + ... + 1/n; H(0) = 0.
/// Exact summation below a threshold, asymptotic expansion above it.
double HarmonicNumber(uint64_t n);

/// ceil(2^(r-1)) as used by the block-partition thresholds of section 3.1:
/// r = 0 gives 1 (= ceil(1/2)), r >= 1 gives 2^(r-1).
inline uint64_t CeilPow2Half(int r) {
  return r <= 0 ? 1 : (1ULL << (r - 1));
}

/// 2^r for r in [0, 62].
inline uint64_t Pow2(int r) { return 1ULL << r; }

/// Relative error |est - truth| / |truth|, with the convention of the paper
/// that at truth == 0 the error is 0 iff est == 0 (else infinity).
double RelativeError(int64_t truth, double est);

}  // namespace varstream

#endif  // VARSTREAM_COMMON_MATH_UTIL_H_
