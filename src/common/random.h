// Deterministic, seedable pseudo-random number generation for the whole
// library. All randomness in varstream flows through Rng so that every
// simulation, test, and benchmark is exactly reproducible from a seed.
//
// The engine is xoshiro256++ (Blackman & Vigna), seeded via SplitMix64 so
// that small or correlated user seeds still produce well-mixed state.

#ifndef VARSTREAM_COMMON_RANDOM_H_
#define VARSTREAM_COMMON_RANDOM_H_

#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace varstream {

/// SplitMix64: a tiny, fast generator used for seeding larger engines.
/// Passes through every 64-bit value exactly once over its period.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Returns the next 64-bit output and advances the state.
  uint64_t Next();

 private:
  uint64_t state_;
};

/// xoshiro256++ engine. Satisfies UniformRandomBitGenerator so it can be
/// used with <random> distributions when needed, though Rng provides the
/// distributions the library actually uses.
class Xoshiro256 {
 public:
  using result_type = uint64_t;

  explicit Xoshiro256(uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return Next(); }

  /// Returns the next 64-bit output.
  uint64_t Next();

  /// Equivalent to 2^128 calls to Next(); used to derive independent
  /// sub-streams from one seed.
  void Jump();

  /// Raw engine state, for checkpoint/restore: set_state(state()) on a
  /// second engine makes it emit the identical output sequence.
  std::array<uint64_t, 4> state() const { return {s_[0], s_[1], s_[2], s_[3]}; }
  void set_state(const std::array<uint64_t, 4>& s);

 private:
  uint64_t s_[4];
};

/// High-level random source with the distributions the library needs.
/// Not thread-safe; create one Rng per logical random stream.
class Rng {
 public:
  /// Seeds the generator. Two Rng instances with the same seed produce
  /// identical sequences.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Derives an independent child generator (different sub-stream).
  /// Children with distinct `stream` values are statistically independent.
  Rng Fork(uint64_t stream) const;

  /// Uniform 64-bit value.
  uint64_t NextU64() { return engine_.Next(); }

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in the inclusive range [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform value in [0, n). Requires n > 0. Uses Lemire's method.
  uint64_t UniformBelow(uint64_t n);

  /// Returns true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Fair coin: ±1 with probability 1/2 each.
  int Sign() { return (NextU64() & 1) ? +1 : -1; }

  /// Biased coin: +1 with probability (1 + mu) / 2, else -1.
  /// Matches the increment distribution of Theorem 2.4. Requires |mu| <= 1.
  int BiasedSign(double mu);

  /// Standard normal via Box-Muller (spare value cached).
  double Gaussian();

  /// Geometric: number of Bernoulli(p) failures before the first success.
  /// Requires 0 < p <= 1.
  uint64_t Geometric(double p);

  /// Fisher-Yates shuffle of [first, last).
  template <typename It>
  void Shuffle(It first, It last) {
    auto n = static_cast<uint64_t>(last - first);
    for (uint64_t i = n; i > 1; --i) {
      uint64_t j = UniformBelow(i);
      std::swap(first[i - 1], first[j]);
    }
  }

  /// Samples `count` distinct values from [0, n) in increasing order
  /// (Floyd's algorithm + sort). Requires count <= n.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t count);

  /// Complete generator state (engine words + the cached Box-Muller
  /// spare) as one compact token, and its bit-exact inverse. Used by the
  /// tracker checkpoints (core/mergeable.h RestoreState) so a restored
  /// randomized tracker draws the same sequence an uninterrupted run
  /// would. RestoreState returns false on a malformed token.
  std::string SerializeState() const;
  bool RestoreState(const std::string& state);

 private:
  explicit Rng(const Xoshiro256& engine)
      : engine_(engine), spare_gaussian_(0), has_spare_gaussian_(false) {}

  Xoshiro256 engine_;
  double spare_gaussian_;
  bool has_spare_gaussian_;
};

/// Zipf(s) sampler over the universe {0, 1, ..., n-1} where item i has
/// probability proportional to 1 / (i + 1)^s. Uses a precomputed inverse-CDF
/// table (O(n) memory, O(log n) sampling) — fine for the universe sizes the
/// experiments use (<= ~1e7).
class ZipfSampler {
 public:
  /// Requires n >= 1 and s >= 0. s = 0 degenerates to uniform.
  ZipfSampler(uint64_t n, double s);

  /// Draws one item in [0, n).
  uint64_t Sample(Rng* rng) const;

  uint64_t universe_size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cdf_[i] = P(item <= i)
};

}  // namespace varstream

#endif  // VARSTREAM_COMMON_RANDOM_H_
