#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace varstream {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  uint64_t n = count_ + other.count_;
  double delta = other.mean_ - mean_;
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  mean_ += delta * nb / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = n;
}

double RunningStats::variance() const {
  if (count_ == 0) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::sample_variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  double pos = q * static_cast<double>(values.size() - 1);
  auto lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace varstream
