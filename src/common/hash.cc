#include "common/hash.h"

#include <cassert>

namespace varstream {

uint64_t MersenneModMulAdd(uint64_t a, uint64_t x, uint64_t b) {
  __uint128_t prod = static_cast<__uint128_t>(a) * x + b;
  // Fold twice: any 122-bit value y satisfies
  //   y mod (2^61-1) = ((y >> 61) + (y & (2^61-1))) possibly minus p once.
  uint64_t lo = static_cast<uint64_t>(prod) & kMersenne61;
  uint64_t hi = static_cast<uint64_t>(prod >> 61);
  uint64_t sum = lo + hi;
  sum = (sum & kMersenne61) + (sum >> 61);
  if (sum >= kMersenne61) sum -= kMersenne61;
  return sum;
}

PairwiseHash::PairwiseHash(uint64_t width, Rng* rng) : width_(width) {
  assert(width >= 1);
  a_ = 1 + rng->UniformBelow(kMersenne61 - 1);  // a in [1, p)
  b_ = rng->UniformBelow(kMersenne61);          // b in [0, p)
}

PairwiseHash::PairwiseHash(uint64_t a, uint64_t b, uint64_t width)
    : a_(a), b_(b), width_(width) {
  assert(width >= 1);
  assert(a >= 1 && a < kMersenne61);
  assert(b < kMersenne61);
}

uint64_t PairwiseHash::operator()(uint64_t key) const {
  if (key >= kMersenne61) key %= kMersenne61;
  return MersenneModMulAdd(a_, key, b_) % width_;
}

HashBank::HashBank(uint64_t rows, uint64_t width, Rng* rng) : width_(width) {
  funcs_.reserve(rows);
  for (uint64_t r = 0; r < rows; ++r) funcs_.emplace_back(width, rng);
}

HashBank::HashBank(std::vector<PairwiseHash> funcs)
    : funcs_(std::move(funcs)) {
  assert(!funcs_.empty());
  width_ = funcs_.front().width();
  for (const PairwiseHash& h : funcs_) {
    assert(h.width() == width_);
    (void)h;
  }
}

uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace varstream
