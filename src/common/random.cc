#include "common/random.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace varstream {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64::Next() {
  uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
}

uint64_t Xoshiro256::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

void Xoshiro256::Jump() {
  static constexpr uint64_t kJump[] = {0x180EC6D33CFD0ABAULL,
                                       0xD5A61266F0C9392CULL,
                                       0xA9582618E03FC9AAULL,
                                       0x39ABDC4529B1661CULL};
  uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      Next();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

void Xoshiro256::set_state(const std::array<uint64_t, 4>& s) {
  for (int i = 0; i < 4; ++i) s_[i] = s[i];
}

Rng::Rng(uint64_t seed)
    : engine_(seed), spare_gaussian_(0), has_spare_gaussian_(false) {}

std::string Rng::SerializeState() const {
  const std::array<uint64_t, 4> s = engine_.state();
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "%016" PRIx64 ":%016" PRIx64 ":%016" PRIx64 ":%016" PRIx64
                ":%016" PRIx64 ":%d",
                s[0], s[1], s[2], s[3],
                std::bit_cast<uint64_t>(spare_gaussian_),
                has_spare_gaussian_ ? 1 : 0);
  return buf;
}

bool Rng::RestoreState(const std::string& state) {
  // Strict parse: exactly six ':'-separated fields consuming the whole
  // string (%n guards against trailing garbage sscanf would ignore).
  std::array<uint64_t, 4> s{};
  uint64_t spare_bits = 0;
  int has_spare = 0;
  int consumed = 0;
  if (std::sscanf(state.c_str(),
                  "%" SCNx64 ":%" SCNx64 ":%" SCNx64 ":%" SCNx64 ":%" SCNx64
                  ":%d%n",
                  &s[0], &s[1], &s[2], &s[3], &spare_bits, &has_spare,
                  &consumed) != 6 ||
      static_cast<size_t>(consumed) != state.size() ||
      (has_spare != 0 && has_spare != 1)) {
    return false;
  }
  engine_.set_state(s);
  spare_gaussian_ = std::bit_cast<double>(spare_bits);
  has_spare_gaussian_ = has_spare == 1;
  return true;
}

Rng Rng::Fork(uint64_t stream) const {
  // Mix the stream id into fresh engine state derived from this engine's
  // current state, so forks are decorrelated from the parent and from each
  // other without advancing the parent.
  Xoshiro256 copy = engine_;
  uint64_t base = copy.Next();
  SplitMix64 sm(base ^ (stream * 0xD1B54A32D192ED03ULL + 0x2545F4914F6CDD1DULL));
  return Rng(Xoshiro256(sm.Next()));
}

double Rng::NextDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::UniformBelow(uint64_t n) {
  assert(n > 0);
  // Lemire's nearly-divisionless method.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<uint64_t>(m);
  if (lo < n) {
    uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full 64-bit range
  return lo + static_cast<int64_t>(UniformBelow(span));
}

bool Rng::Bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

int Rng::BiasedSign(double mu) {
  assert(mu >= -1.0 && mu <= 1.0);
  return Bernoulli((1.0 + mu) / 2.0) ? +1 : -1;
}

double Rng::Gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * factor;
  has_spare_gaussian_ = true;
  return u * factor;
}

uint64_t Rng::Geometric(double p) {
  assert(p > 0 && p <= 1);
  if (p >= 1) return 0;
  double u = NextDouble();
  // Inverse CDF; 1 - u is in (0, 1] so the log is finite.
  return static_cast<uint64_t>(std::floor(std::log1p(-u) / std::log1p(-p)));
}

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n,
                                                    uint64_t count) {
  assert(count <= n);
  // Floyd's algorithm: O(count) expected insertions.
  std::vector<uint64_t> result;
  result.reserve(count);
  for (uint64_t j = n - count; j < n; ++j) {
    uint64_t t = UniformBelow(j + 1);
    bool found = false;
    for (uint64_t r : result) {
      if (r == t) {
        found = true;
        break;
      }
    }
    result.push_back(found ? j : t);
  }
  std::sort(result.begin(), result.end());
  return result;
}

ZipfSampler::ZipfSampler(uint64_t n, double s) {
  assert(n >= 1);
  assert(s >= 0);
  cdf_.resize(n);
  double total = 0;
  for (uint64_t i = 0; i < n; ++i) {
    total += std::pow(static_cast<double>(i + 1), -s);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

uint64_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace varstream
