// Aligned console tables for the benchmark harness. Every experiment binary
// prints paper-style rows through this printer so output is uniform and
// machine-greppable (a leading "| " marks data rows).

#ifndef VARSTREAM_COMMON_TABLE_PRINTER_H_
#define VARSTREAM_COMMON_TABLE_PRINTER_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace varstream {

/// Collects rows of heterogeneous cells and prints them column-aligned.
///
/// Usage:
///   TablePrinter t({"n", "E[v]", "sqrt(n)*log(n)", "ratio"});
///   t.AddRow({Cell(n), Cell(v, 2), Cell(bound, 2), Cell(v / bound, 3)});
///   t.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Formats a double with `precision` digits after the point.
  static std::string Cell(double value, int precision);
  static std::string Cell(uint64_t value);
  static std::string Cell(int64_t value);
  static std::string Cell(uint32_t value);
  static std::string Cell(int value);
  static std::string Cell(const char* value);
  static std::string Cell(const std::string& value);

  /// Adds one data row; must have exactly as many cells as headers.
  void AddRow(std::vector<std::string> cells);

  /// Writes the table (header, separator, rows) to `os`.
  void Print(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner ("=== title ===") used to delimit experiments in
/// bench output.
void PrintBanner(std::ostream& os, const std::string& title);

}  // namespace varstream

#endif  // VARSTREAM_COMMON_TABLE_PRINTER_H_
