#include "common/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace varstream {

LogHistogram::LogHistogram(double gamma)
    : log_gamma_(std::log(gamma)), gamma_(gamma) {
  assert(gamma > 1.0);
}

size_t LogHistogram::BucketFor(double value) const {
  if (value < 1.0) return 0;
  return 1 + static_cast<size_t>(std::log(value) / log_gamma_);
}

double LogHistogram::BucketMid(size_t bucket) const {
  if (bucket == 0) return 0.5;
  // Bucket b >= 1 covers [gamma^(b-1), gamma^b); return geometric midpoint.
  return std::exp((static_cast<double>(bucket) - 0.5) * log_gamma_);
}

void LogHistogram::Record(double value) { Record(value, 1); }

void LogHistogram::Record(double value, uint64_t repeat) {
  if (repeat == 0) return;
  value = std::max(value, 0.0);
  size_t b = BucketFor(value);
  if (b >= buckets_.size()) buckets_.resize(b + 1, 0);
  buckets_[b] += repeat;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += repeat;
}

double LogHistogram::Percentile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_ - 1));
  uint64_t seen = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b];
    if (seen > target) return std::clamp(BucketMid(b), min_, max_);
  }
  return max_;
}

uint64_t LogHistogram::CountAtMost(double threshold) const {
  if (threshold < 0) return 0;
  size_t limit = BucketFor(threshold);
  uint64_t total = 0;
  for (size_t b = 0; b < buckets_.size() && b <= limit; ++b) {
    total += buckets_[b];
  }
  return total;
}

void LogHistogram::Merge(const LogHistogram& other) {
  if (std::abs(gamma_ - other.gamma_) >= 1e-12) {
    std::fprintf(stderr,
                 "LogHistogram::Merge: gamma mismatch (%.17g vs %.17g); "
                 "bucket indices are not comparable across gammas\n",
                 gamma_, other.gamma_);
    std::abort();
  }
  if (other.count_ == 0) return;
  if (buckets_.size() < other.buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (size_t b = 0; b < other.buckets_.size(); ++b) {
    buckets_[b] += other.buckets_[b];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
}

}  // namespace varstream
