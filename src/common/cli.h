// Minimal --key=value flag parsing for example and benchmark binaries.
// Keeps the executables dependency-free while letting users tweak stream
// sizes, site counts and epsilons from the command line.

#ifndef VARSTREAM_COMMON_CLI_H_
#define VARSTREAM_COMMON_CLI_H_

#include <cstdint>
#include <map>
#include <string>

namespace varstream {

/// Parses "key=val,key=val" (the tools' --params payload) into a numeric
/// map. Returns false with a stderr diagnostic on a malformed pair or a
/// non-numeric value.
bool ParseKeyValueParams(const std::string& csv,
                         std::map<std::string, double>* params);

/// Parses flags of the form --name=value or --name value (or bare
/// trailing/pre-flag --name for booleans). Unknown positional arguments
/// are ignored. Typed getters fall back to the provided default when a
/// flag is absent or unparsable.
class FlagParser {
 public:
  FlagParser(int argc, char** argv);

  bool Has(const std::string& name) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  uint64_t GetUint(const std::string& name, uint64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace varstream

#endif  // VARSTREAM_COMMON_CLI_H_
