#include "common/math_util.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace varstream {

int FloorLog2(uint64_t x) {
  assert(x >= 1);
  return 63 - __builtin_clzll(x);
}

int CeilLog2(uint64_t x) {
  assert(x >= 1);
  int f = FloorLog2(x);
  return ((x & (x - 1)) == 0) ? f : f + 1;
}

uint64_t CeilDiv(uint64_t a, uint64_t b) {
  assert(b > 0);
  return (a + b - 1) / b;
}

double HarmonicNumber(uint64_t n) {
  if (n == 0) return 0.0;
  constexpr uint64_t kExactThreshold = 1 << 16;
  if (n <= kExactThreshold) {
    double h = 0.0;
    // Sum smallest-first for accuracy.
    for (uint64_t i = n; i >= 1; --i) h += 1.0 / static_cast<double>(i);
    return h;
  }
  // Euler-Maclaurin: H(n) ~ ln n + gamma + 1/2n - 1/12n^2 + 1/120n^4.
  constexpr double kGamma = 0.57721566490153286;
  double dn = static_cast<double>(n);
  return std::log(dn) + kGamma + 1.0 / (2 * dn) - 1.0 / (12 * dn * dn) +
         1.0 / (120 * dn * dn * dn * dn);
}

double RelativeError(int64_t truth, double est) {
  if (truth == 0) {
    return est == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return std::abs(est - static_cast<double>(truth)) /
         std::abs(static_cast<double>(truth));
}

}  // namespace varstream
