// Logarithmically-bucketed histogram for nonnegative values. Gives
// percentile estimates with bounded relative error at O(1) record cost,
// which is enough for the benchmark harness's latency / message-size
// distributions.

#ifndef VARSTREAM_COMMON_HISTOGRAM_H_
#define VARSTREAM_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace varstream {

/// Histogram over [0, +inf) with buckets growing geometrically by `gamma`.
/// A recorded value v lands in bucket floor(log_gamma(max(v, 1))); the
/// reported percentile is the geometric midpoint of its bucket, so the
/// multiplicative error is at most sqrt(gamma).
class LogHistogram {
 public:
  /// gamma > 1 controls resolution; default 1.1 gives ~5% error.
  explicit LogHistogram(double gamma = 1.1);

  void Record(double value);
  void Record(double value, uint64_t repeat);

  /// Value at quantile q in [0, 1]; 0 if empty.
  double Percentile(double q) const;

  /// Number of recorded values.
  uint64_t count() const { return count_; }

  /// Number of recorded values <= threshold (bucket-resolution accuracy).
  uint64_t CountAtMost(double threshold) const;

  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  double gamma() const { return gamma_; }

  /// Raw bucket counts; buckets_[0] holds values in [0, 1), bucket b >= 1
  /// covers [gamma^(b-1), gamma^b). Exposed so serializers (metrics
  /// snapshots) can ship exact counts instead of lossy percentiles.
  const std::vector<uint64_t>& bucket_counts() const { return buckets_; }

  /// Merges another histogram with the same gamma. Bucket indices are
  /// only comparable for identical gammas, so a mismatch aborts loudly
  /// instead of silently producing garbage percentiles.
  void Merge(const LogHistogram& other);

 private:
  size_t BucketFor(double value) const;
  double BucketMid(size_t bucket) const;

  double log_gamma_;
  double gamma_;
  std::vector<uint64_t> buckets_;  // buckets_[0] holds values in [0, 1)
  uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace varstream

#endif  // VARSTREAM_COMMON_HISTOGRAM_H_
