#include "common/format.h"

#include <cstdio>

namespace varstream {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatDouble(const char* fmt, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, value);
  return buf;
}

}  // namespace varstream
