#include "common/table_printer.h"

#include <cassert>
#include <cstdio>
#include <ostream>

namespace varstream {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

std::string TablePrinter::Cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::Cell(uint64_t value) {
  return std::to_string(value);
}

std::string TablePrinter::Cell(int64_t value) { return std::to_string(value); }

std::string TablePrinter::Cell(uint32_t value) {
  return std::to_string(value);
}

std::string TablePrinter::Cell(int value) { return std::to_string(value); }

std::string TablePrinter::Cell(const char* value) { return value; }

std::string TablePrinter::Cell(const std::string& value) { return value; }

void TablePrinter::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (size_t c = 0; c < cells.size(); ++c) {
      os << ' ';
      // Right-align all cells.
      for (size_t pad = cells[c].size(); pad < widths[c]; ++pad) os << ' ';
      os << cells[c] << " |";
    }
    os << '\n';
  };
  emit(headers_);
  os << "|";
  for (size_t c = 0; c < widths.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

void PrintBanner(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace varstream
