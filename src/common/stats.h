// Streaming statistics (Welford's algorithm) and batch percentile helpers.
// Used by the benchmark harness to summarize per-trial measurements and by
// tests to check concentration claims.

#ifndef VARSTREAM_COMMON_STATS_H_
#define VARSTREAM_COMMON_STATS_H_

#include <cstdint>
#include <vector>

namespace varstream {

/// Single-pass mean/variance/min/max accumulator (Welford). Numerically
/// stable; supports merging partial results (Chan et al.).
class RunningStats {
 public:
  RunningStats() = default;

  /// Adds one observation.
  void Add(double x);

  /// Merges another accumulator into this one.
  void Merge(const RunningStats& other);

  uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Population variance (divides by n).
  double variance() const;
  /// Sample variance (divides by n-1); 0 when count < 2.
  double sample_variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a batch, q in [0, 1], by linear interpolation between
/// order statistics. The input vector is copied; empty input returns 0.
double Percentile(std::vector<double> values, double q);

}  // namespace varstream

#endif  // VARSTREAM_COMMON_STATS_H_
