#include "common/cli.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace varstream {

bool ParseKeyValueParams(const std::string& csv,
                         std::map<std::string, double>* params) {
  size_t start = 0;
  while (start < csv.size()) {
    size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    std::string pair = csv.substr(start, comma - start);
    size_t eq = pair.find('=');
    if (eq == std::string::npos || eq == 0) {
      std::fprintf(stderr, "--params: '%s' is not key=value\n", pair.c_str());
      return false;
    }
    std::string value = pair.substr(eq + 1);
    char* end = nullptr;
    double parsed = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') {
      std::fprintf(stderr, "--params: '%s' is not a number\n", value.c_str());
      return false;
    }
    (*params)[pair.substr(0, eq)] = parsed;
    start = comma + 1;
  }
  return true;
}

FlagParser::FlagParser(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.size() < 3 || arg[0] != '-' || arg[1] != '-') continue;
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      // "--flag value": the next argument is the value unless it is
      // itself a flag ("-5" style negative values are values).
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";  // bare boolean
    }
  }
}

bool FlagParser::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

int64_t FlagParser::GetInt(const std::string& name,
                           int64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  return (end && *end == '\0') ? v : default_value;
}

uint64_t FlagParser::GetUint(const std::string& name,
                             uint64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  uint64_t v = std::strtoull(it->second.c_str(), &end, 10);
  return (end && *end == '\0') ? v : default_value;
}

double FlagParser::GetDouble(const std::string& name,
                             double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  return (end && *end == '\0') ? v : default_value;
}

bool FlagParser::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

}  // namespace varstream
