#include "common/cli.h"

#include <cstdlib>

namespace varstream {

FlagParser::FlagParser(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.size() < 3 || arg[0] != '-' || arg[1] != '-') continue;
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq == std::string::npos) {
      values_[body] = "true";
    } else {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    }
  }
}

bool FlagParser::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

int64_t FlagParser::GetInt(const std::string& name,
                           int64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  return (end && *end == '\0') ? v : default_value;
}

uint64_t FlagParser::GetUint(const std::string& name,
                             uint64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  uint64_t v = std::strtoull(it->second.c_str(), &end, 10);
  return (end && *end == '\0') ? v : default_value;
}

double FlagParser::GetDouble(const std::string& name,
                             double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  return (end && *end == '\0') ? v : default_value;
}

bool FlagParser::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

}  // namespace varstream
