// Hash families used by the sketches of Appendix H.
//
// Count-Min (Cormode & Muthukrishnan) requires pairwise-independent hash
// functions; PairwiseHash implements the classic (a*x + b mod p) mod w
// construction over the Mersenne prime p = 2^61 - 1, which is exactly
// pairwise independent over [0, p).

#ifndef VARSTREAM_COMMON_HASH_H_
#define VARSTREAM_COMMON_HASH_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace varstream {

/// The Mersenne prime 2^61 - 1 used as the field size for pairwise hashing.
inline constexpr uint64_t kMersenne61 = (1ULL << 61) - 1;

/// Fast (a*x + b) mod (2^61 - 1), using the Mersenne-prime folding trick.
uint64_t MersenneModMulAdd(uint64_t a, uint64_t x, uint64_t b);

/// A single pairwise-independent hash function h : [2^61-1] -> [width).
///
/// For any x != y and any targets (u, v), P(h(x)=u, h(y)=v) = 1/width^2
/// over the random draw of (a, b) — the property Count-Min's analysis needs.
class PairwiseHash {
 public:
  /// Draws a random function with the given output width (buckets).
  /// Requires width >= 1.
  PairwiseHash(uint64_t width, Rng* rng);

  /// Constructs a fixed function (for tests / serialization).
  PairwiseHash(uint64_t a, uint64_t b, uint64_t width);

  /// Evaluates the hash. Keys >= 2^61-1 are first reduced mod 2^61-1;
  /// the pairwise guarantee then applies to the reduced keys.
  uint64_t operator()(uint64_t key) const;

  uint64_t width() const { return width_; }
  uint64_t a() const { return a_; }
  uint64_t b() const { return b_; }

 private:
  uint64_t a_;
  uint64_t b_;
  uint64_t width_;
};

/// A bank of d independent pairwise hash functions sharing one width,
/// as used by the rows of a Count-Min sketch or CR-precis structure.
class HashBank {
 public:
  HashBank(uint64_t rows, uint64_t width, Rng* rng);

  /// Builds from explicit functions (deserialization); all must share the
  /// same width.
  explicit HashBank(std::vector<PairwiseHash> funcs);

  const PairwiseHash& function(uint64_t row) const { return funcs_[row]; }

  uint64_t Hash(uint64_t row, uint64_t key) const {
    return funcs_[row](key);
  }

  uint64_t rows() const { return funcs_.size(); }
  uint64_t width() const { return width_; }

 private:
  std::vector<PairwiseHash> funcs_;
  uint64_t width_;
};

/// 64-bit finalizer (splittable mix); not pairwise independent, used only
/// for non-adversarial bucketing in tests and generators.
uint64_t Mix64(uint64_t x);

}  // namespace varstream

#endif  // VARSTREAM_COMMON_HASH_H_
