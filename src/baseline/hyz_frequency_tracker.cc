#include "baseline/hyz_frequency_tracker.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace varstream {

HyzFrequencyTracker::HyzFrequencyTracker(const TrackerOptions& options)
    : options_(options),
      net_(std::make_unique<SimNetwork>(options.num_sites)),
      rng_(options.seed),
      site_counts_(options.num_sites),
      round_base_(options.num_sites),
      coord_drift_(options.num_sites) {
  assert(options.epsilon > 0 && options.epsilon < 1);
  StartRound();
}

void HyzFrequencyTracker::StartRound() {
  scale_ = std::max<int64_t>(f1_, 1);
  p_ = std::min(1.0, options_.sample_constant *
                         std::sqrt(static_cast<double>(options_.num_sites)) /
                         (options_.epsilon * static_cast<double>(scale_)));
  // Resync: the coordinator learns every site's exact counts (2 messages
  // per nonzero counter, charged as poll traffic) and drops in-round
  // estimates.
  coord_base_.clear();
  coord_drift_sum_.clear();
  for (uint32_t i = 0; i < options_.num_sites; ++i) {
    coord_drift_[i].clear();
    round_base_[i] = site_counts_[i];
    net_->SendToSite(i, MessageKind::kPollRequest, /*words=*/0);
    for (const auto& [item, count] : site_counts_[i]) {
      net_->SendToCoordinator(i, MessageKind::kPollReply, /*words=*/2);
      coord_base_[item] += static_cast<double>(count);
    }
  }
  net_->Broadcast(MessageKind::kBroadcast);
}

void HyzFrequencyTracker::PushInsert(uint32_t site, uint64_t item) {
  assert(site < options_.num_sites);
  net_->Tick();
  ++time_;
  ++f1_;
  int64_t& c = site_counts_[site][item];
  ++c;

  if (rng_.Bernoulli(p_)) {
    net_->SendToCoordinator(site, MessageKind::kDrift, /*words=*/2);
    // Estimate of the in-round drift d_il = c_il - base_il.
    double drift = static_cast<double>(c - round_base_[site][item]);
    double estimate = drift - 1.0 + 1.0 / p_;
    double& slot = coord_drift_[site][item];
    coord_drift_sum_[item] += estimate - slot;
    slot = estimate;
  }

  if (f1_ >= 2 * scale_) StartRound();
}

double HyzFrequencyTracker::EstimateItem(uint64_t item) const {
  double base = 0.0;
  auto it = coord_base_.find(item);
  if (it != coord_base_.end()) base = it->second;
  auto drift = coord_drift_sum_.find(item);
  if (drift != coord_drift_sum_.end()) base += drift->second;
  return base;
}

}  // namespace varstream
