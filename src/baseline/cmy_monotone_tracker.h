// Baseline: the classic deterministic monotone counter in the style of
// Cormode, Muthukrishnan & Yi [4][5]. Insertion-only streams: each site
// reports its local count whenever it grows by a (1 + epsilon) factor, so
//   f - f̂ = sum_i (c_i - ĉ_i) < epsilon * sum_i ĉ_i <= epsilon * f,
// with O(k log(n) / epsilon) messages (each site reports O(log_{1+eps} c_i)
// times). This is the O(k/eps * log n) comparison point of section 3; the
// paper's deterministic tracker reduces to this shape on monotone inputs
// because v(n) = O(log f(n)) there (Theorem 2.1).

#ifndef VARSTREAM_BASELINE_CMY_MONOTONE_TRACKER_H_
#define VARSTREAM_BASELINE_CMY_MONOTONE_TRACKER_H_

#include <memory>
#include <vector>

#include "core/options.h"
#include "core/tracker.h"
#include "net/network.h"

namespace varstream {

class CmyMonotoneTracker : public DistributedTracker {
 public:
  explicit CmyMonotoneTracker(const TrackerOptions& options);

  double Estimate() const override {
    return static_cast<double>(estimate_);
  }
  const CostMeter& cost() const override { return net_->cost(); }
  std::string name() const override { return "cmy-monotone"; }

 protected:
  /// Only delta = +1 reaches here (monotone model; the base class expands
  /// larger positive updates and rejects deletions).
  void DoPush(uint32_t site, int64_t delta) override;

 private:
  double epsilon_;
  std::unique_ptr<SimNetwork> net_;
  std::vector<uint64_t> site_count_;     // c_i
  std::vector<uint64_t> site_reported_;  // ĉ_i
  int64_t estimate_ = 0;                 // sum_i ĉ_i
};

}  // namespace varstream

#endif  // VARSTREAM_BASELINE_CMY_MONOTONE_TRACKER_H_
