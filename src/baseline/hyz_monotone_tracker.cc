#include "baseline/hyz_monotone_tracker.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/registry.h"

namespace varstream {

HyzMonotoneTracker::HyzMonotoneTracker(const TrackerOptions& options)
    : DistributedTracker(options.num_sites, UpdateSupport::kMonotoneUnit),
      epsilon_(options.epsilon),
      net_(std::make_unique<SimNetwork>(options.num_sites)),
      rng_(options.seed),
      site_count_(options.num_sites, 0),
      round_base_(options.num_sites, 0),
      coord_estimate_(options.num_sites, 0.0) {
  assert(options.epsilon > 0 && options.epsilon < 1);
  StartRound(0);
}

void HyzMonotoneTracker::StartRound(int64_t exact_f) {
  base_f_ = exact_f;
  scale_ = std::max<int64_t>(exact_f, 1);
  double denom =
      epsilon_ * static_cast<double>(scale_);
  p_ = std::min(1.0, 3.0 * std::sqrt(static_cast<double>(net_->num_sites())) /
                         denom);
  std::fill(coord_estimate_.begin(), coord_estimate_.end(), 0.0);
  coord_sum_ = 0.0;
  for (uint32_t i = 0; i < net_->num_sites(); ++i) {
    round_base_[i] = site_count_[i];
  }
}

void HyzMonotoneTracker::DoPush(uint32_t site, int64_t delta) {
  assert(delta == 1 && "HyzMonotoneTracker requires insertion-only streams");
  (void)delta;
  net_->Tick();
  ++site_count_[site];

  if (rng_.Bernoulli(p_)) {
    net_->SendToCoordinator(site, MessageKind::kDrift);
    // HYZ estimator on the in-round drift d_i = c_i - base_i.
    double drift =
        static_cast<double>(site_count_[site] - round_base_[site]);
    double estimate = drift - 1.0 + 1.0 / p_;
    coord_sum_ += estimate - coord_estimate_[site];
    coord_estimate_[site] = estimate;
  }

  // Round advance: when the estimate doubles past the scale, resync all
  // sites exactly (poll + reply) and broadcast the new probability.
  if (Estimate() >= 2.0 * static_cast<double>(scale_)) {
    int64_t exact = 0;
    for (uint32_t i = 0; i < net_->num_sites(); ++i) {
      net_->SendToSite(i, MessageKind::kPollRequest, /*words=*/0);
      net_->SendToCoordinator(i, MessageKind::kPollReply);
      exact += static_cast<int64_t>(site_count_[i]);
    }
    StartRound(exact);
    net_->Broadcast(MessageKind::kBroadcast);
  }
}

double HyzMonotoneTracker::Estimate() const {
  return static_cast<double>(base_f_) + coord_sum_;
}

VARSTREAM_REGISTER_MONOTONE_TRACKER("hyz-monotone", HyzMonotoneTracker)
VARSTREAM_REGISTER_TRACKER_ALIAS("hyz", "hyz-monotone")

}  // namespace varstream
