#include "baseline/cmy_monotone_tracker.h"

#include <cassert>

#include "core/registry.h"

namespace varstream {

CmyMonotoneTracker::CmyMonotoneTracker(const TrackerOptions& options)
    : DistributedTracker(options.num_sites, UpdateSupport::kMonotoneUnit),
      epsilon_(options.epsilon),
      net_(std::make_unique<SimNetwork>(options.num_sites)),
      site_count_(options.num_sites, 0),
      site_reported_(options.num_sites, 0) {
  assert(options.epsilon > 0 && options.epsilon < 1);
}

void CmyMonotoneTracker::DoPush(uint32_t site, int64_t delta) {
  assert(delta == 1 && "CmyMonotoneTracker requires insertion-only streams");
  (void)delta;
  net_->Tick();
  uint64_t& c = site_count_[site];
  uint64_t& reported = site_reported_[site];
  ++c;
  // First arrival always reports; afterwards report on (1+eps) growth.
  if (reported == 0 ||
      static_cast<double>(c) >=
          (1.0 + epsilon_) * static_cast<double>(reported)) {
    net_->SendToCoordinator(site, MessageKind::kSync);
    estimate_ += static_cast<int64_t>(c - reported);
    reported = c;
  }
}

VARSTREAM_REGISTER_MONOTONE_TRACKER("cmy-monotone", CmyMonotoneTracker)
VARSTREAM_REGISTER_TRACKER_ALIAS("cmy", "cmy-monotone")

}  // namespace varstream
