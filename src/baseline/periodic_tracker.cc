#include "baseline/periodic_tracker.h"

#include <cassert>

namespace varstream {

PeriodicTracker::PeriodicTracker(const TrackerOptions& options,
                                 uint64_t period)
    : net_(std::make_unique<SimNetwork>(options.num_sites)),
      period_(period),
      sites_(options.num_sites),
      estimate_(options.initial_value) {
  assert(period >= 1);
}

void PeriodicTracker::Push(uint32_t site, int64_t delta) {
  assert(site < sites_.size());
  net_->Tick();
  ++time_;
  SiteState& s = sites_[site];
  s.pending += delta;
  if (++s.arrivals >= period_) {
    net_->SendToCoordinator(site, MessageKind::kSync);
    estimate_ += s.pending;
    s.pending = 0;
    s.arrivals = 0;
  }
}

std::string PeriodicTracker::name() const {
  return "periodic(T=" + std::to_string(period_) + ")";
}

}  // namespace varstream
