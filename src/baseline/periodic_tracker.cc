#include "baseline/periodic_tracker.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "common/math_util.h"
#include "core/registry.h"
#include "core/state_codec.h"

namespace varstream {

PeriodicTracker::PeriodicTracker(const TrackerOptions& options)
    : PeriodicTracker(options, options.period) {}

PeriodicTracker::PeriodicTracker(const TrackerOptions& options,
                                 uint64_t period)
    : DistributedTracker(options.num_sites, UpdateSupport::kArbitrary),
      net_(std::make_unique<SimNetwork>(options.num_sites)),
      period_(period),
      sites_(options.num_sites),
      estimate_(options.initial_value),
      initial_value_(options.initial_value) {
  assert(period >= 1);
}

void PeriodicTracker::DoPush(uint32_t site, int64_t delta) {
  net_->Tick(AbsU64(delta));
  SiteState& s = sites_[site];
  s.pending += delta;
  if (++s.arrivals >= period_) {
    net_->SendToCoordinator(site, MessageKind::kSync);
    estimate_ += s.pending;
    s.pending = 0;
    s.arrivals = 0;
  }
}

void PeriodicTracker::MergeFrom(const DistributedTracker& other) {
  const PeriodicTracker& peer = CheckedMergePeer(*this, other);
  estimate_ += peer.estimate_ - peer.initial_value_;
  net_->mutable_cost()->Merge(peer.cost());
  AdvanceTime(peer.time());
}

std::string PeriodicTracker::SerializeState() const {
  std::string out = FormatMergeableState(
      "periodic|T=" + std::to_string(period_), num_sites(),
      std::to_string(estimate_), time(), cost());
  AppendField(&out, "v", std::to_string(kTrackerStateVersion));
  AppendField(&out, "init", std::to_string(initial_value_));
  AppendField(&out, "clk", std::to_string(net_->now()));
  std::vector<std::pair<int64_t, int64_t>> site_pairs;
  site_pairs.reserve(sites_.size());
  for (const SiteState& s : sites_) {
    site_pairs.emplace_back(static_cast<int64_t>(s.arrivals), s.pending);
  }
  AppendField(&out, "sites", JoinI64Pairs(site_pairs));
  AppendField(&out, "cost", cost().SerializeCounts());
  return out;
}

bool PeriodicTracker::RestoreState(const std::string& state,
                                   std::string* error) {
  StateFields fields;
  if (!ParseTrackerState(state, "periodic", num_sites(), time(), &fields,
                         error)) {
    return false;
  }
  uint64_t period = 0;
  if (!fields.GetU64("T", &period) || period != period_) {
    if (error != nullptr) {
      *error = "state sync period does not match this tracker (T=" +
               std::to_string(period_) + ")";
    }
    return false;
  }
  int64_t est = 0, init = 0;
  uint64_t t = 0, clk = 0;
  std::string cost_text;
  std::vector<std::pair<int64_t, int64_t>> site_pairs;
  if (!fields.GetI64("est", &est) || !fields.GetI64("init", &init) ||
      !fields.GetU64("time", &t) || !fields.GetU64("clk", &clk) ||
      !fields.GetI64PairList("sites", sites_.size(), &site_pairs) ||
      !fields.GetString("cost", &cost_text) ||
      !net_->mutable_cost()->RestoreCounts(cost_text)) {
    if (error != nullptr) *error = "corrupt periodic tracker state";
    return false;
  }
  if (init != initial_value_) {
    if (error != nullptr) {
      *error = "state was taken with initial_value=" + std::to_string(init) +
               ", this tracker was constructed with " +
               std::to_string(initial_value_);
    }
    return false;
  }
  for (size_t i = 0; i < sites_.size(); ++i) {
    if (site_pairs[i].first < 0) {
      if (error != nullptr) *error = "corrupt periodic tracker state";
      return false;
    }
    sites_[i].arrivals = static_cast<uint64_t>(site_pairs[i].first);
    sites_[i].pending = site_pairs[i].second;
  }
  estimate_ = est;
  net_->RestoreClock(clk);
  AdvanceTime(t);
  return true;
}

std::string PeriodicTracker::name() const { return "periodic"; }

VARSTREAM_REGISTER_TRACKER("periodic", PeriodicTracker)

}  // namespace varstream
