#include "baseline/periodic_tracker.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "common/math_util.h"
#include "core/registry.h"

namespace varstream {

PeriodicTracker::PeriodicTracker(const TrackerOptions& options)
    : PeriodicTracker(options, options.period) {}

PeriodicTracker::PeriodicTracker(const TrackerOptions& options,
                                 uint64_t period)
    : DistributedTracker(options.num_sites, UpdateSupport::kArbitrary),
      net_(std::make_unique<SimNetwork>(options.num_sites)),
      period_(period),
      sites_(options.num_sites),
      estimate_(options.initial_value),
      initial_value_(options.initial_value) {
  assert(period >= 1);
}

void PeriodicTracker::DoPush(uint32_t site, int64_t delta) {
  net_->Tick(AbsU64(delta));
  SiteState& s = sites_[site];
  s.pending += delta;
  if (++s.arrivals >= period_) {
    net_->SendToCoordinator(site, MessageKind::kSync);
    estimate_ += s.pending;
    s.pending = 0;
    s.arrivals = 0;
  }
}

void PeriodicTracker::MergeFrom(const DistributedTracker& other) {
  const PeriodicTracker& peer = CheckedMergePeer(*this, other);
  estimate_ += peer.estimate_ - peer.initial_value_;
  net_->mutable_cost()->Merge(peer.cost());
  AdvanceTime(peer.time());
}

std::string PeriodicTracker::SerializeState() const {
  return FormatMergeableState("periodic|T=" + std::to_string(period_),
                              num_sites(), std::to_string(estimate_), time(),
                              cost());
}

std::string PeriodicTracker::name() const { return "periodic"; }

VARSTREAM_REGISTER_TRACKER("periodic", PeriodicTracker)

}  // namespace varstream
