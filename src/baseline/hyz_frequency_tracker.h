// Baseline: Huang-Yi-Zhang's randomized item-frequency tracker for
// INSERT-ONLY streams (their extension of the sqrt(k)-counter to
// frequencies, discussed in Appendix H.0.3). Each arrival of item l at
// site i is forwarded with probability p (carrying the site's exact count
// c_il); the coordinator keeps the unbiased estimate c_il - 1 + 1/p.
// Rounds double when F1 doubles, exactly like the counting version.
//
// Appendix H.0.3's point, reproduced by bench_frequency: this achieves
// O((k + sqrt(k)/eps) log n) messages but its variance argument needs F1
// to grow monotonically — item deletions break it (the tracked variance
// at time t < n must stay within a constant of the variance at n). The
// paper's block-based tracker pays O(k/eps * v) instead but survives
// arbitrary deletions; whether sqrt(k)/eps * v is possible is open.

#ifndef VARSTREAM_BASELINE_HYZ_FREQUENCY_TRACKER_H_
#define VARSTREAM_BASELINE_HYZ_FREQUENCY_TRACKER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "core/options.h"
#include "net/network.h"

namespace varstream {

class HyzFrequencyTracker {
 public:
  explicit HyzFrequencyTracker(const TrackerOptions& options);

  /// Inserts one copy of `item` at `site` (insert-only model: delta is
  /// implicitly +1).
  void PushInsert(uint32_t site, uint64_t item);

  /// Coordinator's estimate of f_l(n); guaranteed within eps*F1(n) with
  /// constant probability per query, for insert-only streams.
  double EstimateItem(uint64_t item) const;

  const CostMeter& cost() const { return net_->cost(); }
  uint64_t time() const { return time_; }
  uint32_t num_sites() const { return options_.num_sites; }
  int64_t round_scale() const { return scale_; }
  double sample_probability() const { return p_; }
  std::string name() const { return "hyz-frequency"; }

 private:
  void StartRound();

  TrackerOptions options_;
  std::unique_ptr<SimNetwork> net_;
  Rng rng_;
  uint64_t time_ = 0;
  int64_t f1_ = 0;  // exact dataset size (insert-only: = time_)

  // Site state: exact per-item counts and their value at round start.
  std::vector<std::unordered_map<uint64_t, int64_t>> site_counts_;
  std::vector<std::unordered_map<uint64_t, int64_t>> round_base_;

  // Coordinator: per (site, item) round-start exacts + in-round estimates,
  // folded into one per-item aggregate for queries.
  std::unordered_map<uint64_t, double> coord_base_;  // exact at round start
  // In-round HYZ estimates per (site,item), keyed by site then item.
  std::vector<std::unordered_map<uint64_t, double>> coord_drift_;
  std::unordered_map<uint64_t, double> coord_drift_sum_;  // per item

  int64_t scale_ = 1;
  double p_ = 1.0;
};

}  // namespace varstream

#endif  // VARSTREAM_BASELINE_HYZ_FREQUENCY_TRACKER_H_
