// Baseline: the classic one-shot threshold countdown of Cormode,
// Muthukrishnan & Yi for INSERT-ONLY streams — the original solution to
// the (k, f, tau) problem that section 2 generalizes.
//
// Rounds: entering a round the coordinator knows the exact count f_j and
// gives every site a slack quota q_j = max(1, floor((tau - f_j) / (2k))).
// A site sends one signal bit per q_j arrivals; after the coordinator has
// collected k signals (>= (tau - f_j)/2 arrivals accounted), it polls all
// sites for exact counts and starts the next round with the gap at most
// halved (plus per-site remainders). Once the gap is < 2k the final round
// forwards every arrival, so detection fires exactly at f = tau.
// Total: O(k log(tau / k)) messages — independent of the stream length,
// but monotone-only and single-shot. The paper's ThresholdMonitor pays
// O(k v / eps) instead and in exchange survives deletions and re-arms
// after every crossing; bench_baselines prints the head-to-head.

#ifndef VARSTREAM_BASELINE_CMY_THRESHOLD_DETECTOR_H_
#define VARSTREAM_BASELINE_CMY_THRESHOLD_DETECTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/options.h"
#include "net/network.h"

namespace varstream {

class CmyThresholdDetector {
 public:
  /// Detects f reaching `tau` over insert-only streams. Requires tau >= 1.
  CmyThresholdDetector(const TrackerOptions& options, int64_t tau);

  /// Delivers one insertion (delta is implicitly +1) at `site`.
  void PushInsert(uint32_t site);

  /// True once f has reached tau; latches (one-shot).
  bool fired() const { return fired_; }

  /// The exact timestep at which the threshold was crossed (0 if not yet).
  uint64_t fired_at() const { return fired_at_; }

  const CostMeter& cost() const { return net_->cost(); }
  uint64_t time() const { return time_; }
  int64_t tau() const { return tau_; }
  uint64_t rounds() const { return rounds_; }
  std::string name() const { return "cmy-threshold"; }

 private:
  void StartRound();

  int64_t tau_;
  std::unique_ptr<SimNetwork> net_;
  uint64_t time_ = 0;
  int64_t exact_f_ = 0;  // ground truth (sum of site counts)
  bool fired_ = false;
  uint64_t fired_at_ = 0;
  uint64_t rounds_ = 0;

  int64_t round_base_ = 0;          // exact f at round start
  uint64_t quota_ = 1;              // per-site arrivals per signal
  bool exact_phase_ = false;        // final gap < 2k phase
  uint32_t signals_ = 0;            // signals received this round
  std::vector<uint64_t> site_unsignaled_;  // arrivals since last signal
  std::vector<uint64_t> site_counts_;      // exact per-site counts
};

}  // namespace varstream

#endif  // VARSTREAM_BASELINE_CMY_THRESHOLD_DETECTOR_H_
