// Baseline: each site batches updates and forwards the net drift every
// `period` local arrivals. Cheap (n/period messages) but offers *no*
// relative-error guarantee — the error experiments show exactly where this
// heuristic breaks on low-|f| and oscillating streams, which is the gap the
// paper's algorithms close.

#ifndef VARSTREAM_BASELINE_PERIODIC_TRACKER_H_
#define VARSTREAM_BASELINE_PERIODIC_TRACKER_H_

#include <memory>
#include <vector>

#include "core/options.h"
#include "core/tracker.h"
#include "net/network.h"

namespace varstream {

class PeriodicTracker : public DistributedTracker {
 public:
  /// Requires period >= 1.
  PeriodicTracker(const TrackerOptions& options, uint64_t period);

  void Push(uint32_t site, int64_t delta) override;
  double Estimate() const override {
    return static_cast<double>(estimate_);
  }
  const CostMeter& cost() const override { return net_->cost(); }
  uint64_t time() const override { return time_; }
  uint32_t num_sites() const override { return net_->num_sites(); }
  std::string name() const override;

  uint64_t period() const { return period_; }

 private:
  struct SiteState {
    uint64_t arrivals = 0;
    int64_t pending = 0;
  };

  std::unique_ptr<SimNetwork> net_;
  uint64_t period_;
  std::vector<SiteState> sites_;
  int64_t estimate_;
  uint64_t time_ = 0;
};

}  // namespace varstream

#endif  // VARSTREAM_BASELINE_PERIODIC_TRACKER_H_
