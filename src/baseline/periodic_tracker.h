// Baseline: each site batches updates and forwards the net drift every
// `period` local arrivals. Cheap (n/period messages) but offers *no*
// relative-error guarantee — the error experiments show exactly where this
// heuristic breaks on low-|f| and oscillating streams, which is the gap the
// paper's algorithms close.

#ifndef VARSTREAM_BASELINE_PERIODIC_TRACKER_H_
#define VARSTREAM_BASELINE_PERIODIC_TRACKER_H_

#include <memory>
#include <vector>

#include "core/mergeable.h"
#include "core/options.h"
#include "core/tracker.h"
#include "net/network.h"

namespace varstream {

class PeriodicTracker : public DistributedTracker, public Mergeable {
 public:
  /// Uses options.period (>= 1) as the sync period.
  explicit PeriodicTracker(const TrackerOptions& options);

  /// Explicit-period form; requires period >= 1.
  PeriodicTracker(const TrackerOptions& options, uint64_t period);

  double Estimate() const override {
    return static_cast<double>(estimate_);
  }
  const CostMeter& cost() const override { return net_->cost(); }
  std::string name() const override;

  uint64_t period() const { return period_; }

  /// Sync decisions are a pure per-site function (local arrival count mod
  /// period), so the merge over a disjoint site partition reproduces the
  /// serial tracker byte for byte.
  void MergeFrom(const DistributedTracker& other) override;
  std::string SerializeState() const override;
  bool RestoreState(const std::string& state, std::string* error) override;

 protected:
  /// Arbitrary deltas are native: one arrival of any magnitude counts one
  /// step toward the period and accumulates the whole delta.
  void DoPush(uint32_t site, int64_t delta) override;

 private:
  struct SiteState {
    uint64_t arrivals = 0;
    int64_t pending = 0;
  };

  std::unique_ptr<SimNetwork> net_;
  uint64_t period_;
  std::vector<SiteState> sites_;
  int64_t estimate_;
  int64_t initial_value_;
};

}  // namespace varstream

#endif  // VARSTREAM_BASELINE_PERIODIC_TRACKER_H_
