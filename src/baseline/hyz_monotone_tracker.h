// Baseline: the randomized monotone counter of Huang, Yi & Zhang [8]
// (simplified round structure). Insertion-only streams; guarantees
// P(|f - f̂| <= epsilon*f) >= 8/9 at all times with O((k + sqrt(k)/epsilon)
// log n) expected messages.
//
// Rounds: within a round with scale S (a lower bound on f), every arrival
// is forwarded with probability p = min{1, 3*sqrt(k) / (epsilon*S)},
// carrying the site's exact count c_i; the coordinator keeps the unbiased
// estimate ĉ_i = c_i - 1 + 1/p (Lemma 2.1 of HYZ: Var <= 1/p^2). When the
// estimate reaches 2S the coordinator resyncs every site (2k messages +
// k-message broadcast of the new p) and doubles S, so there are O(log f)
// rounds of expected cost 3*sqrt(k)/epsilon + 3k each.
//
// This is the O((k + sqrt(k)/eps) log n) comparison point of section 3 and
// the in-block estimator reused by the paper's randomized tracker.

#ifndef VARSTREAM_BASELINE_HYZ_MONOTONE_TRACKER_H_
#define VARSTREAM_BASELINE_HYZ_MONOTONE_TRACKER_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "core/options.h"
#include "core/tracker.h"
#include "net/network.h"

namespace varstream {

class HyzMonotoneTracker : public DistributedTracker {
 public:
  explicit HyzMonotoneTracker(const TrackerOptions& options);

  double Estimate() const override;
  const CostMeter& cost() const override { return net_->cost(); }
  std::string name() const override { return "hyz-monotone"; }

  /// Current round scale S and sampling probability p (for tests).
  int64_t round_scale() const { return scale_; }
  double sample_probability() const { return p_; }

 protected:
  /// Only delta = +1 reaches here (monotone model; the base class expands
  /// larger positive updates and rejects deletions).
  void DoPush(uint32_t site, int64_t delta) override;

 private:
  void StartRound(int64_t exact_f);

  double epsilon_;
  std::unique_ptr<SimNetwork> net_;
  Rng rng_;
  std::vector<uint64_t> site_count_;    // exact c_i at sites
  std::vector<uint64_t> round_base_;    // c_i at round start (known exactly)
  std::vector<double> coord_estimate_;  // ĉ_i - base_i for current round
  double coord_sum_ = 0.0;              // sum of in-round estimates
  int64_t base_f_ = 0;                  // exact f at round start
  int64_t scale_ = 1;                   // S
  double p_ = 1.0;
};

}  // namespace varstream

#endif  // VARSTREAM_BASELINE_HYZ_MONOTONE_TRACKER_H_
