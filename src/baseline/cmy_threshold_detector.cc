#include "baseline/cmy_threshold_detector.h"

#include <algorithm>
#include <cassert>

namespace varstream {

CmyThresholdDetector::CmyThresholdDetector(const TrackerOptions& options,
                                           int64_t tau)
    : tau_(tau),
      net_(std::make_unique<SimNetwork>(options.num_sites)),
      site_unsignaled_(options.num_sites, 0),
      site_counts_(options.num_sites, 0) {
  assert(tau >= 1);
  StartRound();
}

void CmyThresholdDetector::StartRound() {
  ++rounds_;
  round_base_ = exact_f_;
  int64_t gap = tau_ - round_base_;
  auto k = static_cast<int64_t>(net_->num_sites());
  exact_phase_ = gap < 2 * k;
  quota_ = exact_phase_
               ? 1
               : static_cast<uint64_t>(std::max<int64_t>(1, gap / (2 * k)));
  signals_ = 0;
  std::fill(site_unsignaled_.begin(), site_unsignaled_.end(), 0);
  net_->Broadcast(MessageKind::kBroadcast);
}

void CmyThresholdDetector::PushInsert(uint32_t site) {
  assert(site < site_unsignaled_.size());
  if (fired_) return;  // latched
  net_->Tick();
  ++time_;
  ++exact_f_;
  ++site_counts_[site];
  if (++site_unsignaled_[site] < quota_) return;

  site_unsignaled_[site] = 0;
  net_->SendToCoordinator(site, MessageKind::kSync, /*words=*/0);
  ++signals_;

  if (exact_phase_) {
    // Every arrival is signalled: the coordinator counts to tau exactly.
    if (round_base_ + static_cast<int64_t>(signals_) >= tau_) {
      fired_ = true;
      fired_at_ = time_;
    }
    return;
  }

  if (signals_ >= net_->num_sites()) {
    // Poll for exact counts; the unsignalled remainders are < quota per
    // site, so the gap at the new round start is at most half the old gap
    // plus k*quota <= old gap.
    int64_t total = 0;
    for (uint32_t i = 0; i < net_->num_sites(); ++i) {
      net_->SendToSite(i, MessageKind::kPollRequest, /*words=*/0);
      net_->SendToCoordinator(i, MessageKind::kPollReply);
      total += static_cast<int64_t>(site_counts_[i]);
    }
    exact_f_ = total;
    if (exact_f_ >= tau_) {
      // Can only happen by a hair (remainders); fire now.
      fired_ = true;
      fired_at_ = time_;
      return;
    }
    StartRound();
  }
}

}  // namespace varstream
