// Baseline: forward every update to the coordinator. Exact (zero error)
// with exactly n messages — the Theta(n) cost the variability framework is
// designed to beat whenever v(n) = o(n).

#ifndef VARSTREAM_BASELINE_NAIVE_TRACKER_H_
#define VARSTREAM_BASELINE_NAIVE_TRACKER_H_

#include <memory>

#include "core/mergeable.h"
#include "core/options.h"
#include "core/tracker.h"
#include "net/network.h"

namespace varstream {

class NaiveTracker : public DistributedTracker, public Mergeable {
 public:
  explicit NaiveTracker(const TrackerOptions& options);

  double Estimate() const override { return static_cast<double>(value_); }
  const CostMeter& cost() const override { return net_->cost(); }
  std::string name() const override { return "naive"; }

  /// The coordinator value is the exact per-site sum, so the merge over a
  /// disjoint site partition reproduces the serial tracker byte for byte.
  void MergeFrom(const DistributedTracker& other) override;
  std::string SerializeState() const override;
  bool RestoreState(const std::string& state, std::string* error) override;

 protected:
  /// Forwards the whole delta in one message — arbitrary magnitudes are
  /// native (a batched site would ship the aggregate anyway).
  void DoPush(uint32_t site, int64_t delta) override;

 private:
  std::unique_ptr<SimNetwork> net_;
  int64_t value_;
  int64_t initial_value_;
};

}  // namespace varstream

#endif  // VARSTREAM_BASELINE_NAIVE_TRACKER_H_
