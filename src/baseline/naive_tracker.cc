#include "baseline/naive_tracker.h"

#include <cassert>

namespace varstream {

NaiveTracker::NaiveTracker(const TrackerOptions& options)
    : net_(std::make_unique<SimNetwork>(options.num_sites)),
      value_(options.initial_value) {}

void NaiveTracker::Push(uint32_t site, int64_t delta) {
  assert(site < net_->num_sites());
  net_->Tick();
  ++time_;
  net_->SendToCoordinator(site, MessageKind::kSync);
  value_ += delta;
}

}  // namespace varstream
