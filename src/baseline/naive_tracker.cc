#include "baseline/naive_tracker.h"

#include <cassert>

#include "common/math_util.h"
#include "core/registry.h"

namespace varstream {

NaiveTracker::NaiveTracker(const TrackerOptions& options)
    : DistributedTracker(options.num_sites, UpdateSupport::kArbitrary),
      net_(std::make_unique<SimNetwork>(options.num_sites)),
      value_(options.initial_value) {}

void NaiveTracker::DoPush(uint32_t site, int64_t delta) {
  net_->Tick(AbsU64(delta));
  net_->SendToCoordinator(site, MessageKind::kSync);
  value_ += delta;
}

VARSTREAM_REGISTER_TRACKER("naive", NaiveTracker)

}  // namespace varstream
