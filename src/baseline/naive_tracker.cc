#include "baseline/naive_tracker.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "common/math_util.h"
#include "core/registry.h"
#include "core/state_codec.h"

namespace varstream {

NaiveTracker::NaiveTracker(const TrackerOptions& options)
    : DistributedTracker(options.num_sites, UpdateSupport::kArbitrary),
      net_(std::make_unique<SimNetwork>(options.num_sites)),
      value_(options.initial_value),
      initial_value_(options.initial_value) {}

void NaiveTracker::DoPush(uint32_t site, int64_t delta) {
  net_->Tick(AbsU64(delta));
  net_->SendToCoordinator(site, MessageKind::kSync);
  value_ += delta;
}

void NaiveTracker::MergeFrom(const DistributedTracker& other) {
  const NaiveTracker& peer = CheckedMergePeer(*this, other);
  value_ += peer.value_ - peer.initial_value_;
  net_->mutable_cost()->Merge(peer.cost());
  AdvanceTime(peer.time());
}

std::string NaiveTracker::SerializeState() const {
  std::string out = FormatMergeableState("naive", num_sites(),
                                         std::to_string(value_), time(),
                                         cost());
  AppendField(&out, "v", std::to_string(kTrackerStateVersion));
  AppendField(&out, "init", std::to_string(initial_value_));
  AppendField(&out, "clk", std::to_string(net_->now()));
  AppendField(&out, "cost", cost().SerializeCounts());
  return out;
}

bool NaiveTracker::RestoreState(const std::string& state,
                                std::string* error) {
  StateFields fields;
  if (!ParseTrackerState(state, "naive", num_sites(), time(), &fields,
                         error)) {
    return false;
  }
  int64_t est = 0, init = 0;
  uint64_t t = 0, clk = 0;
  std::string cost_text;
  if (!fields.GetI64("est", &est) || !fields.GetI64("init", &init) ||
      !fields.GetU64("time", &t) || !fields.GetU64("clk", &clk) ||
      !fields.GetString("cost", &cost_text) ||
      !net_->mutable_cost()->RestoreCounts(cost_text)) {
    if (error != nullptr) *error = "corrupt naive tracker state";
    return false;
  }
  if (init != initial_value_) {
    if (error != nullptr) {
      *error = "state was taken with initial_value=" + std::to_string(init) +
               ", this tracker was constructed with " +
               std::to_string(initial_value_);
    }
    return false;
  }
  value_ = est;
  net_->RestoreClock(clk);
  AdvanceTime(t);
  return true;
}

VARSTREAM_REGISTER_TRACKER("naive", NaiveTracker)

}  // namespace varstream
