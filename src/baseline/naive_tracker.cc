#include "baseline/naive_tracker.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "common/math_util.h"
#include "core/registry.h"

namespace varstream {

NaiveTracker::NaiveTracker(const TrackerOptions& options)
    : DistributedTracker(options.num_sites, UpdateSupport::kArbitrary),
      net_(std::make_unique<SimNetwork>(options.num_sites)),
      value_(options.initial_value),
      initial_value_(options.initial_value) {}

void NaiveTracker::DoPush(uint32_t site, int64_t delta) {
  net_->Tick(AbsU64(delta));
  net_->SendToCoordinator(site, MessageKind::kSync);
  value_ += delta;
}

void NaiveTracker::MergeFrom(const DistributedTracker& other) {
  const NaiveTracker& peer = CheckedMergePeer(*this, other);
  value_ += peer.value_ - peer.initial_value_;
  net_->mutable_cost()->Merge(peer.cost());
  AdvanceTime(peer.time());
}

std::string NaiveTracker::SerializeState() const {
  return FormatMergeableState("naive", num_sites(), std::to_string(value_),
                              time(), cost());
}

VARSTREAM_REGISTER_TRACKER("naive", NaiveTracker)

}  // namespace varstream
