// The CR-precis structure of Ganguly & Majumder [6][7]: a *deterministic*
// counter sketch. Row r holds p_r counters (p_r distinct primes) and maps
// item l to l mod p_r. Two distinct items of a universe of size U collide
// in at most log_{p_1}(U) rows, so with t rows the average-over-rows
// estimate errs by at most (log_{p_1}(U)/t) * F1 — no randomness involved.
// Appendix H sizes it as 3/eps rows of 6*log(U)/(eps*log(1/eps)) counters
// for error eps*F1/3; the average combiner keeps the sketch linear.

#ifndef VARSTREAM_SKETCH_CR_PRECIS_H_
#define VARSTREAM_SKETCH_CR_PRECIS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "sketch/counter_bank.h"

namespace varstream {

class CRPrecisSketch {
 public:
  /// `t` rows; the primes start at `min_width`.
  CRPrecisSketch(uint64_t t, uint64_t min_width);

  /// Appendix H sizing for a target epsilon and universe size:
  /// t = ceil(3/eps) rows, primes >= ceil(6*log2(U) / (eps*log2(1/eps))).
  static CRPrecisSketch ForEpsilon(double epsilon, uint64_t universe);

  void Update(uint64_t item, int64_t delta);

  /// Linear (average over rows) point estimate — the variant Appendix H
  /// uses so the structure stays a linear sketch.
  double EstimateAvg(uint64_t item) const;

  /// Min over rows: the original Ganguly-Majumder estimator; an upper
  /// bound for nonnegative streams.
  int64_t EstimateMin(uint64_t item) const;

  void Merge(const CRPrecisSketch& other);

  /// Serializes primes and counters to a compact buffer.
  std::vector<uint8_t> Serialize() const;

  /// Parses a buffer from Serialize(). Returns false on malformed input.
  static bool Deserialize(const std::vector<uint8_t>& buffer,
                          std::unique_ptr<CRPrecisSketch>* out);

  /// Deterministic worst-case point error as a fraction of F1 for the
  /// given universe size.
  double GuaranteedErrorFraction(uint64_t universe) const {
    return mapper_->GuaranteedErrorFraction(universe);
  }

  uint64_t rows() const { return mapper_->rows(); }
  uint64_t total_counters() const { return bank_.total_counters(); }
  uint64_t SpaceBits() const { return bank_.SpaceBits(); }
  const CRPrecisMapper& mapper() const { return *mapper_; }

 private:
  std::shared_ptr<CRPrecisMapper> mapper_;
  CounterBank bank_;
};

}  // namespace varstream

#endif  // VARSTREAM_SKETCH_CR_PRECIS_H_
