#include "sketch/counter_bank.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

namespace varstream {

CounterBank::CounterBank(std::vector<uint64_t> row_widths) {
  offsets_.reserve(row_widths.size() + 1);
  offsets_.push_back(0);
  for (uint64_t w : row_widths) {
    assert(w >= 1);
    offsets_.push_back(offsets_.back() + w);
  }
  counters_.assign(offsets_.back(), 0);
}

void CounterBank::Clear() {
  std::fill(counters_.begin(), counters_.end(), 0);
}

void CounterBank::Merge(const CounterBank& other) {
  assert(offsets_ == other.offsets_);
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
}

std::vector<uint64_t> SketchMapper::RowWidths() const {
  std::vector<uint64_t> widths;
  widths.reserve(rows());
  for (uint64_t r = 0; r < rows(); ++r) widths.push_back(width(r));
  return widths;
}

CountMinMapper::CountMinMapper(uint64_t rows, uint64_t width, Rng* rng)
    : bank_(rows, width, rng) {
  assert(rows >= 1);
  assert(width >= 1);
}

CountMinMapper::CountMinMapper(std::vector<PairwiseHash> funcs)
    : bank_(std::move(funcs)) {}

double CountMinMapper::Combine(
    const std::vector<double>& row_estimates) const {
  assert(!row_estimates.empty());
  return *std::min_element(row_estimates.begin(), row_estimates.end());
}

CRPrecisMapper::CRPrecisMapper(uint64_t t, uint64_t min_width)
    : primes_(FirstPrimesAtLeast(std::max<uint64_t>(min_width, 2), t)) {
  assert(t >= 1);
}

double CRPrecisMapper::Combine(
    const std::vector<double>& row_estimates) const {
  assert(!row_estimates.empty());
  double sum = 0;
  for (double e : row_estimates) sum += e;
  return sum / static_cast<double>(row_estimates.size());
}

double CRPrecisMapper::GuaranteedErrorFraction(uint64_t universe) const {
  assert(universe >= 2);
  double c = std::floor(std::log(static_cast<double>(universe)) /
                        std::log(static_cast<double>(primes_.front())));
  return c / static_cast<double>(primes_.size());
}

std::vector<uint64_t> FirstPrimesAtLeast(uint64_t floor, uint64_t count) {
  auto is_prime = [](uint64_t x) {
    if (x < 2) return false;
    if (x % 2 == 0) return x == 2;
    for (uint64_t d = 3; d * d <= x; d += 2) {
      if (x % d == 0) return false;
    }
    return true;
  };
  std::vector<uint64_t> primes;
  primes.reserve(count);
  uint64_t candidate = std::max<uint64_t>(floor, 2);
  while (primes.size() < count) {
    if (is_prime(candidate)) primes.push_back(candidate);
    ++candidate;
  }
  return primes;
}

}  // namespace varstream
