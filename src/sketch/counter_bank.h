// Counter storage and item->bucket mappings shared by the sketches of
// Appendix H.0.2 and by the distributed sketch-frequency tracker, which
// runs the Appendix H tracking protocol over "virtual items" = sketch
// counters instead of real items.

#ifndef VARSTREAM_SKETCH_COUNTER_BANK_H_
#define VARSTREAM_SKETCH_COUNTER_BANK_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/hash.h"
#include "common/random.h"

namespace varstream {

/// Dense 2-D array of int64 counters with per-row widths (CR-precis rows
/// are sized by distinct primes, so widths differ per row).
class CounterBank {
 public:
  explicit CounterBank(std::vector<uint64_t> row_widths);

  uint64_t rows() const { return offsets_.size() - 1; }
  uint64_t width(uint64_t row) const {
    return offsets_[row + 1] - offsets_[row];
  }
  uint64_t total_counters() const { return counters_.size(); }

  int64_t& at(uint64_t row, uint64_t col) {
    return counters_[offsets_[row] + col];
  }
  int64_t at(uint64_t row, uint64_t col) const {
    return counters_[offsets_[row] + col];
  }

  /// Flat index of (row, col) in [0, total_counters()).
  uint64_t FlatIndex(uint64_t row, uint64_t col) const {
    return offsets_[row] + col;
  }

  int64_t& flat(uint64_t index) { return counters_[index]; }
  int64_t flat(uint64_t index) const { return counters_[index]; }

  /// Sets all counters to zero.
  void Clear();

  /// Adds another bank with identical shape.
  void Merge(const CounterBank& other);

  /// Storage cost in bits at `bits_per_counter` each.
  uint64_t SpaceBits(uint64_t bits_per_counter = 64) const {
    return total_counters() * bits_per_counter;
  }

 private:
  std::vector<uint64_t> offsets_;  // rows()+1 prefix offsets
  std::vector<int64_t> counters_;
};

/// Maps items to one bucket per row and combines per-row estimates into a
/// point estimate. Implementations: Count-Min (pairwise hashing, min) and
/// CR-precis (mod distinct primes, average).
class SketchMapper {
 public:
  virtual ~SketchMapper() = default;

  virtual uint64_t rows() const = 0;
  virtual uint64_t width(uint64_t row) const = 0;
  virtual uint64_t Bucket(uint64_t row, uint64_t item) const = 0;

  /// Combines the per-row counter estimates for an item.
  virtual double Combine(const std::vector<double>& row_estimates) const = 0;

  virtual std::string name() const = 0;

  /// Row widths in order (convenience for building a matching bank).
  std::vector<uint64_t> RowWidths() const;
};

/// Count-Min mapping: `rows` pairwise-independent hash functions into
/// `width` buckets; combine = min (valid upper bound for nonnegative
/// streams). The Appendix H partition uses rows = 1, width = ceil(27/eps).
class CountMinMapper : public SketchMapper {
 public:
  CountMinMapper(uint64_t rows, uint64_t width, Rng* rng);

  /// Builds from explicit hash functions (deserialization).
  explicit CountMinMapper(std::vector<PairwiseHash> funcs);

  const PairwiseHash& function(uint64_t row) const {
    return bank_.function(row);
  }

  uint64_t rows() const override { return bank_.rows(); }
  uint64_t width(uint64_t) const override { return bank_.width(); }
  uint64_t Bucket(uint64_t row, uint64_t item) const override {
    return bank_.Hash(row, item);
  }
  double Combine(const std::vector<double>& row_estimates) const override;
  std::string name() const override { return "count-min"; }

 private:
  HashBank bank_;
};

/// CR-precis mapping (Ganguly & Majumder): row r maps item to
/// item mod p_r for distinct primes p_1 < ... < p_t, each >= min_width;
/// combine = average (the linear-sketch variant noted in Appendix H).
/// Deterministic: two distinct items of a universe of size U collide in at
/// most log_{p_1}(U) rows, so the average estimate has error at most
/// (log_{p_1}(U) / t) * F1.
class CRPrecisMapper : public SketchMapper {
 public:
  /// Requires t >= 1, min_width >= 2.
  CRPrecisMapper(uint64_t t, uint64_t min_width);

  uint64_t rows() const override { return primes_.size(); }
  uint64_t width(uint64_t row) const override { return primes_[row]; }
  uint64_t Bucket(uint64_t row, uint64_t item) const override {
    return item % primes_[row];
  }
  double Combine(const std::vector<double>& row_estimates) const override;
  std::string name() const override { return "cr-precis"; }

  const std::vector<uint64_t>& primes() const { return primes_; }

  /// The deterministic error fraction c/t with c = floor(log(universe) /
  /// log(smallest prime)): point-estimate error is at most this times F1.
  double GuaranteedErrorFraction(uint64_t universe) const;

 private:
  std::vector<uint64_t> primes_;
};

/// The first `count` primes >= floor, in increasing order.
std::vector<uint64_t> FirstPrimesAtLeast(uint64_t floor, uint64_t count);

}  // namespace varstream

#endif  // VARSTREAM_SKETCH_COUNTER_BANK_H_
