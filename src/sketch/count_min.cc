#include "sketch/count_min.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace varstream {

namespace {

template <typename T>
void AppendLE(std::vector<uint8_t>* buf, T value) {
  for (size_t i = 0; i < sizeof(T); ++i) {
    buf->push_back(static_cast<uint8_t>(
        (static_cast<uint64_t>(value) >> (8 * i)) & 0xFF));
  }
}

template <typename T>
bool ReadLE(const std::vector<uint8_t>& buf, size_t* pos, T* out) {
  if (*pos + sizeof(T) > buf.size()) return false;
  uint64_t v = 0;
  for (size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<uint64_t>(buf[*pos + i]) << (8 * i);
  }
  *pos += sizeof(T);
  *out = static_cast<T>(v);
  return true;
}

constexpr uint32_t kCountMinMagic = 0x434D534B;  // "CMSK"

}  // namespace

CountMinSketch::CountMinSketch(uint64_t rows, uint64_t width, Rng* rng)
    : mapper_(std::make_shared<CountMinMapper>(rows, width, rng)),
      bank_(mapper_->RowWidths()) {}

CountMinSketch::CountMinSketch(std::shared_ptr<CountMinMapper> mapper)
    : mapper_(std::move(mapper)), bank_(mapper_->RowWidths()) {}

CountMinSketch CountMinSketch::PartitionForEpsilon(double epsilon, Rng* rng) {
  assert(epsilon > 0 && epsilon <= 1);
  auto width = static_cast<uint64_t>(std::ceil(27.0 / epsilon));
  return CountMinSketch(1, width, rng);
}

CountMinSketch CountMinSketch::ForErrorProbability(double epsilon,
                                                   double delta, Rng* rng) {
  assert(epsilon > 0 && epsilon <= 1);
  assert(delta > 0 && delta < 1);
  auto width =
      static_cast<uint64_t>(std::ceil(std::exp(1.0) / epsilon));
  auto rows = static_cast<uint64_t>(std::ceil(std::log(1.0 / delta)));
  return CountMinSketch(std::max<uint64_t>(rows, 1), width, rng);
}

void CountMinSketch::Update(uint64_t item, int64_t delta) {
  for (uint64_t r = 0; r < mapper_->rows(); ++r) {
    bank_.at(r, mapper_->Bucket(r, item)) += delta;
  }
}

int64_t CountMinSketch::EstimateMin(uint64_t item) const {
  int64_t best = bank_.at(0, mapper_->Bucket(0, item));
  for (uint64_t r = 1; r < mapper_->rows(); ++r) {
    best = std::min(best, bank_.at(r, mapper_->Bucket(r, item)));
  }
  return best;
}

int64_t CountMinSketch::EstimateMedian(uint64_t item) const {
  std::vector<int64_t> values;
  values.reserve(mapper_->rows());
  for (uint64_t r = 0; r < mapper_->rows(); ++r) {
    values.push_back(bank_.at(r, mapper_->Bucket(r, item)));
  }
  auto mid = values.begin() + static_cast<int64_t>(values.size() / 2);
  std::nth_element(values.begin(), mid, values.end());
  return *mid;
}

void CountMinSketch::Merge(const CountMinSketch& other) {
  assert(mapper_ == other.mapper_ ||
         (rows() == other.rows() && width() == other.width()));
  bank_.Merge(other.bank_);
}

std::vector<uint8_t> CountMinSketch::Serialize() const {
  std::vector<uint8_t> buf;
  uint64_t rows = mapper_->rows();
  uint64_t width = mapper_->width(0);
  buf.reserve(24 + rows * 16 + rows * width * 8);
  AppendLE<uint32_t>(&buf, kCountMinMagic);
  AppendLE<uint64_t>(&buf, rows);
  AppendLE<uint64_t>(&buf, width);
  for (uint64_t r = 0; r < rows; ++r) {
    AppendLE<uint64_t>(&buf, mapper_->function(r).a());
    AppendLE<uint64_t>(&buf, mapper_->function(r).b());
  }
  for (uint64_t i = 0; i < bank_.total_counters(); ++i) {
    AppendLE<int64_t>(&buf, bank_.flat(i));
  }
  return buf;
}

bool CountMinSketch::Deserialize(const std::vector<uint8_t>& buffer,
                                 std::unique_ptr<CountMinSketch>* out) {
  size_t pos = 0;
  uint32_t magic = 0;
  if (!ReadLE(buffer, &pos, &magic) || magic != kCountMinMagic) return false;
  uint64_t rows = 0, width = 0;
  if (!ReadLE(buffer, &pos, &rows)) return false;
  if (!ReadLE(buffer, &pos, &width)) return false;
  if (rows == 0 || width == 0) return false;
  // Bound the shape by the remaining bytes: rows*(a,b) + rows*width
  // counters must fit.
  if ((buffer.size() - pos) / 16 < rows) return false;
  std::vector<PairwiseHash> funcs;
  funcs.reserve(rows);
  for (uint64_t r = 0; r < rows; ++r) {
    uint64_t a = 0, b = 0;
    if (!ReadLE(buffer, &pos, &a)) return false;
    if (!ReadLE(buffer, &pos, &b)) return false;
    if (a == 0 || a >= kMersenne61 || b >= kMersenne61) return false;
    funcs.emplace_back(a, b, width);
  }
  if ((buffer.size() - pos) / 8 < rows * width) return false;
  auto sketch = std::unique_ptr<CountMinSketch>(new CountMinSketch(
      std::make_shared<CountMinMapper>(std::move(funcs))));
  for (uint64_t i = 0; i < rows * width; ++i) {
    int64_t value = 0;
    if (!ReadLE(buffer, &pos, &value)) return false;
    sketch->bank_.flat(i) = value;
  }
  *out = std::move(sketch);
  return true;
}

int64_t CountMinSketch::RowMass(uint64_t row) const {
  int64_t mass = 0;
  for (uint64_t c = 0; c < bank_.width(row); ++c) mass += bank_.at(row, c);
  return mass;
}

}  // namespace varstream
