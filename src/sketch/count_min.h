// The Count-Min sketch of Cormode & Muthukrishnan [3], the randomized
// small-space substrate of Appendix H.0.2. For a nonnegative frequency
// vector with mass F1, a sketch of `rows` pairwise-independent rows and
// `width` buckets answers point queries with one-sided error:
//   f_l <= EstimateMin(l) <= f_l + 2*F1/width   w.p. >= 1 - 2^-rows.
// Appendix H uses the single-row partition variant with width 27/epsilon,
// which gives error <= epsilon*F1/3 with probability >= 8/9 per query.

#ifndef VARSTREAM_SKETCH_COUNT_MIN_H_
#define VARSTREAM_SKETCH_COUNT_MIN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "sketch/counter_bank.h"

namespace varstream {

class CountMinSketch {
 public:
  /// General sketch: `rows` x `width` counters.
  CountMinSketch(uint64_t rows, uint64_t width, Rng* rng);

  /// Appendix H's single-row partition: width = ceil(27/epsilon), rows = 1.
  /// Point error <= epsilon*F1/3 with probability >= 8/9.
  static CountMinSketch PartitionForEpsilon(double epsilon, Rng* rng);

  /// Classic parameterization: error <= (e/width_factor)*F1 w.p. 1-delta,
  /// i.e. width = ceil(e/eps), rows = ceil(ln(1/delta)).
  static CountMinSketch ForErrorProbability(double epsilon, double delta,
                                            Rng* rng);

  /// Adds `delta` (may be negative in turnstile streams) to item's cells.
  void Update(uint64_t item, int64_t delta);

  /// Point query for strict/nonnegative streams: min over rows. Upper
  /// bounds the true frequency when all frequencies are nonnegative.
  int64_t EstimateMin(uint64_t item) const;

  /// Point query for general turnstile streams: median over rows.
  int64_t EstimateMedian(uint64_t item) const;

  /// Merges a sketch built with the same mapper (same seed/shape).
  void Merge(const CountMinSketch& other);

  /// Serializes shape, hash coefficients, and counters to a compact
  /// buffer — a site can build a sketch locally and ship it.
  std::vector<uint8_t> Serialize() const;

  /// Parses a buffer from Serialize(). Returns false on malformed input.
  /// The reconstructed sketch uses the identical hash functions, so
  /// merged/compared estimates are exact across the wire.
  static bool Deserialize(const std::vector<uint8_t>& buffer,
                          std::unique_ptr<CountMinSketch>* out);

  /// Total mass currently in one row (= F1 for insert-only streams).
  int64_t RowMass(uint64_t row = 0) const;

  uint64_t rows() const { return mapper_->rows(); }
  uint64_t width() const { return mapper_->width(0); }
  uint64_t SpaceBits() const { return bank_.SpaceBits(); }

  const CountMinMapper& mapper() const { return *mapper_; }

 private:
  explicit CountMinSketch(std::shared_ptr<CountMinMapper> mapper);

  std::shared_ptr<CountMinMapper> mapper_;  // shared so Merge can verify
  CounterBank bank_;
};

}  // namespace varstream

#endif  // VARSTREAM_SKETCH_COUNT_MIN_H_
