#include "sketch/cr_precis.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace varstream {

namespace {

template <typename T>
void AppendLE(std::vector<uint8_t>* buf, T value) {
  for (size_t i = 0; i < sizeof(T); ++i) {
    buf->push_back(static_cast<uint8_t>(
        (static_cast<uint64_t>(value) >> (8 * i)) & 0xFF));
  }
}

template <typename T>
bool ReadLE(const std::vector<uint8_t>& buf, size_t* pos, T* out) {
  if (*pos + sizeof(T) > buf.size()) return false;
  uint64_t v = 0;
  for (size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<uint64_t>(buf[*pos + i]) << (8 * i);
  }
  *pos += sizeof(T);
  *out = static_cast<T>(v);
  return true;
}

constexpr uint32_t kCrPrecisMagic = 0x43525053;  // "CRPS"

}  // namespace

CRPrecisSketch::CRPrecisSketch(uint64_t t, uint64_t min_width)
    : mapper_(std::make_shared<CRPrecisMapper>(t, min_width)),
      bank_(mapper_->RowWidths()) {}

CRPrecisSketch CRPrecisSketch::ForEpsilon(double epsilon, uint64_t universe) {
  assert(epsilon > 0 && epsilon < 1);
  assert(universe >= 2);
  auto t = static_cast<uint64_t>(std::ceil(3.0 / epsilon));
  double log_u = std::log2(static_cast<double>(universe));
  double log_inv_eps = std::max(std::log2(1.0 / epsilon), 1.0);
  auto min_width = static_cast<uint64_t>(
      std::ceil(6.0 * log_u / (epsilon * log_inv_eps)));
  return CRPrecisSketch(t, std::max<uint64_t>(min_width, 2));
}

void CRPrecisSketch::Update(uint64_t item, int64_t delta) {
  for (uint64_t r = 0; r < mapper_->rows(); ++r) {
    bank_.at(r, mapper_->Bucket(r, item)) += delta;
  }
}

double CRPrecisSketch::EstimateAvg(uint64_t item) const {
  double sum = 0;
  for (uint64_t r = 0; r < mapper_->rows(); ++r) {
    sum += static_cast<double>(bank_.at(r, mapper_->Bucket(r, item)));
  }
  return sum / static_cast<double>(mapper_->rows());
}

int64_t CRPrecisSketch::EstimateMin(uint64_t item) const {
  int64_t best = bank_.at(0, mapper_->Bucket(0, item));
  for (uint64_t r = 1; r < mapper_->rows(); ++r) {
    best = std::min(best, bank_.at(r, mapper_->Bucket(r, item)));
  }
  return best;
}

void CRPrecisSketch::Merge(const CRPrecisSketch& other) {
  assert(mapper_->primes() == other.mapper_->primes());
  bank_.Merge(other.bank_);
}

std::vector<uint8_t> CRPrecisSketch::Serialize() const {
  // The prime table is fully determined by (t, p0): FirstPrimesAtLeast
  // regenerates it, so only the seed pair ships with the counters.
  std::vector<uint8_t> buf;
  buf.reserve(28 + bank_.total_counters() * 8);
  AppendLE<uint32_t>(&buf, kCrPrecisMagic);
  AppendLE<uint64_t>(&buf, mapper_->rows());
  AppendLE<uint64_t>(&buf, mapper_->primes().front());
  for (uint64_t i = 0; i < bank_.total_counters(); ++i) {
    AppendLE<int64_t>(&buf, bank_.flat(i));
  }
  return buf;
}

bool CRPrecisSketch::Deserialize(const std::vector<uint8_t>& buffer,
                                 std::unique_ptr<CRPrecisSketch>* out) {
  size_t pos = 0;
  uint32_t magic = 0;
  if (!ReadLE(buffer, &pos, &magic) || magic != kCrPrecisMagic) {
    return false;
  }
  uint64_t rows = 0, p0 = 0;
  if (!ReadLE(buffer, &pos, &rows)) return false;
  if (!ReadLE(buffer, &pos, &p0)) return false;
  if (rows == 0 || p0 < 2) return false;
  // Reject shapes that cannot fit before regenerating primes: each row
  // has at least p0 counters of 8 bytes.
  if ((buffer.size() - pos) / 8 < rows * p0) return false;
  auto sketch = std::make_unique<CRPrecisSketch>(rows, p0);
  if (sketch->mapper().primes().front() != p0) return false;  // p0 not prime
  uint64_t total = sketch->total_counters();
  if ((buffer.size() - pos) / 8 < total) return false;
  for (uint64_t i = 0; i < total; ++i) {
    int64_t value = 0;
    if (!ReadLE(buffer, &pos, &value)) return false;
    sketch->bank_.flat(i) = value;
  }
  *out = std::move(sketch);
  return true;
}

}  // namespace varstream
