// Message taxonomy for the distributed monitoring simulation. The paper's
// cost model counts messages of O(log n) bits between the k sites and the
// coordinator; we tag every send with a kind so benchmarks can split the
// block-partitioning traffic (section 3.1) from the in-block tracking
// traffic (sections 3.3 / 3.4) and end-of-block reports (Appendix H).

#ifndef VARSTREAM_NET_MESSAGE_H_
#define VARSTREAM_NET_MESSAGE_H_

#include <cstdint>

namespace varstream {

/// Classifies every message in the protocols.
enum class MessageKind : uint8_t {
  kCiReport = 0,        // site -> coordinator: block-partition count report
  kPollRequest,         // coordinator -> site: end-of-block poll
  kPollReply,           // site -> coordinator: exact (ci, fi) reply
  kBroadcast,           // coordinator -> site: new scale r (one per site)
  kDrift,               // site -> coordinator: in-block drift message
  kEndOfBlockReport,    // site -> coordinator: heavy counter report (App. H)
  kSync,                // baseline synchronization messages
  kWire,                // real client<->server frames (src/service/), in
                        // actual wire bytes rather than model O(log n) bits
  kNumKinds,            // sentinel
};

/// Short label for tables.
const char* MessageKindName(MessageKind kind);

/// Payload sizing helpers. The theory charges O(log n) bits per message;
/// we charge an explicit header plus a machine word so bit totals are an
/// interpretable affine function of the message count.
inline constexpr uint64_t kHeaderBits = 24;  // site id (16) + kind tag (8)
inline constexpr uint64_t kWordBits = 64;    // one counter value

/// Bits for a message carrying `words` counter values.
inline constexpr uint64_t MessageBits(uint64_t words) {
  return kHeaderBits + words * kWordBits;
}

}  // namespace varstream

#endif  // VARSTREAM_NET_MESSAGE_H_
