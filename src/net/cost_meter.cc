#include "net/cost_meter.h"

#include <cassert>
#include <cstdlib>
#include <numeric>

namespace varstream {

const char* MessageKindName(MessageKind kind) {
  switch (kind) {
    case MessageKind::kCiReport:
      return "ci";
    case MessageKind::kPollRequest:
      return "poll";
    case MessageKind::kPollReply:
      return "reply";
    case MessageKind::kBroadcast:
      return "bcast";
    case MessageKind::kDrift:
      return "drift";
    case MessageKind::kEndOfBlockReport:
      return "eob";
    case MessageKind::kSync:
      return "sync";
    case MessageKind::kWire:
      return "wire";
    case MessageKind::kNumKinds:
      break;
  }
  return "?";
}

void CostMeter::Count(MessageKind kind, uint64_t bits_each, uint64_t count) {
  auto idx = static_cast<size_t>(kind);
  assert(idx < kKinds);
  const uint64_t bits_total = bits_each * count;
  // The counters are plain uint64_t accumulated from tracker hot paths;
  // silent wraparound would corrupt every downstream cost comparison, so
  // debug builds trip on it — both on the product and on the running
  // sums (a real run is ~2^64 messages away from the latter).
  assert((count == 0 || bits_total / count == bits_each) &&
         "CostMeter bit product overflow");
  messages_[idx] += count;
  bits_[idx] += bits_total;
  assert(messages_[idx] >= count && "CostMeter message counter overflow");
  assert(bits_[idx] >= bits_total && "CostMeter bit counter overflow");
}

uint64_t CostMeter::total_messages() const {
  return std::accumulate(messages_.begin(), messages_.end(), uint64_t{0});
}

uint64_t CostMeter::total_bits() const {
  return std::accumulate(bits_.begin(), bits_.end(), uint64_t{0});
}

uint64_t CostMeter::messages(MessageKind kind) const {
  return messages_[static_cast<size_t>(kind)];
}

uint64_t CostMeter::bits(MessageKind kind) const {
  return bits_[static_cast<size_t>(kind)];
}

uint64_t CostMeter::partition_messages() const {
  return messages(MessageKind::kCiReport) +
         messages(MessageKind::kPollRequest) +
         messages(MessageKind::kPollReply) +
         messages(MessageKind::kBroadcast);
}

uint64_t CostMeter::tracking_messages() const {
  return messages(MessageKind::kDrift) +
         messages(MessageKind::kEndOfBlockReport) +
         messages(MessageKind::kSync);
}

void CostMeter::Reset() {
  messages_.fill(0);
  bits_.fill(0);
}

void CostMeter::Merge(const CostMeter& other) {
  for (size_t i = 0; i < kKinds; ++i) {
    messages_[i] += other.messages_[i];
    bits_[i] += other.bits_[i];
    // Per-shard aggregation (core/sharded.cc) funnels through here; a
    // wrapped sum would silently report cheaper-than-serial totals.
    assert(messages_[i] >= other.messages_[i] &&
           "CostMeter merge overflowed a message counter");
    assert(bits_[i] >= other.bits_[i] &&
           "CostMeter merge overflowed a bit counter");
  }
}

std::string CostMeter::SerializeCounts() const {
  std::string out;
  for (size_t i = 0; i < kKinds; ++i) {
    if (!out.empty()) out += ',';
    out += std::to_string(messages_[i]);
    out += ':';
    out += std::to_string(bits_[i]);
  }
  return out;
}

bool CostMeter::RestoreCounts(const std::string& text) {
  std::array<uint64_t, kKinds> messages{};
  std::array<uint64_t, kKinds> bits{};
  size_t start = 0;
  for (size_t i = 0; i < kKinds; ++i) {
    size_t comma = text.find(',', start);
    bool last = comma == std::string::npos;
    // Exactly kKinds pairs: neither too few nor trailing segments.
    if (last != (i + 1 == kKinds)) return false;
    std::string pair =
        text.substr(start, last ? std::string::npos : comma - start);
    char* end = nullptr;
    messages[i] = std::strtoull(pair.c_str(), &end, 10);
    if (end == pair.c_str() || *end != ':') return false;
    const char* bits_text = end + 1;
    bits[i] = std::strtoull(bits_text, &end, 10);
    if (end == bits_text || *end != '\0') return false;
    start = last ? text.size() : comma + 1;
  }
  messages_ = messages;
  bits_ = bits;
  return true;
}

std::string CostMeter::Breakdown() const {
  std::string out;
  for (size_t i = 0; i < kKinds; ++i) {
    if (messages_[i] == 0) continue;
    if (!out.empty()) out += ' ';
    out += MessageKindName(static_cast<MessageKind>(i));
    out += '=';
    out += std::to_string(messages_[i]);
  }
  return out.empty() ? "none" : out;
}

}  // namespace varstream
