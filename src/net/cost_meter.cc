#include "net/cost_meter.h"

#include <numeric>

namespace varstream {

const char* MessageKindName(MessageKind kind) {
  switch (kind) {
    case MessageKind::kCiReport:
      return "ci";
    case MessageKind::kPollRequest:
      return "poll";
    case MessageKind::kPollReply:
      return "reply";
    case MessageKind::kBroadcast:
      return "bcast";
    case MessageKind::kDrift:
      return "drift";
    case MessageKind::kEndOfBlockReport:
      return "eob";
    case MessageKind::kSync:
      return "sync";
    case MessageKind::kNumKinds:
      break;
  }
  return "?";
}

void CostMeter::Count(MessageKind kind, uint64_t bits_each, uint64_t count) {
  auto idx = static_cast<size_t>(kind);
  messages_[idx] += count;
  bits_[idx] += bits_each * count;
}

uint64_t CostMeter::total_messages() const {
  return std::accumulate(messages_.begin(), messages_.end(), uint64_t{0});
}

uint64_t CostMeter::total_bits() const {
  return std::accumulate(bits_.begin(), bits_.end(), uint64_t{0});
}

uint64_t CostMeter::messages(MessageKind kind) const {
  return messages_[static_cast<size_t>(kind)];
}

uint64_t CostMeter::bits(MessageKind kind) const {
  return bits_[static_cast<size_t>(kind)];
}

uint64_t CostMeter::partition_messages() const {
  return messages(MessageKind::kCiReport) +
         messages(MessageKind::kPollRequest) +
         messages(MessageKind::kPollReply) +
         messages(MessageKind::kBroadcast);
}

uint64_t CostMeter::tracking_messages() const {
  return messages(MessageKind::kDrift) +
         messages(MessageKind::kEndOfBlockReport) +
         messages(MessageKind::kSync);
}

void CostMeter::Reset() {
  messages_.fill(0);
  bits_.fill(0);
}

void CostMeter::Merge(const CostMeter& other) {
  for (size_t i = 0; i < kKinds; ++i) {
    messages_[i] += other.messages_[i];
    bits_[i] += other.bits_[i];
  }
}

std::string CostMeter::Breakdown() const {
  std::string out;
  for (size_t i = 0; i < kKinds; ++i) {
    if (messages_[i] == 0) continue;
    if (!out.empty()) out += ' ';
    out += MessageKindName(static_cast<MessageKind>(i));
    out += '=';
    out += std::to_string(messages_[i]);
  }
  return out.empty() ? "none" : out;
}

}  // namespace varstream
