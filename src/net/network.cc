#include "net/network.h"

#include <cassert>

namespace varstream {

SimNetwork::SimNetwork(uint32_t num_sites) : num_sites_(num_sites) {
  assert(num_sites >= 1);
}

void SimNetwork::SendToCoordinator(uint32_t site, MessageKind kind,
                                   uint64_t words) {
  assert(site < num_sites_);
  cost_.Count(kind, MessageBits(words));
  if (logging_) log_.push_back({now_, kind, site, /*to_coordinator=*/true});
}

void SimNetwork::SendToSite(uint32_t site, MessageKind kind, uint64_t words) {
  assert(site < num_sites_);
  cost_.Count(kind, MessageBits(words));
  if (logging_) log_.push_back({now_, kind, site, /*to_coordinator=*/false});
}

void SimNetwork::Broadcast(MessageKind kind, uint64_t words) {
  cost_.Count(kind, MessageBits(words), num_sites_);
  if (logging_) {
    for (uint32_t s = 0; s < num_sites_; ++s) {
      log_.push_back({now_, kind, s, /*to_coordinator=*/false});
    }
  }
}

}  // namespace varstream
