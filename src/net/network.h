// SimNetwork: the star topology of the distributed monitoring model — k
// sites, one coordinator, synchronous reliable delivery. Delivery itself is
// a function call inside the trackers; SimNetwork centralizes the cost
// accounting and (optionally) an event log for debugging and tests.

#ifndef VARSTREAM_NET_NETWORK_H_
#define VARSTREAM_NET_NETWORK_H_

#include <cstdint>
#include <vector>

#include "net/cost_meter.h"
#include "net/message.h"

namespace varstream {

/// One logged message event (only recorded when logging is enabled).
struct MessageEvent {
  uint64_t time = 0;  // timestep at which the message was sent
  MessageKind kind = MessageKind::kDrift;
  uint32_t site = 0;          // site endpoint (sender or receiver)
  bool to_coordinator = true;  // direction
};

class SimNetwork {
 public:
  /// Requires num_sites >= 1.
  explicit SimNetwork(uint32_t num_sites);

  uint32_t num_sites() const { return num_sites_; }

  /// Advances the simulation clock; trackers call this once per unit
  /// arrival so logged events carry timestamps. Trackers that ingest a
  /// magnitude-m update in one step pass m to keep the clock aligned with
  /// the equivalent unit stream.
  void Tick(uint64_t steps = 1) { now_ += steps; }
  uint64_t now() const { return now_; }

  /// Rewinds/advances the clock to an absolute value — checkpoint restore
  /// only (core/mergeable.h RestoreState), where the restored tracker must
  /// resume with the serialized instance's exact clock.
  void RestoreClock(uint64_t now) { now_ = now; }

  /// Site -> coordinator message carrying `words` counter values.
  void SendToCoordinator(uint32_t site, MessageKind kind, uint64_t words = 1);

  /// Coordinator -> one site.
  void SendToSite(uint32_t site, MessageKind kind, uint64_t words = 1);

  /// Coordinator -> all sites; counts num_sites() messages, as the paper's
  /// model charges broadcasts per recipient.
  void Broadcast(MessageKind kind, uint64_t words = 1);

  const CostMeter& cost() const { return cost_; }
  CostMeter* mutable_cost() { return &cost_; }

  /// Enables the in-memory event log (off by default; tests only — the log
  /// grows with every message).
  void EnableLogging() { logging_ = true; }
  const std::vector<MessageEvent>& log() const { return log_; }

 private:
  uint32_t num_sites_;
  uint64_t now_ = 0;
  CostMeter cost_;
  bool logging_ = false;
  std::vector<MessageEvent> log_;
};

}  // namespace varstream

#endif  // VARSTREAM_NET_NETWORK_H_
