// Communication accounting: counts messages and bits per MessageKind.
// Every protocol in the library reports its cost exclusively through a
// CostMeter, which is what the reproduction experiments compare against the
// paper's bounds.

#ifndef VARSTREAM_NET_COST_METER_H_
#define VARSTREAM_NET_COST_METER_H_

#include <array>
#include <cstdint>
#include <string>

#include "net/message.h"

namespace varstream {

class CostMeter {
 public:
  CostMeter() = default;

  /// Records `count` messages of the given kind, each of `bits_each` bits.
  void Count(MessageKind kind, uint64_t bits_each, uint64_t count = 1);

  /// Total messages across all kinds.
  uint64_t total_messages() const;

  /// Total bits across all kinds.
  uint64_t total_bits() const;

  uint64_t messages(MessageKind kind) const;
  uint64_t bits(MessageKind kind) const;

  /// Messages attributable to the section 3.1 block partitioning
  /// (ci reports + polls + replies + broadcasts).
  uint64_t partition_messages() const;

  /// Messages attributable to in-block estimation (drift messages) and
  /// end-of-block counter reports.
  uint64_t tracking_messages() const;

  /// Resets all counters to zero.
  void Reset();

  /// Adds another meter's counts into this one.
  void Merge(const CostMeter& other);

  /// One-line breakdown, e.g. "ci=12 poll=4 reply=4 bcast=4 drift=37".
  std::string Breakdown() const;

  /// Complete per-kind dump "msgs:bits,msgs:bits,..." (one pair per
  /// MessageKind, enum order) and its exact inverse — the checkpoint
  /// representation (core/mergeable.h RestoreState). RestoreCounts
  /// replaces the meter's contents; it returns false (meter unchanged) on
  /// a malformed token or a pair-count mismatch.
  std::string SerializeCounts() const;
  bool RestoreCounts(const std::string& text);

 private:
  static constexpr size_t kKinds =
      static_cast<size_t>(MessageKind::kNumKinds);
  std::array<uint64_t, kKinds> messages_{};
  std::array<uint64_t, kKinds> bits_{};
};

}  // namespace varstream

#endif  // VARSTREAM_NET_COST_METER_H_
