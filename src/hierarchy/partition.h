// Site-range partitioning for the two-level hierarchy (root + leaves).
//
// The root assigns leaf i the contiguous global range
//     [ floor(i*k/N), floor((i+1)*k/N) )
// of the k sites: ranges are disjoint, cover [0, k), and differ in size
// by at most one. When k < N the trailing leaves get empty ranges and
// simply host no partition of that session.
//
// The same helper feeds the root's batch demux, varstream_loadgen's
// --topology mode, and the testkit hierarchy oracle, so every layer
// agrees on who owns which site.

#ifndef VARSTREAM_HIERARCHY_PARTITION_H_
#define VARSTREAM_HIERARCHY_PARTITION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "stream/update.h"

namespace varstream {

/// A half-open range [lo, hi) of global site ids.
struct SiteRange {
  uint32_t lo = 0;
  uint32_t hi = 0;

  uint32_t size() const { return hi - lo; }
  bool empty() const { return hi == lo; }
  bool Contains(uint32_t site) const { return site >= lo && site < hi; }
};

/// The canonical leaf assignment for k sites over N leaves (see file
/// comment). num_leaves must be >= 1.
inline std::vector<SiteRange> PartitionSites(uint32_t num_sites,
                                             uint32_t num_leaves) {
  std::vector<SiteRange> ranges(num_leaves);
  for (uint32_t i = 0; i < num_leaves; ++i) {
    ranges[i].lo = static_cast<uint32_t>(
        static_cast<uint64_t>(i) * num_sites / num_leaves);
    ranges[i].hi = static_cast<uint32_t>(
        static_cast<uint64_t>(i + 1) * num_sites / num_leaves);
  }
  return ranges;
}

/// site -> owning leaf, precomputed so the per-update demux is one
/// indexed load (the ranges are contiguous, so this is just the ranges
/// unrolled).
inline std::vector<uint32_t> SiteOwners(const std::vector<SiteRange>& ranges,
                                        uint32_t num_sites) {
  std::vector<uint32_t> owner(num_sites, 0);
  for (uint32_t leaf = 0; leaf < ranges.size(); ++leaf) {
    for (uint32_t site = ranges[leaf].lo; site < ranges[leaf].hi; ++site) {
      owner[site] = leaf;
    }
  }
  return owner;
}

/// Splits `batch` into one sub-batch per leaf, remapping each update's
/// global site id to the leaf-local id (site - lo). Mirrors the sharded
/// engine's demux discipline: delta == 0 updates are dropped (they carry
/// no information and no clock), and stream order is preserved within
/// each leaf. `per_leaf` is resized to ranges.size(); existing contents
/// are cleared but keep their capacity, so steady-state demuxing never
/// reallocates.
inline void PartitionBatch(std::span<const CountUpdate> batch,
                           const std::vector<uint32_t>& owner,
                           const std::vector<SiteRange>& ranges,
                           std::vector<std::vector<CountUpdate>>* per_leaf) {
  per_leaf->resize(ranges.size());
  for (auto& sub : *per_leaf) sub.clear();
  for (const CountUpdate& u : batch) {
    if (u.delta == 0) continue;
    uint32_t leaf = owner[u.site];
    (*per_leaf)[leaf].push_back({u.site - ranges[leaf].lo, u.delta});
  }
}

}  // namespace varstream

#endif  // VARSTREAM_HIERARCHY_PARTITION_H_
