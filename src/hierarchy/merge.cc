#include "hierarchy/merge.h"

#include "core/mergeable.h"
#include "core/state_codec.h"
#include "net/cost_meter.h"

namespace varstream {

namespace {

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

}  // namespace

bool SpliceLeafStates(const std::string& tracker_name,
                      const TrackerOptions& options,
                      const std::vector<SiteRange>& ranges,
                      const std::vector<std::string>& leaf_states,
                      std::unique_ptr<ShardedTracker>* mirror,
                      std::string* error) {
  if (leaf_states.size() != ranges.size()) {
    if (error != nullptr) {
      *error = "splice got " + std::to_string(leaf_states.size()) +
               " leaf states for " + std::to_string(ranges.size()) +
               " ranges";
    }
    return false;
  }
  const std::string label = "sharded(" + tracker_name + ")";
  uint64_t total_time = 0;
  std::string site_lines;  // "\n  <site dump>" per global site, in order
  for (size_t leaf = 0; leaf < ranges.size(); ++leaf) {
    const SiteRange& range = ranges[leaf];
    if (range.empty()) continue;
    std::vector<std::string> lines = SplitLines(leaf_states[leaf]);
    if (lines.size() != static_cast<size_t>(range.size()) + 1) {
      if (error != nullptr) {
        *error = "leaf " + std::to_string(leaf) + " state has " +
                 std::to_string(lines.size() - 1) +
                 " per-site lines, its range [" + std::to_string(range.lo) +
                 ", " + std::to_string(range.hi) + ") has " +
                 std::to_string(range.size());
      }
      return false;
    }
    StateFields fields;
    std::string parse_error;
    if (!ParseTrackerState(lines[0], label, range.size(), /*tracker_time=*/0,
                           &fields, &parse_error)) {
      if (error != nullptr) {
        *error = "leaf " + std::to_string(leaf) + " state: " + parse_error;
      }
      return false;
    }
    uint64_t leaf_clock = 0;
    if (!fields.GetU64("time", &leaf_clock)) {
      if (error != nullptr) {
        *error = "leaf " + std::to_string(leaf) +
                 " state: corrupt engine header";
      }
      return false;
    }
    total_time += leaf_clock;
    // Leaf order IS global site order, and the per-site lines already
    // carry their "  " indent — splice them through verbatim.
    for (size_t i = 1; i < lines.size(); ++i) site_lines += "\n" + lines[i];
  }

  // Synthesize the full-range engine header the splice needs. Only the
  // label/k/v fields are validated and only time/init/merged/mtime/
  // extracost are consumed on restore (est/msgs/bits are recomputed from
  // the per-site state), so zeros for the merge-fold fields reproduce a
  // tracker that never called MergeFrom — exactly what an uninterrupted
  // single-process run is.
  auto engine = ShardedTracker::Create(tracker_name, options,
                                       /*num_shards=*/1, error);
  if (engine == nullptr) return false;
  std::string header = FormatMergeableState(label, options.num_sites, "0",
                                            total_time, CostMeter{});
  AppendField(&header, "v", std::to_string(kTrackerStateVersion));
  AppendField(&header, "init", std::to_string(options.initial_value));
  AppendField(&header, "merged", EncodeDoubleBits(0.0));
  AppendField(&header, "mtime", "0");
  AppendField(&header, "extracost", CostMeter{}.SerializeCounts());
  std::string restore_error;
  if (!engine->RestoreState(header + site_lines, &restore_error)) {
    if (error != nullptr) *error = "splice restore: " + restore_error;
    return false;
  }
  *mirror = std::move(engine);
  return true;
}

}  // namespace varstream
