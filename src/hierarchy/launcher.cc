#include "hierarchy/launcher.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "service/server.h"

namespace varstream {

namespace {

std::string LeafFile(const std::string& dir, uint32_t leaf,
                     const char* suffix) {
  return dir + "/leaf_" + std::to_string(leaf) + suffix;
}

bool FileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

// --- InProcessLauncher. ---

InProcessLauncher::InProcessLauncher(std::string work_dir)
    : work_dir_(std::move(work_dir)) {}

InProcessLauncher::~InProcessLauncher() = default;

std::string InProcessLauncher::CheckpointPath(uint32_t leaf) const {
  return LeafFile(work_dir_, leaf, ".ckpt");
}

bool InProcessLauncher::Launch(uint32_t leaf, bool restore,
                               LeafHandle* handle, std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  servers_.erase(leaf);  // fence any previous incarnation
  ServerOptions options;
  options.port = 0;
  options.checkpoint_path = CheckpointPath(leaf);
  if (restore) options.restore_path = options.checkpoint_path;
  options.history.capacity = 0;  // the root samples its own history
  auto server = std::make_unique<VarstreamServer>(options);
  if (!server->Start(error)) {
    if (error != nullptr) {
      *error = "leaf " + std::to_string(leaf) + ": " + *error;
    }
    return false;
  }
  handle->host = "127.0.0.1";
  handle->port = server->port();
  handle->pid = 0;
  servers_[leaf] = std::move(server);
  return true;
}

void InProcessLauncher::Kill(uint32_t leaf) {
  std::unique_ptr<VarstreamServer> doomed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = servers_.find(leaf);
    if (it == servers_.end()) return;
    doomed = std::move(it->second);
    servers_.erase(it);
  }
  // Destroyed outside the lock: Stop() joins connection threads, and a
  // concurrent Launch of another leaf must not wait on that.
  doomed.reset();
}

// --- ProcessLauncher. ---

ProcessLauncher::ProcessLauncher(Options options)
    : options_(std::move(options)) {}

ProcessLauncher::~ProcessLauncher() {
  std::vector<uint32_t> leaves;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [leaf, pid] : pids_) leaves.push_back(leaf);
  }
  for (uint32_t leaf : leaves) Kill(leaf);
}

bool ProcessLauncher::Launch(uint32_t leaf, bool restore, LeafHandle* handle,
                             std::string* error) {
  Kill(leaf);  // fence any previous incarnation
  const std::string ckpt = LeafFile(options_.work_dir, leaf, ".ckpt");
  const std::string log = LeafFile(options_.work_dir, leaf, ".log");
  if (restore && !FileExists(ckpt)) {
    if (error != nullptr) {
      *error = "leaf " + std::to_string(leaf) +
               ": restore requested but no checkpoint at " + ckpt;
    }
    return false;
  }
  std::vector<std::string> args = {
      options_.serve_binary,
      "--port=0",
      "--checkpoint-path=" + ckpt,
      "--history-capacity=0",  // the root samples its own history
  };
  if (restore) args.push_back("--restore=" + ckpt);

  // Truncate the per-leaf log BEFORE forking: the parent polls it for
  // the "listening on" line below, and a respawn after an external
  // kill -9 must never read the previous incarnation's (stale) port.
  int log_fd = ::open(log.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (log_fd < 0) {
    if (error != nullptr) {
      *error = "open(" + log + "): " + std::string(strerror(errno));
    }
    return false;
  }
  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(log_fd);
    if (error != nullptr) {
      *error = "fork(): " + std::string(strerror(errno));
    }
    return false;
  }
  if (pid == 0) {
    // Child: stdout+stderr to the per-leaf log.
    ::dup2(log_fd, STDOUT_FILENO);
    ::dup2(log_fd, STDERR_FILENO);
    if (log_fd > STDERR_FILENO) ::close(log_fd);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    std::fprintf(stderr, "execv(%s): %s\n", argv[0], strerror(errno));
    ::_exit(127);
  }
  ::close(log_fd);

  // Parent: wait for "listening on 127.0.0.1:<port>" in the log.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.start_timeout_ms);
  uint32_t port = 0;
  while (port == 0) {
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) {
      if (error != nullptr) {
        *error = "leaf " + std::to_string(leaf) + " (" +
                 options_.serve_binary + ") exited during startup; see " +
                 log;
      }
      return false;
    }
    FILE* f = std::fopen(log.c_str(), "rb");
    if (f != nullptr) {
      char line[256];
      while (std::fgets(line, sizeof(line), f) != nullptr) {
        if (std::sscanf(line, "listening on 127.0.0.1:%u", &port) == 1) {
          break;
        }
      }
      std::fclose(f);
    }
    if (port != 0) break;
    if (std::chrono::steady_clock::now() >= deadline) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
      if (error != nullptr) {
        *error = "leaf " + std::to_string(leaf) +
                 " did not report its port within " +
                 std::to_string(options_.start_timeout_ms) + " ms; see " +
                 log;
      }
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    pids_[leaf] = pid;
  }
  handle->host = "127.0.0.1";
  handle->port = static_cast<uint16_t>(port);
  handle->pid = static_cast<uint64_t>(pid);
  return true;
}

void ProcessLauncher::Kill(uint32_t leaf) {
  pid_t pid = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pids_.find(leaf);
    if (it == pids_.end()) return;
    pid = it->second;
    pids_.erase(it);
  }
  ::kill(pid, SIGKILL);
  ::waitpid(pid, nullptr, 0);
}

}  // namespace varstream
