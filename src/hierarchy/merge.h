// The hierarchy's merge primitive: splicing per-leaf serialized tracker
// states into one full-range engine whose Snapshot()/SerializeState()
// are byte-identical to an uninterrupted single-process run.
//
// Why splice text instead of summing leaf estimates: floating-point
// addition is not associative, so folding N leaf estimates at the root
// would group the per-site sum differently than the single-process
// engine (f0 + e0 + e1 + ... in global site order) and drift in the low
// bits. The per-SITE states, however, are exact: a leaf tracking global
// range [lo, hi) with site_base = lo derives every site's seed from its
// GLOBAL id, so its per-site lines equal the single-process run's lines
// for those sites byte for byte. Concatenating the leaves' site lines in
// leaf order (= global site order) under a synthesized full-range header
// and restoring the result into a fresh engine reproduces the
// single-process tracker exactly — fold order included.
//
// Shared by the root aggregator (hierarchy/root.h), varstream_loadgen's
// --topology mode, and the testkit hierarchy-parity oracle.

#ifndef VARSTREAM_HIERARCHY_MERGE_H_
#define VARSTREAM_HIERARCHY_MERGE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/options.h"
#include "core/sharded.h"
#include "hierarchy/partition.h"

namespace varstream {

/// Splices the leaves' SerializeState dumps into a fresh full-range
/// sharded engine. `options` is the FULL-range configuration (site_base
/// = 0, initial_value = f(0)); `leaf_states[i]` is leaf i's dump for its
/// range `ranges[i]` (ignored — may be empty — where the range is
/// empty). Returns false with *error on a malformed or mismatched dump.
bool SpliceLeafStates(const std::string& tracker_name,
                      const TrackerOptions& options,
                      const std::vector<SiteRange>& ranges,
                      const std::vector<std::string>& leaf_states,
                      std::unique_ptr<ShardedTracker>* mirror,
                      std::string* error);

}  // namespace varstream

#endif  // VARSTREAM_HIERARCHY_MERGE_H_
