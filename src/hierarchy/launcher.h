// LeafLauncher: how the root aggregator (hierarchy/root.h) creates,
// fences, and restarts its leaf servers.
//
// Two implementations share the interface so one RootAggregator powers
// every layer of the stack:
//
//   * ProcessLauncher — fork/exec real varstream_serve processes, one
//     per leaf, each checkpointing to <work_dir>/leaf_<i>.ckpt. This is
//     what tools/varstream_root.cpp and the CI hierarchy-smoke drill
//     run; Kill() is a literal kill -9.
//   * InProcessLauncher — VarstreamServer objects in this process. The
//     tests, the testkit hierarchy oracle, and bench_hierarchy use it;
//     SimulateCrash() destroys the server object WITHOUT a checkpoint,
//     which is exactly what kill -9 loses.
//
// The contract the root's recovery logic leans on: Kill() is a fence —
// after it returns, the old leaf can never apply another update — and a
// Launch(leaf, restore=true) that follows resumes from that leaf's last
// checkpoint file (restore=false starts it empty). Leaves are launched
// with history sampling disabled: the root samples its own merged
// history, and a leaf's ring would only hold partition-local estimates.

#ifndef VARSTREAM_HIERARCHY_LAUNCHER_H_
#define VARSTREAM_HIERARCHY_LAUNCHER_H_

#include <sys/types.h>

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace varstream {

class VarstreamServer;

/// Where a launched leaf listens (and, for processes, its pid).
struct LeafHandle {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  uint64_t pid = 0;  // 0 for in-process leaves
};

class LeafLauncher {
 public:
  virtual ~LeafLauncher() = default;

  /// Starts (or restarts) leaf `leaf`. With restore=true the leaf
  /// resumes from its last checkpoint file; the caller only passes true
  /// after a checkpoint was actually written. Returns false with *error
  /// on failure. A still-running instance of the same leaf is fenced
  /// (killed) first.
  virtual bool Launch(uint32_t leaf, bool restore, LeafHandle* handle,
                      std::string* error) = 0;

  /// Hard-stops the leaf (kill -9 semantics: no checkpoint, no goodbye).
  /// Idempotent; the fence the root's recovery path relies on.
  virtual void Kill(uint32_t leaf) = 0;

  /// Human-readable location of the leaf checkpoint files (the work
  /// directory); the root surfaces it in CheckpointAck frames.
  virtual std::string CheckpointLocation() const = 0;
};

/// Leaves as VarstreamServer objects inside this process.
class InProcessLauncher : public LeafLauncher {
 public:
  /// Leaf checkpoints land in `work_dir` (must exist and be writable).
  explicit InProcessLauncher(std::string work_dir);
  ~InProcessLauncher() override;

  bool Launch(uint32_t leaf, bool restore, LeafHandle* handle,
              std::string* error) override;
  void Kill(uint32_t leaf) override;
  std::string CheckpointLocation() const override { return work_dir_; }

  /// Test hook with kill -9 semantics: destroys the server object, so
  /// everything since its last checkpoint is lost and its sockets drop
  /// mid-conversation. Safe to call from a test thread while the root is
  /// using the leaf.
  void SimulateCrash(uint32_t leaf) { Kill(leaf); }

 private:
  std::string CheckpointPath(uint32_t leaf) const;

  std::string work_dir_;
  std::mutex mu_;
  std::map<uint32_t, std::unique_ptr<VarstreamServer>> servers_;
};

/// Leaves as real varstream_serve child processes (fork/exec).
class ProcessLauncher : public LeafLauncher {
 public:
  struct Options {
    std::string serve_binary;  // path to the varstream_serve executable
    std::string work_dir;      // checkpoints + per-leaf logs live here
    int start_timeout_ms = 5000;  // how long to wait for the port line
  };

  explicit ProcessLauncher(Options options);
  ~ProcessLauncher() override;  // kills every still-running leaf

  bool Launch(uint32_t leaf, bool restore, LeafHandle* handle,
              std::string* error) override;
  void Kill(uint32_t leaf) override;
  std::string CheckpointLocation() const override {
    return options_.work_dir;
  }

 private:
  Options options_;
  std::mutex mu_;
  std::map<uint32_t, pid_t> pids_;
};

}  // namespace varstream

#endif  // VARSTREAM_HIERARCHY_LAUNCHER_H_
