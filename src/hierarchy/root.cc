#include "hierarchy/root.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "core/registry.h"
#include "hierarchy/merge.h"
#include "history/query.h"
#include "obs/json.h"
#include "stream/source.h"  // JoinNames

namespace varstream {

namespace {

bool OptionsMatch(const TrackerOptions& a, const TrackerOptions& b) {
  return a.num_sites == b.num_sites && a.epsilon == b.epsilon &&
         a.seed == b.seed && a.initial_value == b.initial_value &&
         a.drift_threshold_factor == b.drift_threshold_factor &&
         a.sample_constant == b.sample_constant && a.period == b.period &&
         a.site_base == b.site_base;
}

/// |delta| as the session clock counts it (two's complement negation, so
/// INT64_MIN is handled).
uint64_t AbsDelta(int64_t delta) {
  return delta < 0 ? ~static_cast<uint64_t>(delta) + 1
                   : static_cast<uint64_t>(delta);
}

uint64_t BatchClockAdvance(const std::vector<CountUpdate>& batch) {
  uint64_t advance = 0;
  for (const CountUpdate& u : batch) advance += AbsDelta(u.delta);
  return advance;
}

}  // namespace

RootAggregator::RootAggregator(RootOptions options, LeafLauncher* launcher)
    : options_(std::move(options)), launcher_(launcher) {}

RootAggregator::~RootAggregator() { Stop(); }

bool RootAggregator::Start(std::string* error) {
  if (options_.num_leaves == 0) {
    if (error != nullptr) *error = "a root needs at least one leaf";
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    leaves_.resize(options_.num_leaves);
    splice_us_ = metrics_.Histogram("splice_us");
    for (uint32_t leaf = 0; leaf < options_.num_leaves; ++leaf) {
      MetricLabels labels = {{"leaf", std::to_string(leaf)}};
      leaves_[leaf].ack_us = metrics_.Histogram("leaf_ack_us", labels);
      leaves_[leaf].recoveries = metrics_.Counter("leaf_recoveries", labels);
      if (!launcher_->Launch(leaf, /*restore=*/false, &leaves_[leaf].handle,
                             error)) {
        return false;
      }
      if (!ConnectControlLocked(leaf, error)) return false;
      leaves_[leaf].alive = true;
    }
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = "socket(): " + std::string(strerror(errno));
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = "bind(127.0.0.1:" + std::to_string(options_.port) +
               "): " + strerror(errno);
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 64) != 0) {
    if (error != nullptr) *error = "listen(): " + std::string(strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this, fd = listen_fd_] { AcceptLoop(fd); });
  if (options_.heartbeat_ms > 0) {
    supervisor_thread_ = std::thread([this] { SupervisorLoop(); });
  }
  return true;
}

void RootAggregator::Stop() {
  bool was_running = running_.exchange(false, std::memory_order_acq_rel);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const auto& conn : connections_) ::shutdown(conn->fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (supervisor_thread_.joinable()) supervisor_thread_.join();
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections.swap(connections_);
  }
  for (const auto& conn : connections) {
    if (conn->thread.joinable()) conn->thread.join();
    ::close(conn->fd);
  }
  if (was_running) {
    {
      // Ask each leaf to exit cleanly (so process leaves flush their
      // logs), then fence it — the launcher owns the actual teardown.
      std::lock_guard<std::mutex> lock(mu_);
      for (uint32_t leaf = 0; leaf < leaves_.size(); ++leaf) {
        if (leaves_[leaf].alive && leaves_[leaf].control != nullptr) {
          std::string ignored;
          leaves_[leaf].control->Shutdown(&ignored);  // best effort
        }
        leaves_[leaf].control.reset();
        launcher_->Kill(leaf);
        leaves_[leaf].alive = false;
      }
      for (auto& [name, s] : sessions_) {
        for (auto& client : s->leaf_clients) client.reset();
      }
    }
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_requested_ = true;
    shutdown_cv_.notify_all();
  }
}

void RootAggregator::WaitForShutdownRequest() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
}

TopologyInfoFrame RootAggregator::TopologySnapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  return TopologySnapshotLocked();
}

bool RootAggregator::RecoverLeaf(uint32_t leaf, std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  if (leaf >= leaves_.size()) {
    if (error != nullptr) {
      *error = "no leaf " + std::to_string(leaf) + " (root has " +
               std::to_string(leaves_.size()) + " leaves)";
    }
    return false;
  }
  return RecoverLeafLocked(leaf, error);
}

// --- Downward paths. ---

bool RootAggregator::ConnectControlLocked(uint32_t leaf, std::string* error) {
  ClientDeadlines deadlines{options_.leaf_connect_timeout_ms,
                            options_.leaf_io_timeout_ms};
  auto client = std::make_unique<VarstreamClient>(deadlines);
  std::string connect_error;
  if (!client->Connect(leaves_[leaf].handle.host, leaves_[leaf].handle.port,
                       &connect_error)) {
    if (error != nullptr) {
      *error = "leaf " + std::to_string(leaf) + " control: " + connect_error;
    }
    return false;
  }
  leaves_[leaf].control = std::move(client);
  return true;
}

bool RootAggregator::HelloLeafLocked(RootSession& s, uint32_t leaf,
                                     uint64_t* leaf_time,
                                     std::string* error) {
  const SiteRange& range = s.ranges[leaf];
  ClientDeadlines deadlines{options_.leaf_connect_timeout_ms,
                            options_.leaf_io_timeout_ms};
  auto client = std::make_unique<VarstreamClient>(deadlines);
  std::string err;
  if (!client->Connect(leaves_[leaf].handle.host, leaves_[leaf].handle.port,
                       &err)) {
    if (error != nullptr) {
      *error = "leaf " + std::to_string(leaf) + ": " + err;
    }
    return false;
  }
  HelloFrame hello;
  hello.session = s.name;
  hello.tracker = s.tracker_name;
  // Worker count scales down with the partition; W never shapes results.
  hello.shards = std::min(s.shards, range.size());
  hello.options = s.options;
  hello.options.num_sites = range.size();
  hello.options.site_base = range.lo;
  // f(0) is accounted once, at the root's merge; a leaf carrying it too
  // would double-count it (core/mergeable.h MergeFrom contract).
  hello.options.initial_value = 0;
  HelloAckFrame ack;
  if (!client->Hello(hello, &ack, &err)) {
    if (error != nullptr) {
      *error = "leaf " + std::to_string(leaf) + " hello for session '" +
               s.name + "': " + err;
    }
    return false;
  }
  s.leaf_clients[leaf] = std::move(client);
  *leaf_time = ack.session_time;
  return true;
}

bool RootAggregator::EnsureLeafLocked(uint32_t leaf, std::string* error) {
  if (leaves_[leaf].alive) return true;
  return RecoverLeafLocked(leaf, error);
}

bool RootAggregator::RecoverLeafLocked(uint32_t leaf, std::string* error) {
  Leaf& node = leaves_[leaf];
  node.alive = false;
  // Drop every client bound to the dead incarnation before fencing it —
  // their sockets point at a server that no longer exists.
  node.control.reset();
  for (auto& [name, s] : sessions_) {
    if (leaf < s->leaf_clients.size()) s->leaf_clients[leaf].reset();
  }
  launcher_->Kill(leaf);  // the fence: the old incarnation is gone
  if (!launcher_->Launch(leaf, /*restore=*/node.checkpointed, &node.handle,
                         error)) {
    return false;
  }
  ++node.restarts;

  int delay_ms = 10;
  bool connected = false;
  std::string connect_error;
  for (int attempt = 0; attempt < options_.reconnect_attempts; ++attempt) {
    if (ConnectControlLocked(leaf, &connect_error)) {
      connected = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    delay_ms = std::min(delay_ms * 2, options_.reconnect_max_delay_ms);
  }
  if (!connected) {
    if (error != nullptr) {
      *error = "leaf " + std::to_string(leaf) + ": reconnect failed after " +
               std::to_string(options_.reconnect_attempts) +
               " attempts: " + connect_error;
    }
    return false;
  }

  // Re-attach every session, verify the restored clock sits on a journal
  // boundary, and replay whatever the checkpoint does not cover. The
  // fence above makes this exactly-once: anything the dead incarnation
  // applied but never checkpointed is gone, and the journal holds every
  // sub-batch since the last checkpoint.
  for (auto& [name, s] : sessions_) {
    if (s->ranges[leaf].empty()) continue;
    uint64_t restored_time = 0;
    if (!HelloLeafLocked(*s, leaf, &restored_time, error)) return false;
    uint64_t expect = s->time_at_checkpoint[leaf];
    size_t next = 0;
    while (expect < restored_time && next < s->journal[leaf].size()) {
      expect += BatchClockAdvance(s->journal[leaf][next++]);
    }
    if (expect != restored_time) {
      if (error != nullptr) {
        *error = "leaf " + std::to_string(leaf) + " restored session '" +
                 name + "' at clock " + std::to_string(restored_time) +
                 ", which matches neither its last checkpoint (" +
                 std::to_string(s->time_at_checkpoint[leaf]) +
                 ") nor any journal boundary — refusing to replay into an "
                 "unknown state";
      }
      return false;
    }
    s->leaf_time[leaf] = restored_time;
    for (; next < s->journal[leaf].size(); ++next) {
      PushAckFrame ack;
      std::string push_error;
      if (!s->leaf_clients[leaf]->Push(s->journal[leaf][next], &ack,
                                       &push_error)) {
        if (error != nullptr) {
          *error = "leaf " + std::to_string(leaf) +
                   ": journal replay for session '" + name +
                   "' failed: " + push_error;
        }
        return false;
      }
      s->leaf_time[leaf] = ack.session_time;
    }
  }
  node.alive = true;
  node.recoveries->Add();
  return true;
}

bool RootAggregator::PushToLeafLocked(RootSession& s, uint32_t leaf,
                                      std::vector<CountUpdate> sub,
                                      std::string* error) {
  // Journal BEFORE sending: if the push (or the leaf) dies anywhere past
  // this line, recovery replays it.
  s.journal[leaf].push_back(std::move(sub));
  if (leaves_[leaf].alive && s.leaf_clients[leaf] != nullptr) {
    PushAckFrame ack;
    std::string push_error;
    const auto push_start = std::chrono::steady_clock::now();
    if (s.leaf_clients[leaf]->Push(s.journal[leaf].back(), &ack,
                                   &push_error)) {
      leaves_[leaf].ack_us->Record(
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - push_start)
              .count());
      s.leaf_time[leaf] = ack.session_time;
      return true;
    }
    std::fprintf(stderr, "varstream_root: leaf %u push failed (%s); "
                 "recovering\n", leaf, push_error.c_str());
  }
  // Recovery replays the journal — including the sub-batch just added.
  return RecoverLeafLocked(leaf, error);
}

bool RootAggregator::ForwardCheckpointLocked(std::string* error) {
  for (uint32_t leaf = 0; leaf < leaves_.size(); ++leaf) {
    // Any session's data connection can carry the Checkpoint frame; the
    // leaf writes its whole multi-session file either way.
    RootSession* via = nullptr;
    for (auto& [name, s] : sessions_) {
      if (!s->ranges[leaf].empty()) {
        via = s.get();
        break;
      }
    }
    if (via == nullptr) continue;  // this leaf hosts no partition yet
    std::string path;
    std::string ckpt_error;
    bool ok = via->leaf_clients[leaf] != nullptr &&
              via->leaf_clients[leaf]->Checkpoint(&path, &ckpt_error);
    if (!ok) {
      std::fprintf(stderr, "varstream_root: leaf %u checkpoint failed (%s); "
                   "recovering\n", leaf, ckpt_error.c_str());
      if (!RecoverLeafLocked(leaf, error)) return false;
      if (!via->leaf_clients[leaf]->Checkpoint(&path, &ckpt_error)) {
        if (error != nullptr) {
          *error = "leaf " + std::to_string(leaf) +
                   ": checkpoint failed after recovery: " + ckpt_error;
        }
        return false;
      }
    }
    // The leaf's file now covers everything it has acked, so the journal
    // up to here is redundant. Per-leaf truncation: a later leaf failing
    // must not resurrect this one's journal.
    leaves_[leaf].checkpointed = true;
    for (auto& [name, s] : sessions_) {
      if (s->ranges[leaf].empty()) continue;
      s->journal[leaf].clear();
      s->time_at_checkpoint[leaf] = s->leaf_time[leaf];
    }
  }
  return true;
}

bool RootAggregator::PullMergedLocked(RootSession& s,
                                      std::unique_ptr<ShardedTracker>* mirror,
                                      std::string* error) {
  const auto splice_start = std::chrono::steady_clock::now();
  std::vector<std::string> leaf_states(leaves_.size());
  for (uint32_t leaf = 0; leaf < leaves_.size(); ++leaf) {
    if (s.ranges[leaf].empty()) continue;
    if (!EnsureLeafLocked(leaf, error)) return false;
    StateDumpResultFrame dump;
    std::string pull_error;
    bool ok = leaves_[leaf].control != nullptr &&
              leaves_[leaf].control->StateDump(s.name, &dump, &pull_error);
    if (!ok) {
      std::fprintf(stderr, "varstream_root: leaf %u state pull failed (%s); "
                   "recovering\n", leaf, pull_error.c_str());
      if (!RecoverLeafLocked(leaf, error)) return false;
      if (!leaves_[leaf].control->StateDump(s.name, &dump, &pull_error)) {
        if (error != nullptr) {
          *error = "leaf " + std::to_string(leaf) +
                   ": state pull failed after recovery: " + pull_error;
        }
        return false;
      }
    }
    if (dump.tracker != s.tracker_name) {
      if (error != nullptr) {
        *error = "leaf " + std::to_string(leaf) + " serves tracker '" +
                 dump.tracker + "' for session '" + s.name +
                 "', the root expected '" + s.tracker_name + "'";
      }
      return false;
    }
    leaf_states[leaf] = std::move(dump.state);
  }
  std::string splice_error;
  if (!SpliceLeafStates(s.tracker_name, s.options, s.ranges, leaf_states,
                        mirror, &splice_error)) {
    if (error != nullptr) {
      *error = "merge for session '" + s.name + "': " + splice_error;
    }
    return false;
  }
  splice_us_->Record(std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now() - splice_start)
                         .count());
  return true;
}

RootAggregator::RootSession* RootAggregator::ResolveSessionLocked(
    const HelloFrame& hello, bool* created, std::string* error) {
  auto it = sessions_.find(hello.session);
  if (it != sessions_.end()) {
    RootSession* s = it->second.get();
    if (s->tracker_name != hello.tracker || s->shards != hello.shards ||
        !OptionsMatch(s->options, hello.options)) {
      *error = "session '" + hello.session +
               "' already exists with a different configuration (" +
               s->tracker_name + ", k=" +
               std::to_string(s->options.num_sites) + ", shards=" +
               std::to_string(s->shards) + ")";
      return nullptr;
    }
    *created = false;
    return s;
  }
  if (hello.shards == 0) {
    *error = "the root drives sharded leaf engines; session '" +
             hello.session +
             "' must request shards >= 1 (a serial tracker's fold order "
             "cannot be reproduced across a site partition)";
    return nullptr;
  }
  if (hello.options.site_base != 0) {
    *error = "the root assigns site ranges itself; clients must leave "
             "site_base = 0";
    return nullptr;
  }
  if (!TrackerRegistry::Instance().IsMergeable(hello.tracker)) {
    *error = "tracker '" + hello.tracker +
             "' is not mergeable; a hierarchy merges leaf state, so the "
             "root only admits mergeable trackers: " +
             JoinNames(TrackerRegistry::Instance().MergeableNames());
    return nullptr;
  }
  auto s = std::make_unique<RootSession>();
  s->name = hello.session;
  s->tracker_name = hello.tracker;
  s->shards = hello.shards;
  s->options = hello.options;
  const uint32_t n = static_cast<uint32_t>(leaves_.size());
  s->ranges = PartitionSites(hello.options.num_sites, n);
  s->owner = SiteOwners(s->ranges, hello.options.num_sites);
  s->leaf_clients.resize(n);
  s->leaf_time.assign(n, 0);
  s->time_at_checkpoint.assign(n, 0);
  s->journal.resize(n);
  s->history = std::make_unique<HistorySampler>(options_.history);
  for (uint32_t leaf = 0; leaf < n; ++leaf) {
    if (s->ranges[leaf].empty()) continue;
    if (!EnsureLeafLocked(leaf, error)) return nullptr;
    uint64_t t = 0;
    if (!HelloLeafLocked(*s, leaf, &t, error)) return nullptr;
    // A fresh leaf answers t = 0; one restored from a checkpoint taken
    // before the root restarted answers its checkpointed clock. Either
    // way this clock is the journal's base.
    s->leaf_time[leaf] = t;
    s->time_at_checkpoint[leaf] = t;
  }
  RootSession* raw = s.get();
  sessions_.emplace(hello.session, std::move(s));
  *created = true;
  return raw;
}

TopologyInfoFrame RootAggregator::TopologySnapshotLocked() {
  TopologyInfoFrame info;
  info.role = "root";
  // Ranges are per-session; the table shows the first session's (every
  // session of the same k partitions identically, and the table is
  // informational — the root never hands a client a leaf address).
  const RootSession* first =
      sessions_.empty() ? nullptr : sessions_.begin()->second.get();
  for (uint32_t leaf = 0; leaf < leaves_.size(); ++leaf) {
    TopologyLeaf entry;
    entry.index = leaf;
    entry.port = leaves_[leaf].handle.port;
    if (first != nullptr) {
      entry.site_lo = first->ranges[leaf].lo;
      entry.site_hi = first->ranges[leaf].hi;
    }
    entry.alive = leaves_[leaf].alive;
    entry.pid = leaves_[leaf].handle.pid;
    entry.restarts = leaves_[leaf].restarts;
    info.leaves.push_back(entry);
  }
  return info;
}

std::string RootAggregator::MetricsJson() {
  std::lock_guard<std::mutex> lock(mu_);
  return MetricsJsonLocked();
}

std::string RootAggregator::MetricsJsonLocked() {
  MetricsSnapshot node = metrics_.Collect();
  {
    // Liveness is root-owned state, not a slot; append it at scrape time
    // (the same pattern VarstreamServer uses for its connection gauges).
    auto gauge = [&node](const char* name, MetricLabels labels, int64_t value,
                         GaugeAgg agg) {
      MetricPoint p;
      p.name = name;
      p.labels = std::move(labels);
      p.kind = MetricKind::kGauge;
      p.agg = agg;
      p.gauge = value;
      node.points.push_back(std::move(p));
    };
    int64_t alive = 0;
    for (const Leaf& leaf : leaves_) alive += leaf.alive ? 1 : 0;
    gauge("leaves", {}, static_cast<int64_t>(leaves_.size()), GaugeAgg::kSum);
    gauge("leaves_alive", {}, alive, GaugeAgg::kSum);
    gauge("sessions", {}, static_cast<int64_t>(sessions_.size()),
          GaugeAgg::kSum);
  }

  std::string out = "{\"varstream_metrics\":1,\"role\":\"root\",\"node\":";
  out += node.ToJson();
  out += ",\"leaves\":[";
  // The merged view aggregates the root's own registry plus every leaf
  // that answered; a leaf that did not answer appears in "leaves" with an
  // error string and contributes nothing (scrapes must not block on, or
  // try to recover, a dead leaf — that is the supervisor's job).
  MetricsSnapshot combined = node;
  for (uint32_t leaf = 0; leaf < leaves_.size(); ++leaf) {
    if (leaf > 0) out.push_back(',');
    out += "{\"index\":";
    AppendJsonNumber(&out, static_cast<double>(leaf));
    out += ",\"port\":";
    AppendJsonNumber(&out, static_cast<double>(leaves_[leaf].handle.port));
    out += ",\"alive\":";
    out += leaves_[leaf].alive ? "true" : "false";
    std::string scrape_error;
    MetricsSnapshot leaf_snap;
    bool scraped = false;
    if (leaves_[leaf].alive && leaves_[leaf].control != nullptr) {
      MetricsDumpResultFrame dump;
      if (leaves_[leaf].control->MetricsDump(&dump, &scrape_error)) {
        JsonValue doc;
        if (ParseJson(dump.json, &doc, &scrape_error) && doc.is_object()) {
          const JsonValue* leaf_node = doc.Find("node");
          if (leaf_node == nullptr) {
            scrape_error = "leaf metrics document has no 'node' object";
          } else {
            scraped = MetricsSnapshotFromJsonValue(*leaf_node, &leaf_snap,
                                                   &scrape_error);
          }
        }
      }
    } else {
      scrape_error = "leaf is down";
    }
    if (scraped) {
      // Round-trip through the snapshot (instead of splicing the leaf's
      // bytes in verbatim) so a leaf can never corrupt the root's JSON.
      out += ",\"metrics\":";
      out += leaf_snap.ToJson();
      combined.points.insert(combined.points.end(), leaf_snap.points.begin(),
                             leaf_snap.points.end());
    } else {
      out += ",\"error\":";
      AppendJsonString(&out, scrape_error);
    }
    out.push_back('}');
  }
  out += "],\"merged\":";
  out += combined.AggregateByName().ToJson();
  out.push_back('}');
  return out;
}

void RootAggregator::SupervisorLoop() {
  const auto cadence = std::chrono::milliseconds(options_.heartbeat_ms);
  auto next_beat = std::chrono::steady_clock::now() + cadence;
  while (running_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    if (std::chrono::steady_clock::now() < next_beat) continue;
    next_beat = std::chrono::steady_clock::now() + cadence;
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_.load(std::memory_order_acquire)) return;
    for (uint32_t leaf = 0; leaf < leaves_.size(); ++leaf) {
      bool healthy = false;
      if (leaves_[leaf].alive && leaves_[leaf].control != nullptr) {
        TopologyInfoFrame info;
        std::string beat_error;
        healthy = leaves_[leaf].control->Topology(&info, &beat_error);
        if (!healthy) {
          std::fprintf(stderr, "varstream_root: leaf %u heartbeat failed: "
                       "%s\n", leaf, beat_error.c_str());
        }
      }
      if (healthy) continue;
      std::string recover_error;
      if (RecoverLeafLocked(leaf, &recover_error)) {
        std::fprintf(stderr, "varstream_root: leaf %u recovered "
                     "(restart %u)\n", leaf, leaves_[leaf].restarts);
      } else {
        std::fprintf(stderr, "varstream_root: leaf %u recovery failed: %s "
                     "(next heartbeat retries)\n", leaf,
                     recover_error.c_str());
      }
    }
  }
}

// --- Upward server plumbing. ---

void RootAggregator::ReapFinishedConnections() {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (size_t i = 0; i < connections_.size();) {
      if (connections_[i]->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(connections_[i]));
        connections_.erase(connections_.begin() + i);
      } else {
        ++i;
      }
    }
  }
  for (const auto& conn : finished) {
    conn->thread.join();
    ::close(conn->fd);
  }
}

void RootAggregator::AcceptLoop(int listen_fd) {
  while (running_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load(std::memory_order_acquire)) return;
      if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) {
        continue;
      }
      std::fprintf(stderr, "varstream_root: accept(): %s%s\n",
                   strerror(errno),
                   (errno == EMFILE || errno == ENFILE)
                       ? " (fd limit; retrying)"
                       : " (retrying)");
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    ReapFinishedConnections();
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (!running_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    connections_.push_back(std::move(conn));
    connections_.back()->thread =
        std::thread([this, raw] { HandleConnection(raw); });
  }
}

bool RootAggregator::SendFrame(int fd, FrameType type,
                               std::span<const uint8_t> payload,
                               RootSession* session) {
  std::vector<uint8_t> wire;
  wire.reserve(kFrameOverhead + payload.size());
  AppendFrame(&wire, type, payload);
  if (session != nullptr) {
    std::lock_guard<std::mutex> lock(session->wire_mu);
    session->wire_cost.Count(MessageKind::kWire, wire.size() * 8);
  }
  return SendAllBytes(fd, wire.data(), wire.size());
}

bool RootAggregator::SendError(int fd, RootSession* session,
                               const std::string& message) {
  std::fprintf(stderr, "varstream_root: %s\n", message.c_str());
  SendFrame(fd, FrameType::kError, EncodeError(message), session);
  return false;  // caller closes the connection
}

bool RootAggregator::HandleFrame(int fd, const Frame& frame,
                                 RootSession** session,
                                 uint64_t* expected_seq) {
  switch (frame.type) {
    case FrameType::kHello: {
      if (*session != nullptr) {
        return SendError(fd, *session, "duplicate hello on this connection");
      }
      HelloFrame hello;
      if (!DecodeHello(frame.payload, &hello)) {
        return SendError(fd, nullptr, "malformed hello payload");
      }
      std::string admission = ValidateHello(hello, kMaxSessionSites);
      if (!admission.empty()) return SendError(fd, nullptr, admission);
      HelloAckFrame ack;
      RootSession* resolved = nullptr;
      {
        std::lock_guard<std::mutex> lock(mu_);
        std::string error;
        bool created = false;
        resolved = ResolveSessionLocked(hello, &created, &error);
        if (resolved == nullptr) {
          // SendError re-locks mu_ only when given a session; pass null.
          return SendError(fd, nullptr, error);
        }
        ack.created = created;
        for (uint64_t t : resolved->leaf_time) ack.session_time += t;
      }
      *session = resolved;
      return SendFrame(fd, FrameType::kHelloAck, EncodeHelloAck(ack),
                       resolved);
    }
    case FrameType::kPushBatch: {
      if (*session == nullptr) {
        return SendError(fd, nullptr, "push-batch before hello");
      }
      PushBatchFrame batch;
      if (!DecodePushBatch(frame.payload, &batch)) {
        return SendError(fd, *session, "malformed push-batch payload");
      }
      // The root handles frames strictly in order on one thread per
      // connection, so it never rejects with Overloaded — any sequence
      // gap is a protocol violation, not backpressure (protocol v4).
      if (batch.seq != *expected_seq) {
        return SendError(fd, *session,
                         "push-batch seq " + std::to_string(batch.seq) +
                             " out of order (connection expects " +
                             std::to_string(*expected_seq) + ")");
      }
      RootSession& s = **session;
      const bool monotone_only =
          TrackerRegistry::Instance().IsMonotoneOnly(s.tracker_name);
      for (const CountUpdate& u : batch.updates) {
        if (u.site >= s.options.num_sites) {
          return SendError(fd, *session,
                           "push-batch update targets site " +
                               std::to_string(u.site) + ", session has k=" +
                               std::to_string(s.options.num_sites));
        }
        if (monotone_only && u.delta < 0) {
          return SendError(fd, *session,
                           "tracker '" + s.tracker_name +
                               "' is insertion-only; negative delta "
                               "rejected");
        }
      }
      PushAckFrame ack;
      {
        std::lock_guard<std::mutex> lock(mu_);
        std::vector<std::vector<CountUpdate>> per_leaf;
        PartitionBatch(batch.updates, s.owner, s.ranges, &per_leaf);
        for (uint32_t leaf = 0; leaf < per_leaf.size(); ++leaf) {
          if (per_leaf[leaf].empty()) continue;
          std::string error;
          if (!PushToLeafLocked(s, leaf, std::move(per_leaf[leaf]),
                                &error)) {
            return SendError(fd, *session,
                             "push failed downstream: " + error);
          }
        }
        // History samples the MERGED state at the batch boundary — the
        // same cadence discipline a single server applies, so a root
        // session's ring is row-for-row identical to the in-process run.
        if (s.history->Due(batch.updates.size())) {
          std::unique_ptr<ShardedTracker> mirror;
          std::string error;
          if (!PullMergedLocked(s, &mirror, &error)) {
            return SendError(fd, *session,
                             "history sample failed: " + error);
          }
          TrackerSnapshot snap = mirror->Snapshot();
          s.history->Record(
              {snap.time, snap.estimate, snap.messages, snap.bits,
               /*wire_bytes=*/0});
        }
        s.updates_since_checkpoint += batch.updates.size();
        if (options_.checkpoint_every > 0 &&
            s.updates_since_checkpoint >= options_.checkpoint_every) {
          s.updates_since_checkpoint = 0;
          std::string error;
          if (!ForwardCheckpointLocked(&error)) {
            return SendError(fd, *session,
                             "automatic checkpoint failed: " + error);
          }
          ack.checkpointed = true;
        }
        for (uint64_t t : s.leaf_time) ack.session_time += t;
      }
      ack.seq = batch.seq;
      ++*expected_seq;
      return SendFrame(fd, FrameType::kPushAck, EncodePushAck(ack),
                       *session);
    }
    case FrameType::kQuery: {
      if (*session == nullptr) {
        return SendError(fd, nullptr, "query before hello");
      }
      RootSession& s = **session;
      SnapshotFrame snapshot;
      {
        std::lock_guard<std::mutex> lock(mu_);
        std::unique_ptr<ShardedTracker> mirror;
        std::string error;
        if (!PullMergedLocked(s, &mirror, &error)) {
          return SendError(fd, *session, "query failed: " + error);
        }
        TrackerSnapshot snap = mirror->Snapshot();
        snapshot.estimate = snap.estimate;
        snapshot.time = snap.time;
        snapshot.messages = snap.messages;
        snapshot.bits = snap.bits;
      }
      {
        std::lock_guard<std::mutex> lock(s.wire_mu);
        snapshot.wire_messages = s.wire_cost.messages(MessageKind::kWire);
        snapshot.wire_bits = s.wire_cost.bits(MessageKind::kWire);
      }
      return SendFrame(fd, FrameType::kSnapshot, EncodeSnapshot(snapshot),
                       *session);
    }
    case FrameType::kCheckpoint: {
      if (*session == nullptr) {
        return SendError(fd, nullptr, "checkpoint before hello");
      }
      if (!frame.payload.empty()) {
        return SendError(fd, *session, "malformed checkpoint payload");
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        std::string error;
        if (!ForwardCheckpointLocked(&error)) {
          return SendError(fd, *session, error);
        }
      }
      CheckpointAckFrame ack;
      ack.path = launcher_->CheckpointLocation();
      return SendFrame(fd, FrameType::kCheckpointAck,
                       EncodeCheckpointAck(ack), *session);
    }
    case FrameType::kQueryRange: {
      QueryRangeFrame query;
      if (!DecodeQueryRange(frame.payload, &query)) {
        return SendError(fd, *session, "malformed query-range payload");
      }
      if (query.version != kQueryRangeVersion) {
        return SendError(
            fd, *session,
            "query-range version mismatch: client speaks v" +
                std::to_string(query.version) + ", server speaks v" +
                std::to_string(kQueryRangeVersion));
      }
      struct Captured {
        SessionQueryResult meta;
        std::vector<HistoryRow> rows;
      };
      std::vector<Captured> captured;
      bool found_named = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto& [name, s] : sessions_) {
          if (!query.session.empty() && name != query.session) continue;
          found_named = found_named || name == query.session;
          if (!query.tracker.empty() && s->tracker_name != query.tracker) {
            continue;
          }
          Captured c;
          c.meta.session = name;
          c.meta.tracker = s->tracker_name;
          c.meta.capacity = s->history->options().capacity;
          c.meta.cadence = s->history->options().cadence;
          c.meta.dropped = s->history->ring().dropped();
          c.rows = s->history->ring().Rows();
          captured.push_back(std::move(c));
        }
      }
      if (!query.session.empty() && !found_named) {
        return SendError(fd, *session,
                         "unknown session '" + query.session + "'");
      }
      QueryRangeResultFrame result;
      for (Captured& c : captured) {
        c.meta.rows = EvaluateQuery(c.rows, query.spec);
        result.sessions.push_back(std::move(c.meta));
      }
      std::vector<uint8_t> payload = EncodeQueryRangeResult(result);
      if (payload.size() > kMaxFramePayload) {
        return SendError(
            fd, *session,
            "query-range result (" + std::to_string(payload.size()) +
                " bytes) exceeds the " + std::to_string(kMaxFramePayload) +
                "-byte frame limit; narrow the time window, name a "
                "session, or downsample with buckets");
      }
      return SendFrame(fd, FrameType::kQueryRangeResult, payload, *session);
    }
    case FrameType::kStateDump: {
      StateDumpFrame dump;
      if (!DecodeStateDump(frame.payload, &dump)) {
        return SendError(fd, *session, "malformed state-dump payload");
      }
      StateDumpResultFrame result;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = sessions_.find(dump.session);
        if (it == sessions_.end()) {
          return SendError(fd, *session,
                           "unknown session '" + dump.session + "'");
        }
        RootSession& target = *it->second;
        std::unique_ptr<ShardedTracker> mirror;
        std::string error;
        if (!PullMergedLocked(target, &mirror, &error)) {
          return SendError(fd, *session, "state dump failed: " + error);
        }
        result.tracker = target.tracker_name;
        result.shards = target.shards;
        result.state = mirror->SerializeState();
      }
      std::vector<uint8_t> payload = EncodeStateDumpResult(result);
      if (payload.size() > kMaxFramePayload) {
        return SendError(
            fd, *session,
            "state dump (" + std::to_string(payload.size()) +
                " bytes) exceeds the " + std::to_string(kMaxFramePayload) +
                "-byte frame limit");
      }
      return SendFrame(fd, FrameType::kStateDumpResult, payload, *session);
    }
    case FrameType::kTopology: {
      if (!frame.payload.empty()) {
        return SendError(fd, *session, "malformed topology payload");
      }
      TopologyInfoFrame info;
      {
        std::lock_guard<std::mutex> lock(mu_);
        info = TopologySnapshotLocked();
      }
      return SendFrame(fd, FrameType::kTopologyInfo,
                       EncodeTopologyInfo(info), *session);
    }
    case FrameType::kMetricsDump: {
      // Hello-free like QueryRange. The root answers for the whole tree:
      // its own registry plus a MetricsDump fanned out to every live
      // leaf, with the name-aggregated union under "merged".
      MetricsDumpFrame dump;
      if (!DecodeMetricsDump(frame.payload, &dump)) {
        return SendError(fd, *session, "malformed metrics-dump payload");
      }
      if (dump.version != kMetricsDumpVersion) {
        return SendError(
            fd, *session,
            "metrics-dump version mismatch: client speaks v" +
                std::to_string(dump.version) + ", server speaks v" +
                std::to_string(kMetricsDumpVersion));
      }
      MetricsDumpResultFrame result;
      {
        std::lock_guard<std::mutex> lock(mu_);
        result.json = MetricsJsonLocked();
      }
      std::vector<uint8_t> payload = EncodeMetricsDumpResult(result);
      if (payload.size() > kMaxFramePayload) {
        return SendError(
            fd, *session,
            "metrics dump (" + std::to_string(payload.size()) +
                " bytes) exceeds the " + std::to_string(kMaxFramePayload) +
                "-byte frame limit");
      }
      return SendFrame(fd, FrameType::kMetricsDumpResult, payload, *session);
    }
    case FrameType::kShutdown: {
      if (!frame.payload.empty()) {
        return SendError(fd, *session, "malformed shutdown payload");
      }
      SendFrame(fd, FrameType::kShutdownAck, {}, *session);
      {
        std::lock_guard<std::mutex> lock(shutdown_mu_);
        shutdown_requested_ = true;
      }
      shutdown_cv_.notify_all();
      return false;  // close this connection; the owner tears down
    }
    default:
      return SendError(fd, *session,
                       std::string("unexpected ") +
                           FrameTypeName(frame.type) +
                           " frame (server-to-client only)");
  }
}

void RootAggregator::HandleConnection(Connection* conn) {
  const int fd = conn->fd;
  std::vector<uint8_t> buffer;
  RootSession* session = nullptr;
  uint64_t expected_seq = 0;  // per-connection PushBatch sequence (v4)
  uint64_t pre_session_wire_msgs = 0;
  uint64_t pre_session_wire_bits = 0;
  bool open = true;
  while (open) {
    size_t offset = 0;
    for (;;) {
      Frame frame;
      size_t consumed = 0;
      std::string decode_error;
      DecodeStatus status = DecodeFrame(
          std::span<const uint8_t>(buffer.data() + offset,
                                   buffer.size() - offset),
          &frame, &consumed, &decode_error);
      if (status == DecodeStatus::kNeedMore) break;
      if (status == DecodeStatus::kMalformed) {
        SendError(fd, session, "malformed frame: " + decode_error);
        open = false;
        break;
      }
      offset += consumed;
      if (session != nullptr) {
        std::lock_guard<std::mutex> lock(session->wire_mu);
        session->wire_cost.Count(MessageKind::kWire, consumed * 8);
      } else {
        ++pre_session_wire_msgs;
        pre_session_wire_bits += consumed * 8;
      }
      const bool had_session = session != nullptr;
      if (!HandleFrame(fd, frame, &session, &expected_seq)) {
        open = false;
        break;
      }
      if (!had_session && session != nullptr) {
        // Fold this connection's pre-session bytes (the hello frame and
        // the HelloAck SendFrame already counted itself) into the meter.
        std::lock_guard<std::mutex> lock(session->wire_mu);
        session->wire_cost.Count(MessageKind::kWire, pre_session_wire_bits,
                                 pre_session_wire_msgs);
        pre_session_wire_msgs = 0;
        pre_session_wire_bits = 0;
      }
    }
    if (!open) break;
    buffer.erase(buffer.begin(), buffer.begin() + offset);

    uint8_t chunk[65536];
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    buffer.insert(buffer.end(), chunk, chunk + n);
  }
  conn->done.store(true, std::memory_order_release);
}

}  // namespace varstream
