// RootAggregator: the coordinator of a two-level varstream hierarchy.
//
//                      clients (loadgen, varstream_query, ...)
//                                   │  varstream-wire v3
//                                   ▼
//                             varstream_root
//                  demux by site range │ merge by state splice
//                 ┌───────────────────┼───────────────────┐
//                 ▼                   ▼                   ▼
//            leaf 0 [0,k/3)     leaf 1 [k/3,2k/3)    leaf 2 [2k/3,k)
//            varstream_serve    varstream_serve     varstream_serve
//
// The root speaks the ordinary wire protocol upward — to a client it
// looks like one varstream_serve hosting full-k sharded sessions — and
// drives N leaf servers downward, each owning a disjoint contiguous
// site range of every session (hierarchy/partition.h; the assignment is
// handed out through the Hello frame's v3 site_base field).
//
//   * PushBatch is partitioned by site range and forwarded; each
//     sub-batch is journaled BEFORE it is sent, so a leaf that dies
//     mid-stream can always be replayed exactly.
//   * Query / StateDump / the history sampler pull every leaf's
//     SerializeState dump and splice the per-site lines into one
//     full-range state, restored into a fresh in-process mirror engine.
//     Because each leaf derives its per-site seeds from GLOBAL site ids
//     (TrackerOptions::site_base) and the splice preserves global site
//     order, the merged Snapshot/SerializeState is BYTE-IDENTICAL to an
//     uninterrupted single-process run — the property the testkit
//     hierarchy-parity oracle and the CI hierarchy-smoke drill enforce.
//   * Checkpoint is forwarded to every leaf (each writes its own
//     varstream-ckpt-v1 file); the acked leaf's journal is truncated.
//   * A supervisor loop heartbeats each leaf (Topology ping under the
//     client's read deadline), and any failure — heartbeat, push, or
//     state pull — fences the leaf (kill), relaunches it with --restore
//     from its last checkpoint, reconnects with bounded exponential
//     backoff, re-attaches every session (verifying the restored clock
//     matches the journal's base), and replays the journal. Everything
//     since the last checkpoint is thereby reapplied exactly once.
//
// Concurrency: one coarse root mutex serializes session/leaf state and
// all leaf I/O — correctness over throughput, deliberately; the root is
// a coordinator, not a data plane (bench_hierarchy measures the cost
// honestly). Upward connections get a thread each, like VarstreamServer.

#ifndef VARSTREAM_HIERARCHY_ROOT_H_
#define VARSTREAM_HIERARCHY_ROOT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/options.h"
#include "core/sharded.h"
#include "hierarchy/launcher.h"
#include "hierarchy/partition.h"
#include "history/history.h"
#include "net/cost_meter.h"
#include "obs/metrics.h"
#include "service/client.h"
#include "service/protocol.h"

namespace varstream {

struct RootOptions {
  /// Upward TCP port on 127.0.0.1; 0 picks an ephemeral port.
  uint16_t port = 0;

  /// Number of leaf servers to supervise (>= 1).
  uint32_t num_leaves = 3;

  /// Forward a Checkpoint to every leaf after this many ingested updates
  /// per session (0 = only on explicit Checkpoint frames). Journals are
  /// truncated at each checkpoint, so this also bounds journal memory.
  uint64_t checkpoint_every = 0;

  /// Supervisor heartbeat cadence in ms (0 disables the supervisor
  /// thread; failures are then detected on the next push/query).
  int heartbeat_ms = 0;

  /// Deadlines on every leaf-facing client (service/client.h): a dead
  /// leaf surfaces as a bounded, loud timeout, never a hang.
  int leaf_connect_timeout_ms = 2000;
  int leaf_io_timeout_ms = 5000;

  /// Reconnect backoff after a leaf relaunch: delays double from 10 ms
  /// up to this cap, for at most `reconnect_attempts` tries.
  int reconnect_max_delay_ms = 500;
  int reconnect_attempts = 8;

  /// Root-side history retention per session, sampled from the MERGED
  /// state at push-batch boundaries (leaves run with sampling disabled —
  /// their rings would only hold partition-local estimates). Row
  /// wire_bytes are recorded as 0: the root's client-facing traffic is
  /// deployment noise, not tracker state, and must not break the
  /// byte-identical history comparison across a leaf crash drill.
  HistoryOptions history;
};

class RootAggregator {
 public:
  /// The launcher is borrowed, not owned (tests hold an
  /// InProcessLauncher to inject crashes; the tool owns a
  /// ProcessLauncher) and must outlive the aggregator.
  RootAggregator(RootOptions options, LeafLauncher* launcher);
  ~RootAggregator();

  RootAggregator(const RootAggregator&) = delete;
  RootAggregator& operator=(const RootAggregator&) = delete;

  /// Launches every leaf (fresh), connects control channels, binds the
  /// upward listener, and starts the accept + supervisor threads.
  bool Start(std::string* error);

  /// Stops accepting, closes every connection, asks each leaf to shut
  /// down (then fences it), and joins all threads. Idempotent.
  void Stop();

  uint16_t port() const { return port_; }

  /// Blocks until a client sends Shutdown or Stop() is called.
  void WaitForShutdownRequest();

  /// The root's own Topology answer (role "root" + leaf table); also
  /// used by tools for status printing.
  TopologyInfoFrame TopologySnapshot();

  /// Test/drill hook: run the full fence → relaunch(--restore) →
  /// reconnect → re-attach → replay recovery for one leaf now.
  bool RecoverLeaf(uint32_t leaf, std::string* error);

  /// The whole-tree metrics document (protocol.h MetricsDumpResultFrame
  /// schema): the root's own registry under "node", every leaf's scraped
  /// registry under "leaves" (with a per-leaf error string where a scrape
  /// failed), and the name-aggregated union under "merged". Fans a
  /// MetricsDump out over the control channels, so it holds the root
  /// mutex for the duration — scrape cadence, not data plane.
  std::string MetricsJson();

 private:
  struct Leaf {
    LeafHandle handle;
    bool alive = false;
    uint32_t restarts = 0;
    /// Set once a checkpoint covering this leaf was acked; recovery
    /// passes restore=true to the launcher only then.
    bool checkpointed = false;
    std::unique_ptr<VarstreamClient> control;  // Topology + StateDump
    /// Observability slots (created in Start, written under mu_ only):
    /// push→ack round-trip per leaf, and completed recovery count.
    MetricsHistogram* ack_us = nullptr;
    MetricsCounter* recoveries = nullptr;
  };

  struct RootSession {
    std::string name;
    std::string tracker_name;  // base registry name (leaves run sharded)
    uint32_t shards = 0;       // client-requested worker count (>= 1)
    TrackerOptions options;    // full-range options (site_base == 0)
    std::vector<SiteRange> ranges;  // per leaf
    std::vector<uint32_t> owner;    // site -> leaf
    /// Per-leaf ingest connection (null where the range is empty).
    std::vector<std::unique_ptr<VarstreamClient>> leaf_clients;
    /// Tracked per-leaf session clocks; their sum is the root's
    /// session_time (== the full-range tracker clock).
    std::vector<uint64_t> leaf_time;
    std::vector<uint64_t> time_at_checkpoint;
    /// Store-and-forward journal: per leaf, every sub-batch sent since
    /// that leaf's last acked checkpoint, in order.
    std::vector<std::vector<std::vector<CountUpdate>>> journal;
    uint64_t updates_since_checkpoint = 0;
    std::unique_ptr<HistorySampler> history;
    /// Client-facing bytes, reporting-only. Own lock (never held while
    /// taking mu_): SendFrame must be able to account an Error sent from
    /// inside a mu_-holding handler without self-deadlocking.
    std::mutex wire_mu;
    CostMeter wire_cost;
  };

  struct Connection {
    int fd = -1;
    std::atomic<bool> done{false};
    std::thread thread;
  };

  // Upward server plumbing (same discipline as VarstreamServer).
  void AcceptLoop(int listen_fd);
  void HandleConnection(Connection* conn);
  void ReapFinishedConnections();
  bool HandleFrame(int fd, const Frame& frame, RootSession** session,
                   uint64_t* expected_seq);
  bool SendFrame(int fd, FrameType type, std::span<const uint8_t> payload,
                 RootSession* session);
  bool SendError(int fd, RootSession* session, const std::string& message);

  // Downward paths. *Locked methods require mu_ held.
  bool ConnectControlLocked(uint32_t leaf, std::string* error);
  bool HelloLeafLocked(RootSession& s, uint32_t leaf, uint64_t* leaf_time,
                       std::string* error);
  bool EnsureLeafLocked(uint32_t leaf, std::string* error);
  bool RecoverLeafLocked(uint32_t leaf, std::string* error);
  bool PushToLeafLocked(RootSession& s, uint32_t leaf,
                        std::vector<CountUpdate> sub, std::string* error);
  bool ForwardCheckpointLocked(std::string* error);
  /// Pulls every leaf's state dump for `s`, splices them into one
  /// full-range dump, and restores it into a fresh mirror engine.
  bool PullMergedLocked(RootSession& s,
                        std::unique_ptr<ShardedTracker>* mirror,
                        std::string* error);
  RootSession* ResolveSessionLocked(const HelloFrame& hello, bool* created,
                                    std::string* error);
  TopologyInfoFrame TopologySnapshotLocked();
  std::string MetricsJsonLocked();
  void SupervisorLoop();

  RootOptions options_;
  LeafLauncher* launcher_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};

  std::mutex mu_;  // leaves_, sessions_, and all leaf-facing I/O
  std::vector<Leaf> leaves_;
  std::map<std::string, std::unique_ptr<RootSession>> sessions_;

  /// Root-side instrumentation. All writers hold mu_, which satisfies
  /// the registry's single-writer slot contract by mutual exclusion.
  MetricsRegistry metrics_;
  MetricsHistogram* splice_us_ = nullptr;  // state pull + splice latency

  std::mutex conn_mu_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::thread accept_thread_;
  std::thread supervisor_thread_;

  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
};

}  // namespace varstream

#endif  // VARSTREAM_HIERARCHY_ROOT_H_
