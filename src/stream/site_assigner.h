// Policies for deciding which site i(n) observes update f'(n). The paper's
// model allows an arbitrary (adversarial) assignment; the experiments use
// round-robin, uniform random, and skewed assignments to exercise both
// balanced and hot-site regimes.

#ifndef VARSTREAM_STREAM_SITE_ASSIGNER_H_
#define VARSTREAM_STREAM_SITE_ASSIGNER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/random.h"

namespace varstream {

/// Maps timesteps to sites.
class SiteAssigner {
 public:
  virtual ~SiteAssigner() = default;

  /// Returns the site for the next timestep.
  virtual uint32_t NextSite() = 0;

  virtual std::string name() const = 0;
};

/// Sites 0, 1, ..., k-1, 0, 1, ... in order.
class RoundRobinAssigner : public SiteAssigner {
 public:
  explicit RoundRobinAssigner(uint32_t num_sites);
  uint32_t NextSite() override;
  std::string name() const override { return "round-robin"; }

 private:
  uint32_t num_sites_;
  uint32_t next_ = 0;
};

/// Each update lands on a uniformly random site.
class UniformAssigner : public SiteAssigner {
 public:
  UniformAssigner(uint32_t num_sites, uint64_t seed);
  uint32_t NextSite() override;
  std::string name() const override { return "uniform"; }

 private:
  uint32_t num_sites_;
  Rng rng_;
};

/// Zipf-skewed assignment: site 0 is hottest. Exercises the case where a
/// few sites carry most of the stream.
class SkewedAssigner : public SiteAssigner {
 public:
  /// `skew` is the Zipf exponent (0 = uniform).
  SkewedAssigner(uint32_t num_sites, double skew, uint64_t seed);
  uint32_t NextSite() override;
  std::string name() const override;

 private:
  double skew_;
  ZipfSampler sampler_;
  Rng rng_;
};

/// All updates at site 0: degenerates to the single-site model of
/// section 5.2.
class SingleSiteAssigner : public SiteAssigner {
 public:
  SingleSiteAssigner() = default;
  uint32_t NextSite() override { return 0; }
  std::string name() const override { return "single-site"; }
};

/// Adversarial-ish pattern: `burst` consecutive updates per site, then
/// move to the next site. Concentrates each site's drift into short
/// windows — the stress case for per-site send thresholds (one site's
/// delta_i races to the threshold while the others idle).
class BurstAssigner : public SiteAssigner {
 public:
  /// Requires num_sites >= 1, burst >= 1.
  BurstAssigner(uint32_t num_sites, uint64_t burst);
  uint32_t NextSite() override;
  std::string name() const override;

 private:
  uint32_t num_sites_;
  uint64_t burst_;
  uint32_t site_ = 0;
  uint64_t emitted_ = 0;
};

/// Factory by name: "round-robin", "uniform", "skewed", "single", "burst".
/// Returns nullptr for unknown names.
std::unique_ptr<SiteAssigner> MakeAssignerByName(const std::string& name,
                                                 uint32_t num_sites,
                                                 uint64_t seed);

}  // namespace varstream

#endif  // VARSTREAM_STREAM_SITE_ASSIGNER_H_
