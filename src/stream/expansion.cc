#include "stream/expansion.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "common/math_util.h"

namespace varstream {

std::vector<int64_t> ExpandUpdate(int64_t delta) {
  std::vector<int64_t> steps;
  if (delta == 0) return steps;
  int sign = Sgn(delta);
  steps.assign(AbsU64(delta), sign);
  return steps;
}

UnitExpansionGenerator::UnitExpansionGenerator(
    std::unique_ptr<CountGenerator> inner)
    : inner_(std::move(inner)) {}

int64_t UnitExpansionGenerator::NextDelta() {
  while (pending_ == 0) {
    int64_t delta = inner_->NextDelta();
    ++inner_updates_;
    if (delta == 0) continue;
    pending_ = static_cast<int64_t>(AbsU64(delta));
    pending_sign_ = Sgn(delta);
  }
  --pending_;
  return pending_sign_;
}

double ExpansionVariabilityBoundPositive(int64_t f_prev, int64_t delta) {
  assert(delta > 0);
  assert(f_prev >= 0);
  double f_new = static_cast<double>(f_prev + delta);
  double d = static_cast<double>(delta);
  return (d / f_new) * (1.0 + HarmonicNumber(static_cast<uint64_t>(delta)));
}

double ExpansionVariabilityExact(int64_t f_prev, int64_t delta) {
  assert(delta != 0);
  double v = 0.0;
  int sign = Sgn(delta);
  int64_t f = f_prev;
  for (int64_t i = 0; i < static_cast<int64_t>(AbsU64(delta)); ++i) {
    f += sign;
    v += (f == 0) ? 1.0
                  : std::min(1.0, 1.0 / static_cast<double>(AbsU64(f)));
  }
  return v;
}

}  // namespace varstream
