#include "stream/item_generators.h"

#include <cassert>
#include <cstdio>

namespace varstream {

ZipfChurnGenerator::ZipfChurnGenerator(uint64_t universe, double skew,
                                       double drift, uint64_t seed)
    : sampler_(universe, skew), drift_(drift), rng_(seed) {
  assert(drift > 0 && drift <= 1);
}

ItemEvent ZipfChurnGenerator::NextEvent() {
  bool insert = present_.empty() || rng_.Bernoulli((1.0 + drift_) / 2.0);
  if (insert) {
    uint64_t item = sampler_.Sample(&rng_);
    present_.push_back(item);
    return {item, +1};
  }
  uint64_t idx = rng_.UniformBelow(present_.size());
  uint64_t item = present_[idx];
  present_[idx] = present_.back();
  present_.pop_back();
  return {item, -1};
}

std::string ZipfChurnGenerator::name() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "zipf-churn(drift=%g)", drift_);
  return buf;
}

SlidingWindowGenerator::SlidingWindowGenerator(uint64_t universe,
                                               uint64_t window, double skew,
                                               uint64_t seed)
    : sampler_(universe, skew), window_(window), rng_(seed) {
  assert(window >= 1);
}

ItemEvent SlidingWindowGenerator::NextEvent() {
  // While below the window the stream is pure inserts; once the window is
  // full, the model still delivers one event per timestep, so inserts and
  // expiry deletions alternate.
  if (live_.size() >= window_ && !delete_next_) {
    delete_next_ = true;
  }
  if (delete_next_ && !live_.empty()) {
    delete_next_ = false;
    uint64_t item = live_.front();
    live_.pop_front();
    return {item, -1};
  }
  uint64_t item = sampler_.Sample(&rng_);
  live_.push_back(item);
  return {item, +1};
}

std::string SlidingWindowGenerator::name() const {
  return "sliding-window(W=" + std::to_string(window_) + ")";
}

HotItemFlipGenerator::HotItemFlipGenerator(uint64_t universe, int64_t plateau,
                                           uint64_t seed)
    : universe_(universe), plateau_(plateau), rng_(seed) {
  assert(universe >= 2);
  assert(plateau >= 2);
}

ItemEvent HotItemFlipGenerator::NextEvent() {
  if (f1_ < plateau_) {
    // Fill phase: insert background items (round-robin over universe \ {0}).
    uint64_t item = 1 + (fill_next_ - 1) % (universe_ - 1);
    ++fill_next_;
    ++f1_;
    return {item, +1};
  }
  // Plateau: flip the hot item (item 0) in and out.
  if (hot_present_) {
    hot_present_ = false;
    --f1_;
    return {0, -1};
  }
  hot_present_ = true;
  ++f1_;
  return {0, +1};
}

std::string HotItemFlipGenerator::name() const {
  return "hot-item(plateau=" + std::to_string(plateau_) + ")";
}

std::unique_ptr<ItemGenerator> MakeItemGeneratorByName(const std::string& name,
                                                       uint64_t universe,
                                                       uint64_t seed) {
  if (name == "zipf-churn") {
    return std::make_unique<ZipfChurnGenerator>(universe, 1.1, 0.4, seed);
  }
  if (name == "sliding-window") {
    return std::make_unique<SlidingWindowGenerator>(universe, universe / 4 + 1,
                                                    1.1, seed);
  }
  if (name == "hot-item") {
    return std::make_unique<HotItemFlipGenerator>(
        universe, static_cast<int64_t>(universe / 2 + 2), seed);
  }
  return nullptr;
}

}  // namespace varstream
