// Appendix C: simulating large updates. The upper-bound algorithms of
// section 3 assume f'(n) = +-1; an update with |f'(n)| > 1 is simulated by
// |f'(n)| arrivals of +-1. Theorem C.1 bounds the variability overhead of
// this expansion by a factor O(log max|f'|).

#ifndef VARSTREAM_STREAM_EXPANSION_H_
#define VARSTREAM_STREAM_EXPANSION_H_

#include <cstdint>
#include <vector>

#include "stream/generator.h"

namespace varstream {

/// Expands one update of magnitude |delta| into |delta| unit steps with the
/// sign of delta. delta = 0 produces nothing.
std::vector<int64_t> ExpandUpdate(int64_t delta);

/// Adapter: wraps a generator with arbitrary step sizes and re-emits its
/// stream as +-1 unit updates (Appendix C simulation). The adapted stream
/// has sum-preserving prefix values: after consuming the expansion of
/// f'(t), the running sum equals f(t).
class UnitExpansionGenerator : public CountGenerator {
 public:
  /// Takes ownership of `inner`.
  explicit UnitExpansionGenerator(std::unique_ptr<CountGenerator> inner);

  int64_t NextDelta() override;
  int64_t initial_value() const override { return inner_->initial_value(); }
  std::string name() const override { return inner_->name() + "+unit"; }

  /// Number of original (pre-expansion) updates consumed so far.
  uint64_t inner_updates() const { return inner_updates_; }

 private:
  std::unique_ptr<CountGenerator> inner_;
  int64_t pending_ = 0;   // remaining magnitude of the current update
  int pending_sign_ = 0;  // its sign
  uint64_t inner_updates_ = 0;
};

/// Theorem C.1 (positive case): upper bound on the variability contributed
/// by expanding an update f'(n) = delta > 1 arriving when f(n-1) = f_prev:
///   sum_{t=1..delta} 1/(f_prev + t) <= (delta/f(n)) * (1 + H(delta)).
/// Returns the bound's value. Requires delta > 0 and f_prev >= 0.
double ExpansionVariabilityBoundPositive(int64_t f_prev, int64_t delta);

/// Exact variability contributed by the expansion of one update, i.e.
/// sum over the unit steps of min{1, 1/|f|} evaluated at each intermediate
/// value. Requires delta != 0.
double ExpansionVariabilityExact(int64_t f_prev, int64_t delta);

}  // namespace varstream

#endif  // VARSTREAM_STREAM_EXPANSION_H_
