#include "stream/variability.h"

#include <algorithm>
#include <cstdlib>

#include "common/math_util.h"

namespace varstream {

VariabilityMeter::VariabilityMeter(int64_t initial_value)
    : f_(initial_value) {}

double VariabilityMeter::Push(int64_t delta) {
  f_ += delta;
  ++n_;
  double contribution;
  if (f_ == 0) {
    contribution = 1.0;
  } else {
    contribution = std::min(
        1.0, static_cast<double>(AbsU64(delta)) /
                 static_cast<double>(AbsU64(f_)));
  }
  v_ += contribution;
  return contribution;
}

double F1VariabilityMeter::Push(int32_t delta) {
  f1_ += delta;
  ++n_;
  double contribution =
      (f1_ <= 0) ? 1.0
                 : std::min(1.0, 1.0 / static_cast<double>(f1_));
  v_ += contribution;
  return contribution;
}

double ComputeVariability(const std::vector<int64_t>& f, int64_t f0) {
  VariabilityMeter meter(f0);
  int64_t prev = f0;
  for (int64_t value : f) {
    meter.Push(value - prev);
    prev = value;
  }
  return meter.value();
}

std::vector<double> VariabilityPrefix(const std::vector<int64_t>& f,
                                      int64_t f0) {
  std::vector<double> prefix;
  prefix.reserve(f.size());
  VariabilityMeter meter(f0);
  int64_t prev = f0;
  for (int64_t value : f) {
    meter.Push(value - prev);
    prev = value;
    prefix.push_back(meter.value());
  }
  return prefix;
}

int64_t NegativeDriftTotal(const std::vector<int64_t>& f, int64_t f0) {
  int64_t total = 0;
  int64_t prev = f0;
  for (int64_t value : f) {
    int64_t delta = value - prev;
    if (delta < 0) total += -delta;
    prev = value;
  }
  return total;
}

int64_t PositiveDriftTotal(const std::vector<int64_t>& f, int64_t f0) {
  int64_t total = 0;
  int64_t prev = f0;
  for (int64_t value : f) {
    int64_t delta = value - prev;
    if (delta > 0) total += delta;
    prev = value;
  }
  return total;
}

}  // namespace varstream
