#include "stream/source.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/hash.h"

namespace varstream {

GeneratorSource::GeneratorSource(std::unique_ptr<CountGenerator> gen,
                                 std::unique_ptr<SiteAssigner> assigner,
                                 uint32_t num_sites, bool monotone)
    : owned_gen_(std::move(gen)),
      owned_assigner_(std::move(assigner)),
      gen_(owned_gen_.get()),
      assigner_(owned_assigner_.get()),
      num_sites_(num_sites),
      monotone_(monotone) {
  assert(gen_ != nullptr && assigner_ != nullptr);
}

GeneratorSource::GeneratorSource(CountGenerator* gen, SiteAssigner* assigner,
                                 uint32_t num_sites, bool monotone)
    : gen_(gen),
      assigner_(assigner),
      num_sites_(num_sites),
      monotone_(monotone) {
  assert(gen_ != nullptr && assigner_ != nullptr);
}

size_t GeneratorSource::NextBatch(std::span<CountUpdate> out) {
  for (CountUpdate& u : out) {
    u.site = assigner_->NextSite();
    u.delta = gen_->NextDelta();
  }
  return out.size();
}

std::string GeneratorSource::name() const {
  return gen_->name() + " via " + assigner_->name();
}

TraceSource::TraceSource(StreamTrace trace)
    : owned_trace_(std::move(trace)), trace_(&owned_trace_) {
  ScanMetadata();
}

TraceSource::TraceSource(const StreamTrace* trace) : trace_(trace) {
  assert(trace != nullptr);
  ScanMetadata();
}

void TraceSource::ScanMetadata() {
  uint32_t max_site = 0;
  for (const CountUpdate& u : trace_->updates()) {
    max_site = std::max(max_site, u.site);
    if (u.delta <= 0) monotone_ = false;
  }
  num_sites_ = trace_->size() == 0 ? 0 : max_site + 1;
}

std::unique_ptr<TraceSource> TraceSource::FromFile(const std::string& path,
                                                   std::string* error) {
  StreamTrace trace;
  if (!StreamTrace::LoadFromFile(path, &trace, error)) return nullptr;
  return std::make_unique<TraceSource>(std::move(trace));
}

size_t TraceSource::NextBatch(std::span<CountUpdate> out) {
  const std::vector<CountUpdate>& updates = trace_->updates();
  size_t take = std::min<size_t>(out.size(), updates.size() - pos_);
  std::copy_n(updates.begin() + static_cast<ptrdiff_t>(pos_), take,
              out.begin());
  pos_ += take;
  return take;
}

std::string TraceSource::name() const {
  return "trace(n=" + std::to_string(trace_->size()) + ")";
}

StreamTrace RecordTrace(StreamSource& source, uint64_t n) {
  std::vector<CountUpdate> updates(n);
  size_t got = source.NextBatch(updates);
  updates.resize(got);
  return StreamTrace(std::move(updates), source.initial_value());
}

std::vector<int64_t> MaterializeF(StreamSource& source, uint64_t n) {
  std::vector<CountUpdate> updates(n);
  size_t got = source.NextBatch(updates);
  std::vector<int64_t> f;
  f.reserve(got);
  int64_t value = source.initial_value();
  for (size_t t = 0; t < got; ++t) {
    value += updates[t].delta;
    f.push_back(value);
  }
  return f;
}

double StreamSpec::GetParam(const std::string& name,
                            double default_value) const {
  auto it = params.find(name);
  return it == params.end() ? default_value : it->second;
}

StreamRegistry& StreamRegistry::Instance() {
  static StreamRegistry* registry = new StreamRegistry();
  return *registry;
}

bool StreamRegistry::RegisterStream(const std::string& name,
                                    GeneratorFactory factory, bool monotone) {
  auto [it, inserted] =
      streams_.emplace(name, StreamEntry{std::move(factory), monotone});
  if (!inserted) {
    std::fprintf(stderr, "StreamRegistry: duplicate stream '%s'\n",
                 name.c_str());
    std::abort();
  }
  return true;
}

bool StreamRegistry::RegisterAssigner(const std::string& name,
                                      AssignerFactory factory) {
  auto [it, inserted] = assigners_.emplace(name, std::move(factory));
  if (!inserted) {
    std::fprintf(stderr, "StreamRegistry: duplicate assigner '%s'\n",
                 name.c_str());
    std::abort();
  }
  return true;
}

std::unique_ptr<StreamSource> StreamRegistry::Create(
    const std::string& stream, const StreamSpec& spec) const {
  std::unique_ptr<CountGenerator> gen = CreateGenerator(stream, spec);
  if (gen == nullptr) return nullptr;
  // Decorrelate the assigner from the generator: both are seeded from
  // spec.seed, so give the assigner a mixed seed of its own.
  StreamSpec assigner_spec = spec;
  assigner_spec.seed = Mix64(spec.seed ^ 0x517E5EEDull);
  std::unique_ptr<SiteAssigner> assigner =
      CreateAssigner(spec.assigner, assigner_spec);
  if (assigner == nullptr) return nullptr;
  return std::make_unique<GeneratorSource>(std::move(gen),
                                           std::move(assigner),
                                           spec.num_sites,
                                           IsMonotone(stream));
}

std::unique_ptr<CountGenerator> StreamRegistry::CreateGenerator(
    const std::string& name, const StreamSpec& spec) const {
  auto it = streams_.find(name);
  if (it == streams_.end()) return nullptr;
  return it->second.factory(spec);
}

std::unique_ptr<SiteAssigner> StreamRegistry::CreateAssigner(
    const std::string& name, const StreamSpec& spec) const {
  auto it = assigners_.find(name);
  if (it == assigners_.end()) return nullptr;
  return it->second(spec);
}

bool StreamRegistry::ContainsStream(const std::string& name) const {
  return streams_.count(name) > 0;
}

bool StreamRegistry::ContainsAssigner(const std::string& name) const {
  return assigners_.count(name) > 0;
}

bool StreamRegistry::IsMonotone(const std::string& name) const {
  auto it = streams_.find(name);
  return it != streams_.end() && it->second.monotone;
}

std::vector<std::string> StreamRegistry::StreamNames() const {
  std::vector<std::string> names;
  names.reserve(streams_.size());
  for (const auto& [name, entry] : streams_) names.push_back(name);
  return names;
}

std::vector<std::string> StreamRegistry::AssignerNames() const {
  std::vector<std::string> names;
  names.reserve(assigners_.size());
  for (const auto& [name, factory] : assigners_) names.push_back(name);
  return names;
}

std::string StreamRegistry::ListingText() const {
  std::string out = "streams:\n";
  for (const auto& [name, entry] : streams_) {
    out += "  " + name + (entry.monotone ? " (monotone)" : "") + "\n";
  }
  out += "assigners:\n";
  for (const auto& [name, factory] : assigners_) {
    out += "  " + name + "\n";
  }
  return out;
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

}  // namespace varstream
