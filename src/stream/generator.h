// Stream generators for every input class the paper analyzes:
//
//   * monotone streams                      (Theorem 2.1 with beta = 1)
//   * nearly monotone streams               (Theorem 2.1, general beta)
//   * symmetric random walks                (Theorem 2.2)
//   * biased random walks with drift mu     (Theorem 2.4)
//   * oscillating / sawtooth / zero-crossing adversarial streams
//     (the high-variability regime motivating the Omega(n) lower bounds)
//   * large-step streams                    (Appendix C)
//
// A generator emits the update sequence f'(1), f'(2), ...; site assignment
// is orthogonal (see site_assigner.h).

#ifndef VARSTREAM_STREAM_GENERATOR_H_
#define VARSTREAM_STREAM_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"

namespace varstream {

/// Produces the update sequence f'(1), f'(2), ... of a count stream.
/// Generators are stateful and single-pass; construct a fresh one (same
/// seed) to replay a stream.
class CountGenerator {
 public:
  virtual ~CountGenerator() = default;

  /// Returns f'(t) for the next timestep t.
  virtual int64_t NextDelta() = 0;

  /// Initial value f(0); 0 unless stated otherwise (problem definition).
  virtual int64_t initial_value() const { return 0; }

  /// Human-readable name used in benchmark tables.
  virtual std::string name() const = 0;
};

/// f'(t) = +1 always: the classic monotone counting stream.
class MonotoneGenerator : public CountGenerator {
 public:
  MonotoneGenerator() = default;
  int64_t NextDelta() override { return +1; }
  std::string name() const override { return "monotone"; }
};

/// Deterministic nearly-monotone stream: repeats [+1 x up, -1 x down] with
/// up > down, so f climbs (up - down) per period. Satisfies the premise of
/// Theorem 2.1 with beta = down / (up - down) for n past the first period.
class NearlyMonotoneGenerator : public CountGenerator {
 public:
  /// Requires up > down >= 0.
  NearlyMonotoneGenerator(uint64_t up, uint64_t down);
  int64_t NextDelta() override;
  std::string name() const override;

  /// The beta for which f^-(n) <= beta * f(n) holds eventually.
  double beta() const;

 private:
  uint64_t up_;
  uint64_t down_;
  uint64_t phase_ = 0;  // position within the (up + down)-step period
};

/// f'(t) i.i.d. uniform on {-1, +1}: the symmetric random walk of
/// Theorem 2.2. E[v(n)] = O(sqrt(n) log n).
class RandomWalkGenerator : public CountGenerator {
 public:
  explicit RandomWalkGenerator(uint64_t seed);
  int64_t NextDelta() override { return rng_.Sign(); }
  std::string name() const override { return "random-walk"; }

 private:
  Rng rng_;
};

/// f'(t) i.i.d. with P(+1) = (1 + mu)/2: the biased walk of Theorem 2.4.
/// E[v(n)] = O(log(n) / mu) for constant mu > 0.
class BiasedWalkGenerator : public CountGenerator {
 public:
  /// Requires mu in [-1, 1], mu != 0.
  BiasedWalkGenerator(double mu, uint64_t seed);
  int64_t NextDelta() override { return rng_.BiasedSign(mu_); }
  std::string name() const override;
  double mu() const { return mu_; }

 private:
  double mu_;
  Rng rng_;
};

/// Deterministic sawtooth between 0 and `amplitude`: climb +1 to the top,
/// then -1 back to 0, forever. Variability is Theta(n log(A) / A): high
/// variability because f repeatedly returns to zero.
class SawtoothGenerator : public CountGenerator {
 public:
  /// Requires amplitude >= 1.
  explicit SawtoothGenerator(int64_t amplitude);
  int64_t NextDelta() override;
  std::string name() const override;

 private:
  int64_t amplitude_;
  int64_t level_ = 0;
  int dir_ = +1;
};

/// Worst-case stream: f alternates 1, 0, 1, 0, ... so v(n) = n exactly
/// (every step is a relative change of 1). This is the regime where the
/// Omega(n) lower bounds for non-monotone tracking bind.
class ZeroCrossingGenerator : public CountGenerator {
 public:
  ZeroCrossingGenerator() = default;
  int64_t NextDelta() override;
  std::string name() const override { return "zero-crossing"; }

 private:
  bool up_next_ = true;
};

/// The lower-bound-style oscillator (Theorem 4.1 shape): f starts at
/// `base`, and every `period` steps toggles between base and base + jump
/// via a burst of +-1 steps. Low variability when base >> jump.
class OscillatorGenerator : public CountGenerator {
 public:
  /// Requires base >= 1, jump >= 1, period >= 2 * jump.
  OscillatorGenerator(int64_t base, int64_t jump, uint64_t period);
  int64_t NextDelta() override;
  std::string name() const override;
  int64_t initial_value() const override { return base_; }

 private:
  int64_t base_;
  int64_t jump_;
  uint64_t period_;
  uint64_t t_ = 0;     // steps emitted so far
  int64_t level_ = 0;  // f(t) - base
  bool high_ = false;  // currently at base + jump?
};

/// Random steps with |f'(t)| possibly > 1: uniform on [-max_step, max_step]
/// \ {0} plus drift. Used to exercise the Appendix C expansion.
class LargeStepGenerator : public CountGenerator {
 public:
  /// Requires max_step >= 1; drift in [-1, 1] biases the step sign.
  LargeStepGenerator(int64_t max_step, double drift, uint64_t seed);
  int64_t NextDelta() override;
  std::string name() const override;

 private:
  int64_t max_step_;
  double drift_;
  Rng rng_;
};

/// Mostly-calm +1 drift punctuated by rare large spikes (a burst of -1s
/// followed by recovery) — models flash crowds / outage dips. Between
/// spikes the variability accrues like a monotone stream; each spike adds
/// O(spike/f) — so v stays small when f >> spike.
class SpikeGenerator : public CountGenerator {
 public:
  /// A spike of `spike_size` deletions begins with probability
  /// `spike_prob` at each calm step. Requires spike_size >= 1.
  SpikeGenerator(int64_t spike_size, double spike_prob, uint64_t seed);
  int64_t NextDelta() override;
  std::string name() const override;

 private:
  int64_t spike_size_;
  double spike_prob_;
  Rng rng_;
  int64_t spike_remaining_ = 0;
};

/// Alternates between drift regimes +mu and -mu every `period` steps: the
/// stream climbs, then decays, then climbs again. Piecewise Theorem 2.4
/// behaviour with regime boundaries where |f| can head toward zero.
class RegimeSwitchGenerator : public CountGenerator {
 public:
  /// Requires mu in (0, 1], period >= 1.
  RegimeSwitchGenerator(double mu, uint64_t period, uint64_t seed);
  int64_t NextDelta() override;
  std::string name() const override;

 private:
  double mu_;
  uint64_t period_;
  Rng rng_;
  uint64_t t_ = 0;
  int64_t f_ = 0;  // tracked to avoid drifting below zero
};

/// A daily-profile stream: f follows a 24-point target curve (scaled by
/// `scale`) with Bernoulli noise, one "day" per `steps_per_day` updates.
/// The realistic non-monotone workload of the sensor-network example,
/// packaged as a reusable generator.
class DiurnalGenerator : public CountGenerator {
 public:
  /// Requires scale >= 1, steps_per_day >= 48.
  DiurnalGenerator(int64_t scale, uint64_t steps_per_day, uint64_t seed);
  int64_t NextDelta() override;
  std::string name() const override;

 private:
  int64_t TargetAt(uint64_t step) const;

  int64_t scale_;
  uint64_t steps_per_day_;
  Rng rng_;
  uint64_t t_ = 0;
  int64_t f_ = 0;
};

/// Materializes the first n values f(1..n) of a generator (f(0) is
/// gen->initial_value()). Element [t-1] of the result is f(t).
std::vector<int64_t> MaterializeF(CountGenerator* gen, uint64_t n);

/// Factory by name, for CLI-driven binaries. Supported names:
/// "monotone", "nearly-monotone", "random-walk", "biased-walk", "sawtooth",
/// "zero-crossing", "oscillator", "large-step", "spike", "regime-switch",
/// "diurnal". Returns nullptr for unknown names.
std::unique_ptr<CountGenerator> MakeGeneratorByName(const std::string& name,
                                                    uint64_t seed);

}  // namespace varstream

#endif  // VARSTREAM_STREAM_GENERATOR_H_
