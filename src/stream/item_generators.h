// Item-stream generators for the frequency-tracking problem (Appendix H).
// At each timestep either an item from universe U is inserted into the
// dataset D, or an item currently in D is deleted. Generators maintain D so
// deletions are always valid (never delete from an empty dataset).

#ifndef VARSTREAM_STREAM_ITEM_GENERATORS_H_
#define VARSTREAM_STREAM_ITEM_GENERATORS_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"

namespace varstream {

/// One logical item event: which item, and insert (+1) or delete (-1).
struct ItemEvent {
  uint64_t item = 0;
  int32_t delta = +1;
};

/// Produces the item-event sequence of an insert/delete stream over a
/// finite universe.
class ItemGenerator {
 public:
  virtual ~ItemGenerator() = default;

  /// Returns the next event. Implementations guarantee deletes target an
  /// item currently present in D.
  virtual ItemEvent NextEvent() = 0;

  /// Current dataset size F1 = |D|.
  virtual int64_t f1() const = 0;

  virtual uint64_t universe_size() const = 0;
  virtual std::string name() const = 0;
};

/// Zipf-distributed inserts with probability (1 + drift)/2, else a uniform
/// deletion from D. With drift > 0 the dataset grows; frequencies follow a
/// Zipf profile, giving realistic heavy hitters.
class ZipfChurnGenerator : public ItemGenerator {
 public:
  /// Requires universe >= 1, skew >= 0, drift in (0, 1].
  ZipfChurnGenerator(uint64_t universe, double skew, double drift,
                     uint64_t seed);

  ItemEvent NextEvent() override;
  int64_t f1() const override {
    return static_cast<int64_t>(present_.size());
  }
  uint64_t universe_size() const override { return sampler_.universe_size(); }
  std::string name() const override;

 private:
  ZipfSampler sampler_;
  double drift_;
  Rng rng_;
  // Multiset of live item copies, stored flat for O(1) uniform deletion via
  // swap-remove.
  std::vector<uint64_t> present_;
};

/// Sliding-window stream: inserts item h(t) at time t and deletes the item
/// inserted at time t - window once the window is full. F1 saturates at
/// `window` — a canonically "nearly monotone then flat" F1 profile.
class SlidingWindowGenerator : public ItemGenerator {
 public:
  /// Requires universe >= 1, window >= 1.
  SlidingWindowGenerator(uint64_t universe, uint64_t window, double skew,
                         uint64_t seed);

  ItemEvent NextEvent() override;
  int64_t f1() const override {
    return static_cast<int64_t>(live_.size());
  }
  uint64_t universe_size() const override { return sampler_.universe_size(); }
  std::string name() const override;

 private:
  ZipfSampler sampler_;
  uint64_t window_;
  Rng rng_;
  std::deque<uint64_t> live_;  // insertion-ordered live items
  bool delete_next_ = false;   // alternate insert/delete once saturated
};

/// Adversarial churn: grows D to `plateau`, then alternates insert/delete
/// of a single hot item forever. Keeps F1 nearly constant while one item's
/// frequency oscillates — stress case for per-item tracking.
class HotItemFlipGenerator : public ItemGenerator {
 public:
  /// Requires universe >= 2, plateau >= 2.
  HotItemFlipGenerator(uint64_t universe, int64_t plateau, uint64_t seed);

  ItemEvent NextEvent() override;
  int64_t f1() const override { return f1_; }
  uint64_t universe_size() const override { return universe_; }
  std::string name() const override;

 private:
  uint64_t universe_;
  int64_t plateau_;
  Rng rng_;
  int64_t f1_ = 0;
  bool hot_present_ = false;
  uint64_t fill_next_ = 1;  // next background item to insert (item 0 is hot)
};

/// Factory by name: "zipf-churn", "sliding-window", "hot-item".
/// Returns nullptr for unknown names.
std::unique_ptr<ItemGenerator> MakeItemGeneratorByName(const std::string& name,
                                                       uint64_t universe,
                                                       uint64_t seed);

}  // namespace varstream

#endif  // VARSTREAM_STREAM_ITEM_GENERATORS_H_
