#include "stream/trace.h"

#include <cassert>
#include <cstring>
#include <fstream>

#include "stream/variability.h"

namespace varstream {

namespace {

constexpr uint32_t kTraceMagic = 0x56535452;  // "VSTR"
// Format history: 1 = unversioned header (magic, f0, count) — no longer
// read; 2 = versioned header + trailing-garbage rejection.
constexpr uint32_t kTraceVersion = 2;

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

template <typename T>
void AppendLE(std::vector<uint8_t>* buf, T value) {
  for (size_t i = 0; i < sizeof(T); ++i) {
    buf->push_back(static_cast<uint8_t>(
        (static_cast<uint64_t>(value) >> (8 * i)) & 0xFF));
  }
}

template <typename T>
bool ReadLE(const std::vector<uint8_t>& buf, size_t* pos, T* out) {
  if (*pos + sizeof(T) > buf.size()) return false;
  uint64_t v = 0;
  for (size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<uint64_t>(buf[*pos + i]) << (8 * i);
  }
  *pos += sizeof(T);
  *out = static_cast<T>(v);
  return true;
}

}  // namespace

StreamTrace StreamTrace::Record(CountGenerator* gen, SiteAssigner* assigner,
                                uint64_t n) {
  std::vector<CountUpdate> updates;
  updates.reserve(n);
  for (uint64_t t = 0; t < n; ++t) {
    updates.push_back({assigner->NextSite(), gen->NextDelta()});
  }
  return StreamTrace(std::move(updates), gen->initial_value());
}

StreamTrace::StreamTrace(std::vector<CountUpdate> updates,
                         int64_t initial_value)
    : updates_(std::move(updates)), initial_value_(initial_value) {
  BuildPrefix();
}

void StreamTrace::BuildPrefix() {
  prefix_.clear();
  prefix_.reserve(updates_.size());
  int64_t f = initial_value_;
  for (const auto& u : updates_) {
    f += u.delta;
    prefix_.push_back(f);
  }
}

int64_t StreamTrace::ValueAt(uint64_t t) const {
  if (t == 0) return initial_value_;
  assert(t <= prefix_.size());
  return prefix_[t - 1];
}

int64_t StreamTrace::final_value() const {
  return prefix_.empty() ? initial_value_ : prefix_.back();
}

double StreamTrace::Variability() const {
  return ComputeVariability(prefix_, initial_value_);
}

StreamTrace StreamTrace::Prefix(uint64_t n) const {
  if (n >= updates_.size()) return *this;
  return StreamTrace(
      std::vector<CountUpdate>(updates_.begin(),
                               updates_.begin() + static_cast<size_t>(n)),
      initial_value_);
}

StreamTrace StreamTrace::RemapSites(uint32_t num_sites) const {
  assert(num_sites >= 1);
  std::vector<CountUpdate> remapped = updates_;
  for (CountUpdate& u : remapped) u.site %= num_sites;
  return StreamTrace(std::move(remapped), initial_value_);
}

std::vector<uint8_t> StreamTrace::Serialize() const {
  std::vector<uint8_t> buf;
  buf.reserve(24 + updates_.size() * 12);
  AppendLE<uint32_t>(&buf, kTraceMagic);
  AppendLE<uint32_t>(&buf, kTraceVersion);
  AppendLE<int64_t>(&buf, initial_value_);
  AppendLE<uint64_t>(&buf, updates_.size());
  for (const auto& u : updates_) {
    AppendLE<uint32_t>(&buf, u.site);
    AppendLE<int64_t>(&buf, u.delta);
  }
  return buf;
}

bool StreamTrace::SaveToFile(const std::string& path) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return false;
  std::vector<uint8_t> bytes = Serialize();
  file.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(file);
}

bool StreamTrace::LoadFromFile(const std::string& path, StreamTrace* out,
                               std::string* error) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) {
    SetError(error, "cannot open '" + path + "'");
    return false;
  }
  std::streamsize size = file.tellg();
  if (size < 0) {
    SetError(error, "cannot stat '" + path + "'");
    return false;
  }
  file.seekg(0);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  if (!file.read(reinterpret_cast<char*>(bytes.data()), size)) {
    SetError(error, "short read from '" + path + "'");
    return false;
  }
  return Deserialize(bytes, out, error);
}

bool StreamTrace::Deserialize(const std::vector<uint8_t>& buffer,
                              StreamTrace* out, std::string* error) {
  size_t pos = 0;
  uint32_t magic = 0;
  if (!ReadLE(buffer, &pos, &magic)) {
    SetError(error, "trace shorter than its magic (" +
                        std::to_string(buffer.size()) + " bytes)");
    return false;
  }
  if (magic != kTraceMagic) {
    SetError(error, "bad magic: not a varstream trace");
    return false;
  }
  uint32_t version = 0;
  if (!ReadLE(buffer, &pos, &version)) {
    SetError(error, "truncated header: missing version field");
    return false;
  }
  if (version != kTraceVersion) {
    SetError(error, "unsupported trace version " + std::to_string(version) +
                        " (expected " + std::to_string(kTraceVersion) +
                        "; version-less v1 files must be re-recorded)");
    return false;
  }
  int64_t initial = 0;
  uint64_t count = 0;
  if (!ReadLE(buffer, &pos, &initial) || !ReadLE(buffer, &pos, &count)) {
    SetError(error, "truncated header: missing f(0) or update count");
    return false;
  }
  // Each update is 12 bytes; the body must match the declared count
  // exactly — a short body is a truncated file, a long one is garbage or
  // corruption. Either way, refuse instead of silently truncating.
  const uint64_t body = buffer.size() - pos;
  if (body / 12 < count) {
    SetError(error, "truncated body: header declares " +
                        std::to_string(count) + " updates (" +
                        std::to_string(count * 12) + " bytes) but only " +
                        std::to_string(body) + " bytes follow");
    return false;
  }
  if (body != count * 12) {
    SetError(error, std::to_string(body - count * 12) +
                        " trailing bytes past the declared " +
                        std::to_string(count) + " updates");
    return false;
  }
  std::vector<CountUpdate> updates;
  updates.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    CountUpdate u;
    ReadLE(buffer, &pos, &u.site);
    ReadLE(buffer, &pos, &u.delta);
    updates.push_back(u);
  }
  *out = StreamTrace(std::move(updates), initial);
  return true;
}

}  // namespace varstream
