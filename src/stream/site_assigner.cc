#include "stream/site_assigner.h"

#include <cassert>
#include <cstdio>

namespace varstream {

RoundRobinAssigner::RoundRobinAssigner(uint32_t num_sites)
    : num_sites_(num_sites) {
  assert(num_sites >= 1);
}

uint32_t RoundRobinAssigner::NextSite() {
  uint32_t site = next_;
  next_ = (next_ + 1) % num_sites_;
  return site;
}

UniformAssigner::UniformAssigner(uint32_t num_sites, uint64_t seed)
    : num_sites_(num_sites), rng_(seed) {
  assert(num_sites >= 1);
}

uint32_t UniformAssigner::NextSite() {
  return static_cast<uint32_t>(rng_.UniformBelow(num_sites_));
}

SkewedAssigner::SkewedAssigner(uint32_t num_sites, double skew, uint64_t seed)
    : skew_(skew), sampler_(num_sites, skew), rng_(seed) {
  assert(num_sites >= 1);
}

uint32_t SkewedAssigner::NextSite() {
  return static_cast<uint32_t>(sampler_.Sample(&rng_));
}

std::string SkewedAssigner::name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "skewed(s=%g)", skew_);
  return buf;
}

BurstAssigner::BurstAssigner(uint32_t num_sites, uint64_t burst)
    : num_sites_(num_sites), burst_(burst) {
  assert(num_sites >= 1);
  assert(burst >= 1);
}

uint32_t BurstAssigner::NextSite() {
  uint32_t site = site_;
  if (++emitted_ >= burst_) {
    emitted_ = 0;
    site_ = (site_ + 1) % num_sites_;
  }
  return site;
}

std::string BurstAssigner::name() const {
  return "burst(B=" + std::to_string(burst_) + ")";
}

std::unique_ptr<SiteAssigner> MakeAssignerByName(const std::string& name,
                                                 uint32_t num_sites,
                                                 uint64_t seed) {
  if (name == "round-robin") {
    return std::make_unique<RoundRobinAssigner>(num_sites);
  }
  if (name == "uniform") {
    return std::make_unique<UniformAssigner>(num_sites, seed);
  }
  if (name == "skewed") {
    return std::make_unique<SkewedAssigner>(num_sites, 1.0, seed);
  }
  if (name == "single") return std::make_unique<SingleSiteAssigner>();
  if (name == "burst") {
    return std::make_unique<BurstAssigner>(num_sites, 64);
  }
  return nullptr;
}

}  // namespace varstream
