#include "stream/site_assigner.h"

#include <cassert>
#include <cstdio>

#include "stream/source.h"

namespace varstream {

RoundRobinAssigner::RoundRobinAssigner(uint32_t num_sites)
    : num_sites_(num_sites) {
  assert(num_sites >= 1);
}

uint32_t RoundRobinAssigner::NextSite() {
  uint32_t site = next_;
  next_ = (next_ + 1) % num_sites_;
  return site;
}

UniformAssigner::UniformAssigner(uint32_t num_sites, uint64_t seed)
    : num_sites_(num_sites), rng_(seed) {
  assert(num_sites >= 1);
}

uint32_t UniformAssigner::NextSite() {
  return static_cast<uint32_t>(rng_.UniformBelow(num_sites_));
}

SkewedAssigner::SkewedAssigner(uint32_t num_sites, double skew, uint64_t seed)
    : skew_(skew), sampler_(num_sites, skew), rng_(seed) {
  assert(num_sites >= 1);
}

uint32_t SkewedAssigner::NextSite() {
  return static_cast<uint32_t>(sampler_.Sample(&rng_));
}

std::string SkewedAssigner::name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "skewed(s=%g)", skew_);
  return buf;
}

BurstAssigner::BurstAssigner(uint32_t num_sites, uint64_t burst)
    : num_sites_(num_sites), burst_(burst) {
  assert(num_sites >= 1);
  assert(burst >= 1);
}

uint32_t BurstAssigner::NextSite() {
  uint32_t site = site_;
  if (++emitted_ >= burst_) {
    emitted_ = 0;
    site_ = (site_ + 1) % num_sites_;
  }
  return site;
}

std::string BurstAssigner::name() const {
  return "burst(B=" + std::to_string(burst_) + ")";
}

std::unique_ptr<SiteAssigner> MakeAssignerByName(const std::string& name,
                                                 uint32_t num_sites,
                                                 uint64_t seed) {
  StreamSpec spec;
  spec.num_sites = num_sites;
  spec.seed = seed;
  return StreamRegistry::Instance().CreateAssigner(name, spec);
}

// --- StreamRegistry registrations (spec.params defaults match the
// defaults MakeAssignerByName has always used).

VARSTREAM_REGISTER_ASSIGNER(
    "round-robin",
    [](const StreamSpec& spec) -> std::unique_ptr<SiteAssigner> {
      return std::make_unique<RoundRobinAssigner>(spec.num_sites);
    })

VARSTREAM_REGISTER_ASSIGNER(
    "uniform", [](const StreamSpec& spec) -> std::unique_ptr<SiteAssigner> {
      return std::make_unique<UniformAssigner>(spec.num_sites, spec.seed);
    })

VARSTREAM_REGISTER_ASSIGNER(
    "skewed", [](const StreamSpec& spec) -> std::unique_ptr<SiteAssigner> {
      return std::make_unique<SkewedAssigner>(
          spec.num_sites, spec.GetParam("skew", 1.0), spec.seed);
    })

VARSTREAM_REGISTER_ASSIGNER(
    "single", [](const StreamSpec&) -> std::unique_ptr<SiteAssigner> {
      return std::make_unique<SingleSiteAssigner>();
    })

VARSTREAM_REGISTER_ASSIGNER(
    "burst", [](const StreamSpec& spec) -> std::unique_ptr<SiteAssigner> {
      return std::make_unique<BurstAssigner>(
          spec.num_sites,
          static_cast<uint64_t>(spec.GetParam("burst", 64)));
    })

}  // namespace varstream
