// StreamSource: the unified pull-based input abstraction. Every way this
// repository produces a count stream — a CountGenerator dealt across sites
// by a SiteAssigner, a recorded StreamTrace, or a trace file on disk — is
// exposed behind one batch API, so drivers, tools, and the Scenario/suite
// layer consume any input class through a single code path:
//
//   StreamSpec spec;
//   spec.num_sites = 16;
//   spec.seed = 7;
//   auto source = StreamRegistry::Instance().Create("random-walk", spec);
//
//   std::vector<CountUpdate> buf(4096);
//   size_t got = source->NextBatch(buf);   // fills the span, returns count
//
// Sources self-register by name in the StreamRegistry (the macros live in
// the generator/assigner .cc files, mirroring TrackerRegistry), so new
// input classes become available to every tool, bench, and suite by adding
// one macro line.

#ifndef VARSTREAM_STREAM_SOURCE_H_
#define VARSTREAM_STREAM_SOURCE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "stream/generator.h"
#include "stream/site_assigner.h"
#include "stream/trace.h"
#include "stream/update.h"

namespace varstream {

/// A pull-based producer of (site, delta) updates. Sources are stateful
/// and single-pass; construct a fresh one (same spec + seed) to replay a
/// stream.
class StreamSource {
 public:
  /// remaining() value for generator-backed sources, which never run dry.
  static constexpr uint64_t kUnbounded = ~uint64_t{0};

  virtual ~StreamSource() = default;

  /// Fills `out` with the next updates in stream order and returns how
  /// many were written. Writes fewer than out.size() only when the source
  /// is exhausted; 0 means exhausted.
  virtual size_t NextBatch(std::span<CountUpdate> out) = 0;

  /// Initial value f(0); 0 unless stated otherwise (problem definition).
  virtual int64_t initial_value() const { return 0; }

  /// Human-readable name used in tables and result rows.
  virtual std::string name() const = 0;

  /// Sites the stream is dealt across (every emitted site is below this);
  /// 0 when unknown (non-owning adapter over externally built parts).
  virtual uint32_t num_sites() const = 0;

  /// True when every delta is positive (safe for insertion-only trackers).
  virtual bool monotone() const { return false; }

  /// Updates left, or kUnbounded for endless generator-backed sources.
  virtual uint64_t remaining() const { return kUnbounded; }
};

/// Adapts a CountGenerator + SiteAssigner pair. Owning and non-owning
/// (borrowed parts must outlive the source) constructions are supported;
/// lets callers borrow externally built parts).
class GeneratorSource : public StreamSource {
 public:
  GeneratorSource(std::unique_ptr<CountGenerator> gen,
                  std::unique_ptr<SiteAssigner> assigner, uint32_t num_sites,
                  bool monotone = false);
  GeneratorSource(CountGenerator* gen, SiteAssigner* assigner,
                  uint32_t num_sites = 0, bool monotone = false);

  size_t NextBatch(std::span<CountUpdate> out) override;
  int64_t initial_value() const override { return gen_->initial_value(); }
  std::string name() const override;
  uint32_t num_sites() const override { return num_sites_; }
  bool monotone() const override { return monotone_; }

 private:
  std::unique_ptr<CountGenerator> owned_gen_;
  std::unique_ptr<SiteAssigner> owned_assigner_;
  CountGenerator* gen_;
  SiteAssigner* assigner_;
  uint32_t num_sites_;
  bool monotone_;
};

/// Replays a recorded StreamTrace (owned copy or borrowed pointer). A
/// finite source: NextBatch short-reads exactly once, at the end.
class TraceSource : public StreamSource {
 public:
  explicit TraceSource(StreamTrace trace);
  explicit TraceSource(const StreamTrace* trace);  // non-owning

  /// Loads a trace file (stream/trace.h format). Returns nullptr and sets
  /// *error on I/O failure or malformed content.
  static std::unique_ptr<TraceSource> FromFile(const std::string& path,
                                               std::string* error = nullptr);

  size_t NextBatch(std::span<CountUpdate> out) override;
  int64_t initial_value() const override { return trace_->initial_value(); }
  std::string name() const override;
  uint32_t num_sites() const override { return num_sites_; }
  bool monotone() const override { return monotone_; }
  uint64_t remaining() const override { return trace_->size() - pos_; }

  /// Rewinds to the beginning for another replay.
  void Reset() { pos_ = 0; }

  const StreamTrace& trace() const { return *trace_; }

 private:
  void ScanMetadata();

  StreamTrace owned_trace_;
  const StreamTrace* trace_;
  uint64_t pos_ = 0;
  uint32_t num_sites_ = 0;
  bool monotone_ = true;
};

/// Materializes the next `n` updates of a source into a replayable trace.
StreamTrace RecordTrace(StreamSource& source, uint64_t n);

/// "a, b, c" — for one-line listings in error messages.
std::string JoinNames(const std::vector<std::string>& names);

/// Materializes f(1..n) of a source (element [t-1] is f(t)); the
/// source-level counterpart of MaterializeF(CountGenerator*, n).
std::vector<int64_t> MaterializeF(StreamSource& source, uint64_t n);

/// Everything needed to instantiate a registered stream by name: the site
/// layout, the seed, the site-assignment policy, and optional per-stream
/// numeric knobs (e.g. {"mu", 0.2} for biased-walk). Unknown params are
/// ignored; omitted ones fall back to each stream's documented default.
struct StreamSpec {
  uint32_t num_sites = 8;
  uint64_t seed = 1;
  std::string assigner = "uniform";
  std::map<std::string, double> params;

  double GetParam(const std::string& name, double default_value) const;
};

/// Name -> factory registry for stream generators and site assigners,
/// mirroring TrackerRegistry. Generators and assigners self-register from
/// their own .cc via the macros below; Create() composes a registered
/// generator with the spec's assigner into a ready-to-run StreamSource.
class StreamRegistry {
 public:
  using GeneratorFactory =
      std::function<std::unique_ptr<CountGenerator>(const StreamSpec&)>;
  using AssignerFactory =
      std::function<std::unique_ptr<SiteAssigner>(const StreamSpec&)>;

  /// The process-wide registry (populated during static initialization).
  static StreamRegistry& Instance();

  /// Registers a stream name. Aborts on duplicates (a build error, not a
  /// runtime condition). Returns true so it can seed a static initializer.
  bool RegisterStream(const std::string& name, GeneratorFactory factory,
                      bool monotone = false);
  bool RegisterAssigner(const std::string& name, AssignerFactory factory);

  /// Builds the named stream dealt across spec.num_sites sites by
  /// spec.assigner (with a seed derived from spec.seed so the generator
  /// and assigner draw independent randomness). Returns nullptr if either
  /// name is unknown.
  std::unique_ptr<StreamSource> Create(const std::string& stream,
                                       const StreamSpec& spec) const;

  /// The generator / assigner halves, for callers composing their own
  /// pipelines. Return nullptr for unknown names.
  std::unique_ptr<CountGenerator> CreateGenerator(
      const std::string& name, const StreamSpec& spec) const;
  std::unique_ptr<SiteAssigner> CreateAssigner(const std::string& name,
                                               const StreamSpec& spec) const;

  bool ContainsStream(const std::string& name) const;
  bool ContainsAssigner(const std::string& name) const;

  /// True if the named stream emits only positive deltas.
  bool IsMonotone(const std::string& name) const;

  /// Sorted registered names.
  std::vector<std::string> StreamNames() const;
  std::vector<std::string> AssignerNames() const;

  /// The multi-line streams + assigners listing printed by the tools'
  /// --list-streams (monotone streams tagged).
  std::string ListingText() const;

 private:
  struct StreamEntry {
    GeneratorFactory factory;
    bool monotone = false;
  };

  StreamRegistry() = default;

  std::map<std::string, StreamEntry> streams_;
  std::map<std::string, AssignerFactory> assigners_;
};

/// Registers a stream under `name`. `factory` is an expression convertible
/// to StreamRegistry::GeneratorFactory (typically a lambda over the spec).
/// Place in the generator's .cc at namespace scope.
#define VARSTREAM_REGISTER_STREAM(name, factory)                           \
  VARSTREAM_REGISTER_STREAM_IMPL(name, factory, false, __COUNTER__)

/// Same, for insertion-only streams (every delta positive); the registry
/// tags them so generic callers know they are safe for monotone-only
/// trackers.
#define VARSTREAM_REGISTER_MONOTONE_STREAM(name, factory)                  \
  VARSTREAM_REGISTER_STREAM_IMPL(name, factory, true, __COUNTER__)

/// Registers a site-assignment policy. Place in the assigner's .cc.
#define VARSTREAM_REGISTER_ASSIGNER(name, factory)                         \
  VARSTREAM_REGISTER_ASSIGNER_IMPL(name, factory, __COUNTER__)

#define VARSTREAM_REGISTER_STREAM_IMPL(name, factory, monotone, counter)   \
  VARSTREAM_REGISTER_STREAM_IMPL2(name, factory, monotone, counter)
#define VARSTREAM_REGISTER_STREAM_IMPL2(name, factory, monotone, counter)  \
  namespace {                                                              \
  const bool varstream_stream_registrar_##counter =                        \
      ::varstream::StreamRegistry::Instance().RegisterStream(              \
          name, factory, monotone);                                        \
  }

#define VARSTREAM_REGISTER_ASSIGNER_IMPL(name, factory, counter)           \
  VARSTREAM_REGISTER_ASSIGNER_IMPL2(name, factory, counter)
#define VARSTREAM_REGISTER_ASSIGNER_IMPL2(name, factory, counter)          \
  namespace {                                                              \
  const bool varstream_assigner_registrar_##counter =                      \
      ::varstream::StreamRegistry::Instance().RegisterAssigner(name,       \
                                                               factory);   \
  }

}  // namespace varstream

#endif  // VARSTREAM_STREAM_SOURCE_H_
