#include "stream/generator.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "stream/source.h"

namespace varstream {

NearlyMonotoneGenerator::NearlyMonotoneGenerator(uint64_t up, uint64_t down)
    : up_(up), down_(down) {
  assert(up > down);
}

int64_t NearlyMonotoneGenerator::NextDelta() {
  int64_t delta = (phase_ < up_) ? +1 : -1;
  phase_ = (phase_ + 1) % (up_ + down_);
  return delta;
}

std::string NearlyMonotoneGenerator::name() const {
  return "nearly-monotone(up=" + std::to_string(up_) +
         ",down=" + std::to_string(down_) + ")";
}

double NearlyMonotoneGenerator::beta() const {
  // Per full period, f^- grows by `down` and f grows by (up - down), so
  // f^-(n) / f(n) -> down / (up - down).
  return static_cast<double>(down_) / static_cast<double>(up_ - down_);
}

RandomWalkGenerator::RandomWalkGenerator(uint64_t seed) : rng_(seed) {}

BiasedWalkGenerator::BiasedWalkGenerator(double mu, uint64_t seed)
    : mu_(mu), rng_(seed) {
  assert(mu >= -1.0 && mu <= 1.0);
  assert(mu != 0.0);
}

std::string BiasedWalkGenerator::name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "biased-walk(mu=%g)", mu_);
  return buf;
}

SawtoothGenerator::SawtoothGenerator(int64_t amplitude)
    : amplitude_(amplitude) {
  assert(amplitude >= 1);
}

int64_t SawtoothGenerator::NextDelta() {
  if (level_ == amplitude_) dir_ = -1;
  if (level_ == 0) dir_ = +1;
  level_ += dir_;
  return dir_;
}

std::string SawtoothGenerator::name() const {
  return "sawtooth(A=" + std::to_string(amplitude_) + ")";
}

int64_t ZeroCrossingGenerator::NextDelta() {
  int64_t delta = up_next_ ? +1 : -1;
  up_next_ = !up_next_;
  return delta;
}

OscillatorGenerator::OscillatorGenerator(int64_t base, int64_t jump,
                                         uint64_t period)
    : base_(base), jump_(jump), period_(period) {
  assert(base >= 1);
  assert(jump >= 1);
  assert(period >= 2 * static_cast<uint64_t>(jump));
}

int64_t OscillatorGenerator::NextDelta() {
  // At the start of each period, begin a burst that toggles the level
  // between 0 and jump_; between bursts, hold (emitting +1/-1 pairs so that
  // every timestep carries an update, as the model requires).
  uint64_t phase = t_ % period_;
  ++t_;
  uint64_t burst = static_cast<uint64_t>(jump_);
  if (phase < burst) {
    // Toggle burst: move toward the other extreme.
    int64_t delta = high_ ? -1 : +1;
    level_ += delta;
    if (phase + 1 == burst) high_ = !high_;
    return delta;
  }
  // Hold phase: +1 then -1 alternating keeps f within 1 of its level while
  // still emitting one update per timestep.
  bool up = ((phase - burst) % 2) == 0;
  int64_t delta = up ? +1 : -1;
  level_ += delta;
  return delta;
}

std::string OscillatorGenerator::name() const {
  return "oscillator(base=" + std::to_string(base_) +
         ",jump=" + std::to_string(jump_) +
         ",period=" + std::to_string(period_) + ")";
}

LargeStepGenerator::LargeStepGenerator(int64_t max_step, double drift,
                                       uint64_t seed)
    : max_step_(max_step), drift_(drift), rng_(seed) {
  assert(max_step >= 1);
  assert(drift >= -1.0 && drift <= 1.0);
}

int64_t LargeStepGenerator::NextDelta() {
  int64_t magnitude = rng_.UniformInt(1, max_step_);
  return rng_.BiasedSign(drift_) * magnitude;
}

std::string LargeStepGenerator::name() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "large-step(max=%lld,drift=%g)",
                static_cast<long long>(max_step_), drift_);
  return buf;
}

SpikeGenerator::SpikeGenerator(int64_t spike_size, double spike_prob,
                               uint64_t seed)
    : spike_size_(spike_size), spike_prob_(spike_prob), rng_(seed) {
  assert(spike_size >= 1);
  assert(spike_prob >= 0 && spike_prob < 1);
}

int64_t SpikeGenerator::NextDelta() {
  if (spike_remaining_ > 0) {
    --spike_remaining_;
    return -1;
  }
  if (rng_.Bernoulli(spike_prob_)) {
    spike_remaining_ = spike_size_ - 1;
    return -1;
  }
  return +1;
}

std::string SpikeGenerator::name() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "spike(size=%lld,p=%g)",
                static_cast<long long>(spike_size_), spike_prob_);
  return buf;
}

RegimeSwitchGenerator::RegimeSwitchGenerator(double mu, uint64_t period,
                                             uint64_t seed)
    : mu_(mu), period_(period), rng_(seed) {
  assert(mu > 0 && mu <= 1);
  assert(period >= 1);
}

int64_t RegimeSwitchGenerator::NextDelta() {
  bool up_regime = (t_ / period_) % 2 == 0;
  ++t_;
  double mu = up_regime ? mu_ : -mu_;
  int64_t delta = (f_ <= 0) ? +1 : rng_.BiasedSign(mu);
  f_ += delta;
  return delta;
}

std::string RegimeSwitchGenerator::name() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "regime-switch(mu=%g,T=%llu)", mu_,
                static_cast<unsigned long long>(period_));
  return buf;
}

DiurnalGenerator::DiurnalGenerator(int64_t scale, uint64_t steps_per_day,
                                   uint64_t seed)
    : scale_(scale), steps_per_day_(steps_per_day), rng_(seed) {
  assert(scale >= 1);
  assert(steps_per_day >= 48);
}

int64_t DiurnalGenerator::TargetAt(uint64_t step) const {
  // Hour-boundary targets, in units of scale_ (business-district profile).
  static constexpr int kProfile[25] = {6,  6,  5,  5,  6,  8,  16, 30, 45,
                                       52, 55, 54, 52, 53, 54, 52, 48, 38,
                                       26, 18, 13, 10, 8,  7,  6};
  uint64_t in_day = step % steps_per_day_;
  double hour = 24.0 * static_cast<double>(in_day) /
                static_cast<double>(steps_per_day_);
  int h0 = static_cast<int>(hour);
  double frac = hour - h0;
  double level = (1.0 - frac) * kProfile[h0] + frac * kProfile[h0 + 1];
  return static_cast<int64_t>(level * static_cast<double>(scale_));
}

int64_t DiurnalGenerator::NextDelta() {
  int64_t target = TargetAt(t_ + steps_per_day_ / 96);  // steer ~1/4h ahead
  ++t_;
  double horizon = static_cast<double>(steps_per_day_ / 96 + 1);
  double drift = std::clamp(
      static_cast<double>(target - f_) / horizon, -0.9, 0.9);
  int64_t delta = (f_ <= 0) ? +1 : rng_.BiasedSign(drift);
  f_ += delta;
  return delta;
}

std::string DiurnalGenerator::name() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "diurnal(scale=%lld,day=%llu)",
                static_cast<long long>(scale_),
                static_cast<unsigned long long>(steps_per_day_));
  return buf;
}

std::vector<int64_t> MaterializeF(CountGenerator* gen, uint64_t n) {
  std::vector<int64_t> f;
  f.reserve(n);
  int64_t value = gen->initial_value();
  for (uint64_t t = 0; t < n; ++t) {
    value += gen->NextDelta();
    f.push_back(value);
  }
  return f;
}

std::unique_ptr<CountGenerator> MakeGeneratorByName(const std::string& name,
                                                    uint64_t seed) {
  StreamSpec spec;
  spec.seed = seed;
  return StreamRegistry::Instance().CreateGenerator(name, spec);
}

// --- StreamRegistry registrations. Each stream's tunable knobs come from
// StreamSpec::params with the defaults the experiments have always used;
// registering here keeps the registry in lockstep with the classes above.

VARSTREAM_REGISTER_MONOTONE_STREAM(
    "monotone", [](const StreamSpec&) -> std::unique_ptr<CountGenerator> {
      return std::make_unique<MonotoneGenerator>();
    })

VARSTREAM_REGISTER_STREAM(
    "nearly-monotone",
    [](const StreamSpec& spec) -> std::unique_ptr<CountGenerator> {
      return std::make_unique<NearlyMonotoneGenerator>(
          static_cast<uint64_t>(spec.GetParam("up", 4)),
          static_cast<uint64_t>(spec.GetParam("down", 2)));
    })

VARSTREAM_REGISTER_STREAM(
    "random-walk",
    [](const StreamSpec& spec) -> std::unique_ptr<CountGenerator> {
      return std::make_unique<RandomWalkGenerator>(spec.seed);
    })

VARSTREAM_REGISTER_STREAM(
    "biased-walk",
    [](const StreamSpec& spec) -> std::unique_ptr<CountGenerator> {
      return std::make_unique<BiasedWalkGenerator>(
          spec.GetParam("mu", 0.1), spec.seed);
    })

VARSTREAM_REGISTER_STREAM(
    "sawtooth",
    [](const StreamSpec& spec) -> std::unique_ptr<CountGenerator> {
      return std::make_unique<SawtoothGenerator>(
          static_cast<int64_t>(spec.GetParam("amplitude", 64)));
    })

VARSTREAM_REGISTER_STREAM(
    "zero-crossing",
    [](const StreamSpec&) -> std::unique_ptr<CountGenerator> {
      return std::make_unique<ZeroCrossingGenerator>();
    })

VARSTREAM_REGISTER_STREAM(
    "oscillator",
    [](const StreamSpec& spec) -> std::unique_ptr<CountGenerator> {
      return std::make_unique<OscillatorGenerator>(
          static_cast<int64_t>(spec.GetParam("base", 1000)),
          static_cast<int64_t>(spec.GetParam("jump", 30)),
          static_cast<uint64_t>(spec.GetParam("period", 256)));
    })

VARSTREAM_REGISTER_STREAM(
    "large-step",
    [](const StreamSpec& spec) -> std::unique_ptr<CountGenerator> {
      return std::make_unique<LargeStepGenerator>(
          static_cast<int64_t>(spec.GetParam("max-step", 16)),
          spec.GetParam("drift", 0.2), spec.seed);
    })

VARSTREAM_REGISTER_STREAM(
    "spike", [](const StreamSpec& spec) -> std::unique_ptr<CountGenerator> {
      return std::make_unique<SpikeGenerator>(
          static_cast<int64_t>(spec.GetParam("size", 200)),
          spec.GetParam("prob", 0.001), spec.seed);
    })

VARSTREAM_REGISTER_STREAM(
    "regime-switch",
    [](const StreamSpec& spec) -> std::unique_ptr<CountGenerator> {
      return std::make_unique<RegimeSwitchGenerator>(
          spec.GetParam("mu", 0.3),
          static_cast<uint64_t>(spec.GetParam("period", 8192)), spec.seed);
    })

VARSTREAM_REGISTER_STREAM(
    "diurnal",
    [](const StreamSpec& spec) -> std::unique_ptr<CountGenerator> {
      return std::make_unique<DiurnalGenerator>(
          static_cast<int64_t>(spec.GetParam("scale", 100)),
          static_cast<uint64_t>(spec.GetParam("day", 1 << 15)), spec.seed);
    })

}  // namespace varstream
