// Recorded streams: capture a (site, delta) update sequence once and replay
// it against several trackers so comparisons see byte-identical inputs.
// Also supports compact binary (de)serialization for regression fixtures.

#ifndef VARSTREAM_STREAM_TRACE_H_
#define VARSTREAM_STREAM_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "stream/generator.h"
#include "stream/site_assigner.h"
#include "stream/update.h"

namespace varstream {

/// An immutable recorded count stream.
class StreamTrace {
 public:
  StreamTrace() = default;

  /// Records n updates from a generator + assigner.
  static StreamTrace Record(CountGenerator* gen, SiteAssigner* assigner,
                            uint64_t n);

  /// Builds a trace directly from updates (f0 defaults to 0).
  StreamTrace(std::vector<CountUpdate> updates, int64_t initial_value);

  const std::vector<CountUpdate>& updates() const { return updates_; }
  int64_t initial_value() const { return initial_value_; }
  uint64_t size() const { return updates_.size(); }

  /// f(t) for t in [1, size()]; f(0) = initial_value().
  int64_t ValueAt(uint64_t t) const;

  /// Final f(n).
  int64_t final_value() const;

  /// Total variability v(n) of the recorded stream.
  double Variability() const;

  /// Serializes to a compact little-endian byte buffer.
  std::vector<uint8_t> Serialize() const;

  /// Parses a buffer produced by Serialize(). Returns false on malformed
  /// input (truncation, bad magic).
  static bool Deserialize(const std::vector<uint8_t>& buffer,
                          StreamTrace* out);

  /// Writes Serialize() to `path`. Returns false on I/O failure.
  bool SaveToFile(const std::string& path) const;

  /// Reads and parses a file written by SaveToFile(). Returns false on
  /// I/O failure or malformed content.
  static bool LoadFromFile(const std::string& path, StreamTrace* out);

 private:
  void BuildPrefix();

  std::vector<CountUpdate> updates_;
  std::vector<int64_t> prefix_;  // prefix_[t-1] = f(t)
  int64_t initial_value_ = 0;
};

}  // namespace varstream

#endif  // VARSTREAM_STREAM_TRACE_H_
