// Recorded streams: capture a (site, delta) update sequence once and replay
// it against several trackers so comparisons see byte-identical inputs.
// Also supports compact binary (de)serialization for regression fixtures.

#ifndef VARSTREAM_STREAM_TRACE_H_
#define VARSTREAM_STREAM_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "stream/generator.h"
#include "stream/site_assigner.h"
#include "stream/update.h"

namespace varstream {

/// An immutable recorded count stream.
class StreamTrace {
 public:
  StreamTrace() = default;

  /// Records n updates from a generator + assigner.
  static StreamTrace Record(CountGenerator* gen, SiteAssigner* assigner,
                            uint64_t n);

  /// Builds a trace directly from updates (f0 defaults to 0).
  StreamTrace(std::vector<CountUpdate> updates, int64_t initial_value);

  const std::vector<CountUpdate>& updates() const { return updates_; }
  int64_t initial_value() const { return initial_value_; }
  uint64_t size() const { return updates_.size(); }

  /// f(t) for t in [1, size()]; f(0) = initial_value().
  int64_t ValueAt(uint64_t t) const;

  /// Final f(n).
  int64_t final_value() const;

  /// Total variability v(n) of the recorded stream.
  double Variability() const;

  /// The first n updates as a new trace (same f(0)). Any prefix of a
  /// valid stream is a valid stream, which is what makes truncation the
  /// primary shrink move of testkit/shrink.h. n >= size() copies whole.
  StreamTrace Prefix(uint64_t n) const;

  /// The same delta sequence dealt over a smaller site space
  /// (site % num_sites, num_sites >= 1) — the shrinker's k-reduction
  /// move. f(t) is untouched; only the site labels change.
  StreamTrace RemapSites(uint32_t num_sites) const;

  /// Serializes to a compact little-endian byte buffer:
  ///   magic "VSTR" (u32) | format version (u32) | f(0) (i64) |
  ///   update count m (u64) | m x { site (u32) | delta (i64) }
  std::vector<uint8_t> Serialize() const;

  /// Parses a buffer produced by Serialize(). Fails loudly on malformed
  /// input — bad magic, unsupported version, a count that overruns the
  /// buffer (truncation), or trailing bytes past the declared count — and
  /// reports why through `error` (if non-null) instead of silently
  /// truncating.
  static bool Deserialize(const std::vector<uint8_t>& buffer,
                          StreamTrace* out, std::string* error = nullptr);

  /// Writes Serialize() to `path`. Returns false on I/O failure.
  bool SaveToFile(const std::string& path) const;

  /// Reads and parses a file written by SaveToFile(). Returns false (with
  /// a diagnostic in `error` if non-null) on I/O failure or malformed
  /// content.
  static bool LoadFromFile(const std::string& path, StreamTrace* out,
                           std::string* error = nullptr);

 private:
  void BuildPrefix();

  std::vector<CountUpdate> updates_;
  std::vector<int64_t> prefix_;  // prefix_[t-1] = f(t)
  int64_t initial_value_ = 0;
};

}  // namespace varstream

#endif  // VARSTREAM_STREAM_TRACE_H_
