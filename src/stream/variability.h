// The paper's central stream parameter (section 2):
//
//   v(n) = sum_{t=1..n} v'(t),   v'(t) = min{ 1, |f'(t)| / |f(t)| },
//
// with the convention v'(t) = 1 when f(t) = 0. VariabilityMeter computes it
// online in O(1) per update; F1VariabilityMeter computes the F1-variability
// used for item-frequency tracking (Appendix H), where v'(t) =
// min{1, 1/F1(t)}.

#ifndef VARSTREAM_STREAM_VARIABILITY_H_
#define VARSTREAM_STREAM_VARIABILITY_H_

#include <cstdint>
#include <vector>

namespace varstream {

/// Online computation of the f-variability of a stream.
class VariabilityMeter {
 public:
  /// `initial_value` is f(0) (0 by the paper's default convention).
  explicit VariabilityMeter(int64_t initial_value = 0);

  /// Feeds f'(t) = delta; returns this step's contribution v'(t).
  double Push(int64_t delta);

  /// Total variability v(n) accumulated so far.
  double value() const { return v_; }

  /// Current f(n).
  int64_t f() const { return f_; }

  /// Number of updates consumed (the current time n).
  uint64_t n() const { return n_; }

 private:
  int64_t f_;
  double v_ = 0.0;
  uint64_t n_ = 0;
};

/// Online computation of the F1-variability of an item stream:
/// v'(t) = min{1, 1/F1(t)}, F1 = |D(t)|. Feed +-1 per insert/delete.
class F1VariabilityMeter {
 public:
  F1VariabilityMeter() = default;

  /// Feeds one insert (+1) or delete (-1); returns v'(t).
  double Push(int32_t delta);

  double value() const { return v_; }
  int64_t f1() const { return f1_; }
  uint64_t n() const { return n_; }

 private:
  int64_t f1_ = 0;
  double v_ = 0.0;
  uint64_t n_ = 0;
};

/// Batch helper: variability of the full sequence f(1..n) given f(0).
double ComputeVariability(const std::vector<int64_t>& f, int64_t f0 = 0);

/// Batch helper: the prefix series v(1), ..., v(n).
std::vector<double> VariabilityPrefix(const std::vector<int64_t>& f,
                                      int64_t f0 = 0);

/// f^-(n) = sum of |f'(t)| over negative updates (Theorem 2.1 notation).
int64_t NegativeDriftTotal(const std::vector<int64_t>& f, int64_t f0 = 0);

/// f^+(n) = sum of f'(t) over positive updates.
int64_t PositiveDriftTotal(const std::vector<int64_t>& f, int64_t f0 = 0);

}  // namespace varstream

#endif  // VARSTREAM_STREAM_VARIABILITY_H_
