// Core update types for the distributed monitoring model (section 1 of the
// paper). Time is discrete; at each timestep exactly one update arrives at
// one site.

#ifndef VARSTREAM_STREAM_UPDATE_H_
#define VARSTREAM_STREAM_UPDATE_H_

#include <cstdint>

namespace varstream {

/// One update of the counting problem: f'(n) = delta arrives at `site`.
/// The upper-bound algorithms of section 3 assume delta = ±1; larger deltas
/// are expanded by stream::ExpandLargeUpdates (Appendix C).
struct CountUpdate {
  uint32_t site = 0;
  int64_t delta = 0;

  bool operator==(const CountUpdate&) const = default;
};

/// One update of the item-frequency problem (Appendix H): item `item` is
/// inserted (delta = +1) into or deleted (delta = -1) from the dataset D,
/// observed at `site`.
struct ItemUpdate {
  uint32_t site = 0;
  uint64_t item = 0;
  int32_t delta = 0;  // +1 insert, -1 delete

  bool operator==(const ItemUpdate&) const = default;
};

}  // namespace varstream

#endif  // VARSTREAM_STREAM_UPDATE_H_
