// VarstreamServer: the long-running ingest service. Hosts one or more
// named tracker sessions — each a registry-constructed tracker, optionally
// wrapped in the sharded ingest engine (core/sharded.h) — accepts
// concurrent client connections over loopback TCP speaking the
// service/protocol.h frame protocol, answers live Query frames with one
// consistent Snapshot while ingest is in flight, and (when configured)
// checkpoints every session to a varstream-ckpt-v1 file so a killed
// server restarted with --restore resumes with byte-identical estimates.
//
// Concurrency model: one accept thread plus one thread per connection.
// Each session owns a mutex serializing tracker access; PushBatch from
// one connection and Query from another interleave at frame granularity,
// so queries never stop ingest — they ride between batches. A frame is
// applied only after it fully decodes and passes its CRC, so a client
// that dies mid-frame (mid-batch disconnect) never corrupts tracker
// state: the torn bytes are discarded with the connection.
//
// The server binds 127.0.0.1 only. The paper's cost model meters the
// simulated site->coordinator protocol inside each tracker; the real
// client->server traffic is metered separately per session as
// MessageKind::kWire in actual wire bytes, and reported through the
// Snapshot frame's wire_messages/wire_bits fields (reporting-only — the
// loadgen parity check compares the tracker fields, which are identical
// to an in-process run).

#ifndef VARSTREAM_SERVICE_SERVER_H_
#define VARSTREAM_SERVICE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/tracker.h"
#include "history/history.h"
#include "net/cost_meter.h"
#include "service/checkpoint.h"
#include "service/protocol.h"

namespace varstream {

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (read it back via
  /// port() — how the tests and bench run without port collisions).
  uint16_t port = 0;

  /// Checkpoint file path; empty disables checkpointing (Checkpoint
  /// frames are then answered with an Error).
  std::string checkpoint_path;

  /// Automatic checkpoint cadence in ingested updates per session
  /// (0 = only on explicit Checkpoint frames). Checkpoints land on
  /// PushBatch frame boundaries, so a restore resumes exactly at a batch
  /// edge the client can reproduce.
  uint64_t checkpoint_every = 0;

  /// When nonempty, Start() restores every session from this
  /// varstream-ckpt-v1 file before accepting connections.
  std::string restore_path;

  /// Admission cap on concurrent sessions: a Hello that would create
  /// session number max_sessions + 1 is answered with a loud Error frame
  /// instead of an unbounded allocation (each session owns a tracker and
  /// possibly a W-thread engine). 0 = unlimited. Attaching to an
  /// existing session is always admitted, as are restored sessions.
  uint32_t max_sessions = 0;

  /// History retention for every session this server creates (capacity
  /// rows per session, one sample per `cadence` ingested updates —
  /// src/history/history.h). The defaults retain 1024 rows at cadence
  /// 8192: ~40 KiB per session, sampled rarely enough that Snapshot()'s
  /// pipeline drain stays off the ingest hot path (bench_service guards
  /// this). Set capacity or cadence to 0 to disable sampling. Restored
  /// sessions keep their checkpointed history config instead, so a
  /// restore resumes the exact sampling schedule of the original run.
  HistoryOptions history;
};

class VarstreamServer {
 public:
  explicit VarstreamServer(ServerOptions options);
  ~VarstreamServer();

  VarstreamServer(const VarstreamServer&) = delete;
  VarstreamServer& operator=(const VarstreamServer&) = delete;

  /// Restores (if configured), binds, listens, and spawns the accept
  /// thread. Returns false with *error on a bind failure or a restore
  /// failure (a checkpoint that cannot be trusted fails startup loudly).
  bool Start(std::string* error);

  /// Stops accepting, closes every connection, and joins all threads.
  /// Idempotent; also called by the destructor.
  void Stop();

  /// The bound port (valid after Start).
  uint16_t port() const { return port_; }

  /// Blocks until a client sends a Shutdown frame or Stop() is called.
  void WaitForShutdownRequest();

  /// Writes all sessions to options.checkpoint_path. Returns false with
  /// *error if checkpointing is disabled, a session's tracker is not
  /// checkpointable, or the write fails.
  bool WriteCheckpoint(std::string* error);

  /// Test/introspection helpers (thread-safe).
  std::vector<std::string> SessionNames() const;
  bool SessionSnapshot(const std::string& name, TrackerSnapshot* snapshot);

 private:
  struct Session {
    std::mutex mu;
    std::string name;
    std::string tracker_name;
    uint32_t shards = 0;
    TrackerOptions options;
    std::unique_ptr<DistributedTracker> tracker;
    uint64_t updates_since_checkpoint = 0;
    CostMeter wire_cost;  // MessageKind::kWire, real bytes
    /// History sampler (guarded by `mu` like the tracker). Always set
    /// once the session exists; a capacity/cadence of 0 disables it.
    std::unique_ptr<HistorySampler> history;
  };

  /// One live (or finished-but-unreaped) client connection. The handler
  /// thread never closes `fd` itself: it sets `done` and leaves join +
  /// close to the reaper (or Stop), so a concurrently Stop()ing thread
  /// can never shut down a recycled descriptor.
  struct Connection {
    int fd = -1;
    std::atomic<bool> done{false};
    std::thread thread;
  };

  /// Runs on the accept thread with its own copy of the listening fd —
  /// Stop() closes and clears the member concurrently, so the thread
  /// must never re-read it.
  void AcceptLoop(int listen_fd);
  void HandleConnection(Connection* conn);

  /// Joins and closes every finished connection. Called from the accept
  /// thread before each accept so a long-running server handling many
  /// short-lived connections stays bounded, and from Stop() for the
  /// rest.
  void ReapFinishedConnections();

  /// Frame dispatch for one connection. Returns false when the
  /// connection must close (error already sent).
  bool HandleFrame(int fd, const Frame& frame, Session** session,
                   uint64_t* pre_session_wire_msgs,
                   uint64_t* pre_session_wire_bits);

  /// Creates or attaches the session a Hello names. Returns nullptr and
  /// sets *error on unknown tracker / bad shard count / config mismatch.
  Session* ResolveSession(const HelloFrame& hello, bool* created,
                          std::string* error);

  /// Builds the tracker a session config describes (serial or sharded).
  static std::unique_ptr<DistributedTracker> BuildTracker(
      const std::string& tracker_name, const TrackerOptions& options,
      uint32_t shards, std::string* error);

  bool SendFrame(int fd, FrameType type,
                 std::span<const uint8_t> payload, Session* session);
  bool SendError(int fd, Session* session, const std::string& message);

  /// Serializes every session into checkpoint entries (locking each in
  /// name order) and writes the file. Caller must not hold a session
  /// lock.
  bool WriteCheckpointLocked(std::string* error);

  ServerOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};

  mutable std::mutex sessions_mu_;
  std::map<std::string, std::unique_ptr<Session>> sessions_;

  std::mutex checkpoint_mu_;  // serializes whole-file checkpoint writes

  std::mutex conn_mu_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::thread accept_thread_;

  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
};

}  // namespace varstream

#endif  // VARSTREAM_SERVICE_SERVER_H_
