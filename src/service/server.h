// VarstreamServer: the long-running ingest service. Hosts one or more
// named tracker sessions — each a registry-constructed tracker, optionally
// wrapped in the sharded ingest engine (core/sharded.h) — accepts
// concurrent client connections over loopback TCP speaking the
// service/protocol.h frame protocol, answers live Query frames with one
// consistent Snapshot while ingest is in flight, and (when configured)
// checkpoints every session to a varstream-ckpt-v1 file so a killed
// server restarted with --restore resumes with byte-identical estimates.
//
// Concurrency model: one accept thread plus a FIXED pool of epoll worker
// threads (ServerOptions::workers). The acceptor hands each new
// connection to a worker round-robin; the worker owns the connection's
// fd, its frame-reassembly read buffer, and its bounded write queue, and
// runs non-blocking reads through a per-worker epoll set. Sessions are
// hash-partitioned onto workers by name: when a connection's Hello names
// a session, the connection migrates to the session's owning worker, so
// every frame that touches a session's tracker is decoded and applied on
// exactly one thread — there is no per-session mutex on the hot path.
// Cross-worker operations (Checkpoint captures every session; QueryRange
// and StateDump may target sessions owned elsewhere) go through a small
// per-worker mailbox: the initiating worker parks the connection, posts
// capture tasks, and a completion task sends the reply — workers never
// block on each other.
//
// Backpressure (protocol v4): each session has a bounded queue of
// decoded-but-unapplied batches (ServerOptions::pending_batch_cap). A
// PushBatch that arrives past the cap is answered with a loud Overloaded
// frame instead of being applied, and the connection's expected sequence
// number does not advance — a pipelined client resends from the first
// rejected seq (go-back-N), so application order and therefore
// bit-for-bit parity survive overload. Per-connection write queues are
// bounded too: a connection that stops draining its socket stops being
// read (EPOLLIN interest dropped) until its replies flush.
//
// A frame is applied only after it fully decodes and passes its CRC, so
// a client that dies mid-frame (mid-batch disconnect) never corrupts
// tracker state: the torn bytes are discarded with the connection.
//
// The server binds 127.0.0.1 only. The paper's cost model meters the
// simulated site->coordinator protocol inside each tracker; the real
// client->server traffic is metered separately per session as
// MessageKind::kWire in actual wire bytes, and reported through the
// Snapshot frame's wire_messages/wire_bits fields (reporting-only — the
// loadgen parity check compares the tracker fields, which are identical
// to an in-process run).

#ifndef VARSTREAM_SERVICE_SERVER_H_
#define VARSTREAM_SERVICE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/tracker.h"
#include "history/history.h"
#include "net/cost_meter.h"
#include "obs/metrics.h"
#include "service/checkpoint.h"
#include "service/protocol.h"

namespace varstream {

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (read it back via
  /// port() — how the tests and bench run without port collisions).
  uint16_t port = 0;

  /// Checkpoint file path; empty disables checkpointing (Checkpoint
  /// frames are then answered with an Error).
  std::string checkpoint_path;

  /// Automatic checkpoint cadence in ingested updates per session
  /// (0 = only on explicit Checkpoint frames). Checkpoints land on
  /// PushBatch frame boundaries, so a restore resumes exactly at a batch
  /// edge the client can reproduce.
  uint64_t checkpoint_every = 0;

  /// When nonempty, Start() restores every session from this
  /// varstream-ckpt-v1 file before accepting connections.
  std::string restore_path;

  /// Admission cap on concurrent sessions: a Hello that would create
  /// session number max_sessions + 1 is answered with a loud Error frame
  /// instead of an unbounded allocation (each session owns a tracker and
  /// possibly a W-thread engine). 0 = unlimited. Attaching to an
  /// existing session is always admitted, as are restored sessions.
  uint32_t max_sessions = 0;

  /// History retention for every session this server creates (capacity
  /// rows per session, one sample per `cadence` ingested updates —
  /// src/history/history.h). The defaults retain 1024 rows at cadence
  /// 8192: ~40 KiB per session, sampled rarely enough that Snapshot()'s
  /// pipeline drain stays off the ingest hot path (bench_service guards
  /// this). Set capacity or cadence to 0 to disable sampling. Restored
  /// sessions keep their checkpointed history config instead, so a
  /// restore resumes the exact sampling schedule of the original run.
  HistoryOptions history;

  /// Epoll worker threads. 0 = auto: min(4, hardware_concurrency), at
  /// least 1. The pool size is fixed for the server's lifetime — the
  /// thread count never grows with the connection count (the
  /// many-connections CI job asserts this via /proc).
  uint32_t workers = 0;

  /// Per-session cap on decoded-but-unapplied PushBatch frames. A batch
  /// arriving past the cap is rejected with an Overloaded frame (not
  /// applied, connection stays healthy). Bounds the memory a pipelining
  /// client can pin per session; clamped to at least 1.
  uint32_t pending_batch_cap = 64;

  /// Global budget, in wire bytes of update payload, across EVERY
  /// session's pending batches — accounted when a batch is accepted into
  /// its session queue, released when it applies. A batch that would
  /// push the total past the budget is rejected with Overloaded exactly
  /// like the per-session cap, so many sessions cannot collectively pin
  /// unbounded batch memory even when each stays under its own cap.
  /// 0 disables; clamped to at least one max-size frame so a single
  /// batch can always make progress.
  size_t pending_bytes_budget = 64u << 20;

  /// Per-connection write-queue bound in bytes. When a connection's
  /// unsent replies exceed this, the server stops reading from it until
  /// the queue drains below half — a client that stops draining its
  /// socket cannot pin unbounded reply memory.
  size_t write_buffer_cap = 1u << 20;
};

/// Lifetime counters for operators and the CI thread-count drill.
/// Derived from the metrics registry (one source of truth with
/// MetricsDump and the Prometheus endpoint), so it stays readable after
/// Stop() — the registry outlives the workers.
struct ServerStats {
  uint32_t workers = 0;
  uint64_t accepted = 0;
  uint64_t peak_connections = 0;
  /// Batches bounced because the session queue was at its cap (or the
  /// global pending-bytes budget was exhausted) when they arrived.
  uint64_t overload_rejections = 0;
  /// Batches bounced only because they trailed an already-rejected seq
  /// (go-back-N overshoot) — counted separately so the overload signal
  /// does not overcount during recovery.
  uint64_t seq_gap_rejections = 0;
  /// Deepest any session's pending-batch queue ever got (max across
  /// workers of the per-worker high-water gauge).
  uint64_t peak_pending_batches = 0;
  /// Connections the acceptor handed each worker, indexed by worker.
  std::vector<uint64_t> per_worker_accepted;
};

class VarstreamServer {
 public:
  explicit VarstreamServer(ServerOptions options);
  ~VarstreamServer();

  VarstreamServer(const VarstreamServer&) = delete;
  VarstreamServer& operator=(const VarstreamServer&) = delete;

  /// Restores (if configured), binds, listens, and spawns the worker
  /// pool plus the accept thread. Returns false with *error on a bind
  /// failure or a restore failure (a checkpoint that cannot be trusted
  /// fails startup loudly).
  bool Start(std::string* error);

  /// Deterministic shutdown: stops accepting, wakes every worker, and
  /// joins them; each worker drains its mailbox and closes every
  /// connection it owns before exiting, so when Stop() returns no
  /// connection fd and no server thread survives. Idempotent; also
  /// called by the destructor.
  void Stop();

  /// The bound port (valid after Start).
  uint16_t port() const { return port_; }

  /// Blocks until a client sends a Shutdown frame or Stop() is called.
  void WaitForShutdownRequest();

  /// Writes all sessions to options.checkpoint_path. Returns false with
  /// *error if checkpointing is disabled, a session's tracker is not
  /// checkpointable, or the write fails. Thread-safe; callable while
  /// the server is running (captures ride the worker mailboxes) or
  /// before/after.
  bool WriteCheckpoint(std::string* error);

  /// Test/introspection helpers (thread-safe).
  std::vector<std::string> SessionNames() const;
  bool SessionSnapshot(const std::string& name, TrackerSnapshot* snapshot);
  ServerStats Stats() const;

  /// One coherent-at-scrape-time view of the registry plus the
  /// connection gauges. Thread-safe; callable while ingest is running
  /// (reads slots with relaxed loads, never blocks a worker).
  MetricsSnapshot CollectMetrics() const;
  /// The MetricsDump wire answer: {"varstream_metrics":1,"role":"server",
  /// "node":{...}}.
  std::string MetricsJson() const;
  /// Prometheus text exposition with the varstream_ prefix, for the
  /// --metrics-port endpoint.
  std::string MetricsPrometheus() const;

 private:
  struct Session;
  struct Conn;
  struct Worker;

  /// One PushBatch waiting to be applied (or bounced) at the next drain
  /// point on the session's owner worker. `conn` is nulled if the
  /// connection dies first — the batch still applies, the ack just has
  /// nowhere to go.
  ///
  /// Zero-copy: an accepted batch normally carries only `wire`, a
  /// pointer to its packed {u32 site, i64 delta} pairs INSIDE the
  /// connection's rbuf. Such a view is valid only while that buffer is
  /// untouched, so it must be applied or materialized before the
  /// ProcessInput invocation that enqueued it compacts the buffer
  /// (ProcessInput drains, then materializes leftovers, then erases) and
  /// before the buffer dies with its connection (DestroyConn
  /// materializes). Rejected batches never carry content at all.
  struct PendingBatch {
    enum class Kind : uint8_t {
      kApply,           // validate + apply in one walk, answer PushAck
      kRejectGap,       // trailed a rejected seq; answer Overloaded
      kRejectOverload,  // cap or byte budget hit; answer Overloaded
    };
    Conn* conn = nullptr;
    uint64_t seq = 0;
    Kind kind = Kind::kApply;
    uint64_t pending_at_enqueue = 0;
    /// kApply only: number of updates, and either a view of the wire
    /// pairs (`wire` non-null, nothing owned) or the materialized
    /// updates (`wire` null, `updates.size() == count`).
    uint32_t count = 0;
    const uint8_t* wire = nullptr;
    std::vector<CountUpdate> updates;
  };

  /// All mutable session state after creation is touched only by the
  /// owner worker's thread (or by any thread once the workers have been
  /// joined) — that is the refactor's whole point: no per-session mutex.
  /// The sessions_ map itself stays under sessions_mu_ (creation,
  /// lookups, capture iteration), which is off the per-batch hot path.
  struct Session {
    std::string name;
    std::string tracker_name;
    uint32_t shards = 0;
    uint32_t owner = 0;  // worker index, hash(name) % workers
    /// Registry IsMonotoneOnly(tracker_name), cached at session creation
    /// so the per-batch validation walk never does a registry lookup.
    bool monotone_only = false;
    TrackerOptions options;
    std::unique_ptr<DistributedTracker> tracker;
    uint64_t updates_since_checkpoint = 0;
    CostMeter wire_cost;  // MessageKind::kWire, real bytes
    std::unique_ptr<HistorySampler> history;
    std::deque<PendingBatch> pending;
    uint64_t pending_applies = 0;  // non-rejected entries in `pending`
    /// True while a checkpoint capture is in flight for this session:
    /// draining pauses so the capture sees exactly the batch boundary
    /// that triggered it (PushAck.checkpointed means "file written").
    bool frozen = false;
    bool in_dirty = false;  // already on the owner worker's dirty list
    /// Connections parked until `frozen` clears, their current frame
    /// left undecoded for a retry.
    std::vector<Conn*> waiters;
    /// pending.size(), published for scrapes. Written only by the owner
    /// worker (single-writer metrics slot).
    MetricsGauge* pending_gauge = nullptr;
  };

  /// One live connection, owned by exactly one worker at a time. A
  /// connection starts on the worker the acceptor picked and migrates to
  /// its session's owner worker when the Hello decodes.
  struct Conn {
    ~Conn();
    int fd = -1;
    Session* session = nullptr;
    std::vector<uint8_t> rbuf;   // undecoded inbound bytes
    std::vector<uint8_t> wbuf;   // unsent reply bytes
    size_t wbuf_sent = 0;        // flushed prefix of wbuf
    uint64_t expected_seq = 0;   // next in-order PushBatch seq (v4)
    uint64_t pre_session_wire_msgs = 0;
    uint64_t pre_session_wire_bits = 0;
    uint32_t registered_mask = 0;  // current epoll interest
    bool throttled = false;  // write queue over cap; reads paused
    bool parked = false;     // a cross-worker op owns the next reply
    bool park_retry = false;  // parked frame stays in rbuf, re-decode
    bool closing = false;    // flush wbuf, then close
    bool dead = false;       // destroyed; stale epoll events skip it
    /// Set by HandleFrame when a Hello names a session owned elsewhere;
    /// ProcessInput performs the actual hand-off.
    HelloFrame migrate_hello;
    uint32_t migrate_owner = 0;
  };

  /// Per-worker metric slots, labeled worker=<index>. Each slot has one
  /// writer: the worker's own thread, except `accepted`, whose sole
  /// writer is the acceptor (it picks the worker). No atomic RMW — see
  /// obs/metrics.h.
  struct WorkerMetrics {
    MetricsCounter* accepted = nullptr;
    MetricsCounter* frames_decoded = nullptr;
    MetricsCounter* frames_malformed = nullptr;
    MetricsCounter* batches_applied = nullptr;
    MetricsCounter* updates_applied = nullptr;
    MetricsCounter* overload_rejections = nullptr;
    MetricsCounter* seq_gap_rejections = nullptr;
    MetricsHistogram* epoll_wait_us = nullptr;
    MetricsHistogram* apply_latency_us = nullptr;
    MetricsGauge* mailbox_depth = nullptr;
    MetricsGauge* peak_pending_batches = nullptr;  // high-water, RaiseTo
  };

  struct Worker {
    uint32_t index = 0;
    VarstreamServer* server = nullptr;
    int epoll_fd = -1;
    int event_fd = -1;
    std::thread thread;
    std::mutex mail_mu;
    std::vector<std::function<void()>> mail;
    bool mail_open = false;  // guarded by mail_mu
    std::unordered_map<int, std::unique_ptr<Conn>> conns;  // by fd
    std::vector<Session*> dirty;  // sessions with queued batches
    /// Connections destroyed mid-event-batch park here until the batch
    /// ends, so stale epoll_event pointers stay dereferenceable.
    std::vector<std::unique_ptr<Conn>> graveyard;
    /// Reusable apply buffer: the fused validate+materialize walk in
    /// DrainSession fills it from a batch's wire pairs, so the hot path
    /// allocates nothing per frame. Grows to the largest batch seen.
    std::vector<CountUpdate> scratch;
    WorkerMetrics metrics;
  };

  /// Checkpoint capture fanned out across the workers; the last capture
  /// posts the completion.
  struct CkptGather {
    std::mutex mu;
    std::vector<SessionCheckpoint> entries;
    std::string error;
    bool failed = false;
    size_t remaining = 0;
  };

  struct RangeCapture {
    SessionQueryResult meta;
    std::vector<HistoryRow> rows;
  };
  struct RangeGather {
    std::mutex mu;
    std::vector<RangeCapture> captured;
    size_t remaining = 0;
    QueryRangeFrame query;
  };

  /// Outcome of handling one decoded frame on a worker thread.
  enum class FrameResult {
    kContinue,   // keep decoding this connection's buffer
    kClose,      // reply queued (or peer gone); flush then close
    kMigrated,   // connection handed to another worker; stop touching it
    kParkRetry,  // leave the frame in rbuf, re-decode after unpark
    kParkDone,   // frame consumed; a completion task will unpark
  };

  void AcceptLoop(int listen_fd);
  void WorkerLoop(Worker* w);
  void RunMailbox(Worker* w);
  void DrainDirtySessions(Worker* w);
  /// Applies (or bounces) every queued batch of `s` in FIFO order,
  /// stopping early if an automatic checkpoint freezes the session.
  /// Applying is the single content pass: site/monotone validation and
  /// materialization into the worker scratch are fused into one walk
  /// over the wire pairs, then the tracker gets one PushBatch call.
  void DrainSession(Worker* w, Session* s);
  void MarkDirty(Worker* w, Session* s);
  /// Copies every still-queued batch VIEW belonging to `conn` out of the
  /// connection's rbuf into owned updates — called before the buffer
  /// compacts (end of ProcessInput) or dies (DestroyConn), so a parked
  /// batch can never dangle into freed or shifted buffer memory.
  void MaterializeConnBatches(Conn* conn);

  void AddConnToWorker(Worker* w, int fd);
  void HandleReadable(Worker* w, Conn* conn);
  /// Decodes and dispatches buffered frames. Returns false when the
  /// connection is no longer owned by this worker (destroyed/migrated).
  bool ProcessInput(Worker* w, Conn* conn);
  FrameResult HandleFrame(Worker* w, Conn* conn, const FrameView& frame,
                          size_t frame_bytes);
  /// Hands `conn` to its session's owner worker (migrate_hello/_owner set
  /// by HandleFrame). `consumed` bytes — everything up to and including
  /// the hello frame — are dropped from rbuf before the hand-off.
  void MigrateConn(Worker* w, Conn* conn, size_t consumed);
  FrameResult FinishHello(Worker* w, Conn* conn, const HelloFrame& hello);
  FrameResult StartCheckpoint(Worker* w, Session* s, Conn* conn,
                              bool is_auto, PushAckFrame parked_ack);
  void FinishCheckpoint(Worker* w, std::shared_ptr<CkptGather> gather,
                        Session* s, Conn* conn, bool is_auto,
                        PushAckFrame parked_ack);
  void UnfreezeSession(Worker* w, Session* s);
  void UnparkConn(Worker* w, Conn* conn);

  /// Queues a frame on the connection and flushes as much as the socket
  /// takes without blocking; the rest rides EPOLLOUT.
  void QueueFrame(Worker* w, Conn* conn, FrameType type,
                  std::span<const uint8_t> payload);
  void FlushConn(Worker* w, Conn* conn);
  void UpdateInterest(Worker* w, Conn* conn);
  /// Logs the diagnostic, queues an Error frame, and marks the
  /// connection closing (it closes once the error flushes).
  FrameResult SendErrorAndClose(Worker* w, Conn* conn,
                                const std::string& message);
  void DestroyConn(Worker* w, Conn* conn);

  /// Posts a task to a worker's mailbox and wakes it. False once the
  /// worker has begun shutting down (the task is dropped).
  bool PostToWorker(Worker* w, std::function<void()> task);

  Session* ResolveSession(const HelloFrame& hello, uint32_t owner,
                          bool* created, std::string* error);
  uint32_t SessionOwner(const std::string& name) const;

  static std::unique_ptr<DistributedTracker> BuildTracker(
      const std::string& tracker_name, const TrackerOptions& options,
      uint32_t shards, std::string* error);

  /// Captures every session owned by worker `index` into checkpoint
  /// entries. Must run on that worker's thread (or with all workers
  /// joined). False + error on a non-checkpointable tracker.
  bool CaptureWorkerSessions(uint32_t index,
                             std::vector<SessionCheckpoint>* entries,
                             std::string* error);
  void CaptureWorkerHistory(uint32_t index, const QueryRangeFrame& query,
                            std::vector<RangeCapture>* out);
  bool WriteCheckpointEntries(std::vector<SessionCheckpoint> entries,
                              std::string* error);

  ServerOptions options_;
  uint32_t worker_count_ = 1;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  bool workers_running_ = false;  // guarded by ext_mu_

  mutable std::mutex sessions_mu_;
  std::map<std::string, std::unique_ptr<Session>> sessions_;

  std::mutex checkpoint_mu_;  // serializes whole-file checkpoint writes

  /// Serializes external entry points (WriteCheckpoint, SessionSnapshot,
  /// Stop) against each other: while an external op waits on the worker
  /// mailboxes, Stop() cannot tear the workers down under it.
  mutable std::mutex ext_mu_;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::thread accept_thread_;

  /// Owns every metric slot; outlives the worker threads (the destructor
  /// joins them via Stop() before members die). The connection-lifecycle
  /// counters below stay plain atomics (open/close is multi-writer and
  /// cold — the no-RMW rule is about the per-frame hot path).
  MetricsRegistry metrics_;
  std::atomic<uint64_t> current_connections_{0};
  std::atomic<uint64_t> peak_connections_{0};
  /// Wire bytes of update pairs across every session's accepted pending
  /// batches (the pending_bytes_budget accounting). Touched once per
  /// accepted batch from the owning worker — multi-writer, so atomic,
  /// but never on the per-update path.
  std::atomic<size_t> pending_bytes_{0};

  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
};

}  // namespace varstream

#endif  // VARSTREAM_SERVICE_SERVER_H_
