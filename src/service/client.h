// VarstreamClient: the client half of the service/protocol.h wire
// protocol. Connects to a VarstreamServer over loopback TCP, attaches to
// (or creates) a named tracker session, and exposes the request/reply
// pairs as blocking calls:
//
//   VarstreamClient client;
//   std::string error;
//   if (!client.Connect("127.0.0.1", port, &error)) ...
//   HelloFrame hello;            // session name, tracker, options, shards
//   HelloAckFrame ack;
//   if (!client.Hello(hello, &ack, &error)) ...
//   client.Push(batch, &push_ack, &error);     // span<const CountUpdate>
//   client.Query(&snapshot, &error);           // live, ingest keeps going
//   client.Checkpoint(&path, &error);          // server writes ckpt file
//   client.Shutdown(&error);                   // stops the server
//
// Every call returns false with *error set when the server answered with
// an Error frame (the server's diagnostic is passed through verbatim) or
// the connection failed. The Raw* escape hatches exist for the protocol
// robustness tests, which need to send deliberately broken bytes.

#ifndef VARSTREAM_SERVICE_CLIENT_H_
#define VARSTREAM_SERVICE_CLIENT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "service/protocol.h"
#include "stream/update.h"

namespace varstream {

/// Deadlines for a client's blocking calls. 0 (the default) blocks
/// forever — the historical behavior, fine for tests and local tools.
/// The root aggregator's heartbeat and recovery paths set both, so a
/// leaf that dies without closing its socket (kill -9, network cut)
/// surfaces as a loud, bounded timeout instead of hanging the
/// supervisor forever.
struct ClientDeadlines {
  int connect_timeout_ms = 0;  // Connect(): TCP handshake deadline
  int io_timeout_ms = 0;       // per-call send/recv deadline
};

class VarstreamClient {
 public:
  VarstreamClient() = default;
  explicit VarstreamClient(ClientDeadlines deadlines)
      : deadlines_(deadlines) {}
  ~VarstreamClient();

  VarstreamClient(const VarstreamClient&) = delete;
  VarstreamClient& operator=(const VarstreamClient&) = delete;

  /// Deadlines apply to subsequent calls; set before Connect to bound
  /// the handshake too.
  void set_deadlines(ClientDeadlines deadlines) { deadlines_ = deadlines; }
  const ClientDeadlines& deadlines() const { return deadlines_; }

  /// Connects to host:port (IPv4 dotted quad; "localhost" is accepted
  /// and means 127.0.0.1).
  bool Connect(const std::string& host, uint16_t port, std::string* error);
  void Close();
  bool connected() const { return fd_ >= 0; }

  bool Hello(const HelloFrame& hello, HelloAckFrame* ack,
             std::string* error);
  /// Sends one sequenced batch (protocol v4) and waits for its ack. An
  /// Overloaded reply is retried transparently with exponential backoff
  /// (1 ms doubling to 64 ms, up to kMaxOverloadRetries attempts) — the
  /// caller only sees a failure if the server stays saturated for the
  /// whole retry budget. overload_retries() counts the retries so tests
  /// and tools can report how often backpressure engaged.
  bool Push(std::span<const CountUpdate> updates, PushAckFrame* ack,
            std::string* error);
  uint64_t overload_retries() const { return overload_retries_; }
  bool Query(SnapshotFrame* snapshot, std::string* error);
  /// Evaluates a history query (protocol v2). Works before (or without)
  /// Hello — QueryRange is read-only and session-independent.
  bool QueryRange(const QueryRangeFrame& query, QueryRangeResultFrame* result,
                  std::string* error);
  bool Checkpoint(std::string* checkpoint_path, std::string* error);
  /// Pulls one session's Mergeable::SerializeState text (protocol v3).
  /// Hello-free like QueryRange — the root's merge path uses this.
  bool StateDump(const std::string& session, StateDumpResultFrame* result,
                 std::string* error);
  /// Asks the node what it is (protocol v3): role "server" or "root",
  /// plus the leaf table for a root. Doubles as the heartbeat ping.
  bool Topology(TopologyInfoFrame* info, std::string* error);
  /// Scrapes the node's metrics registry as JSON (protocol v5). Hello-
  /// free like QueryRange; against a root the answer covers the whole
  /// tree with per-leaf breakdown.
  bool MetricsDump(MetricsDumpResultFrame* result, std::string* error);
  bool Shutdown(std::string* error);

  /// Robustness-test escape hatches: ship arbitrary bytes / read one
  /// frame without the request/reply pairing.
  bool RawSend(std::span<const uint8_t> bytes, std::string* error);
  bool RawReadFrame(Frame* frame, std::string* error);

 private:
  /// Sends `payload` framed as `type`, reads exactly one reply frame,
  /// and requires it to be `expected`. An Error reply surfaces the
  /// server's message in *error.
  bool Request(FrameType type, std::span<const uint8_t> payload,
               FrameType expected, Frame* reply, std::string* error);

  int fd_ = -1;
  ClientDeadlines deadlines_;
  std::vector<uint8_t> read_buffer_;
  uint64_t next_seq_ = 0;  // per-connection PushBatch sequence (v4)
  uint64_t overload_retries_ = 0;
};

}  // namespace varstream

#endif  // VARSTREAM_SERVICE_CLIENT_H_
