#include "service/protocol.h"

#include <sys/resource.h>
#include <sys/socket.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <limits>

namespace varstream {

namespace {

// Slicing-by-8 CRC tables: table[0] is the classic byte-at-a-time IEEE
// table; table[k] advances a byte k positions further through the
// polynomial, so the hot loop folds 8 input bytes per iteration. The
// PushBatch path runs this over ~50 KiB per frame on both ends of the
// socket, which made the byte-at-a-time loop one of the three largest
// costs in the service ingest profile.
std::array<std::array<uint32_t, 256>, 8> BuildCrcTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    tables[0][i] = c;
  }
  for (size_t k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = tables[k - 1][i];
      tables[k][i] = tables[0][c & 0xFF] ^ (c >> 8);
    }
  }
  return tables;
}

const std::array<std::array<uint32_t, 256>, 8>& CrcTables() {
  static const std::array<std::array<uint32_t, 256>, 8> tables =
      BuildCrcTables();
  return tables;
}

void StoreU32(uint8_t* p, uint32_t value) {
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(p, &value, sizeof(value));
  } else {
    p[0] = static_cast<uint8_t>(value);
    p[1] = static_cast<uint8_t>(value >> 8);
    p[2] = static_cast<uint8_t>(value >> 16);
    p[3] = static_cast<uint8_t>(value >> 24);
  }
}

void StoreU64(uint8_t* p, uint64_t value) {
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(p, &value, sizeof(value));
  } else {
    for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(value >> (8 * i));
  }
}

void PutU32(std::vector<uint8_t>* out, uint32_t value) {
  out->push_back(static_cast<uint8_t>(value));
  out->push_back(static_cast<uint8_t>(value >> 8));
  out->push_back(static_cast<uint8_t>(value >> 16));
  out->push_back(static_cast<uint8_t>(value >> 24));
}

uint32_t ReadU32At(std::span<const uint8_t> data, size_t pos) {
  return static_cast<uint32_t>(data[pos]) |
         static_cast<uint32_t>(data[pos + 1]) << 8 |
         static_cast<uint32_t>(data[pos + 2]) << 16 |
         static_cast<uint32_t>(data[pos + 3]) << 24;
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello:
      return "hello";
    case FrameType::kHelloAck:
      return "hello-ack";
    case FrameType::kPushBatch:
      return "push-batch";
    case FrameType::kPushAck:
      return "push-ack";
    case FrameType::kQuery:
      return "query";
    case FrameType::kSnapshot:
      return "snapshot";
    case FrameType::kCheckpoint:
      return "checkpoint";
    case FrameType::kCheckpointAck:
      return "checkpoint-ack";
    case FrameType::kShutdown:
      return "shutdown";
    case FrameType::kShutdownAck:
      return "shutdown-ack";
    case FrameType::kError:
      return "error";
    case FrameType::kQueryRange:
      return "query-range";
    case FrameType::kQueryRangeResult:
      return "query-range-result";
    case FrameType::kStateDump:
      return "state-dump";
    case FrameType::kStateDumpResult:
      return "state-dump-result";
    case FrameType::kTopology:
      return "topology";
    case FrameType::kTopologyInfo:
      return "topology-info";
    case FrameType::kOverloaded:
      return "overloaded";
    case FrameType::kMetricsDump:
      return "metrics-dump";
    case FrameType::kMetricsDumpResult:
      return "metrics-dump-result";
  }
  return "?";
}

uint32_t Crc32(std::span<const uint8_t> data) {
  const auto& t = CrcTables();
  uint32_t crc = 0xFFFFFFFFu;
  const uint8_t* p = data.data();
  size_t n = data.size();
  if constexpr (std::endian::native == std::endian::little) {
    while (n >= 8) {
      uint32_t lo;
      uint32_t hi;
      std::memcpy(&lo, p, 4);
      std::memcpy(&hi, p + 4, 4);
      lo ^= crc;
      crc = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^
            t[5][(lo >> 16) & 0xFF] ^ t[4][lo >> 24] ^ t[3][hi & 0xFF] ^
            t[2][(hi >> 8) & 0xFF] ^ t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
      p += 8;
      n -= 8;
    }
  }
  while (n-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

bool SendAllBytes(int fd, const uint8_t* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

void AppendFrame(std::vector<uint8_t>* out, FrameType type,
                 std::span<const uint8_t> payload) {
  PutU32(out, static_cast<uint32_t>(payload.size()));
  size_t crc_start = out->size();
  out->push_back(static_cast<uint8_t>(type));
  out->insert(out->end(), payload.begin(), payload.end());
  uint32_t crc = Crc32(std::span<const uint8_t>(out->data() + crc_start,
                                                payload.size() + 1));
  PutU32(out, crc);
}

DecodeStatus DecodeFrame(std::span<const uint8_t> in, Frame* frame,
                         size_t* consumed, std::string* error) {
  FrameView view;
  DecodeStatus status = DecodeFrameView(in, &view, consumed, error);
  if (status != DecodeStatus::kOk) return status;
  frame->type = view.type;
  frame->payload.assign(view.payload.begin(), view.payload.end());
  return DecodeStatus::kOk;
}

DecodeStatus DecodeFrameView(std::span<const uint8_t> in, FrameView* view,
                             size_t* consumed, std::string* error) {
  if (in.size() < 4) return DecodeStatus::kNeedMore;
  uint32_t length = ReadU32At(in, 0);
  if (length > kMaxFramePayload) {
    if (error != nullptr) {
      *error = "oversized frame: payload of " + std::to_string(length) +
               " bytes exceeds the " + std::to_string(kMaxFramePayload) +
               "-byte limit";
    }
    return DecodeStatus::kMalformed;
  }
  size_t total = kFrameOverhead + length;
  if (in.size() < total) return DecodeStatus::kNeedMore;
  uint8_t type_byte = in[4];
  if (type_byte < static_cast<uint8_t>(FrameType::kHello) ||
      type_byte > static_cast<uint8_t>(FrameType::kMaxFrameType)) {
    if (error != nullptr) {
      *error = "unknown frame type " + std::to_string(type_byte);
    }
    return DecodeStatus::kMalformed;
  }
  uint32_t expected_crc = ReadU32At(in, 5 + length);
  uint32_t actual_crc = Crc32(in.subspan(4, length + 1));
  if (expected_crc != actual_crc) {
    if (error != nullptr) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "CRC mismatch on %s frame (got %08x, computed %08x)",
                    FrameTypeName(static_cast<FrameType>(type_byte)),
                    expected_crc, actual_crc);
      *error = buf;
    }
    return DecodeStatus::kMalformed;
  }
  view->type = static_cast<FrameType>(type_byte);
  view->payload = in.subspan(5, length);
  *consumed = total;
  return DecodeStatus::kOk;
}

// --- WireWriter / WireReader. ---

void WireWriter::U8(uint8_t value) { out_->push_back(value); }

void WireWriter::U32(uint32_t value) { PutU32(out_, value); }

void WireWriter::U64(uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out_->push_back(static_cast<uint8_t>(value >> shift));
  }
}

void WireWriter::I64(int64_t value) { U64(static_cast<uint64_t>(value)); }

void WireWriter::F64(double value) { U64(std::bit_cast<uint64_t>(value)); }

void WireWriter::String(const std::string& value) {
  U32(static_cast<uint32_t>(value.size()));
  out_->insert(out_->end(), value.begin(), value.end());
}

bool WireReader::U8(uint8_t* value) {
  if (pos_ + 1 > data_.size()) return false;
  *value = data_[pos_++];
  return true;
}

bool WireReader::U32(uint32_t* value) {
  if (pos_ + 4 > data_.size()) return false;
  *value = ReadU32At(data_, pos_);
  pos_ += 4;
  return true;
}

bool WireReader::U64(uint64_t* value) {
  if (pos_ + 8 > data_.size()) return false;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  *value = v;
  return true;
}

bool WireReader::I64(int64_t* value) {
  uint64_t v = 0;
  if (!U64(&v)) return false;
  *value = static_cast<int64_t>(v);
  return true;
}

bool WireReader::F64(double* value) {
  uint64_t bits = 0;
  if (!U64(&bits)) return false;
  *value = std::bit_cast<double>(bits);
  return true;
}

bool WireReader::String(std::string* value) {
  uint32_t length = 0;
  if (!U32(&length)) return false;
  if (pos_ + length > data_.size()) return false;
  value->assign(reinterpret_cast<const char*>(data_.data()) + pos_, length);
  pos_ += length;
  return true;
}

// --- Frame payload codecs. ---

std::vector<uint8_t> EncodeHello(const HelloFrame& hello) {
  std::vector<uint8_t> payload;
  WireWriter w(&payload);
  w.U32(hello.magic);
  w.U32(hello.version);
  w.String(hello.session);
  w.String(hello.tracker);
  w.U32(hello.shards);
  w.U32(hello.options.num_sites);
  w.F64(hello.options.epsilon);
  w.U64(hello.options.seed);
  w.I64(hello.options.initial_value);
  w.F64(hello.options.drift_threshold_factor);
  w.F64(hello.options.sample_constant);
  w.U64(hello.options.period);
  w.U32(hello.options.site_base);  // appended in v3
  return payload;
}

bool DecodeHello(std::span<const uint8_t> payload, HelloFrame* hello) {
  WireReader r(payload);
  return r.U32(&hello->magic) && r.U32(&hello->version) &&
         r.String(&hello->session) && r.String(&hello->tracker) &&
         r.U32(&hello->shards) && r.U32(&hello->options.num_sites) &&
         r.F64(&hello->options.epsilon) && r.U64(&hello->options.seed) &&
         r.I64(&hello->options.initial_value) &&
         r.F64(&hello->options.drift_threshold_factor) &&
         r.F64(&hello->options.sample_constant) &&
         r.U64(&hello->options.period) &&
         r.U32(&hello->options.site_base) && r.AtEnd();
}

std::vector<uint8_t> EncodeHelloAck(const HelloAckFrame& ack) {
  std::vector<uint8_t> payload;
  WireWriter w(&payload);
  w.U32(ack.version);
  w.U8(ack.created ? 1 : 0);
  w.U64(ack.session_time);
  return payload;
}

bool DecodeHelloAck(std::span<const uint8_t> payload, HelloAckFrame* ack) {
  WireReader r(payload);
  uint8_t created = 0;
  if (!r.U32(&ack->version) || !r.U8(&created) ||
      !r.U64(&ack->session_time) || !r.AtEnd() || created > 1) {
    return false;
  }
  ack->created = created == 1;
  return true;
}

namespace {

// Writes the seq/count header and packed pairs straight into `p`
// (kPushBatchHeaderBytes + count * kPushUpdateWireBytes bytes).
void WritePushBatchPayload(uint8_t* p, uint64_t seq,
                           std::span<const CountUpdate> updates) {
  StoreU64(p, seq);
  StoreU32(p + 8, static_cast<uint32_t>(updates.size()));
  p += kPushBatchHeaderBytes;
  for (const CountUpdate& u : updates) {
    StoreU32(p, u.site);
    StoreU64(p + 4, static_cast<uint64_t>(u.delta));
    p += kPushUpdateWireBytes;
  }
}

}  // namespace

std::vector<uint8_t> EncodePushBatch(uint64_t seq,
                                     std::span<const CountUpdate> updates) {
  std::vector<uint8_t> payload(kPushBatchHeaderBytes +
                               updates.size() * kPushUpdateWireBytes);
  WritePushBatchPayload(payload.data(), seq, updates);
  return payload;
}

void AppendPushBatchFrame(std::vector<uint8_t>* out, uint64_t seq,
                          std::span<const CountUpdate> updates) {
  const size_t payload_size =
      kPushBatchHeaderBytes + updates.size() * kPushUpdateWireBytes;
  const size_t start = out->size();
  out->resize(start + kFrameOverhead + payload_size);
  uint8_t* p = out->data() + start;
  StoreU32(p, static_cast<uint32_t>(payload_size));
  p[4] = static_cast<uint8_t>(FrameType::kPushBatch);
  WritePushBatchPayload(p + 5, seq, updates);
  uint32_t crc =
      Crc32(std::span<const uint8_t>(p + 4, payload_size + 1));
  StoreU32(p + 5 + payload_size, crc);
}

bool DecodePushBatchView(std::span<const uint8_t> payload,
                         PushBatchView* view) {
  // The count must account for the payload size EXACTLY — short, long,
  // and truncated-pair payloads all fail here, before any allocation.
  if (payload.size() < kPushBatchHeaderBytes) return false;
  view->seq = PushBatchView::LoadU64(payload.data());
  view->count = PushBatchView::LoadU32(payload.data() + 8);
  if (payload.size() != kPushBatchHeaderBytes +
                            static_cast<size_t>(view->count) *
                                kPushUpdateWireBytes) {
    return false;
  }
  view->pairs = payload.data() + kPushBatchHeaderBytes;
  return true;
}

void MaterializeUpdates(const PushBatchView& view,
                        std::vector<CountUpdate>* out) {
  out->reserve(out->size() + view.count);
  for (uint32_t i = 0; i < view.count; ++i) {
    out->push_back(CountUpdate{view.site(i), view.delta(i)});
  }
}

bool DecodePushBatch(std::span<const uint8_t> payload,
                     PushBatchFrame* batch) {
  PushBatchView view;
  if (!DecodePushBatchView(payload, &view)) return false;
  batch->seq = view.seq;
  batch->updates.clear();
  MaterializeUpdates(view, &batch->updates);
  return true;
}

std::vector<uint8_t> EncodePushAck(const PushAckFrame& ack) {
  std::vector<uint8_t> payload;
  WireWriter w(&payload);
  w.U64(ack.seq);
  w.U64(ack.session_time);
  w.U8(ack.checkpointed ? 1 : 0);
  return payload;
}

bool DecodePushAck(std::span<const uint8_t> payload, PushAckFrame* ack) {
  WireReader r(payload);
  uint8_t checkpointed = 0;
  if (!r.U64(&ack->seq) || !r.U64(&ack->session_time) ||
      !r.U8(&checkpointed) || !r.AtEnd() || checkpointed > 1) {
    return false;
  }
  ack->checkpointed = checkpointed == 1;
  return true;
}

std::vector<uint8_t> EncodeOverloaded(const OverloadedFrame& overloaded) {
  std::vector<uint8_t> payload;
  WireWriter w(&payload);
  w.U64(overloaded.seq);
  w.U64(overloaded.pending);
  w.U64(overloaded.cap);
  return payload;
}

bool DecodeOverloaded(std::span<const uint8_t> payload,
                      OverloadedFrame* overloaded) {
  WireReader r(payload);
  return r.U64(&overloaded->seq) && r.U64(&overloaded->pending) &&
         r.U64(&overloaded->cap) && r.AtEnd();
}

std::vector<uint8_t> EncodeSnapshot(const SnapshotFrame& snapshot) {
  std::vector<uint8_t> payload;
  WireWriter w(&payload);
  w.F64(snapshot.estimate);
  w.U64(snapshot.time);
  w.U64(snapshot.messages);
  w.U64(snapshot.bits);
  w.U64(snapshot.wire_messages);
  w.U64(snapshot.wire_bits);
  return payload;
}

bool DecodeSnapshot(std::span<const uint8_t> payload,
                    SnapshotFrame* snapshot) {
  WireReader r(payload);
  return r.F64(&snapshot->estimate) && r.U64(&snapshot->time) &&
         r.U64(&snapshot->messages) && r.U64(&snapshot->bits) &&
         r.U64(&snapshot->wire_messages) && r.U64(&snapshot->wire_bits) &&
         r.AtEnd();
}

std::vector<uint8_t> EncodeCheckpointAck(const CheckpointAckFrame& ack) {
  std::vector<uint8_t> payload;
  WireWriter w(&payload);
  w.String(ack.path);
  return payload;
}

bool DecodeCheckpointAck(std::span<const uint8_t> payload,
                         CheckpointAckFrame* ack) {
  WireReader r(payload);
  return r.String(&ack->path) && r.AtEnd();
}

std::vector<uint8_t> EncodeError(const std::string& message) {
  std::vector<uint8_t> payload;
  WireWriter w(&payload);
  w.String(message);
  return payload;
}

bool DecodeError(std::span<const uint8_t> payload, ErrorFrame* error) {
  WireReader r(payload);
  return r.String(&error->message) && r.AtEnd();
}

std::vector<uint8_t> EncodeQueryRange(const QueryRangeFrame& query) {
  std::vector<uint8_t> payload;
  WireWriter w(&payload);
  w.U32(query.version);
  w.String(query.session);
  w.String(query.tracker);
  w.U64(query.spec.time_min);
  w.U64(query.spec.time_max);
  w.U8(static_cast<uint8_t>(query.spec.agg));
  w.U32(query.spec.buckets);
  return payload;
}

bool DecodeQueryRange(std::span<const uint8_t> payload,
                      QueryRangeFrame* query) {
  WireReader r(payload);
  uint8_t agg = 0;
  if (!r.U32(&query->version) || !r.String(&query->session) ||
      !r.String(&query->tracker) || !r.U64(&query->spec.time_min) ||
      !r.U64(&query->spec.time_max) || !r.U8(&agg) ||
      !r.U32(&query->spec.buckets) || !r.AtEnd()) {
    return false;
  }
  // The aggregation is a closed enum: anything past kMaxAggregation is a
  // malformed frame, not a semantic error (unlike `version`, which the
  // server checks so it can answer with a diagnostic).
  if (agg > static_cast<uint8_t>(Aggregation::kMaxAggregation)) return false;
  query->spec.agg = static_cast<Aggregation>(agg);
  return true;
}

namespace {

// Fixed wire sizes used to bound element counts before allocation.
constexpr size_t kQueryRowWireBytes = 7 * 8;        // seven u64/f64 fields
constexpr size_t kSessionResultMinWireBytes =        // empty-string session
    4 + 4 + 3 * 8 + 4;  // 2 string lengths + capacity/cadence/dropped + rows

}  // namespace

std::vector<uint8_t> EncodeQueryRangeResult(
    const QueryRangeResultFrame& result) {
  std::vector<uint8_t> payload;
  WireWriter w(&payload);
  w.U32(result.version);
  w.U32(static_cast<uint32_t>(result.sessions.size()));
  for (const SessionQueryResult& session : result.sessions) {
    w.String(session.session);
    w.String(session.tracker);
    w.U64(session.capacity);
    w.U64(session.cadence);
    w.U64(session.dropped);
    w.U32(static_cast<uint32_t>(session.rows.size()));
    for (const QueryRow& row : session.rows) {
      w.U64(row.time_first);
      w.U64(row.time_last);
      w.F64(row.value);
      w.U64(row.messages);
      w.U64(row.bits);
      w.U64(row.wire_bytes);
      w.U64(row.samples);
    }
  }
  return payload;
}

bool DecodeQueryRangeResult(std::span<const uint8_t> payload,
                            QueryRangeResultFrame* result) {
  WireReader r(payload);
  uint32_t session_count = 0;
  if (!r.U32(&result->version) || !r.U32(&session_count)) return false;
  if (static_cast<size_t>(session_count) * kSessionResultMinWireBytes >
      r.Remaining()) {
    return false;
  }
  result->sessions.clear();
  result->sessions.reserve(session_count);
  for (uint32_t s = 0; s < session_count; ++s) {
    SessionQueryResult session;
    uint32_t row_count = 0;
    if (!r.String(&session.session) || !r.String(&session.tracker) ||
        !r.U64(&session.capacity) || !r.U64(&session.cadence) ||
        !r.U64(&session.dropped) || !r.U32(&row_count)) {
      return false;
    }
    if (static_cast<size_t>(row_count) * kQueryRowWireBytes > r.Remaining()) {
      return false;
    }
    session.rows.reserve(row_count);
    for (uint32_t i = 0; i < row_count; ++i) {
      QueryRow row;
      if (!r.U64(&row.time_first) || !r.U64(&row.time_last) ||
          !r.F64(&row.value) || !r.U64(&row.messages) || !r.U64(&row.bits) ||
          !r.U64(&row.wire_bytes) || !r.U64(&row.samples)) {
        return false;
      }
      session.rows.push_back(row);
    }
    result->sessions.push_back(std::move(session));
  }
  return r.AtEnd();
}

std::vector<uint8_t> EncodeStateDump(const StateDumpFrame& dump) {
  std::vector<uint8_t> payload;
  WireWriter w(&payload);
  w.String(dump.session);
  return payload;
}

bool DecodeStateDump(std::span<const uint8_t> payload, StateDumpFrame* dump) {
  WireReader r(payload);
  return r.String(&dump->session) && r.AtEnd();
}

std::vector<uint8_t> EncodeStateDumpResult(
    const StateDumpResultFrame& result) {
  std::vector<uint8_t> payload;
  WireWriter w(&payload);
  w.String(result.tracker);
  w.U32(result.shards);
  w.String(result.state);
  return payload;
}

bool DecodeStateDumpResult(std::span<const uint8_t> payload,
                           StateDumpResultFrame* result) {
  WireReader r(payload);
  return r.String(&result->tracker) && r.U32(&result->shards) &&
         r.String(&result->state) && r.AtEnd();
}

namespace {

// index + port + site_lo + site_hi + alive + pid + restarts.
constexpr size_t kTopologyLeafWireBytes = 4 * 4 + 1 + 8 + 4;

}  // namespace

std::vector<uint8_t> EncodeTopologyInfo(const TopologyInfoFrame& info) {
  std::vector<uint8_t> payload;
  WireWriter w(&payload);
  w.String(info.role);
  w.U32(static_cast<uint32_t>(info.leaves.size()));
  for (const TopologyLeaf& leaf : info.leaves) {
    w.U32(leaf.index);
    w.U32(leaf.port);
    w.U32(leaf.site_lo);
    w.U32(leaf.site_hi);
    w.U8(leaf.alive ? 1 : 0);
    w.U64(leaf.pid);
    w.U32(leaf.restarts);
  }
  return payload;
}

bool DecodeTopologyInfo(std::span<const uint8_t> payload,
                        TopologyInfoFrame* info) {
  WireReader r(payload);
  uint32_t count = 0;
  if (!r.String(&info->role) || !r.U32(&count)) return false;
  if (static_cast<size_t>(count) * kTopologyLeafWireBytes > r.Remaining()) {
    return false;
  }
  info->leaves.clear();
  info->leaves.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    TopologyLeaf leaf;
    uint8_t alive = 0;
    if (!r.U32(&leaf.index) || !r.U32(&leaf.port) || !r.U32(&leaf.site_lo) ||
        !r.U32(&leaf.site_hi) || !r.U8(&alive) || !r.U64(&leaf.pid) ||
        !r.U32(&leaf.restarts) || alive > 1) {
      return false;
    }
    leaf.alive = alive == 1;
    info->leaves.push_back(leaf);
  }
  return r.AtEnd();
}

std::vector<uint8_t> EncodeMetricsDump(const MetricsDumpFrame& dump) {
  std::vector<uint8_t> payload;
  WireWriter w(&payload);
  w.U32(dump.version);
  return payload;
}

bool DecodeMetricsDump(std::span<const uint8_t> payload,
                       MetricsDumpFrame* dump) {
  WireReader r(payload);
  return r.U32(&dump->version) && r.AtEnd();
}

std::vector<uint8_t> EncodeMetricsDumpResult(
    const MetricsDumpResultFrame& result) {
  std::vector<uint8_t> payload;
  WireWriter w(&payload);
  w.U32(result.version);
  w.String(result.json);
  return payload;
}

bool DecodeMetricsDumpResult(std::span<const uint8_t> payload,
                             MetricsDumpResultFrame* result) {
  WireReader r(payload);
  return r.U32(&result->version) && r.String(&result->json) && r.AtEnd();
}

bool SessionNameIsSafe(const std::string& name) {
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string ValidateHello(const HelloFrame& hello, uint32_t max_sites) {
  if (hello.magic != kProtocolMagic) return "bad protocol magic";
  if (hello.version != kProtocolVersion) {
    return "protocol version mismatch: client speaks v" +
           std::to_string(hello.version) + ", server speaks v" +
           std::to_string(kProtocolVersion);
  }
  if (hello.options.num_sites == 0 || hello.options.num_sites > max_sites ||
      !(hello.options.epsilon > 0 && hello.options.epsilon < 1) ||
      hello.options.period == 0) {
    return "invalid session config: need 1 <= sites <= " +
           std::to_string(max_sites) + ", epsilon in (0, 1), period >= 1";
  }
  // u64 math: a hostile site_base near 2^32 must not wrap past the cap.
  if (static_cast<uint64_t>(hello.options.site_base) +
          hello.options.num_sites >
      max_sites) {
    return "invalid session config: site range [" +
           std::to_string(hello.options.site_base) + ", " +
           std::to_string(static_cast<uint64_t>(hello.options.site_base) +
                          hello.options.num_sites) +
           ") exceeds the " + std::to_string(max_sites) + "-site ceiling";
  }
  if (hello.options.site_base != 0 && hello.shards == 0) {
    return "invalid session config: site_base requires the sharded engine "
           "(shards >= 1) — serial trackers have no global site identity";
  }
  if (hello.session.empty() || hello.session.size() > kMaxSessionNameLength ||
      !SessionNameIsSafe(hello.session)) {
    return "invalid session name (1-" +
           std::to_string(kMaxSessionNameLength) +
           " characters from [A-Za-z0-9._-]; it is embedded in the "
           "line-oriented checkpoint file)";
  }
  return "";
}

uint64_t RaiseFdLimit(uint64_t want) {
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return 0;
  if (limit.rlim_cur != RLIM_INFINITY && limit.rlim_cur < want) {
    rlimit raised = limit;
    raised.rlim_cur = (limit.rlim_max == RLIM_INFINITY)
                          ? want
                          : std::min<rlim_t>(want, limit.rlim_max);
    if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) limit = raised;
  }
  return limit.rlim_cur == RLIM_INFINITY
             ? std::numeric_limits<uint64_t>::max()
             : static_cast<uint64_t>(limit.rlim_cur);
}

}  // namespace varstream
