#include "service/checkpoint.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>

#include "core/state_codec.h"  // EncodeDoubleBits + strict parsers
#include "service/protocol.h"  // Crc32

namespace varstream {

namespace {

/// Pulls the next line (without the trailing '\n') out of `text`.
/// Returns false at end of input.
bool NextLine(const std::string& text, size_t* pos, std::string* line) {
  if (*pos >= text.size()) return false;
  size_t nl = text.find('\n', *pos);
  if (nl == std::string::npos) {
    *line = text.substr(*pos);
    *pos = text.size();
  } else {
    *line = text.substr(*pos, nl - *pos);
    *pos = nl + 1;
  }
  return true;
}

/// "key=value" accessor for the fixed session header lines.
bool KeyValue(const std::string& line, const std::string& key,
              std::string* value) {
  if (line.rfind(key + "=", 0) != 0) return false;
  *value = line.substr(key.size() + 1);
  return true;
}

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = "varstream-ckpt-v1: " + message;
  return false;
}

}  // namespace

std::string EncodeCheckpoint(
    const std::vector<SessionCheckpoint>& sessions) {
  std::string out = std::string(kCheckpointMagic) + "\n";
  out += "sessions=" + std::to_string(sessions.size()) + "\n";
  for (const SessionCheckpoint& s : sessions) {
    out += "[session]\n";
    out += "name=" + s.name + "\n";
    out += "tracker=" + s.tracker + "\n";
    out += "sites=" + std::to_string(s.options.num_sites) + "\n";
    out += "shards=" + std::to_string(s.shards) + "\n";
    out += "epsilon=" + EncodeDoubleBits(s.options.epsilon) + "\n";
    out += "seed=" + std::to_string(s.options.seed) + "\n";
    out += "period=" + std::to_string(s.options.period) + "\n";
    out += "initial=" + std::to_string(s.options.initial_value) + "\n";
    out += "dtf=" + EncodeDoubleBits(s.options.drift_threshold_factor) + "\n";
    out += "sconst=" + EncodeDoubleBits(s.options.sample_constant) + "\n";
    // Optional (hierarchy leaves only): omitted when 0 so single-node
    // checkpoints keep their exact pre-hierarchy bytes.
    if (s.options.site_base != 0) {
      out += "sitebase=" + std::to_string(s.options.site_base) + "\n";
    }
    uint64_t state_lines = 1;
    for (char c : s.state) {
      if (c == '\n') ++state_lines;
    }
    out += "state-lines=" + std::to_string(state_lines) + "\n";
    out += s.state + "\n";
    if (s.has_history) {
      out += "history-capacity=" + std::to_string(s.history.capacity) + "\n";
      out += "history-cadence=" + std::to_string(s.history.cadence) + "\n";
      out += "history-pending=" + std::to_string(s.history.pending) + "\n";
      out += "history-dropped=" + std::to_string(s.history.dropped) + "\n";
      out += "history-rows=" + std::to_string(s.history.rows.size()) + "\n";
      for (const HistoryRow& row : s.history.rows) {
        out += EncodeHistoryRow(row) + "\n";
      }
    }
    out += "[end]\n";
  }
  uint32_t crc = Crc32(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(out.data()), out.size()));
  char crc_line[24];
  std::snprintf(crc_line, sizeof(crc_line), "crc=%08x\n", crc);
  out += crc_line;
  return out;
}

bool DecodeCheckpoint(const std::string& text,
                      std::vector<SessionCheckpoint>* sessions,
                      std::string* error) {
  // The CRC line covers everything before it; find and verify it first so
  // every later diagnostic can trust the bytes it quotes.
  size_t crc_pos = text.rfind("crc=");
  if (crc_pos == std::string::npos ||
      (crc_pos != 0 && text[crc_pos - 1] != '\n')) {
    return Fail(error, "missing trailing crc line (truncated checkpoint?)");
  }
  {
    // Strict: the file ends with exactly "crc=<8 lowercase hex>\n". A
    // missing final newline is truncation, and the digits are matched
    // byte-for-byte — strtoull-style parsing would accept a case-flipped
    // digit ('a' vs 'A' differ in exactly one bit) as the same value,
    // a silent accept the corruption-matrix tests reject.
    const std::string crc_text = text.substr(crc_pos + 4);
    bool well_formed = crc_text.size() == 9 && crc_text.back() == '\n';
    uint64_t stored = 0;
    for (size_t i = 0; well_formed && i < 8; ++i) {
      char c = crc_text[i];
      if (c >= '0' && c <= '9') {
        stored = stored << 4 | static_cast<uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        stored = stored << 4 | static_cast<uint64_t>(c - 'a' + 10);
      } else {
        well_formed = false;
      }
    }
    if (!well_formed) {
      return Fail(error, "malformed crc line");
    }
    uint32_t computed = Crc32(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t*>(text.data()), crc_pos));
    if (stored != computed) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "crc mismatch (file %08" PRIx64 ", computed %08x) — "
                    "checkpoint is corrupt",
                    stored, computed);
      return Fail(error, buf);
    }
  }

  size_t pos = 0;
  std::string line;
  if (!NextLine(text, &pos, &line) || line != kCheckpointMagic) {
    return Fail(error, "bad magic line (not a varstream checkpoint)");
  }
  std::string value;
  uint64_t count = 0;
  if (!NextLine(text, &pos, &line) || !KeyValue(line, "sessions", &value) ||
      !ParseU64Text(value, &count)) {
    return Fail(error, "missing or malformed sessions count");
  }
  sessions->clear();
  for (uint64_t i = 0; i < count; ++i) {
    if (!NextLine(text, &pos, &line) || line != "[session]") {
      return Fail(error, "expected [session] for entry " + std::to_string(i));
    }
    SessionCheckpoint s;
    uint64_t sites = 0, shards = 0, seed = 0, period = 0, state_lines = 0;
    int64_t initial = 0;
    // Read the fixed header lines in order; any deviation is corruption.
    auto read_kv = [&](const char* key, std::string* dest) {
      return NextLine(text, &pos, &line) && KeyValue(line, key, dest);
    };
    if (!read_kv("name", &s.name) || !read_kv("tracker", &s.tracker)) {
      return Fail(error, "malformed session header in entry " +
                             std::to_string(i));
    }
    auto read_u64 = [&](const char* key, uint64_t* dest) {
      return read_kv(key, &value) && ParseU64Text(value, dest);
    };
    auto read_bits = [&](const char* key, double* dest) {
      return read_kv(key, &value) && ParseDoubleBits(value, dest);
    };
    if (!read_u64("sites", &sites) || sites == 0 || sites > UINT32_MAX ||
        !read_u64("shards", &shards) || shards > sites ||
        !read_bits("epsilon", &s.options.epsilon) ||
        !read_u64("seed", &seed) ||
        !read_u64("period", &period) || period == 0 ||
        !read_kv("initial", &value) || !ParseI64Text(value, &initial) ||
        !read_bits("dtf", &s.options.drift_threshold_factor) ||
        !read_bits("sconst", &s.options.sample_constant)) {
      return Fail(error, "malformed session header in entry " +
                             std::to_string(i) + " ('" + s.name + "')");
    }
    // Optional sitebase line (hierarchy leaves); absent means 0, the
    // documented back-compat reading of pre-hierarchy checkpoints.
    uint64_t sitebase = 0;
    if (!NextLine(text, &pos, &line)) {
      return Fail(error, "malformed session header in entry " +
                             std::to_string(i) + " ('" + s.name + "')");
    }
    if (KeyValue(line, "sitebase", &value)) {
      if (!ParseU64Text(value, &sitebase) || sitebase == 0 ||
          sitebase + sites > UINT32_MAX) {
        return Fail(error, "malformed sitebase in session '" + s.name + "'");
      }
      if (!NextLine(text, &pos, &line)) {
        return Fail(error, "malformed session header in entry " +
                               std::to_string(i) + " ('" + s.name + "')");
      }
    }
    if (!KeyValue(line, "state-lines", &value) ||
        !ParseU64Text(value, &state_lines) || state_lines == 0) {
      return Fail(error, "malformed session header in entry " +
                             std::to_string(i) + " ('" + s.name + "')");
    }
    s.options.site_base = static_cast<uint32_t>(sitebase);
    s.options.num_sites = static_cast<uint32_t>(sites);
    s.shards = static_cast<uint32_t>(shards);
    s.options.seed = seed;
    s.options.period = period;
    s.options.initial_value = initial;
    for (uint64_t l = 0; l < state_lines; ++l) {
      if (!NextLine(text, &pos, &line)) {
        return Fail(error, "truncated state dump in session '" + s.name +
                               "'");
      }
      if (l > 0) s.state += '\n';
      s.state += line;
    }
    if (!NextLine(text, &pos, &line)) {
      return Fail(error, "missing [end] after session '" + s.name + "'");
    }
    if (KeyValue(line, "history-capacity", &value)) {
      // Optional history section: all five header lines in order, then
      // exactly history-rows row lines. Internal inconsistencies (more
      // retained rows than capacity, a cadence counter at or past the
      // cadence, rows out of time order) mean the checkpoint was not
      // written by this code — reject loudly rather than "fix" it.
      s.has_history = true;
      uint64_t row_count = 0;
      if (!ParseU64Text(value, &s.history.capacity) ||
          !read_u64("history-cadence", &s.history.cadence) ||
          !read_u64("history-pending", &s.history.pending) ||
          !read_u64("history-dropped", &s.history.dropped) ||
          !read_u64("history-rows", &row_count)) {
        return Fail(error, "malformed history section in session '" +
                               s.name + "'");
      }
      if (row_count > s.history.capacity ||
          (s.history.cadence > 0 && s.history.pending >= s.history.cadence) ||
          (s.history.cadence == 0 && s.history.pending != 0)) {
        return Fail(error, "inconsistent history section in session '" +
                               s.name + "'");
      }
      s.history.rows.reserve(row_count);
      for (uint64_t l = 0; l < row_count; ++l) {
        HistoryRow row;
        if (!NextLine(text, &pos, &line) || !ParseHistoryRow(line, &row)) {
          return Fail(error, "malformed history row in session '" + s.name +
                                 "'");
        }
        if (!s.history.rows.empty() &&
            row.time < s.history.rows.back().time) {
          return Fail(error, "history rows out of time order in session '" +
                                 s.name + "'");
        }
        s.history.rows.push_back(row);
      }
      if (!NextLine(text, &pos, &line)) {
        return Fail(error, "missing [end] after session '" + s.name + "'");
      }
    }
    if (line != "[end]") {
      return Fail(error, "missing [end] after session '" + s.name + "'");
    }
    sessions->push_back(std::move(s));
  }
  if (pos != crc_pos) {
    return Fail(error, "trailing garbage between sessions and crc line");
  }
  return true;
}

bool WriteCheckpointFile(const std::string& path,
                         const std::vector<SessionCheckpoint>& sessions,
                         std::string* error) {
  std::string text = EncodeCheckpoint(sessions);
  std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + tmp + " for writing";
    return false;
  }
  bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    if (error != nullptr) *error = "short write to " + tmp;
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) *error = "cannot rename " + tmp + " to " + path;
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool ReadCheckpointFile(const std::string& path,
                        std::vector<SessionCheckpoint>* sessions,
                        std::string* error) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = "cannot open checkpoint file " + path;
    }
    return false;
  }
  std::string text;
  char buf[65536];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    if (error != nullptr) *error = "I/O error reading " + path;
    return false;
  }
  return DecodeCheckpoint(text, sessions, error);
}

}  // namespace varstream
