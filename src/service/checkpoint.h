// varstream-ckpt-v1: the on-disk checkpoint format of VarstreamServer.
//
// A checkpoint captures every session a server hosts — the configuration
// needed to reconstruct each tracker (registry name, TrackerOptions,
// shard count) plus the tracker's complete SerializeState dump — so a
// killed server restarted with --restore resumes with byte-identical
// estimates (core/mergeable.h RestoreState).
//
// The format is line-oriented text (schema documented in README.md):
//
//   varstream-ckpt-v1
//   sessions=<N>
//   [session]
//   name=<session name>
//   tracker=<registry name>
//   sites=<k>
//   shards=<W>                        (0 = serial engine)
//   epsilon=<hex IEEE-754 bits>
//   seed=<u64>
//   period=<u64>
//   initial=<i64>
//   dtf=<hex bits>                    (drift_threshold_factor)
//   sconst=<hex bits>                 (sample_constant)
//   sitebase=<u32>                    (optional: a hierarchy leaf's first
//                                     global site id; omitted when 0 so
//                                     pre-hierarchy checkpoints and
//                                     single-node files keep their bytes)
//   state-lines=<M>
//   <M raw lines of Mergeable::SerializeState>
//   history-capacity=<u64>            (optional history section; a
//   history-cadence=<u64>             session checkpointed without
//   history-pending=<u64>             sampling omits all six lines)
//   history-dropped=<u64>
//   history-rows=<R>
//   <R rows: "time estimate-hexbits messages bits wire_bytes">
//   [end]
//   ... repeated per session ...
//   crc=<8 hex digits>                (CRC-32 of every preceding byte)
//
// The history section rides inside the same CRC envelope as everything
// else; its absence is the documented back-compat meaning "no retained
// history", so v1 checkpoints written before the history subsystem
// restore cleanly.
//
// Loading is strict: a missing magic line, a session count mismatch, an
// unknown tracker, a CRC mismatch, or a state dump RestoreState rejects
// all fail loudly with a diagnostic — a checkpoint that cannot be
// trusted end-to-end is worse than none.

#ifndef VARSTREAM_SERVICE_CHECKPOINT_H_
#define VARSTREAM_SERVICE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/options.h"
#include "history/history.h"

namespace varstream {

inline constexpr char kCheckpointMagic[] = "varstream-ckpt-v1";

/// A session's retained history at checkpoint time: the sampler config,
/// its cadence counter, the eviction count, and every retained row — all
/// of it must round-trip so a restored session's history (and every
/// future sample position) matches the uninterrupted run exactly.
struct SessionHistoryCheckpoint {
  uint64_t capacity = 0;
  uint64_t cadence = 0;
  uint64_t pending = 0;  // updates ingested since the last sample
  uint64_t dropped = 0;  // rows evicted before the checkpoint
  std::vector<HistoryRow> rows;
};

/// One session's checkpoint entry: its reconstruction config and the
/// serialized tracker state.
struct SessionCheckpoint {
  std::string name;
  std::string tracker;
  uint32_t shards = 0;  // 0 = serial engine
  TrackerOptions options;
  std::string state;  // Mergeable::SerializeState dump (may be multi-line)
  /// False for sessions without sampling (and for pre-history
  /// checkpoints, which simply lack the section).
  bool has_history = false;
  SessionHistoryCheckpoint history;
};

/// Serializes the entries into the varstream-ckpt-v1 text (including the
/// trailing CRC line).
std::string EncodeCheckpoint(const std::vector<SessionCheckpoint>& sessions);

/// Parses checkpoint text. Returns false and sets *error on any
/// malformation (including a CRC mismatch).
bool DecodeCheckpoint(const std::string& text,
                      std::vector<SessionCheckpoint>* sessions,
                      std::string* error);

/// Atomically writes the checkpoint (temp file + rename, so a kill
/// mid-write never leaves a torn checkpoint at `path`). Returns false
/// and sets *error on I/O failure.
bool WriteCheckpointFile(const std::string& path,
                         const std::vector<SessionCheckpoint>& sessions,
                         std::string* error);

/// Reads and parses a checkpoint file.
bool ReadCheckpointFile(const std::string& path,
                        std::vector<SessionCheckpoint>* sessions,
                        std::string* error);

}  // namespace varstream

#endif  // VARSTREAM_SERVICE_CHECKPOINT_H_
