#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "core/mergeable.h"
#include "core/registry.h"
#include "core/sharded.h"
#include "stream/source.h"  // JoinNames

namespace varstream {

namespace {

// Session-name and sizing checks live in protocol.cc (ValidateHello)
// now, shared with the root aggregator's identical admission path.

bool OptionsMatch(const TrackerOptions& a, const TrackerOptions& b) {
  return a.num_sites == b.num_sites && a.epsilon == b.epsilon &&
         a.seed == b.seed && a.initial_value == b.initial_value &&
         a.drift_threshold_factor == b.drift_threshold_factor &&
         a.sample_constant == b.sample_constant && a.period == b.period &&
         a.site_base == b.site_base;
}

}  // namespace

VarstreamServer::VarstreamServer(ServerOptions options)
    : options_(std::move(options)) {}

VarstreamServer::~VarstreamServer() { Stop(); }

std::unique_ptr<DistributedTracker> VarstreamServer::BuildTracker(
    const std::string& tracker_name, const TrackerOptions& options,
    uint32_t shards, std::string* error) {
  if (shards >= 1) {
    return ShardedTracker::Create(tracker_name, options, shards, error);
  }
  auto tracker = TrackerRegistry::Instance().Create(tracker_name, options);
  if (tracker == nullptr && error != nullptr) {
    *error = "unknown tracker '" + tracker_name + "'; valid trackers: " +
             JoinNames(TrackerRegistry::Instance().Names());
  }
  return tracker;
}

bool VarstreamServer::Start(std::string* error) {
  if (!options_.restore_path.empty()) {
    std::vector<SessionCheckpoint> entries;
    if (!ReadCheckpointFile(options_.restore_path, &entries, error)) {
      return false;
    }
    for (SessionCheckpoint& entry : entries) {
      std::string build_error;
      auto tracker = BuildTracker(entry.tracker, entry.options, entry.shards,
                                  &build_error);
      if (tracker == nullptr) {
        if (error != nullptr) {
          *error = "restore: session '" + entry.name + "': " + build_error;
        }
        return false;
      }
      auto* mergeable = dynamic_cast<Mergeable*>(tracker.get());
      std::string restore_error;
      if (mergeable == nullptr ||
          !mergeable->RestoreState(entry.state, &restore_error)) {
        if (error != nullptr) {
          *error = "restore: session '" + entry.name + "': " +
                   (mergeable == nullptr ? "tracker is not checkpointable"
                                         : restore_error);
        }
        return false;
      }
      auto session = std::make_unique<Session>();
      session->name = entry.name;
      session->tracker_name = entry.tracker;
      session->shards = entry.shards;
      session->options = entry.options;
      session->tracker = std::move(tracker);
      // A checkpointed history section carries its own retention config:
      // the restored session resumes the original sampling schedule even
      // if this server was started with different --history-* flags. A
      // checkpoint without the section (pre-history, or sampling was
      // disabled) starts fresh with this server's config.
      HistoryOptions history_options = options_.history;
      if (entry.has_history) {
        history_options.capacity = entry.history.capacity;
        history_options.cadence = entry.history.cadence;
      }
      session->history = std::make_unique<HistorySampler>(history_options);
      if (entry.has_history &&
          !session->history->Restore(entry.history.rows,
                                     entry.history.dropped,
                                     entry.history.pending)) {
        if (error != nullptr) {
          *error = "restore: session '" + entry.name +
                   "': history section does not fit its declared capacity";
        }
        return false;
      }
      std::lock_guard<std::mutex> lock(sessions_mu_);
      sessions_.emplace(entry.name, std::move(session));
    }
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = "socket(): " + std::string(strerror(errno));
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = "bind(127.0.0.1:" + std::to_string(options_.port) +
               "): " + strerror(errno);
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 64) != 0) {
    if (error != nullptr) *error = "listen(): " + std::string(strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this, fd = listen_fd_] { AcceptLoop(fd); });
  return true;
}

void VarstreamServer::Stop() {
  bool was_running = running_.exchange(false, std::memory_order_acq_rel);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Wake every connection thread blocked in recv(). The fds stay open
  // (handlers never close them), so there is no recycled-fd hazard here.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const auto& conn : connections_) ::shutdown(conn->fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections.swap(connections_);
  }
  for (const auto& conn : connections) {
    if (conn->thread.joinable()) conn->thread.join();
    ::close(conn->fd);
  }
  if (was_running) {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_requested_ = true;
    shutdown_cv_.notify_all();
  }
}

void VarstreamServer::WaitForShutdownRequest() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
}

void VarstreamServer::ReapFinishedConnections() {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (size_t i = 0; i < connections_.size();) {
      if (connections_[i]->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(connections_[i]));
        connections_.erase(connections_.begin() + i);
      } else {
        ++i;
      }
    }
  }
  for (const auto& conn : finished) {
    conn->thread.join();  // the handler already returned; joins instantly
    ::close(conn->fd);
  }
}

void VarstreamServer::AcceptLoop(int listen_fd) {
  while (running_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load(std::memory_order_acquire)) return;
      // Transient conditions must not kill the only accept loop a
      // long-running server has: a peer that reset while still in the
      // backlog (ECONNABORTED/EPROTO) or fd exhaustion (EMFILE/ENFILE,
      // which subsides when connections close) just mean "try again".
      if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) {
        continue;
      }
      std::fprintf(stderr, "varstream_serve: accept(): %s%s\n",
                   strerror(errno),
                   (errno == EMFILE || errno == ENFILE)
                       ? " (fd limit; retrying)"
                       : " (retrying)");
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    ReapFinishedConnections();
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (!running_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    connections_.push_back(std::move(conn));
    connections_.back()->thread =
        std::thread([this, raw] { HandleConnection(raw); });
  }
}

bool VarstreamServer::SendFrame(int fd, FrameType type,
                                std::span<const uint8_t> payload,
                                Session* session) {
  std::vector<uint8_t> wire;
  wire.reserve(kFrameOverhead + payload.size());
  AppendFrame(&wire, type, payload);
  if (session != nullptr) {
    std::lock_guard<std::mutex> lock(session->mu);
    session->wire_cost.Count(MessageKind::kWire, wire.size() * 8);
  }
  return SendAllBytes(fd, wire.data(), wire.size());
}

bool VarstreamServer::SendError(int fd, Session* session,
                                const std::string& message) {
  // Loud on the server side too: operators tailing the log see exactly
  // what the client was told before the connection dropped.
  std::fprintf(stderr, "varstream_serve: %s\n", message.c_str());
  SendFrame(fd, FrameType::kError, EncodeError(message), session);
  return false;  // caller closes the connection
}

VarstreamServer::Session* VarstreamServer::ResolveSession(
    const HelloFrame& hello, bool* created, std::string* error) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(hello.session);
  if (it != sessions_.end()) {
    Session* session = it->second.get();
    if (session->tracker_name != hello.tracker ||
        session->shards != hello.shards ||
        !OptionsMatch(session->options, hello.options)) {
      *error = "session '" + hello.session +
               "' already exists with a different configuration (" +
               session->tracker_name + ", k=" +
               std::to_string(session->options.num_sites) + ", shards=" +
               std::to_string(session->shards) + ")";
      return nullptr;
    }
    *created = false;
    return session;
  }
  // Admission cap before any allocation: every session owns a tracker
  // (possibly a W-thread engine), so a server facing untrusted clients
  // needs a ceiling that refuses loudly instead of thrashing.
  if (options_.max_sessions > 0 &&
      sessions_.size() >= options_.max_sessions) {
    *error = "session limit reached (" +
             std::to_string(options_.max_sessions) +
             " sessions; --max-sessions); session '" + hello.session +
             "' refused — attach to an existing session or raise the cap";
    return nullptr;
  }
  // Checkpointing applies to every session, so a checkpointing server
  // only admits checkpointable (= mergeable) trackers.
  if (!options_.checkpoint_path.empty() &&
      !TrackerRegistry::Instance().IsMergeable(hello.tracker)) {
    *error = "tracker '" + hello.tracker +
             "' is not checkpointable; this server checkpoints to " +
             options_.checkpoint_path + " — checkpointable trackers: " +
             JoinNames(TrackerRegistry::Instance().MergeableNames());
    return nullptr;
  }
  auto tracker = BuildTracker(hello.tracker, hello.options, hello.shards,
                              error);
  if (tracker == nullptr) return nullptr;
  auto session = std::make_unique<Session>();
  session->name = hello.session;
  session->tracker_name = hello.tracker;
  session->shards = hello.shards;
  session->options = hello.options;
  session->tracker = std::move(tracker);
  session->history = std::make_unique<HistorySampler>(options_.history);
  Session* raw = session.get();
  sessions_.emplace(hello.session, std::move(session));
  *created = true;
  return raw;
}

bool VarstreamServer::HandleFrame(int fd, const Frame& frame,
                                  Session** session,
                                  uint64_t* pre_session_wire_msgs,
                                  uint64_t* pre_session_wire_bits) {
  switch (frame.type) {
    case FrameType::kHello: {
      if (*session != nullptr) {
        return SendError(fd, *session, "duplicate hello on this connection");
      }
      HelloFrame hello;
      if (!DecodeHello(frame.payload, &hello)) {
        return SendError(fd, nullptr, "malformed hello payload");
      }
      std::string admission = ValidateHello(hello, kMaxSessionSites);
      if (!admission.empty()) return SendError(fd, nullptr, admission);
      std::string error;
      bool created = false;
      Session* resolved = ResolveSession(hello, &created, &error);
      if (resolved == nullptr) return SendError(fd, nullptr, error);
      *session = resolved;
      HelloAckFrame ack;
      ack.created = created;
      {
        std::lock_guard<std::mutex> lock(resolved->mu);
        ack.session_time = resolved->tracker->time();
        // Fold the bytes this connection spent before the session existed
        // (the hello frame itself) into the session's wire meter.
        resolved->wire_cost.Count(MessageKind::kWire, *pre_session_wire_bits,
                                  *pre_session_wire_msgs);
        *pre_session_wire_msgs = 0;
        *pre_session_wire_bits = 0;
      }
      return SendFrame(fd, FrameType::kHelloAck, EncodeHelloAck(ack),
                       resolved);
    }
    case FrameType::kPushBatch: {
      if (*session == nullptr) {
        return SendError(fd, nullptr, "push-batch before hello");
      }
      PushBatchFrame batch;
      if (!DecodePushBatch(frame.payload, &batch)) {
        return SendError(fd, *session, "malformed push-batch payload");
      }
      Session& s = **session;
      const bool monotone_only =
          TrackerRegistry::Instance().IsMonotoneOnly(s.tracker_name);
      for (const CountUpdate& u : batch.updates) {
        // Validate before touching the tracker: the in-process API treats
        // these as programming errors (debug asserts), but on the wire
        // they are untrusted input.
        if (u.site >= s.options.num_sites) {
          return SendError(fd, *session,
                           "push-batch update targets site " +
                               std::to_string(u.site) + ", session has k=" +
                               std::to_string(s.options.num_sites));
        }
        if (monotone_only && u.delta < 0) {
          return SendError(fd, *session,
                           "tracker '" + s.tracker_name +
                               "' is insertion-only; negative delta "
                               "rejected");
        }
      }
      PushAckFrame ack;
      bool want_checkpoint = false;
      {
        std::lock_guard<std::mutex> lock(s.mu);
        s.tracker->PushBatch(batch.updates);
        // History sampling rides the batch boundary — the only point
        // with a consistent snapshot and the only frequency that keeps
        // Snapshot()'s sharded-pipeline drain off the per-update path.
        if (s.history->Due(batch.updates.size())) {
          TrackerSnapshot snap = s.tracker->Snapshot();
          s.history->Record({snap.time, snap.estimate, snap.messages,
                             snap.bits,
                             s.wire_cost.bits(MessageKind::kWire) / 8});
        }
        s.updates_since_checkpoint += batch.updates.size();
        if (options_.checkpoint_every > 0 &&
            s.updates_since_checkpoint >= options_.checkpoint_every) {
          want_checkpoint = true;
          s.updates_since_checkpoint = 0;
        }
        ack.session_time = s.tracker->time();
      }
      if (want_checkpoint) {
        std::string error;
        if (!WriteCheckpointLocked(&error)) {
          return SendError(fd, *session, "automatic checkpoint failed: " +
                                             error);
        }
        ack.checkpointed = true;
      }
      return SendFrame(fd, FrameType::kPushAck, EncodePushAck(ack),
                       *session);
    }
    case FrameType::kQuery: {
      if (*session == nullptr) {
        return SendError(fd, nullptr, "query before hello");
      }
      Session& s = **session;
      SnapshotFrame snapshot;
      {
        std::lock_guard<std::mutex> lock(s.mu);
        TrackerSnapshot snap = s.tracker->Snapshot();
        snapshot.estimate = snap.estimate;
        snapshot.time = snap.time;
        snapshot.messages = snap.messages;
        snapshot.bits = snap.bits;
        snapshot.wire_messages =
            s.wire_cost.messages(MessageKind::kWire);
        snapshot.wire_bits = s.wire_cost.bits(MessageKind::kWire);
      }
      return SendFrame(fd, FrameType::kSnapshot, EncodeSnapshot(snapshot),
                       *session);
    }
    case FrameType::kCheckpoint: {
      if (*session == nullptr) {
        return SendError(fd, nullptr, "checkpoint before hello");
      }
      if (!frame.payload.empty()) {
        return SendError(fd, *session, "malformed checkpoint payload");
      }
      std::string error;
      if (!WriteCheckpointLocked(&error)) {
        return SendError(fd, *session, error);
      }
      CheckpointAckFrame ack;
      ack.path = options_.checkpoint_path;
      return SendFrame(fd, FrameType::kCheckpointAck,
                       EncodeCheckpointAck(ack), *session);
    }
    case FrameType::kQueryRange: {
      // Read-only and session-independent: unlike the ingest frames, a
      // query needs no Hello — varstream_query attaches to any running
      // server without creating or naming a session.
      QueryRangeFrame query;
      if (!DecodeQueryRange(frame.payload, &query)) {
        return SendError(fd, *session, "malformed query-range payload");
      }
      if (query.version != kQueryRangeVersion) {
        return SendError(
            fd, *session,
            "query-range version mismatch: client speaks v" +
                std::to_string(query.version) + ", server speaks v" +
                std::to_string(kQueryRangeVersion));
      }
      // Capture matching sessions' rows under their locks (name order,
      // same ordering discipline as WriteCheckpointLocked); evaluate
      // outside all locks so an expensive aggregation never stalls
      // ingest.
      struct Captured {
        SessionQueryResult meta;
        std::vector<HistoryRow> rows;
      };
      std::vector<Captured> captured;
      bool found_named = false;
      {
        std::lock_guard<std::mutex> lock(sessions_mu_);
        for (auto& [name, s] : sessions_) {
          if (!query.session.empty() && name != query.session) continue;
          found_named = found_named || name == query.session;
          if (!query.tracker.empty() && s->tracker_name != query.tracker) {
            continue;
          }
          Captured c;
          c.meta.session = name;
          c.meta.tracker = s->tracker_name;
          std::lock_guard<std::mutex> session_lock(s->mu);
          c.meta.capacity = s->history->options().capacity;
          c.meta.cadence = s->history->options().cadence;
          c.meta.dropped = s->history->ring().dropped();
          c.rows = s->history->ring().Rows();
          captured.push_back(std::move(c));
        }
      }
      if (!query.session.empty() && !found_named) {
        return SendError(fd, *session,
                         "unknown session '" + query.session + "'");
      }
      QueryRangeResultFrame result;
      for (Captured& c : captured) {
        c.meta.rows = EvaluateQuery(c.rows, query.spec);
        result.sessions.push_back(std::move(c.meta));
      }
      std::vector<uint8_t> payload = EncodeQueryRangeResult(result);
      if (payload.size() > kMaxFramePayload) {
        return SendError(
            fd, *session,
            "query-range result (" + std::to_string(payload.size()) +
                " bytes) exceeds the " + std::to_string(kMaxFramePayload) +
                "-byte frame limit; narrow the time window, name a "
                "session, or downsample with buckets");
      }
      return SendFrame(fd, FrameType::kQueryRangeResult, payload, *session);
    }
    case FrameType::kStateDump: {
      // Read-only and (like QueryRange) Hello-free: the root aggregator
      // pulls these over whatever connection is handy.
      StateDumpFrame dump;
      if (!DecodeStateDump(frame.payload, &dump)) {
        return SendError(fd, *session, "malformed state-dump payload");
      }
      Session* target = nullptr;
      {
        std::lock_guard<std::mutex> lock(sessions_mu_);
        auto it = sessions_.find(dump.session);
        if (it != sessions_.end()) target = it->second.get();
      }
      if (target == nullptr) {
        return SendError(fd, *session,
                         "unknown session '" + dump.session + "'");
      }
      StateDumpResultFrame result;
      {
        std::lock_guard<std::mutex> lock(target->mu);
        auto* mergeable = dynamic_cast<Mergeable*>(target->tracker.get());
        if (mergeable == nullptr) {
          return SendError(
              fd, *session,
              "session '" + dump.session + "' (tracker '" +
                  target->tracker_name +
                  "') has no serializable state; mergeable trackers: " +
                  JoinNames(TrackerRegistry::Instance().MergeableNames()));
        }
        result.tracker = target->tracker_name;
        result.shards = target->shards;
        result.state = mergeable->SerializeState();
      }
      std::vector<uint8_t> payload = EncodeStateDumpResult(result);
      if (payload.size() > kMaxFramePayload) {
        return SendError(
            fd, *session,
            "state dump (" + std::to_string(payload.size()) +
                " bytes) exceeds the " + std::to_string(kMaxFramePayload) +
                "-byte frame limit");
      }
      return SendFrame(fd, FrameType::kStateDumpResult, payload, *session);
    }
    case FrameType::kTopology: {
      if (!frame.payload.empty()) {
        return SendError(fd, *session, "malformed topology payload");
      }
      // A plain server is its own one-node topology; the root's
      // supervisor also uses this answer as its heartbeat.
      TopologyInfoFrame info;
      info.role = "server";
      return SendFrame(fd, FrameType::kTopologyInfo,
                       EncodeTopologyInfo(info), *session);
    }
    case FrameType::kShutdown: {
      if (!frame.payload.empty()) {
        return SendError(fd, *session, "malformed shutdown payload");
      }
      SendFrame(fd, FrameType::kShutdownAck, {}, *session);
      {
        std::lock_guard<std::mutex> lock(shutdown_mu_);
        shutdown_requested_ = true;
      }
      shutdown_cv_.notify_all();
      return false;  // close this connection; the owner tears down
    }
    default:
      return SendError(fd, *session,
                       std::string("unexpected ") +
                           FrameTypeName(frame.type) +
                           " frame (server-to-client only)");
  }
}

void VarstreamServer::HandleConnection(Connection* conn) {
  const int fd = conn->fd;
  std::vector<uint8_t> buffer;
  Session* session = nullptr;
  uint64_t pre_session_wire_msgs = 0;
  uint64_t pre_session_wire_bits = 0;
  bool open = true;
  while (open) {
    // Drain every complete frame currently buffered.
    size_t offset = 0;
    for (;;) {
      Frame frame;
      size_t consumed = 0;
      std::string decode_error;
      DecodeStatus status = DecodeFrame(
          std::span<const uint8_t>(buffer.data() + offset,
                                   buffer.size() - offset),
          &frame, &consumed, &decode_error);
      if (status == DecodeStatus::kNeedMore) break;
      if (status == DecodeStatus::kMalformed) {
        SendError(fd, session, "malformed frame: " + decode_error);
        open = false;
        break;
      }
      offset += consumed;
      // Account the received frame's real bytes.
      if (session != nullptr) {
        std::lock_guard<std::mutex> lock(session->mu);
        session->wire_cost.Count(MessageKind::kWire, consumed * 8);
      } else {
        ++pre_session_wire_msgs;
        pre_session_wire_bits += consumed * 8;
      }
      if (!HandleFrame(fd, frame, &session, &pre_session_wire_msgs,
                       &pre_session_wire_bits)) {
        open = false;
        break;
      }
    }
    if (!open) break;
    buffer.erase(buffer.begin(), buffer.begin() + offset);

    uint8_t chunk[65536];
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // disconnect: any partial frame in `buffer` is discarded
    }
    buffer.insert(buffer.end(), chunk, chunk + n);
  }
  // No close here: the reaper (or Stop) joins this thread first and then
  // closes the fd, so a concurrent Stop() never touches a recycled fd.
  conn->done.store(true, std::memory_order_release);
}

bool VarstreamServer::WriteCheckpoint(std::string* error) {
  return WriteCheckpointLocked(error);
}

bool VarstreamServer::WriteCheckpointLocked(std::string* error) {
  if (options_.checkpoint_path.empty()) {
    if (error != nullptr) {
      *error = "checkpointing is disabled (start the server with "
               "--checkpoint-path)";
    }
    return false;
  }
  // One checkpoint at a time; sessions are locked one by one in map
  // (name) order while their state is captured.
  std::lock_guard<std::mutex> checkpoint_lock(checkpoint_mu_);
  std::vector<SessionCheckpoint> entries;
  {
    std::lock_guard<std::mutex> sessions_lock(sessions_mu_);
    for (auto& [name, session] : sessions_) {
      std::lock_guard<std::mutex> session_lock(session->mu);
      auto* mergeable = dynamic_cast<Mergeable*>(session->tracker.get());
      if (mergeable == nullptr) {
        if (error != nullptr) {
          *error = "session '" + name + "' (tracker '" +
                   session->tracker_name +
                   "') is not checkpointable; checkpointable trackers: " +
                   JoinNames(TrackerRegistry::Instance().MergeableNames());
        }
        return false;
      }
      SessionCheckpoint entry;
      entry.name = name;
      entry.tracker = session->tracker_name;
      entry.shards = session->shards;
      entry.options = session->options;
      entry.state = mergeable->SerializeState();
      if (session->history->enabled()) {
        entry.has_history = true;
        entry.history.capacity = session->history->options().capacity;
        entry.history.cadence = session->history->options().cadence;
        entry.history.pending = session->history->pending();
        entry.history.dropped = session->history->ring().dropped();
        entry.history.rows = session->history->ring().Rows();
      }
      entries.push_back(std::move(entry));
    }
  }
  return WriteCheckpointFile(options_.checkpoint_path, entries, error);
}

std::vector<std::string> VarstreamServer::SessionNames() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  std::vector<std::string> names;
  names.reserve(sessions_.size());
  for (const auto& [name, session] : sessions_) names.push_back(name);
  return names;
}

bool VarstreamServer::SessionSnapshot(const std::string& name,
                                      TrackerSnapshot* snapshot) {
  Session* session = nullptr;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto it = sessions_.find(name);
    if (it == sessions_.end()) return false;
    session = it->second.get();
  }
  std::lock_guard<std::mutex> lock(session->mu);
  *snapshot = session->tracker->Snapshot();
  return true;
}

}  // namespace varstream
