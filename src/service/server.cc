#include "service/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "core/mergeable.h"
#include "core/registry.h"
#include "core/sharded.h"
#include "stream/source.h"  // JoinNames

namespace varstream {

namespace {

// Session-name and sizing checks live in protocol.cc (ValidateHello),
// shared with the root aggregator's identical admission path.

using MetricClock = std::chrono::steady_clock;

double ElapsedUs(MetricClock::time_point start) {
  return std::chrono::duration<double, std::micro>(MetricClock::now() -
                                                   start)
      .count();
}

bool OptionsMatch(const TrackerOptions& a, const TrackerOptions& b) {
  return a.num_sites == b.num_sites && a.epsilon == b.epsilon &&
         a.seed == b.seed && a.initial_value == b.initial_value &&
         a.drift_threshold_factor == b.drift_threshold_factor &&
         a.sample_constant == b.sample_constant && a.period == b.period &&
         a.site_base == b.site_base;
}

}  // namespace

VarstreamServer::VarstreamServer(ServerOptions options)
    : options_(std::move(options)) {}

VarstreamServer::~VarstreamServer() { Stop(); }

VarstreamServer::Conn::~Conn() {
  if (fd >= 0) ::close(fd);
}

std::unique_ptr<DistributedTracker> VarstreamServer::BuildTracker(
    const std::string& tracker_name, const TrackerOptions& options,
    uint32_t shards, std::string* error) {
  if (shards >= 1) {
    return ShardedTracker::Create(tracker_name, options, shards, error);
  }
  auto tracker = TrackerRegistry::Instance().Create(tracker_name, options);
  if (tracker == nullptr && error != nullptr) {
    *error = "unknown tracker '" + tracker_name + "'; valid trackers: " +
             JoinNames(TrackerRegistry::Instance().Names());
  }
  return tracker;
}

uint32_t VarstreamServer::SessionOwner(const std::string& name) const {
  // FNV-1a 64-bit: stable across runs (restore must land sessions on the
  // same worker the hash picks at the new worker count).
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : name) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return static_cast<uint32_t>(h % worker_count_);
}

bool VarstreamServer::Start(std::string* error) {
  worker_count_ = options_.workers;
  if (worker_count_ == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    worker_count_ = std::max(1u, std::min(4u, hw == 0 ? 1u : hw));
  }
  if (options_.pending_batch_cap == 0) options_.pending_batch_cap = 1;
  // A budget smaller than one max-size frame would reject every batch
  // forever; clamp so a lone client can always make progress.
  if (options_.pending_bytes_budget > 0 &&
      options_.pending_bytes_budget < kMaxFramePayload) {
    options_.pending_bytes_budget = kMaxFramePayload;
  }

  if (!options_.restore_path.empty()) {
    std::vector<SessionCheckpoint> entries;
    if (!ReadCheckpointFile(options_.restore_path, &entries, error)) {
      return false;
    }
    for (SessionCheckpoint& entry : entries) {
      std::string build_error;
      auto tracker = BuildTracker(entry.tracker, entry.options, entry.shards,
                                  &build_error);
      if (tracker == nullptr) {
        if (error != nullptr) {
          *error = "restore: session '" + entry.name + "': " + build_error;
        }
        return false;
      }
      auto* mergeable = dynamic_cast<Mergeable*>(tracker.get());
      std::string restore_error;
      if (mergeable == nullptr ||
          !mergeable->RestoreState(entry.state, &restore_error)) {
        if (error != nullptr) {
          *error = "restore: session '" + entry.name + "': " +
                   (mergeable == nullptr ? "tracker is not checkpointable"
                                         : restore_error);
        }
        return false;
      }
      auto session = std::make_unique<Session>();
      session->name = entry.name;
      session->tracker_name = entry.tracker;
      session->shards = entry.shards;
      session->owner = SessionOwner(entry.name);
      session->monotone_only =
          TrackerRegistry::Instance().IsMonotoneOnly(entry.tracker);
      session->options = entry.options;
      session->tracker = std::move(tracker);
      // A checkpointed history section carries its own retention config:
      // the restored session resumes the original sampling schedule even
      // if this server was started with different --history-* flags. A
      // checkpoint without the section (pre-history, or sampling was
      // disabled) starts fresh with this server's config.
      HistoryOptions history_options = options_.history;
      if (entry.has_history) {
        history_options.capacity = entry.history.capacity;
        history_options.cadence = entry.history.cadence;
      }
      session->history = std::make_unique<HistorySampler>(history_options);
      session->pending_gauge =
          metrics_.Gauge("pending_batches", {{"session", entry.name}});
      if (auto* sharded = dynamic_cast<ShardedTracker*>(
              session->tracker.get())) {
        sharded->AttachMetrics(&metrics_, entry.name);
      }
      if (entry.has_history &&
          !session->history->Restore(entry.history.rows,
                                     entry.history.dropped,
                                     entry.history.pending)) {
        if (error != nullptr) {
          *error = "restore: session '" + entry.name +
                   "': history section does not fit its declared capacity";
        }
        return false;
      }
      std::lock_guard<std::mutex> lock(sessions_mu_);
      sessions_.emplace(entry.name, std::move(session));
    }
  }

  // A thousand-connection gauntlet needs more than the default soft
  // NOFILE limit; raise it as far as the hard limit allows.
  RaiseFdLimit(16384);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = "socket(): " + std::string(strerror(errno));
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = "bind(127.0.0.1:" + std::to_string(options_.port) +
               "): " + strerror(errno);
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
  // A burst of 1000 clients connecting at once must not see ECONNREFUSED
  // because the backlog filled while the acceptor was distributing fds.
  if (::listen(listen_fd_, 1024) != 0) {
    if (error != nullptr) *error = "listen(): " + std::string(strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  workers_.clear();
  for (uint32_t i = 0; i < worker_count_; ++i) {
    auto w = std::make_unique<Worker>();
    w->index = i;
    w->server = this;
    w->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    w->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (w->epoll_fd < 0 || w->event_fd < 0) {
      if (error != nullptr) {
        *error = "epoll/eventfd setup: " + std::string(strerror(errno));
      }
      if (w->epoll_fd >= 0) ::close(w->epoll_fd);
      if (w->event_fd >= 0) ::close(w->event_fd);
      for (auto& prev : workers_) {
        ::close(prev->epoll_fd);
        ::close(prev->event_fd);
      }
      workers_.clear();
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = nullptr;  // nullptr marks the wakeup eventfd
    ::epoll_ctl(w->epoll_fd, EPOLL_CTL_ADD, w->event_fd, &ev);
    w->mail_open = true;
    const MetricLabels labels = {{"worker", std::to_string(i)}};
    w->metrics.accepted = metrics_.Counter("accepted", labels);
    w->metrics.frames_decoded = metrics_.Counter("frames_decoded", labels);
    w->metrics.frames_malformed =
        metrics_.Counter("frames_malformed", labels);
    w->metrics.batches_applied = metrics_.Counter("batches_applied", labels);
    w->metrics.updates_applied = metrics_.Counter("updates_applied", labels);
    w->metrics.overload_rejections =
        metrics_.Counter("overload_rejections", labels);
    w->metrics.seq_gap_rejections =
        metrics_.Counter("seq_gap_rejections", labels);
    w->metrics.epoll_wait_us = metrics_.Histogram("epoll_wait_us", labels);
    w->metrics.apply_latency_us =
        metrics_.Histogram("apply_latency_us", labels);
    w->metrics.mailbox_depth = metrics_.Gauge("mailbox_depth", labels);
    w->metrics.peak_pending_batches =
        metrics_.Gauge("peak_pending_batches", labels, GaugeAgg::kMax);
    workers_.push_back(std::move(w));
  }

  running_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(ext_mu_);
    workers_running_ = true;
  }
  for (auto& w : workers_) {
    Worker* raw = w.get();
    raw->thread = std::thread([this, raw] { WorkerLoop(raw); });
  }
  accept_thread_ = std::thread([this, fd = listen_fd_] { AcceptLoop(fd); });
  return true;
}

void VarstreamServer::Stop() {
  std::lock_guard<std::mutex> ext_lock(ext_mu_);
  bool was_running = running_.exchange(false, std::memory_order_acq_rel);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Wake every worker: each sees running_ == false at the top of its
  // loop, drains its mailbox one final time, destroys every connection
  // it owns, and exits. Joining here therefore guarantees that when
  // Stop() returns no connection fd and no server thread survives.
  for (auto& w : workers_) {
    if (w->event_fd >= 0) {
      uint64_t one = 1;
      [[maybe_unused]] ssize_t n =
          ::write(w->event_fd, &one, sizeof(one));
    }
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
    if (w->epoll_fd >= 0) ::close(w->epoll_fd);
    if (w->event_fd >= 0) ::close(w->event_fd);
  }
  workers_.clear();
  workers_running_ = false;
  if (was_running) {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_requested_ = true;
    shutdown_cv_.notify_all();
  }
}

void VarstreamServer::WaitForShutdownRequest() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
}

bool VarstreamServer::PostToWorker(Worker* w, std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(w->mail_mu);
    if (!w->mail_open) return false;
    w->mail.push_back(std::move(task));
  }
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(w->event_fd, &one, sizeof(one));
  return true;
}

void VarstreamServer::RunMailbox(Worker* w) {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(w->mail_mu);
    tasks.swap(w->mail);
  }
  w->metrics.mailbox_depth->Set(static_cast<int64_t>(tasks.size()));
  for (auto& task : tasks) task();
}

void VarstreamServer::MarkDirty(Worker* w, Session* s) {
  if (s->in_dirty) return;
  s->in_dirty = true;
  w->dirty.push_back(s);
}

void VarstreamServer::DrainDirtySessions(Worker* w) {
  // DrainSession can re-dirty a session (auto-checkpoint freezes it with
  // batches still queued; the unfreeze completion drains the rest), so
  // swap the list out and make a single pass.
  std::vector<Session*> dirty;
  dirty.swap(w->dirty);
  for (Session* s : dirty) {
    s->in_dirty = false;
    DrainSession(w, s);
  }
}

void VarstreamServer::AcceptLoop(int listen_fd) {
  uint32_t next_worker = 0;
  while (running_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load(std::memory_order_acquire)) return;
      // Transient conditions must not kill the only accept loop a
      // long-running server has: a peer that reset while still in the
      // backlog (ECONNABORTED/EPROTO) or fd exhaustion (EMFILE/ENFILE,
      // which subsides when connections close) just mean "try again".
      if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) {
        continue;
      }
      std::fprintf(stderr, "varstream_serve: accept(): %s%s\n",
                   strerror(errno),
                   (errno == EMFILE || errno == ENFILE)
                       ? " (fd limit; retrying)"
                       : " (retrying)");
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Worker* w = workers_[next_worker++ % worker_count_].get();
    // The acceptor is the sole writer of every worker's accepted slot —
    // it picked the worker, so the attribution is exact.
    w->metrics.accepted->Add();
    if (!PostToWorker(w, [this, w, fd] { AddConnToWorker(w, fd); })) {
      ::close(fd);  // worker already shutting down
    }
  }
}

void VarstreamServer::WorkerLoop(Worker* w) {
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  for (;;) {
    RunMailbox(w);
    DrainDirtySessions(w);
    w->graveyard.clear();
    if (!running_.load(std::memory_order_acquire)) break;
    // The wait-time distribution is the idle/busy signal ROADMAP asks
    // for: a busy worker's waits collapse toward zero.
    const MetricClock::time_point wait_start = MetricClock::now();
    int n = ::epoll_wait(w->epoll_fd, events, kMaxEvents, 1000);
    w->metrics.epoll_wait_us->Record(ElapsedUs(wait_start));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone; only happens during teardown
    }
    for (int i = 0; i < n; ++i) {
      if (events[i].data.ptr == nullptr) {
        // Wakeup eventfd: drain the counter; the mailbox runs at loop-top.
        uint64_t count = 0;
        while (::read(w->event_fd, &count, sizeof(count)) > 0) {
        }
        continue;
      }
      Conn* conn = static_cast<Conn*>(events[i].data.ptr);
      if (conn->dead) continue;  // destroyed earlier in this batch
      const uint32_t ev = events[i].events;
      if (conn->parked) {
        // A cross-worker op owns this connection's next step; remember a
        // dead peer, act on it when the completion unparks.
        if (ev & (EPOLLHUP | EPOLLERR)) conn->closing = true;
        continue;
      }
      if (ev & EPOLLOUT) {
        const bool was_throttled = conn->throttled;
        FlushConn(w, conn);
        if (conn->dead) continue;
        if (conn->closing && conn->wbuf_sent == conn->wbuf.size()) {
          DestroyConn(w, conn);
          continue;
        }
        // Unthrottled: resume decoding bytes already buffered (no new
        // EPOLLIN fires for data that arrived while interest was off).
        if (was_throttled && !conn->throttled && !conn->closing) {
          if (!ProcessInput(w, conn)) continue;
        }
      }
      if (ev & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
        HandleReadable(w, conn);
      }
    }
    // Destroy-at-batch-end: stale epoll_event pointers in this batch
    // still dereference a live (dead-flagged) Conn.
  }
  // Shutdown: refuse new mail, run what was already posted (cross-worker
  // gathers in flight still see live conns), then tear everything down.
  {
    std::lock_guard<std::mutex> lock(w->mail_mu);
    w->mail_open = false;
  }
  RunMailbox(w);
  DrainDirtySessions(w);
  std::vector<Conn*> remaining;
  remaining.reserve(w->conns.size());
  for (auto& [fd, conn] : w->conns) remaining.push_back(conn.get());
  for (Conn* conn : remaining) {
    if (!conn->dead) DestroyConn(w, conn);
  }
  w->conns.clear();
  w->graveyard.clear();
}

void VarstreamServer::AddConnToWorker(Worker* w, int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  Conn* raw = conn.get();
  w->conns.emplace(fd, std::move(conn));
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = raw;
  if (::epoll_ctl(w->epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    w->conns.erase(fd);  // Conn dtor closes the fd
    return;
  }
  raw->registered_mask = EPOLLIN;
  uint64_t current =
      current_connections_.fetch_add(1, std::memory_order_relaxed) + 1;
  uint64_t peak = peak_connections_.load(std::memory_order_relaxed);
  while (current > peak && !peak_connections_.compare_exchange_weak(
                               peak, current, std::memory_order_relaxed)) {
  }
}

void VarstreamServer::HandleReadable(Worker* w, Conn* conn) {
  bool eof = false;
  size_t read_this_cycle = 0;
  for (;;) {
    uint8_t chunk[65536];
    ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), MSG_DONTWAIT);
    if (n > 0) {
      conn->rbuf.insert(conn->rbuf.end(), chunk, chunk + n);
      read_this_cycle += static_cast<size_t>(n);
      // Fairness cap: a firehose connection yields after ~256 KiB so a
      // thousand quieter connections on this worker still get served.
      if (read_this_cycle >= 256 * 1024) break;
      continue;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    }
    eof = true;  // disconnect or hard error
    break;
  }
  if (!ProcessInput(w, conn)) return;  // migrated or destroyed
  if (eof) {
    if (conn->parked) {
      conn->closing = true;  // completion task finishes the teardown
    } else {
      // Any partial frame in rbuf is discarded with the connection —
      // a client that dies mid-frame never corrupts tracker state.
      DestroyConn(w, conn);
    }
  }
}

bool VarstreamServer::ProcessInput(Worker* w, Conn* conn) {
  size_t offset = 0;
  bool keep_decoding = true;
  while (keep_decoding && !conn->dead && !conn->closing && !conn->parked) {
    if (conn->wbuf.size() - conn->wbuf_sent > options_.write_buffer_cap) {
      conn->throttled = true;  // stop reading until replies drain
      break;
    }
    // Zero-copy decode: the frame's payload aliases rbuf, which is
    // stable for the whole invocation — nothing appends to it until the
    // next HandleReadable, and the consumed-prefix erase below runs only
    // after every queued batch view has been applied or materialized.
    FrameView frame;
    size_t consumed = 0;
    std::string decode_error;
    DecodeStatus status = DecodeFrameView(
        std::span<const uint8_t>(conn->rbuf.data() + offset,
                                 conn->rbuf.size() - offset),
        &frame, &consumed, &decode_error);
    if (status == DecodeStatus::kNeedMore) break;
    if (status == DecodeStatus::kMalformed) {
      w->metrics.frames_malformed->Add();
      SendErrorAndClose(w, conn, "malformed frame: " + decode_error);
      break;
    }
    w->metrics.frames_decoded->Add();
    FrameResult result = HandleFrame(w, conn, frame, consumed);
    if (result == FrameResult::kMigrated) {
      // The hello frame itself is metered here; it travels to the owning
      // worker inside the pre-session counters and FinishHello folds it
      // into the session.
      ++conn->pre_session_wire_msgs;
      conn->pre_session_wire_bits += consumed * 8;
      MigrateConn(w, conn, offset + consumed);
      return false;
    }
    if (result == FrameResult::kParkRetry) {
      // Frame stays in rbuf (not consumed, not metered); the unpark
      // re-enters ProcessInput and decodes it again.
      break;
    }
    // Account the received frame's real bytes exactly once, when it is
    // consumed. HandleFrame already folded the hello of a same-worker
    // session attach via FinishHello's pre-session counters.
    if (conn->session != nullptr) {
      conn->session->wire_cost.Count(MessageKind::kWire, consumed * 8);
    } else {
      ++conn->pre_session_wire_msgs;
      conn->pre_session_wire_bits += consumed * 8;
    }
    offset += consumed;
    keep_decoding = (result == FrameResult::kContinue);
  }
  // Batches enqueued above are views into rbuf: drain them straight from
  // the buffer (the zero-copy common case), then copy out whatever a
  // frozen session left queued, and only then compact the consumed
  // prefix. After this point no view into this invocation's rbuf exists.
  if (conn->session != nullptr && !conn->session->pending.empty()) {
    DrainSession(w, conn->session);
    MaterializeConnBatches(conn);
  }
  if (offset > 0 && !conn->dead) {
    conn->rbuf.erase(conn->rbuf.begin(),
                     conn->rbuf.begin() + static_cast<long>(offset));
  }
  if (conn->dead) return false;
  FlushConn(w, conn);
  if (conn->dead) return false;
  if (!conn->parked && conn->closing &&
      conn->wbuf_sent == conn->wbuf.size()) {
    DestroyConn(w, conn);
    return false;
  }
  UpdateInterest(w, conn);
  return true;
}

void VarstreamServer::QueueFrame(Worker* w, Conn* conn, FrameType type,
                                 std::span<const uint8_t> payload) {
  if (conn->dead) return;
  std::vector<uint8_t> wire;
  wire.reserve(kFrameOverhead + payload.size());
  AppendFrame(&wire, type, payload);
  if (conn->session != nullptr) {
    conn->session->wire_cost.Count(MessageKind::kWire, wire.size() * 8);
  } else {
    ++conn->pre_session_wire_msgs;
    conn->pre_session_wire_bits += wire.size() * 8;
  }
  // Compact the flushed prefix before growing, so a long-lived chatty
  // connection does not accrete an ever-larger wbuf.
  if (conn->wbuf_sent > 0) {
    conn->wbuf.erase(conn->wbuf.begin(),
                     conn->wbuf.begin() + static_cast<long>(conn->wbuf_sent));
    conn->wbuf_sent = 0;
  }
  conn->wbuf.insert(conn->wbuf.end(), wire.begin(), wire.end());
  FlushConn(w, conn);
}

void VarstreamServer::FlushConn(Worker* w, Conn* conn) {
  if (conn->dead || conn->fd < 0) return;
  while (conn->wbuf_sent < conn->wbuf.size()) {
    ssize_t n = ::send(conn->fd, conn->wbuf.data() + conn->wbuf_sent,
                       conn->wbuf.size() - conn->wbuf_sent,
                       MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      conn->wbuf_sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // Peer gone: nothing more to say; drop the queue and close.
    conn->wbuf.clear();
    conn->wbuf_sent = 0;
    conn->closing = true;
    break;
  }
  if (conn->wbuf_sent == conn->wbuf.size()) {
    conn->wbuf.clear();
    conn->wbuf_sent = 0;
  }
  if (conn->throttled &&
      conn->wbuf.size() - conn->wbuf_sent < options_.write_buffer_cap / 2) {
    conn->throttled = false;
  }
  UpdateInterest(w, conn);
}

void VarstreamServer::UpdateInterest(Worker* w, Conn* conn) {
  if (conn->dead || conn->fd < 0) return;
  uint32_t mask = 0;
  if (!conn->parked && !conn->closing && !conn->throttled) mask |= EPOLLIN;
  if (conn->wbuf_sent < conn->wbuf.size()) mask |= EPOLLOUT;
  if (mask == conn->registered_mask) return;
  epoll_event ev{};
  ev.events = mask;
  ev.data.ptr = conn;
  if (::epoll_ctl(w->epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
    conn->registered_mask = mask;
  }
}

VarstreamServer::FrameResult VarstreamServer::SendErrorAndClose(
    Worker* w, Conn* conn, const std::string& message) {
  // Loud on the server side too: operators tailing the log see exactly
  // what the client was told before the connection dropped.
  std::fprintf(stderr, "varstream_serve: %s\n", message.c_str());
  QueueFrame(w, conn, FrameType::kError, EncodeError(message));
  conn->closing = true;
  UpdateInterest(w, conn);
  return FrameResult::kClose;
}

void VarstreamServer::DestroyConn(Worker* w, Conn* conn) {
  if (conn->dead) return;
  conn->dead = true;
  if (conn->fd >= 0) {
    ::epoll_ctl(w->epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  }
  // Null out every queued-batch and waiter reference: the batch still
  // applies (ingest already promised the order), the ack just has
  // nowhere to go. A batch still viewing this connection's rbuf is
  // copied out first — the buffer dies with the connection.
  if (conn->session != nullptr) {
    MaterializeConnBatches(conn);
    for (PendingBatch& b : conn->session->pending) {
      if (b.conn == conn) b.conn = nullptr;
    }
    auto& waiters = conn->session->waiters;
    waiters.erase(std::remove(waiters.begin(), waiters.end(), conn),
                  waiters.end());
  }
  current_connections_.fetch_sub(1, std::memory_order_relaxed);
  const int fd = conn->fd;
  auto it = w->conns.find(fd);
  if (it != w->conns.end() && it->second.get() == conn) {
    // Keep the object alive until the current event batch ends: epoll
    // may still hold events pointing at it.
    w->graveyard.push_back(std::move(it->second));
    w->conns.erase(it);
  }
  if (fd >= 0) {
    ::close(fd);
    conn->fd = -1;
  }
}

void VarstreamServer::MigrateConn(Worker* w, Conn* conn, size_t consumed) {
  // The hello frame's bytes travel as pre-session counters and are
  // folded into the session's wire meter by FinishHello on arrival.
  const size_t hello_bytes = consumed > 0 ? consumed : 0;
  conn->rbuf.erase(conn->rbuf.begin(),
                   conn->rbuf.begin() + static_cast<long>(hello_bytes));
  ::epoll_ctl(w->epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  conn->registered_mask = 0;
  auto it = w->conns.find(conn->fd);
  auto carrier = std::make_shared<std::unique_ptr<Conn>>(std::move(it->second));
  w->conns.erase(it);
  Worker* target = workers_[conn->migrate_owner].get();
  HelloFrame hello = std::move(conn->migrate_hello);
  bool posted = PostToWorker(
      target, [this, target, carrier, hello = std::move(hello)] {
        Conn* moved = carrier->get();
        target->conns.emplace(moved->fd, std::move(*carrier));
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.ptr = moved;
        if (::epoll_ctl(target->epoll_fd, EPOLL_CTL_ADD, moved->fd, &ev) !=
            0) {
          DestroyConn(target, moved);
          return;
        }
        moved->registered_mask = EPOLLIN;
        FinishHello(target, moved, hello);
        // Decode anything that followed the hello in the same segment;
        // also flushes/destroys if FinishHello refused the session.
        ProcessInput(target, moved);
      });
  if (!posted) {
    // Worker shutting down: the carrier's Conn dtor closes the fd.
    current_connections_.fetch_sub(1, std::memory_order_relaxed);
    carrier->reset();
  }
}

VarstreamServer::Session* VarstreamServer::ResolveSession(
    const HelloFrame& hello, uint32_t owner, bool* created,
    std::string* error) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(hello.session);
  if (it != sessions_.end()) {
    Session* session = it->second.get();
    if (session->tracker_name != hello.tracker ||
        session->shards != hello.shards ||
        !OptionsMatch(session->options, hello.options)) {
      *error = "session '" + hello.session +
               "' already exists with a different configuration (" +
               session->tracker_name + ", k=" +
               std::to_string(session->options.num_sites) + ", shards=" +
               std::to_string(session->shards) + ")";
      return nullptr;
    }
    *created = false;
    return session;
  }
  // Admission cap before any allocation: every session owns a tracker
  // (possibly a W-thread engine), so a server facing untrusted clients
  // needs a ceiling that refuses loudly instead of thrashing.
  if (options_.max_sessions > 0 &&
      sessions_.size() >= options_.max_sessions) {
    *error = "session limit reached (" +
             std::to_string(options_.max_sessions) +
             " sessions; --max-sessions); session '" + hello.session +
             "' refused — attach to an existing session or raise the cap";
    return nullptr;
  }
  // Checkpointing applies to every session, so a checkpointing server
  // only admits checkpointable (= mergeable) trackers.
  if (!options_.checkpoint_path.empty() &&
      !TrackerRegistry::Instance().IsMergeable(hello.tracker)) {
    *error = "tracker '" + hello.tracker +
             "' is not checkpointable; this server checkpoints to " +
             options_.checkpoint_path + " — checkpointable trackers: " +
             JoinNames(TrackerRegistry::Instance().MergeableNames());
    return nullptr;
  }
  auto tracker = BuildTracker(hello.tracker, hello.options, hello.shards,
                              error);
  if (tracker == nullptr) return nullptr;
  auto session = std::make_unique<Session>();
  session->name = hello.session;
  session->tracker_name = hello.tracker;
  session->shards = hello.shards;
  session->owner = owner;
  session->monotone_only =
      TrackerRegistry::Instance().IsMonotoneOnly(hello.tracker);
  session->options = hello.options;
  session->tracker = std::move(tracker);
  session->history = std::make_unique<HistorySampler>(options_.history);
  session->pending_gauge =
      metrics_.Gauge("pending_batches", {{"session", hello.session}});
  if (auto* sharded =
          dynamic_cast<ShardedTracker*>(session->tracker.get())) {
    sharded->AttachMetrics(&metrics_, hello.session);
  }
  Session* raw = session.get();
  sessions_.emplace(hello.session, std::move(session));
  *created = true;
  return raw;
}

VarstreamServer::FrameResult VarstreamServer::FinishHello(
    Worker* w, Conn* conn, const HelloFrame& hello) {
  std::string error;
  bool created = false;
  Session* resolved = ResolveSession(hello, w->index, &created, &error);
  if (resolved == nullptr) return SendErrorAndClose(w, conn, error);
  conn->session = resolved;
  conn->expected_seq = 0;
  HelloAckFrame ack;
  ack.created = created;
  ack.session_time = resolved->tracker->time();
  // Fold the bytes this connection spent before the session existed
  // (the hello frame itself, for a migrated connection) into the
  // session's wire meter.
  resolved->wire_cost.Count(MessageKind::kWire, conn->pre_session_wire_bits,
                            conn->pre_session_wire_msgs);
  conn->pre_session_wire_msgs = 0;
  conn->pre_session_wire_bits = 0;
  QueueFrame(w, conn, FrameType::kHelloAck, EncodeHelloAck(ack));
  return FrameResult::kContinue;
}

void VarstreamServer::MaterializeConnBatches(Conn* conn) {
  if (conn->session == nullptr) return;
  for (PendingBatch& b : conn->session->pending) {
    if (b.conn != conn || b.wire == nullptr) continue;
    PushBatchView view;
    view.count = b.count;
    view.pairs = b.wire;
    b.updates.clear();
    MaterializeUpdates(view, &b.updates);
    b.wire = nullptr;
  }
}

VarstreamServer::FrameResult VarstreamServer::HandleFrame(
    Worker* w, Conn* conn, const FrameView& frame, size_t frame_bytes) {
  (void)frame_bytes;
  // Parks the connection until the session thaws, leaving the current
  // frame in rbuf for a re-decode (kParkRetry). A connection already
  // parked by StartCheckpoint (it triggered the freeze itself) keeps its
  // existing unpark path — FinishCheckpoint re-enters ProcessInput.
  auto park_until_thaw = [&](Session* s) {
    if (!conn->parked) {
      conn->parked = true;
      s->waiters.push_back(conn);
    }
    conn->park_retry = true;
    UpdateInterest(w, conn);
    return FrameResult::kParkRetry;
  };
  auto conn_has_pending = [&](Session* s) {
    for (const PendingBatch& b : s->pending) {
      if (b.conn == conn) return true;
    }
    return false;
  };

  switch (frame.type) {
    case FrameType::kHello: {
      if (conn->session != nullptr) {
        return SendErrorAndClose(w, conn,
                                 "duplicate hello on this connection");
      }
      HelloFrame hello;
      if (!DecodeHello(frame.payload, &hello)) {
        return SendErrorAndClose(w, conn, "malformed hello payload");
      }
      std::string admission = ValidateHello(hello, kMaxSessionSites);
      if (!admission.empty()) return SendErrorAndClose(w, conn, admission);
      const uint32_t owner = SessionOwner(hello.session);
      if (owner == w->index) return FinishHello(w, conn, hello);
      conn->migrate_hello = std::move(hello);
      conn->migrate_owner = owner;
      return FrameResult::kMigrated;
    }
    case FrameType::kPushBatch: {
      if (conn->session == nullptr) {
        return SendErrorAndClose(w, conn, "push-batch before hello");
      }
      // O(1) header check; the pairs stay in rbuf, unread. Per-update
      // site/monotone validation is fused into the apply walk in
      // DrainSession — the one pass that reads the content — so a batch
      // the server refuses to apply is never scanned at all.
      PushBatchView batch;
      if (!DecodePushBatchView(frame.payload, &batch)) {
        return SendErrorAndClose(w, conn, "malformed push-batch payload");
      }
      Session* s = conn->session;
      // Go-back-N sequencing (protocol v4): a regression is a protocol
      // violation (loud close); a gap means the client kept pipelining
      // past a rejection and every later batch bounces until it resends
      // from the first rejected seq — application order is preserved.
      // The gap check comes FIRST: a trailing batch is a gap bounce even
      // when the queue also happens to be full, so the two rejection
      // counters stay disjoint and the overload signal never counts
      // go-back-N overshoot.
      if (batch.seq < conn->expected_seq) {
        return SendErrorAndClose(
            w, conn,
            "push-batch seq " + std::to_string(batch.seq) +
                " regressed (connection expects " +
                std::to_string(conn->expected_seq) + ")");
      }
      const size_t batch_bytes =
          static_cast<size_t>(batch.count) * kPushUpdateWireBytes;
      PendingBatch pb;
      pb.conn = conn;
      pb.seq = batch.seq;
      if (batch.seq > conn->expected_seq) {
        pb.kind = PendingBatch::Kind::kRejectGap;
        pb.pending_at_enqueue = s->pending_applies;
        w->metrics.seq_gap_rejections->Add();
      } else if (s->pending_applies >= options_.pending_batch_cap ||
                 (options_.pending_bytes_budget > 0 &&
                  pending_bytes_.load(std::memory_order_relaxed) +
                          batch_bytes >
                      options_.pending_bytes_budget)) {
        pb.kind = PendingBatch::Kind::kRejectOverload;
        pb.pending_at_enqueue = s->pending_applies;
        w->metrics.overload_rejections->Add();
      } else {
        pb.kind = PendingBatch::Kind::kApply;
        pb.count = batch.count;
        pb.wire = batch.pairs;  // view into rbuf; see PendingBatch
        pending_bytes_.fetch_add(batch_bytes, std::memory_order_relaxed);
        ++s->pending_applies;
        ++conn->expected_seq;
      }
      s->pending.push_back(std::move(pb));
      const int64_t depth = static_cast<int64_t>(s->pending.size());
      s->pending_gauge->Set(depth);
      w->metrics.peak_pending_batches->RaiseTo(depth);
      MarkDirty(w, s);
      return FrameResult::kContinue;
    }
    case FrameType::kQuery: {
      if (conn->session == nullptr) {
        return SendErrorAndClose(w, conn, "query before hello");
      }
      Session* s = conn->session;
      // Apply everything this connection already pushed, so the snapshot
      // reflects its own writes (same guarantee the threaded server gave
      // by handling frames in order).
      DrainSession(w, s);
      if (s->frozen && conn_has_pending(s)) return park_until_thaw(s);
      SnapshotFrame snapshot;
      TrackerSnapshot snap = s->tracker->Snapshot();
      snapshot.estimate = snap.estimate;
      snapshot.time = snap.time;
      snapshot.messages = snap.messages;
      snapshot.bits = snap.bits;
      snapshot.wire_messages = s->wire_cost.messages(MessageKind::kWire);
      snapshot.wire_bits = s->wire_cost.bits(MessageKind::kWire);
      QueueFrame(w, conn, FrameType::kSnapshot, EncodeSnapshot(snapshot));
      return FrameResult::kContinue;
    }
    case FrameType::kCheckpoint: {
      if (conn->session == nullptr) {
        return SendErrorAndClose(w, conn, "checkpoint before hello");
      }
      if (!frame.payload.empty()) {
        return SendErrorAndClose(w, conn, "malformed checkpoint payload");
      }
      if (options_.checkpoint_path.empty()) {
        return SendErrorAndClose(w, conn,
                                 "checkpointing is disabled (start the "
                                 "server with --checkpoint-path)");
      }
      Session* s = conn->session;
      DrainSession(w, s);
      if (s->frozen) return park_until_thaw(s);
      return StartCheckpoint(w, s, conn, /*is_auto=*/false, PushAckFrame{});
    }
    case FrameType::kQueryRange: {
      // Read-only and session-independent: unlike the ingest frames, a
      // query needs no Hello — varstream_query attaches to any running
      // server without creating or naming a session.
      QueryRangeFrame query;
      if (!DecodeQueryRange(frame.payload, &query)) {
        return SendErrorAndClose(w, conn, "malformed query-range payload");
      }
      if (query.version != kQueryRangeVersion) {
        return SendErrorAndClose(
            w, conn,
            "query-range version mismatch: client speaks v" +
                std::to_string(query.version) + ", server speaks v" +
                std::to_string(kQueryRangeVersion));
      }
      if (conn->session != nullptr) {
        DrainSession(w, conn->session);
        if (conn->session->frozen && conn_has_pending(conn->session)) {
          return park_until_thaw(conn->session);
        }
      }
      if (!query.session.empty()) {
        bool found = false;
        {
          std::lock_guard<std::mutex> lock(sessions_mu_);
          found = sessions_.find(query.session) != sessions_.end();
        }
        if (!found) {
          return SendErrorAndClose(
              w, conn, "unknown session '" + query.session + "'");
        }
      }
      conn->parked = true;
      UpdateInterest(w, conn);
      auto gather = std::make_shared<RangeGather>();
      gather->query = std::move(query);
      gather->remaining = worker_count_;
      Worker* initiator = w;
      Conn* pinned = conn;
      for (uint32_t i = 0; i < worker_count_; ++i) {
        auto task = [this, gather, initiator, pinned, i] {
          std::vector<RangeCapture> out;
          CaptureWorkerHistory(i, gather->query, &out);
          bool last = false;
          {
            std::lock_guard<std::mutex> lock(gather->mu);
            for (RangeCapture& c : out) {
              gather->captured.push_back(std::move(c));
            }
            last = (--gather->remaining == 0);
          }
          if (!last) return;
          // Always posted, never inline: the continuation re-enters
          // ProcessInput via UnparkConn, which must not nest inside the
          // ProcessInput invocation that parked the connection.
          PostToWorker(initiator, [this, gather, initiator, pinned] {
            Conn* c = pinned;
            if (c->dead) return;
            std::sort(gather->captured.begin(), gather->captured.end(),
                      [](const RangeCapture& a, const RangeCapture& b) {
                        return a.meta.session < b.meta.session;
                      });
            QueryRangeResultFrame result;
            for (RangeCapture& cap : gather->captured) {
              cap.meta.rows = EvaluateQuery(cap.rows, gather->query.spec);
              result.sessions.push_back(std::move(cap.meta));
            }
            std::vector<uint8_t> payload = EncodeQueryRangeResult(result);
            if (payload.size() > kMaxFramePayload) {
              SendErrorAndClose(
                  initiator, c,
                  "query-range result (" + std::to_string(payload.size()) +
                      " bytes) exceeds the " +
                      std::to_string(kMaxFramePayload) +
                      "-byte frame limit; narrow the time window, name a "
                      "session, or downsample with buckets");
            } else {
              QueueFrame(initiator, c, FrameType::kQueryRangeResult,
                         payload);
            }
            UnparkConn(initiator, c);
          });
        };
        if (i == w->index) {
          task();
        } else if (!PostToWorker(workers_[i].get(), task)) {
          // Global shutdown: the connection dies with its worker.
          std::lock_guard<std::mutex> lock(gather->mu);
          --gather->remaining;
        }
      }
      return FrameResult::kParkDone;
    }
    case FrameType::kStateDump: {
      // Read-only and (like QueryRange) Hello-free: the root aggregator
      // pulls these over whatever connection is handy.
      StateDumpFrame dump;
      if (!DecodeStateDump(frame.payload, &dump)) {
        return SendErrorAndClose(w, conn, "malformed state-dump payload");
      }
      Session* target = nullptr;
      {
        std::lock_guard<std::mutex> lock(sessions_mu_);
        auto it = sessions_.find(dump.session);
        if (it != sessions_.end()) target = it->second.get();
      }
      if (target == nullptr) {
        return SendErrorAndClose(w, conn,
                                 "unknown session '" + dump.session + "'");
      }
      // Serialize on the owner worker (tracker state is owner-confined);
      // build the reply-or-error there, deliver on this worker.
      auto build = [this](Session* t, std::vector<uint8_t>* payload,
                          std::string* error) {
        auto* mergeable = dynamic_cast<Mergeable*>(t->tracker.get());
        if (mergeable == nullptr) {
          *error = "session '" + t->name + "' (tracker '" + t->tracker_name +
                   "') has no serializable state; mergeable trackers: " +
                   JoinNames(TrackerRegistry::Instance().MergeableNames());
          return false;
        }
        StateDumpResultFrame result;
        result.tracker = t->tracker_name;
        result.shards = t->shards;
        result.state = mergeable->SerializeState();
        *payload = EncodeStateDumpResult(result);
        if (payload->size() > kMaxFramePayload) {
          *error = "state dump (" + std::to_string(payload->size()) +
                   " bytes) exceeds the " +
                   std::to_string(kMaxFramePayload) + "-byte frame limit";
          return false;
        }
        return true;
      };
      if (target->owner == w->index) {
        DrainSession(w, target);
        std::vector<uint8_t> payload;
        std::string error;
        if (!build(target, &payload, &error)) {
          return SendErrorAndClose(w, conn, error);
        }
        QueueFrame(w, conn, FrameType::kStateDumpResult, payload);
        return FrameResult::kContinue;
      }
      conn->parked = true;
      UpdateInterest(w, conn);
      Worker* initiator = w;
      Conn* pinned = conn;
      Worker* owner_worker = workers_[target->owner].get();
      bool posted = PostToWorker(
          owner_worker, [this, build, target, initiator, pinned,
                         owner_worker] {
            auto payload = std::make_shared<std::vector<uint8_t>>();
            auto error = std::make_shared<std::string>();
            DrainSession(owner_worker, target);
            bool ok = build(target, payload.get(), error.get());
            PostToWorker(initiator,
                         [this, initiator, pinned, payload, error, ok] {
                           Conn* c = pinned;
                           if (c->dead) return;
                           if (ok) {
                             QueueFrame(initiator, c,
                                        FrameType::kStateDumpResult,
                                        *payload);
                           } else {
                             SendErrorAndClose(initiator, c, *error);
                           }
                           UnparkConn(initiator, c);
                         });
          });
      (void)posted;  // dropped only at global shutdown
      return FrameResult::kParkDone;
    }
    case FrameType::kTopology: {
      if (!frame.payload.empty()) {
        return SendErrorAndClose(w, conn, "malformed topology payload");
      }
      // A plain server is its own one-node topology; the root's
      // supervisor also uses this answer as its heartbeat.
      TopologyInfoFrame info;
      info.role = "server";
      QueueFrame(w, conn, FrameType::kTopologyInfo,
                 EncodeTopologyInfo(info));
      return FrameResult::kContinue;
    }
    case FrameType::kMetricsDump: {
      // Read-only and Hello-free like QueryRange: scrapers (varstream_top,
      // the root's fan-out) must never have to create sessions. Answered
      // inline on whatever worker got the frame — every slot is readable
      // from any thread with relaxed loads, so a scrape never parks the
      // connection or posts cross-worker work.
      MetricsDumpFrame dump;
      if (!DecodeMetricsDump(frame.payload, &dump)) {
        return SendErrorAndClose(w, conn, "malformed metrics-dump payload");
      }
      if (dump.version != kMetricsDumpVersion) {
        return SendErrorAndClose(
            w, conn,
            "metrics-dump version mismatch: client speaks v" +
                std::to_string(dump.version) + ", server speaks v" +
                std::to_string(kMetricsDumpVersion));
      }
      MetricsDumpResultFrame result;
      result.json = MetricsJson();
      std::vector<uint8_t> payload = EncodeMetricsDumpResult(result);
      if (payload.size() > kMaxFramePayload) {
        return SendErrorAndClose(
            w, conn,
            "metrics dump (" + std::to_string(payload.size()) +
                " bytes) exceeds the " + std::to_string(kMaxFramePayload) +
                "-byte frame limit");
      }
      QueueFrame(w, conn, FrameType::kMetricsDumpResult, payload);
      return FrameResult::kContinue;
    }
    case FrameType::kShutdown: {
      if (!frame.payload.empty()) {
        return SendErrorAndClose(w, conn, "malformed shutdown payload");
      }
      QueueFrame(w, conn, FrameType::kShutdownAck, {});
      {
        std::lock_guard<std::mutex> lock(shutdown_mu_);
        shutdown_requested_ = true;
      }
      shutdown_cv_.notify_all();
      conn->closing = true;  // close once the ack flushes
      return FrameResult::kClose;
    }
    default:
      return SendErrorAndClose(w, conn,
                               std::string("unexpected ") +
                                   FrameTypeName(frame.type) +
                                   " frame (server-to-client only)");
  }
}

void VarstreamServer::DrainSession(Worker* w, Session* s) {
  while (!s->frozen && !s->pending.empty()) {
    PendingBatch b = std::move(s->pending.front());
    s->pending.pop_front();
    s->pending_gauge->Set(static_cast<int64_t>(s->pending.size()));
    if (b.kind != PendingBatch::Kind::kApply) {
      if (b.conn != nullptr && !b.conn->dead) {
        OverloadedFrame overloaded;
        overloaded.seq = b.seq;
        overloaded.pending = b.pending_at_enqueue;
        overloaded.cap = options_.pending_batch_cap;
        QueueFrame(w, b.conn, FrameType::kOverloaded,
                   EncodeOverloaded(overloaded));
      }
      continue;
    }
    --s->pending_applies;
    pending_bytes_.fetch_sub(
        static_cast<size_t>(b.count) * kPushUpdateWireBytes,
        std::memory_order_relaxed);
    // The single content pass: validate each update (untrusted wire
    // input — the in-process API treats violations as programming
    // errors) while materializing it into the worker's reusable scratch,
    // straight from the wire pairs in the common zero-copy case.
    const uint32_t num_sites = s->options.num_sites;
    const bool monotone_only = s->monotone_only;
    uint32_t bad_site = 0;
    bool bad_delta = false;
    bool valid = true;
    std::span<const CountUpdate> updates;
    if (b.wire != nullptr) {
      if (w->scratch.size() < b.count) w->scratch.resize(b.count);
      CountUpdate* out = w->scratch.data();
      const uint8_t* p = b.wire;
      for (uint32_t i = 0; i < b.count; ++i, p += kPushUpdateWireBytes) {
        const uint32_t site = PushBatchView::LoadU32(p);
        const int64_t delta =
            static_cast<int64_t>(PushBatchView::LoadU64(p + 4));
        if (site >= num_sites || (monotone_only && delta < 0)) {
          valid = false;
          bad_site = site;
          bad_delta = !(site >= num_sites);
          break;
        }
        out[i].site = site;
        out[i].delta = delta;
      }
      updates = std::span<const CountUpdate>(w->scratch.data(), b.count);
    } else {
      for (const CountUpdate& u : b.updates) {
        if (u.site >= num_sites || (monotone_only && u.delta < 0)) {
          valid = false;
          bad_site = u.site;
          bad_delta = !(u.site >= num_sites);
          break;
        }
      }
      updates = b.updates;
    }
    if (!valid) {
      // Same loud Error + close that enqueue-time validation used to
      // give, now paid only by batches the server actually applies. The
      // rest of the closing connection's queue is dropped too — nothing
      // after an invalid batch may reach the tracker.
      if (b.conn != nullptr && !b.conn->dead) {
        SendErrorAndClose(
            w, b.conn,
            bad_delta ? "tracker '" + s->tracker_name +
                            "' is insertion-only; negative delta rejected"
                      : "push-batch update targets site " +
                            std::to_string(bad_site) + ", session has k=" +
                            std::to_string(num_sites));
        Conn* bad_conn = b.conn;
        for (auto it = s->pending.begin(); it != s->pending.end();) {
          if (it->conn != bad_conn) {
            ++it;
            continue;
          }
          if (it->kind == PendingBatch::Kind::kApply) {
            --s->pending_applies;
            pending_bytes_.fetch_sub(
                static_cast<size_t>(it->count) * kPushUpdateWireBytes,
                std::memory_order_relaxed);
          }
          it = s->pending.erase(it);
        }
        s->pending_gauge->Set(static_cast<int64_t>(s->pending.size()));
      }
      continue;
    }
    // One clock pair + one histogram store per BATCH, nothing per
    // update — the bench-regression gate holds ingest to within noise.
    const MetricClock::time_point apply_start = MetricClock::now();
    s->tracker->PushBatch(updates);
    w->metrics.apply_latency_us->Record(ElapsedUs(apply_start));
    w->metrics.batches_applied->Add();
    w->metrics.updates_applied->Add(updates.size());
    // History sampling rides the batch boundary — the only point with a
    // consistent snapshot and the only frequency that keeps Snapshot()'s
    // sharded-pipeline drain off the per-update path.
    if (s->history->Due(updates.size())) {
      TrackerSnapshot snap = s->tracker->Snapshot();
      s->history->Record({snap.time, snap.estimate, snap.messages,
                          snap.bits,
                          s->wire_cost.bits(MessageKind::kWire) / 8});
    }
    s->updates_since_checkpoint += updates.size();
    PushAckFrame ack;
    ack.seq = b.seq;
    ack.session_time = s->tracker->time();
    if (options_.checkpoint_every > 0 &&
        s->updates_since_checkpoint >= options_.checkpoint_every) {
      s->updates_since_checkpoint = 0;
      // Freezes the session and parks b.conn; FinishCheckpoint sends the
      // ack (checkpointed=true) and resumes the drain.
      StartCheckpoint(w, s, b.conn, /*is_auto=*/true, ack);
      return;
    }
    if (b.conn != nullptr && !b.conn->dead) {
      QueueFrame(w, b.conn, FrameType::kPushAck, EncodePushAck(ack));
    }
  }
}

VarstreamServer::FrameResult VarstreamServer::StartCheckpoint(
    Worker* w, Session* s, Conn* conn, bool is_auto,
    PushAckFrame parked_ack) {
  s->frozen = true;
  if (conn != nullptr && !conn->dead) {
    conn->parked = true;
    UpdateInterest(w, conn);
  } else {
    conn = nullptr;  // the triggering client died; checkpoint anyway
  }
  auto gather = std::make_shared<CkptGather>();
  gather->remaining = worker_count_;
  Worker* initiator = w;
  Conn* pinned = conn;
  for (uint32_t i = 0; i < worker_count_; ++i) {
    auto task = [this, gather, initiator, pinned, s, is_auto, parked_ack,
                 i] {
      std::vector<SessionCheckpoint> entries;
      std::string error;
      bool ok = CaptureWorkerSessions(i, &entries, &error);
      bool last = false;
      {
        std::lock_guard<std::mutex> lock(gather->mu);
        if (!ok && !gather->failed) {
          gather->failed = true;
          gather->error = error;
        }
        for (SessionCheckpoint& e : entries) {
          gather->entries.push_back(std::move(e));
        }
        last = (--gather->remaining == 0);
      }
      if (!last) return;
      // Always posted (even post-to-self): the continuation re-enters
      // ProcessInput via UnparkConn and must run from the mailbox, not
      // nested inside whatever called StartCheckpoint.
      PostToWorker(initiator,
                   [this, initiator, gather, s, pinned, is_auto,
                    parked_ack] {
                     FinishCheckpoint(initiator, gather, s, pinned, is_auto,
                                      parked_ack);
                   });
    };
    if (i == w->index) {
      task();
    } else if (!PostToWorker(workers_[i].get(), task)) {
      bool last = false;
      {
        std::lock_guard<std::mutex> lock(gather->mu);
        if (!gather->failed) {
          gather->failed = true;
          gather->error = "server is stopping";
        }
        last = (--gather->remaining == 0);
      }
      if (last) {
        PostToWorker(initiator,
                     [this, initiator, gather, s, pinned, is_auto,
                      parked_ack] {
                       FinishCheckpoint(initiator, gather, s, pinned,
                                        is_auto, parked_ack);
                     });
      }
    }
  }
  return FrameResult::kParkDone;
}

void VarstreamServer::FinishCheckpoint(Worker* w,
                                       std::shared_ptr<CkptGather> gather,
                                       Session* s, Conn* conn, bool is_auto,
                                       PushAckFrame parked_ack) {
  std::string error;
  bool ok = false;
  if (gather->failed) {
    error = gather->error;
  } else {
    ok = WriteCheckpointEntries(std::move(gather->entries), &error);
  }
  if (conn != nullptr && !conn->dead) {
    if (!ok) {
      SendErrorAndClose(w, conn,
                        is_auto ? "automatic checkpoint failed: " + error
                                : error);
    } else if (is_auto) {
      parked_ack.checkpointed = true;
      QueueFrame(w, conn, FrameType::kPushAck, EncodePushAck(parked_ack));
    } else {
      CheckpointAckFrame ack;
      ack.path = options_.checkpoint_path;
      QueueFrame(w, conn, FrameType::kCheckpointAck,
                 EncodeCheckpointAck(ack));
    }
  }
  UnfreezeSession(w, s);
  if (conn != nullptr) UnparkConn(w, conn);
}

void VarstreamServer::UnfreezeSession(Worker* w, Session* s) {
  s->frozen = false;
  std::vector<Conn*> waiters;
  waiters.swap(s->waiters);
  DrainSession(w, s);  // may re-freeze on the next auto-checkpoint edge
  for (Conn* c : waiters) UnparkConn(w, c);
}

void VarstreamServer::UnparkConn(Worker* w, Conn* conn) {
  if (conn->dead) return;
  conn->parked = false;
  conn->park_retry = false;
  if (conn->closing) {
    // The peer hung up (or erred) while the connection was parked.
    FlushConn(w, conn);
    if (!conn->dead && conn->wbuf_sent == conn->wbuf.size()) {
      DestroyConn(w, conn);
    }
    return;
  }
  ProcessInput(w, conn);
}

bool VarstreamServer::CaptureWorkerSessions(
    uint32_t index, std::vector<SessionCheckpoint>* entries,
    std::string* error) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (auto& [name, session] : sessions_) {
    if (session->owner != index) continue;
    auto* mergeable = dynamic_cast<Mergeable*>(session->tracker.get());
    if (mergeable == nullptr) {
      if (error != nullptr) {
        *error = "session '" + name + "' (tracker '" +
                 session->tracker_name +
                 "') is not checkpointable; checkpointable trackers: " +
                 JoinNames(TrackerRegistry::Instance().MergeableNames());
      }
      return false;
    }
    SessionCheckpoint entry;
    entry.name = name;
    entry.tracker = session->tracker_name;
    entry.shards = session->shards;
    entry.options = session->options;
    entry.state = mergeable->SerializeState();
    if (session->history->enabled()) {
      entry.has_history = true;
      entry.history.capacity = session->history->options().capacity;
      entry.history.cadence = session->history->options().cadence;
      entry.history.pending = session->history->pending();
      entry.history.dropped = session->history->ring().dropped();
      entry.history.rows = session->history->ring().Rows();
    }
    entries->push_back(std::move(entry));
  }
  return true;
}

void VarstreamServer::CaptureWorkerHistory(uint32_t index,
                                           const QueryRangeFrame& query,
                                           std::vector<RangeCapture>* out) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (auto& [name, s] : sessions_) {
    if (s->owner != index) continue;
    if (!query.session.empty() && name != query.session) continue;
    if (!query.tracker.empty() && s->tracker_name != query.tracker) {
      continue;
    }
    RangeCapture c;
    c.meta.session = name;
    c.meta.tracker = s->tracker_name;
    c.meta.capacity = s->history->options().capacity;
    c.meta.cadence = s->history->options().cadence;
    c.meta.dropped = s->history->ring().dropped();
    c.rows = s->history->ring().Rows();
    out->push_back(std::move(c));
  }
}

bool VarstreamServer::WriteCheckpointEntries(
    std::vector<SessionCheckpoint> entries, std::string* error) {
  // Captures arrive in worker order; the file format (and the restore
  // tests) expect name order, the same discipline the single-threaded
  // writer had.
  std::sort(entries.begin(), entries.end(),
            [](const SessionCheckpoint& a, const SessionCheckpoint& b) {
              return a.name < b.name;
            });
  std::lock_guard<std::mutex> lock(checkpoint_mu_);
  return WriteCheckpointFile(options_.checkpoint_path, entries, error);
}

bool VarstreamServer::WriteCheckpoint(std::string* error) {
  if (options_.checkpoint_path.empty()) {
    if (error != nullptr) {
      *error = "checkpointing is disabled (start the server with "
               "--checkpoint-path)";
    }
    return false;
  }
  std::lock_guard<std::mutex> ext_lock(ext_mu_);
  std::vector<SessionCheckpoint> entries;
  if (!workers_running_) {
    // No worker threads alive: capture directly, any thread is safe.
    for (uint32_t i = 0; i < worker_count_; ++i) {
      if (!CaptureWorkerSessions(i, &entries, error)) return false;
    }
  } else {
    struct ExtGather {
      std::mutex mu;
      std::condition_variable cv;
      size_t remaining = 0;
      std::vector<SessionCheckpoint> entries;
      std::string error;
      bool failed = false;
    };
    auto gather = std::make_shared<ExtGather>();
    gather->remaining = worker_count_;
    for (uint32_t i = 0; i < worker_count_; ++i) {
      bool posted = PostToWorker(workers_[i].get(), [this, gather, i] {
        std::vector<SessionCheckpoint> captured;
        std::string capture_error;
        bool ok = CaptureWorkerSessions(i, &captured, &capture_error);
        std::lock_guard<std::mutex> lock(gather->mu);
        if (!ok && !gather->failed) {
          gather->failed = true;
          gather->error = capture_error;
        }
        for (SessionCheckpoint& e : captured) {
          gather->entries.push_back(std::move(e));
        }
        --gather->remaining;
        gather->cv.notify_all();
      });
      if (!posted) {
        std::lock_guard<std::mutex> lock(gather->mu);
        if (!gather->failed) {
          gather->failed = true;
          gather->error = "server is stopping";
        }
        --gather->remaining;
        gather->cv.notify_all();
      }
    }
    std::unique_lock<std::mutex> lock(gather->mu);
    gather->cv.wait(lock, [&] { return gather->remaining == 0; });
    if (gather->failed) {
      if (error != nullptr) *error = gather->error;
      return false;
    }
    entries = std::move(gather->entries);
  }
  return WriteCheckpointEntries(std::move(entries), error);
}

std::vector<std::string> VarstreamServer::SessionNames() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  std::vector<std::string> names;
  names.reserve(sessions_.size());
  for (const auto& [name, session] : sessions_) names.push_back(name);
  return names;
}

bool VarstreamServer::SessionSnapshot(const std::string& name,
                                      TrackerSnapshot* snapshot) {
  std::lock_guard<std::mutex> ext_lock(ext_mu_);
  Session* session = nullptr;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto it = sessions_.find(name);
    if (it == sessions_.end()) return false;
    session = it->second.get();
  }
  if (!workers_running_) {
    *snapshot = session->tracker->Snapshot();
    return true;
  }
  struct SnapWait {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    TrackerSnapshot snapshot;
  };
  auto wait = std::make_shared<SnapWait>();
  Worker* owner = workers_[session->owner].get();
  bool posted = PostToWorker(owner, [this, owner, session, wait] {
    DrainSession(owner, session);
    TrackerSnapshot snap = session->tracker->Snapshot();
    std::lock_guard<std::mutex> lock(wait->mu);
    wait->snapshot = snap;
    wait->done = true;
    wait->cv.notify_all();
  });
  if (!posted) return false;
  std::unique_lock<std::mutex> lock(wait->mu);
  wait->cv.wait(lock, [&] { return wait->done; });
  *snapshot = wait->snapshot;
  return true;
}

ServerStats VarstreamServer::Stats() const {
  // Rebuilt from the registry — the same numbers MetricsDump and the
  // Prometheus endpoint serve, so the --stats line can never disagree
  // with a scrape. The registry outlives the workers, so this stays
  // valid after Stop().
  ServerStats stats;
  stats.workers = worker_count_;
  stats.peak_connections = peak_connections_.load(std::memory_order_relaxed);
  stats.per_worker_accepted.assign(worker_count_, 0);
  MetricsSnapshot snap = metrics_.Collect();
  for (const MetricPoint& p : snap.points) {
    if (p.kind == MetricKind::kCounter && p.name == "accepted") {
      stats.accepted += p.counter;
      for (const auto& [key, value] : p.labels) {
        if (key != "worker") continue;
        size_t index = std::strtoul(value.c_str(), nullptr, 10);
        if (index < stats.per_worker_accepted.size()) {
          stats.per_worker_accepted[index] = p.counter;
        }
      }
    } else if (p.kind == MetricKind::kCounter &&
               p.name == "overload_rejections") {
      stats.overload_rejections += p.counter;
    } else if (p.kind == MetricKind::kCounter &&
               p.name == "seq_gap_rejections") {
      stats.seq_gap_rejections += p.counter;
    } else if (p.kind == MetricKind::kGauge &&
               p.name == "peak_pending_batches") {
      stats.peak_pending_batches =
          std::max(stats.peak_pending_batches,
                   static_cast<uint64_t>(std::max<int64_t>(p.gauge, 0)));
    }
  }
  return stats;
}

MetricsSnapshot VarstreamServer::CollectMetrics() const {
  MetricsSnapshot snap = metrics_.Collect();
  auto gauge = [&snap](const char* name, int64_t value, GaugeAgg agg) {
    MetricPoint p;
    p.name = name;
    p.kind = MetricKind::kGauge;
    p.agg = agg;
    p.gauge = value;
    snap.points.push_back(std::move(p));
  };
  // Connection lifecycle and session count live outside the registry
  // (multi-writer atomics / the sessions map); folded in per scrape so
  // every surface sees them.
  gauge("connections_current",
        static_cast<int64_t>(
            current_connections_.load(std::memory_order_relaxed)),
        GaugeAgg::kSum);
  gauge("connections_peak",
        static_cast<int64_t>(
            peak_connections_.load(std::memory_order_relaxed)),
        GaugeAgg::kMax);
  gauge("workers", static_cast<int64_t>(worker_count_), GaugeAgg::kSum);
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    gauge("sessions", static_cast<int64_t>(sessions_.size()),
          GaugeAgg::kSum);
  }
  return snap;
}

std::string VarstreamServer::MetricsJson() const {
  return "{\"varstream_metrics\":1,\"role\":\"server\",\"node\":" +
         CollectMetrics().ToJson() + "}";
}

std::string VarstreamServer::MetricsPrometheus() const {
  return CollectMetrics().ToPrometheus("varstream_");
}

}  // namespace varstream
