#include "service/many_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <thread>

namespace varstream {

namespace {

using Clock = std::chrono::steady_clock;

enum class ConnState {
  kConnecting,   // nonblocking connect in flight
  kHelloSent,    // waiting for HelloAck
  kPushing,      // streaming batches (pipeline + go-back-N)
  kQuerySent,    // waiting for the final Snapshot
  kDone,
};

struct DriverConn {
  int fd = -1;
  size_t index = 0;  // position in the caller's conns vector
  ConnState state = ConnState::kConnecting;
  std::vector<uint8_t> rbuf;
  std::vector<uint8_t> wbuf;
  size_t wbuf_sent = 0;
  /// Next batch to send; rewound by an Overloaded reply (go-back-N).
  uint64_t next_seq = 0;
  std::deque<uint64_t> inflight;  // sent, unacked, in send order
  /// Send timestamp of each in-flight batch, aligned with `inflight`.
  std::deque<Clock::time_point> inflight_sent;
  /// Lowest rejected seq seen in the current overload round; resend
  /// starts there once every outstanding reply has drained.
  uint64_t rewind_to = UINT64_MAX;
  Clock::time_point backoff_until = Clock::time_point::min();
  uint32_t overload_rounds = 0;  // consecutive; resets on any ack
  bool registered_out = false;
};

bool SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string ConnError(const DriverConn& c, const std::string& what) {
  return "connection " + std::to_string(c.index) + ": " + what;
}

}  // namespace

bool RunManyClients(const ManyClientOptions& options,
                    std::vector<ManyClientConn> conns,
                    ManyClientResult* result) {
  result->snapshots.assign(conns.size(), SnapshotFrame{});
  result->overload_rejections = 0;
  result->seq_gap_rejections = 0;
  result->error.clear();
  if (conns.empty()) return true;
  const uint32_t pipeline = std::max(1u, options.pipeline);
  // Overload rounds are expected under a shrunk server cap; what must
  // never happen is spinning forever without a single acceptance.
  constexpr uint32_t kMaxOverloadRounds = 4096;

  RaiseFdLimit(conns.size() + 1024);

  int epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd < 0) {
    result->error = "epoll_create1(): " + std::string(strerror(errno));
    return false;
  }

  std::vector<DriverConn> dconns(conns.size());
  size_t done_count = 0;
  bool failed = false;

  auto fail = [&](const std::string& message) {
    if (!failed) {
      failed = true;
      result->error = message;
    }
  };

  auto update_interest = [&](DriverConn& c) {
    bool want_out = c.wbuf_sent < c.wbuf.size() ||
                    c.state == ConnState::kConnecting;
    if (want_out == c.registered_out) return;
    epoll_event ev{};
    ev.events = EPOLLIN | (want_out ? static_cast<uint32_t>(EPOLLOUT) : 0u);
    ev.data.u64 = static_cast<uint64_t>(c.index);
    ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, c.fd, &ev);
    c.registered_out = want_out;
  };

  auto flush = [&](DriverConn& c) {
    while (c.wbuf_sent < c.wbuf.size()) {
      ssize_t n = ::send(c.fd, c.wbuf.data() + c.wbuf_sent,
                         c.wbuf.size() - c.wbuf_sent,
                         MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n > 0) {
        c.wbuf_sent += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      fail(ConnError(c, "send(): " + std::string(strerror(errno))));
      return;
    }
    if (c.wbuf_sent == c.wbuf.size()) {
      c.wbuf.clear();
      c.wbuf_sent = 0;
    }
    update_interest(c);
  };

  auto queue_frame = [&](DriverConn& c, FrameType type,
                         std::span<const uint8_t> payload) {
    if (c.wbuf_sent > 0) {
      c.wbuf.erase(c.wbuf.begin(),
                   c.wbuf.begin() + static_cast<long>(c.wbuf_sent));
      c.wbuf_sent = 0;
    }
    AppendFrame(&c.wbuf, type, payload);
    flush(c);
  };

  // Keeps the pipeline full: resends after a completed overload round,
  // then fresh batches, then the final Query.
  auto pump = [&](DriverConn& c) {
    if (c.state != ConnState::kPushing) return;
    const auto& batches = conns[c.index].batches;
    if (c.rewind_to != UINT64_MAX) {
      // Go-back-N: every reply for the overshoot must drain before the
      // resend, or the server would see (and re-reject) stale seqs.
      if (!c.inflight.empty()) return;
      if (Clock::now() < c.backoff_until) return;
      c.next_seq = c.rewind_to;
      c.rewind_to = UINT64_MAX;
    }
    while (c.inflight.size() < pipeline &&
           c.next_seq < batches.size()) {
      // Frame straight into the write buffer — one pass over the
      // updates, no intermediate payload vector per batch.
      if (c.wbuf_sent > 0) {
        c.wbuf.erase(c.wbuf.begin(),
                     c.wbuf.begin() + static_cast<long>(c.wbuf_sent));
        c.wbuf_sent = 0;
      }
      AppendPushBatchFrame(&c.wbuf, c.next_seq, batches[c.next_seq]);
      flush(c);
      c.inflight.push_back(c.next_seq);
      c.inflight_sent.push_back(Clock::now());
      ++c.next_seq;
      if (failed) return;
    }
    if (c.inflight.empty() && c.next_seq == batches.size()) {
      c.state = ConnState::kQuerySent;
      queue_frame(c, FrameType::kQuery, {});
    }
  };

  auto handle_frame = [&](DriverConn& c, const Frame& frame) {
    switch (frame.type) {
      case FrameType::kHelloAck: {
        if (c.state != ConnState::kHelloSent) {
          fail(ConnError(c, "unexpected hello-ack"));
          return;
        }
        c.state = ConnState::kPushing;
        pump(c);
        return;
      }
      case FrameType::kPushAck: {
        PushAckFrame ack;
        if (!DecodePushAck(frame.payload, &ack)) {
          fail(ConnError(c, "malformed push-ack payload"));
          return;
        }
        if (c.inflight.empty() || ack.seq != c.inflight.front()) {
          fail(ConnError(c, "push-ack seq " + std::to_string(ack.seq) +
                                " does not match the oldest in-flight "
                                "batch"));
          return;
        }
        c.inflight.pop_front();
        result->push_ack_us.Record(
            std::chrono::duration<double, std::micro>(
                Clock::now() - c.inflight_sent.front())
                .count());
        c.inflight_sent.pop_front();
        c.overload_rounds = 0;
        pump(c);
        return;
      }
      case FrameType::kOverloaded: {
        OverloadedFrame overloaded;
        if (!DecodeOverloaded(frame.payload, &overloaded)) {
          fail(ConnError(c, "malformed overloaded payload"));
          return;
        }
        if (c.inflight.empty() ||
            overloaded.seq != c.inflight.front()) {
          fail(ConnError(c, "overloaded seq " +
                                std::to_string(overloaded.seq) +
                                " does not match the oldest in-flight "
                                "batch"));
          return;
        }
        c.inflight.pop_front();
        c.inflight_sent.pop_front();  // a rejection is not a latency sample
        // Classify before folding this seq into the rewind window: the
        // first bounce of a round hit the cap/budget with the session
        // cursor still in step (an overload); every later bounce in the
        // same round is go-back-N collateral — its seq trails the first
        // rejection, so the server saw a gap. Mirrors the server's
        // gap-before-cap check order, keeping the two ends' counters
        // comparable.
        if (c.rewind_to != UINT64_MAX) {
          ++result->seq_gap_rejections;
        } else {
          ++result->overload_rejections;
        }
        c.rewind_to = std::min(c.rewind_to, overloaded.seq);
        if (c.inflight.empty()) {
          if (++c.overload_rounds > kMaxOverloadRounds) {
            fail(ConnError(c, "server stayed overloaded for " +
                                  std::to_string(kMaxOverloadRounds) +
                                  " consecutive rounds (pending=" +
                                  std::to_string(overloaded.pending) +
                                  " cap=" + std::to_string(overloaded.cap) +
                                  ")"));
            return;
          }
          uint32_t shift = std::min(c.overload_rounds - 1, 6u);
          c.backoff_until =
              Clock::now() + std::chrono::milliseconds(1u << shift);
        }
        pump(c);
        return;
      }
      case FrameType::kSnapshot: {
        if (c.state != ConnState::kQuerySent) {
          fail(ConnError(c, "unexpected snapshot"));
          return;
        }
        SnapshotFrame snapshot;
        if (!DecodeSnapshot(frame.payload, &snapshot)) {
          fail(ConnError(c, "malformed snapshot payload"));
          return;
        }
        result->snapshots[c.index] = snapshot;
        c.state = ConnState::kDone;
        ++done_count;
        return;
      }
      case FrameType::kError: {
        ErrorFrame err;
        std::string message = DecodeError(frame.payload, &err)
                                  ? err.message
                                  : "(malformed error payload)";
        fail(ConnError(c, "server: " + message));
        return;
      }
      default:
        fail(ConnError(c, std::string("unexpected ") +
                              FrameTypeName(frame.type) + " frame"));
        return;
    }
  };

  auto handle_readable = [&](DriverConn& c) {
    for (;;) {
      uint8_t chunk[65536];
      ssize_t n = ::recv(c.fd, chunk, sizeof(chunk), MSG_DONTWAIT);
      if (n > 0) {
        c.rbuf.insert(c.rbuf.end(), chunk, chunk + n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      fail(ConnError(c, n == 0 ? "server closed the connection"
                               : "recv(): " + std::string(strerror(errno))));
      return;
    }
    size_t offset = 0;
    while (!failed && c.state != ConnState::kDone) {
      Frame frame;
      size_t consumed = 0;
      std::string decode_error;
      DecodeStatus status = DecodeFrame(
          std::span<const uint8_t>(c.rbuf.data() + offset,
                                   c.rbuf.size() - offset),
          &frame, &consumed, &decode_error);
      if (status == DecodeStatus::kNeedMore) break;
      if (status == DecodeStatus::kMalformed) {
        fail(ConnError(c, "malformed frame: " + decode_error));
        break;
      }
      offset += consumed;
      handle_frame(c, frame);
    }
    if (offset > 0) {
      c.rbuf.erase(c.rbuf.begin(),
                   c.rbuf.begin() + static_cast<long>(offset));
    }
  };

  // --- Open every connection (nonblocking connect storm). ---
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  std::string host = options.host == "localhost" ? "127.0.0.1" : options.host;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    result->error = "invalid host '" + options.host + "'";
    ::close(epoll_fd);
    return false;
  }
  for (size_t i = 0; i < conns.size() && !failed; ++i) {
    DriverConn& c = dconns[i];
    c.index = i;
    c.fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (c.fd < 0 || !SetNonBlocking(c.fd)) {
      fail(ConnError(c, "socket(): " + std::string(strerror(errno))));
      break;
    }
    int one = 1;
    ::setsockopt(c.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (::connect(c.fd, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      c.state = ConnState::kHelloSent;
    } else if (errno == EINPROGRESS) {
      c.state = ConnState::kConnecting;
    } else {
      fail(ConnError(c, "connect(): " + std::string(strerror(errno))));
      break;
    }
    epoll_event ev{};
    ev.events = EPOLLIN | (c.state == ConnState::kConnecting
                               ? static_cast<uint32_t>(EPOLLOUT)
                               : 0u);
    ev.data.u64 = static_cast<uint64_t>(i);
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, c.fd, &ev) != 0) {
      fail(ConnError(c, "epoll_ctl(): " + std::string(strerror(errno))));
      break;
    }
    c.registered_out = c.state == ConnState::kConnecting;
    if (c.state == ConnState::kHelloSent) {
      queue_frame(c, FrameType::kHello, EncodeHello(conns[i].hello));
    }
  }

  // --- The event loop. ---
  constexpr int kMaxEvents = 256;
  epoll_event events[kMaxEvents];
  while (!failed && done_count < conns.size()) {
    // Wake promptly when a backoff deadline is the next thing due.
    int timeout_ms = 1000;
    auto now = Clock::now();
    for (DriverConn& c : dconns) {
      if (c.state == ConnState::kPushing && c.rewind_to != UINT64_MAX &&
          c.inflight.empty()) {
        if (c.backoff_until <= now) {
          pump(c);
        } else {
          auto wait_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                             c.backoff_until - now)
                             .count();
          timeout_ms = std::min<int>(timeout_ms,
                                     static_cast<int>(wait_ms) + 1);
        }
      }
    }
    if (failed || done_count == conns.size()) break;
    int n = ::epoll_wait(epoll_fd, events, kMaxEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("epoll_wait(): " + std::string(strerror(errno)));
      break;
    }
    for (int i = 0; i < n && !failed; ++i) {
      DriverConn& c = dconns[events[i].data.u64];
      if (c.state == ConnState::kDone) continue;
      const uint32_t ev = events[i].events;
      if (c.state == ConnState::kConnecting) {
        if (ev & (EPOLLOUT | EPOLLHUP | EPOLLERR)) {
          int so_error = 0;
          socklen_t len = sizeof(so_error);
          ::getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
          if (so_error != 0) {
            fail(ConnError(c, "connect(): " +
                                  std::string(strerror(so_error))));
            break;
          }
          c.state = ConnState::kHelloSent;
          update_interest(c);
          queue_frame(c, FrameType::kHello,
                      EncodeHello(conns[c.index].hello));
        }
        continue;
      }
      if (ev & EPOLLOUT) flush(c);
      if (failed) break;
      if (ev & (EPOLLIN | EPOLLHUP | EPOLLERR)) handle_readable(c);
    }
  }

  if (!failed && options.hold_ms > 0) {
    if (options.on_hold) options.on_hold();
    std::this_thread::sleep_for(std::chrono::milliseconds(options.hold_ms));
  }
  for (DriverConn& c : dconns) {
    if (c.fd >= 0) ::close(c.fd);
  }
  ::close(epoll_fd);
  return !failed;
}

}  // namespace varstream
