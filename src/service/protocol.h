// The varstream wire protocol: length-prefixed, CRC-protected binary
// frames between a VarstreamClient and a VarstreamServer (src/service/).
//
// Frame layout (all integers little-endian):
//
//   offset 0  u32  payload length L (bytes; <= kMaxFramePayload)
//   offset 4  u8   frame type (FrameType)
//   offset 5  u8[L] payload
//   offset 5+L u32 CRC-32 over bytes [4, 5+L) — type byte + payload
//
// The protocol is versioned through the Hello frame: the first frame on
// every connection must be a Hello carrying kProtocolMagic and
// kProtocolVersion; the server answers HelloAck (or Error and closes).
// Integers inside payloads are fixed-width little-endian; strings are
// u32 length + raw bytes; doubles travel as their IEEE-754 bit pattern
// in a u64 so estimates survive the wire bit-exactly (the loadgen parity
// check depends on this).
//
// Malformed input is never "repaired": a frame with a bad length, bad
// CRC, unknown type, or a payload that decodes short/long produces
// DecodeStatus::kMalformed with a diagnostic, and the server answers
// with an Error frame and closes the connection. A truncated prefix is
// kNeedMore — the caller reads more bytes and retries. Because a frame
// is applied only after it fully decodes, a connection that dies
// mid-frame leaves the session's tracker untouched.

#ifndef VARSTREAM_SERVICE_PROTOCOL_H_
#define VARSTREAM_SERVICE_PROTOCOL_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "core/options.h"
#include "history/query.h"
#include "stream/update.h"

namespace varstream {

inline constexpr uint32_t kProtocolMagic = 0x56535257;  // "VSRW"
// v2 added QueryRange/QueryRangeResult (history queries). v3 added the
// hierarchy exchange: Hello grew a trailing site_base field (the leaf's
// first global site id, assigned by the root), and StateDump/Topology
// frames let a root pull serialized tracker state and probe node health.
// v4 added backpressure: PushBatch and PushAck carry a per-connection
// u64 sequence number (client-assigned, consecutive from 0), and the
// Overloaded frame rejects a batch without applying it — the client
// backs off and resends from the first rejected sequence (go-back-N).
// Hello still requires an exact version match; new frame types are
// appended so every v1/v2/v3 frame keeps its byte value.
// v5 added observability: MetricsDump/MetricsDumpResult expose a node's
// (or, through the root, a whole tree's) metrics registry as a stable
// JSON snapshot; like QueryRange the op carries its own sub-version and
// needs no Hello.
inline constexpr uint32_t kProtocolVersion = 5;

/// Hard cap on payload size: large enough for ~256k updates per
/// PushBatch, small enough that a corrupt length prefix cannot make the
/// server allocate gigabytes.
inline constexpr uint32_t kMaxFramePayload = 4u << 20;

/// Bytes of framing around a payload: length prefix + type + CRC.
inline constexpr size_t kFrameOverhead = 9;

enum class FrameType : uint8_t {
  kHello = 1,       // client -> server: version + session configuration
  kHelloAck,        // server -> client: accepted, session attached
  kPushBatch,       // client -> server: a batch of CountUpdates
  kPushAck,         // server -> client: batch applied, session clock
  kQuery,           // client -> server: read one consistent snapshot
  kSnapshot,        // server -> client: estimate/time/messages/bits (+wire)
  kCheckpoint,      // client -> server: write a checkpoint now
  kCheckpointAck,   // server -> client: checkpoint path
  kShutdown,        // client -> server: stop the server process
  kShutdownAck,     // server -> client: acknowledged, about to stop
  kError,           // server -> client: diagnostic; connection closes
  kQueryRange,      // client -> server: evaluate a history query (v2)
  kQueryRangeResult,// server -> client: evaluated rows per session (v2)
  kStateDump,       // client -> server: serialize one session's tracker (v3)
  kStateDumpResult, // server -> client: the SerializeState text (v3)
  kTopology,        // client -> server: describe this node / heartbeat (v3)
  kTopologyInfo,    // server -> client: role + leaf table (v3)
  kOverloaded,      // server -> client: batch rejected, back off + resend (v4)
  kMetricsDump,     // client -> server: scrape the metrics registry (v5)
  kMetricsDumpResult,  // server -> client: JSON metrics snapshot (v5)
  kMaxFrameType = kMetricsDumpResult,
};

const char* FrameTypeName(FrameType type);

/// One decoded frame: the type plus its raw payload bytes.
struct Frame {
  FrameType type = FrameType::kError;
  std::vector<uint8_t> payload;
};

/// A decoded frame whose payload ALIASES the input buffer instead of
/// copying it — the server's hot path decodes every frame this way and
/// copies only where a handler outlives the buffer. Valid until the
/// buffer the view was decoded from mutates (append, erase, realloc).
struct FrameView {
  FrameType type = FrameType::kError;
  std::span<const uint8_t> payload;
};

/// CRC-32 (IEEE, reflected, poly 0xEDB88320) over `data`.
uint32_t Crc32(std::span<const uint8_t> data);

/// Appends one complete frame (header + payload + CRC) to `out`.
void AppendFrame(std::vector<uint8_t>* out, FrameType type,
                 std::span<const uint8_t> payload);

/// send()s the whole buffer on a connected socket, resuming on EINTR and
/// short writes, with MSG_NOSIGNAL so a vanished peer surfaces as a
/// false return (errno preserved) instead of a SIGPIPE. The one wire
/// write primitive shared by server and client.
bool SendAllBytes(int fd, const uint8_t* data, size_t size);

enum class DecodeStatus {
  kOk,        // *frame holds a complete, CRC-checked frame
  kNeedMore,  // `in` is a valid but incomplete prefix; read more bytes
  kMalformed, // unrecoverable: close the connection (see *error)
};

/// Decodes the first frame of `in`. On kOk sets *consumed to the bytes
/// of the whole frame (strip them before the next call). On kMalformed
/// sets *error to a diagnostic naming what was wrong (oversized length,
/// CRC mismatch, unknown type).
DecodeStatus DecodeFrame(std::span<const uint8_t> in, Frame* frame,
                         size_t* consumed, std::string* error);

/// Zero-copy variant: identical validation (length bound, type range,
/// CRC), but *view's payload aliases `in` — see FrameView's lifetime
/// note. DecodeFrame is this plus one payload copy.
DecodeStatus DecodeFrameView(std::span<const uint8_t> in, FrameView* view,
                             size_t* consumed, std::string* error);

// --- Payload primitives. ---

/// Appends little-endian integers / bit-cast doubles / length-prefixed
/// strings to a payload buffer.
class WireWriter {
 public:
  explicit WireWriter(std::vector<uint8_t>* out) : out_(out) {}

  void U8(uint8_t value);
  void U32(uint32_t value);
  void U64(uint64_t value);
  void I64(int64_t value);
  void F64(double value);  // IEEE bit pattern as U64
  void String(const std::string& value);

 private:
  std::vector<uint8_t>* out_;
};

/// Reads a payload back. Every getter returns false once the payload is
/// exhausted or a string length overruns — decoders treat any false as a
/// malformed frame. AtEnd() must be true when a decoder finishes:
/// trailing bytes are malformed too.
class WireReader {
 public:
  explicit WireReader(std::span<const uint8_t> data) : data_(data) {}

  bool U8(uint8_t* value);
  bool U32(uint32_t* value);
  bool U64(uint64_t* value);
  bool I64(int64_t* value);
  bool F64(double* value);
  bool String(std::string* value);

  bool AtEnd() const { return pos_ == data_.size(); }

  /// Bytes left to read — decoders use this to reject element counts a
  /// payload cannot possibly hold before reserving memory for them.
  size_t Remaining() const { return data_.size() - pos_; }

 private:
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

// --- Frame payloads. ---

/// Hello: everything the server needs to create (or attach to) a named
/// tracker session. `shards` = 0 runs the serial engine; >= 1 the
/// sharded engine with that worker count.
struct HelloFrame {
  uint32_t magic = kProtocolMagic;
  uint32_t version = kProtocolVersion;
  std::string session = "default";
  std::string tracker = "deterministic";
  uint32_t shards = 0;
  TrackerOptions options;
};

struct HelloAckFrame {
  uint32_t version = kProtocolVersion;
  bool created = false;  // false: attached to an existing session
  uint64_t session_time = 0;
};

/// `seq` is per-connection and client-assigned: 0 for the first batch
/// after Hello, +1 for each subsequent batch. The server applies batches
/// strictly in sequence; a batch arriving past the session's
/// pending-batch cap is answered with Overloaded (not applied) and the
/// expected sequence does not advance, so a pipelined client resends
/// from the first rejected seq and ordering — and therefore bit-for-bit
/// parity with an in-process run — is preserved under overload.
struct PushBatchFrame {
  uint64_t seq = 0;
  std::vector<CountUpdate> updates;
};

/// PushBatch wire layout: u64 seq + u32 count header, then `count`
/// packed {u32 site, i64 delta} pairs.
inline constexpr size_t kPushBatchHeaderBytes = 12;
inline constexpr size_t kPushUpdateWireBytes = 12;

/// A PushBatch payload validated in O(1) — the header is read and the
/// count is checked against the exact payload size — whose update pairs
/// still live in the caller's buffer. The server's hot path walks the
/// pairs in place with site()/delta() (single pass, fused with
/// validation) and materializes CountUpdates only when a batch must
/// outlive the buffer. Same lifetime rule as FrameView.
struct PushBatchView {
  uint64_t seq = 0;
  uint32_t count = 0;
  const uint8_t* pairs = nullptr;  // count packed 12-byte pairs

  uint32_t site(uint32_t i) const {
    return LoadU32(pairs + static_cast<size_t>(i) * kPushUpdateWireBytes);
  }
  int64_t delta(uint32_t i) const {
    uint64_t v =
        LoadU64(pairs + static_cast<size_t>(i) * kPushUpdateWireBytes + 4);
    return static_cast<int64_t>(v);
  }

  static uint32_t LoadU32(const uint8_t* p) {
    if constexpr (std::endian::native == std::endian::little) {
      uint32_t v;
      std::memcpy(&v, p, sizeof(v));
      return v;
    }
    return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
           static_cast<uint32_t>(p[2]) << 16 |
           static_cast<uint32_t>(p[3]) << 24;
  }
  static uint64_t LoadU64(const uint8_t* p) {
    if constexpr (std::endian::native == std::endian::little) {
      uint64_t v;
      std::memcpy(&v, p, sizeof(v));
      return v;
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
  }
};

/// O(1) header validation (size must be exactly header + count pairs);
/// never allocates. False on any size mismatch — the same payloads
/// DecodePushBatch rejects (wire_fuzz asserts the two decoders agree).
bool DecodePushBatchView(std::span<const uint8_t> payload,
                         PushBatchView* view);

/// Cold path: copies a view's pairs into owned CountUpdates (appended to
/// *out) so a batch can outlive the buffer it was decoded from.
void MaterializeUpdates(const PushBatchView& view,
                        std::vector<CountUpdate>* out);

struct PushAckFrame {
  uint64_t seq = 0;           // echoes the applied batch's sequence number
  uint64_t session_time = 0;  // tracker->time() after applying the batch
  bool checkpointed = false;  // an automatic --checkpoint-every fired
};

/// Overloaded: the server's session queue was full when `seq` arrived
/// (or `seq` trailed an already-rejected batch). The batch was NOT
/// applied; the connection stays healthy. `pending`/`cap` report the
/// session's queue depth and configured cap so clients can log why.
struct OverloadedFrame {
  uint64_t seq = 0;
  uint64_t pending = 0;
  uint64_t cap = 0;
};

/// The tracker's Snapshot() plus the session's real wire-byte accounting
/// (MessageKind::kWire); the wire fields are reporting-only and excluded
/// from the loadgen parity check, which compares the first four fields
/// bit-for-bit against an in-process run.
struct SnapshotFrame {
  double estimate = 0.0;
  uint64_t time = 0;
  uint64_t messages = 0;
  uint64_t bits = 0;
  uint64_t wire_messages = 0;
  uint64_t wire_bits = 0;
};

struct CheckpointAckFrame {
  std::string path;
};

struct ErrorFrame {
  std::string message;
};

/// QueryRange carries its own version (independent of the connection
/// handshake) so the history query schema can evolve without another
/// protocol bump. The server rejects unknown versions with a loud Error
/// naming both sides, exactly like the Hello version check.
inline constexpr uint32_t kQueryRangeVersion = 1;

/// A history query: which sessions (empty `session` = all sessions,
/// empty `tracker` = any tracker) and what evaluation (QuerySpec,
/// src/history/query.h). QueryRange is read-only and session-independent,
/// so the server accepts it before (or without) a Hello.
struct QueryRangeFrame {
  uint32_t version = kQueryRangeVersion;
  std::string session;  // exact session name, or empty for all
  std::string tracker;  // restrict to sessions of this tracker; empty = any
  QuerySpec spec;
};

/// Evaluated rows per matching session, name-ordered, plus each
/// session's retention metadata (capacity/cadence/dropped) so readers
/// can tell how much prefix history was evicted.
struct QueryRangeResultFrame {
  uint32_t version = kQueryRangeVersion;
  std::vector<SessionQueryResult> sessions;
};

/// StateDump asks for one session's full Mergeable::SerializeState text —
/// the root aggregator's merge primitive: it splices the per-site lines
/// of every leaf's dump into one full-range state. Read-only; requires
/// the session to exist but (like QueryRange) no prior Hello.
struct StateDumpFrame {
  std::string session;
};

struct StateDumpResultFrame {
  std::string tracker;   // registry name of the session's base algorithm
  uint32_t shards = 0;   // worker count the session was created with
  std::string state;     // Mergeable::SerializeState text
};

/// One leaf in a TopologyInfo answer: its site range [site_lo, site_hi),
/// where it listens, and its supervision state.
struct TopologyLeaf {
  uint32_t index = 0;
  uint32_t port = 0;
  uint32_t site_lo = 0;
  uint32_t site_hi = 0;
  bool alive = false;
  uint64_t pid = 0;       // 0 for in-process leaves
  uint32_t restarts = 0;  // supervisor respawn count
};

/// Topology (empty payload) asks a node what it is. A plain
/// varstream_serve answers role "server" with no leaves; varstream_root
/// answers role "root" and its leaf table. The root's supervisor also
/// uses Topology as its heartbeat ping — any valid answer counts.
struct TopologyInfoFrame {
  std::string role;
  std::vector<TopologyLeaf> leaves;
};

/// MetricsDump carries its own version (like QueryRange) so the snapshot
/// schema can evolve without a protocol bump; unknown versions get a
/// loud Error naming both sides.
inline constexpr uint32_t kMetricsDumpVersion = 1;

/// Asks a node for its metrics registry. Read-only, session-independent,
/// and legal before (or without) a Hello — scrapers must never have to
/// create sessions. A root fans the request out to its leaves and
/// answers with the merged tree.
struct MetricsDumpFrame {
  uint32_t version = kMetricsDumpVersion;
};

/// The snapshot as a JSON document (schema documented in README's
/// Observability section):
///   {"varstream_metrics":1,"role":"server"|"root",
///    "node":{"metrics":[...]},            // this process's registry
///    "leaves":[{"index":..,"port":..,"alive":..,"metrics":{...}}, ...],
///    "merged":{"metrics":[...]}}          // root only: whole-tree sums
/// JSON (not a binary table) because the set of metric names is open —
/// new instrumentation must not need a protocol change — and histograms
/// carry gamma + raw bucket counts so merging stays exact.
struct MetricsDumpResultFrame {
  uint32_t version = kMetricsDumpVersion;
  std::string json;
};

// Encoders produce the payload only (frame it with AppendFrame);
// decoders return false on any short/long/invalid payload.
std::vector<uint8_t> EncodeHello(const HelloFrame& hello);
bool DecodeHello(std::span<const uint8_t> payload, HelloFrame* hello);

std::vector<uint8_t> EncodeHelloAck(const HelloAckFrame& ack);
bool DecodeHelloAck(std::span<const uint8_t> payload, HelloAckFrame* ack);

std::vector<uint8_t> EncodePushBatch(uint64_t seq,
                                     std::span<const CountUpdate> updates);
bool DecodePushBatch(std::span<const uint8_t> payload, PushBatchFrame* batch);

/// Appends a complete PushBatch frame (header + payload + CRC) to `out`
/// in one pass, with no intermediate payload vector — the client-side
/// half of the zero-copy hot path.
void AppendPushBatchFrame(std::vector<uint8_t>* out, uint64_t seq,
                          std::span<const CountUpdate> updates);

std::vector<uint8_t> EncodePushAck(const PushAckFrame& ack);
bool DecodePushAck(std::span<const uint8_t> payload, PushAckFrame* ack);

std::vector<uint8_t> EncodeOverloaded(const OverloadedFrame& overloaded);
bool DecodeOverloaded(std::span<const uint8_t> payload,
                      OverloadedFrame* overloaded);

std::vector<uint8_t> EncodeSnapshot(const SnapshotFrame& snapshot);
bool DecodeSnapshot(std::span<const uint8_t> payload,
                    SnapshotFrame* snapshot);

std::vector<uint8_t> EncodeCheckpointAck(const CheckpointAckFrame& ack);
bool DecodeCheckpointAck(std::span<const uint8_t> payload,
                         CheckpointAckFrame* ack);

std::vector<uint8_t> EncodeError(const std::string& message);
bool DecodeError(std::span<const uint8_t> payload, ErrorFrame* error);

std::vector<uint8_t> EncodeQueryRange(const QueryRangeFrame& query);
bool DecodeQueryRange(std::span<const uint8_t> payload,
                      QueryRangeFrame* query);

std::vector<uint8_t> EncodeQueryRangeResult(
    const QueryRangeResultFrame& result);
bool DecodeQueryRangeResult(std::span<const uint8_t> payload,
                            QueryRangeResultFrame* result);

std::vector<uint8_t> EncodeStateDump(const StateDumpFrame& dump);
bool DecodeStateDump(std::span<const uint8_t> payload, StateDumpFrame* dump);

std::vector<uint8_t> EncodeStateDumpResult(const StateDumpResultFrame& result);
bool DecodeStateDumpResult(std::span<const uint8_t> payload,
                           StateDumpResultFrame* result);

// Topology's request payload is empty; only the answer has a codec.
std::vector<uint8_t> EncodeTopologyInfo(const TopologyInfoFrame& info);
bool DecodeTopologyInfo(std::span<const uint8_t> payload,
                        TopologyInfoFrame* info);

std::vector<uint8_t> EncodeMetricsDump(const MetricsDumpFrame& dump);
bool DecodeMetricsDump(std::span<const uint8_t> payload,
                       MetricsDumpFrame* dump);

std::vector<uint8_t> EncodeMetricsDumpResult(
    const MetricsDumpResultFrame& result);
bool DecodeMetricsDumpResult(std::span<const uint8_t> payload,
                             MetricsDumpResultFrame* result);

// --- Shared Hello admission checks. ---

/// Hello frames are untrusted input, so session sizing is capped before
/// it drives any allocation: the site id also travels in 16 bits of the
/// simulated message header (net/message.h), making 2^16 the natural
/// ceiling of the monitoring model. The cap bounds the GLOBAL range — a
/// leaf's site_base + num_sites must stay within it too.
inline constexpr uint32_t kMaxSessionSites = 1u << 16;

/// Session names are path-safe and bounded so checkpoint file layouts
/// and log lines can embed them verbatim.
inline constexpr size_t kMaxSessionNameLength = 128;
bool SessionNameIsSafe(const std::string& name);

/// The Hello checks every node (leaf server and root aggregator) applies
/// identically: magic, exact version match, site count within
/// [1, max_sites] with site_base + num_sites not overflowing it, epsilon
/// in (0, 1), period >= 1, and a safe session name. Returns an empty
/// string on success, else the Error-frame diagnostic to send back.
/// Tracker existence and shard pairing stay node-specific.
std::string ValidateHello(const HelloFrame& hello, uint32_t max_sites);

/// Raises the process's soft RLIMIT_NOFILE toward `want` (clamped to the
/// hard limit). The many-connections paths — the epoll server's worker
/// pool and the loadgen's --connections driver — need well over the
/// usual 1024-fd default. Best-effort: returns the resulting soft limit.
uint64_t RaiseFdLimit(uint64_t want);

}  // namespace varstream

#endif  // VARSTREAM_SERVICE_PROTOCOL_H_
