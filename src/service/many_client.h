// ManyClientDriver: a single-threaded epoll client that drives hundreds
// to thousands of concurrent connections against one VarstreamServer —
// the client half of the many-connections CI gauntlet. Each connection
// attaches to its own session, replays its own batch list with a bounded
// pipeline of in-flight PushBatch frames, honors the server's v4
// backpressure (an Overloaded reply triggers a go-back-N resend from the
// first rejected sequence number, with exponential backoff), and ends
// with a Query whose Snapshot the caller cross-checks against an
// in-process reference.
//
// One thread, one epoll set: the point of the gauntlet is that BOTH ends
// of the socket hold their thread count flat while the connection count
// scales. Used by varstream_loadgen --connections=N and by the
// service/connections bench_service row.

#ifndef VARSTREAM_SERVICE_MANY_CLIENT_H_
#define VARSTREAM_SERVICE_MANY_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "obs/metrics.h"
#include "service/protocol.h"
#include "stream/update.h"

namespace varstream {

/// One connection's whole script: the session it attaches to and the
/// exact batches it pushes (batch index == PushBatch seq).
struct ManyClientConn {
  HelloFrame hello;
  std::vector<std::vector<CountUpdate>> batches;
};

struct ManyClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Max unacked PushBatch frames per connection. Values past the
  /// server's pending-batch cap deliberately provoke Overloaded replies
  /// (the overload drill); 1 disables pipelining entirely.
  uint32_t pipeline = 4;
  /// When nonzero, keep every connection open for this long after all
  /// snapshots arrive — the window in which the CI job samples the
  /// server's /proc thread count under full connection load.
  uint32_t hold_ms = 0;
  /// Invoked once, right when the hold window opens (all pushes acked,
  /// all snapshots in hand, every connection still open).
  std::function<void()> on_hold;
};

struct ManyClientResult {
  /// Final server snapshot per connection, indexed like the input.
  std::vector<SnapshotFrame> snapshots;
  /// Overloaded replies observed across all connections (0 on an
  /// unsaturated server; the overload drill asserts > 0). Split the same
  /// way the server splits them: `overload_rejections` counts bounces of
  /// in-order batches that hit the pending cap / bytes budget;
  /// `seq_gap_rejections` counts the go-back-N collateral — pipelined
  /// frames behind a bounce whose seq no longer matches the session
  /// cursor. The sums cross-check against the server's stats line.
  uint64_t overload_rejections = 0;
  uint64_t seq_gap_rejections = 0;
  /// Client-observed push→ack round trip in microseconds, one sample per
  /// acked batch across the whole fleet (rejected batches are not
  /// samples; a resent batch restarts its clock at the resend). Same
  /// bucket geometry as the server's metric histograms, so loadgen
  /// percentiles are directly comparable to a MetricsDump scrape.
  LogHistogram push_ack_us{kMetricsGamma};
  std::string error;  // empty on success
};

/// Runs the whole fleet to completion. Returns false with result->error
/// set on any connection failure, server Error frame, or protocol
/// violation (acks out of order, seq mismatch).
bool RunManyClients(const ManyClientOptions& options,
                    std::vector<ManyClientConn> conns,
                    ManyClientResult* result);

}  // namespace varstream

#endif  // VARSTREAM_SERVICE_MANY_CLIENT_H_
