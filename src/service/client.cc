#include "service/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace varstream {

namespace {

/// SendAllBytes (service/protocol.h) with the client's error reporting;
/// an SO_SNDTIMEO expiry (EAGAIN) is named as the deadline it is.
bool SendAll(int fd, const uint8_t* data, size_t size, int io_timeout_ms,
             std::string* error) {
  if (SendAllBytes(fd, data, size)) return true;
  if (error != nullptr) {
    if ((errno == EAGAIN || errno == EWOULDBLOCK) && io_timeout_ms > 0) {
      *error = "send deadline (" + std::to_string(io_timeout_ms) +
               " ms) expired — the peer stopped draining its socket";
    } else {
      *error = "send(): " + std::string(strerror(errno));
    }
  }
  return false;
}

void SetSocketTimeouts(int fd, int io_timeout_ms) {
  if (io_timeout_ms <= 0) return;
  timeval tv{};
  tv.tv_sec = io_timeout_ms / 1000;
  tv.tv_usec = (io_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

VarstreamClient::~VarstreamClient() { Close(); }

void VarstreamClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  read_buffer_.clear();
  next_seq_ = 0;  // sequence numbers are per-connection
}

bool VarstreamClient::Connect(const std::string& host, uint16_t port,
                              std::string* error) {
  Close();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) {
      *error = "cannot parse host '" + host +
               "' (the client speaks IPv4 dotted-quad or 'localhost')";
    }
    return false;
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = "socket(): " + std::string(strerror(errno));
    return false;
  }
  const std::string where = resolved + ":" + std::to_string(port);
  if (deadlines_.connect_timeout_ms > 0) {
    // Bounded handshake: non-blocking connect, poll for writability,
    // then read back SO_ERROR. A dead or blackholed peer surfaces as a
    // loud timeout instead of the kernel's minutes-long default.
    int flags = ::fcntl(fd_, F_GETFL, 0);
    ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
      if (error != nullptr) {
        *error = "connect(" + where + "): " + strerror(errno);
      }
      Close();
      return false;
    }
    if (rc != 0) {
      pollfd pfd{fd_, POLLOUT, 0};
      int ready = ::poll(&pfd, 1, deadlines_.connect_timeout_ms);
      if (ready == 0) {
        if (error != nullptr) {
          *error = "connect(" + where + "): deadline (" +
                   std::to_string(deadlines_.connect_timeout_ms) +
                   " ms) expired — is the server up?";
        }
        Close();
        return false;
      }
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      if (ready < 0 ||
          ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
          so_error != 0) {
        if (error != nullptr) {
          *error = "connect(" + where +
                   "): " + strerror(so_error != 0 ? so_error : errno);
        }
        Close();
        return false;
      }
    }
    ::fcntl(fd_, F_SETFL, flags);
  } else if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = "connect(" + where + "): " + strerror(errno);
    }
    Close();
    return false;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  SetSocketTimeouts(fd_, deadlines_.io_timeout_ms);
  return true;
}

bool VarstreamClient::RawSend(std::span<const uint8_t> bytes,
                              std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "not connected";
    return false;
  }
  return SendAll(fd_, bytes.data(), bytes.size(), deadlines_.io_timeout_ms,
                 error);
}

bool VarstreamClient::RawReadFrame(Frame* frame, std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "not connected";
    return false;
  }
  for (;;) {
    size_t consumed = 0;
    std::string decode_error;
    DecodeStatus status =
        DecodeFrame(read_buffer_, frame, &consumed, &decode_error);
    if (status == DecodeStatus::kOk) {
      read_buffer_.erase(read_buffer_.begin(),
                         read_buffer_.begin() + consumed);
      return true;
    }
    if (status == DecodeStatus::kMalformed) {
      if (error != nullptr) {
        *error = "malformed frame from server: " + decode_error;
      }
      return false;
    }
    uint8_t chunk[65536];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      if (error != nullptr) *error = "server closed the connection";
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) {
        if ((errno == EAGAIN || errno == EWOULDBLOCK) &&
            deadlines_.io_timeout_ms > 0) {
          *error = "read deadline (" +
                   std::to_string(deadlines_.io_timeout_ms) +
                   " ms) expired waiting for a frame — the peer is up but "
                   "not answering (hung or mid-crash)";
        } else {
          *error = "recv(): " + std::string(strerror(errno));
        }
      }
      return false;
    }
    read_buffer_.insert(read_buffer_.end(), chunk, chunk + n);
  }
}

bool VarstreamClient::Request(FrameType type,
                              std::span<const uint8_t> payload,
                              FrameType expected, Frame* reply,
                              std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "not connected";
    return false;
  }
  std::vector<uint8_t> wire;
  wire.reserve(kFrameOverhead + payload.size());
  AppendFrame(&wire, type, payload);
  if (!SendAll(fd_, wire.data(), wire.size(), deadlines_.io_timeout_ms,
               error)) {
    return false;
  }
  if (!RawReadFrame(reply, error)) return false;
  if (reply->type == FrameType::kError) {
    ErrorFrame server_error;
    if (error != nullptr) {
      *error = DecodeError(reply->payload, &server_error)
                   ? "server: " + server_error.message
                   : "server sent an undecodable error frame";
    }
    return false;
  }
  if (reply->type != expected) {
    if (error != nullptr) {
      *error = std::string("expected ") + FrameTypeName(expected) +
               " reply, got " + FrameTypeName(reply->type);
    }
    return false;
  }
  return true;
}

bool VarstreamClient::Hello(const HelloFrame& hello, HelloAckFrame* ack,
                            std::string* error) {
  Frame reply;
  if (!Request(FrameType::kHello, EncodeHello(hello), FrameType::kHelloAck,
               &reply, error)) {
    return false;
  }
  if (!DecodeHelloAck(reply.payload, ack)) {
    if (error != nullptr) *error = "malformed hello-ack from server";
    return false;
  }
  return true;
}

bool VarstreamClient::Push(std::span<const CountUpdate> updates,
                           PushAckFrame* ack, std::string* error) {
  constexpr int kMaxOverloadRetries = 64;
  const uint64_t seq = next_seq_;
  // Frame the batch once, straight into wire form (no intermediate payload
  // vector); retries resend the same bytes.
  std::vector<uint8_t> wire;
  AppendPushBatchFrame(&wire, seq, updates);
  for (int attempt = 0;; ++attempt) {
    if (fd_ < 0) {
      if (error != nullptr) *error = "not connected";
      return false;
    }
    if (!SendAll(fd_, wire.data(), wire.size(), deadlines_.io_timeout_ms,
                 error)) {
      return false;
    }
    Frame reply;
    if (!RawReadFrame(&reply, error)) return false;
    if (reply.type == FrameType::kOverloaded) {
      OverloadedFrame overloaded;
      if (!DecodeOverloaded(reply.payload, &overloaded)) {
        if (error != nullptr) *error = "malformed overloaded frame";
        return false;
      }
      if (attempt >= kMaxOverloadRetries) {
        if (error != nullptr) {
          *error = "server overloaded: session queue stayed full "
                   "(pending=" + std::to_string(overloaded.pending) +
                   " cap=" + std::to_string(overloaded.cap) + ") after " +
                   std::to_string(attempt) + " backed-off retries";
        }
        return false;
      }
      ++overload_retries_;
      const int backoff_ms = 1 << std::min(attempt, 6);
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      continue;
    }
    if (reply.type == FrameType::kError) {
      ErrorFrame server_error;
      if (error != nullptr) {
        *error = DecodeError(reply.payload, &server_error)
                     ? "server: " + server_error.message
                     : "server sent an undecodable error frame";
      }
      return false;
    }
    if (reply.type != FrameType::kPushAck ||
        !DecodePushAck(reply.payload, ack)) {
      if (error != nullptr) *error = "malformed push-ack from server";
      return false;
    }
    if (ack->seq != seq) {
      if (error != nullptr) {
        *error = "push-ack sequence mismatch: sent " + std::to_string(seq) +
                 ", server acked " + std::to_string(ack->seq);
      }
      return false;
    }
    ++next_seq_;
    return true;
  }
}

bool VarstreamClient::Query(SnapshotFrame* snapshot, std::string* error) {
  Frame reply;
  if (!Request(FrameType::kQuery, {}, FrameType::kSnapshot, &reply,
               error)) {
    return false;
  }
  if (!DecodeSnapshot(reply.payload, snapshot)) {
    if (error != nullptr) *error = "malformed snapshot from server";
    return false;
  }
  return true;
}

bool VarstreamClient::QueryRange(const QueryRangeFrame& query,
                                 QueryRangeResultFrame* result,
                                 std::string* error) {
  Frame reply;
  if (!Request(FrameType::kQueryRange, EncodeQueryRange(query),
               FrameType::kQueryRangeResult, &reply, error)) {
    return false;
  }
  if (!DecodeQueryRangeResult(reply.payload, result)) {
    if (error != nullptr) *error = "malformed query-range result from server";
    return false;
  }
  return true;
}

bool VarstreamClient::Checkpoint(std::string* checkpoint_path,
                                 std::string* error) {
  Frame reply;
  if (!Request(FrameType::kCheckpoint, {}, FrameType::kCheckpointAck,
               &reply, error)) {
    return false;
  }
  CheckpointAckFrame ack;
  if (!DecodeCheckpointAck(reply.payload, &ack)) {
    if (error != nullptr) *error = "malformed checkpoint-ack from server";
    return false;
  }
  if (checkpoint_path != nullptr) *checkpoint_path = ack.path;
  return true;
}

bool VarstreamClient::StateDump(const std::string& session,
                                StateDumpResultFrame* result,
                                std::string* error) {
  StateDumpFrame dump;
  dump.session = session;
  Frame reply;
  if (!Request(FrameType::kStateDump, EncodeStateDump(dump),
               FrameType::kStateDumpResult, &reply, error)) {
    return false;
  }
  if (!DecodeStateDumpResult(reply.payload, result)) {
    if (error != nullptr) *error = "malformed state-dump result from server";
    return false;
  }
  return true;
}

bool VarstreamClient::Topology(TopologyInfoFrame* info, std::string* error) {
  Frame reply;
  if (!Request(FrameType::kTopology, {}, FrameType::kTopologyInfo, &reply,
               error)) {
    return false;
  }
  if (!DecodeTopologyInfo(reply.payload, info)) {
    if (error != nullptr) *error = "malformed topology-info from server";
    return false;
  }
  return true;
}

bool VarstreamClient::MetricsDump(MetricsDumpResultFrame* result,
                                  std::string* error) {
  MetricsDumpFrame dump;
  Frame reply;
  if (!Request(FrameType::kMetricsDump, EncodeMetricsDump(dump),
               FrameType::kMetricsDumpResult, &reply, error)) {
    return false;
  }
  if (!DecodeMetricsDumpResult(reply.payload, result)) {
    if (error != nullptr) *error = "malformed metrics-dump result from server";
    return false;
  }
  if (result->version != kMetricsDumpVersion) {
    if (error != nullptr) {
      *error = "metrics-dump version mismatch: server answered v" +
               std::to_string(result->version) + ", client speaks v" +
               std::to_string(kMetricsDumpVersion);
    }
    return false;
  }
  return true;
}

bool VarstreamClient::Shutdown(std::string* error) {
  Frame reply;
  return Request(FrameType::kShutdown, {}, FrameType::kShutdownAck, &reply,
                 error);
}

}  // namespace varstream
