#include "service/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace varstream {

namespace {

/// SendAllBytes (service/protocol.h) with the client's error reporting.
bool SendAll(int fd, const uint8_t* data, size_t size, std::string* error) {
  if (SendAllBytes(fd, data, size)) return true;
  if (error != nullptr) {
    *error = "send(): " + std::string(strerror(errno));
  }
  return false;
}

}  // namespace

VarstreamClient::~VarstreamClient() { Close(); }

void VarstreamClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  read_buffer_.clear();
}

bool VarstreamClient::Connect(const std::string& host, uint16_t port,
                              std::string* error) {
  Close();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) {
      *error = "cannot parse host '" + host +
               "' (the client speaks IPv4 dotted-quad or 'localhost')";
    }
    return false;
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = "socket(): " + std::string(strerror(errno));
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = "connect(" + resolved + ":" + std::to_string(port) +
               "): " + strerror(errno);
    }
    Close();
    return false;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return true;
}

bool VarstreamClient::RawSend(std::span<const uint8_t> bytes,
                              std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "not connected";
    return false;
  }
  return SendAll(fd_, bytes.data(), bytes.size(), error);
}

bool VarstreamClient::RawReadFrame(Frame* frame, std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "not connected";
    return false;
  }
  for (;;) {
    size_t consumed = 0;
    std::string decode_error;
    DecodeStatus status =
        DecodeFrame(read_buffer_, frame, &consumed, &decode_error);
    if (status == DecodeStatus::kOk) {
      read_buffer_.erase(read_buffer_.begin(),
                         read_buffer_.begin() + consumed);
      return true;
    }
    if (status == DecodeStatus::kMalformed) {
      if (error != nullptr) {
        *error = "malformed frame from server: " + decode_error;
      }
      return false;
    }
    uint8_t chunk[65536];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      if (error != nullptr) *error = "server closed the connection";
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) {
        *error = "recv(): " + std::string(strerror(errno));
      }
      return false;
    }
    read_buffer_.insert(read_buffer_.end(), chunk, chunk + n);
  }
}

bool VarstreamClient::Request(FrameType type,
                              std::span<const uint8_t> payload,
                              FrameType expected, Frame* reply,
                              std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "not connected";
    return false;
  }
  std::vector<uint8_t> wire;
  wire.reserve(kFrameOverhead + payload.size());
  AppendFrame(&wire, type, payload);
  if (!SendAll(fd_, wire.data(), wire.size(), error)) return false;
  if (!RawReadFrame(reply, error)) return false;
  if (reply->type == FrameType::kError) {
    ErrorFrame server_error;
    if (error != nullptr) {
      *error = DecodeError(reply->payload, &server_error)
                   ? "server: " + server_error.message
                   : "server sent an undecodable error frame";
    }
    return false;
  }
  if (reply->type != expected) {
    if (error != nullptr) {
      *error = std::string("expected ") + FrameTypeName(expected) +
               " reply, got " + FrameTypeName(reply->type);
    }
    return false;
  }
  return true;
}

bool VarstreamClient::Hello(const HelloFrame& hello, HelloAckFrame* ack,
                            std::string* error) {
  Frame reply;
  if (!Request(FrameType::kHello, EncodeHello(hello), FrameType::kHelloAck,
               &reply, error)) {
    return false;
  }
  if (!DecodeHelloAck(reply.payload, ack)) {
    if (error != nullptr) *error = "malformed hello-ack from server";
    return false;
  }
  return true;
}

bool VarstreamClient::Push(std::span<const CountUpdate> updates,
                           PushAckFrame* ack, std::string* error) {
  Frame reply;
  if (!Request(FrameType::kPushBatch, EncodePushBatch(updates),
               FrameType::kPushAck, &reply, error)) {
    return false;
  }
  if (!DecodePushAck(reply.payload, ack)) {
    if (error != nullptr) *error = "malformed push-ack from server";
    return false;
  }
  return true;
}

bool VarstreamClient::Query(SnapshotFrame* snapshot, std::string* error) {
  Frame reply;
  if (!Request(FrameType::kQuery, {}, FrameType::kSnapshot, &reply,
               error)) {
    return false;
  }
  if (!DecodeSnapshot(reply.payload, snapshot)) {
    if (error != nullptr) *error = "malformed snapshot from server";
    return false;
  }
  return true;
}

bool VarstreamClient::QueryRange(const QueryRangeFrame& query,
                                 QueryRangeResultFrame* result,
                                 std::string* error) {
  Frame reply;
  if (!Request(FrameType::kQueryRange, EncodeQueryRange(query),
               FrameType::kQueryRangeResult, &reply, error)) {
    return false;
  }
  if (!DecodeQueryRangeResult(reply.payload, result)) {
    if (error != nullptr) *error = "malformed query-range result from server";
    return false;
  }
  return true;
}

bool VarstreamClient::Checkpoint(std::string* checkpoint_path,
                                 std::string* error) {
  Frame reply;
  if (!Request(FrameType::kCheckpoint, {}, FrameType::kCheckpointAck,
               &reply, error)) {
    return false;
  }
  CheckpointAckFrame ack;
  if (!DecodeCheckpointAck(reply.payload, &ack)) {
    if (error != nullptr) *error = "malformed checkpoint-ack from server";
    return false;
  }
  if (checkpoint_path != nullptr) *checkpoint_path = ack.path;
  return true;
}

bool VarstreamClient::Shutdown(std::string* error) {
  Frame reply;
  return Request(FrameType::kShutdown, {}, FrameType::kShutdownAck, &reply,
                 error);
}

}  // namespace varstream
