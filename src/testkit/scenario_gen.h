// Seeded random Scenario generation over the full registry cross-product
// (tracker x stream x assigner x k x eps x n x batch x shards x stream
// params), honoring the monotone / mergeable compatibility predicates
// from registry metadata (core/compat.h) — incompatible pairs are never
// produced, mirroring the suite expansion's skip decisions exactly.
//
// The generator is the input half of the conformance testkit: every
// iteration of the check runner (testkit/runner.h) draws one scenario,
// materializes its stream into a replayable StreamTrace, and hands the
// pair to each paper-theorem oracle (testkit/oracles.h). Determinism is
// total: the same (GenOptions, seed) produces the same scenario sequence
// on any machine and thread count, which is what lets a CI failure be
// replayed locally by seed alone.
//
//   testkit::ScenarioGenerator gen({}, /*seed=*/42);
//   testkit::GeneratedCase c = gen.Next();
//   // c.scenario (names resolved, pairing admissible), c.trace (the
//   // materialized updates; any oracle can replay it as often as needed)

#ifndef VARSTREAM_TESTKIT_SCENARIO_GEN_H_
#define VARSTREAM_TESTKIT_SCENARIO_GEN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/options.h"
#include "core/scenario.h"
#include "core/tracker.h"
#include "stream/trace.h"

namespace varstream {
namespace testkit {

/// The axes the generator samples. Empty name lists mean "every
/// registered name"; the numeric lists are sampled uniformly (repeat an
/// entry to weight it). Defaults cover the whole surface the repo grew
/// across PRs 1-4: serial and sharded engines, unit and batched
/// delivery, one to sixteen sites.
struct GenOptions {
  std::vector<std::string> trackers;   ///< empty = all registered
  std::vector<std::string> streams;    ///< empty = all registered
  std::vector<std::string> assigners;  ///< empty = all registered
  std::vector<uint32_t> site_counts = {1, 2, 3, 4, 8, 16};
  std::vector<double> epsilons = {0.05, 0.08, 0.1, 0.15, 0.2, 0.3, 0.4};
  /// Update counts are log-uniform in [min_updates, max_updates].
  uint64_t min_updates = 200;
  uint64_t max_updates = 4000;
  /// batch_size = 1 appears twice so half the scenarios validate per
  /// update (the strictest accuracy observation grid).
  std::vector<uint64_t> batch_sizes = {1, 1, 16, 128, 512};
  /// Probability a mergeable tracker is run through the sharded engine
  /// (worker count then uniform in 1..k).
  double sharded_fraction = 0.5;
  /// Probability each known stream/assigner knob is jittered off its
  /// default (per-stream knob tables live in scenario_gen.cc).
  double param_jitter = 0.3;
};

/// One generated conformance case: the scenario plus its stream
/// materialized into a trace over the tracker's actual site space.
/// Oracles replay the trace (never the live generator), so every oracle
/// — and the shrinker — sees byte-identical input.
struct GeneratedCase {
  Scenario scenario;
  StreamTrace trace;
};

/// The TrackerOptions MakeCaseTracker constructs from: scenario fields
/// plus the derived tracker seed and the trace's f(0). Exposed because
/// the checkpoint and service oracles must hand the server / checkpoint
/// entry the exact construction options.
TrackerOptions CaseTrackerOptions(const Scenario& scenario,
                                  int64_t initial_value);

/// Constructs the tracker a scenario describes: registry-constructed,
/// wrapped in the sharded engine when num_shards >= 1 is passed, seeded
/// with ScenarioTrackerSeed(scenario), starting from `initial_value`
/// (the trace's f(0)). The one tracker-construction path shared by every
/// oracle, the shrinker, and --replay, mirroring RunScenario's. Returns
/// nullptr with *error set for unknown names / inadmissible pairings.
std::unique_ptr<DistributedTracker> MakeCaseTracker(const Scenario& scenario,
                                                    uint32_t num_shards,
                                                    int64_t initial_value,
                                                    std::string* error);

/// Materializes the scenario's stream: resolves the stream through the
/// StreamRegistry with the scenario's derived stream seed, dealt across
/// the tracker's actual site space (single-site pins k = 1), and records
/// scenario.n updates. Returns false with *error on unknown names.
bool MaterializeCase(const Scenario& scenario, GeneratedCase* out,
                     std::string* error);

class ScenarioGenerator {
 public:
  /// Resolves the option lists against the registries. Trackers whose
  /// compatible stream set is empty under `options` are dropped; if
  /// nothing remains, ok() is false and error() names the conflict.
  ScenarioGenerator(const GenOptions& options, uint64_t seed);

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  /// Draws the next scenario (without materializing its trace). Only
  /// admissible pairings are produced. Requires ok().
  Scenario Next();

  /// Next() + MaterializeCase. Requires ok().
  GeneratedCase NextCase();

 private:
  GenOptions options_;
  Rng rng_;
  std::string error_;
  std::vector<std::string> trackers_;
  /// streams_per_tracker_[i]: the streams tracker i may consume.
  std::vector<std::vector<std::string>> streams_per_tracker_;
  std::vector<std::string> assigners_;
};

}  // namespace testkit
}  // namespace varstream

#endif  // VARSTREAM_TESTKIT_SCENARIO_GEN_H_
