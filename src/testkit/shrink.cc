#include "testkit/shrink.h"

#include <algorithm>
#include <utility>

#include "common/format.h"

namespace varstream {
namespace testkit {

namespace {

GeneratedCase WithTrace(const GeneratedCase& base, StreamTrace trace) {
  GeneratedCase out;
  out.scenario = base.scenario;
  out.scenario.n = trace.size();
  out.trace = std::move(trace);
  return out;
}

}  // namespace

ShrinkResult ShrinkFailure(const Oracle& oracle, const GeneratedCase& failing,
                           const ShrinkOptions& options) {
  ShrinkResult result;
  result.minimal = failing;
  result.original_updates = failing.trace.size();

  // Re-running the oracle is the only source of truth; a candidate is
  // accepted exactly when it still fails.
  auto still_fails = [&](const GeneratedCase& candidate,
                         std::string* detail) {
    if (result.attempts >= options.max_attempts) return false;
    ++result.attempts;
    OracleOutcome outcome = oracle.Check(candidate);
    if (outcome.status != OracleOutcome::Status::kFail) return false;
    *detail = std::move(outcome.detail);
    return true;
  };

  auto try_accept = [&](GeneratedCase candidate) {
    std::string detail;
    if (!still_fails(candidate, &detail)) return false;
    result.minimal = std::move(candidate);
    result.detail = std::move(detail);
    return true;
  };

  // 1. Truncation: halve while the prefix still fails, then trim the
  // tail in finer steps.
  auto truncate_pass = [&] {
    while (result.minimal.trace.size() > 1) {
      uint64_t half = result.minimal.trace.size() / 2;
      if (!try_accept(
              WithTrace(result.minimal, result.minimal.trace.Prefix(half)))) {
        break;
      }
    }
    for (;;) {
      uint64_t size = result.minimal.trace.size();
      if (size <= 1) break;
      uint64_t step = std::max<uint64_t>(size / 8, 1);
      if (!try_accept(WithTrace(result.minimal,
                                result.minimal.trace.Prefix(size - step)))) {
        break;
      }
    }
  };
  truncate_pass();

  // 2. Unit batches.
  if (result.minimal.scenario.batch_size > 1) {
    GeneratedCase candidate = result.minimal;
    candidate.scenario.batch_size = 1;
    try_accept(std::move(candidate));
  }

  // 3. Fewer worker shards (1 keeps the sharded engine with minimal
  // threading; 0 drops to the serial engine when the failure survives
  // that too).
  for (uint32_t shards : {1u, 0u}) {
    if (result.minimal.scenario.num_shards <= shards) continue;
    GeneratedCase candidate = result.minimal;
    candidate.scenario.num_shards = shards;
    try_accept(std::move(candidate));
  }

  // 4. Smaller site space: remap sites and re-truncate (a smaller k
  // often unlocks a shorter failing prefix). Changing k changes the
  // derived tracker seed — irrelevant, since acceptance re-verifies.
  for (uint32_t k : {1u, 2u, result.minimal.scenario.num_sites / 2}) {
    uint32_t current = result.minimal.scenario.num_sites;
    if (k == 0 || k >= current) continue;
    GeneratedCase candidate = result.minimal;
    candidate.scenario.num_sites = k;
    candidate.scenario.num_shards =
        std::min(candidate.scenario.num_shards, k);
    candidate.trace = result.minimal.trace.RemapSites(k);
    if (try_accept(std::move(candidate))) truncate_pass();
  }

  if (result.detail.empty()) {
    // No candidate was accepted; re-derive the detail from the original.
    OracleOutcome outcome = oracle.Check(result.minimal);
    result.detail = outcome.detail;
    ++result.attempts;
  }
  return result;
}

std::string ReplayCommand(const GeneratedCase& c, const std::string& oracle,
                          const std::string& trace_path) {
  const Scenario& s = c.scenario;
  std::string cmd = "varstream_check --replay=" + trace_path +
                    " --oracle=" + oracle + " --tracker=" + s.tracker +
                    " --stream=" + s.stream + " --assigner=" + s.assigner +
                    " --sites=" + std::to_string(s.num_sites) +
                    " --eps=" + FormatDouble("%g", s.epsilon) +
                    " --seed=" + std::to_string(s.seed) +
                    " --batch=" + std::to_string(s.batch_size) +
                    " --period=" + std::to_string(s.period);
  if (s.num_shards > 0) {
    cmd += " --shards=" + std::to_string(s.num_shards);
  }
  if (!s.params.empty()) {
    // The updates come from the trace file, so params only keep the
    // repro self-describing; one combined flag (FlagParser keeps the
    // last occurrence of a repeated flag).
    std::string joined;
    for (const auto& [key, value] : s.params) {
      if (!joined.empty()) joined += ",";
      joined += key + "=" + FormatDouble("%g", value);
    }
    cmd += " --params=" + joined;
  }
  return cmd;
}

}  // namespace testkit
}  // namespace varstream
