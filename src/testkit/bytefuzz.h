// Deterministic byte-level corruption sweeps for decoder robustness
// tests: given a valid encoded buffer, enumerate the classic corruption
// classes and hand each mutant to the decoder under test, which must
// answer with a loud malformed/false — never a crash, hang, or silent
// accept. Everything is seeded and budgeted, so the sweep is exhaustive
// on small buffers and a reproducible sample on large ones.
//
// Used by tests/wire_fuzz_test.cc against the service frame protocol
// (service/protocol.h) and the varstream-ckpt-v1 checkpoint decoder
// (service/checkpoint.h), and reusable against any future codec.

#ifndef VARSTREAM_TESTKIT_BYTEFUZZ_H_
#define VARSTREAM_TESTKIT_BYTEFUZZ_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace varstream {
namespace testkit {

/// One corrupted buffer plus a description naming the corruption, so an
/// assertion failure says exactly which mutant broke the decoder.
struct Mutation {
  std::vector<uint8_t> bytes;
  std::string description;
};

/// Every strict prefix when the buffer is short, otherwise `budget`
/// seeded sample lengths (always including 0 and size-1). A decoder must
/// treat all of these as incomplete or malformed.
std::vector<Mutation> TruncationSweep(std::span<const uint8_t> bytes,
                                      uint64_t seed, size_t budget = 512);

/// Single-bit flips: every bit when the buffer is at most budget/8
/// bytes, otherwise `budget` seeded positions. A checksummed format must
/// reject every one of these (CRC-32 detects all single-bit errors).
std::vector<Mutation> BitFlipSweep(std::span<const uint8_t> bytes,
                                   uint64_t seed, size_t budget = 2048);

/// Lies in the leading u32 little-endian length field: zero, one less,
/// one more, huge, and all-ones — the classic allocate-gigabytes /
/// read-out-of-bounds probes. Empty result when the buffer is shorter
/// than 4 bytes.
std::vector<Mutation> LengthLieSweep(std::span<const uint8_t> bytes);

/// Every single-bit flip inside the trailing 4 bytes (where this
/// repository's codecs keep their CRC-32).
std::vector<Mutation> CrcSmashSweep(std::span<const uint8_t> bytes);

/// The concatenation of all four sweeps — the full corruption matrix.
std::vector<Mutation> CorruptionSweep(std::span<const uint8_t> bytes,
                                      uint64_t seed);

}  // namespace testkit
}  // namespace varstream

#endif  // VARSTREAM_TESTKIT_BYTEFUZZ_H_
