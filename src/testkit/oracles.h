// Executable paper invariants. Each oracle turns one of the paper's
// guarantees (or a differential engineering invariant the repo has
// accumulated on top of them) into a pass/fail check over a generated
// case (testkit/scenario_gen.h):
//
//   accuracy    |f(t) - f̂(t)| <= eps * |f(t)| at every observation
//               against an exact naive shadow (Theorems 3.5 / 3.8); for
//               the sharded engine the per-partition form
//               eps * sum_i |f_i(t)| (core/sharded.h); randomized
//               trackers get a high-probability budget: the guarantee
//               allows failure probability 1/3 per timestep, so the
//               observed violation rate must stay under 1/3 plus a
//               Hoeffding sampling term.
//   cost        total messages within the O((k/eps) * v) envelope with
//               explicit constants — hard for the deterministic tracker
//               (Theorem 3.5), advisory for the randomized/baseline
//               expectation bounds.
//   monotone    registry metadata is truthful: streams registered
//               monotone emit only positive deltas, and insertion-only
//               trackers were only paired with monotone streams.
//   shard-parity     Snapshot and SerializeState are bit-identical for
//                    every worker count W in {1, 2, k} (plus the
//                    scenario's own W) — the core sharded-engine claim;
//                    naive/periodic additionally equal the serial
//                    tracker exactly.
//   checkpoint-roundtrip  run prefix -> EncodeCheckpoint -> Decode ->
//                    RestoreState into a fresh tracker (different worker
//                    count when sharded) -> run suffix == uninterrupted
//                    run, bit for bit (varstream-ckpt-v1).
//   service-parity   the wire path (VarstreamServer + VarstreamClient,
//                    real loopback TCP) equals the in-process run bit
//                    for bit, at a mid-stream live Query and at the end.
//   history-parity   the history store (src/history/): rows a real
//                    server retains and serves over QueryRange — raw and
//                    downsampled — equal an in-process shadow sampler
//                    bit for bit, and the checkpointed history section
//                    resumes (under a different worker count) into the
//                    exact rows of the uninterrupted run.
//   hierarchy-parity the two-level hierarchy (src/hierarchy/): a real
//                    RootAggregator over in-process leaves, with one
//                    leaf kill -9'd at a mid-stream batch boundary and
//                    recovered (alternating by seed between a
//                    checkpoint-backed restore and a full journal
//                    replay), must end with Query, StateDump, and
//                    QueryRange answers byte-identical to the
//                    uninterrupted single-process run.
//
// Oracles are stateless singletons; Check() may be called concurrently
// from the runner's worker threads and must derive everything from the
// case alone.

#ifndef VARSTREAM_TESTKIT_ORACLES_H_
#define VARSTREAM_TESTKIT_ORACLES_H_

#include <string>
#include <vector>

#include "testkit/scenario_gen.h"

namespace varstream {
namespace testkit {

struct OracleOutcome {
  enum class Status { kPass, kFail, kSkip };
  Status status = Status::kPass;
  std::string detail;  ///< on kFail: what was violated, with numbers

  static OracleOutcome Pass() { return {Status::kPass, ""}; }
  static OracleOutcome Fail(std::string detail) {
    return {Status::kFail, std::move(detail)};
  }
  static OracleOutcome Skip(std::string reason) {
    return {Status::kSkip, std::move(reason)};
  }
};

class Oracle {
 public:
  virtual ~Oracle() = default;

  /// Stable kebab-case identifier (--oracle flag, JSON report key).
  virtual std::string name() const = 0;

  /// Hard failures fail the check run; advisory ones are reported in the
  /// JSON but do not gate (expectation bounds that a legal random run
  /// can exceed). May depend on the scenario (the cost envelope is a
  /// theorem for the deterministic tracker, an expectation otherwise).
  virtual bool hard(const Scenario& scenario) const {
    (void)scenario;
    return true;
  }

  /// Whether this oracle has anything to say about the scenario (e.g.
  /// shard parity needs a mergeable tracker). Non-applicable scenarios
  /// count as skipped, not passed.
  virtual bool Applicable(const Scenario& scenario) const = 0;

  /// Runs the invariant over the materialized case. Must be
  /// deterministic in the case (shrinking re-runs it many times) and
  /// thread-safe.
  virtual OracleOutcome Check(const GeneratedCase& c) const = 0;
};

/// The built-in oracles, in reporting order. Pointers are to static
/// singletons and never invalidated.
const std::vector<const Oracle*>& AllOracles();

/// Lookup by name(); nullptr when unknown.
const Oracle* FindOracle(const std::string& name);

/// Sorted oracle names, for --list-oracles and error messages.
std::vector<std::string> OracleNames();

}  // namespace testkit
}  // namespace varstream

#endif  // VARSTREAM_TESTKIT_ORACLES_H_
