#include "testkit/scenario_gen.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "core/compat.h"
#include "core/registry.h"
#include "core/sharded.h"
#include "stream/source.h"

namespace varstream {
namespace testkit {

namespace {

/// Known stream / assigner knobs the generator may jitter off their
/// defaults. The registries do not expose knob metadata, so this table
/// names the documented ones (stream/generators.cc, site_assigner.cc);
/// unknown params are ignored by GetParam, so the table can only widen
/// coverage, never break a stream.
struct Knob {
  const char* owner;  // stream or assigner name
  const char* param;
  double values[3];
};

constexpr Knob kKnobs[] = {
    {"sawtooth", "up", {2, 4, 8}},
    {"sawtooth", "down", {1, 2, 4}},
    {"biased-walk", "mu", {0.05, 0.1, 0.3}},
    {"oscillator", "amplitude", {16, 64, 256}},
    {"regime-switch", "jump", {10, 30, 80}},
    {"nearly-monotone", "drift", {0.05, 0.2, 0.4}},
    {"spike", "prob", {0.001, 0.005, 0.01}},
    {"diurnal", "mu", {0.1, 0.2, 0.3}},
    {"large-step", "scale", {10, 50, 200}},
    {"skewed", "skew", {0.5, 1.0, 2.0}},
    {"burst", "burst", {16, 64, 256}},
};

}  // namespace

TrackerOptions CaseTrackerOptions(const Scenario& scenario,
                                  int64_t initial_value) {
  TrackerOptions topts;
  topts.num_sites = scenario.num_sites;
  topts.epsilon = scenario.epsilon;
  topts.seed = ScenarioTrackerSeed(scenario);
  topts.initial_value = initial_value;
  topts.period = scenario.period;
  return topts;
}

std::unique_ptr<DistributedTracker> MakeCaseTracker(const Scenario& scenario,
                                                    uint32_t num_shards,
                                                    int64_t initial_value,
                                                    std::string* error) {
  const TrackerRegistry& trackers = TrackerRegistry::Instance();
  if (!trackers.Contains(scenario.tracker)) {
    if (error != nullptr) {
      *error = "unknown tracker '" + scenario.tracker +
               "'; valid trackers: " + JoinNames(trackers.Names());
    }
    return nullptr;
  }
  TrackerOptions topts = CaseTrackerOptions(scenario, initial_value);
  if (num_shards >= 1) {
    return ShardedTracker::Create(scenario.tracker, topts, num_shards, error);
  }
  return trackers.Create(scenario.tracker, topts);
}

bool MaterializeCase(const Scenario& scenario, GeneratedCase* out,
                     std::string* error) {
  // A serial probe instance decides the actual site space (single-site
  // pins k = 1), mirroring RunScenario.
  std::unique_ptr<DistributedTracker> probe =
      MakeCaseTracker(scenario, 0, 0, error);
  if (probe == nullptr) return false;

  const StreamRegistry& streams = StreamRegistry::Instance();
  StreamSpec spec;
  spec.num_sites = probe->num_sites();
  spec.seed = ScenarioStreamSeed(scenario);
  spec.assigner = scenario.assigner;
  spec.params = scenario.params;
  std::unique_ptr<StreamSource> source = streams.Create(scenario.stream, spec);
  if (source == nullptr) {
    if (error != nullptr) {
      *error = "unknown stream '" + scenario.stream + "' or assigner '" +
               scenario.assigner + "'";
    }
    return false;
  }
  out->scenario = scenario;
  out->trace = RecordTrace(*source, scenario.n);
  return true;
}

ScenarioGenerator::ScenarioGenerator(const GenOptions& options, uint64_t seed)
    : options_(options), rng_(seed) {
  const TrackerRegistry& trackers = TrackerRegistry::Instance();
  const StreamRegistry& streams = StreamRegistry::Instance();

  std::vector<std::string> tracker_names =
      options.trackers.empty() ? trackers.Names() : options.trackers;
  std::vector<std::string> stream_names =
      options.streams.empty() ? streams.StreamNames() : options.streams;
  assigners_ =
      options.assigners.empty() ? streams.AssignerNames() : options.assigners;

  for (const std::string& tracker : tracker_names) {
    if (!trackers.Contains(tracker)) {
      error_ = "unknown tracker '" + tracker +
               "'; valid trackers: " + JoinNames(trackers.Names());
      return;
    }
  }
  for (const std::string& stream : stream_names) {
    if (!streams.ContainsStream(stream)) {
      error_ = "unknown stream '" + stream +
               "'; valid streams: " + JoinNames(streams.StreamNames());
      return;
    }
  }
  for (const std::string& assigner : assigners_) {
    if (!streams.ContainsAssigner(assigner)) {
      error_ = "unknown assigner '" + assigner +
               "'; valid assigners: " + JoinNames(streams.AssignerNames());
      return;
    }
  }

  for (const std::string& tracker : tracker_names) {
    std::vector<std::string> compatible;
    for (const std::string& stream : stream_names) {
      if (CheckTrackerStreamPairing(tracker, stream).ok) {
        compatible.push_back(stream);
      }
    }
    if (!compatible.empty()) {
      trackers_.push_back(tracker);
      streams_per_tracker_.push_back(std::move(compatible));
    }
  }
  if (trackers_.empty()) {
    error_ =
        "no admissible (tracker, stream) pairing under the focus filters "
        "(insertion-only trackers need a monotone stream)";
    return;
  }
  if (options_.site_counts.empty() || options_.epsilons.empty() ||
      options_.batch_sizes.empty() || options_.min_updates == 0 ||
      options_.max_updates < options_.min_updates) {
    error_ = "empty generation axis (sites / epsilons / batches / updates)";
  }
}

Scenario ScenarioGenerator::Next() {
  Scenario s;
  size_t ti = static_cast<size_t>(rng_.UniformBelow(trackers_.size()));
  s.tracker = trackers_[ti];
  const std::vector<std::string>& streams = streams_per_tracker_[ti];
  s.stream = streams[static_cast<size_t>(rng_.UniformBelow(streams.size()))];
  s.assigner = assigners_[static_cast<size_t>(
      rng_.UniformBelow(assigners_.size()))];
  s.num_sites = options_.site_counts[static_cast<size_t>(
      rng_.UniformBelow(options_.site_counts.size()))];
  s.epsilon = options_.epsilons[static_cast<size_t>(
      rng_.UniformBelow(options_.epsilons.size()))];

  // Update counts log-uniform across the range, so short and long runs
  // are equally represented per decade.
  double lo = static_cast<double>(options_.min_updates);
  double hi = static_cast<double>(options_.max_updates);
  s.n = static_cast<uint64_t>(
      lo * std::exp(rng_.NextDouble() * std::log(hi / lo)));
  s.n = std::clamp<uint64_t>(s.n, options_.min_updates, options_.max_updates);

  s.seed = rng_.NextU64();
  s.batch_size = options_.batch_sizes[static_cast<size_t>(
      rng_.UniformBelow(options_.batch_sizes.size()))];
  s.period = static_cast<uint64_t>(1) << rng_.UniformInt(4, 8);  // 16..256

  if (TrackerRegistry::Instance().IsMergeable(s.tracker) &&
      rng_.Bernoulli(options_.sharded_fraction)) {
    s.num_shards =
        static_cast<uint32_t>(1 + rng_.UniformBelow(s.num_sites));
  }

  for (const Knob& knob : kKnobs) {
    if (knob.owner != s.stream && knob.owner != s.assigner) continue;
    if (!rng_.Bernoulli(options_.param_jitter)) continue;
    s.params[knob.param] = knob.values[rng_.UniformBelow(3)];
  }
  return s;
}

GeneratedCase ScenarioGenerator::NextCase() {
  Scenario s = Next();
  GeneratedCase out;
  std::string error;
  if (!MaterializeCase(s, &out, &error)) {
    // Every name came from the registries and every pairing was checked,
    // so materialization cannot fail; treat it as the logic error it is.
    std::fprintf(stderr, "testkit: cannot materialize %s: %s\n",
                 s.Id().c_str(), error.c_str());
    std::abort();
  }
  return out;
}

}  // namespace testkit
}  // namespace varstream
