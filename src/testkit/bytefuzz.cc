#include "testkit/bytefuzz.h"

#include <algorithm>
#include <iterator>
#include <set>

#include "common/random.h"

namespace varstream {
namespace testkit {

namespace {

std::vector<uint8_t> ToVector(std::span<const uint8_t> bytes) {
  return std::vector<uint8_t>(bytes.begin(), bytes.end());
}

Mutation FlipBitAt(std::span<const uint8_t> bytes, size_t bit) {
  Mutation m;
  m.bytes = ToVector(bytes);
  m.bytes[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  m.description = "bit-flip at bit " + std::to_string(bit) + " (byte " +
                  std::to_string(bit / 8) + ")";
  return m;
}

}  // namespace

std::vector<Mutation> TruncationSweep(std::span<const uint8_t> bytes,
                                      uint64_t seed, size_t budget) {
  std::vector<Mutation> out;
  if (bytes.empty()) return out;
  std::set<size_t> lengths;
  if (bytes.size() <= budget) {
    for (size_t len = 0; len < bytes.size(); ++len) lengths.insert(len);
  } else {
    lengths.insert(0);
    lengths.insert(bytes.size() - 1);
    Rng rng(seed ^ 0x7121C473ull);
    while (lengths.size() < budget) {
      lengths.insert(static_cast<size_t>(rng.UniformBelow(bytes.size())));
    }
  }
  for (size_t len : lengths) {
    Mutation m;
    m.bytes.assign(bytes.begin(), bytes.begin() + len);
    m.description = "truncated to " + std::to_string(len) + " of " +
                    std::to_string(bytes.size()) + " bytes";
    out.push_back(std::move(m));
  }
  return out;
}

std::vector<Mutation> BitFlipSweep(std::span<const uint8_t> bytes,
                                   uint64_t seed, size_t budget) {
  std::vector<Mutation> out;
  const size_t total_bits = bytes.size() * 8;
  if (total_bits == 0) return out;
  if (total_bits <= budget) {
    for (size_t bit = 0; bit < total_bits; ++bit) {
      out.push_back(FlipBitAt(bytes, bit));
    }
    return out;
  }
  std::set<size_t> bits;
  Rng rng(seed ^ 0xB17F11Bull);
  while (bits.size() < budget) {
    bits.insert(static_cast<size_t>(rng.UniformBelow(total_bits)));
  }
  for (size_t bit : bits) out.push_back(FlipBitAt(bytes, bit));
  return out;
}

std::vector<Mutation> LengthLieSweep(std::span<const uint8_t> bytes) {
  std::vector<Mutation> out;
  if (bytes.size() < 4) return out;
  uint32_t declared = static_cast<uint32_t>(bytes[0]) |
                      static_cast<uint32_t>(bytes[1]) << 8 |
                      static_cast<uint32_t>(bytes[2]) << 16 |
                      static_cast<uint32_t>(bytes[3]) << 24;
  const uint32_t lies[] = {0u,
                           declared == 0 ? 1u : declared - 1,
                           declared + 1,
                           declared + 1000,
                           64u << 20,  // way past any payload cap
                           0xFFFFFFFFu};
  for (uint32_t lie : lies) {
    if (lie == declared) continue;
    Mutation m;
    m.bytes = ToVector(bytes);
    m.bytes[0] = static_cast<uint8_t>(lie);
    m.bytes[1] = static_cast<uint8_t>(lie >> 8);
    m.bytes[2] = static_cast<uint8_t>(lie >> 16);
    m.bytes[3] = static_cast<uint8_t>(lie >> 24);
    m.description = "length field lies " + std::to_string(declared) +
                    " -> " + std::to_string(lie);
    out.push_back(std::move(m));
  }
  return out;
}

std::vector<Mutation> CrcSmashSweep(std::span<const uint8_t> bytes) {
  std::vector<Mutation> out;
  if (bytes.size() < 4) return out;
  const size_t first_bit = (bytes.size() - 4) * 8;
  for (size_t bit = first_bit; bit < bytes.size() * 8; ++bit) {
    Mutation m = FlipBitAt(bytes, bit);
    m.description = "CRC smash: " + m.description;
    out.push_back(std::move(m));
  }
  return out;
}

std::vector<Mutation> CorruptionSweep(std::span<const uint8_t> bytes,
                                      uint64_t seed) {
  std::vector<Mutation> out = TruncationSweep(bytes, seed);
  std::vector<Mutation> flips = BitFlipSweep(bytes, seed);
  std::vector<Mutation> lies = LengthLieSweep(bytes);
  std::vector<Mutation> smashes = CrcSmashSweep(bytes);
  out.insert(out.end(), std::make_move_iterator(flips.begin()),
             std::make_move_iterator(flips.end()));
  out.insert(out.end(), std::make_move_iterator(lies.begin()),
             std::make_move_iterator(lies.end()));
  out.insert(out.end(), std::make_move_iterator(smashes.begin()),
             std::make_move_iterator(smashes.end()));
  return out;
}

}  // namespace testkit
}  // namespace varstream
