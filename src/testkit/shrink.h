// Greedy failure shrinking: given a (scenario, trace) pair an oracle
// rejects, search for the smallest case that still fails, then emit a
// ready-to-paste `varstream_check --replay` command (plus the recorded
// trace file) as the minimal repro.
//
// Shrink moves, tried in order and kept only while the oracle still
// fails:
//   1. fewer updates   — truncate the trace to a failing prefix (halving
//                        first, then fine end-trimming); any prefix of a
//                        valid stream is a valid stream;
//   2. unit batches    — batch_size -> 1 (the strictest observation
//                        grid);
//   3. fewer shards    — num_shards -> 1 -> 0 where the oracle allows;
//   4. smaller k       — remap sites (site % k') and retry truncation.
//
// Every candidate re-runs the oracle, so the result is *verified*
// failing, and because oracles are deterministic in the case, replaying
// the emitted command reproduces the exact failure.

#ifndef VARSTREAM_TESTKIT_SHRINK_H_
#define VARSTREAM_TESTKIT_SHRINK_H_

#include <cstdint>
#include <string>

#include "testkit/oracles.h"
#include "testkit/scenario_gen.h"

namespace varstream {
namespace testkit {

struct ShrinkOptions {
  /// Cap on oracle re-runs across all moves; greedy search stops when
  /// exhausted and reports the smallest failure found so far.
  uint64_t max_attempts = 256;
};

struct ShrinkResult {
  GeneratedCase minimal;       ///< the smallest still-failing case
  std::string detail;          ///< oracle detail at the minimum
  uint64_t attempts = 0;       ///< oracle re-runs spent
  uint64_t original_updates = 0;
};

/// Requires that `oracle.Check(failing)` fails (the caller just observed
/// it); returns the shrunken case. Never returns a passing case: every
/// accepted move re-verified the failure.
ShrinkResult ShrinkFailure(const Oracle& oracle, const GeneratedCase& failing,
                           const ShrinkOptions& options = {});

/// The ready-to-paste repro command for a case whose trace was saved at
/// `trace_path`: `varstream_check --replay=... --oracle=...` plus every
/// scenario field the oracle and the seed derivation depend on (stream
/// and assigner names only feed the deterministic seed fingerprint — the
/// updates themselves come from the trace file).
std::string ReplayCommand(const GeneratedCase& c, const std::string& oracle,
                          const std::string& trace_path);

}  // namespace testkit
}  // namespace varstream

#endif  // VARSTREAM_TESTKIT_SHRINK_H_
