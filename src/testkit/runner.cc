#include "testkit/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "common/format.h"
#include "common/hash.h"

namespace varstream {
namespace testkit {

namespace {

/// The per-iteration seed: a pure function of (run seed, iteration), so
/// iteration i generates the same scenario no matter which worker claims
/// it or how many workers exist.
uint64_t IterationSeed(uint64_t run_seed, uint64_t iteration) {
  return Mix64(run_seed ^ (0x9E3779B97F4A7C15ull * (iteration + 1)));
}

}  // namespace

bool CheckReport::ok() const { return hard_failures() == 0; }

uint64_t CheckReport::hard_failures() const {
  uint64_t n = 0;
  for (const auto& [name, s] : stats) n += s.failed;
  return n;
}

CheckReport RunChecks(const CheckOptions& options) {
  // Resolve the oracle selection up front; an unknown name is a
  // configuration error, not a check failure.
  std::vector<const Oracle*> oracles;
  if (options.oracles.empty()) {
    oracles = AllOracles();
  } else {
    for (const std::string& name : options.oracles) {
      const Oracle* oracle = FindOracle(name);
      if (oracle == nullptr) {
        std::fprintf(stderr, "testkit: unknown oracle '%s'; valid: ",
                     name.c_str());
        for (const std::string& valid : OracleNames()) {
          std::fprintf(stderr, "%s ", valid.c_str());
        }
        std::fputc('\n', stderr);
        std::abort();
      }
      oracles.push_back(oracle);
    }
  }
  {
    // Validate the generator focus once, loudly.
    ScenarioGenerator probe(options.gen, 0);
    if (!probe.ok()) {
      std::fprintf(stderr, "testkit: %s\n", probe.error().c_str());
      std::abort();
    }
  }

  uint64_t iter_cap = options.iters;
  if (iter_cap == 0 && options.seconds <= 0.0) iter_cap = 100;
  const auto start = std::chrono::steady_clock::now();
  const bool timed = options.seconds > 0.0;
  auto past_deadline = [&] {
    if (!timed) return false;
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count() >= options.seconds;
  };

  std::atomic<uint64_t> next{0};
  std::atomic<uint64_t> completed{0};
  std::mutex mu;
  std::vector<OracleStats> totals(oracles.size());
  std::vector<CheckFailure> failures;

  auto worker = [&] {
    std::vector<OracleStats> local(oracles.size());
    for (;;) {
      if (past_deadline()) break;
      uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (iter_cap != 0 && i >= iter_cap) break;

      ScenarioGenerator gen(options.gen, IterationSeed(options.seed, i));
      GeneratedCase c = gen.NextCase();

      for (size_t oi = 0; oi < oracles.size(); ++oi) {
        const Oracle* oracle = oracles[oi];
        if (!oracle->Applicable(c.scenario)) {
          ++local[oi].skipped;
          continue;
        }
        OracleOutcome outcome = oracle->Check(c);
        if (outcome.status == OracleOutcome::Status::kSkip) {
          ++local[oi].skipped;
          continue;
        }
        ++local[oi].checked;
        if (outcome.status == OracleOutcome::Status::kPass) {
          ++local[oi].passed;
          continue;
        }

        const bool advisory = !oracle->hard(c.scenario);
        if (advisory) {
          ++local[oi].advisory_failed;
        } else {
          ++local[oi].failed;
        }

        CheckFailure failure;
        failure.iteration = i;
        failure.oracle = oracle->name();
        failure.advisory = advisory;
        failure.detail = outcome.detail;
        failure.original_updates = c.trace.size();

        GeneratedCase minimal = c;
        if (options.shrink && !advisory) {
          ShrinkOptions shrink_options;
          shrink_options.max_attempts = options.shrink_attempts;
          ShrinkResult shrunk = ShrinkFailure(*oracle, c, shrink_options);
          minimal = std::move(shrunk.minimal);
          if (!shrunk.detail.empty()) failure.detail = shrunk.detail;
        }
        failure.scenario_id = minimal.scenario.Id();
        failure.shrunk_updates = minimal.trace.size();

        std::string trace_path = "<unsaved>.trace";
        if (!options.repro_dir.empty()) {
          trace_path = options.repro_dir + "/repro-" + oracle->name() +
                       "-i" + std::to_string(i) + ".trace";
          if (minimal.trace.SaveToFile(trace_path)) {
            failure.trace_path = trace_path;
          } else {
            std::fprintf(stderr, "testkit: cannot write repro trace %s\n",
                         trace_path.c_str());
            trace_path = "<unsaved>.trace";
          }
        }
        failure.replay_command =
            ReplayCommand(minimal, oracle->name(), trace_path);

        std::lock_guard<std::mutex> lock(mu);
        if (failures.size() < options.max_failures) {
          failures.push_back(std::move(failure));
        }
      }
      completed.fetch_add(1, std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> lock(mu);
    for (size_t oi = 0; oi < oracles.size(); ++oi) {
      totals[oi].checked += local[oi].checked;
      totals[oi].passed += local[oi].passed;
      totals[oi].failed += local[oi].failed;
      totals[oi].advisory_failed += local[oi].advisory_failed;
      totals[oi].skipped += local[oi].skipped;
    }
  };

  unsigned threads = std::max(options.threads, 1u);
  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  CheckReport report;
  report.seed = options.seed;
  report.iterations = completed.load();
  report.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  for (size_t oi = 0; oi < oracles.size(); ++oi) {
    report.stats.emplace_back(oracles[oi]->name(), totals[oi]);
  }
  std::sort(failures.begin(), failures.end(),
            [](const CheckFailure& a, const CheckFailure& b) {
              if (a.iteration != b.iteration) return a.iteration < b.iteration;
              return a.oracle < b.oracle;
            });
  report.failures = std::move(failures);
  return report;
}

std::string CheckReportToJson(const CheckReport& report) {
  std::string json = "{\"schema\":\"varstream-check-v1\"";
  json += ",\"seed\":" + std::to_string(report.seed);
  json += ",\"iterations\":" + std::to_string(report.iterations);
  json += ",\"elapsed_seconds\":" + FormatDouble("%.6g", report.elapsed_seconds);
  json += ",\"ok\":" + std::string(report.ok() ? "true" : "false");
  json += ",\"hard_failures\":" + std::to_string(report.hard_failures());
  json += ",\"oracles\":[";
  for (size_t i = 0; i < report.stats.size(); ++i) {
    const auto& [name, s] = report.stats[i];
    if (i > 0) json += ",";
    json += "\n{\"name\":\"" + JsonEscape(name) + "\"";
    json += ",\"checked\":" + std::to_string(s.checked);
    json += ",\"passed\":" + std::to_string(s.passed);
    json += ",\"failed\":" + std::to_string(s.failed);
    json += ",\"advisory_failed\":" + std::to_string(s.advisory_failed);
    json += ",\"skipped\":" + std::to_string(s.skipped) + "}";
  }
  json += "\n],\"failures\":[";
  for (size_t i = 0; i < report.failures.size(); ++i) {
    const CheckFailure& f = report.failures[i];
    if (i > 0) json += ",";
    json += "\n{\"iteration\":" + std::to_string(f.iteration);
    json += ",\"oracle\":\"" + JsonEscape(f.oracle) + "\"";
    json += ",\"advisory\":" + std::string(f.advisory ? "true" : "false");
    json += ",\"scenario\":\"" + JsonEscape(f.scenario_id) + "\"";
    json += ",\"detail\":\"" + JsonEscape(f.detail) + "\"";
    json += ",\"original_updates\":" + std::to_string(f.original_updates);
    json += ",\"shrunk_updates\":" + std::to_string(f.shrunk_updates);
    if (!f.trace_path.empty()) {
      json += ",\"trace\":\"" + JsonEscape(f.trace_path) + "\"";
    }
    json += ",\"replay\":\"" + JsonEscape(f.replay_command) + "\"}";
  }
  json += "\n]}\n";
  return json;
}

}  // namespace testkit
}  // namespace varstream
