#include "testkit/oracles.h"

#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <span>
#include <vector>

#include "common/format.h"
#include "core/compat.h"
#include "core/mergeable.h"
#include "core/registry.h"
#include "core/sharded.h"
#include "hierarchy/launcher.h"
#include "hierarchy/root.h"
#include "history/history.h"
#include "history/query.h"
#include "service/checkpoint.h"
#include "service/client.h"
#include "service/server.h"
#include "stream/source.h"
#include "stream/variability.h"

namespace varstream {
namespace testkit {

namespace {

/// Replays trace updates [from, to) through the tracker in batches of
/// `batch_size`, invoking observe(delivered_total) after each batch.
/// PushBatch is observably equivalent to per-update Push (the NVI
/// contract, pinned by tests/batch_push_test.cc), so batching here only
/// sets the observation grid.
template <typename Observe>
void ReplayRange(const StreamTrace& trace, DistributedTracker& tracker,
                 uint64_t batch_size, size_t from, size_t to,
                 Observe&& observe) {
  const std::vector<CountUpdate>& updates = trace.updates();
  to = std::min(to, updates.size());
  const size_t b = static_cast<size_t>(std::max<uint64_t>(batch_size, 1));
  size_t pos = from;
  while (pos < to) {
    size_t take = std::min(b, to - pos);
    tracker.PushBatch(std::span<const CountUpdate>(updates.data() + pos,
                                                   take));
    pos += take;
    observe(pos);
  }
}

std::string FmtG(double v) { return FormatDouble("%.6g", v); }

bool SnapshotsBitIdentical(const TrackerSnapshot& a,
                           const TrackerSnapshot& b) {
  return std::bit_cast<uint64_t>(a.estimate) ==
             std::bit_cast<uint64_t>(b.estimate) &&
         a.time == b.time && a.messages == b.messages && a.bits == b.bits;
}

std::string SnapshotDiff(const char* label_a, const TrackerSnapshot& a,
                         const char* label_b, const TrackerSnapshot& b) {
  return std::string(label_a) + " {est=" + FmtG(a.estimate) + ", time=" +
         std::to_string(a.time) + ", msgs=" + std::to_string(a.messages) +
         ", bits=" + std::to_string(a.bits) + "} vs " + label_b + " {est=" +
         FmtG(b.estimate) + ", time=" + std::to_string(b.time) + ", msgs=" +
         std::to_string(b.messages) + ", bits=" + std::to_string(b.bits) +
         "}";
}

/// Replays [from, to) in scenario batches, running the sampler at each
/// batch boundary exactly as VarstreamServer::kPushBatch (and the root
/// aggregator's push path) does. Shared by the history and hierarchy
/// parity oracles.
void ReplaySampled(const GeneratedCase& c, DistributedTracker& tracker,
                   HistorySampler& sampler, size_t from, size_t to) {
  size_t prev = from;
  ReplayRange(c.trace, tracker, c.scenario.batch_size, from, to,
              [&](size_t pos) {
                if (sampler.Due(pos - prev)) {
                  TrackerSnapshot snap = tracker.Snapshot();
                  sampler.Record({snap.time, snap.estimate, snap.messages,
                                  snap.bits, 0});
                }
                prev = pos;
              });
}

/// Field-wise row comparison excluding wire_bytes (the shadow has no
/// wire traffic, by construction).
bool RowsMatch(const std::vector<QueryRow>& served,
               const std::vector<QueryRow>& expect, std::string* error) {
  if (served.size() != expect.size()) {
    *error = "row count " + std::to_string(served.size()) + " vs shadow " +
             std::to_string(expect.size());
    return false;
  }
  for (size_t i = 0; i < served.size(); ++i) {
    const QueryRow& a = served[i];
    const QueryRow& b = expect[i];
    if (a.time_first != b.time_first || a.time_last != b.time_last ||
        std::bit_cast<uint64_t>(a.value) !=
            std::bit_cast<uint64_t>(b.value) ||
        a.messages != b.messages || a.bits != b.bits ||
        a.samples != b.samples) {
      *error = "row " + std::to_string(i) + " diverges: wire {t=[" +
               std::to_string(a.time_first) + "," +
               std::to_string(a.time_last) + "], v=" + FmtG(a.value) +
               ", msgs=" + std::to_string(a.messages) + ", bits=" +
               std::to_string(a.bits) + ", n=" +
               std::to_string(a.samples) + "} vs shadow {t=[" +
               std::to_string(b.time_first) + "," +
               std::to_string(b.time_last) + "], v=" + FmtG(b.value) +
               ", msgs=" + std::to_string(b.messages) + ", bits=" +
               std::to_string(b.bits) + ", n=" +
               std::to_string(b.samples) + "}";
      return false;
    }
  }
  return true;
}

/// Trackers whose estimate carries a relative-error guarantee the
/// accuracy oracle can enforce (periodic syncs have no eps guarantee
/// between syncs by design).
bool HasAccuracyGuarantee(const std::string& tracker) {
  return tracker == "deterministic" || tracker == "randomized" ||
         tracker == "naive" || tracker == "single-site" ||
         tracker == "cmy-monotone" || tracker == "hyz-monotone";
}

/// Randomized protocols: the paper guarantees each timestep individually
/// with probability >= 2/3, so the observed violation rate gets a
/// Hoeffding sampling allowance on top of 1/3.
bool IsRandomizedProtocol(const std::string& tracker) {
  return tracker == "randomized" || tracker == "hyz-monotone";
}

// --- accuracy ---------------------------------------------------------

class AccuracyOracle final : public Oracle {
 public:
  std::string name() const override { return "accuracy"; }

  bool Applicable(const Scenario& s) const override {
    if (!HasAccuracyGuarantee(s.tracker)) return false;
    // Inadmissible pairings never reach oracles from the generator, but
    // --replay can hand us anything.
    return CheckScenarioPairing(s.tracker, s.stream, s.num_shards,
                                s.num_sites)
        .ok;
  }

  OracleOutcome Check(const GeneratedCase& c) const override {
    const Scenario& s = c.scenario;
    std::string error;
    std::unique_ptr<DistributedTracker> tracker =
        MakeCaseTracker(s, s.num_shards, c.trace.initial_value(), &error);
    if (tracker == nullptr) {
      return OracleOutcome::Fail("cannot construct tracker: " + error);
    }

    // Exact naive shadow: the global truth f(t) plus, for the sharded
    // engine, the per-site substream sums — the sharded estimate's
    // guarantee is eps * sum_i |f_i(t)| (core/sharded.h), which equals
    // eps * (f(t) - f(0)) on monotone streams and degrades only when
    // substreams cancel across sites.
    const bool sharded = s.num_shards >= 1;
    const std::vector<CountUpdate>& updates = c.trace.updates();
    std::vector<int64_t> site_f(tracker->num_sites(), 0);
    int64_t truth = c.trace.initial_value();
    double abs_site_sum = 0.0;

    uint64_t observations = 0;
    uint64_t violations = 0;
    std::string first_violation;

    const size_t b = static_cast<size_t>(std::max<uint64_t>(s.batch_size, 1));
    size_t pos = 0;
    while (pos < updates.size()) {
      size_t take = std::min(b, updates.size() - pos);
      for (size_t i = pos; i < pos + take; ++i) {
        const CountUpdate& u = updates[i];
        truth += u.delta;
        if (sharded && u.site < site_f.size()) {
          int64_t before = site_f[u.site];
          site_f[u.site] += u.delta;
          abs_site_sum += std::abs(static_cast<double>(site_f[u.site])) -
                          std::abs(static_cast<double>(before));
        }
      }
      tracker->PushBatch(
          std::span<const CountUpdate>(updates.data() + pos, take));
      pos += take;

      double est = tracker->Estimate();
      double bound = sharded
                         ? s.epsilon * abs_site_sum
                         : s.epsilon * std::abs(static_cast<double>(truth));
      double err = std::abs(est - static_cast<double>(truth));
      ++observations;
      if (err > bound * (1.0 + 1e-12) + 1e-9) {
        ++violations;
        if (first_violation.empty()) {
          first_violation = "t=" + std::to_string(pos) + ": |est - f| = |" +
                            FmtG(est) + " - " + std::to_string(truth) +
                            "| = " + FmtG(err) + " > " +
                            (sharded ? "eps*sum_i|f_i| = " : "eps*|f| = ") +
                            FmtG(bound);
        }
      }
    }

    if (violations == 0) return OracleOutcome::Pass();
    if (IsRandomizedProtocol(s.tracker)) {
      // Per-timestep failure probability is allowed up to 1/3; allow the
      // empirical rate that plus a Hoeffding term targeting ~1e-7 false
      // alarms per check, so a 2000-iteration run stays quiet while a
      // broken sampler still trips in a handful of iterations.
      double n = static_cast<double>(observations);
      double budget = 1.0 / 3.0 + std::sqrt(std::log(1e7) / (2.0 * n));
      double rate = static_cast<double>(violations) / n;
      if (rate <= budget) return OracleOutcome::Pass();
      return OracleOutcome::Fail(
          "violation rate " + FmtG(rate) + " exceeds whp budget " +
          FmtG(budget) + " (" + std::to_string(violations) + "/" +
          std::to_string(observations) + "); first: " + first_violation);
    }
    return OracleOutcome::Fail(
        std::to_string(violations) + "/" + std::to_string(observations) +
        " observations violate the deterministic guarantee; first: " +
        first_violation);
  }
};

// --- cost -------------------------------------------------------------

class CostOracle final : public Oracle {
 public:
  std::string name() const override { return "cost"; }

  /// The envelope is a theorem only for the deterministic tracker
  /// (Theorem 3.5 with explicit constants); the randomized / baseline
  /// envelopes bound expectations, which a legal run can exceed.
  bool hard(const Scenario& s) const override {
    return s.tracker == "deterministic";
  }

  bool Applicable(const Scenario& s) const override {
    if (s.tracker == "naive" || s.tracker == "periodic") return false;
    if (!TrackerRegistry::Instance().Contains(s.tracker)) return false;
    return CheckScenarioPairing(s.tracker, s.stream, s.num_shards,
                                s.num_sites)
        .ok;
  }

  OracleOutcome Check(const GeneratedCase& c) const override {
    const Scenario& s = c.scenario;
    std::string error;
    std::unique_ptr<DistributedTracker> tracker =
        MakeCaseTracker(s, s.num_shards, c.trace.initial_value(), &error);
    if (tracker == nullptr) {
      return OracleOutcome::Fail("cannot construct tracker: " + error);
    }
    ReplayRange(c.trace, *tracker, s.batch_size, 0, c.trace.size(),
                [](size_t) {});

    const double v = c.trace.Variability();
    const double eps = s.epsilon;
    const double k = static_cast<double>(tracker->num_sites());
    const double n = static_cast<double>(c.trace.size());
    const auto messages =
        static_cast<double>(tracker->cost().total_messages());

    // The sharded engine runs one single-site instance per site over
    // that site's substream, so its envelope is the sum of per-site
    // envelopes over the per-site variabilities v_i — which are computed
    // against |f_i|, not |f|, and can far exceed the global v when a
    // substream hovers near zero (e.g. an oscillator dealt across
    // sites). Materialize them from the trace.
    const bool sharded = s.num_shards >= 1;
    auto per_site_variability = [&] {
      std::vector<VariabilityMeter> meters(
          tracker->num_sites(), VariabilityMeter(0));
      for (const CountUpdate& u : c.trace.updates()) {
        if (u.site < meters.size()) meters[u.site].Push(u.delta);
      }
      std::vector<double> vs;
      vs.reserve(meters.size());
      for (const VariabilityMeter& m : meters) vs.push_back(m.value());
      return vs;
    };

    double bound;
    std::string formula;
    if (s.tracker == "deterministic") {
      if (sharded) {
        bound = 0.0;
        for (double vi : per_site_variability()) {
          bound += 5.0 * vi / eps + 50.0 * (vi + 1.0) + 10.0;
        }
        formula = "sum_i [5 v_i/eps + 50(v_i+1) + 10]";
      } else {
        bound = 5.0 * k * v / eps + 50.0 * k * (v + 1.0) + 10.0 * k;
        formula = "5kv/eps + 50k(v+1) + 10k";
      }
    } else if (s.tracker == "randomized") {
      if (sharded) {
        bound = 0.0;
        for (double vi : per_site_variability()) {
          bound += 60.0 * (1.0 / eps + 1.0) * (vi + 1.0) + 100.0;
        }
        formula = "sum_i [60(1/eps + 1)(v_i+1) + 100]";
      } else {
        bound = 60.0 * (std::sqrt(k) / eps + k) * (v + 1.0) + 100.0 * k;
        formula = "60(sqrt(k)/eps + k)(v+1) + 100k";
      }
    } else if (s.tracker == "cmy-monotone") {
      bound = k * (std::log(std::max(n, 2.0 * k) / k) / std::log(1.0 + eps) +
                   2.0) +
              4.0 * k;
      formula = "k(log_{1+eps}(n/k) + 2) + 4k";
    } else if (s.tracker == "hyz-monotone") {
      bound = 60.0 * (k + std::sqrt(k) / eps) * (v + 1.0) + 100.0 * k;
      formula = "60(k + sqrt(k)/eps)(v+1) + 100k";
    } else if (s.tracker == "single-site") {
      bound = (1.0 + eps) / eps * v + 8.0;
      formula = "(1+eps)/eps * v + 8";
    } else {
      return OracleOutcome::Skip("no cost envelope for '" + s.tracker + "'");
    }

    if (messages <= bound) return OracleOutcome::Pass();
    return OracleOutcome::Fail(
        std::to_string(tracker->cost().total_messages()) +
        " messages exceed the " + formula + " envelope = " + FmtG(bound) +
        " (v=" + FmtG(v) + ", k=" + FmtG(k) + ", eps=" + FmtG(eps) + ")");
  }
};

// --- monotone ---------------------------------------------------------

class MonotoneOracle final : public Oracle {
 public:
  std::string name() const override { return "monotone"; }

  bool Applicable(const Scenario&) const override { return true; }

  OracleOutcome Check(const GeneratedCase& c) const override {
    const Scenario& s = c.scenario;
    const bool registry_monotone =
        StreamRegistry::Instance().ContainsStream(s.stream) &&
        StreamRegistry::Instance().IsMonotone(s.stream);
    const bool tracker_needs_monotone =
        TrackerRegistry::Instance().IsMonotoneOnly(s.tracker);
    if (!registry_monotone && !tracker_needs_monotone) {
      return OracleOutcome::Pass();  // nothing claimed, nothing to check
    }
    const std::vector<CountUpdate>& updates = c.trace.updates();
    for (size_t t = 0; t < updates.size(); ++t) {
      if (updates[t].delta > 0) continue;
      if (registry_monotone) {
        return OracleOutcome::Fail(
            "stream '" + s.stream +
            "' is registered monotone but update " + std::to_string(t) +
            " has delta " + std::to_string(updates[t].delta));
      }
      return OracleOutcome::Fail(
          "insertion-only tracker '" + s.tracker +
          "' was paired with a stream emitting delta " +
          std::to_string(updates[t].delta) + " at update " +
          std::to_string(t) + " (generator pairing invariant broken)");
    }
    return OracleOutcome::Pass();
  }
};

// --- shard-parity -----------------------------------------------------

class ShardParityOracle final : public Oracle {
 public:
  std::string name() const override { return "shard-parity"; }

  bool Applicable(const Scenario& s) const override {
    if (!TrackerRegistry::Instance().IsMergeable(s.tracker)) return false;
    // --replay can hand us anything: an inadmissible pairing is a SKIP,
    // not a parity failure.
    return CheckScenarioPairing(s.tracker, s.stream, s.num_shards,
                                s.num_sites)
        .ok;
  }

  OracleOutcome Check(const GeneratedCase& c) const override {
    const Scenario& s = c.scenario;
    const int64_t f0 = c.trace.initial_value();

    // Worker counts to sweep: the engine claims results identical for
    // every W in 1..k; check the edges plus the scenario's own W.
    std::vector<uint32_t> worker_counts = {1};
    if (s.num_sites >= 2) worker_counts.push_back(2);
    worker_counts.push_back(s.num_sites);
    if (s.num_shards >= 1) worker_counts.push_back(s.num_shards);
    std::sort(worker_counts.begin(), worker_counts.end());
    worker_counts.erase(
        std::unique(worker_counts.begin(), worker_counts.end()),
        worker_counts.end());

    TrackerSnapshot reference{};
    std::string reference_state;
    for (size_t i = 0; i < worker_counts.size(); ++i) {
      std::string error;
      std::unique_ptr<DistributedTracker> tracker =
          MakeCaseTracker(s, worker_counts[i], f0, &error);
      if (tracker == nullptr) {
        return OracleOutcome::Fail("cannot construct W=" +
                                   std::to_string(worker_counts[i]) +
                                   " engine: " + error);
      }
      ReplayRange(c.trace, *tracker, s.batch_size, 0, c.trace.size(),
                  [](size_t) {});
      TrackerSnapshot snapshot = tracker->Snapshot();
      auto* mergeable = dynamic_cast<Mergeable*>(tracker.get());
      std::string state =
          mergeable != nullptr ? mergeable->SerializeState() : "";
      if (i == 0) {
        reference = snapshot;
        reference_state = state;
        continue;
      }
      if (!SnapshotsBitIdentical(reference, snapshot)) {
        return OracleOutcome::Fail(
            "W=" + std::to_string(worker_counts[i]) +
            " diverges from W=" + std::to_string(worker_counts[0]) + ": " +
            SnapshotDiff("W_lo", reference, "W_hi", snapshot));
      }
      if (state != reference_state) {
        return OracleOutcome::Fail(
            "W=" + std::to_string(worker_counts[i]) +
            " SerializeState differs from W=" +
            std::to_string(worker_counts[0]) +
            " (snapshots agree — internal state drift)");
      }
    }

    // Per-site-function protocols additionally equal the *serial*
    // tracker byte for byte (core/sharded.h).
    if (s.tracker == "naive" || s.tracker == "periodic") {
      std::string error;
      std::unique_ptr<DistributedTracker> serial =
          MakeCaseTracker(s, 0, f0, &error);
      if (serial == nullptr) {
        return OracleOutcome::Fail("cannot construct serial tracker: " +
                                   error);
      }
      ReplayRange(c.trace, *serial, s.batch_size, 0, c.trace.size(),
                  [](size_t) {});
      TrackerSnapshot snapshot = serial->Snapshot();
      if (!SnapshotsBitIdentical(reference, snapshot)) {
        return OracleOutcome::Fail(
            "sharded engine diverges from the serial tracker: " +
            SnapshotDiff("serial", snapshot, "sharded", reference));
      }
    }
    return OracleOutcome::Pass();
  }
};

// --- checkpoint-roundtrip ---------------------------------------------

class CheckpointRoundTripOracle final : public Oracle {
 public:
  std::string name() const override { return "checkpoint-roundtrip"; }

  bool Applicable(const Scenario& s) const override {
    if (!TrackerRegistry::Instance().IsMergeable(s.tracker)) return false;
    // --replay can hand us anything: an inadmissible pairing is a SKIP,
    // not a round-trip failure.
    return CheckScenarioPairing(s.tracker, s.stream, s.num_shards,
                                s.num_sites)
        .ok;
  }

  OracleOutcome Check(const GeneratedCase& c) const override {
    const Scenario& s = c.scenario;
    const int64_t f0 = c.trace.initial_value();
    const size_t cut = c.trace.size() / 2;
    std::string error;

    // Uninterrupted reference.
    std::unique_ptr<DistributedTracker> full =
        MakeCaseTracker(s, s.num_shards, f0, &error);
    if (full == nullptr) {
      return OracleOutcome::Fail("cannot construct tracker: " + error);
    }
    ReplayRange(c.trace, *full, s.batch_size, 0, c.trace.size(),
                [](size_t) {});
    TrackerSnapshot want = full->Snapshot();

    // Interrupted run: prefix, checkpoint through the real
    // varstream-ckpt-v1 encode/decode, restore, resume.
    std::unique_ptr<DistributedTracker> pre =
        MakeCaseTracker(s, s.num_shards, f0, &error);
    if (pre == nullptr) {
      return OracleOutcome::Fail("cannot construct tracker: " + error);
    }
    ReplayRange(c.trace, *pre, s.batch_size, 0, cut, [](size_t) {});
    auto* pre_state = dynamic_cast<Mergeable*>(pre.get());
    if (pre_state == nullptr) {
      return OracleOutcome::Fail("tracker is registered mergeable but does "
                                 "not implement Mergeable");
    }

    SessionCheckpoint entry;
    entry.name = "conformance";
    entry.tracker = s.tracker;
    entry.shards = s.num_shards;
    entry.options = CaseTrackerOptions(s, f0);
    entry.state = pre_state->SerializeState();
    const std::string text = EncodeCheckpoint({entry});
    std::vector<SessionCheckpoint> decoded;
    if (!DecodeCheckpoint(text, &decoded, &error)) {
      return OracleOutcome::Fail("EncodeCheckpoint output does not decode: " +
                                 error);
    }
    if (decoded.size() != 1) {
      return OracleOutcome::Fail("decoded " + std::to_string(decoded.size()) +
                                 " sessions from a 1-session checkpoint");
    }

    // Restore with a *different* worker count when sharded: W only
    // schedules, so a checkpoint taken under W must resume bit-exactly
    // under W'.
    uint32_t restore_shards = decoded[0].shards;
    if (restore_shards >= 1) {
      restore_shards = restore_shards % s.num_sites + 1;
    }
    std::unique_ptr<DistributedTracker> post =
        restore_shards >= 1
            ? std::unique_ptr<DistributedTracker>(ShardedTracker::Create(
                  decoded[0].tracker, decoded[0].options, restore_shards,
                  &error))
            : TrackerRegistry::Instance().Create(decoded[0].tracker,
                                                 decoded[0].options);
    if (post == nullptr) {
      return OracleOutcome::Fail("cannot reconstruct tracker from decoded "
                                 "checkpoint: " +
                                 error);
    }
    auto* post_state = dynamic_cast<Mergeable*>(post.get());
    if (post_state == nullptr ||
        !post_state->RestoreState(decoded[0].state, &error)) {
      return OracleOutcome::Fail("RestoreState rejected the round-tripped "
                                 "dump: " +
                                 error);
    }
    ReplayRange(c.trace, *post, s.batch_size, cut, c.trace.size(),
                [](size_t) {});
    TrackerSnapshot got = post->Snapshot();
    if (!SnapshotsBitIdentical(want, got)) {
      return OracleOutcome::Fail(
          "save(cut=" + std::to_string(cut) + ")->restore(W'=" +
          std::to_string(restore_shards) + ")->resume diverges from the "
          "uninterrupted run: " +
          SnapshotDiff("uninterrupted", want, "restored", got));
    }
    return OracleOutcome::Pass();
  }
};

// --- service-parity ---------------------------------------------------

class ServiceParityOracle final : public Oracle {
 public:
  std::string name() const override { return "service-parity"; }

  bool Applicable(const Scenario& s) const override {
    if (!TrackerRegistry::Instance().Contains(s.tracker)) return false;
    return CheckScenarioPairing(s.tracker, s.stream, s.num_shards,
                                s.num_sites)
        .ok;
  }

  OracleOutcome Check(const GeneratedCase& c) const override {
    const Scenario& s = c.scenario;
    const int64_t f0 = c.trace.initial_value();
    std::string error;

    std::unique_ptr<DistributedTracker> reference =
        MakeCaseTracker(s, s.num_shards, f0, &error);
    if (reference == nullptr) {
      return OracleOutcome::Fail("cannot construct tracker: " + error);
    }

    ServerOptions server_options;
    server_options.port = 0;  // ephemeral — concurrent checks don't collide
    VarstreamServer server(server_options);
    if (!server.Start(&error)) {
      return OracleOutcome::Fail("server start failed: " + error);
    }
    VarstreamClient client;
    OracleOutcome outcome = Drive(c, *reference, server, client, &error)
                                ? OracleOutcome::Pass()
                                : OracleOutcome::Fail(error);
    client.Close();
    server.Stop();
    return outcome;
  }

 private:
  /// Pushes the trace over the wire and in-process in lockstep; compares
  /// a mid-stream live Query and the final snapshot bit for bit.
  static bool Drive(const GeneratedCase& c, DistributedTracker& reference,
                    VarstreamServer& server, VarstreamClient& client,
                    std::string* error) {
    const Scenario& s = c.scenario;
    if (!client.Connect("127.0.0.1", server.port(), error)) {
      *error = "connect: " + *error;
      return false;
    }
    HelloFrame hello;
    hello.session = "conformance";
    hello.tracker = s.tracker;
    hello.shards = s.num_shards;
    hello.options = CaseTrackerOptions(s, c.trace.initial_value());
    HelloAckFrame hello_ack;
    if (!client.Hello(hello, &hello_ack, error)) {
      *error = "hello: " + *error;
      return false;
    }

    const std::vector<CountUpdate>& updates = c.trace.updates();
    const size_t b = static_cast<size_t>(std::max<uint64_t>(s.batch_size, 1));
    const size_t midpoint = updates.size() / 2;
    bool compared_midstream = false;
    size_t pos = 0;
    while (pos < updates.size()) {
      size_t take = std::min(b, updates.size() - pos);
      std::span<const CountUpdate> batch(updates.data() + pos, take);
      PushAckFrame push_ack;
      if (!client.Push(batch, &push_ack, error)) {
        *error = "push at update " + std::to_string(pos) + ": " + *error;
        return false;
      }
      reference.PushBatch(batch);
      pos += take;
      if (!compared_midstream && pos >= midpoint) {
        compared_midstream = true;
        if (!CompareSnapshots(client, reference, "mid-stream", pos, error)) {
          return false;
        }
      }
    }
    return CompareSnapshots(client, reference, "final", pos, error);
  }

  static bool CompareSnapshots(VarstreamClient& client,
                               DistributedTracker& reference,
                               const char* where, size_t pos,
                               std::string* error) {
    SnapshotFrame wire;
    if (!client.Query(&wire, error)) {
      *error = std::string("query (") + where + "): " + *error;
      return false;
    }
    TrackerSnapshot local = reference.Snapshot();
    TrackerSnapshot served;
    served.estimate = wire.estimate;
    served.time = wire.time;
    served.messages = wire.messages;
    served.bits = wire.bits;
    if (SnapshotsBitIdentical(local, served)) return true;
    *error = std::string(where) + " snapshot at update " +
             std::to_string(pos) + " diverges (wire vs in-process): " +
             SnapshotDiff("wire", served, "in-process", local);
    return false;
  }
};

// --- history-parity ---------------------------------------------------

class HistoryParityOracle final : public Oracle {
 public:
  std::string name() const override { return "history-parity"; }

  bool Applicable(const Scenario& s) const override {
    if (!TrackerRegistry::Instance().Contains(s.tracker)) return false;
    if (!TrackerRegistry::Instance().SupportsHistory(s.tracker)) return false;
    return CheckScenarioPairing(s.tracker, s.stream, s.num_shards,
                                s.num_sites)
        .ok;
  }

  OracleOutcome Check(const GeneratedCase& c) const override {
    const Scenario& s = c.scenario;
    const int64_t f0 = c.trace.initial_value();
    std::string error;

    // Scenario-derived retention: a cadence that lands a handful of
    // samples in the trace, and a capacity that alternates (by seed
    // parity) between tight — so eviction and the dropped counter are
    // genuinely exercised — and roomy, so full retention is too.
    HistoryOptions history;
    history.cadence = std::max<uint64_t>(1, c.trace.size() / 7);
    history.capacity = (s.seed % 2 == 0) ? 3 : 1024;

    // In-process shadow: the same tracker construction, batching, and
    // sampler the server runs, minus the wire (wire_bytes stays 0 and is
    // excluded from comparisons, like SnapshotFrame parity).
    HistorySampler shadow(history);
    {
      std::unique_ptr<DistributedTracker> tracker =
          MakeCaseTracker(s, s.num_shards, f0, &error);
      if (tracker == nullptr) {
        return OracleOutcome::Fail("cannot construct tracker: " + error);
      }
      ReplaySampled(c, *tracker, shadow, 0, c.trace.size());
    }
    if (shadow.ring().Rows().empty()) {
      return OracleOutcome::Fail("shadow sampler retained no rows (cadence " +
                                 std::to_string(history.cadence) + ", n=" +
                                 std::to_string(c.trace.size()) + ")");
    }

    // Wire leg: ingest the same batches through a real server configured
    // with the same retention, then QueryRange must serve the shadow's
    // rows bit for bit — raw and downsampled.
    ServerOptions server_options;
    server_options.port = 0;  // ephemeral — concurrent checks don't collide
    server_options.history = history;
    VarstreamServer server(server_options);
    if (!server.Start(&error)) {
      return OracleOutcome::Fail("server start failed: " + error);
    }
    OracleOutcome outcome = Drive(c, shadow, server, &error)
                                ? OracleOutcome::Pass()
                                : OracleOutcome::Fail(error);
    server.Stop();
    if (outcome.status != OracleOutcome::Status::kPass) return outcome;

    // Checkpoint leg (mergeable trackers): prefix -> encode the history
    // section inside varstream-ckpt-v1 -> decode -> restore under a
    // different worker count -> resume. The resumed ring must equal the
    // uninterrupted shadow exactly, including every post-restore sample
    // position (the pending counter round-trips).
    if (TrackerRegistry::Instance().IsMergeable(s.tracker)) {
      return CheckCheckpointLeg(c, history, shadow);
    }
    return OracleOutcome::Pass();
  }

 private:
  static bool Drive(const GeneratedCase& c, const HistorySampler& shadow,
                    VarstreamServer& server, std::string* error) {
    const Scenario& s = c.scenario;
    VarstreamClient client;
    if (!client.Connect("127.0.0.1", server.port(), error)) {
      *error = "connect: " + *error;
      return false;
    }
    HelloFrame hello;
    hello.session = "conformance";
    hello.tracker = s.tracker;
    hello.shards = s.num_shards;
    hello.options = CaseTrackerOptions(s, c.trace.initial_value());
    HelloAckFrame hello_ack;
    if (!client.Hello(hello, &hello_ack, error)) {
      *error = "hello: " + *error;
      return false;
    }
    const std::vector<CountUpdate>& updates = c.trace.updates();
    const size_t b =
        static_cast<size_t>(std::max<uint64_t>(s.batch_size, 1));
    size_t pos = 0;
    while (pos < updates.size()) {
      size_t take = std::min(b, updates.size() - pos);
      PushAckFrame push_ack;
      if (!client.Push(
              std::span<const CountUpdate>(updates.data() + pos, take),
              &push_ack, error)) {
        *error = "push at update " + std::to_string(pos) + ": " + *error;
        return false;
      }
      pos += take;
    }

    // Raw retention parity.
    QueryRangeFrame raw;
    QueryRangeResultFrame result;
    if (!client.QueryRange(raw, &result, error)) {
      *error = "query-range: " + *error;
      return false;
    }
    if (result.sessions.size() != 1) {
      *error = "query-range returned " +
               std::to_string(result.sessions.size()) + " sessions";
      return false;
    }
    const SessionQueryResult& session = result.sessions[0];
    if (session.dropped != shadow.ring().dropped()) {
      *error = "dropped " + std::to_string(session.dropped) + " vs shadow " +
               std::to_string(shadow.ring().dropped());
      return false;
    }
    if (!RowsMatch(session.rows,
                   EvaluateQuery(shadow.ring().Rows(), raw.spec), error)) {
      *error = "raw rows: " + *error;
      return false;
    }

    // Downsampled parity: a windowed mean over 3 buckets must agree with
    // evaluating the same spec over the shadow's rows.
    const std::vector<HistoryRow>& rows = shadow.ring().Rows();
    QueryRangeFrame down;
    down.spec.time_min = rows.front().time;
    down.spec.time_max = rows.back().time;
    down.spec.agg = Aggregation::kMean;
    down.spec.buckets = 3;
    if (!client.QueryRange(down, &result, error)) {
      *error = "downsampled query-range: " + *error;
      return false;
    }
    if (result.sessions.size() != 1) {
      *error = "downsampled query-range returned " +
               std::to_string(result.sessions.size()) + " sessions";
      return false;
    }
    if (!RowsMatch(result.sessions[0].rows, EvaluateQuery(rows, down.spec),
                   error)) {
      *error = "downsampled rows: " + *error;
      return false;
    }
    return true;
  }

  static OracleOutcome CheckCheckpointLeg(const GeneratedCase& c,
                                          const HistoryOptions& history,
                                          const HistorySampler& shadow) {
    const Scenario& s = c.scenario;
    const int64_t f0 = c.trace.initial_value();
    // A real server checkpoint lands between Push frames, never inside
    // one — so the cut must sit on the batch grid, or the interrupted
    // run would see batch boundaries (= candidate sample points) the
    // uninterrupted run never had.
    const size_t b = static_cast<size_t>(std::max<uint64_t>(s.batch_size, 1));
    const size_t cut = (c.trace.size() / 2) / b * b;
    std::string error;

    std::unique_ptr<DistributedTracker> pre =
        MakeCaseTracker(s, s.num_shards, f0, &error);
    if (pre == nullptr) {
      return OracleOutcome::Fail("cannot construct tracker: " + error);
    }
    HistorySampler pre_sampler(history);
    ReplaySampled(c, *pre, pre_sampler, 0, cut);
    auto* pre_state = dynamic_cast<Mergeable*>(pre.get());
    if (pre_state == nullptr) {
      return OracleOutcome::Fail("tracker is registered mergeable but does "
                                 "not implement Mergeable");
    }

    SessionCheckpoint entry;
    entry.name = "conformance";
    entry.tracker = s.tracker;
    entry.shards = s.num_shards;
    entry.options = CaseTrackerOptions(s, f0);
    entry.state = pre_state->SerializeState();
    entry.has_history = true;
    entry.history.capacity = history.capacity;
    entry.history.cadence = history.cadence;
    entry.history.pending = pre_sampler.pending();
    entry.history.dropped = pre_sampler.ring().dropped();
    entry.history.rows = pre_sampler.ring().Rows();
    const std::string text = EncodeCheckpoint({entry});
    std::vector<SessionCheckpoint> decoded;
    if (!DecodeCheckpoint(text, &decoded, &error)) {
      return OracleOutcome::Fail("EncodeCheckpoint output does not decode: " +
                                 error);
    }
    if (decoded.size() != 1 || !decoded[0].has_history) {
      return OracleOutcome::Fail("history section did not round-trip "
                                 "through varstream-ckpt-v1");
    }

    // Restore with a different worker count when sharded (W only
    // schedules; see checkpoint-roundtrip).
    uint32_t restore_shards = decoded[0].shards;
    if (restore_shards >= 1) {
      restore_shards = restore_shards % s.num_sites + 1;
    }
    std::unique_ptr<DistributedTracker> post =
        restore_shards >= 1
            ? std::unique_ptr<DistributedTracker>(ShardedTracker::Create(
                  decoded[0].tracker, decoded[0].options, restore_shards,
                  &error))
            : TrackerRegistry::Instance().Create(decoded[0].tracker,
                                                 decoded[0].options);
    if (post == nullptr) {
      return OracleOutcome::Fail("cannot reconstruct tracker from decoded "
                                 "checkpoint: " +
                                 error);
    }
    auto* post_state = dynamic_cast<Mergeable*>(post.get());
    if (post_state == nullptr ||
        !post_state->RestoreState(decoded[0].state, &error)) {
      return OracleOutcome::Fail("RestoreState rejected the round-tripped "
                                 "dump: " +
                                 error);
    }
    HistorySampler post_sampler(
        {decoded[0].history.capacity, decoded[0].history.cadence});
    if (!post_sampler.Restore(decoded[0].history.rows,
                              decoded[0].history.dropped,
                              decoded[0].history.pending)) {
      return OracleOutcome::Fail("sampler rejected the round-tripped "
                                 "history section");
    }
    ReplaySampled(c, *post, post_sampler, cut, c.trace.size());

    if (post_sampler.ring().Rows() != shadow.ring().Rows()) {
      return OracleOutcome::Fail(
          "save(cut=" + std::to_string(cut) + ")->restore(W'=" +
          std::to_string(restore_shards) +
          ")->resume history diverges from the uninterrupted run (" +
          std::to_string(post_sampler.ring().Rows().size()) + " vs " +
          std::to_string(shadow.ring().Rows().size()) + " rows)");
    }
    if (post_sampler.ring().dropped() != shadow.ring().dropped() ||
        post_sampler.pending() != shadow.pending()) {
      return OracleOutcome::Fail(
          "restored sampler counters diverge: dropped " +
          std::to_string(post_sampler.ring().dropped()) + "/" +
          std::to_string(shadow.ring().dropped()) + ", pending " +
          std::to_string(post_sampler.pending()) + "/" +
          std::to_string(shadow.pending()));
    }
    return OracleOutcome::Pass();
  }
};

// --- hierarchy-parity -------------------------------------------------

class HierarchyParityOracle final : public Oracle {
 public:
  std::string name() const override { return "hierarchy-parity"; }

  bool Applicable(const Scenario& s) const override {
    // The root partitions sites across leaves, so it needs a mergeable
    // tracker and at least two sites to split.
    if (!TrackerRegistry::Instance().IsMergeable(s.tracker)) return false;
    if (s.num_sites < 2) return false;
    return CheckScenarioPairing(s.tracker, s.stream, s.num_shards,
                                s.num_sites)
        .ok;
  }

  OracleOutcome Check(const GeneratedCase& c) const override {
    const Scenario& s = c.scenario;
    const int64_t f0 = c.trace.initial_value();
    // The root only hosts sharded sessions (a serial tracker's fold
    // order cannot be reproduced across a site partition), so a serial
    // scenario is checked at W = 1 — W only schedules.
    const uint32_t shards = std::max<uint32_t>(s.num_shards, 1);
    std::string error;

    // No-failure reference: the full-k engine plus a shadow of the
    // root's merged history sampler, replayed on the same batch grid.
    std::unique_ptr<DistributedTracker> reference =
        MakeCaseTracker(s, shards, f0, &error);
    if (reference == nullptr) {
      return OracleOutcome::Fail("cannot construct tracker: " + error);
    }
    HistoryOptions history;
    history.cadence = std::max<uint64_t>(1, c.trace.size() / 7);
    history.capacity = 1024;
    HistorySampler shadow(history);
    ReplaySampled(c, *reference, shadow, 0, c.trace.size());
    TrackerSnapshot want = reference->Snapshot();
    auto* reference_state = dynamic_cast<Mergeable*>(reference.get());
    if (reference_state == nullptr) {
      return OracleOutcome::Fail("tracker is registered mergeable but does "
                                 "not implement Mergeable");
    }
    const std::string want_state = reference_state->SerializeState();

    char scratch_template[] = "/tmp/varstream-hier-XXXXXX";
    char* scratch = mkdtemp(scratch_template);
    if (scratch == nullptr) {
      return OracleOutcome::Fail("cannot create leaf checkpoint scratch "
                                 "dir under /tmp");
    }
    const std::string work_dir = scratch;
    const uint32_t num_leaves =
        std::min<uint32_t>(2 + static_cast<uint32_t>(s.seed % 2),
                           s.num_sites);
    InProcessLauncher launcher(work_dir);
    RootOptions root_options;
    root_options.port = 0;  // ephemeral — concurrent checks don't collide
    root_options.num_leaves = num_leaves;
    root_options.heartbeat_ms = 0;  // the drill triggers recovery itself
    root_options.history = history;
    RootAggregator root(root_options, &launcher);
    OracleOutcome outcome = OracleOutcome::Pass();
    if (!root.Start(&error)) {
      outcome = OracleOutcome::Fail("root start failed: " + error);
    } else {
      outcome = Drive(c, shards, num_leaves, want, want_state, shadow,
                      root, launcher, &error)
                    ? OracleOutcome::Pass()
                    : OracleOutcome::Fail(error);
    }
    root.Stop();
    for (uint32_t leaf = 0; leaf < num_leaves; ++leaf) {
      std::remove(
          (work_dir + "/leaf_" + std::to_string(leaf) + ".ckpt").c_str());
    }
    rmdir(work_dir.c_str());
    return outcome;
  }

 private:
  /// Streams the trace through the root, kill -9s one leaf at the middle
  /// batch boundary (checkpointing first on even seeds, so recovery
  /// alternates between restore+journal-suffix and full journal replay),
  /// recovers, finishes the stream, and then compares every read surface
  /// — Query, StateDump, QueryRange — bit for bit against the
  /// no-failure reference.
  static bool Drive(const GeneratedCase& c, uint32_t shards,
                    uint32_t num_leaves, const TrackerSnapshot& want,
                    const std::string& want_state,
                    const HistorySampler& shadow, RootAggregator& root,
                    InProcessLauncher& launcher, std::string* error) {
    const Scenario& s = c.scenario;
    VarstreamClient client;
    if (!client.Connect("127.0.0.1", root.port(), error)) {
      *error = "connect: " + *error;
      return false;
    }
    HelloFrame hello;
    hello.session = "conformance";
    hello.tracker = s.tracker;
    hello.shards = shards;
    hello.options = CaseTrackerOptions(s, c.trace.initial_value());
    HelloAckFrame hello_ack;
    if (!client.Hello(hello, &hello_ack, error)) {
      *error = "hello: " + *error;
      return false;
    }

    const std::vector<CountUpdate>& updates = c.trace.updates();
    const size_t b =
        static_cast<size_t>(std::max<uint64_t>(s.batch_size, 1));
    const size_t cut = (updates.size() / 2) / b * b;  // batch boundary
    const uint32_t victim = static_cast<uint32_t>(s.seed % num_leaves);
    const bool checkpoint_first = s.seed % 2 == 0;
    bool crashed = false;
    size_t pos = 0;
    while (pos < updates.size()) {
      if (!crashed && pos >= cut) {
        crashed = true;
        if (checkpoint_first) {
          std::string path;
          if (!client.Checkpoint(&path, error)) {
            *error = "checkpoint before crash: " + *error;
            return false;
          }
        }
        launcher.SimulateCrash(victim);
        if (!root.RecoverLeaf(victim, error)) {
          *error = "recovery of leaf " + std::to_string(victim) + ": " +
                   *error;
          return false;
        }
      }
      size_t take = std::min(b, updates.size() - pos);
      PushAckFrame push_ack;
      if (!client.Push(
              std::span<const CountUpdate>(updates.data() + pos, take),
              &push_ack, error)) {
        *error = "push at update " + std::to_string(pos) + ": " + *error;
        return false;
      }
      pos += take;
    }

    SnapshotFrame wire;
    if (!client.Query(&wire, error)) {
      *error = "query: " + *error;
      return false;
    }
    TrackerSnapshot served;
    served.estimate = wire.estimate;
    served.time = wire.time;
    served.messages = wire.messages;
    served.bits = wire.bits;
    if (!SnapshotsBitIdentical(want, served)) {
      *error = "merged snapshot after the crash drill diverges from the "
               "no-failure run: " +
               SnapshotDiff("root", served, "in-process", want);
      return false;
    }

    StateDumpResultFrame dump;
    if (!client.StateDump("conformance", &dump, error)) {
      *error = "state dump: " + *error;
      return false;
    }
    if (dump.state != want_state) {
      *error = "merged SerializeState after the crash drill differs from "
               "the no-failure run (snapshots agree — internal state "
               "drift)";
      return false;
    }

    QueryRangeFrame raw;
    QueryRangeResultFrame result;
    if (!client.QueryRange(raw, &result, error)) {
      *error = "query-range: " + *error;
      return false;
    }
    if (result.sessions.size() != 1) {
      *error = "query-range returned " +
               std::to_string(result.sessions.size()) + " sessions";
      return false;
    }
    if (!RowsMatch(result.sessions[0].rows,
                   EvaluateQuery(shadow.ring().Rows(), raw.spec), error)) {
      *error = "merged history rows: " + *error;
      return false;
    }
    return true;
  }
};

}  // namespace

const std::vector<const Oracle*>& AllOracles() {
  static const AccuracyOracle accuracy;
  static const CostOracle cost;
  static const MonotoneOracle monotone;
  static const ShardParityOracle shard_parity;
  static const CheckpointRoundTripOracle checkpoint_roundtrip;
  static const ServiceParityOracle service_parity;
  static const HistoryParityOracle history_parity;
  static const HierarchyParityOracle hierarchy_parity;
  static const std::vector<const Oracle*> all = {
      &accuracy,  &cost,
      &monotone,  &shard_parity,
      &checkpoint_roundtrip, &service_parity,
      &history_parity, &hierarchy_parity,
  };
  return all;
}

const Oracle* FindOracle(const std::string& name) {
  for (const Oracle* oracle : AllOracles()) {
    if (oracle->name() == name) return oracle;
  }
  return nullptr;
}

std::vector<std::string> OracleNames() {
  std::vector<std::string> names;
  for (const Oracle* oracle : AllOracles()) names.push_back(oracle->name());
  return names;
}

}  // namespace testkit
}  // namespace varstream
