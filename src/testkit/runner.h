// The budgeted conformance loop: generate a scenario, materialize its
// trace, run every selected oracle, shrink whatever fails, and report —
// the engine behind tools/varstream_check.cpp and the fixed-seed
// conformance gtest suites.
//
// Determinism: iteration i draws its scenario from a seed that is a pure
// function of (options.seed, i), and results are keyed by iteration, so
// a run with --iters N produces the same scenarios and verdicts for any
// --threads value. Time budgets (--seconds) bound how many iterations
// happen, never what any iteration does.
//
//   testkit::CheckOptions options;
//   options.iters = 2000;
//   options.seed = 1;
//   options.threads = 8;
//   testkit::CheckReport report = testkit::RunChecks(options);
//   // report.ok(), CheckReportToJson(report)  ("varstream-check-v1")

#ifndef VARSTREAM_TESTKIT_RUNNER_H_
#define VARSTREAM_TESTKIT_RUNNER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "testkit/oracles.h"
#include "testkit/scenario_gen.h"
#include "testkit/shrink.h"

namespace varstream {
namespace testkit {

struct CheckOptions {
  /// Iteration cap; 0 = unbounded (then `seconds` must be set). One
  /// iteration = one generated scenario through every selected oracle.
  uint64_t iters = 0;
  /// Wall-clock budget; 0 = unbounded. When both are 0 the runner
  /// defaults to 100 iterations.
  double seconds = 0.0;
  uint64_t seed = 1;
  unsigned threads = 1;
  /// Oracle names to run (testkit/oracles.h); empty = all.
  std::vector<std::string> oracles;
  /// Focus filters and generation axes.
  GenOptions gen;
  /// Shrink failures before reporting (disable for speed in gtest).
  bool shrink = true;
  uint64_t shrink_attempts = 256;
  /// Where shrunken repro traces are written; empty = don't write files
  /// (the replay command then names "<unsaved>.trace").
  std::string repro_dir;
  /// Stop collecting failure records beyond this many (counters keep
  /// counting; shrinking a flood of failures helps no one).
  uint64_t max_failures = 25;
};

struct OracleStats {
  uint64_t checked = 0;   ///< scenarios where the oracle was applicable
  uint64_t passed = 0;
  uint64_t failed = 0;           ///< hard failures
  uint64_t advisory_failed = 0;  ///< advisory (non-gating) failures
  uint64_t skipped = 0;          ///< not applicable to the scenario
};

struct CheckFailure {
  uint64_t iteration = 0;
  std::string oracle;
  bool advisory = false;
  std::string scenario_id;  ///< shrunken scenario's Id()
  std::string detail;
  uint64_t original_updates = 0;
  uint64_t shrunk_updates = 0;
  std::string replay_command;
  std::string trace_path;  ///< empty when repro_dir was empty
};

struct CheckReport {
  uint64_t seed = 0;
  uint64_t iterations = 0;
  double elapsed_seconds = 0.0;
  /// One entry per selected oracle, in AllOracles() order.
  std::vector<std::pair<std::string, OracleStats>> stats;
  /// Sorted by iteration; capped at options.max_failures records.
  std::vector<CheckFailure> failures;

  /// No hard failures (advisory failures don't gate).
  bool ok() const;
  uint64_t hard_failures() const;
};

/// Runs the loop. Aborts (with a diagnostic) on unknown oracle names or
/// an unsatisfiable generator focus — configuration errors, not check
/// failures. Thread-safe oracles are assumed (they are stateless).
CheckReport RunChecks(const CheckOptions& options);

/// The whole report as one JSON document, schema "varstream-check-v1"
/// (documented in README.md).
std::string CheckReportToJson(const CheckReport& report);

}  // namespace testkit
}  // namespace varstream

#endif  // VARSTREAM_TESTKIT_RUNNER_H_
