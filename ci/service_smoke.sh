#!/usr/bin/env bash
# Service smoke drill (wired into CI, runnable locally):
#
#   bash ci/service_smoke.sh [build-dir]
#
# 1. Starts varstream_serve, replays every mergeable tracker against it
#    (serial and sharded) with varstream_loadgen, and requires the served
#    snapshot to be byte-identical to an in-process run (loadgen exits
#    nonzero on any divergence).
# 2. Replays a recorded trace file through the service.
# 3. Runs the crash drill: checkpoint mid-stream, kill -9 the server,
#    restart with --restore, resume the same stream — parity must still
#    hold against an uninterrupted in-process run.
# 4. Runs the history drill: ingest with sampling on, query the retained
#    series with varstream_query (row count, monotone sample clock,
#    bucket downsampling), checkpoint, kill -9, restore — the served CSV
#    must be byte-identical across the crash.
# 5. Runs the metrics drill: ingest a known workload with
#    --metrics-port=0 on, then require the Prometheus endpoint, the
#    /metrics.json document, and varstream_top --once --json to report
#    exactly that workload's counters.
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVE="$BUILD_DIR/varstream_serve"
LOADGEN="$BUILD_DIR/varstream_loadgen"
RUN="$BUILD_DIR/varstream_run"
TOP="$BUILD_DIR/varstream_top"
WORK="$(mktemp -d)"
SERVER_PID=""
trap '[ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

start_server() {
  : > "$WORK/serve.log"
  "$SERVE" --port=0 "$@" >> "$WORK/serve.log" 2>&1 &
  SERVER_PID=$!
  PORT=""
  for _ in $(seq 1 200); do
    PORT=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
      "$WORK/serve.log")
    [ -n "$PORT" ] && return 0
    sleep 0.05
  done
  echo "FAIL: server did not start"; cat "$WORK/serve.log"; exit 1
}

echo "=== parity: every mergeable tracker, serial and sharded ==="
start_server
for tracker in deterministic randomized naive periodic; do
  for shards in 0 4; do
    $LOADGEN --port="$PORT" --session="$tracker-x$shards" \
      --tracker="$tracker" --stream=random-walk --n=60000 --batch=512 \
      --shards="$shards"
  done
done

echo "=== parity: trace-file replay ==="
$RUN --tracker=naive --stream=sawtooth --n=20000 \
  --trace-out="$WORK/smoke.trace" > /dev/null
$LOADGEN --port="$PORT" --session=trace-replay --tracker=deterministic \
  --trace="$WORK/smoke.trace" --n=20000 --batch=256 --shutdown
wait "$SERVER_PID"
SERVER_PID=""

echo "=== crash drill: checkpoint, kill -9, restore, resume ==="
CKPT="$WORK/state.ckpt"
start_server --checkpoint-path="$CKPT"
# Run 1 pushes the first half and checkpoints exactly at update 50000;
# the parity check covers the pre-crash prefix.
$LOADGEN --port="$PORT" --tracker=randomized --stream=random-walk \
  --n=50000 --batch=512 --shards=4 --checkpoint-at=50000
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

start_server --restore="$CKPT"
grep -q "restored session 'default'" "$WORK/serve.log" || {
  echo "FAIL: restored server did not report the session"
  cat "$WORK/serve.log"; exit 1
}
# Run 2 resumes at update 50000 and finishes the stream; its parity check
# compares against an uninterrupted 100k-update in-process run.
$LOADGEN --port="$PORT" --tracker=randomized --stream=random-walk \
  --n=100000 --batch=512 --shards=4 --skip=50000 --shutdown
wait "$SERVER_PID"
SERVER_PID=""

echo "=== history drill: ingest, query, kill -9, restore — history intact ==="
QUERY="$BUILD_DIR/varstream_query"
HCKPT="$WORK/history.ckpt"
start_server --checkpoint-path="$HCKPT" --history-every=1000 \
  --history-capacity=64
$LOADGEN --port="$PORT" --session=hist --tracker=deterministic \
  --stream=random-walk --n=30000 --batch=500 --checkpoint-at=30000 --quiet
$QUERY --port="$PORT" --session=hist --format=csv --out="$WORK/before.csv"
# 30000 updates at cadence 1000 = exactly 30 retained rows (capacity 64,
# nothing evicted), with a strictly increasing sample clock.
ROWS=$(($(wc -l < "$WORK/before.csv") - 1))
[ "$ROWS" -eq 30 ] || {
  echo "FAIL: expected 30 history rows, got $ROWS"
  cat "$WORK/before.csv"; exit 1
}
awk -F, 'NR > 1 { if (prev != "" && $3 + 0 <= prev + 0) {
    print "FAIL: sample clock not increasing at line " NR; exit 1
  } prev = $3 }' "$WORK/before.csv"
# Downsampling to 5 buckets over evenly spaced samples yields 5 rows.
DOWN=$(($($QUERY --port="$PORT" --session=hist --agg=mean --buckets=5 \
  --format=csv | wc -l) - 1))
[ "$DOWN" -eq 5 ] || {
  echo "FAIL: expected 5 downsampled rows, got $DOWN"; exit 1
}
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

start_server --restore="$HCKPT"
grep -q "restored session 'hist'" "$WORK/serve.log" || {
  echo "FAIL: restored server did not report the session"
  cat "$WORK/serve.log"; exit 1
}
$QUERY --port="$PORT" --session=hist --format=csv --out="$WORK/after.csv"
cmp "$WORK/before.csv" "$WORK/after.csv" || {
  echo "FAIL: history changed across kill -9 + restore"
  diff "$WORK/before.csv" "$WORK/after.csv" || true; exit 1
}
kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

echo "=== metrics drill: Prometheus + MetricsDump report the exact workload ==="
start_server --metrics-port=0
METRICS_PORT=""
for _ in $(seq 1 200); do
  METRICS_PORT=$(sed -n 's/^metrics on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
    "$WORK/serve.log")
  [ -n "$METRICS_PORT" ] && break
  sleep 0.05
done
[ -n "$METRICS_PORT" ] || {
  echo "FAIL: server did not announce its metrics port"
  cat "$WORK/serve.log"; exit 1
}
# 50000 updates in 500-update batches = exactly 100 applied batches.
$LOADGEN --port="$PORT" --session=metrics --tracker=deterministic \
  --stream=random-walk --n=50000 --batch=500 --quiet
scrape() {  # http path, output file — plain-bash HTTP GET, no curl dep
  exec 3<>"/dev/tcp/127.0.0.1/$METRICS_PORT"
  printf 'GET %s HTTP/1.0\r\n\r\n' "$1" >&3
  cat <&3 > "$2"
  exec 3<&-
}
scrape /metrics "$WORK/metrics.prom"
scrape /metrics.json "$WORK/metrics.json"
PROM_UPDATES=$(awk '/^varstream_updates_applied_total/{s+=$2} END{print s+0}' \
  "$WORK/metrics.prom")
PROM_BATCHES=$(awk '/^varstream_batches_applied_total/{s+=$2} END{print s+0}' \
  "$WORK/metrics.prom")
[ "$PROM_UPDATES" = "50000" ] && [ "$PROM_BATCHES" = "100" ] || {
  echo "FAIL: Prometheus counted updates=$PROM_UPDATES batches=$PROM_BATCHES,"
  echo "      expected exactly 50000/100"
  cat "$WORK/metrics.prom"; exit 1
}
grep -q '"varstream_metrics":1' "$WORK/metrics.json" || {
  echo "FAIL: /metrics.json is not a MetricsDump document"
  cat "$WORK/metrics.json"; exit 1
}
grep -q 'varstream_apply_latency_us_count' "$WORK/metrics.prom" || {
  echo "FAIL: Prometheus scrape lacks the apply-latency histogram"; exit 1
}
$TOP --port="$PORT" --once --json > "$WORK/top.json" || {
  echo "FAIL: varstream_top --once --json failed"; exit 1
}
grep -q '"role":"server"' "$WORK/top.json" || {
  echo "FAIL: varstream_top did not return a server document"
  cat "$WORK/top.json"; exit 1
}
$LOADGEN --port="$PORT" --session=down --n=1 --shutdown --quiet > /dev/null
wait "$SERVER_PID"
SERVER_PID=""
echo "metrics drill ok: 50000 updates / 100 batches visible on every surface"

echo "service smoke OK"
