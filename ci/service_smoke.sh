#!/usr/bin/env bash
# Service smoke drill (wired into CI, runnable locally):
#
#   bash ci/service_smoke.sh [build-dir]
#
# 1. Starts varstream_serve, replays every mergeable tracker against it
#    (serial and sharded) with varstream_loadgen, and requires the served
#    snapshot to be byte-identical to an in-process run (loadgen exits
#    nonzero on any divergence).
# 2. Replays a recorded trace file through the service.
# 3. Runs the crash drill: checkpoint mid-stream, kill -9 the server,
#    restart with --restore, resume the same stream — parity must still
#    hold against an uninterrupted in-process run.
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVE="$BUILD_DIR/varstream_serve"
LOADGEN="$BUILD_DIR/varstream_loadgen"
RUN="$BUILD_DIR/varstream_run"
WORK="$(mktemp -d)"
SERVER_PID=""
trap '[ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

start_server() {
  : > "$WORK/serve.log"
  "$SERVE" --port=0 "$@" >> "$WORK/serve.log" 2>&1 &
  SERVER_PID=$!
  PORT=""
  for _ in $(seq 1 200); do
    PORT=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
      "$WORK/serve.log")
    [ -n "$PORT" ] && return 0
    sleep 0.05
  done
  echo "FAIL: server did not start"; cat "$WORK/serve.log"; exit 1
}

echo "=== parity: every mergeable tracker, serial and sharded ==="
start_server
for tracker in deterministic randomized naive periodic; do
  for shards in 0 4; do
    $LOADGEN --port="$PORT" --session="$tracker-x$shards" \
      --tracker="$tracker" --stream=random-walk --n=60000 --batch=512 \
      --shards="$shards"
  done
done

echo "=== parity: trace-file replay ==="
$RUN --tracker=naive --stream=sawtooth --n=20000 \
  --trace-out="$WORK/smoke.trace" > /dev/null
$LOADGEN --port="$PORT" --session=trace-replay --tracker=deterministic \
  --trace="$WORK/smoke.trace" --n=20000 --batch=256 --shutdown
wait "$SERVER_PID"
SERVER_PID=""

echo "=== crash drill: checkpoint, kill -9, restore, resume ==="
CKPT="$WORK/state.ckpt"
start_server --checkpoint-path="$CKPT"
# Run 1 pushes the first half and checkpoints exactly at update 50000;
# the parity check covers the pre-crash prefix.
$LOADGEN --port="$PORT" --tracker=randomized --stream=random-walk \
  --n=50000 --batch=512 --shards=4 --checkpoint-at=50000
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

start_server --restore="$CKPT"
grep -q "restored session 'default'" "$WORK/serve.log" || {
  echo "FAIL: restored server did not report the session"
  cat "$WORK/serve.log"; exit 1
}
# Run 2 resumes at update 50000 and finishes the stream; its parity check
# compares against an uninterrupted 100k-update in-process run.
$LOADGEN --port="$PORT" --tracker=randomized --stream=random-walk \
  --n=100000 --batch=512 --shards=4 --skip=50000 --shutdown
wait "$SERVER_PID"
SERVER_PID=""

echo "service smoke OK"
