#!/usr/bin/env bash
# Many-connections gauntlet (wired into CI, runnable locally):
#
#   bash ci/connections_smoke.sh [build-dir]
#
# 1. The gauntlet: varstream_loadgen --connections=1000 opens 1000
#    concurrent sessions (one epoll client thread) against a 2-worker
#    varstream_serve and requires byte-identical parity for EVERY
#    session. While the loadgen holds all 1000 connections open, the
#    script samples /proc/<pid>/status: the server's thread count must
#    be EXACTLY what it was before the first connection — the worker
#    pool never grows with load.
# 2. The overload drill: the server restarts with --pending-batch-cap=1
#    and the loadgen pipelines 16-deep, forcing Overloaded replies. The
#    clients must receive them as loud backpressure (not a hang, not a
#    disconnect), back off, go-back-N resend, and still converge to
#    byte-identical estimates; the server's stats line must account for
#    every rejection.
# 3. The metrics drill rides along: the server runs with --metrics-port=0,
#    the Prometheus endpoint and varstream_top --once --json are scraped
#    WHILE all 1000 connections are live (the scrape must not stall the
#    workers), and the overload drill cross-checks the Prometheus
#    overload_rejections and seq_gap_rejections series against both the
#    client's counts and the server's stats line. Scrapes land in the
#    out dir (second arg) so CI uploads them as artifacts.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-connections-smoke-out}"
SERVE="$BUILD_DIR/varstream_serve"
LOADGEN="$BUILD_DIR/varstream_loadgen"
TOP="$BUILD_DIR/varstream_top"
WORK="$(mktemp -d)"
SERVER_PID=""
trap '[ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null; rm -rf "$WORK"' EXIT
mkdir -p "$OUT_DIR"

start_server() {
  : > "$WORK/serve.log"
  "$SERVE" --port=0 --workers=2 --stats --metrics-port=0 "$@" \
    >> "$WORK/serve.log" 2>&1 &
  SERVER_PID=$!
  PORT=""
  for _ in $(seq 1 200); do
    PORT=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
      "$WORK/serve.log")
    METRICS_PORT=$(sed -n 's/^metrics on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
      "$WORK/serve.log")
    [ -n "$PORT" ] && [ -n "$METRICS_PORT" ] && return 0
    sleep 0.05
  done
  echo "FAIL: server did not start"; cat "$WORK/serve.log"; exit 1
}

scrape() {  # http path, output file — plain-bash HTTP GET, no curl dep
  exec 3<>"/dev/tcp/127.0.0.1/$METRICS_PORT"
  printf 'GET %s HTTP/1.0\r\n\r\n' "$1" >&3
  cat <&3 > "$2"
  exec 3<&-
}

threads_of() {
  awk '/^Threads:/{print $2}' "/proc/$1/status"
}

require_line() {  # file, grep pattern, failure message
  if ! grep -q "$2" "$1"; then
    echo "FAIL: $3"
    echo "--- $1 ---"; cat "$1"
    exit 1
  fi
}

echo "=== gauntlet: 1000 connections, fixed worker-thread count ==="
start_server
grep -q '^workers: 2$' "$WORK/serve.log" \
  || { echo "FAIL: server did not report its worker count"; exit 1; }
THREADS_BEFORE=$(threads_of "$SERVER_PID")
echo "server threads before load: $THREADS_BEFORE"

: > "$WORK/gauntlet.log"
"$LOADGEN" --port="$PORT" --connections=1000 --n=500 --batch=64 \
  --hold-ms=3000 --shutdown >> "$WORK/gauntlet.log" 2>&1 &
LOADGEN_PID=$!
# Block on the hold marker: every push is acked and all 1000
# connections are still open when it appears.
HELD=""
for _ in $(seq 1 1200); do
  if grep -q '^holding 1000 open connections$' "$WORK/gauntlet.log"; then
    HELD=1; break
  fi
  if ! kill -0 "$LOADGEN_PID" 2>/dev/null; then break; fi
  sleep 0.1
done
[ -n "$HELD" ] || { echo "FAIL: loadgen never reached the hold window"
                    cat "$WORK/gauntlet.log"; exit 1; }
THREADS_DURING=$(threads_of "$SERVER_PID")
echo "server threads under 1000 connections: $THREADS_DURING"
if [ "$THREADS_BEFORE" != "$THREADS_DURING" ]; then
  echo "FAIL: thread count moved under load ($THREADS_BEFORE -> $THREADS_DURING);"
  echo "      the worker pool must not scale with connections"
  exit 1
fi
# Metrics drill: scrape Prometheus, the JSON document, and varstream_top
# inside the hold window — 1000 live connections, every push acked, the
# scrape path must answer without stalling the workers.
scrape /metrics "$OUT_DIR/gauntlet-metrics.prom"
scrape /metrics.json "$OUT_DIR/gauntlet-metrics.json"
require_line "$OUT_DIR/gauntlet-metrics.prom" \
  '^varstream_connections_current 1000$' \
  "Prometheus scrape does not show the 1000 held connections"
require_line "$OUT_DIR/gauntlet-metrics.prom" \
  '^varstream_updates_applied_total' \
  "Prometheus scrape lacks the updates_applied series"
require_line "$OUT_DIR/gauntlet-metrics.json" '"varstream_metrics":1' \
  "metrics.json scrape is not a MetricsDump document"
"$TOP" --port="$PORT" --once --json > "$OUT_DIR/gauntlet-top.json" \
  || { echo "FAIL: varstream_top could not scrape the loaded server"; exit 1; }
require_line "$OUT_DIR/gauntlet-top.json" '"role":"server"' \
  "varstream_top --json did not return a server document"
PROM_UPDATES=$(awk '/^varstream_updates_applied_total/{s+=$2} END{print s+0}' \
  "$OUT_DIR/gauntlet-metrics.prom")
[ "$PROM_UPDATES" = "500000" ] \
  || { echo "FAIL: mid-hold scrape counted $PROM_UPDATES updates_applied," \
            "expected 500000 (all pushes were acked before the hold)"; exit 1; }
echo "metrics drill ok: scraped 500000 applied updates under full load"
wait "$LOADGEN_PID" \
  || { echo "FAIL: gauntlet loadgen failed"; cat "$WORK/gauntlet.log"; exit 1; }
wait "$SERVER_PID"; SERVER_PID=""
require_line "$WORK/gauntlet.log" \
  '^many: connections=1000 pipeline=4 pushed=500000 overloads=0 gaps=0 parity=ok lat_p50_us=[0-9][0-9]* lat_p99_us=[0-9][0-9]*$' \
  "gauntlet parity line missing or wrong"
# accepted = 1000 gauntlet conns + varstream_top's scrape conn + the
# loadgen's shutdown conn; peak = the 1000 held + the top scrape.
require_line "$WORK/serve.log" \
  '^stats: workers=2 accepted=1002 peak_connections=1001 overload_rejections=0 seq_gap_rejections=0 peak_pending_batches=[0-9][0-9]* worker_accepted=[0-9][0-9]*,[0-9][0-9]*$' \
  "server stats line missing or wrong"
echo "gauntlet ok: 1000 parity-clean sessions, thread count pinned at $THREADS_BEFORE"

echo "=== overload drill: cap=1, pipeline=16, loud backpressure ==="
start_server --pending-batch-cap=1
: > "$WORK/overload.log"
# No --shutdown here: the Prometheus endpoint is scraped after the run so
# its overload series can be compared against the client's count and the
# stats line; a fresh-session shutdown ping then stops the server.
"$LOADGEN" --port="$PORT" --connections=50 --n=4000 --batch=64 \
  --pipeline=16 >> "$WORK/overload.log" 2>&1 \
  || { echo "FAIL: overload loadgen failed"; cat "$WORK/overload.log"; exit 1; }
scrape /metrics "$OUT_DIR/overload-metrics.prom"
"$LOADGEN" --port="$PORT" --session=down --n=1 --shutdown --quiet \
  > /dev/null 2>&1 \
  || { echo "FAIL: shutdown ping failed"; exit 1; }
wait "$SERVER_PID"; SERVER_PID=""
require_line "$WORK/overload.log" '^many: .* parity=ok .*$' \
  "overload drill lost parity"
# The drill must actually have provoked backpressure, and the client, the
# server's stats line, and the Prometheus scrape must agree on how much —
# for BOTH rejection kinds: true overloads (in-order batch hit the
# cap/budget) and seq gaps (go-back-N collateral behind a bounce).
CLIENT_OVERLOADS=$(sed -n 's/^many: .* overloads=\([0-9]*\) .*$/\1/p' \
  "$WORK/overload.log")
CLIENT_GAPS=$(sed -n 's/^many: .* gaps=\([0-9]*\) .*$/\1/p' \
  "$WORK/overload.log")
SERVER_OVERLOADS=$(sed -n \
  's/^stats: .* overload_rejections=\([0-9]*\) .*$/\1/p' "$WORK/serve.log")
SERVER_GAPS=$(sed -n \
  's/^stats: .* seq_gap_rejections=\([0-9]*\) .*$/\1/p' "$WORK/serve.log")
PROM_OVERLOADS=$(awk \
  '/^varstream_overload_rejections_total/{s+=$2} END{print s+0}' \
  "$OUT_DIR/overload-metrics.prom")
PROM_GAPS=$(awk \
  '/^varstream_seq_gap_rejections_total/{s+=$2} END{print s+0}' \
  "$OUT_DIR/overload-metrics.prom")
[ -n "$CLIENT_OVERLOADS" ] && [ "$CLIENT_OVERLOADS" -gt 0 ] \
  || { echo "FAIL: overload drill saw no Overloaded replies"; exit 1; }
[ -n "$CLIENT_GAPS" ] && [ "$CLIENT_GAPS" -gt 0 ] \
  || { echo "FAIL: a 16-deep pipeline against cap=1 must produce gap" \
            "bounces behind the first rejection"; exit 1; }
[ "$CLIENT_OVERLOADS" = "$SERVER_OVERLOADS" ] \
  || { echo "FAIL: client counted $CLIENT_OVERLOADS overload rejections," \
            "server counted $SERVER_OVERLOADS"; exit 1; }
[ "$CLIENT_GAPS" = "$SERVER_GAPS" ] \
  || { echo "FAIL: client counted $CLIENT_GAPS gap rejections, server" \
            "counted $SERVER_GAPS"; exit 1; }
[ "$CLIENT_OVERLOADS" = "$PROM_OVERLOADS" ] \
  || { echo "FAIL: client counted $CLIENT_OVERLOADS overload rejections," \
            "Prometheus scrape counted $PROM_OVERLOADS"; exit 1; }
[ "$CLIENT_GAPS" = "$PROM_GAPS" ] \
  || { echo "FAIL: client counted $CLIENT_GAPS gap rejections, Prometheus" \
            "scrape counted $PROM_GAPS"; exit 1; }
echo "overload drill ok: $CLIENT_OVERLOADS overloads + $CLIENT_GAPS gap" \
     "bounces, all converged, Prometheus agrees"

echo "ALL CONNECTION SMOKE TESTS PASSED"
