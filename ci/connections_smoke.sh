#!/usr/bin/env bash
# Many-connections gauntlet (wired into CI, runnable locally):
#
#   bash ci/connections_smoke.sh [build-dir]
#
# 1. The gauntlet: varstream_loadgen --connections=1000 opens 1000
#    concurrent sessions (one epoll client thread) against a 2-worker
#    varstream_serve and requires byte-identical parity for EVERY
#    session. While the loadgen holds all 1000 connections open, the
#    script samples /proc/<pid>/status: the server's thread count must
#    be EXACTLY what it was before the first connection — the worker
#    pool never grows with load.
# 2. The overload drill: the server restarts with --pending-batch-cap=1
#    and the loadgen pipelines 16-deep, forcing Overloaded replies. The
#    clients must receive them as loud backpressure (not a hang, not a
#    disconnect), back off, go-back-N resend, and still converge to
#    byte-identical estimates; the server's stats line must account for
#    every rejection.
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVE="$BUILD_DIR/varstream_serve"
LOADGEN="$BUILD_DIR/varstream_loadgen"
WORK="$(mktemp -d)"
SERVER_PID=""
trap '[ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

start_server() {
  : > "$WORK/serve.log"
  "$SERVE" --port=0 --workers=2 --stats "$@" >> "$WORK/serve.log" 2>&1 &
  SERVER_PID=$!
  PORT=""
  for _ in $(seq 1 200); do
    PORT=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
      "$WORK/serve.log")
    [ -n "$PORT" ] && return 0
    sleep 0.05
  done
  echo "FAIL: server did not start"; cat "$WORK/serve.log"; exit 1
}

threads_of() {
  awk '/^Threads:/{print $2}' "/proc/$1/status"
}

require_line() {  # file, grep pattern, failure message
  if ! grep -q "$2" "$1"; then
    echo "FAIL: $3"
    echo "--- $1 ---"; cat "$1"
    exit 1
  fi
}

echo "=== gauntlet: 1000 connections, fixed worker-thread count ==="
start_server
grep -q '^workers: 2$' "$WORK/serve.log" \
  || { echo "FAIL: server did not report its worker count"; exit 1; }
THREADS_BEFORE=$(threads_of "$SERVER_PID")
echo "server threads before load: $THREADS_BEFORE"

: > "$WORK/gauntlet.log"
"$LOADGEN" --port="$PORT" --connections=1000 --n=500 --batch=64 \
  --hold-ms=3000 --shutdown >> "$WORK/gauntlet.log" 2>&1 &
LOADGEN_PID=$!
# Block on the hold marker: every push is acked and all 1000
# connections are still open when it appears.
HELD=""
for _ in $(seq 1 1200); do
  if grep -q '^holding 1000 open connections$' "$WORK/gauntlet.log"; then
    HELD=1; break
  fi
  if ! kill -0 "$LOADGEN_PID" 2>/dev/null; then break; fi
  sleep 0.1
done
[ -n "$HELD" ] || { echo "FAIL: loadgen never reached the hold window"
                    cat "$WORK/gauntlet.log"; exit 1; }
THREADS_DURING=$(threads_of "$SERVER_PID")
echo "server threads under 1000 connections: $THREADS_DURING"
if [ "$THREADS_BEFORE" != "$THREADS_DURING" ]; then
  echo "FAIL: thread count moved under load ($THREADS_BEFORE -> $THREADS_DURING);"
  echo "      the worker pool must not scale with connections"
  exit 1
fi
wait "$LOADGEN_PID" \
  || { echo "FAIL: gauntlet loadgen failed"; cat "$WORK/gauntlet.log"; exit 1; }
wait "$SERVER_PID"; SERVER_PID=""
require_line "$WORK/gauntlet.log" \
  '^many: connections=1000 pipeline=4 pushed=500000 overloads=0 parity=ok$' \
  "gauntlet parity line missing or wrong"
require_line "$WORK/serve.log" \
  '^stats: workers=2 accepted=1001 peak_connections=1000 overload_rejections=0$' \
  "server stats line missing or wrong"
echo "gauntlet ok: 1000 parity-clean sessions, thread count pinned at $THREADS_BEFORE"

echo "=== overload drill: cap=1, pipeline=16, loud backpressure ==="
start_server --pending-batch-cap=1
: > "$WORK/overload.log"
"$LOADGEN" --port="$PORT" --connections=50 --n=4000 --batch=64 \
  --pipeline=16 --shutdown >> "$WORK/overload.log" 2>&1 \
  || { echo "FAIL: overload loadgen failed"; cat "$WORK/overload.log"; exit 1; }
wait "$SERVER_PID"; SERVER_PID=""
require_line "$WORK/overload.log" '^many: .* parity=ok$' \
  "overload drill lost parity"
# The drill must actually have provoked backpressure, and the client and
# server must agree on how much.
CLIENT_OVERLOADS=$(sed -n 's/^many: .* overloads=\([0-9]*\) .*$/\1/p' \
  "$WORK/overload.log")
SERVER_OVERLOADS=$(sed -n 's/^stats: .* overload_rejections=\([0-9]*\)$/\1/p' \
  "$WORK/serve.log")
[ -n "$CLIENT_OVERLOADS" ] && [ "$CLIENT_OVERLOADS" -gt 0 ] \
  || { echo "FAIL: overload drill saw no Overloaded replies"; exit 1; }
[ "$CLIENT_OVERLOADS" = "$SERVER_OVERLOADS" ] \
  || { echo "FAIL: client counted $CLIENT_OVERLOADS rejections, server" \
            "counted $SERVER_OVERLOADS"; exit 1; }
echo "overload drill ok: $CLIENT_OVERLOADS rejections, all converged"

echo "ALL CONNECTION SMOKE TESTS PASSED"
