#!/usr/bin/env bash
# Hierarchy smoke drill (wired into CI, runnable locally):
#
#   bash ci/hierarchy_smoke.sh [build-dir] [artifact-dir]
#
# Two runs of the same 100k-update stream against a varstream_root
# supervising 3 varstream_serve leaf processes, with root-side history
# sampling on:
#
#   run A (reference): uninterrupted ingest; the merged history series
#          is captured with varstream_query as ref.csv. Loadgen itself
#          enforces bit-for-bit snapshot parity against an in-process
#          run (exit nonzero on divergence).
#   run B (crash drill): fresh tree, ingest the first 50k and checkpoint,
#          kill -9 one leaf process, resume with --skip=50000 — the
#          supervisor must respawn the leaf with --restore and replay
#          the journal while the client only sees a paused ack. The
#          final merged CSV must be byte-identical to ref.csv, and the
#          root must report exactly one leaf restart.
#
# Also drives the leaf fleet DIRECTLY (loadgen --topology) against three
# standalone leaves to pin the client-side partition/splice path.
# Artifacts (CSVs + root/leaf logs) are copied to the artifact dir for
# upload.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-hierarchy-smoke-out}"
ROOT="$BUILD_DIR/varstream_root"
SERVE="$BUILD_DIR/varstream_serve"
LOADGEN="$BUILD_DIR/varstream_loadgen"
QUERY="$BUILD_DIR/varstream_query"
WORK="$(mktemp -d)"
ROOT_PID=""
EXTRA_PIDS=""

cleanup() {
  [ -n "$ROOT_PID" ] && kill -9 "$ROOT_PID" 2>/dev/null
  for pid in $EXTRA_PIDS; do kill -9 "$pid" 2>/dev/null; done
  # Leaves are separate processes; reap any the root left behind.
  pkill -9 -f "varstream_serve .*--port=0 --checkpoint-path=$WORK" \
    2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

mkdir -p "$OUT_DIR"

# Starts varstream_root over a fresh leaf dir; sets PORT and LEAF_PIDS.
start_root() {
  local dir="$1"; shift
  mkdir -p "$dir"
  : > "$dir/root.log"
  "$ROOT" --serve="$SERVE" --dir="$dir" --leaves=3 --port=0 \
    --history-every=1000 --history-capacity=64 "$@" \
    >> "$dir/root.log" 2>&1 &
  ROOT_PID=$!
  PORT=""
  for _ in $(seq 1 200); do
    PORT=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
      "$dir/root.log")
    [ -n "$PORT" ] && break
    sleep 0.05
  done
  [ -n "$PORT" ] || {
    echo "FAIL: root did not start"; cat "$dir/root.log"; exit 1
  }
  # Wait for all three per-leaf lines, then collect the pids.
  for _ in $(seq 1 200); do
    [ "$(grep -c '^leaf [0-9]* listening' "$dir/root.log")" -eq 3 ] && break
    sleep 0.05
  done
  LEAF_PIDS=$(sed -n 's/^leaf [0-9]* listening .* pid=\([0-9]*\)$/\1/p' \
    "$dir/root.log")
  [ "$(echo "$LEAF_PIDS" | wc -w)" -eq 3 ] || {
    echo "FAIL: expected 3 leaf lines"; cat "$dir/root.log"; exit 1
  }
}

# Sends a Shutdown frame through a throwaway one-batch session and
# reaps the root (loadgen refuses --n=0).
stop_root() {
  $LOADGEN --port="$PORT" --session=bye --tracker=deterministic \
    --stream=random-walk --n=512 --batch=512 --shards=2 --shutdown \
    --quiet > /dev/null
  wait "$ROOT_PID"
  ROOT_PID=""
}

echo "=== run A: uninterrupted 100k reference ==="
start_root "$WORK/ref"
$LOADGEN --port="$PORT" --session=hist --tracker=deterministic \
  --stream=random-walk --n=100000 --batch=500 --shards=2 --quiet
$QUERY --port="$PORT" --session=hist --format=csv --out="$WORK/ref.csv"
# 100 samples at cadence 1000 against capacity 64: the ring keeps the
# newest 64 rows.
ROWS=$(($(wc -l < "$WORK/ref.csv") - 1))
[ "$ROWS" -eq 64 ] || {
  echo "FAIL: expected 64 history rows, got $ROWS"
  cat "$WORK/ref.csv"; exit 1
}
stop_root

echo "=== run B: checkpoint at 50k, kill -9 a leaf, resume to parity ==="
start_root "$WORK/drill"
$LOADGEN --port="$PORT" --session=hist --tracker=deterministic \
  --stream=random-walk --n=50000 --batch=500 --shards=2 \
  --checkpoint-at=50000 --quiet
VICTIM=$(echo "$LEAF_PIDS" | tr ' \n' '\n\n' | sed -n '2p')
kill -9 "$VICTIM"
# The resume run hits the dead leaf on its first push; the root must
# respawn it with --restore from leaf_1.ckpt, replay the journal suffix,
# and keep serving — parity at the end proves the recovery was exact.
$LOADGEN --port="$PORT" --session=hist --tracker=deterministic \
  --stream=random-walk --n=100000 --batch=500 --shards=2 \
  --skip=50000 --quiet
$QUERY --port="$PORT" --session=hist --format=csv --out="$WORK/drill.csv"
cmp "$WORK/ref.csv" "$WORK/drill.csv" || {
  echo "FAIL: merged history diverged across kill -9 + supervisor restore"
  diff "$WORK/ref.csv" "$WORK/drill.csv" || true; exit 1
}
stop_root
grep -q 'shutdown requested; leaf restarts: 0 1 0' "$WORK/drill/root.log" || {
  echo "FAIL: root did not report exactly one restart of leaf 1"
  cat "$WORK/drill/root.log"; exit 1
}

echo "=== direct topology drive: 3 standalone leaves, client-side splice ==="
mkdir -p "$WORK/fleet"
FLEET_PORTS=""
for i in 0 1 2; do
  : > "$WORK/fleet/leaf_$i.log"
  "$SERVE" --port=0 >> "$WORK/fleet/leaf_$i.log" 2>&1 &
  EXTRA_PIDS="$EXTRA_PIDS $!"
  P=""
  for _ in $(seq 1 200); do
    P=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
      "$WORK/fleet/leaf_$i.log")
    [ -n "$P" ] && break
    sleep 0.05
  done
  [ -n "$P" ] || { echo "FAIL: fleet leaf $i did not start"; exit 1; }
  FLEET_PORTS="$FLEET_PORTS,$P"
done
$LOADGEN --topology="${FLEET_PORTS#,}" --tracker=randomized \
  --stream=random-walk --n=60000 --batch=512 --shards=2 --shutdown --quiet
for pid in $EXTRA_PIDS; do wait "$pid" 2>/dev/null || true; done
EXTRA_PIDS=""

cp "$WORK/ref.csv" "$WORK/drill.csv" "$OUT_DIR/"
cp "$WORK/ref/root.log" "$OUT_DIR/root_ref.log"
cp "$WORK/drill/root.log" "$OUT_DIR/root_drill.log"
cp "$WORK/drill"/leaf_*.log "$OUT_DIR/" 2>/dev/null || true

echo "hierarchy smoke OK"
