#!/usr/bin/env python3
"""Benchmark-regression gate for varstream CI.

Compares a freshly generated bench JSON report against the committed
baseline and fails when any benchmark lost more than the threshold
(default 25%) of its throughput. Two schema families are accepted (see
README.md "Bench JSON schema"), each with its own committed baseline:

  varstream-bench-shards-v1/-v2    bench_shards (ci/bench_baseline.json)
  varstream-bench-hierarchy-v1     bench_hierarchy
                                   (ci/bench_hierarchy_baseline.json)
  varstream-bench-service-v3       bench_service
                                   (ci/bench_service_baseline.json)

Baseline and current must come from the same family — a shards report
cannot gate a hierarchy run.

Because CI runners and developer machines differ in absolute speed, the
default comparison mode is *normalized*: every benchmark's updates_per_sec
is divided by the same run's reference row (the cheapest, most
machine-bound one — `ingest/naive/serial` for shards,
`ingest/in-process/serial` for hierarchy), so a uniformly slower machine
cancels out and only genuine relative regressions — e.g. the sharded
engine or the root hop getting more expensive relative to serial ingest
— trip the gate. Pass --mode=absolute for same-machine comparisons
(e.g. a perf lab).

Exit codes: 0 ok, 1 regression found, 2 usage / malformed input.

Escape hatch: the workflow skips this check when the PR carries the
`bench-exempt` label (see .github/workflows/ci.yml); to accept a new
performance baseline, regenerate it with
    ./build/bench_shards --json=ci/bench_baseline.json
    ./build/bench_hierarchy --json=ci/bench_hierarchy_baseline.json
and commit the result.
"""

import argparse
import json
import sys

# schema -> (family, normalized-mode reference row, host block required,
# cross-regime advisory). The host block is mandatory in every schema
# generation after the first, so the gate can reason about the
# parallelism regime. Families whose rows change shape with the core
# count (shards, hierarchy) downgrade to advisory when baseline and
# current hosts differ; the service family does NOT — its rows measure
# event-loop and wire overhead relative to serial ingest, which is a
# same-machine ratio in any regime, so its gate always enforces.
SCHEMAS = {
    "varstream-bench-shards-v1": (
        "shards",
        "ingest/naive/serial",
        False,
        True,
    ),
    "varstream-bench-shards-v2": (
        "shards",
        "ingest/naive/serial",
        True,
        True,
    ),
    "varstream-bench-hierarchy-v1": (
        "hierarchy",
        "ingest/in-process/serial",
        True,
        True,
    ),
    "varstream-bench-service-v3": (
        "service",
        "ingest/in-process/serial",
        True,
        False,
    ),
}


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    schema = doc.get("schema")
    if schema not in SCHEMAS:
        sys.exit(f"error: {path}: unexpected schema {schema!r}")
    family, reference, host_required, regime_advisory = SCHEMAS[schema]
    rows = {b["name"]: b for b in doc.get("benchmarks", [])}
    if not rows:
        sys.exit(f"error: {path}: no benchmarks")
    if host_required and "host" not in doc:
        sys.exit(f"error: {path}: schema {schema} requires a host block")
    cores = doc.get("host", {}).get("hardware_concurrency", 0)
    return rows, cores, family, reference, regime_advisory


def throughputs(rows, mode, reference, path):
    if mode == "absolute":
        return {name: row["updates_per_sec"] for name, row in rows.items()}
    ref = rows.get(reference)
    if ref is None:
        sys.exit(
            f"error: {path}: normalized mode needs the {reference!r} row"
        )
    return {
        name: row["updates_per_sec"] / ref["updates_per_sec"]
        for name, row in rows.items()
    }


def parallel_speedup_failures(rows, cores):
    """On a genuinely multi-core host, shards=4 must beat serial ingest
    for every sharded (mergeable) tracker — parallel speedup is the whole
    point of the sharded engine, so shards=4 <= serial is a hard failure
    there, never a warning. On one core the comparison measures
    serialization overhead and is skipped (the loud warning above covers
    it)."""
    if cores <= 1:
        return []
    by_tracker = {}
    for row in rows.values():
        tracker = row.get("tracker")
        if tracker is None:
            continue
        by_tracker.setdefault(tracker, {})[row.get("shards", 0)] = row[
            "updates_per_sec"
        ]
    failures = []
    for tracker, shard_rows in sorted(by_tracker.items()):
        serial = shard_rows.get(0)
        parallel = shard_rows.get(4)
        if serial is None or parallel is None:
            continue
        if parallel <= serial:
            failures.append((tracker, serial, parallel))
    return failures


# Floor on how much of the in-process serial ingest rate survives the
# trip through the service (event loop + framing + CRC + syscalls). The
# zero-copy decode path holds this comfortably; dipping under it means
# the wire path grew a per-update cost again.
SERVICE_SERIAL_FLOOR = 0.40


def service_serial_ratio(rows):
    in_process = rows.get("ingest/in-process/serial")
    service = rows.get("ingest/service/serial")
    if in_process is None or service is None:
        return None
    return service["updates_per_sec"] / in_process["updates_per_sec"]


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly generated JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum tolerated fractional throughput loss (default 0.25)",
    )
    parser.add_argument(
        "--mode",
        choices=("normalized", "absolute"),
        default="normalized",
        help="normalized (default): compare ratios to the schema family's "
        "reference row, which cancels machine speed; absolute: compare raw "
        "updates/s",
    )
    args = parser.parse_args()

    baseline, base_cores, base_family, reference, regime_advisory = load(
        args.baseline
    )
    current, cur_cores, cur_family, _, _ = load(args.current)
    if base_family != cur_family:
        sys.exit(
            f"error: baseline is a {base_family!r} report but current is "
            f"{cur_family!r}; each family gates against its own baseline"
        )
    base_tp = throughputs(baseline, args.mode, reference, args.baseline)
    cur_tp = throughputs(current, args.mode, reference, args.current)

    # On a single hardware thread every worker count serializes onto one
    # core: sharded rows measure lock/queue overhead, not the parallel
    # engine. Flag it loudly so nobody reads a 1-core run as a speedup
    # (or regression) measurement.
    for label, cores in (("baseline", base_cores), ("current", cur_cores)):
        if cores == 1:
            print(
                f"warning: the {label} run was recorded on a SINGLE-CORE "
                "host; its sharded rows measure serialization overhead "
                "only and say nothing about parallel speedup."
            )

    # Normalization cancels scalar machine speed but not parallelism:
    # sharded rows genuinely change shape with the core count, so a
    # baseline recorded in a different parallelism regime cannot gate.
    # Report, but downgrade failures to a warning and ask for a baseline
    # refresh from this run's artifact. The service family opts out of
    # this escape (see SCHEMAS): its gate enforces on every host.
    advisory = regime_advisory and base_cores != cur_cores
    if advisory:
        print(
            f"warning: baseline host has {base_cores} core(s) but this "
            f"host has {cur_cores}; sharded-row ratios are not comparable "
            "across parallelism regimes, so this check is ADVISORY. "
            "Refresh the baseline from this run's artifact "
            "(copy BENCH_shards_ci.json to ci/bench_baseline.json) to "
            "re-arm the gate."
        )

    shared = sorted(set(base_tp) & set(cur_tp))
    if not shared:
        sys.exit("error: baseline and current share no benchmark names")
    missing = sorted(set(base_tp) - set(cur_tp))
    if missing:
        print(f"warning: benchmarks missing from current run: {missing}")

    hard_failures = []
    if cur_family == "shards":
        for tracker, serial, parallel in parallel_speedup_failures(
            current, cur_cores
        ):
            print(
                f"FAIL: {tracker}: shards=4 ingest "
                f"({parallel:,.0f} updates/s) did not beat serial "
                f"({serial:,.0f} updates/s) on a {cur_cores}-core host"
            )
            hard_failures.append(f"{tracker}: no parallel speedup")
    if cur_family == "service":
        ratio = service_serial_ratio(current)
        if ratio is not None:
            print(
                f"service-serial / in-process-serial ratio: {ratio:.2%} "
                f"(floor {SERVICE_SERIAL_FLOOR:.0%})"
            )
            if ratio < SERVICE_SERIAL_FLOOR:
                print(
                    "FAIL: the service wire path keeps less than "
                    f"{SERVICE_SERIAL_FLOOR:.0%} of in-process serial "
                    "ingest throughput"
                )
                hard_failures.append("service-serial ratio under floor")

    regressions = []
    width = max(len(n) for n in shared)
    print(f"mode={args.mode} threshold={args.threshold:.0%}")
    for name in shared:
        ratio = cur_tp[name] / base_tp[name]
        flag = ""
        # In normalized mode the reference row is 1.0/1.0 by construction.
        if ratio < 1.0 - args.threshold:
            regressions.append((name, ratio))
            flag = "  <-- REGRESSION"
        print(f"  {name:<{width}}  {ratio:7.2%} of baseline{flag}")

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.0%}:")
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2%} of baseline")
        if advisory and not hard_failures:
            print("\nadvisory mode (cross-regime baseline): not failing "
                  "the build; refresh ci/bench_baseline.json to re-arm.")
            return 0
        if not advisory:
            print("\nIf this slowdown is intended, regenerate the baseline "
                  "(./build/bench_shards --json=ci/bench_baseline.json or "
                  "./build/bench_hierarchy --json=ci/bench_hierarchy_"
                  "baseline.json) and commit it, or apply the "
                  "'bench-exempt' PR label.")
            return 1
    if hard_failures:
        # Same-run invariants (parallel speedup, service-serial floor)
        # never ride the cross-regime advisory escape: they compare rows
        # of the CURRENT run on the CURRENT host only.
        print(f"\n{len(hard_failures)} hard gate(s) failed:")
        for failure in hard_failures:
            print(f"  {failure}")
        return 1
    if not regressions:
        print("no benchmark regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
