// The lower-bound machinery as a feature: encode a message into a stream,
// summarize the stream, decode the message back — Appendix F's INDEX
// reduction run as a round-trip "stream steganography" demo, plus the
// space accounting of Theorem 4.1.
//
//   $ ./history_audit [--message="PODS"]
//
// Alice picks a member of the Theorem 4.1 hard family indexed by her
// message bits, streams it through an epsilon-correct tracker, and ships
// only the tracker's communication trace. Bob replays the trace, rounds
// each estimate to the nearer of {m, m+3}, and reads the message back.
// The demo prints the entropy (the Omega(r log n) lower bound) against
// the actual summary size.
//
// Note on API surface: the lower-bound constructions (lowerbound/) are a
// self-contained reduction pipeline, deliberately below the Scenario /
// registry layer — RunIndexReduction is their one-call entry point.

#include <cstdio>
#include <string>

#include "core/api.h"

int main(int argc, char** argv) {
  varstream::FlagParser flags(argc, argv);
  std::string message = flags.GetString("message", "PODS");
  if (message.size() > 6) message.resize(6);  // keep ranks in range

  // Family parameters: m = 1/eps, n timesteps, r toggles.
  const uint64_t m = 16, n = 4096, r = 16;
  varstream::DetFamily family(m, n, r);
  std::printf("hard family: m=%llu, n=%llu, r=%llu -> |F| ~ 2^%.1f "
              "members, each of variability %.3f\n",
              static_cast<unsigned long long>(m),
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(r), family.Log2Size(),
              family.ExactVariability());

  // Pack the message bytes into a rank.
  uint64_t rank = 0;
  for (char c : message) {
    rank = rank * 256 + static_cast<unsigned char>(c);
  }
  rank %= family.Size();
  std::printf("alice's message \"%s\" -> family rank %llu\n",
              message.c_str(), static_cast<unsigned long long>(rank));

  varstream::IndexReductionResult result =
      varstream::RunIndexReduction(m, n, r, rank);

  std::printf("tracker messages (= trace changepoints): %llu\n",
              static_cast<unsigned long long>(result.messages));
  std::printf("summary shipped to bob: %llu bits (entropy lower bound: "
              "%.1f bits)\n",
              static_cast<unsigned long long>(result.summary_bits),
              result.entropy_bits);

  if (!result.decoded_ok) {
    std::printf("bob FAILED to decode — this should never happen.\n");
    return 1;
  }

  // Unpack bob's rank back into bytes.
  uint64_t bob = result.bob_rank;
  std::string decoded;
  while (bob > 0) {
    decoded.insert(decoded.begin(), static_cast<char>(bob % 256));
    bob /= 256;
  }
  std::printf("bob decoded rank %llu -> message \"%s\"\n",
              static_cast<unsigned long long>(result.bob_rank),
              decoded.c_str());
  std::printf("\nmoral (Theorem 4.1): any summary answering historical "
              "queries to relative error 1/m must be able to carry "
              "log2 C(n,r) bits, even though the stream's variability is "
              "only %.3f — space Omega((log n / eps) * v).\n",
              result.family_variability);
  return 0;
}
