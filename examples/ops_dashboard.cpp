// Operations dashboard — composing the library's trackers over one
// distributed event stream: total count, per-item frequencies, quantiles,
// and a threshold alarm, all maintained simultaneously at the coordinator
// with independent epsilon budgets.
//
//   $ ./ops_dashboard [--minutes=30] [--sites=8]
//
// Scenario: a storage cluster's request log. Each event is a request of
// some latency bucket (the "item") issued to a shard (the "site");
// completed requests retire (deletes). The dashboard shows: in-flight
// requests (count tracker), p50/p99 latency of in-flight requests
// (quantile tracker), hottest latency buckets (frequency tracker heavy
// hitters), and an overload alarm (threshold monitor).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>

#include "core/api.h"

int main(int argc, char** argv) {
  varstream::FlagParser flags(argc, argv);
  const auto sites = static_cast<uint32_t>(flags.GetUint("sites", 8));
  const auto minutes = static_cast<int>(flags.GetUint("minutes", 30));
  const uint64_t kEventsPerMinute = flags.GetUint("events-per-minute", 8000);

  // Each view gets its own error budget: counts are cheap to track
  // tightly; quantiles pay an (L+1)^2 factor, so they get a coarser
  // epsilon and a coarser universe (64 buckets of 16 ms).
  //
  // The plain count view comes from the registry (swap in any
  // --list-trackers name); the item-problem views (quantiles, heavy
  // buckets) and the callback-driven alarm are class-specific APIs, so
  // they are constructed directly.
  varstream::TrackerOptions opts;
  opts.num_sites = sites;
  opts.epsilon = 0.05;
  opts.seed = 11;
  auto inflight_tracker = varstream::TrackerRegistry::Instance().Create(
      flags.GetString("count-tracker", "deterministic"), opts);
  if (inflight_tracker == nullptr) {
    std::fprintf(stderr, "unknown --count-tracker (try varstream_run "
                         "--list-trackers)\n");
    return 2;
  }
  varstream::DistributedTracker& inflight = *inflight_tracker;

  varstream::TrackerOptions quantile_opts = opts;
  quantile_opts.epsilon = 0.2;
  const uint32_t kLogCoarse = 6;  // 64 buckets of 16 ms
  varstream::QuantileTracker latency(quantile_opts, kLogCoarse);

  varstream::TrackerOptions freq_opts = opts;
  freq_opts.epsilon = 0.1;
  varstream::FrequencyTracker buckets(freq_opts);

  varstream::TrackerOptions alarm_opts = opts;
  alarm_opts.epsilon = 0.1;
  varstream::ThresholdMonitor overload(alarm_opts, 30000);

  overload.set_state_change_callback(
      [](uint64_t t, varstream::ThresholdState s) {
        std::printf("      >> t=%llu %s\n",
                    static_cast<unsigned long long>(t),
                    s == varstream::ThresholdState::kAbove
                        ? "OVERLOAD alarm"
                        : "overload cleared");
      });

  varstream::Rng rng(3);
  // In-flight requests: (latency bucket, site), retired FIFO-ish.
  std::deque<std::pair<uint64_t, uint32_t>> live;

  std::printf("min | in-flight (est) | p50 est | p99 est | hot bucket | "
              "msgs total\n");
  for (int minute = 0; minute < minutes; ++minute) {
    // Load arc: build up, run hot for five minutes (crossing the overload
    // threshold), then drain back down (clearing it).
    bool hot = minute >= 10 && minute < 15;
    double arrival_p = hot ? 0.70 : (minute < 10 ? 0.60 : 0.47);
    for (uint64_t e = 0; e < kEventsPerMinute; ++e) {
      bool arrive = live.empty() || rng.Bernoulli(arrival_p);
      if (arrive) {
        // Latency: lognormal-ish, higher when hot.
        double g = rng.Gaussian();
        auto lat = static_cast<uint64_t>(std::clamp(
            std::exp((hot ? 5.0 : 4.0) + 0.7 * g), 1.0, 1023.0));
        auto site = static_cast<uint32_t>(rng.UniformBelow(sites));
        live.emplace_back(lat, site);
        inflight.Push(site, +1);
        latency.Push(site, lat / 16, +1);  // 16 ms quantile buckets
        buckets.Push(site, lat / 64, +1);  // 64 ms frequency buckets
        overload.Push(site, +1);
      } else {
        auto [lat, site] = live.front();
        live.pop_front();
        inflight.Push(site, -1);
        latency.Push(site, lat / 16, -1);
        buckets.Push(site, lat / 64, -1);
        overload.Push(site, -1);
      }
    }
    auto hh = buckets.HeavyHitters(0.25);
    uint64_t hot_bucket = hh.empty() ? 0 : hh.front().first;
    for (const auto& [b, c] : hh) {
      if (c > buckets.EstimateItem(hot_bucket)) hot_bucket = b;
    }
    uint64_t total_msgs =
        inflight.cost().total_messages() + latency.cost().total_messages() +
        buckets.cost().total_messages() + overload.cost().total_messages();
    std::printf("%3d | %15.0f | %7llu | %7llu | %10llu | %10llu\n", minute,
                inflight.Estimate(),
                static_cast<unsigned long long>(latency.Quantile(0.5) * 16),
                static_cast<unsigned long long>(latency.Quantile(0.99) * 16),
                static_cast<unsigned long long>(hot_bucket * 64),
                static_cast<unsigned long long>(total_msgs));
  }

  uint64_t n = static_cast<uint64_t>(minutes) * kEventsPerMinute;
  uint64_t total_msgs =
      inflight.cost().total_messages() + latency.cost().total_messages() +
      buckets.cost().total_messages() + overload.cost().total_messages();
  std::printf("\nfour live views over %llu events cost %llu messages "
              "(%.1f%% of the 4n=%llu a naive mirror would send)\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(total_msgs),
              100.0 * static_cast<double>(total_msgs) /
                  static_cast<double>(4 * n),
              static_cast<unsigned long long>(4 * n));
  return 0;
}
