// Quickstart: track a non-monotone distributed count with the paper's
// algorithms — in one declarative Scenario.
//
//   $ ./quickstart [--tracker=deterministic] [--stream=biased-walk]
//                  [--n=100000] [--sites=8] [--eps=0.05] [--seed=1]
//                  [--batch=256] [--shards=0]
//
// A Scenario names a tracker and a stream (both resolved through their
// registries — `varstream_run --list-trackers` / `--list-streams`
// enumerate the choices), plus the run parameters. RunScenario expands
// it deterministically: the same Scenario yields the same numbers on any
// machine. Set --shards=W to push ingest through the sharded parallel
// engine; results are identical for every W in 1..sites (the serial
// engine at --shards=0 is a different per-site decomposition, so its
// numbers legitimately differ — see the merge-semantics table in the
// README).

#include <algorithm>
#include <cstdio>

#include "core/api.h"

int main(int argc, char** argv) {
  varstream::FlagParser flags(argc, argv);

  // 1. Describe the experiment. Every field has a sane default; nothing
  //    here constructs anything yet.
  varstream::Scenario scenario;
  scenario.tracker = flags.GetString("tracker", "deterministic");
  scenario.stream = flags.GetString("stream", "biased-walk");
  scenario.num_sites = static_cast<uint32_t>(flags.GetUint("sites", 8));
  scenario.epsilon = flags.GetDouble("eps", 0.05);
  scenario.n = flags.GetUint("n", 100000);
  scenario.seed = flags.GetUint("seed", 1);
  scenario.batch_size = std::max<uint64_t>(flags.GetUint("batch", 256), 1);
  scenario.num_shards = static_cast<uint32_t>(flags.GetUint("shards", 0));
  scenario.params["mu"] = flags.GetDouble("mu", 0.2);  // walk drift

  // 2. Run it. Name-resolution errors come back as r.ok == false with a
  //    message listing the valid names — no exceptions, no aborts.
  varstream::ScenarioResult r = varstream::RunScenario(scenario);
  if (!r.ok) {
    std::fprintf(stderr, "scenario failed: %s\n", r.error.c_str());
    return 2;
  }

  // 3. Read the measurements.
  std::printf("scenario               : %s\n", r.scenario.Id().c_str());
  std::printf("stream length n        : %llu updates\n",
              static_cast<unsigned long long>(r.result.n));
  std::printf("true count f(n)        : %lld\n",
              static_cast<long long>(r.result.final_f));
  std::printf("coordinator estimate   : %.0f\n", r.result.final_estimate);
  std::printf("max rel error          : %.5f (guarantee: <= %.3f)\n",
              r.result.max_rel_error, scenario.epsilon);
  std::printf("stream variability v(n): %.2f\n", r.result.variability);
  std::printf("messages used          : %llu (naive would use %llu)\n",
              static_cast<unsigned long long>(r.result.messages),
              static_cast<unsigned long long>(r.result.n));
  std::printf("as JSON                : %s\n",
              varstream::ScenarioResultToJson(r).c_str());
  return 0;
}
