// Quickstart: track a non-monotone distributed count with the paper's
// deterministic algorithm in ~20 lines of user code.
//
//   $ ./quickstart [--n=100000] [--sites=8] [--eps=0.05] [--seed=1]
//
// Simulates a +-1 update stream (a biased random walk, so the count mostly
// grows but sometimes shrinks) spread across `sites` observers, and tracks
// it at the coordinator to within eps relative error. Prints the final
// estimate, the true value, and what the tracking cost — compare that cost
// to the stream length n to see the variability framework at work.

#include <cstdio>

#include "core/api.h"

int main(int argc, char** argv) {
  varstream::FlagParser flags(argc, argv);
  const uint64_t n = flags.GetUint("n", 100000);
  const auto sites = static_cast<uint32_t>(flags.GetUint("sites", 8));
  const double eps = flags.GetDouble("eps", 0.05);
  const uint64_t seed = flags.GetUint("seed", 1);

  // 1. Configure the tracker: k sites, relative error epsilon.
  varstream::TrackerOptions options;
  options.num_sites = sites;
  options.epsilon = eps;
  varstream::DeterministicTracker tracker(options);

  // 2. Feed it the stream. Here: a drifting +-1 walk, dealt to sites
  //    uniformly at random. In a real deployment each site would call
  //    Push() on its own updates and the "network" would be real.
  varstream::BiasedWalkGenerator stream(/*mu=*/0.2, seed);
  varstream::UniformAssigner dealer(sites, seed ^ 0xDA7A);
  varstream::VariabilityMeter meter(0);  // ground truth + variability
  for (uint64_t t = 0; t < n; ++t) {
    int64_t delta = stream.NextDelta();
    meter.Push(delta);
    tracker.Push(dealer.NextSite(), delta);
  }

  // 3. Read the coordinator's estimate and the communication bill.
  std::printf("stream length n        : %llu updates\n",
              static_cast<unsigned long long>(n));
  std::printf("true count f(n)        : %lld\n",
              static_cast<long long>(meter.f()));
  std::printf("coordinator estimate   : %.0f\n", tracker.Estimate());
  std::printf("relative error         : %.5f (guarantee: <= %.3f)\n",
              varstream::RelativeError(meter.f(), tracker.Estimate()), eps);
  std::printf("stream variability v(n): %.2f\n", meter.value());
  std::printf("messages used          : %llu (naive would use %llu)\n",
              static_cast<unsigned long long>(
                  tracker.cost().total_messages()),
              static_cast<unsigned long long>(n));
  std::printf("message breakdown      : %s\n",
              tracker.cost().Breakdown().c_str());
  return 0;
}
