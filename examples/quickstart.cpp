// Quickstart: track a non-monotone distributed count with the paper's
// algorithms in ~20 lines of user code.
//
//   $ ./quickstart [--tracker=deterministic] [--n=100000] [--sites=8]
//                  [--eps=0.05] [--seed=1] [--batch=256]
//
// Simulates a +-1 update stream (a biased random walk, so the count mostly
// grows but sometimes shrinks) spread across `sites` observers, and tracks
// it at the coordinator to within eps relative error. Prints the final
// estimate, the true value, and what the tracking cost — compare that cost
// to the stream length n to see the variability framework at work.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/api.h"

int main(int argc, char** argv) {
  varstream::FlagParser flags(argc, argv);
  const uint64_t n = flags.GetUint("n", 100000);
  const auto sites = static_cast<uint32_t>(flags.GetUint("sites", 8));
  const double eps = flags.GetDouble("eps", 0.05);
  const uint64_t seed = flags.GetUint("seed", 1);
  const uint64_t batch_size = std::max<uint64_t>(flags.GetUint("batch", 256), 1);

  // 1. Configure and construct the tracker by registry name: k sites,
  //    relative error epsilon.
  varstream::TrackerOptions options;
  options.num_sites = sites;
  options.epsilon = eps;
  auto tracker = varstream::TrackerRegistry::Instance().Create(
      flags.GetString("tracker", "deterministic"), options);
  if (!tracker) {
    std::fprintf(stderr, "unknown tracker (try varstream_run "
                         "--list-trackers)\n");
    return 2;
  }

  // 2. Feed it the stream in batches. Here: a drifting +-1 walk, dealt to
  //    sites uniformly at random. In a real deployment each site would
  //    buffer its own updates and PushBatch() them; the "network" between
  //    sites and coordinator would be real.
  varstream::BiasedWalkGenerator stream(/*mu=*/0.2, seed);
  varstream::UniformAssigner dealer(sites, seed ^ 0xDA7A);
  varstream::VariabilityMeter meter(0);  // ground truth + variability
  std::vector<varstream::CountUpdate> batch;
  for (uint64_t t = 0; t < n;) {
    batch.clear();
    for (uint64_t i = 0; i < batch_size && t < n; ++i, ++t) {
      int64_t delta = stream.NextDelta();
      meter.Push(delta);
      batch.push_back({dealer.NextSite(), delta});
    }
    tracker->PushBatch(batch);
  }

  // 3. Read one consistent snapshot: estimate + clock + communication bill.
  varstream::TrackerSnapshot snap = tracker->Snapshot();
  std::printf("tracker                : %s\n", tracker->name().c_str());
  std::printf("stream length n        : %llu updates\n",
              static_cast<unsigned long long>(snap.time));
  std::printf("true count f(n)        : %lld\n",
              static_cast<long long>(meter.f()));
  std::printf("coordinator estimate   : %.0f\n", snap.estimate);
  std::printf("relative error         : %.5f (guarantee: <= %.3f)\n",
              varstream::RelativeError(meter.f(), snap.estimate), eps);
  std::printf("stream variability v(n): %.2f\n", meter.value());
  std::printf("messages used          : %llu (naive would use %llu)\n",
              static_cast<unsigned long long>(snap.messages),
              static_cast<unsigned long long>(n));
  std::printf("message breakdown      : %s\n",
              tracker->cost().Breakdown().c_str());
  return 0;
}
