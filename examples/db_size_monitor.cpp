// Database size auditing with historical queries — the paper's "auditing
// changes to and verifying the integrity of time-varying datasets" use
// case (section 1), combining the single-site tracker (Appendix I) with
// the tracing summary (section 4).
//
//   $ ./db_size_monitor [--days=30] [--eps=0.02]
//
// Scenario: a database grows via inserts with periodic compaction /
// retention deletes (nearly monotone, Theorem 2.1 regime). The monitor
// records every coordinator update into a HistoryTracer; at the end an
// auditor replays point-in-time queries ("how many rows did we hold at
// day d, hour h?") against the summary and validates them within epsilon.

#include <cstdio>
#include <vector>

#include "core/api.h"

int main(int argc, char** argv) {
  varstream::FlagParser flags(argc, argv);
  const auto days = static_cast<int>(flags.GetUint("days", 30));
  const double eps = flags.GetDouble("eps", 0.02);
  const uint64_t kOpsPerDay = flags.GetUint("ops-per-day", 50000);

  varstream::TrackerOptions options;
  options.num_sites = 1;
  options.epsilon = eps;
  varstream::SingleSiteTracker tracker(options);
  varstream::HistoryTracer history(0.0);

  varstream::Rng rng(2026);
  std::vector<int64_t> truth;  // row count after each operation
  truth.reserve(static_cast<size_t>(days) * kOpsPerDay);
  int64_t rows = 0;
  uint64_t t = 0;

  for (int day = 0; day < days; ++day) {
    for (uint64_t op = 0; op < kOpsPerDay; ++op) {
      // 70% inserts; nightly retention window deletes ~15% of ops.
      bool nightly = (op > kOpsPerDay * 9 / 10);
      bool insert = rows == 0 || rng.Bernoulli(nightly ? 0.35 : 0.85);
      rows += insert ? +1 : -1;
      tracker.Push(0, insert ? +1 : -1);
      ++t;
      history.Observe(t, tracker.Estimate());
      truth.push_back(rows);
    }
  }

  std::printf("operations            : %llu\n",
              static_cast<unsigned long long>(t));
  std::printf("final row count       : %lld (estimate %.0f)\n",
              static_cast<long long>(rows), tracker.Estimate());
  std::printf("messages to monitor   : %llu\n",
              static_cast<unsigned long long>(
                  tracker.cost().total_messages()));
  std::printf("history changepoints  : %llu (vs %llu operations)\n",
              static_cast<unsigned long long>(history.changepoints()),
              static_cast<unsigned long long>(t));
  std::printf("summary size          : %.1f KiB\n",
              static_cast<double>(history.SummaryBits(64, 64)) / 8192.0);

  // --- The audit: point-in-time queries against the summary. ---
  varstream::Rng audit_rng(7);
  uint64_t checked = 0, ok = 0;
  double worst = 0;
  for (int q = 0; q < 10000; ++q) {
    uint64_t when = 1 + audit_rng.UniformBelow(t);
    double est = history.Query(when);
    auto true_rows = static_cast<double>(truth[when - 1]);
    double err = varstream::RelativeError(truth[when - 1], est);
    worst = std::max(worst, err);
    ++checked;
    if (err <= eps + 1e-12) ++ok;
    if (q < 3) {
      std::printf("  audit sample: t=%llu  summary=%.0f  truth=%.0f\n",
                  static_cast<unsigned long long>(when), est, true_rows);
    }
  }
  std::printf("audit                 : %llu/%llu historical queries within "
              "eps=%.3f (worst %.5f)\n",
              static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(checked), eps, worst);
  return 0;
}
