// Database size auditing with historical queries — the paper's "auditing
// changes to and verifying the integrity of time-varying datasets" use
// case (section 1), combining the single-site tracker (Appendix I) with
// the tracing summary (section 4).
//
//   $ ./db_size_monitor [--days=30] [--eps=0.02]
//
// Scenario: a database grows via inserts with periodic compaction /
// retention deletes (nearly monotone, Theorem 2.1 regime). The workload
// is a custom StreamSource that also records ground truth; the monitor
// is the registry's "single-site" tracker driven through the shared
// Run() driver with a HistoryTracer attached. At the end an auditor
// replays point-in-time queries ("how many rows did we hold at day d,
// hour h?") against the summary and validates them within epsilon.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <span>
#include <vector>

#include "core/api.h"

namespace {

/// Insert/delete workload of a database under retention: mostly inserts,
/// with a nightly window deleting ~15% of operations. Records the true
/// row count after every operation so the audit can check the summary.
class RetentionWorkload : public varstream::StreamSource {
 public:
  RetentionWorkload(int days, uint64_t ops_per_day, uint64_t seed)
      : total_(static_cast<uint64_t>(days) * ops_per_day),
        ops_per_day_(ops_per_day),
        rng_(seed) {
    truth_.reserve(total_);
  }

  size_t NextBatch(std::span<varstream::CountUpdate> out) override {
    size_t produced = 0;
    for (; produced < out.size() && emitted_ < total_; ++produced) {
      uint64_t op = emitted_ % ops_per_day_;
      bool nightly = op > ops_per_day_ * 9 / 10;
      bool insert = rows_ == 0 || rng_.Bernoulli(nightly ? 0.35 : 0.85);
      rows_ += insert ? +1 : -1;
      truth_.push_back(rows_);
      out[produced] = {0, insert ? int64_t{+1} : int64_t{-1}};
      ++emitted_;
    }
    return produced;
  }

  std::string name() const override { return "retention-workload"; }
  uint32_t num_sites() const override { return 1; }
  uint64_t remaining() const override { return total_ - emitted_; }

  /// True row count after operation t (1-based).
  int64_t truth_at(uint64_t t) const { return truth_[t - 1]; }

 private:
  uint64_t total_;
  uint64_t ops_per_day_;
  varstream::Rng rng_;
  int64_t rows_ = 0;
  uint64_t emitted_ = 0;
  std::vector<int64_t> truth_;
};

}  // namespace

int main(int argc, char** argv) {
  varstream::FlagParser flags(argc, argv);
  const auto days = static_cast<int>(flags.GetUint("days", 30));
  const double eps = flags.GetDouble("eps", 0.02);
  const uint64_t kOpsPerDay = flags.GetUint("ops-per-day", 50000);

  varstream::TrackerOptions options;
  options.num_sites = 1;
  options.epsilon = eps;
  auto tracker = varstream::TrackerRegistry::Instance().Create(
      "single-site", options);

  // Run the workload through the shared driver; the tracer records every
  // coordinator estimate change into the queryable summary.
  RetentionWorkload workload(days, kOpsPerDay, /*seed=*/2026);
  varstream::HistoryTracer history(0.0);
  varstream::RunResult run = varstream::Run(
      workload, *tracker, {.epsilon = eps, .tracer = &history});

  std::printf("operations            : %llu\n",
              static_cast<unsigned long long>(run.n));
  std::printf("final row count       : %lld (estimate %.0f)\n",
              static_cast<long long>(run.final_f), run.final_estimate);
  std::printf("messages to monitor   : %llu\n",
              static_cast<unsigned long long>(run.messages));
  std::printf("history changepoints  : %llu (vs %llu operations)\n",
              static_cast<unsigned long long>(history.changepoints()),
              static_cast<unsigned long long>(run.n));
  std::printf("summary size          : %.1f KiB\n",
              static_cast<double>(history.SummaryBits(64, 64)) / 8192.0);

  // --- The audit: point-in-time queries against the summary. ---
  varstream::Rng audit_rng(7);
  uint64_t checked = 0, ok = 0;
  double worst = 0;
  for (int q = 0; q < 10000; ++q) {
    uint64_t when = 1 + audit_rng.UniformBelow(run.n);
    double est = history.Query(when);
    int64_t true_rows = workload.truth_at(when);
    double err = varstream::RelativeError(true_rows, est);
    worst = std::max(worst, err);
    ++checked;
    if (err <= eps + 1e-12) ++ok;
    if (q < 3) {
      std::printf("  audit sample: t=%llu  summary=%.0f  truth=%lld\n",
                  static_cast<unsigned long long>(when), est,
                  static_cast<long long>(true_rows));
    }
  }
  std::printf("audit                 : %llu/%llu historical queries within "
              "eps=%.3f (worst %.5f)\n",
              static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(checked), eps, worst);
  return 0;
}
