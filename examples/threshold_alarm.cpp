// Threshold alarms — the original (k, f, tau, eps) problem of Cormode et
// al. that the paper's section 2 starts from, solved with the continuous
// tracker: fire when a distributed count crosses tau, clear when it falls
// back below (1-eps)*tau, with certified no-false-negatives semantics.
//
//   $ ./threshold_alarm [--tau=20000] [--eps=0.1] [--sites=16]
//
// Scenario: DDoS detection. `sites` edge routers count open connections
// (+1 connect / -1 disconnect). Legitimate traffic hovers around a base
// load; twice during the run a flood ramps connections past tau. The
// flood traffic is a custom StreamSource (the same extension point every
// driver and the ingest service consume); the ThresholdMonitor is
// constructed directly because its value is the class-specific callback
// API — the documented escape hatch below the registry.

#include <algorithm>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "core/api.h"

namespace {

/// Base-load connection churn with two hard flood ramps. Tracks the true
/// connection count so the alarm audit can check certified semantics.
class FloodSource : public varstream::StreamSource {
 public:
  FloodSource(uint32_t sites, uint64_t total, int64_t base_load,
              uint64_t seed)
      : sites_(sites), total_(total), base_(base_load), rng_(seed) {}

  size_t NextBatch(std::span<varstream::CountUpdate> out) override {
    size_t produced = 0;
    for (; produced < out.size() && emitted_ < total_; ++produced) {
      uint64_t t = emitted_;
      int64_t delta;
      if (InFlood(t)) {
        delta = rng_.Bernoulli(0.98) ? +1 : -1;  // flood ramp
      } else {
        // Steer toward base load with bounded drift + noise.
        double drift = std::clamp(
            static_cast<double>(base_ - connections_) / 2000.0, -0.6, 0.6);
        delta = rng_.Bernoulli((1.0 + drift) / 2.0) ? +1 : -1;
      }
      if (connections_ + delta < 0) delta = +1;
      connections_ += delta;
      out[produced] = {static_cast<uint32_t>(rng_.UniformBelow(sites_)),
                       delta};
      ++emitted_;
    }
    return produced;
  }

  std::string name() const override { return "connection-floods"; }
  uint32_t num_sites() const override { return sites_; }
  uint64_t remaining() const override { return total_ - emitted_; }

  int64_t connections() const { return connections_; }

  static bool InFlood(uint64_t t) {
    return (t > 15000 && t < 27000) || (t > 42000 && t < 54000);
  }

 private:
  uint32_t sites_;
  uint64_t total_;
  int64_t base_;
  varstream::Rng rng_;
  int64_t connections_ = 0;
  uint64_t emitted_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  varstream::FlagParser flags(argc, argv);
  const auto sites = static_cast<uint32_t>(flags.GetUint("sites", 16));
  const double eps = flags.GetDouble("eps", 0.1);
  const int64_t tau = flags.GetInt("tau", 20000);

  varstream::TrackerOptions options;
  options.num_sites = sites;
  options.epsilon = eps;
  varstream::ThresholdMonitor alarm(options, tau);

  alarm.set_state_change_callback(
      [&](uint64_t t, varstream::ThresholdState s) {
        std::printf("  t=%8llu  %s (estimate %.0f, tau %lld)\n",
                    static_cast<unsigned long long>(t),
                    s == varstream::ThresholdState::kAbove
                        ? "*** ALARM: connection flood ***"
                        : "alarm cleared",
                    alarm.Estimate(), static_cast<long long>(tau));
      });

  const uint64_t n = 1 << 16;
  FloodSource source(sites, n, /*base_load=*/10000, /*seed=*/9);
  varstream::VariabilityMeter meter(0);

  std::printf("monitoring %u routers, tau=%lld, eps=%.2f\n\n", sites,
              static_cast<long long>(tau), eps);
  // Pull in batches, deliver per event: the audit checks the certified
  // semantics after every single update.
  std::vector<varstream::CountUpdate> batch(4096);
  uint64_t violations = 0;
  for (;;) {
    size_t got = source.NextBatch(batch);
    if (got == 0) break;
    for (size_t i = 0; i < got; ++i) {
      meter.Push(batch[i].delta);
      alarm.Push(batch[i].site, batch[i].delta);
      int64_t connections = meter.f();
      if (connections >= tau &&
          alarm.state() != varstream::ThresholdState::kAbove) {
        ++violations;
      }
      if (static_cast<double>(connections) <=
              (1.0 - eps) * static_cast<double>(tau) &&
          alarm.state() != varstream::ThresholdState::kBelow) {
        ++violations;
      }
    }
  }

  std::printf("\nevents                  : %llu\n",
              static_cast<unsigned long long>(n));
  std::printf("state flips             : %llu\n",
              static_cast<unsigned long long>(alarm.flips()));
  std::printf("certified-semantics violations: %llu (must be 0)\n",
              static_cast<unsigned long long>(violations));
  std::printf("messages                : %llu (naive: %llu) — %.1f%% "
              "saved\n",
              static_cast<unsigned long long>(
                  alarm.cost().total_messages()),
              static_cast<unsigned long long>(n),
              100.0 * (1.0 - static_cast<double>(
                                 alarm.cost().total_messages()) /
                                 static_cast<double>(n)));
  std::printf("stream variability v(n) : %.1f\n", meter.value());
  return violations == 0 ? 0 : 1;
}
