// Threshold alarms — the original (k, f, tau, eps) problem of Cormode et
// al. that the paper's section 2 starts from, solved with the continuous
// tracker: fire when a distributed count crosses tau, clear when it falls
// back below (1-eps)*tau, with certified no-false-negatives semantics.
//
//   $ ./threshold_alarm [--tau=20000] [--eps=0.1] [--sites=16]
//
// Scenario: DDoS detection. `sites` edge routers count open connections
// (+1 connect / -1 disconnect). Legitimate traffic hovers around a base
// load; twice during the run a flood ramps connections past tau. The
// alarm must catch every excursion above tau (no false negatives) and
// never fire while connections are provably below (1-eps)*tau.

#include <algorithm>
#include <cstdio>
#include <string>

#include "core/api.h"

int main(int argc, char** argv) {
  varstream::FlagParser flags(argc, argv);
  const auto sites = static_cast<uint32_t>(flags.GetUint("sites", 16));
  const double eps = flags.GetDouble("eps", 0.1);
  const int64_t tau = flags.GetInt("tau", 20000);

  varstream::TrackerOptions options;
  options.num_sites = sites;
  options.epsilon = eps;
  varstream::ThresholdMonitor alarm(options, tau);

  alarm.set_state_change_callback(
      [&](uint64_t t, varstream::ThresholdState s) {
        std::printf("  t=%8llu  %s (estimate %.0f, tau %lld)\n",
                    static_cast<unsigned long long>(t),
                    s == varstream::ThresholdState::kAbove
                        ? "*** ALARM: connection flood ***"
                        : "alarm cleared",
                    alarm.Estimate(), static_cast<long long>(tau));
      });

  // Base load hovers near kBase; floods ramp hard past tau, then drain.
  const int64_t kBase = 10000;
  varstream::Rng rng(9);
  varstream::VariabilityMeter meter(0);
  int64_t connections = 0;
  uint64_t n = 1 << 16;

  auto in_flood = [](uint64_t t) {
    return (t > 15000 && t < 27000) || (t > 42000 && t < 54000);
  };

  std::printf("monitoring %u routers, tau=%lld, eps=%.2f\n\n", sites,
              static_cast<long long>(tau), eps);
  uint64_t violations = 0;
  for (uint64_t t = 0; t < n; ++t) {
    int64_t delta;
    if (in_flood(t)) {
      delta = rng.Bernoulli(0.98) ? +1 : -1;  // flood ramp
    } else {
      // Steer toward base load with bounded drift + noise.
      double drift = std::clamp(
          static_cast<double>(kBase - connections) / 2000.0, -0.6, 0.6);
      delta = rng.Bernoulli((1.0 + drift) / 2.0) ? +1 : -1;
    }
    if (connections + delta < 0) delta = +1;
    connections += delta;
    meter.Push(delta);
    alarm.Push(static_cast<uint32_t>(rng.UniformBelow(sites)), delta);

    // Audit the certified semantics at every event.
    if (connections >= tau &&
        alarm.state() != varstream::ThresholdState::kAbove) {
      ++violations;
    }
    if (static_cast<double>(connections) <=
            (1.0 - eps) * static_cast<double>(tau) &&
        alarm.state() != varstream::ThresholdState::kBelow) {
      ++violations;
    }
  }

  std::printf("\nevents                  : %llu\n",
              static_cast<unsigned long long>(n));
  std::printf("state flips             : %llu\n",
              static_cast<unsigned long long>(alarm.flips()));
  std::printf("certified-semantics violations: %llu (must be 0)\n",
              static_cast<unsigned long long>(violations));
  std::printf("messages                : %llu (naive: %llu) — %.1f%% "
              "saved\n",
              static_cast<unsigned long long>(
                  alarm.cost().total_messages()),
              static_cast<unsigned long long>(n),
              100.0 * (1.0 - static_cast<double>(
                                 alarm.cost().total_messages()) /
                                 static_cast<double>(n)));
  std::printf("stream variability v(n) : %.1f\n", meter.value());
  return violations == 0 ? 0 : 1;
}
