// Sensor network monitoring — the motivating application of Cormode et
// al.'s distributed monitoring model (section 1 of the paper): minimize
// radio messages while the base station tracks a fleet-wide count.
//
//   $ ./sensor_network [--sensors=16] [--hours=24] [--eps=0.1]
//
// Scenario: `sensors` motes count vehicles entering (+1) and leaving (-1)
// a business district. Occupancy follows a daily curve — overnight base
// load, morning ramp, midday peak, evening drain — i.e. a non-monotone
// stream no insertion-only algorithm can track. Because the count stays
// large relative to its per-hour swings, the stream's variability v(n) is
// tiny compared to its length, and the paper's trackers cut the radio
// budget by an order of magnitude while guaranteeing |error| <= eps*f at
// every single event.
//
// API-wise this example shows the two extension points of the registry
// architecture: a *custom StreamSource* (the daily occupancy curve below
// — anything with a NextBatch is a stream) driving *registry-constructed
// trackers* side by side on byte-identical traffic.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <span>
#include <vector>

#include "core/api.h"

namespace {

// Target occupancy (vehicles) at each hour boundary of a business day.
constexpr int64_t kTargetOccupancy[25] = {
    6000,  5500,  5000,  5000,  5500,  8000,  16000, 30000, 45000,
    52000, 55000, 54000, 52000, 53000, 54000, 52000, 48000, 38000,
    26000, 18000, 13000, 10000, 8000,  7000,  6000};

/// The daily occupancy curve as a StreamSource: ±1 events steered toward
/// the current hour's target, dealt to sensors uniformly. Implementing
/// the four accessors is all it takes to plug a bespoke workload into
/// everything built on StreamSource (drivers, tracing, the service).
class OccupancySource : public varstream::StreamSource {
 public:
  OccupancySource(uint32_t sensors, int hours, uint64_t events_per_hour,
                  uint64_t seed)
      : sensors_(sensors),
        total_(static_cast<uint64_t>(hours) * events_per_hour),
        events_per_hour_(events_per_hour),
        rng_(seed) {}

  size_t NextBatch(std::span<varstream::CountUpdate> out) override {
    size_t produced = 0;
    for (; produced < out.size() && emitted_ < total_; ++produced) {
      uint64_t hour = emitted_ / events_per_hour_;
      uint64_t event = emitted_ % events_per_hour_;
      int64_t target = kTargetOccupancy[std::min<uint64_t>(hour + 1, 24)];
      // Steer the walk toward the hour-end target with Bernoulli noise.
      auto remaining = static_cast<double>(events_per_hour_ - event);
      double drift = std::clamp(
          static_cast<double>(target - occupancy_) / remaining, -0.9, 0.9);
      int64_t delta =
          (occupancy_ == 0 || rng_.Bernoulli((1.0 + drift) / 2.0)) ? +1 : -1;
      occupancy_ += delta;
      out[produced] = {
          static_cast<uint32_t>(rng_.UniformBelow(sensors_)), delta};
      ++emitted_;
    }
    return produced;
  }

  std::string name() const override { return "occupancy-curve"; }
  uint32_t num_sites() const override { return sensors_; }
  uint64_t remaining() const override { return total_ - emitted_; }

 private:
  uint32_t sensors_;
  uint64_t total_;
  uint64_t events_per_hour_;
  varstream::Rng rng_;
  int64_t occupancy_ = 0;
  uint64_t emitted_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  varstream::FlagParser flags(argc, argv);
  const auto sensors = static_cast<uint32_t>(flags.GetUint("sensors", 16));
  const auto hours = static_cast<int>(flags.GetUint("hours", 24));
  const double eps = flags.GetDouble("eps", 0.1);
  const uint64_t kEventsPerHour = flags.GetUint("events-per-hour", 40000);

  varstream::TrackerOptions options;
  options.num_sites = sensors;
  options.epsilon = eps;
  options.seed = 42;

  // The base station runs three registry trackers side by side. Any
  // `--list-trackers` name drops in here.
  const char* kTrackers[] = {"deterministic", "randomized", "naive"};
  std::vector<std::unique_ptr<varstream::DistributedTracker>> trackers;
  for (const char* name : kTrackers) {
    trackers.push_back(
        varstream::TrackerRegistry::Instance().Create(name, options));
  }

  OccupancySource source(sensors, hours, kEventsPerHour, /*seed=*/7);
  varstream::VariabilityMeter meter(0);
  std::vector<varstream::CountUpdate> batch(4096);

  std::printf("hour | occupancy | det est | rnd est |   v(n) | det msgs | "
              "rnd msgs | naive msgs\n");
  for (int hour = 0; hour < hours; ++hour) {
    // One hour of traffic, delivered to every tracker in identical
    // batches — exactly how the suite runner replays traces.
    uint64_t left = kEventsPerHour;
    int64_t occupancy = 0;
    while (left > 0) {
      size_t want = static_cast<size_t>(
          std::min<uint64_t>(batch.size(), left));
      size_t got = source.NextBatch(std::span(batch.data(), want));
      if (got == 0) break;
      for (size_t i = 0; i < got; ++i) meter.Push(batch[i].delta);
      for (auto& tracker : trackers) {
        tracker->PushBatch(std::span(batch.data(), got));
      }
      left -= got;
    }
    occupancy = meter.f();
    varstream::TrackerSnapshot det = trackers[0]->Snapshot();
    varstream::TrackerSnapshot rnd = trackers[1]->Snapshot();
    varstream::TrackerSnapshot naive = trackers[2]->Snapshot();
    std::printf("%4d | %9lld | %7.0f | %7.0f | %6.1f | %8llu | %8llu | "
                "%10llu\n",
                hour, static_cast<long long>(occupancy), det.estimate,
                rnd.estimate, meter.value(),
                static_cast<unsigned long long>(det.messages),
                static_cast<unsigned long long>(rnd.messages),
                static_cast<unsigned long long>(naive.messages));
  }

  varstream::TrackerSnapshot det = trackers[0]->Snapshot();
  varstream::TrackerSnapshot rnd = trackers[1]->Snapshot();
  varstream::TrackerSnapshot naive = trackers[2]->Snapshot();
  auto naive_msgs = static_cast<double>(naive.messages);
  std::printf("\nstream variability v(n) = %.1f over %llu events "
              "(v/n = %.5f)\n",
              meter.value(), static_cast<unsigned long long>(naive.time),
              meter.value() / static_cast<double>(naive.time));
  std::printf("radio budget saved vs naive: deterministic %.1f%%, "
              "randomized %.1f%%\n",
              100.0 * (1.0 - static_cast<double>(det.messages) / naive_msgs),
              100.0 * (1.0 - static_cast<double>(rnd.messages) / naive_msgs));
  std::printf("both trackers held |error| <= %.0f%% of occupancy at every "
              "event.\n",
              eps * 100.0);
  std::printf("(the savings come from low variability: occupancy stays "
              "far from zero. A lot near zero would force Theta(n) "
              "communication — that is the paper's lower bound, not an "
              "implementation artifact.)\n");
  return 0;
}
