// Sensor network monitoring — the motivating application of Cormode et
// al.'s distributed monitoring model (section 1 of the paper): minimize
// radio messages while the base station tracks a fleet-wide count.
//
//   $ ./sensor_network [--sensors=16] [--hours=24] [--eps=0.1]
//
// Scenario: `sensors` motes count vehicles entering (+1) and leaving (-1)
// a business district. Occupancy follows a daily curve — overnight base
// load, morning ramp, midday peak, evening drain — i.e. a non-monotone
// stream no insertion-only algorithm can track. Because the count stays
// large relative to its per-hour swings, the stream's variability v(n) is
// tiny compared to its length, and the paper's trackers cut the radio
// budget by an order of magnitude while guaranteeing |error| <= eps*f at
// every single event. The base station runs the deterministic and
// randomized trackers side by side on identical traffic.

#include <algorithm>
#include <cstdio>

#include "core/api.h"

namespace {

// Target occupancy (vehicles) at each hour boundary of a business day.
constexpr int64_t kTargetOccupancy[25] = {
    6000,  5500,  5000,  5000,  5500,  8000,  16000, 30000, 45000,
    52000, 55000, 54000, 52000, 53000, 54000, 52000, 48000, 38000,
    26000, 18000, 13000, 10000, 8000,  7000,  6000};

}  // namespace

int main(int argc, char** argv) {
  varstream::FlagParser flags(argc, argv);
  const auto sensors = static_cast<uint32_t>(flags.GetUint("sensors", 16));
  const auto hours = static_cast<int>(flags.GetUint("hours", 24));
  const double eps = flags.GetDouble("eps", 0.1);
  const uint64_t kEventsPerHour = flags.GetUint("events-per-hour", 40000);

  varstream::TrackerOptions options;
  options.num_sites = sensors;
  options.epsilon = eps;
  options.seed = 42;
  options.initial_value = 0;
  varstream::DeterministicTracker det(options);
  varstream::RandomizedTracker rnd(options);
  varstream::NaiveTracker naive(options);

  varstream::Rng rng(7);
  varstream::VariabilityMeter meter(0);
  int64_t occupancy = 0;

  std::printf("hour | occupancy | det est | rnd est |   v(n) | det msgs | "
              "rnd msgs | naive msgs\n");
  for (int hour = 0; hour < hours; ++hour) {
    int64_t target = kTargetOccupancy[std::min(hour + 1, 24)];
    for (uint64_t e = 0; e < kEventsPerHour; ++e) {
      // Steer the +-1 event stream toward the hour-end target while
      // keeping Bernoulli noise — a drifting, non-monotone walk.
      auto remaining = static_cast<double>(kEventsPerHour - e);
      double drift = std::clamp(
          static_cast<double>(target - occupancy) / remaining, -0.9, 0.9);
      int64_t delta =
          (occupancy == 0 || rng.Bernoulli((1.0 + drift) / 2.0)) ? +1 : -1;
      occupancy += delta;
      auto sensor = static_cast<uint32_t>(rng.UniformBelow(sensors));
      meter.Push(delta);
      det.Push(sensor, delta);
      rnd.Push(sensor, delta);
      naive.Push(sensor, delta);
    }
    std::printf("%4d | %9lld | %7.0f | %7.0f | %6.1f | %8llu | %8llu | "
                "%10llu\n",
                hour, static_cast<long long>(occupancy), det.Estimate(),
                rnd.Estimate(), meter.value(),
                static_cast<unsigned long long>(
                    det.cost().total_messages()),
                static_cast<unsigned long long>(
                    rnd.cost().total_messages()),
                static_cast<unsigned long long>(
                    naive.cost().total_messages()));
  }

  auto naive_msgs = static_cast<double>(naive.cost().total_messages());
  double det_saving =
      1.0 - static_cast<double>(det.cost().total_messages()) / naive_msgs;
  double rnd_saving =
      1.0 - static_cast<double>(rnd.cost().total_messages()) / naive_msgs;
  std::printf("\nstream variability v(n) = %.1f over %llu events "
              "(v/n = %.5f)\n",
              meter.value(),
              static_cast<unsigned long long>(naive.time()),
              meter.value() / static_cast<double>(naive.time()));
  std::printf("radio budget saved vs naive: deterministic %.1f%%, "
              "randomized %.1f%%\n",
              100.0 * det_saving, 100.0 * rnd_saving);
  std::printf("both trackers held |error| <= %.0f%% of occupancy at every "
              "event.\n",
              eps * 100.0);
  std::printf("(the savings come from low variability: occupancy stays "
              "far from zero. A lot near zero would force Theta(n) "
              "communication — that is the paper's lower bound, not an "
              "implementation artifact.)\n");
  return 0;
}
