// Distributed heavy hitters over an insert/delete item stream — the
// Appendix H frequency-tracking problem, with both the exact-counter
// tracker and the Count-Min small-space variant.
//
//   $ ./heavy_hitters [--sites=8] [--eps=0.05] [--universe=100000]
//
// Scenario: network flows (item = flow id) open (+1) and close (-1) across
// `sites` collectors; the coordinator maintains per-flow counts to within
// eps*F1 and surfaces flows holding more than phi of the live total — even
// as flows churn out (a turnstile workload that one-pass insert-only heavy
// hitter algorithms cannot handle).
//
// Note on API surface: item-frequency trackers take (site, item, delta)
// updates, so they live outside the count-tracker registry and the
// Scenario layer (both of which speak CountUpdate streams) — this example
// intentionally shows the direct class-level API. Flows hash to sites
// with Mix64 so a flow's insert and delete land on the same collector.

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "core/api.h"

int main(int argc, char** argv) {
  varstream::FlagParser flags(argc, argv);
  const auto sites = static_cast<uint32_t>(flags.GetUint("sites", 8));
  const double eps = flags.GetDouble("eps", 0.05);
  const uint64_t universe = flags.GetUint("universe", 100000);
  const uint64_t n = flags.GetUint("n", 200000);
  const double phi = flags.GetDouble("phi", 0.03);

  varstream::TrackerOptions options;
  options.num_sites = sites;
  options.epsilon = eps;
  options.seed = 99;
  varstream::FrequencyTracker exact(options);
  varstream::SketchFrequencyTracker sketch(
      options, varstream::SketchKind::kCountMinPartition, universe);

  // Zipf flow popularity with churn: flows open 60%, close 40%.
  varstream::ZipfChurnGenerator flows(universe, 1.25, 0.2, 17);
  std::map<uint64_t, int64_t> truth;
  int64_t live = 0;

  for (uint64_t t = 0; t < n; ++t) {
    varstream::ItemEvent e = flows.NextEvent();
    auto site = static_cast<uint32_t>(varstream::Mix64(e.item) % sites);
    exact.Push(site, e.item, e.delta);
    sketch.Push(site, e.item, e.delta);
    truth[e.item] += e.delta;
    live += e.delta;
  }

  std::printf("events                 : %llu across %u sites\n",
              static_cast<unsigned long long>(n), sites);
  std::printf("live flows F1          : %lld\n",
              static_cast<long long>(live));
  std::printf("exact tracker messages : %llu\n",
              static_cast<unsigned long long>(
                  exact.cost().total_messages()));
  std::printf("sketch tracker messages: %llu  (coordinator space: %llu "
              "counters vs %llu flow ids)\n",
              static_cast<unsigned long long>(
                  sketch.cost().total_messages()),
              static_cast<unsigned long long>(
                  sketch.CoordinatorSpaceBits() / 64),
              static_cast<unsigned long long>(universe));

  // --- Heavy hitters per the coordinator vs ground truth. ---
  auto hh = exact.HeavyHitters(phi);
  std::sort(hh.begin(), hh.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  std::printf("\nflows above phi=%.2f of live total (coordinator view):\n",
              phi);
  std::printf("%10s | %10s | %10s | %10s\n", "flow", "estimate", "truth",
              "cm-sketch");
  int shown = 0;
  for (const auto& [flow, est] : hh) {
    if (++shown > 10) break;
    std::printf("%10llu | %10lld | %10lld | %10.0f\n",
                static_cast<unsigned long long>(flow),
                static_cast<long long>(est),
                static_cast<long long>(truth[flow]),
                sketch.EstimateItem(flow));
  }

  // Validate: every flow with true share >= phi + eps must be reported.
  uint64_t missed = 0;
  for (const auto& [flow, f] : truth) {
    if (static_cast<double>(f) >=
        (phi + eps) * static_cast<double>(live)) {
      bool found = false;
      for (const auto& [got, unused] : hh) {
        if (got == flow) {
          found = true;
          break;
        }
      }
      if (!found) ++missed;
    }
  }
  std::printf("\nrecall check: %llu flows above (phi+eps)*F1 missed "
              "(expected 0)\n",
              static_cast<unsigned long long>(missed));
  return 0;
}
