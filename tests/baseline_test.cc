#include "baseline/cmy_monotone_tracker.h"
#include "baseline/hyz_monotone_tracker.h"
#include "baseline/naive_tracker.h"
#include "baseline/periodic_tracker.h"

#include <cmath>

#include "core/driver.h"
#include "stream/generator.h"
#include "stream/site_assigner.h"
#include "gtest/gtest.h"

namespace varstream {
namespace {

TrackerOptions Opts(uint32_t k, double eps, uint64_t seed = 0xBA5E) {
  TrackerOptions o;
  o.num_sites = k;
  o.epsilon = eps;
  o.seed = seed;
  return o;
}

TEST(NaiveTracker, ExactWithOneMessagePerUpdate) {
  RandomWalkGenerator gen(1);
  UniformAssigner assigner(4, 2);
  NaiveTracker tracker(Opts(4, 0.1));
  GeneratorSource src1(&gen, &assigner);
  RunResult result = varstream::Run(src1, tracker, {.epsilon = 1e-9, .max_updates = 7777});
  EXPECT_EQ(result.messages, 7777u);
  EXPECT_DOUBLE_EQ(result.max_rel_error, 0.0);
}

TEST(PeriodicTracker, MessageCountIsNOverT) {
  MonotoneGenerator gen;
  RoundRobinAssigner assigner(4);
  PeriodicTracker tracker(Opts(4, 0.1), 10);
  GeneratorSource src2(&gen, &assigner);
  RunResult result = varstream::Run(src2, tracker, {.epsilon = 0.1, .max_updates = 10000});
  EXPECT_EQ(result.messages, 1000u);
}

TEST(PeriodicTracker, NoErrorGuaranteeOnAdversarialStream) {
  // A burst of inserts inside one batching window goes unreported.
  PeriodicTracker tracker(Opts(1, 0.1), 100);
  for (int i = 0; i < 99; ++i) tracker.Push(0, +1);
  EXPECT_DOUBLE_EQ(tracker.Estimate(), 0.0);  // stale by 99
}

TEST(PeriodicTracker, EventuallyCatchesUp) {
  PeriodicTracker tracker(Opts(1, 0.1), 100);
  for (int i = 0; i < 100; ++i) tracker.Push(0, +1);
  EXPECT_DOUBLE_EQ(tracker.Estimate(), 100.0);
}

TEST(CmyMonotoneTracker, GuaranteeOnMonotoneStreams) {
  MonotoneGenerator gen;
  UniformAssigner assigner(8, 3);
  CmyMonotoneTracker tracker(Opts(8, 0.1));
  GeneratorSource src3(&gen, &assigner);
  RunResult result = varstream::Run(src3, tracker, {.epsilon = 0.1, .max_updates = 50000});
  EXPECT_EQ(result.violation_rate, 0.0);
  EXPECT_LE(result.max_rel_error, 0.1 + 1e-12);
}

TEST(CmyMonotoneTracker, MessagesLogarithmicPerSite) {
  MonotoneGenerator gen;
  RoundRobinAssigner assigner(4);
  const double eps = 0.1;
  CmyMonotoneTracker tracker(Opts(4, eps));
  GeneratorSource src4(&gen, &assigner);
  RunResult result = varstream::Run(src4, tracker, {.epsilon = eps, .max_updates = 100000});
  // Per site: ~log_{1+eps}(n/k) + 1 messages.
  double per_site = std::log(100000.0 / 4.0) / std::log(1.0 + eps) + 2.0;
  EXPECT_LE(static_cast<double>(result.messages), 4.0 * per_site);
  EXPECT_GE(result.messages, 4u);
}

TEST(CmyMonotoneTracker, EstimateNeverExceedsTruth) {
  // One-sided staleness: f̂ = sum of reported counts <= f.
  MonotoneGenerator gen;
  RoundRobinAssigner assigner(3);
  CmyMonotoneTracker tracker(Opts(3, 0.2));
  int64_t f = 0;
  for (int t = 0; t < 10000; ++t) {
    f += 1;
    tracker.Push(assigner.NextSite(), gen.NextDelta());
    ASSERT_LE(tracker.Estimate(), static_cast<double>(f));
  }
}

TEST(HyzMonotoneTracker, FailureRateWithinGuarantee) {
  MonotoneGenerator gen;
  UniformAssigner assigner(16, 4);
  HyzMonotoneTracker tracker(Opts(16, 0.15, 99));
  GeneratorSource src5(&gen, &assigner);
  RunResult result = varstream::Run(src5, tracker, {.epsilon = 0.15, .max_updates = 60000});
  EXPECT_LT(result.violation_rate, 1.0 / 9.0);
}

TEST(HyzMonotoneTracker, DeterministicGivenSeed) {
  MonotoneGenerator g1, g2;
  RoundRobinAssigner a1(4), a2(4);
  HyzMonotoneTracker t1(Opts(4, 0.1, 5)), t2(Opts(4, 0.1, 5));
  for (int t = 0; t < 10000; ++t) {
    t1.Push(a1.NextSite(), g1.NextDelta());
    t2.Push(a2.NextSite(), g2.NextDelta());
  }
  EXPECT_DOUBLE_EQ(t1.Estimate(), t2.Estimate());
  EXPECT_EQ(t1.cost().total_messages(), t2.cost().total_messages());
}

TEST(HyzMonotoneTracker, RoundScaleDoubles) {
  MonotoneGenerator gen;
  RoundRobinAssigner assigner(2);
  HyzMonotoneTracker tracker(Opts(2, 0.1, 6));
  for (int t = 0; t < 100000; ++t) {
    tracker.Push(assigner.NextSite(), gen.NextDelta());
  }
  // Scale should have grown to within a factor ~2 of f.
  EXPECT_GE(tracker.round_scale(), 100000 / 4);
  EXPECT_LE(tracker.round_scale(), 2 * 100000 + 1);
}

TEST(HyzMonotoneTracker, CheaperThanCmyForLargeKSmallEps) {
  const double eps = 0.02;
  const uint32_t k = 64;
  MonotoneGenerator g1, g2;
  RoundRobinAssigner a1(k), a2(k);
  CmyMonotoneTracker cmy(Opts(k, eps));
  HyzMonotoneTracker hyz(Opts(k, eps, 7));
  for (int t = 0; t < 200000; ++t) {
    cmy.Push(a1.NextSite(), g1.NextDelta());
    hyz.Push(a2.NextSite(), g2.NextDelta());
  }
  // k/eps vs k + sqrt(k)/eps: HYZ should win clearly at k=64, eps=0.02.
  EXPECT_LT(hyz.cost().total_messages(), cmy.cost().total_messages());
}

}  // namespace
}  // namespace varstream
