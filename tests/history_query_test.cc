// Tests for the query-evaluation layer (history/query.h): time-window
// selection, the five aggregations, bucket downsampling (including the
// near-2^64 span the 128-bit bucket math exists for), and the
// varstream-query-v1 renderers.

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "history/query.h"
#include "gtest/gtest.h"

namespace varstream {
namespace {

std::vector<HistoryRow> SampleRows() {
  // Cumulative counters grow with time, estimates oscillate.
  return {
      {100, 4.0, 10, 800, 50},
      {200, -2.0, 20, 1600, 100},
      {300, 7.5, 30, 2400, 150},
      {400, 1.0, 40, 3200, 200},
      {500, -6.0, 50, 4000, 250},
  };
}

TEST(EvaluateQuery, NoFilterNoAggPassesRowsThrough) {
  QuerySpec spec;
  std::vector<QueryRow> rows = EvaluateQuery(SampleRows(), spec);
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0].time_first, 100u);
  EXPECT_EQ(rows[0].time_last, 100u);
  EXPECT_EQ(rows[0].value, 4.0);
  EXPECT_EQ(rows[0].messages, 10u);
  EXPECT_EQ(rows[0].bits, 800u);
  EXPECT_EQ(rows[0].wire_bytes, 50u);
  EXPECT_EQ(rows[0].samples, 1u);
  EXPECT_EQ(rows[4].value, -6.0);
}

TEST(EvaluateQuery, TimeWindowIsInclusiveOnBothEnds) {
  QuerySpec spec;
  spec.time_min = 200;
  spec.time_max = 400;
  std::vector<QueryRow> rows = EvaluateQuery(SampleRows(), spec);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows.front().time_first, 200u);
  EXPECT_EQ(rows.back().time_first, 400u);

  spec.time_min = 201;
  spec.time_max = 399;
  rows = EvaluateQuery(SampleRows(), spec);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].time_first, 300u);

  spec.time_min = 501;
  spec.time_max = UINT64_MAX;
  EXPECT_TRUE(EvaluateQuery(SampleRows(), spec).empty());
}

TEST(EvaluateQuery, AggregationsReduceTheWholeSelection) {
  QuerySpec spec;
  spec.agg = Aggregation::kMin;
  std::vector<QueryRow> rows = EvaluateQuery(SampleRows(), spec);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].value, -6.0);
  EXPECT_EQ(rows[0].time_first, 100u);
  EXPECT_EQ(rows[0].time_last, 500u);
  EXPECT_EQ(rows[0].samples, 5u);
  // Cumulative counters come from the newest sample in the group.
  EXPECT_EQ(rows[0].messages, 50u);
  EXPECT_EQ(rows[0].bits, 4000u);
  EXPECT_EQ(rows[0].wire_bytes, 250u);

  spec.agg = Aggregation::kMax;
  EXPECT_EQ(EvaluateQuery(SampleRows(), spec)[0].value, 7.5);
  spec.agg = Aggregation::kLast;
  EXPECT_EQ(EvaluateQuery(SampleRows(), spec)[0].value, -6.0);
  spec.agg = Aggregation::kMean;
  EXPECT_EQ(EvaluateQuery(SampleRows(), spec)[0].value,
            (4.0 - 2.0 + 7.5 + 1.0 - 6.0) / 5.0);
  spec.agg = Aggregation::kCount;
  EXPECT_EQ(EvaluateQuery(SampleRows(), spec)[0].value, 5.0);

  // Empty selection aggregates to no rows, not a zero row.
  spec.time_min = 9999;
  EXPECT_TRUE(EvaluateQuery(SampleRows(), spec).empty());
}

TEST(EvaluateQuery, BucketsPartitionTheSelectedSpan) {
  // Span [100, 500] (width 401); 2 buckets split at (t-100)*2/401:
  // 100..300 -> bucket 0, 301..500 -> bucket 1.
  QuerySpec spec;
  spec.agg = Aggregation::kMean;
  spec.buckets = 2;
  std::vector<QueryRow> rows = EvaluateQuery(SampleRows(), spec);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].time_first, 100u);
  EXPECT_EQ(rows[0].time_last, 300u);
  EXPECT_EQ(rows[0].samples, 3u);
  EXPECT_EQ(rows[0].value, (4.0 - 2.0 + 7.5) / 3.0);
  EXPECT_EQ(rows[1].time_first, 400u);
  EXPECT_EQ(rows[1].time_last, 500u);
  EXPECT_EQ(rows[1].samples, 2u);
  EXPECT_EQ(rows[1].value, (1.0 - 6.0) / 2.0);
}

TEST(EvaluateQuery, EmptyBucketsAreOmitted) {
  // 5 samples into 100 buckets: at most 5 non-empty buckets come back.
  QuerySpec spec;
  spec.agg = Aggregation::kCount;
  spec.buckets = 100;
  std::vector<QueryRow> rows = EvaluateQuery(SampleRows(), spec);
  ASSERT_EQ(rows.size(), 5u);
  for (const QueryRow& row : rows) EXPECT_EQ(row.value, 1.0);
}

TEST(EvaluateQuery, NoneWithBucketsActsAsLast) {
  QuerySpec spec;
  spec.agg = Aggregation::kNone;
  spec.buckets = 2;
  std::vector<QueryRow> rows = EvaluateQuery(SampleRows(), spec);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].value, 7.5);   // last estimate in bucket 0
  EXPECT_EQ(rows[1].value, -6.0);  // last estimate in bucket 1
}

TEST(EvaluateQuery, BucketIndexSurvivesNearMaxTimeSpans) {
  // (t - t0) * buckets would overflow u64 for spans near 2^64; the
  // evaluator's 128-bit bucket math must keep the partition exact.
  std::vector<HistoryRow> rows = {
      {0, 1.0, 1, 8, 0},
      {UINT64_MAX / 2, 2.0, 2, 16, 0},
      {UINT64_MAX - 1, 3.0, 3, 24, 0},
  };
  QuerySpec spec;
  spec.buckets = 2;
  spec.agg = Aggregation::kCount;
  std::vector<QueryRow> out = EvaluateQuery(rows, spec);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].samples, 2u);  // 0 and the midpoint land in bucket 0
  EXPECT_EQ(out[1].samples, 1u);
  EXPECT_EQ(out[1].time_first, UINT64_MAX - 1);
}

TEST(EvaluateQuery, SingleSampleSpanWithBuckets) {
  std::vector<HistoryRow> rows = {{42, 9.0, 1, 8, 0}};
  QuerySpec spec;
  spec.buckets = 10;
  std::vector<QueryRow> out = EvaluateQuery(rows, spec);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].time_first, 42u);
  EXPECT_EQ(out[0].value, 9.0);
}

TEST(AggregationNames, RoundTripAndRejectUnknown) {
  for (uint8_t i = 0;
       i <= static_cast<uint8_t>(Aggregation::kMaxAggregation); ++i) {
    auto agg = static_cast<Aggregation>(i);
    Aggregation back = Aggregation::kNone;
    ASSERT_TRUE(ParseAggregation(AggregationName(agg), &back))
        << AggregationName(agg);
    EXPECT_EQ(back, agg);
  }
  Aggregation out;
  EXPECT_FALSE(ParseAggregation("median", &out));
  EXPECT_FALSE(ParseAggregation("", &out));
  EXPECT_FALSE(ParseAggregation("MEAN", &out));
}

TEST(QueryRenderers, CsvListsEveryRowUnderItsSession) {
  SessionQueryResult a;
  a.session = "alpha";
  a.tracker = "deterministic";
  a.rows = {{100, 100, 0.5, 1, 8, 2, 1}, {200, 200, -1.5, 2, 16, 4, 1}};
  SessionQueryResult b;
  b.session = "beta";
  b.tracker = "randomized";
  b.rows = {{300, 400, 2.0, 3, 24, 6, 2}};
  std::string csv = WriteQueryResultCsv({a, b});
  EXPECT_EQ(csv,
            "session,tracker,time_first,time_last,value,messages,bits,"
            "wire_bytes,samples\n"
            "alpha,deterministic,100,100,0.5,1,8,2,1\n"
            "alpha,deterministic,200,200,-1.5,2,16,4,1\n"
            "beta,randomized,300,400,2,3,24,6,2\n");
}

TEST(QueryRenderers, JsonCarriesSchemaQueryAndRetentionMetadata) {
  QuerySpec spec;
  spec.time_min = 10;
  spec.time_max = 500;
  spec.agg = Aggregation::kMean;
  spec.buckets = 4;
  SessionQueryResult session;
  session.session = "alpha";
  session.tracker = "deterministic";
  session.capacity = 64;
  session.cadence = 1000;
  session.dropped = 3;
  session.rows = {{100, 200, 1.25, 5, 40, 9, 2}};
  std::string json = WriteQueryResultJson(spec, {session});
  EXPECT_EQ(
      json,
      "{\"schema\":\"varstream-query-v1\",\"query\":{\"time_min\":10,"
      "\"time_max\":500,\"agg\":\"mean\",\"buckets\":4},\"sessions\":["
      "{\"session\":\"alpha\",\"tracker\":\"deterministic\","
      "\"capacity\":64,\"cadence\":1000,\"dropped\":3,\"rows\":["
      "{\"time_first\":100,\"time_last\":200,\"value\":1.25,"
      "\"messages\":5,\"bits\":40,\"wire_bytes\":9,\"samples\":2}]}]}\n");
}

TEST(QueryRenderers, ValuesRoundTripBitExactlyThroughTheirText) {
  // %.17g is the shortest fixed precision that round-trips every double;
  // both renderers rely on it so scripted diffs are bit-exact.
  SessionQueryResult session;
  session.session = "s";
  session.tracker = "t";
  double awkward = 0.1 + 0.2;  // 0.30000000000000004
  session.rows = {{1, 1, awkward, 0, 0, 0, 1}};
  std::string csv = WriteQueryResultCsv({session});
  size_t value_start = csv.find("1,1,") + 4;
  size_t value_end = csv.find(',', value_start);
  double parsed = std::stod(csv.substr(value_start, value_end - value_start));
  EXPECT_EQ(std::bit_cast<uint64_t>(parsed),
            std::bit_cast<uint64_t>(awkward));
}

}  // namespace
}  // namespace varstream
