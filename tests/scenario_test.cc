// Scenario: declarative experiment configs resolve through the
// registries, seed deterministically, fail loudly on unknown names, and
// serialize to JSON/CSV.

#include "core/scenario.h"

#include <string>

#include "core/registry.h"
#include "stream/source.h"
#include "gtest/gtest.h"

namespace varstream {
namespace {

Scenario SmallScenario() {
  Scenario s;
  s.tracker = "deterministic";
  s.stream = "random-walk";
  s.num_sites = 4;
  s.epsilon = 0.1;
  s.n = 5000;
  s.seed = 3;
  return s;
}

TEST(Scenario, RunsAndMeasures) {
  ScenarioResult r = RunScenario(SmallScenario());
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.result.n, 5000u);
  EXPECT_GT(r.result.variability, 0.0);
  EXPECT_GT(r.result.messages, 0u);
  EXPECT_LE(r.result.max_rel_error, 0.1 + 1e-9);  // deterministic tracker
}

TEST(Scenario, IsDeterministic) {
  // The same scenario always produces the same measurements — the
  // property the parallel suite runner depends on.
  ScenarioResult a = RunScenario(SmallScenario());
  ScenarioResult b = RunScenario(SmallScenario());
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_EQ(a.result.final_f, b.result.final_f);
  EXPECT_EQ(a.result.messages, b.result.messages);
  EXPECT_EQ(a.result.bits, b.result.bits);
  EXPECT_DOUBLE_EQ(a.result.max_rel_error, b.result.max_rel_error);
  EXPECT_DOUBLE_EQ(a.result.variability, b.result.variability);
  EXPECT_DOUBLE_EQ(a.result.final_estimate, b.result.final_estimate);
  EXPECT_EQ(ScenarioResultToJson(a), ScenarioResultToJson(b));
}

TEST(Scenario, RandomizedTrackerIsDeterministicToo) {
  Scenario s = SmallScenario();
  s.tracker = "randomized";
  ScenarioResult a = RunScenario(s);
  ScenarioResult b = RunScenario(s);
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_EQ(a.result.messages, b.result.messages);
  EXPECT_DOUBLE_EQ(a.result.final_estimate, b.result.final_estimate);
}

TEST(Scenario, SeedsDifferAcrossFields) {
  Scenario a = SmallScenario();
  Scenario b = SmallScenario();
  b.tracker = "randomized";
  // Different trackers at the same user seed draw decorrelated
  // randomness; the stream seed differs too by design (the fingerprint
  // covers all naming fields).
  EXPECT_NE(ScenarioTrackerSeed(a), ScenarioTrackerSeed(b));
  Scenario c = SmallScenario();
  c.seed = 4;
  EXPECT_NE(ScenarioStreamSeed(a), ScenarioStreamSeed(c));
}

TEST(Scenario, UnknownNamesFailWithListing) {
  Scenario s = SmallScenario();
  s.stream = "no-such-stream";
  ScenarioResult r = RunScenario(s);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown stream"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("random-walk"), std::string::npos)
      << "error should list valid streams: " << r.error;

  s = SmallScenario();
  s.tracker = "no-such-tracker";
  r = RunScenario(s);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown tracker"), std::string::npos);
  EXPECT_NE(r.error.find("deterministic"), std::string::npos);

  s = SmallScenario();
  s.assigner = "no-such-assigner";
  r = RunScenario(s);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown assigner"), std::string::npos);
}

TEST(Scenario, IncompatiblePairingFails) {
  Scenario s = SmallScenario();
  s.tracker = "cmy-monotone";  // insertion-only
  s.stream = "random-walk";    // emits deletions
  ScenarioResult r = RunScenario(s);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("insertion-only"), std::string::npos) << r.error;

  // But monotone streams are fine.
  s.stream = "monotone";
  r = RunScenario(s);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(Scenario, SingleSiteTrackerPinsSites) {
  Scenario s = SmallScenario();
  s.tracker = "single-site";
  s.num_sites = 8;
  ScenarioResult r = RunScenario(s);
  // The stream must be dealt across the tracker's actual k (1), not the
  // requested 8 — otherwise Push would reject out-of-range sites.
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.result.n, 5000u);
}

TEST(Scenario, StreamParamsApply) {
  Scenario s = SmallScenario();
  s.stream = "sawtooth";
  s.params["amplitude"] = 8;
  ScenarioResult r = RunScenario(s);
  ASSERT_TRUE(r.ok) << r.error;
  // Amplitude-8 sawtooth over 5000 steps: f stays within [0, 8].
  EXPECT_GE(r.result.final_f, 0);
  EXPECT_LE(r.result.final_f, 8);
}

TEST(Scenario, JsonContainsTheSchemaFields) {
  ScenarioResult r = RunScenario(SmallScenario());
  std::string json = ScenarioResultToJson(r);
  for (const char* field :
       {"\"id\":", "\"tracker\":", "\"stream\":", "\"assigner\":",
        "\"sites\":", "\"epsilon\":", "\"n\":", "\"seed\":", "\"batch\":",
        "\"ok\":true", "\"n_processed\":", "\"variability\":",
        "\"messages\":", "\"bits\":", "\"max_rel_error\":",
        "\"violation_rate\":", "\"final_f\":", "\"final_estimate\":"}) {
    EXPECT_NE(json.find(field), std::string::npos)
        << field << " missing from " << json;
  }
}

TEST(Scenario, JsonErrorShapeForFailedScenario) {
  Scenario s = SmallScenario();
  s.tracker = "no-such-tracker";
  std::string json = ScenarioResultToJson(RunScenario(s));
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(json.find("\"error\":"), std::string::npos);
  EXPECT_EQ(json.find("\"n_processed\":"), std::string::npos);
}

TEST(Scenario, CsvRowMatchesHeaderArity) {
  std::string header = ScenarioResultCsvHeader();
  std::string ok_row = ScenarioResultToCsvRow(RunScenario(SmallScenario()));
  Scenario bad = SmallScenario();
  bad.stream = "no-such";
  std::string err_row = ScenarioResultToCsvRow(RunScenario(bad));
  auto commas = [](const std::string& s) {
    size_t c = 0;
    bool quoted = false;
    for (char ch : s) {
      if (ch == '"') quoted = !quoted;
      if (ch == ',' && !quoted) ++c;
    }
    return c;
  };
  EXPECT_EQ(commas(ok_row), commas(header));
  EXPECT_EQ(commas(err_row), commas(header));
}

TEST(Scenario, IdIsUniquePerAxis) {
  Scenario a = SmallScenario();
  Scenario b = SmallScenario();
  EXPECT_EQ(a.Id(), b.Id());
  b.epsilon = 0.05;
  EXPECT_NE(a.Id(), b.Id());
  b = SmallScenario();
  b.seed = 99;
  EXPECT_NE(a.Id(), b.Id());
  b = SmallScenario();
  b.stream = "sawtooth";
  EXPECT_NE(a.Id(), b.Id());
}

}  // namespace
}  // namespace varstream
