#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "gtest/gtest.h"

namespace varstream {
namespace {

TEST(SplitMix64, KnownFirstOutputsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(SplitMix64, Deterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Xoshiro256, DeterministicFromSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Xoshiro256, JumpChangesStream) {
  Xoshiro256 a(7), b(7);
  b.Jump();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng rng(2);
  double sum = 0;
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Rng, UniformBelowRespectsBound) {
  Rng rng(3);
  for (uint64_t n : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.UniformBelow(n), n);
  }
}

TEST(Rng, UniformBelowOneIsAlwaysZero) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.UniformBelow(1), 0u);
}

TEST(Rng, UniformBelowRoughlyUniform) {
  Rng rng(5);
  constexpr uint64_t kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.UniformBelow(kBuckets)];
  for (uint64_t b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kSamples / kBuckets, kSamples * 0.01)
        << "bucket " << b;
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(6);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(8);
  const int kSamples = 100000;
  int hits = 0;
  for (int i = 0; i < kSamples; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(Rng, SignIsFair) {
  Rng rng(9);
  const int kSamples = 100000;
  int64_t sum = 0;
  for (int i = 0; i < kSamples; ++i) sum += rng.Sign();
  EXPECT_LT(std::abs(sum), 5 * std::sqrt(kSamples));
}

TEST(Rng, BiasedSignMatchesDrift) {
  Rng rng(10);
  const int kSamples = 200000;
  double mu = 0.2;
  int64_t sum = 0;
  for (int i = 0; i < kSamples; ++i) sum += rng.BiasedSign(mu);
  EXPECT_NEAR(static_cast<double>(sum) / kSamples, mu, 0.01);
}

TEST(Rng, GaussianMomentsApproximatelyStandard) {
  Rng rng(11);
  const int kSamples = 200000;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < kSamples; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.02);
  EXPECT_NEAR(sumsq / kSamples, 1.0, 0.03);
}

TEST(Rng, GeometricMeanMatchesTheory) {
  Rng rng(12);
  double p = 0.25;
  const int kSamples = 100000;
  double sum = 0;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(rng.Geometric(p));
  }
  // Mean failures before success = (1-p)/p = 3.
  EXPECT_NEAR(sum / kSamples, 3.0, 0.1);
}

TEST(Rng, GeometricPOneIsZero) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Geometric(1.0), 0u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(14);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled.begin(), shuffled.end());
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), shuffled.begin()));
}

TEST(Rng, SampleWithoutReplacementDistinctSorted) {
  Rng rng(15);
  for (int trial = 0; trial < 50; ++trial) {
    auto sample = rng.SampleWithoutReplacement(100, 10);
    ASSERT_EQ(sample.size(), 10u);
    EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
    std::set<uint64_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
    for (uint64_t x : sample) EXPECT_LT(x, 100u);
  }
}

TEST(Rng, SampleWithoutReplacementFullRange) {
  Rng rng(16);
  auto sample = rng.SampleWithoutReplacement(5, 5);
  EXPECT_EQ(sample, (std::vector<uint64_t>{0, 1, 2, 3, 4}));
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent(17);
  Rng a = parent.Fork(0);
  Rng b = parent.Fork(1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsDeterministic) {
  Rng p1(18), p2(18);
  Rng a = p1.Fork(7), b = p2.Fork(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(ZipfSampler, UniformWhenSIsZero) {
  Rng rng(19);
  ZipfSampler zipf(4, 0.0);
  std::vector<int> counts(4, 0);
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.Sample(&rng)];
  for (int c : counts) EXPECT_NEAR(c, kSamples / 4, kSamples * 0.01);
}

TEST(ZipfSampler, SkewFavorsSmallItems) {
  Rng rng(20);
  ZipfSampler zipf(100, 1.2);
  std::vector<int> counts(100, 0);
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.Sample(&rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[99]);
}

TEST(ZipfSampler, SingleItemUniverse) {
  Rng rng(21);
  ZipfSampler zipf(1, 2.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(&rng), 0u);
}

TEST(ZipfSampler, RatioMatchesPowerLaw) {
  Rng rng(22);
  ZipfSampler zipf(2, 1.0);
  // P(0)/P(1) should be 2 for s = 1 on a 2-item universe.
  const int kSamples = 300000;
  int zero = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.Sample(&rng) == 0) ++zero;
  }
  double ratio = static_cast<double>(zero) / (kSamples - zero);
  EXPECT_NEAR(ratio, 2.0, 0.1);
}

}  // namespace
}  // namespace varstream
