// End-to-end scenarios wiring several modules together, mirroring the
// paper's motivating applications (section 1): sensor-network counting,
// database-size auditing with historical queries, and distributed heavy
// hitters — each against ground truth.

#include <cmath>
#include <map>
#include <memory>

#include "baseline/naive_tracker.h"
#include "common/hash.h"
#include "core/deterministic_tracker.h"
#include "core/driver.h"
#include "core/frequency_tracker.h"
#include "core/quantile_tracker.h"
#include "core/randomized_tracker.h"
#include "core/threshold_monitor.h"
#include "core/tracing.h"
#include "stream/generator.h"
#include "stream/item_generators.h"
#include "stream/site_assigner.h"
#include "stream/trace.h"
#include "gtest/gtest.h"

namespace varstream {
namespace {

TEST(Integration, SensorNetworkScenario) {
  // 32 sensors report a net count that mostly grows with occasional dips;
  // both the deterministic and randomized trackers must hold their
  // guarantees on the identical recorded stream, at a fraction of naive
  // cost.
  const uint32_t k = 32;
  const double eps = 0.1;
  NearlyMonotoneGenerator gen(6, 2);
  UniformAssigner assigner(k, 7);
  StreamTrace trace = StreamTrace::Record(&gen, &assigner, 120000);

  TrackerOptions opts;
  opts.num_sites = k;
  opts.epsilon = eps;
  DeterministicTracker det(opts);
  RandomizedTracker rand(opts);
  NaiveTracker naive(opts);

  TraceSource src1(&trace);
  RunResult det_result = varstream::Run(src1, det, {.epsilon = eps});
  TraceSource src2(&trace);
  RunResult rand_result = varstream::Run(src2, rand, {.epsilon = eps});
  TraceSource src3(&trace);
  RunResult naive_result = varstream::Run(src3, naive, {.epsilon = eps});

  EXPECT_EQ(det_result.violation_rate, 0.0);
  EXPECT_LT(rand_result.violation_rate, 1.0 / 3.0);
  EXPECT_EQ(naive_result.messages, 120000u);
  // Low-variability stream: the paper's algorithms should be far cheaper.
  EXPECT_LT(det_result.messages, naive_result.messages / 4);
  EXPECT_LT(rand_result.messages, naive_result.messages / 4);
}

TEST(Integration, DatabaseAuditWithHistoricalQueries) {
  // A database's size is tracked; later an auditor asks "how big was it at
  // time t?" for many past t. The recorded coordinator history must answer
  // every query within epsilon (the tracing problem of section 4).
  const double eps = 0.05;
  BiasedWalkGenerator gen(0.3, 11);
  RoundRobinAssigner assigner(8);
  StreamTrace stream = StreamTrace::Record(&gen, &assigner, 80000);

  TrackerOptions opts;
  opts.num_sites = 8;
  opts.epsilon = eps;
  DeterministicTracker tracker(opts);
  HistoryTracer history(0.0);
  TraceSource src4(&stream);
  varstream::Run(src4, tracker, {.epsilon = eps, .tracer = &history});

  Rng rng(13);
  for (int q = 0; q < 2000; ++q) {
    uint64_t t = 1 + rng.UniformBelow(80000);
    double est = history.Query(t);
    auto truth = static_cast<double>(stream.ValueAt(t));
    EXPECT_LE(std::abs(est - truth), eps * std::abs(truth) + 1e-9)
        << "t=" << t;
  }
  // The summary is far smaller than storing every timestep.
  EXPECT_LT(history.changepoints(), 80000u / 10);
}

TEST(Integration, DistributedHeavyHittersPipeline) {
  // Zipf item stream across 8 sites; at the end, every item with true
  // frequency >= 2*eps*F1 must be reported by HeavyHitters(eps), and no
  // item below ~0 frequency can sneak in above the threshold.
  const uint32_t k = 8;
  const double eps = 0.1;
  TrackerOptions opts;
  opts.num_sites = k;
  opts.epsilon = eps;
  FrequencyTracker tracker(opts);
  ZipfChurnGenerator gen(1024, 1.3, 0.5, 17);

  std::map<uint64_t, int64_t> truth;
  int64_t f1 = 0;
  for (int t = 0; t < 60000; ++t) {
    ItemEvent e = gen.NextEvent();
    uint32_t site = static_cast<uint32_t>(Mix64(e.item) % k);
    tracker.Push(site, e.item, e.delta);
    truth[e.item] += e.delta;
    f1 += e.delta;
  }

  auto hh = tracker.HeavyHitters(eps);
  std::map<uint64_t, int64_t> reported(hh.begin(), hh.end());
  for (const auto& [item, f] : truth) {
    if (static_cast<double>(f) >= 2.2 * eps * static_cast<double>(f1)) {
      EXPECT_TRUE(reported.count(item))
          << "missed heavy item " << item << " f=" << f;
    }
  }
  for (const auto& [item, est] : reported) {
    // Anything reported must be genuinely non-trivial.
    EXPECT_GE(static_cast<double>(truth[item]),
              0.3 * eps * static_cast<double>(f1))
        << "false heavy hitter " << item;
  }
}

TEST(Integration, TraceSerializationPreservesTrackerBehavior) {
  // Serialize a stream, reload it, and verify a tracker behaves byte-for-
  // byte identically — the regression-fixture workflow.
  RandomWalkGenerator gen(19);
  UniformAssigner assigner(4, 23);
  StreamTrace original = StreamTrace::Record(&gen, &assigner, 20000);
  StreamTrace reloaded;
  ASSERT_TRUE(StreamTrace::Deserialize(original.Serialize(), &reloaded));

  TrackerOptions opts;
  opts.num_sites = 4;
  opts.epsilon = 0.1;
  DeterministicTracker t1(opts), t2(opts);
  TraceSource src5(&original);
  RunResult r1 = varstream::Run(src5, t1, {.epsilon = 0.1});
  TraceSource src6(&reloaded);
  RunResult r2 = varstream::Run(src6, t2, {.epsilon = 0.1});
  EXPECT_EQ(r1.messages, r2.messages);
  EXPECT_EQ(r1.final_f, r2.final_f);
  EXPECT_DOUBLE_EQ(r1.max_rel_error, r2.max_rel_error);
}

TEST(Integration, MixedWorkloadSignCrossings) {
  // A stream that climbs, crashes through zero into negative territory,
  // and recovers — the full non-monotone gauntlet for the guarantee.
  class GauntletGenerator : public CountGenerator {
   public:
    int64_t NextDelta() override {
      ++t_;
      if (t_ < 20000) return +1;                       // climb to 20k
      if (t_ < 60000) return -1;                       // crash to -20k
      return (t_ % 2 == 0) ? +1 : -1;                  // churn near -20k
    }
    std::string name() const override { return "gauntlet"; }

   private:
    uint64_t t_ = 0;
  };

  GauntletGenerator gen;
  UniformAssigner assigner(8, 29);
  TrackerOptions opts;
  opts.num_sites = 8;
  opts.epsilon = 0.1;
  DeterministicTracker tracker(opts);
  GeneratorSource src7(&gen, &assigner);
  RunResult result = varstream::Run(src7, tracker, {.epsilon = 0.1, .max_updates = 80000});
  EXPECT_EQ(result.violation_rate, 0.0);
  EXPECT_LT(result.final_f, -19000);
}

TEST(Integration, ComposedViewsUnderBurstyAssignment) {
  // Frequency + quantile + threshold views over one bursty item stream:
  // all guarantees must hold simultaneously even when sites receive their
  // traffic in long exclusive bursts.
  const uint32_t k = 8;
  const double eps = 0.25;
  const uint32_t log_u = 9;
  TrackerOptions opts;
  opts.num_sites = k;
  opts.epsilon = eps;
  FrequencyTracker freq(opts);
  QuantileTracker quant(opts, log_u);
  ThresholdMonitor monitor(opts, 2000);

  ZipfChurnGenerator gen(1ULL << log_u, 1.0, 0.5, 43);
  BurstAssigner assigner(k, 200);
  std::map<uint64_t, int64_t> truth;
  int64_t f1 = 0;
  for (int t = 0; t < 25000; ++t) {
    ItemEvent e = gen.NextEvent();
    uint32_t site = assigner.NextSite();
    freq.Push(site, e.item, e.delta);
    quant.Push(site, e.item, e.delta);
    monitor.Push(site, e.delta);
    truth[e.item] += e.delta;
    f1 += e.delta;

    if (t % 701 == 0) {
      // Frequency guarantee on the touched item.
      double ferr = std::abs(
          static_cast<double>(freq.EstimateItem(e.item) - truth[e.item]));
      ASSERT_LE(ferr,
                eps * std::max<double>(1.0, static_cast<double>(f1)) + 1e-9);
      // Rank guarantee at the touched item's value.
      double exact_rank = 0;
      for (const auto& [item, f] : truth) {
        if (item < e.item) exact_rank += static_cast<double>(f);
      }
      ASSERT_LE(std::abs(quant.Rank(e.item) - exact_rank),
                eps * std::max<double>(1.0, static_cast<double>(f1)) + 1e-9);
      // Threshold certification on F1.
      if (f1 >= 2000) {
        ASSERT_EQ(monitor.state(), ThresholdState::kAbove);
      }
      if (static_cast<double>(f1) <= (1.0 - eps) * 2000.0) {
        ASSERT_EQ(monitor.state(), ThresholdState::kBelow);
      }
    }
  }
  EXPECT_GT(f1, 2000);
  EXPECT_EQ(monitor.state(), ThresholdState::kAbove);
}

TEST(Integration, CostAdvantageRequiresLowVariability) {
  // The framework's promise, end to end: cost ~ v. Compare a low-v stream
  // and a high-v stream of the same length; message counts should differ
  // by an order of magnitude.
  TrackerOptions opts;
  opts.num_sites = 4;
  opts.epsilon = 0.1;

  BiasedWalkGenerator low_v_gen(0.4, 31);
  UniformAssigner a1(4, 37);
  DeterministicTracker low_tracker(opts);
  GeneratorSource src8(&low_v_gen, &a1);
  RunResult low = varstream::Run(src8, low_tracker, {.epsilon = 0.1, .max_updates = 50000});

  ZeroCrossingGenerator high_v_gen;
  UniformAssigner a2(4, 41);
  DeterministicTracker high_tracker(opts);
  GeneratorSource src9(&high_v_gen, &a2);
  RunResult high = varstream::Run(src9, high_tracker, {.epsilon = 0.1, .max_updates = 50000});

  EXPECT_LT(low.variability * 20, high.variability);
  EXPECT_LT(low.messages * 5, high.messages);
}

}  // namespace
}  // namespace varstream
